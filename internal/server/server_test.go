package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"vliwcache/internal/apiv1"
	"vliwcache/internal/ir"
	"vliwcache/internal/obs"
)

// daxpyJSON is a small well-formed loop in the interchange format.
const daxpyJSON = `{
  "name": "daxpy",
  "trip": 50,
  "symbols": [
    {"name": "x", "base": 65536, "size": 1048576},
    {"name": "y", "base": 524288, "size": 1048576}
  ],
  "ops": [
    {"name": "ldx", "kind": "load", "dst": 0, "addr": {"base": "x", "stride": 8, "size": 8}},
    {"name": "ldy", "kind": "load", "dst": 1, "addr": {"base": "y", "stride": 8, "size": 8}},
    {"name": "mul", "kind": "fmul", "dst": 2, "srcs": [0, 1]},
    {"name": "sty", "kind": "store", "srcs": [2], "addr": {"base": "y", "stride": 8, "size": 8}}
  ]
}`

// infeasibleLoopJSON builds a loop whose recurrence exceeds the
// scheduler's II budget (MaxII 1024): a loop-carried memory dependence
// through a chain of ~1100 single-cycle-plus operations.
func infeasibleLoopJSON(t *testing.T) []byte {
	t.Helper()
	b := ir.NewBuilder("hopeless")
	b.Symbol("v", 0x10000, 1<<16)
	b.Trip(10, 1)
	r := b.Load("ld", ir.AddrExpr{Base: "v", Size: 8}) // stride 0: same address every iteration
	for i := 0; i < 1100; i++ {
		r = b.Arith(fmt.Sprintf("a%d", i), ir.KindAdd, r)
	}
	b.Store("st", ir.AddrExpr{Base: "v", Size: 8}, r)
	data, err := ir.EncodeJSON(b.Loop())
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func scheduleBody(t *testing.T, mutate func(*apiv1.ScheduleRequest)) []byte {
	t.Helper()
	req := apiv1.ScheduleRequest{
		Loop:    json.RawMessage(daxpyJSON),
		Policy:  "mdc",
		Options: apiv1.Options{MaxIterations: 25},
	}
	if mutate != nil {
		mutate(&req)
	}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func post(t *testing.T, ts *httptest.Server, path string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// postQuiet is post for non-test goroutines (no *testing.T calls).
func postQuiet(ts *httptest.Server, path string, body []byte) (int, []byte) {
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, nil
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, data
}

func get(t *testing.T, ts *httptest.Server, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func decodeError(t *testing.T, data []byte) apiv1.ErrorResponse {
	t.Helper()
	var e apiv1.ErrorResponse
	if err := json.Unmarshal(data, &e); err != nil {
		t.Fatalf("error body %q is not an ErrorResponse: %v", data, err)
	}
	return e
}

// TestHandlerErrors is the table test over the typed error surface.
func TestHandlerErrors(t *testing.T) {
	srv := New(WithParallelism(2))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cases := []struct {
		name   string
		path   string
		body   []byte
		status int
		code   string
	}{
		{"malformed json", "/v1/schedule", []byte(`{"loop":`), http.StatusBadRequest, apiv1.CodeBadRequest},
		{"missing loop", "/v1/schedule", scheduleBody(t, func(r *apiv1.ScheduleRequest) { r.Loop = nil }), http.StatusBadRequest, apiv1.CodeBadRequest},
		{"invalid loop", "/v1/schedule", []byte(`{"loop":{"name":"x","ops":[{"kind":"warp"}]},"policy":"mdc"}`), http.StatusBadRequest, apiv1.CodeBadRequest},
		{"unknown policy", "/v1/schedule", scheduleBody(t, func(r *apiv1.ScheduleRequest) { r.Policy = "strict" }), http.StatusBadRequest, apiv1.CodeBadRequest},
		{"unknown heuristic", "/v1/schedule", scheduleBody(t, func(r *apiv1.ScheduleRequest) { r.Heuristic = "fastest" }), http.StatusBadRequest, apiv1.CodeBadRequest},
		{"unknown config", "/v1/schedule", scheduleBody(t, func(r *apiv1.ScheduleRequest) { r.Config = "nobal+bus" }), http.StatusBadRequest, apiv1.CodeBadRequest},
		{"negative caps", "/v1/schedule", scheduleBody(t, func(r *apiv1.ScheduleRequest) { r.MaxIterations = -1 }), http.StatusBadRequest, apiv1.CodeBadRequest},
		{"simulate malformed", "/v1/simulate", []byte(`[`), http.StatusBadRequest, apiv1.CodeBadRequest},
		{"infeasible II", "/v1/schedule", func() []byte {
			req := apiv1.ScheduleRequest{Loop: infeasibleLoopJSON(t), Policy: "mdc"}
			b, _ := json.Marshal(req)
			return b
		}(), http.StatusUnprocessableEntity, apiv1.CodeInfeasibleSchedule},
		{"suite no variants", "/v1/suite", []byte(`{"benches":["pgpdec"]}`), http.StatusBadRequest, apiv1.CodeBadRequest},
		{"suite bad variant", "/v1/suite", []byte(`{"variants":[{"policy":"warp"}]}`), http.StatusBadRequest, apiv1.CodeBadRequest},
		{"suite unknown bench", "/v1/suite", []byte(`{"benches":["quake3"],"variants":[{"policy":"mdc","heuristic":"prefclus"}]}`), http.StatusNotFound, apiv1.CodeUnknownBenchmark},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp, data := post(t, ts, c.path, c.body)
			if resp.StatusCode != c.status {
				t.Fatalf("status = %d (%s), want %d", resp.StatusCode, data, c.status)
			}
			if e := decodeError(t, data); e.Code != c.code {
				t.Errorf("code = %q, want %q", e.Code, c.code)
			}
		})
	}
}

// TestScheduleDeterministicCacheHit proves a cache hit's body is
// byte-identical to the miss that populated it, and that the X-Cache
// header tells them apart.
func TestScheduleDeterministicCacheHit(t *testing.T) {
	srv := New(WithParallelism(2))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := scheduleBody(t, func(r *apiv1.ScheduleRequest) { r.IncludeSchedule = true })
	resp1, data1 := post(t, ts, "/v1/schedule", body)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("miss status = %d (%s)", resp1.StatusCode, data1)
	}
	if got := resp1.Header.Get("X-Cache"); got != "miss" {
		t.Errorf("first X-Cache = %q, want miss", got)
	}
	resp2, data2 := post(t, ts, "/v1/schedule", body)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("hit status = %d", resp2.StatusCode)
	}
	if got := resp2.Header.Get("X-Cache"); got != "hit" {
		t.Errorf("second X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(data1, data2) {
		t.Fatalf("cache hit is not byte-identical to the miss:\n%s\n%s", data1, data2)
	}

	var sr apiv1.ScheduleResponse
	if err := json.Unmarshal(data1, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Loop != "daxpy" || sr.Policy != "mdc" || sr.II < 1 || sr.Stats.Cycles <= 0 || sr.Schedule == "" {
		t.Errorf("response incomplete: %+v", sr)
	}

	// Canonicalization: a formatting-different but equivalent request
	// addresses the same entry.
	var loose map[string]any
	if err := json.Unmarshal(body, &loose); err != nil {
		t.Fatal(err)
	}
	reordered, err := json.MarshalIndent(loose, "", "    ")
	if err != nil {
		t.Fatal(err)
	}
	resp3, data3 := post(t, ts, "/v1/schedule", reordered)
	if resp3.StatusCode != http.StatusOK || resp3.Header.Get("X-Cache") != "hit" {
		t.Errorf("reformatted request must hit (status %d, X-Cache %q)",
			resp3.StatusCode, resp3.Header.Get("X-Cache"))
	}
	if !bytes.Equal(data1, data3) {
		t.Error("reformatted request served different bytes")
	}

	if st := srv.CacheStats(); st.Misses != 1 || st.Hits != 2 {
		t.Errorf("cache stats = %+v", st)
	}
	if m := srv.Engine().Metrics(); m.Computed != 1 {
		t.Errorf("engine computed %d tasks, want 1", m.Computed)
	}
}

// TestCoalescing proves N concurrent identical requests execute exactly
// one simulation: one leader computes while the rest coalesce onto its
// flight, and everyone receives identical bytes.
func TestCoalescing(t *testing.T) {
	const n = 8
	srv := New(WithParallelism(2), WithQueueDepth(2*n))
	srv.testGate = make(chan struct{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := scheduleBody(t, nil)
	type result struct {
		status int
		xcache string
		data   []byte
	}
	results := make([]result, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/schedule", "application/json", bytes.NewReader(body))
			if err != nil {
				results[i] = result{0, "", nil}
				return
			}
			defer resp.Body.Close()
			data, _ := io.ReadAll(resp.Body)
			results[i] = result{resp.StatusCode, resp.Header.Get("X-Cache"), data}
		}(i)
	}
	// Hold the gate until every follower has coalesced onto the
	// leader's flight, so the single-computation claim is meaningful.
	deadline := time.Now().Add(30 * time.Second)
	for srv.CacheStats().Coalesced != n-1 {
		if time.Now().After(deadline) {
			t.Fatalf("followers never coalesced: %+v", srv.CacheStats())
		}
		runtime.Gosched()
	}
	close(srv.testGate)
	wg.Wait()

	var misses, coalesced int
	for i, r := range results {
		if r.status != http.StatusOK {
			t.Fatalf("request %d: status %d (%s)", i, r.status, r.data)
		}
		if !bytes.Equal(r.data, results[0].data) {
			t.Fatalf("request %d served different bytes", i)
		}
		switch r.xcache {
		case "miss":
			misses++
		case "coalesced":
			coalesced++
		default:
			t.Errorf("request %d: X-Cache %q", i, r.xcache)
		}
	}
	if misses != 1 || coalesced != n-1 {
		t.Errorf("misses=%d coalesced=%d, want 1 and %d", misses, coalesced, n-1)
	}
	if m := srv.Engine().Metrics(); m.Computed != 1 {
		t.Errorf("engine computed %d tasks, want exactly 1", m.Computed)
	}
	if st := srv.CacheStats(); st.Misses != 1 || st.Coalesced != n-1 {
		t.Errorf("cache stats = %+v", st)
	}
}

// TestAdmissionShed saturates the admission queue and checks the
// contract: excess load is shed with 429 + Retry-After while /healthz
// and /metrics stay live, and capacity freed by completion is reusable.
func TestAdmissionShed(t *testing.T) {
	srv := New(WithParallelism(1), WithQueueDepth(0)) // one request in the system
	srv.testGate = make(chan struct{})
	log := obs.NewRequestLog(64)
	srv.sink = log
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	blocked := scheduleBody(t, nil)
	done := make(chan int, 1)
	go func() {
		status, _ := postQuiet(ts, "/v1/schedule", blocked)
		done <- status
	}()
	// Wait for the request to hold the only admission token.
	deadline := time.Now().Add(30 * time.Second)
	for srv.inflight.Load() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("first request never admitted")
		}
		runtime.Gosched()
	}

	// A distinct request must be shed: 429, typed code, Retry-After.
	distinct := scheduleBody(t, func(r *apiv1.ScheduleRequest) { r.Policy = "ddgt" })
	resp, data := post(t, ts, "/v1/schedule", distinct)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d (%s), want 429", resp.StatusCode, data)
	}
	if e := decodeError(t, data); e.Code != apiv1.CodeOverloaded {
		t.Errorf("code = %q", e.Code)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 must carry Retry-After")
	}

	// The health and metrics planes bypass admission.
	hresp, hdata := get(t, ts, "/healthz")
	if hresp.StatusCode != http.StatusOK || !strings.Contains(string(hdata), `"status":"ok"`) {
		t.Errorf("healthz under saturation = %d (%s)", hresp.StatusCode, hdata)
	}
	mresp, _ := get(t, ts, "/metrics")
	if mresp.StatusCode != http.StatusOK {
		t.Errorf("metrics under saturation = %d", mresp.StatusCode)
	}

	close(srv.testGate)
	if status := <-done; status != http.StatusOK {
		t.Errorf("blocked request finished with %d", status)
	}

	// Capacity is back: the previously shed request now succeeds.
	resp, data = post(t, ts, "/v1/schedule", distinct)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("after drain: %d (%s)", resp.StatusCode, data)
	}

	// The lifecycle left typed events: at least one shed and one admit.
	var sawShed, sawAdmit bool
	for _, e := range log.Events() {
		switch e.Stage {
		case "shed":
			sawShed = true
			if e.Status != http.StatusTooManyRequests {
				t.Errorf("shed event status = %d", e.Status)
			}
		case "admit":
			sawAdmit = true
		}
	}
	if !sawShed || !sawAdmit {
		t.Errorf("request log missing stages (shed=%t admit=%t): %+v", sawShed, sawAdmit, log.Events())
	}
	if srv.shed.Load() == 0 {
		t.Error("shed counter not incremented")
	}
}

// TestCacheHitBypassesAdmission: stored results are served even when
// the queue is saturated.
func TestCacheHitBypassesAdmission(t *testing.T) {
	srv := New(WithParallelism(1), WithQueueDepth(0))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := scheduleBody(t, nil)
	if resp, data := post(t, ts, "/v1/schedule", body); resp.StatusCode != http.StatusOK {
		t.Fatalf("populate: %d (%s)", resp.StatusCode, data)
	}

	// Saturate with a gated request.
	srv.testGate = make(chan struct{})
	defer close(srv.testGate)
	gated := scheduleBody(t, func(r *apiv1.ScheduleRequest) { r.Policy = "free" })
	go postQuiet(ts, "/v1/schedule", gated)
	deadline := time.Now().Add(30 * time.Second)
	for srv.inflight.Load() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("gated request never admitted")
		}
		runtime.Gosched()
	}

	resp, _ := post(t, ts, "/v1/schedule", body)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Cache") != "hit" {
		t.Errorf("saturated hit = %d, X-Cache %q", resp.StatusCode, resp.Header.Get("X-Cache"))
	}
}

// TestDeadline: a request whose deadline expires mid-computation gets
// the typed 504.
func TestDeadline(t *testing.T) {
	srv := New(WithParallelism(1))
	srv.testGate = make(chan struct{}) // never closed during the request
	defer close(srv.testGate)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := scheduleBody(t, func(r *apiv1.ScheduleRequest) { r.DeadlineMillis = 50 })
	resp, data := post(t, ts, "/v1/schedule", body)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d (%s), want 504", resp.StatusCode, data)
	}
	if e := decodeError(t, data); e.Code != apiv1.CodeDeadlineExceeded {
		t.Errorf("code = %q", e.Code)
	}
	// Nothing was cached: a retry recomputes rather than serving junk.
	if st := srv.CacheStats(); st.Entries != 0 {
		t.Errorf("failed computation cached: %+v", st)
	}
}

// TestDrainingRefusesCompute: once shutdown begins, compute endpoints
// return the typed 503 and healthz reports draining.
func TestDrainingRefusesCompute(t *testing.T) {
	srv := New(WithParallelism(1))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	srv.draining.Store(true)
	resp, data := post(t, ts, "/v1/schedule", scheduleBody(t, nil))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d (%s)", resp.StatusCode, data)
	}
	if e := decodeError(t, data); e.Code != apiv1.CodeDraining {
		t.Errorf("code = %q", e.Code)
	}
	hresp, hdata := get(t, ts, "/healthz")
	if hresp.StatusCode != http.StatusOK || !strings.Contains(string(hdata), `"draining":true`) {
		t.Errorf("healthz while draining = %d (%s)", hresp.StatusCode, hdata)
	}
}

// TestSimulateAndScheduleKeysDiffer: the endpoint namespace is part of
// the content address, so /v1/simulate cannot serve /v1/schedule bytes.
func TestSimulateAndScheduleKeysDiffer(t *testing.T) {
	srv := New(WithParallelism(2))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := scheduleBody(t, nil)
	_, sched := post(t, ts, "/v1/schedule", body)
	resp, simData := post(t, ts, "/v1/simulate", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("simulate: %d (%s)", resp.StatusCode, simData)
	}
	if resp.Header.Get("X-Cache") != "miss" {
		t.Errorf("simulate after schedule must miss, got %q", resp.Header.Get("X-Cache"))
	}
	var sr apiv1.SimulateResponse
	if err := json.Unmarshal(simData, &sr); err != nil {
		t.Fatal(err)
	}
	var fr apiv1.ScheduleResponse
	if err := json.Unmarshal(sched, &fr); err != nil {
		t.Fatal(err)
	}
	if sr.Stats != fr.Stats {
		t.Errorf("simulate stats differ from schedule stats:\n%+v\n%+v", sr.Stats, fr.Stats)
	}
}

func TestSuiteEndpoint(t *testing.T) {
	srv := New(WithParallelism(2))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := []byte(`{"benches":["pgpdec","rasta"],"variants":[{"policy":"mdc","heuristic":"prefclus"},{"policy":"ddgt","heuristic":"mincoms"}],"maxIterations":50}`)
	resp, data := post(t, ts, "/v1/suite", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("suite: %d (%s)", resp.StatusCode, data)
	}
	var sr apiv1.SuiteResponse
	if err := json.Unmarshal(data, &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Cells) != 4 {
		t.Fatalf("got %d cells, want 4", len(sr.Cells))
	}
	// Canonical order: benches outer (request order), variants inner.
	want := []string{"pgpdec/mdc", "pgpdec/ddgt", "rasta/mdc", "rasta/ddgt"}
	for i, c := range sr.Cells {
		if got := c.Bench + "/" + c.Policy; got != want[i] {
			t.Errorf("cell %d = %s, want %s", i, got, want[i])
		}
		if len(c.Loops) == 0 || c.Total.Cycles <= 0 {
			t.Errorf("cell %d empty: %+v", i, c)
		}
	}

	// Identical grid request: cache hit, byte-identical.
	resp2, data2 := post(t, ts, "/v1/suite", body)
	if resp2.Header.Get("X-Cache") != "hit" || !bytes.Equal(data, data2) {
		t.Error("identical suite request must serve identical cached bytes")
	}
}

func TestBenchmarksEndpoint(t *testing.T) {
	srv := New()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, data := get(t, ts, "/v1/benchmarks")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("benchmarks: %d", resp.StatusCode)
	}
	var br apiv1.BenchmarksResponse
	if err := json.Unmarshal(data, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Benchmarks) < 10 {
		t.Fatalf("only %d benchmarks", len(br.Benchmarks))
	}
	var sawPgp bool
	for _, b := range br.Benchmarks {
		if b.Name == "pgpdec" {
			sawPgp = true
			if b.Loops == 0 || b.Interleave == 0 {
				t.Errorf("pgpdec metadata empty: %+v", b)
			}
		}
	}
	if !sawPgp {
		t.Error("pgpdec missing")
	}
}

func TestMetricsEndpoint(t *testing.T) {
	srv := New(WithParallelism(2))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	post(t, ts, "/v1/schedule", scheduleBody(t, nil))
	post(t, ts, "/v1/schedule", scheduleBody(t, nil)) // hit

	resp, data := get(t, ts, "/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
	var m struct {
		Server struct {
			Admitted      int64 `json:"admitted"`
			QueueCapacity int   `json:"queueCapacity"`
			Workers       int   `json:"workers"`
		} `json:"server"`
		Cache []struct {
			Hits   int64 `json:"hits"`
			Misses int64 `json:"misses"`
		} `json:"cache"`
		Engine []struct {
			Name   string `json:"name"`
			Stages []struct {
				Stage string `json:"stage"`
			} `json:"stages"`
		} `json:"engine"`
	}
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("metrics body not parseable: %v\n%s", err, data)
	}
	if m.Server.Admitted != 1 || m.Server.Workers != 2 {
		t.Errorf("server section = %+v", m.Server)
	}
	if len(m.Cache) != 1 || m.Cache[0].Hits != 1 || m.Cache[0].Misses != 1 {
		t.Errorf("cache section = %+v", m.Cache)
	}
	if len(m.Engine) != 1 {
		t.Fatalf("engine section = %+v", m.Engine)
	}
	stages := map[string]bool{}
	for _, st := range m.Engine[0].Stages {
		stages[st.Stage] = true
	}
	for _, want := range []string{"admit", "cache_hit", "compute", "queue", "simulate"} {
		if !stages[want] {
			t.Errorf("stage %q missing from engine metrics (have %v)", want, stages)
		}
	}
}

// TestLRUEvictionAcrossRequests: a byte budget small enough for one
// response evicts the older entry.
func TestLRUEvictionAcrossRequests(t *testing.T) {
	srv := New(WithParallelism(1), WithCacheBytes(700))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	a := scheduleBody(t, nil)
	b := scheduleBody(t, func(r *apiv1.ScheduleRequest) { r.Policy = "ddgt" })
	post(t, ts, "/v1/schedule", a)
	post(t, ts, "/v1/schedule", b) // evicts a
	resp, _ := post(t, ts, "/v1/schedule", a)
	if got := resp.Header.Get("X-Cache"); got != "miss" {
		t.Errorf("evicted entry served as %q, want miss", got)
	}
	if st := srv.CacheStats(); st.Evictions == 0 {
		t.Errorf("no evictions recorded: %+v", st)
	}
}

func TestRequestLogRing(t *testing.T) {
	l := obs.NewRequestLog(2)
	for i := 1; i <= 3; i++ {
		l.EmitRequest(obs.RequestEvent{Seq: int64(i)})
	}
	ev := l.Events()
	if l.Total() != 3 || len(ev) != 2 || ev[0].Seq != 2 || ev[1].Seq != 3 {
		t.Errorf("ring = %+v (total %d)", ev, l.Total())
	}
}

// TestFastPathRequest pins the fastPath wire field: a fast-path request
// returns a body identical to the plain request's (the fast path is
// bit-identical or falls back), but addresses its own cache entry, so a
// fallback investigation never receives the other mode's cached bytes.
func TestFastPathRequest(t *testing.T) {
	srv := New(WithParallelism(2))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	plainBody := scheduleBody(t, nil)
	_, plain := post(t, ts, "/v1/simulate", plainBody)
	fastBody := scheduleBody(t, func(r *apiv1.ScheduleRequest) { r.FastPath = true })
	resp, fast := post(t, ts, "/v1/simulate", fastBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fast-path status = %d (%s)", resp.StatusCode, fast)
	}
	if got := resp.Header.Get("X-Cache"); got != "miss" {
		t.Errorf("fast-path request X-Cache = %q, want miss (distinct cache key)", got)
	}
	if !bytes.Equal(plain, fast) {
		t.Errorf("fast-path response differs from plain simulation:\n%s\n%s", plain, fast)
	}
	if resp2, again := post(t, ts, "/v1/simulate", fastBody); resp2.Header.Get("X-Cache") != "hit" || !bytes.Equal(fast, again) {
		t.Error("repeated fast-path request did not hit its own cache entry byte-identically")
	}
}
