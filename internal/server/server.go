// Package server is the serving layer: paperserved's HTTP service
// wrapping the scheduling + simulation pipeline in a production-shaped
// stack — a versioned wire schema (internal/apiv1), a content-addressed
// result cache with single-flight request coalescing
// (internal/resultcache), and admission control in front of the
// experiment engine's bounded worker pool.
//
// Request lifecycle (the admission-control state machine, see
// DESIGN.md §11):
//
//	decode ──▶ cache hit? ──▶ serve stored bytes        (no admission)
//	   │
//	   ▼ miss
//	admit ──▶ full? ──▶ shed: 429 + Retry-After
//	   │
//	   ▼ token held
//	coalesce (single-flight) ──▶ queue (worker slot) ──▶ compute ──▶ cache
//
// Every stage emits an obs.RequestEvent and records its latency as an
// engine stage histogram, surfaced at GET /metrics. Determinism makes
// the cache exact: a hit's bytes are the bytes the populating miss
// produced.
package server

import (
	"context"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"vliwcache/internal/apiv1"
	"vliwcache/internal/arch"
	"vliwcache/internal/archspace"
	"vliwcache/internal/engine"
	"vliwcache/internal/obs"
	"vliwcache/internal/resultcache"
)

// Defaults for the option-configurable limits.
const (
	DefaultQueueDepth      = 64
	DefaultDeadline        = 30 * time.Second
	DefaultMaxDeadline     = 2 * time.Minute
	DefaultDrainTimeout    = 10 * time.Second
	defaultRequestLogDepth = 1024
)

// Server is the paperserved HTTP service. Build one with New, mount
// Handler on a listener (or call Serve/ListenAndServe), and stop it
// with Shutdown for a graceful drain.
type Server struct {
	base        arch.Config
	parallelism int
	queueDepth  int
	cacheBytes  int64

	defaultDeadline time.Duration
	maxDeadline     time.Duration
	drainTimeout    time.Duration

	eng   *engine.Engine
	cache *resultcache.Cache
	admit chan struct{} // admission tokens: workers + queue depth
	sink  obs.RequestSink

	role      string
	peerView  func() []apiv1.PeerStatus
	retrySeed int64

	seq      atomic.Int64
	admitted atomic.Int64
	shed     atomic.Int64
	inflight atomic.Int64
	draining atomic.Bool
	started  time.Time

	benchOnce sync.Once
	benchBody []byte
	benchErr  error

	archGrid []archspace.Point
	gridOnce sync.Once
	gridBody []byte
	gridErr  error

	httpMu  sync.Mutex
	httpSrv *http.Server

	// testGate, when non-nil, blocks every computation until the gate
	// closes (or the request context expires). Tests use it to hold
	// requests in flight deterministically; production servers never
	// set it.
	testGate chan struct{}
}

// Option configures a Server at construction time.
type Option func(*Server)

// WithArch sets the base machine description requests start from
// (default: the paper's Table 2 configuration). Named configs in a
// request override it.
func WithArch(cfg arch.Config) Option {
	return func(s *Server) { s.base = cfg }
}

// WithArchGrid sets the design-space grid GET /v1/archspace advertises
// (default: the canonical archspace grid). The listing is descriptive —
// clients sweep by echoing a point's arch object back on the compute
// routes — so the grid never changes what a request may ask for.
func WithArchGrid(points []archspace.Point) Option {
	return func(s *Server) { s.archGrid = points }
}

// WithParallelism bounds the worker pool computing responses.
// Non-positive values (and the default) use runtime.GOMAXPROCS(0).
func WithParallelism(n int) Option {
	return func(s *Server) { s.parallelism = n }
}

// WithQueueDepth bounds how many admitted requests may wait for a
// worker slot beyond those executing. Zero means no waiting room (a
// request is admitted only if a worker is expected to be free);
// negative values are treated as zero. Default: DefaultQueueDepth.
func WithQueueDepth(n int) Option {
	return func(s *Server) { s.queueDepth = n }
}

// WithCacheBytes sets the result cache's byte budget
// (default: resultcache.DefaultBudget).
func WithCacheBytes(n int64) Option {
	return func(s *Server) { s.cacheBytes = n }
}

// WithDefaultDeadline sets the per-request deadline applied when a
// request does not carry one (default: DefaultDeadline).
func WithDefaultDeadline(d time.Duration) Option {
	return func(s *Server) { s.defaultDeadline = d }
}

// WithMaxDeadline caps the per-request deadline a client may ask for
// (default: DefaultMaxDeadline).
func WithMaxDeadline(d time.Duration) Option {
	return func(s *Server) { s.maxDeadline = d }
}

// WithDrainTimeout bounds how long Shutdown waits for in-flight
// requests before giving up (default: DefaultDrainTimeout).
func WithDrainTimeout(d time.Duration) Option {
	return func(s *Server) { s.drainTimeout = d }
}

// WithRequestSink installs a sink receiving one obs.RequestEvent per
// request lifecycle stage. The default is a bounded in-memory log;
// pass an explicit sink to export events elsewhere.
func WithRequestSink(sink obs.RequestSink) Option {
	return func(s *Server) { s.sink = sink }
}

// WithRole labels the node in its /healthz body ("worker", "router").
// Empty (the default) keeps the frozen single-node healthz bytes.
func WithRole(role string) Option {
	return func(s *Server) { s.role = role }
}

// WithPeerView installs the function /healthz calls for the node's
// last-polled view of its peers (typically cluster.PeerSet.Snapshot).
// The view must be cheap and non-blocking: healthz answers even when
// the compute queue is saturated.
func WithPeerView(view func() []apiv1.PeerStatus) Option {
	return func(s *Server) { s.peerView = view }
}

// WithRetryJitterSeed seeds the deterministic Retry-After jitter on 429
// responses (default seed 1). Two servers with the same seed shed the
// same burst with the same backoff sequence.
func WithRetryJitterSeed(seed int64) Option {
	return func(s *Server) { s.retrySeed = seed }
}

// retryJitterWindow is the Retry-After spread on 429: 1..3 seconds.
const retryJitterWindow = 3

// splitmix64 is the SplitMix64 mixing function — a bijective avalanche
// over uint64, the same idiom the fault injector and the mc seen-table
// use for cheap deterministic hashing.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// retryAfterSeconds derives the n-th shed response's Retry-After from
// the seed: uniform over [1, retryJitterWindow], deterministic per
// (seed, n) so tests can pin the exact sequence while synchronized
// clients still spread their retries.
func retryAfterSeconds(seed, n int64) int {
	return 1 + int(splitmix64(uint64(seed)^splitmix64(uint64(n)))%retryJitterWindow)
}

// New builds a server. No listener is opened until Serve.
func New(opts ...Option) *Server {
	s := &Server{
		base:            arch.Default(),
		queueDepth:      DefaultQueueDepth,
		defaultDeadline: DefaultDeadline,
		maxDeadline:     DefaultMaxDeadline,
		drainTimeout:    DefaultDrainTimeout,
		started:         time.Now(),
	}
	for _, o := range opts {
		o(s)
	}
	if s.queueDepth < 0 {
		s.queueDepth = 0
	}
	if s.defaultDeadline <= 0 {
		s.defaultDeadline = DefaultDeadline
	}
	if s.maxDeadline < s.defaultDeadline {
		s.maxDeadline = s.defaultDeadline
	}
	if s.sink == nil {
		s.sink = obs.NewRequestLog(defaultRequestLogDepth)
	}
	if s.archGrid == nil {
		s.archGrid = archspace.Canonical().Points()
	}
	s.eng = engine.New(s.parallelism)
	s.cache = resultcache.New(s.cacheBytes)
	s.admit = make(chan struct{}, s.eng.Workers()+s.queueDepth)
	return s
}

// Engine exposes the server's compute engine (for metrics assertions).
func (s *Server) Engine() *engine.Engine { return s.eng }

// CacheStats snapshots the result cache's counters.
func (s *Server) CacheStats() resultcache.Stats { return s.cache.Stats() }

// CacheContains reports whether the result cache holds key, without
// touching hit accounting or LRU order. Cluster tests use it to assert
// every cell landed on its ring owner.
func (s *Server) CacheContains(key string) bool { return s.cache.Contains(key) }

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/schedule", s.handleSchedule)
	mux.HandleFunc("POST /v1/simulate", s.handleSimulate)
	mux.HandleFunc("POST /v1/suite", s.handleSuite)
	mux.HandleFunc("POST /v1/cell", s.handleCell)
	mux.HandleFunc("GET /v1/benchmarks", s.handleBenchmarks)
	mux.HandleFunc("GET /v1/archspace", s.handleArchSpace)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// Serve accepts connections on l until Shutdown (or a listener error).
// Like http.Server.Serve it always returns a non-nil error; after a
// graceful Shutdown that error is http.ErrServerClosed.
func (s *Server) Serve(l net.Listener) error {
	s.httpMu.Lock()
	if s.httpSrv == nil {
		s.httpSrv = &http.Server{Handler: s.Handler()}
	}
	srv := s.httpSrv
	s.httpMu.Unlock()
	return srv.Serve(l)
}

// ListenAndServe listens on addr and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// Shutdown drains the server: new compute requests are refused with a
// typed 503 (draining), idle connections close, and in-flight requests
// get up to the drain timeout to finish. It is safe to call before
// Serve (the server just marks itself draining).
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.httpMu.Lock()
	srv := s.httpSrv
	s.httpMu.Unlock()
	if srv == nil {
		return nil
	}
	if s.drainTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.drainTimeout)
		defer cancel()
	}
	return srv.Shutdown(ctx)
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// emit sends one lifecycle event to the request sink.
func (s *Server) emit(seq int64, route, stage, key string, status int, elapsed time.Duration) {
	s.sink.EmitRequest(obs.RequestEvent{
		Seq: seq, Route: route, Stage: stage, Key: key,
		Status: status, Elapsed: elapsed,
	})
}
