package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"vliwcache/internal/apiv1"
	"vliwcache/internal/experiments"
	"vliwcache/internal/fault"
	"vliwcache/internal/mediabench"
	"vliwcache/internal/report"
	"vliwcache/internal/resultcache"
)

// maxBodyBytes bounds request bodies; loops are small, so 4 MiB is
// generous headroom rather than a real limit.
const maxBodyBytes = 4 << 20

// writeJSON writes a marshaled value with the v1 content type.
func writeJSON(w http.ResponseWriter, status int, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
}

// writeBody serves precomputed response bytes, labeling how the cache
// resolved them (miss / hit / coalesced) in the X-Cache header.
func writeBody(w http.ResponseWriter, body []byte, xcache string) {
	w.Header().Set("Content-Type", "application/json")
	if xcache != "" {
		w.Header().Set("X-Cache", xcache)
	}
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

// writeError writes a typed v1 error.
func writeError(w http.ResponseWriter, status int, resp apiv1.ErrorResponse) {
	writeJSON(w, status, resp)
}

// writeErrorFor maps err through the v1 error taxonomy and writes it.
func writeErrorFor(w http.ResponseWriter, err error) int {
	status, resp := apiv1.ErrorFor(err)
	writeError(w, status, resp)
	return status
}

func badRequest(w http.ResponseWriter, format string, args ...any) {
	writeError(w, http.StatusBadRequest, apiv1.ErrorResponse{
		Code:    apiv1.CodeBadRequest,
		Message: fmt.Sprintf(format, args...),
	})
}

// decodeRequest reads and unmarshals a request body into v.
func decodeRequest(w http.ResponseWriter, r *http.Request, v any) bool {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err != nil {
		badRequest(w, "reading body: %v", err)
		return false
	}
	if err := json.Unmarshal(body, v); err != nil {
		badRequest(w, "decoding request: %v", err)
		return false
	}
	return true
}

// deadlineFor clamps a requested deadline into the server's window.
func (s *Server) deadlineFor(millis int64) time.Duration {
	if millis <= 0 {
		return s.defaultDeadline
	}
	d := time.Duration(millis) * time.Millisecond
	if d > s.maxDeadline {
		return s.maxDeadline
	}
	return d
}

// handleSchedule serves POST /v1/schedule: the full pipeline on one
// loop, returning plan/schedule summary plus simulation statistics.
func (s *Server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	s.serveSchedule(w, r, "/v1/schedule", false)
}

// handleSimulate serves POST /v1/simulate: the same pipeline, but the
// response carries only the simulation statistics.
func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	s.serveSchedule(w, r, "/v1/simulate", true)
}

func (s *Server) serveSchedule(w http.ResponseWriter, r *http.Request, route string, simulateOnly bool) {
	var req apiv1.ScheduleRequest
	if !decodeRequest(w, r, &req) {
		return
	}
	res, eresp := apiv1.ResolveSchedule(route, s.base, &req)
	if eresp != nil {
		writeError(w, apiv1.StatusOf(eresp.Code), *eresp)
		return
	}
	s.serveCached(w, r, route, res.Key, s.deadlineFor(res.DeadlineMillis), func(ctx context.Context) ([]byte, error) {
		opts := res.Sim
		if res.Seed != 0 {
			opts.NewFaults = fault.Seeded(res.Seed, fault.DefaultConfig())
		}
		suiteOpts := []experiments.Option{experiments.WithEngine(s.eng)}
		if len(res.Portfolio) > 0 {
			suiteOpts = append(suiteOpts, experiments.WithPortfolio(res.Portfolio...))
		}
		pr, err := experiments.RunPipelineContext(ctx, res.Loop, res.Config, res.Variant, opts, suiteOpts...)
		if err != nil {
			return nil, err
		}
		if simulateOnly {
			return json.Marshal(apiv1.SimulateResponse{
				Loop:  res.Loop.Name,
				Stats: apiv1.StatsOf(pr.Stats),
			})
		}
		resp := apiv1.ScheduleResponse{
			Loop:      res.Loop.Name,
			Policy:    strings.ToLower(res.Variant.Policy.String()),
			Heuristic: strings.ToLower(res.Variant.Heuristic.String()),
			II:        pr.Schedule.II,
			Comms:     pr.Schedule.CommOps(),
			Stats:     apiv1.StatsOf(pr.Stats),
		}
		if res.IncludeSchedule {
			resp.Schedule = fmt.Sprint(pr.Schedule)
		}
		resp.Scheduler = res.SchedulerLabel
		return json.Marshal(resp)
	})
}

// handleCell serves POST /v1/cell: one suite cell (benchmark ×
// variant), the unit the cluster router fans suite and sweep jobs out
// to. The cell's cache address doubles as the router's consistent-hash
// shard key, so an identical cell always lands on the worker whose
// cache owns it. The body is one apiv1.SuiteCell — byte-identical to
// the corresponding element of the synchronous /v1/suite response.
func (s *Server) handleCell(w http.ResponseWriter, r *http.Request) {
	const route = "/v1/cell"
	var req apiv1.CellRequest
	if !decodeRequest(w, r, &req) {
		return
	}
	res, eresp := apiv1.ResolveCell(s.base, &req)
	if eresp != nil {
		writeError(w, apiv1.StatusOf(eresp.Code), *eresp)
		return
	}
	s.serveCached(w, r, route, res.Key, s.deadlineFor(res.DeadlineMillis), func(ctx context.Context) ([]byte, error) {
		opts := res.Sim
		if res.Seed != 0 {
			opts.NewFaults = fault.Seeded(res.Seed, fault.DefaultConfig())
		}
		// The suite construction mirrors handleSuite cell-for-cell: the
		// per-cell artifacts are deterministic functions of (bench,
		// variant, config, options), so a lone cell is byte-identical to
		// the same cell inside a whole-grid request.
		suiteOpts := []experiments.Option{
			experiments.WithSimOptions(opts),
			experiments.WithParallelism(s.parallelism),
			experiments.WithMachinePool(0),
		}
		if req.Scheduler != "" {
			suiteOpts = append(suiteOpts, experiments.WithScheduler(req.Scheduler))
		}
		if len(req.Portfolio) > 0 {
			suiteOpts = append(suiteOpts, experiments.WithPortfolio(req.Portfolio...))
		}
		suite := experiments.NewSuite(res.Config, suiteOpts...)
		suite.Benches = mediabench.All()
		cell, err := suite.CellContext(ctx, res.Bench, res.Variant)
		if err != nil {
			return nil, err
		}
		sc := apiv1.SuiteCell{
			Bench:     res.Bench,
			Policy:    strings.ToLower(res.Variant.Policy.String()),
			Heuristic: strings.ToLower(res.Variant.Heuristic.String()),
			Loops:     []apiv1.LoopRun{},
			Total:     apiv1.StatsOf(&cell.Total),
			Scheduler: res.SchedulerLabel,
		}
		for _, lr := range cell.Loops {
			sc.Loops = append(sc.Loops, apiv1.LoopRun{
				Loop: lr.Loop, II: lr.II, Comms: lr.Comms,
				Stats: apiv1.StatsOf(lr.Stats),
			})
		}
		return json.Marshal(sc)
	})
}

// handleSuite serves POST /v1/suite: a benchmark × variant grid of
// experiment cells, rendered in canonical order.
func (s *Server) handleSuite(w http.ResponseWriter, r *http.Request) {
	const route = "/v1/suite"
	var req apiv1.SuiteRequest
	if !decodeRequest(w, r, &req) {
		return
	}
	if len(req.Variants) == 0 {
		badRequest(w, "missing variants")
		return
	}
	variants := make([]experiments.Variant, len(req.Variants))
	for i, v := range req.Variants {
		policy, err := apiv1.ParsePolicy(v.Policy)
		if err != nil {
			badRequest(w, "variant %d: %v", i, err)
			return
		}
		heuristic, err := apiv1.ParseHeuristic(v.Heuristic)
		if err != nil {
			badRequest(w, "variant %d: %v", i, err)
			return
		}
		variants[i] = experiments.Variant{Policy: policy, Heuristic: heuristic}
	}
	benches := req.Benches
	if len(benches) == 0 {
		for _, b := range mediabench.Figures() {
			benches = append(benches, b.Name)
		}
	}
	for _, name := range benches {
		if _, err := mediabench.Get(name); err != nil {
			writeErrorFor(w, err)
			return
		}
	}
	if req.MaxIterations < 0 {
		badRequest(w, "iteration caps must be >= 0")
		return
	}
	schedLabel, err := req.SchedulerLabel()
	if err != nil {
		eresp := apiv1.SchedulerErrorResponse(err)
		writeError(w, apiv1.StatusOf(eresp.Code), *eresp)
		return
	}
	opts := req.SimOptions()
	if req.FaultSeed != 0 {
		opts.NewFaults = fault.Seeded(req.FaultSeed, fault.DefaultConfig())
	}
	// Structured arch overrides overlay the server's base machine; the
	// overlay validates, so an impossible geometry is the typed 422.
	base := s.base
	if req.Arch != nil {
		var aerr error
		base, aerr = req.Arch.Apply(s.base)
		if aerr != nil {
			writeErrorFor(w, aerr)
			return
		}
	}

	var variantNames []string
	for _, v := range variants {
		variantNames = append(variantNames, v.String())
	}
	parts := []string{
		route,
		strings.Join(benches, ","),
		strings.Join(variantNames, ","),
		fmt.Sprintf("%+v", s.base),
		apiv1.SimOptionsKey(opts, req.FaultSeed),
	}
	if req.Scheduler != "" {
		parts = append(parts, "scheduler="+req.Scheduler)
	}
	if len(req.Portfolio) > 0 {
		parts = append(parts, "portfolio="+strings.Join(req.Portfolio, "+"))
	}
	// The canonical arch encoding joins the key only for structured
	// requests, preserving every legacy cache address.
	if req.Arch != nil {
		parts = append(parts, "arch="+apiv1.ArchKey(base))
	}
	key := resultcache.Key(parts...)

	s.serveCached(w, r, route, key, s.deadlineFor(req.DeadlineMillis), func(ctx context.Context) ([]byte, error) {
		// Each request gets its own suite (sim options are per-suite
		// state); its internal pool is bounded like the server's, and
		// whole-response reuse happens in the result cache.
		suiteOpts := []experiments.Option{
			experiments.WithSimOptions(opts),
			experiments.WithParallelism(s.parallelism),
			experiments.WithMachinePool(0),
		}
		if req.Scheduler != "" {
			suiteOpts = append(suiteOpts, experiments.WithScheduler(req.Scheduler))
		}
		if len(req.Portfolio) > 0 {
			suiteOpts = append(suiteOpts, experiments.WithPortfolio(req.Portfolio...))
		}
		suite := experiments.NewSuite(base, suiteOpts...)
		suite.Benches = mediabench.All()
		if err := suite.WarmBenches(ctx, benches, variants...); err != nil {
			return nil, err
		}
		resp := apiv1.SuiteResponse{Cells: []apiv1.SuiteCell{}}
		for _, bench := range benches {
			for _, v := range variants {
				cell, err := suite.CellContext(ctx, bench, v)
				if err != nil {
					return nil, err
				}
				sc := apiv1.SuiteCell{
					Bench:     bench,
					Policy:    strings.ToLower(v.Policy.String()),
					Heuristic: strings.ToLower(v.Heuristic.String()),
					Loops:     []apiv1.LoopRun{},
					Total:     apiv1.StatsOf(&cell.Total),
					Scheduler: schedLabel,
				}
				for _, lr := range cell.Loops {
					sc.Loops = append(sc.Loops, apiv1.LoopRun{
						Loop: lr.Loop, II: lr.II, Comms: lr.Comms,
						Stats: apiv1.StatsOf(lr.Stats),
					})
				}
				resp.Cells = append(resp.Cells, sc)
			}
		}
		return json.Marshal(resp)
	})
}

// serveCached drives the admission-control state machine around one
// cacheable computation. See the package comment for the lifecycle.
func (s *Server) serveCached(w http.ResponseWriter, r *http.Request, route, key string, deadline time.Duration, compute func(ctx context.Context) ([]byte, error)) {
	t0 := time.Now()
	seq := s.seq.Add(1)

	if s.draining.Load() {
		s.emit(seq, route, "shed", key, http.StatusServiceUnavailable, time.Since(t0))
		writeError(w, http.StatusServiceUnavailable, apiv1.ErrorResponse{
			Code: apiv1.CodeDraining, Message: "server is draining",
		})
		return
	}

	// Fast path: a stored result needs no admission — hits stay cheap
	// and available even when the queue is saturated.
	if body, ok := s.cache.Peek(key); ok {
		s.eng.RecordStage("cache_hit", time.Since(t0))
		s.emit(seq, route, "cache_hit", key, http.StatusOK, time.Since(t0))
		writeBody(w, body, resultcache.Hit.String())
		return
	}

	// Admission: take a token or shed. Tokens bound requests in the
	// system (executing + waiting for a worker slot).
	select {
	case s.admit <- struct{}{}:
	default:
		shedN := s.shed.Add(1)
		s.eng.RecordStage("shed", time.Since(t0))
		s.emit(seq, route, "shed", key, http.StatusTooManyRequests, time.Since(t0))
		// Deterministic seeded jitter: a burst of synchronized clients
		// shed together must not re-arrive in lockstep, so each 429
		// spreads its retry over a small window. Seeded (not random) so
		// a replayed overload episode backs off identically.
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.retrySeed, shedN)))
		writeError(w, http.StatusTooManyRequests, apiv1.ErrorResponse{
			Code:    apiv1.CodeOverloaded,
			Message: fmt.Sprintf("admission queue full (%d in system)", cap(s.admit)),
		})
		return
	}
	s.admitted.Add(1)
	s.inflight.Add(1)
	defer func() {
		<-s.admit
		s.inflight.Add(-1)
	}()
	s.eng.RecordStage("admit", time.Since(t0))
	s.emit(seq, route, "admit", key, 0, time.Since(t0))

	ctx, cancel := context.WithTimeout(r.Context(), deadline)
	defer cancel()

	body, outcome, err := s.cache.Do(ctx, key, func(ctx context.Context) ([]byte, error) {
		val, err := s.eng.Run(ctx, func(ctx context.Context) (any, error) {
			if gate := s.testGate; gate != nil {
				select {
				case <-gate:
				case <-ctx.Done():
					return nil, ctx.Err()
				}
			}
			return compute(ctx)
		})
		if err != nil {
			return nil, err
		}
		return val.([]byte), nil
	})
	if err != nil {
		status := writeErrorFor(w, err)
		s.emit(seq, route, "error", key, status, time.Since(t0))
		return
	}
	stage := "compute"
	if outcome == resultcache.Coalesced {
		stage = "coalesced"
	}
	s.eng.RecordStage(stage, time.Since(t0))
	s.emit(seq, route, stage, key, http.StatusOK, time.Since(t0))
	writeBody(w, body, outcome.String())
}

// handleBenchmarks serves GET /v1/benchmarks: the synthesized
// Mediabench suite's Table 1 metadata. The body is computed once.
func (s *Server) handleBenchmarks(w http.ResponseWriter, r *http.Request) {
	s.benchOnce.Do(func() {
		resp := apiv1.BenchmarksResponse{}
		for _, b := range mediabench.All() {
			resp.Benchmarks = append(resp.Benchmarks, apiv1.Benchmark{
				Name:         b.Name,
				Interleave:   b.Interleave,
				Loops:        len(b.Loops),
				MainDataSize: b.MainDataSize,
				MainDataPct:  b.MainDataPct,
				ProfileInput: b.ProfileInput,
				ExecInput:    b.ExecInput,
				InFigures:    b.InFigures(),
			})
		}
		s.benchBody, s.benchErr = json.Marshal(resp)
	})
	if s.benchErr != nil {
		writeErrorFor(w, s.benchErr)
		return
	}
	writeBody(w, s.benchBody, "")
}

// handleArchSpace serves GET /v1/archspace: the server's design-space
// grid as named points with fully-specified arch objects a client can
// echo back on the compute routes. The body is computed once.
func (s *Server) handleArchSpace(w http.ResponseWriter, r *http.Request) {
	s.gridOnce.Do(func() {
		resp := apiv1.ArchSpaceResponse{Points: []apiv1.ArchPoint{}}
		for _, p := range s.archGrid {
			resp.Points = append(resp.Points, apiv1.ArchPoint{
				Name: p.Name,
				Key:  apiv1.ArchKey(p.Config),
				Arch: apiv1.ArchOf(p.Config),
			})
		}
		s.gridBody, s.gridErr = json.Marshal(resp)
	})
	if s.gridErr != nil {
		writeErrorFor(w, s.gridErr)
		return
	}
	writeBody(w, s.gridBody, "")
}

// handleHealthz serves GET /healthz: the node's serving/draining state
// plus — on cluster nodes — its role and last-polled peer view, so a
// rolling restart can watch the whole tier from any node. The endpoint
// bypasses admission entirely, so it answers even when the queue is
// saturated.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := apiv1.HealthResponse{Status: "ok", Draining: s.draining.Load(),
		UptimeMillis: time.Since(s.started).Milliseconds(), Role: s.role}
	if st.Draining {
		st.Status = "draining"
	}
	if s.peerView != nil {
		st.Peers = s.peerView()
	}
	writeJSON(w, http.StatusOK, st)
}

// serverMetrics is the server-level section of GET /metrics.
type serverMetrics struct {
	UptimeMillis  int64 `json:"uptimeMillis"`
	Admitted      int64 `json:"admitted"`
	Shed          int64 `json:"shed"`
	Inflight      int64 `json:"inflight"`
	QueueCapacity int   `json:"queueCapacity"`
	Workers       int   `json:"workers"`
	Draining      bool  `json:"draining"`
}

// metricsBody assembles the full /metrics document: server counters,
// result-cache counters (via the report export, fixed field order) and
// the engine metrics with per-stage latency histogram summaries.
type metricsBody struct {
	Server serverMetrics   `json:"server"`
	Cache  json.RawMessage `json:"cache"`
	Engine json.RawMessage `json:"engine"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var cacheBuf, engineBuf bytes.Buffer
	cs := s.cache.Stats()
	if err := report.WriteCacheJSON(&cacheBuf, []report.CacheRecord{{
		Name: "results", Hits: cs.Hits, Misses: cs.Misses, Coalesced: cs.Coalesced,
		Puts: cs.Puts, Evictions: cs.Evictions, Oversized: cs.Oversized,
		Entries: cs.Entries, Bytes: cs.Bytes, BudgetBytes: cs.BudgetBytes,
	}}); err != nil {
		writeErrorFor(w, err)
		return
	}
	if err := report.WriteMetricsJSON(&engineBuf, []report.MetricsRecord{{
		Name: "server", Metrics: s.eng.Metrics(),
	}}); err != nil {
		writeErrorFor(w, err)
		return
	}
	writeJSON(w, http.StatusOK, metricsBody{
		Server: serverMetrics{
			UptimeMillis:  time.Since(s.started).Milliseconds(),
			Admitted:      s.admitted.Load(),
			Shed:          s.shed.Load(),
			Inflight:      s.inflight.Load(),
			QueueCapacity: cap(s.admit),
			Workers:       s.eng.Workers(),
			Draining:      s.draining.Load(),
		},
		Cache:  bytes.TrimSpace(cacheBuf.Bytes()),
		Engine: bytes.TrimSpace(engineBuf.Bytes()),
	})
}
