package server

import "testing"

// TestRetryAfterJitter pins the seeded Retry-After sequence. The shed
// path used to answer a constant "1", synchronizing every rejected
// client into a retry thundering herd exactly one second later; the
// jitter spreads them over 1..3s while staying deterministic per
// (seed, shed-counter) so replays reproduce byte-identical responses.
func TestRetryAfterJitter(t *testing.T) {
	want1 := []int{2, 1, 1, 3, 2, 1, 1, 1}
	want42 := []int{2, 2, 3, 3, 3, 1, 1, 3}
	for i, w := range want1 {
		if got := retryAfterSeconds(1, int64(i+1)); got != w {
			t.Errorf("retryAfterSeconds(1, %d) = %d, want %d", i+1, got, w)
		}
	}
	for i, w := range want42 {
		if got := retryAfterSeconds(42, int64(i+1)); got != w {
			t.Errorf("retryAfterSeconds(42, %d) = %d, want %d", i+1, got, w)
		}
	}
	for n := int64(1); n < 1000; n++ {
		if s := retryAfterSeconds(7, n); s < 1 || s > retryJitterWindow {
			t.Fatalf("retryAfterSeconds(7, %d) = %d out of [1, %d]", n, s, retryJitterWindow)
		}
	}
}
