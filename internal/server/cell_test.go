package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"vliwcache/internal/apiv1"
)

// TestCellMatchesSuiteCell proves the distributed tier's core byte
// invariant at its root: POST /v1/cell returns exactly the bytes of the
// corresponding element of the synchronous /v1/suite response. The
// router assembles suite artifacts by concatenating worker cell bodies,
// so any drift here would break artifact byte-identity cluster-wide.
func TestCellMatchesSuiteCell(t *testing.T) {
	srv := New(WithParallelism(2))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	suiteReq := apiv1.SuiteRequest{
		Benches: []string{"rasta", "pgpdec"},
		Variants: []apiv1.Variant{
			{Policy: "mdc", Heuristic: "prefclus"},
			{Policy: "ddgt", Heuristic: "mincoms"},
		},
		Options: apiv1.Options{MaxIterations: 5, FastPath: true},
	}
	body, err := json.Marshal(suiteReq)
	if err != nil {
		t.Fatal(err)
	}
	resp, data := post(t, ts, "/v1/suite", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("suite status = %d (%s)", resp.StatusCode, data)
	}
	// Keep the suite response's raw bytes per cell: the invariant is
	// byte equality, not value equality after a decode round trip.
	var raw struct {
		Cells []json.RawMessage `json:"cells"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	if len(raw.Cells) != 4 {
		t.Fatalf("cells = %d, want 4", len(raw.Cells))
	}

	i := 0
	for _, bench := range suiteReq.Benches {
		for _, v := range suiteReq.Variants {
			cellReq := apiv1.CellRequest{
				Bench:     bench,
				Policy:    v.Policy,
				Heuristic: v.Heuristic,
				Options:   apiv1.Options{MaxIterations: 5, FastPath: true},
			}
			cb, err := json.Marshal(cellReq)
			if err != nil {
				t.Fatal(err)
			}
			cresp, cdata := post(t, ts, "/v1/cell", cb)
			if cresp.StatusCode != http.StatusOK {
				t.Fatalf("cell %s/%s status = %d (%s)", bench, v.Policy, cresp.StatusCode, cdata)
			}
			if string(cdata) != string(raw.Cells[i]) {
				t.Errorf("cell %s/%s bytes differ from suite cell %d:\n cell: %s\nsuite: %s",
					bench, v.Policy, i, cdata, raw.Cells[i])
			}
			i++
		}
	}
}

// TestCellCaching: a repeated cell is a cache hit replaying identical
// bytes, and the cell's content address (ResolveCell.Key) is the key
// the cache stores it under — the address the router shards on.
func TestCellCaching(t *testing.T) {
	srv := New(WithParallelism(2))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req := apiv1.CellRequest{
		Bench:   "rasta",
		Policy:  "mdc",
		Options: apiv1.Options{MaxIterations: 5},
	}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp1, data1 := post(t, ts, "/v1/cell", body)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("status = %d (%s)", resp1.StatusCode, data1)
	}
	if xc := resp1.Header.Get("X-Cache"); xc != "miss" {
		t.Errorf("first X-Cache = %q, want miss", xc)
	}
	resp2, data2 := post(t, ts, "/v1/cell", body)
	if xc := resp2.Header.Get("X-Cache"); xc != "hit" {
		t.Errorf("second X-Cache = %q, want hit", xc)
	}
	if string(data1) != string(data2) {
		t.Error("hit bytes differ from miss bytes")
	}

	res, eresp := apiv1.ResolveCell(srv.base, &req)
	if eresp != nil {
		t.Fatalf("resolve: %+v", eresp)
	}
	if !srv.CacheContains(res.Key) {
		t.Error("cache does not hold the cell's content address")
	}
}

func TestCellErrors(t *testing.T) {
	srv := New(WithParallelism(1))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cases := []struct {
		name   string
		body   string
		status int
		code   string
	}{
		{"unknown bench", `{"bench":"nope","policy":"mdc"}`, http.StatusNotFound, apiv1.CodeUnknownBenchmark},
		{"missing bench", `{"policy":"mdc"}`, http.StatusBadRequest, apiv1.CodeBadRequest},
		{"bad policy", `{"bench":"rasta","policy":"zzz"}`, http.StatusBadRequest, apiv1.CodeBadRequest},
		{"unknown scheduler", `{"bench":"rasta","policy":"mdc","scheduler":"zzz"}`, http.StatusUnprocessableEntity, apiv1.CodeUnknownScheduler},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp, data := post(t, ts, "/v1/cell", []byte(c.body))
			if resp.StatusCode != c.status {
				t.Fatalf("status = %d (%s), want %d", resp.StatusCode, data, c.status)
			}
			if e := decodeError(t, data); e.Code != c.code {
				t.Errorf("code = %q, want %q", e.Code, c.code)
			}
		})
	}
}
