package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"vliwcache/internal/apiv1"
)

// TestScheduleSchedulerSelection exercises the optional scheduler and
// portfolio request fields on /v1/schedule: valid names run and are
// echoed, unknown names fail with the typed 422, and the two fields are
// mutually exclusive.
func TestScheduleSchedulerSelection(t *testing.T) {
	srv := New(WithParallelism(2))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	decode := func(data []byte) apiv1.ScheduleResponse {
		var r apiv1.ScheduleResponse
		if err := json.Unmarshal(data, &r); err != nil {
			t.Fatalf("decoding %q: %v", data, err)
		}
		return r
	}

	t.Run("named scheduler", func(t *testing.T) {
		body := scheduleBody(t, func(r *apiv1.ScheduleRequest) { r.Scheduler = "mincoms" })
		resp, data := post(t, ts, "/v1/schedule", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d (%s)", resp.StatusCode, data)
		}
		sr := decode(data)
		if sr.Scheduler != "mincoms" {
			t.Errorf("scheduler = %q, want %q", sr.Scheduler, "mincoms")
		}
		if sr.II < 1 {
			t.Errorf("ii = %d", sr.II)
		}
	})

	t.Run("portfolio", func(t *testing.T) {
		body := scheduleBody(t, func(r *apiv1.ScheduleRequest) {
			r.Portfolio = []string{"prefclus", "mincoms"}
		})
		resp, data := post(t, ts, "/v1/schedule", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d (%s)", resp.StatusCode, data)
		}
		if sr := decode(data); sr.Scheduler != "portfolio(prefclus+mincoms)" {
			t.Errorf("scheduler = %q", sr.Scheduler)
		}
	})

	t.Run("portfolio of one matches single scheduler", func(t *testing.T) {
		_, one := post(t, ts, "/v1/schedule", scheduleBody(t, func(r *apiv1.ScheduleRequest) {
			r.Portfolio = []string{"mincoms"}
		}))
		_, single := post(t, ts, "/v1/schedule", scheduleBody(t, func(r *apiv1.ScheduleRequest) {
			r.Scheduler = "mincoms"
		}))
		a, b := decode(one), decode(single)
		a.Scheduler, b.Scheduler = "", "" // labels differ by construction
		if a != b {
			t.Errorf("portfolio-of-one result %+v != single-scheduler result %+v", a, b)
		}
	})

	t.Run("frozen path omits the field", func(t *testing.T) {
		resp, data := post(t, ts, "/v1/schedule", scheduleBody(t, nil))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d (%s)", resp.StatusCode, data)
		}
		if bytes.Contains(data, []byte(`"scheduler"`)) {
			t.Errorf("legacy response grew a scheduler field: %s", data)
		}
	})

	cases := []struct {
		name   string
		mutate func(*apiv1.ScheduleRequest)
		status int
		code   string
	}{
		{"unknown scheduler", func(r *apiv1.ScheduleRequest) { r.Scheduler = "quantum" },
			http.StatusUnprocessableEntity, apiv1.CodeUnknownScheduler},
		{"unknown portfolio member", func(r *apiv1.ScheduleRequest) { r.Portfolio = []string{"prefclus", "quantum"} },
			http.StatusUnprocessableEntity, apiv1.CodeUnknownScheduler},
		{"duplicate portfolio member", func(r *apiv1.ScheduleRequest) { r.Portfolio = []string{"mincoms", "mincoms"} },
			http.StatusBadRequest, apiv1.CodeBadRequest},
		{"scheduler and portfolio together", func(r *apiv1.ScheduleRequest) {
			r.Scheduler = "mincoms"
			r.Portfolio = []string{"prefclus"}
		}, http.StatusBadRequest, apiv1.CodeBadRequest},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp, data := post(t, ts, "/v1/schedule", scheduleBody(t, c.mutate))
			if resp.StatusCode != c.status {
				t.Fatalf("status = %d (%s), want %d", resp.StatusCode, data, c.status)
			}
			if e := decodeError(t, data); e.Code != c.code {
				t.Errorf("code = %q, want %q", e.Code, c.code)
			}
		})
	}
}

// TestSuiteSchedulerSelection exercises the request-level scheduler
// fields on /v1/suite.
func TestSuiteSchedulerSelection(t *testing.T) {
	srv := New(WithParallelism(2))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	suiteBody := func(mutate func(*apiv1.SuiteRequest)) []byte {
		req := apiv1.SuiteRequest{
			Benches:  []string{"rasta"},
			Variants: []apiv1.Variant{{Policy: "mdc", Heuristic: "prefclus"}},
			Options:  apiv1.Options{MaxIterations: 5},
		}
		if mutate != nil {
			mutate(&req)
		}
		body, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}

	t.Run("named scheduler", func(t *testing.T) {
		resp, data := post(t, ts, "/v1/suite", suiteBody(func(r *apiv1.SuiteRequest) {
			r.Scheduler = "mincoms-slack"
		}))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d (%s)", resp.StatusCode, data)
		}
		var sr apiv1.SuiteResponse
		if err := json.Unmarshal(data, &sr); err != nil {
			t.Fatal(err)
		}
		if len(sr.Cells) != 1 || sr.Cells[0].Scheduler != "mincoms-slack" {
			t.Errorf("cells = %+v", sr.Cells)
		}
	})

	t.Run("frozen path omits the field", func(t *testing.T) {
		resp, data := post(t, ts, "/v1/suite", suiteBody(nil))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d (%s)", resp.StatusCode, data)
		}
		if bytes.Contains(data, []byte(`"scheduler"`)) {
			t.Errorf("legacy suite response grew a scheduler field: %s", data)
		}
	})

	t.Run("unknown scheduler", func(t *testing.T) {
		resp, data := post(t, ts, "/v1/suite", suiteBody(func(r *apiv1.SuiteRequest) {
			r.Scheduler = "quantum"
		}))
		if resp.StatusCode != http.StatusUnprocessableEntity {
			t.Fatalf("status = %d (%s)", resp.StatusCode, data)
		}
		if e := decodeError(t, data); e.Code != apiv1.CodeUnknownScheduler {
			t.Errorf("code = %q", e.Code)
		}
	})

	t.Run("scheduler changes the cache key", func(t *testing.T) {
		_, plain := post(t, ts, "/v1/suite", suiteBody(nil))
		resp, named := post(t, ts, "/v1/suite", suiteBody(func(r *apiv1.SuiteRequest) {
			r.Scheduler = "prefclus"
		}))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d (%s)", resp.StatusCode, named)
		}
		// Same underlying schedule, but the named request must not replay
		// the frozen entry's bytes (they differ in the scheduler echo).
		if bytes.Equal(plain, named) {
			t.Error("named-scheduler suite response replayed the frozen-path cache entry")
		}
	})
}
