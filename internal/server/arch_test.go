package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"vliwcache/internal/apiv1"
	"vliwcache/internal/archspace"
	"vliwcache/internal/resultcache"
)

func archBody(t *testing.T, arch string) []byte {
	t.Helper()
	return scheduleBody(t, func(r *apiv1.ScheduleRequest) {
		if arch != "" {
			var a apiv1.Arch
			if err := json.Unmarshal([]byte(arch), &a); err != nil {
				t.Fatal(err)
			}
			r.Arch = &a
		}
	})
}

// TestScheduleStructuredArch drives /v1/schedule through the structured
// arch object: an override computes, the empty object reproduces the
// legacy bytes, and two spellings of one machine share a cache entry.
func TestScheduleStructuredArch(t *testing.T) {
	srv := New(WithParallelism(2))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Override: a 2-cluster machine computes and reports stats.
	resp, data := post(t, ts, "/v1/schedule", archBody(t, `{"numClusters":2}`))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("override status = %d (%s)", resp.StatusCode, data)
	}
	var sr apiv1.ScheduleResponse
	if err := json.Unmarshal(data, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Stats.Cycles <= 0 {
		t.Errorf("override produced no cycles: %+v", sr.Stats)
	}

	// Equivalence: the empty arch object inherits everything, so its
	// body is byte-identical to the legacy request's.
	legacyResp, legacy := post(t, ts, "/v1/schedule", scheduleBody(t, nil))
	if legacyResp.StatusCode != http.StatusOK {
		t.Fatalf("legacy status = %d (%s)", legacyResp.StatusCode, legacy)
	}
	emptyResp, empty := post(t, ts, "/v1/schedule", archBody(t, `{}`))
	if emptyResp.StatusCode != http.StatusOK {
		t.Fatalf("empty-arch status = %d (%s)", emptyResp.StatusCode, empty)
	}
	if !bytes.Equal(legacy, empty) {
		t.Errorf("empty arch object drifted from legacy bytes:\n legacy: %s\n arch{}: %s", legacy, empty)
	}

	// Canonicalization: explicitly spelling the default cluster count
	// resolves to the same machine as the empty object, so the second
	// request is a cache hit on the first's entry.
	hitResp, hit := post(t, ts, "/v1/schedule", archBody(t, `{"numClusters":4}`))
	if hitResp.StatusCode != http.StatusOK {
		t.Fatalf("explicit-default status = %d (%s)", hitResp.StatusCode, hit)
	}
	if got := hitResp.Header.Get("X-Cache"); got != resultcache.Hit.String() {
		t.Errorf("explicit-default spelling X-Cache = %q, want %q (same machine must share a cache entry)", got, resultcache.Hit)
	}
	if !bytes.Equal(hit, empty) {
		t.Errorf("cache hit bytes differ from the populating miss")
	}
}

// TestScheduleInvalidArch is the typed 422 surface: geometries rejected
// by arch.Validate, both directly and after the legacy AB fold.
func TestScheduleInvalidArch(t *testing.T) {
	srv := New(WithParallelism(2))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cases := []struct {
		name string
		body []byte
	}{
		{"interleave wider than block", archBody(t, `{"interleaveBytes":64}`)},
		{"clusters exceed block words", archBody(t, `{"numClusters":8,"interleaveBytes":8}`)},
		{"zero memory buses", archBody(t, `{"memBuses":0}`)},
		{"bad layout name", archBody(t, `{"layout":"toroidal"}`)},
		{"legacy AB fold onto replicated", scheduleBody(t, func(r *apiv1.ScheduleRequest) {
			layout := "replicated"
			r.Arch = &apiv1.Arch{Layout: &layout}
			r.ABEntries = 16
		})},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp, data := post(t, ts, "/v1/schedule", c.body)
			if resp.StatusCode != http.StatusUnprocessableEntity {
				t.Fatalf("status = %d (%s), want 422", resp.StatusCode, data)
			}
			if e := decodeError(t, data); e.Code != apiv1.CodeInvalidArch {
				t.Errorf("code = %q, want %q", e.Code, apiv1.CodeInvalidArch)
			}
		})
	}
}

// TestSuiteStructuredArch overlays an arch override on the suite route
// and checks the invalid geometry is the same typed 422.
func TestSuiteStructuredArch(t *testing.T) {
	srv := New(WithParallelism(2))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := []byte(`{"benches":["pgpdec"],"variants":[{"policy":"mdc","heuristic":"prefclus"}],"maxIterations":25,"arch":{"numClusters":2,"abEntries":16}}`)
	resp, data := post(t, ts, "/v1/suite", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("suite status = %d (%s)", resp.StatusCode, data)
	}
	var suite apiv1.SuiteResponse
	if err := json.Unmarshal(data, &suite); err != nil {
		t.Fatal(err)
	}
	if len(suite.Cells) != 1 || suite.Cells[0].Total.Cycles <= 0 {
		t.Errorf("suite cells = %+v, want one computed cell", suite.Cells)
	}

	// The override joins the cache key: the same request without the
	// arch object must not collide with the overridden entry.
	legacyBody := []byte(`{"benches":["pgpdec"],"variants":[{"policy":"mdc","heuristic":"prefclus"}],"maxIterations":25}`)
	legacyResp, legacyData := post(t, ts, "/v1/suite", legacyBody)
	if legacyResp.StatusCode != http.StatusOK {
		t.Fatalf("legacy suite status = %d (%s)", legacyResp.StatusCode, legacyData)
	}
	if got := legacyResp.Header.Get("X-Cache"); got == resultcache.Hit.String() {
		t.Errorf("legacy suite request hit the overridden entry; keys must differ")
	}
	if bytes.Equal(data, legacyData) {
		t.Errorf("2-cluster override and 4-cluster legacy suite produced identical bytes")
	}

	badResp, badData := post(t, ts, "/v1/suite",
		[]byte(`{"benches":["pgpdec"],"variants":[{"policy":"mdc","heuristic":"prefclus"}],"arch":{"interleaveBytes":3}}`))
	if badResp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("invalid arch status = %d (%s), want 422", badResp.StatusCode, badData)
	}
	if e := decodeError(t, badData); e.Code != apiv1.CodeInvalidArch {
		t.Errorf("code = %q, want %q", e.Code, apiv1.CodeInvalidArch)
	}
}

// TestArchSpaceEndpoint lists the canonical grid and echoes one of its
// points back through /v1/schedule.
func TestArchSpaceEndpoint(t *testing.T) {
	srv := New(WithParallelism(2))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, data := get(t, ts, "/v1/archspace")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d (%s)", resp.StatusCode, data)
	}
	var space apiv1.ArchSpaceResponse
	if err := json.Unmarshal(data, &space); err != nil {
		t.Fatal(err)
	}
	canonical := archspace.Canonical().Points()
	if len(space.Points) != len(canonical) {
		t.Fatalf("listing has %d points, want %d", len(space.Points), len(canonical))
	}
	for i, p := range space.Points {
		if p.Name != canonical[i].Name {
			t.Errorf("point %d name = %q, want %q", i, p.Name, canonical[i].Name)
		}
		if want := apiv1.ArchKey(canonical[i].Config); p.Key != want {
			t.Errorf("point %d key = %q, want %q", i, p.Key, want)
		}
	}

	// Echo the first point's arch object back on the compute route.
	echo := space.Points[0].Arch
	body := scheduleBody(t, func(r *apiv1.ScheduleRequest) { r.Arch = &echo })
	eresp, edata := post(t, ts, "/v1/schedule", body)
	if eresp.StatusCode != http.StatusOK {
		t.Fatalf("echoed point status = %d (%s)", eresp.StatusCode, edata)
	}
}

// TestArchSpaceCustomGrid checks WithArchGrid replaces the advertised
// listing.
func TestArchSpaceCustomGrid(t *testing.T) {
	grid := archspace.Grid{Base: archspace.Canonical().Base, NumClusters: []int{2}}
	srv := New(WithParallelism(1), WithArchGrid(grid.Points()))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, data := get(t, ts, "/v1/archspace")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d (%s)", resp.StatusCode, data)
	}
	var space apiv1.ArchSpaceResponse
	if err := json.Unmarshal(data, &space); err != nil {
		t.Fatal(err)
	}
	if len(space.Points) != 1 || space.Points[0].Name != grid.Points()[0].Name {
		t.Errorf("custom grid listing = %+v, want the single 2-cluster point", space.Points)
	}
}
