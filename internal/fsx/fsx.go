// Package fsx holds small filesystem helpers shared by the binaries.
package fsx

import (
	"os"
	"path/filepath"
)

// WriteFileAtomic writes data to path through a temp file + rename in
// the same directory. Rename is atomic on POSIX filesystems, so a
// concurrent reader sees either the old complete file or the new
// complete file — never a partial write. paperserved's portfile and the
// router's job-artifact dumps use this: both are polled by other
// processes (smoke tests, load generators) exactly while being written.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	// Any failure leaves no trace: remove the temp file on every
	// non-rename exit.
	defer os.Remove(tmpName)
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Chmod(perm); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmpName, path)
}
