package fsx

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")

	if err := WriteFileAtomic(path, []byte("first"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "first" {
		t.Fatalf("read back %q, %v", got, err)
	}

	// Overwrite replaces content wholesale.
	if err := WriteFileAtomic(path, []byte("second, longer content"), 0o600); err != nil {
		t.Fatal(err)
	}
	got, _ = os.ReadFile(path)
	if string(got) != "second, longer content" {
		t.Fatalf("after overwrite: %q", got)
	}

	// No temp litter remains.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".out.txt.tmp-") {
			t.Errorf("temp file left behind: %s", e.Name())
		}
	}
	if len(entries) != 1 {
		t.Errorf("dir has %d entries, want 1", len(entries))
	}

	// Writing into a missing directory fails cleanly.
	if err := WriteFileAtomic(filepath.Join(dir, "nope", "x"), nil, 0o644); err == nil {
		t.Error("write into missing dir must fail")
	}
}
