package ir

import (
	"fmt"
	"sort"
	"strings"
)

// Loop is an innermost loop body: the unit of modulo scheduling. Ops are in
// sequential program order; op IDs equal slice indices after Renumber.
type Loop struct {
	Name string

	// Ops in sequential program order.
	Ops []*Op

	// Symbols maps memory object names to their descriptions. Every
	// AddrExpr.Base of every memory op must be present.
	Symbols map[string]*Symbol

	// Trip is the number of iterations executed per entry of the loop on
	// the execution input.
	Trip int64

	// Entries is how many times the loop is entered during the whole
	// program run (relevant for Attraction Buffer flushes, which happen at
	// loop boundaries).
	Entries int64

	// ProfileTrip is the iteration count used during profiling (the
	// profile input of Table 1); when 0 the execution Trip is used.
	ProfileTrip int64

	// ProfileShift offsets all symbol base addresses during profiling, so
	// the profile input differs from the execution input the way the
	// paper's two input sets do. Padding (§2.2) makes preferred-cluster
	// information consistent between inputs; a shift that is a multiple of
	// NumClusters·InterleaveBytes models padded data, any other value
	// models unpadded data.
	ProfileShift int64
}

// NewLoop returns an empty loop with the given name and a default trip
// count of 1000 iterations entered once.
func NewLoop(name string) *Loop {
	return &Loop{
		Name:    name,
		Symbols: make(map[string]*Symbol),
		Trip:    1000,
		Entries: 1,
	}
}

// AddSymbol registers a memory object. It returns the loop for chaining.
func (l *Loop) AddSymbol(s *Symbol) *Loop {
	l.Symbols[s.Name] = s
	return l
}

// Append adds an op at the end of the loop body, assigning its ID.
func (l *Loop) Append(o *Op) *Op {
	o.ID = len(l.Ops)
	l.Ops = append(l.Ops, o)
	return o
}

// Renumber reassigns op IDs to match slice positions, remapping replica
// origin references via the oldID→newID mapping implied by current
// positions. It must be called after any structural edit that reorders or
// removes ops.
func (l *Loop) Renumber() {
	old := make(map[int]int, len(l.Ops))
	for i, o := range l.Ops {
		old[o.ID] = i
	}
	for i, o := range l.Ops {
		o.ID = i
		if o.IsReplica() {
			if n, ok := old[o.Origin()]; ok {
				o.ReplicaOf = n + 1
			}
		}
	}
}

// Clone returns a deep copy of the loop (ops, symbols).
func (l *Loop) Clone() *Loop {
	c := &Loop{
		Name:         l.Name,
		Ops:          make([]*Op, len(l.Ops)),
		Symbols:      make(map[string]*Symbol, len(l.Symbols)),
		Trip:         l.Trip,
		Entries:      l.Entries,
		ProfileTrip:  l.ProfileTrip,
		ProfileShift: l.ProfileShift,
	}
	for i, o := range l.Ops {
		c.Ops[i] = o.Clone()
	}
	for n, s := range l.Symbols {
		sc := *s
		sc.MayAlias = append([]string(nil), s.MayAlias...)
		c.Symbols[n] = &sc
	}
	return c
}

// MemOps returns the loop's memory operations in program order.
func (l *Loop) MemOps() []*Op {
	var ms []*Op
	for _, o := range l.Ops {
		if o.Kind.IsMem() {
			ms = append(ms, o)
		}
	}
	return ms
}

// Defs returns a map from register to the op IDs defining it, in program
// order.
func (l *Loop) Defs() map[Reg][]int {
	defs := make(map[Reg][]int)
	for _, o := range l.Ops {
		if o.Dst != NoReg {
			defs[o.Dst] = append(defs[o.Dst], o.ID)
		}
	}
	return defs
}

// Validate checks structural invariants: IDs match positions, memory ops
// carry resolvable address expressions with sane sizes, non-memory ops do
// not, stores have no destination, replica references are valid, and
// symbol MayAlias entries name existing symbols.
func (l *Loop) Validate() error {
	if l.Trip <= 0 {
		return fmt.Errorf("ir: loop %q: Trip must be positive, got %d", l.Name, l.Trip)
	}
	if l.Entries <= 0 {
		return fmt.Errorf("ir: loop %q: Entries must be positive, got %d", l.Name, l.Entries)
	}
	for i, o := range l.Ops {
		if o.ID != i {
			return fmt.Errorf("ir: loop %q: op at index %d has ID %d (call Renumber)", l.Name, i, o.ID)
		}
		if o.Kind <= KindInvalid || o.Kind >= kindMax {
			return fmt.Errorf("ir: loop %q: op %s has invalid kind", l.Name, o.Label())
		}
		if o.Kind.IsMem() {
			if o.Addr == nil {
				return fmt.Errorf("ir: loop %q: memory op %s has no address expression", l.Name, o.Label())
			}
			switch o.Addr.Size {
			case 1, 2, 4, 8:
			default:
				return fmt.Errorf("ir: loop %q: op %s has invalid access size %d", l.Name, o.Label(), o.Addr.Size)
			}
			if _, ok := l.Symbols[o.Addr.Base]; !ok {
				return fmt.Errorf("ir: loop %q: op %s references unknown symbol %q", l.Name, o.Label(), o.Addr.Base)
			}
		} else if o.Addr != nil {
			return fmt.Errorf("ir: loop %q: non-memory op %s has an address expression", l.Name, o.Label())
		}
		if o.Kind == KindStore && o.Dst != NoReg {
			return fmt.Errorf("ir: loop %q: store %s has a destination register", l.Name, o.Label())
		}
		if o.IsReplica() {
			if o.Origin() < 0 || o.Origin() >= len(l.Ops) {
				return fmt.Errorf("ir: loop %q: op %s replicates nonexistent op %d", l.Name, o.Label(), o.Origin())
			}
			if l.Ops[o.Origin()].Kind != o.Kind {
				return fmt.Errorf("ir: loop %q: replica %s kind differs from original", l.Name, o.Label())
			}
		}
	}
	for name, s := range l.Symbols {
		if s.Name != name {
			return fmt.Errorf("ir: loop %q: symbol map key %q does not match symbol name %q", l.Name, name, s.Name)
		}
		for _, other := range s.MayAlias {
			if _, ok := l.Symbols[other]; !ok {
				return fmt.Errorf("ir: loop %q: symbol %q may-aliases unknown symbol %q", l.Name, name, other)
			}
		}
	}
	return nil
}

// MayAlias reports whether the two named symbols were declared possibly
// aliasing (symmetrically).
func (l *Loop) MayAlias(a, b string) bool {
	sa, sb := l.Symbols[a], l.Symbols[b]
	if sa != nil {
		for _, n := range sa.MayAlias {
			if n == b {
				return true
			}
		}
	}
	if sb != nil {
		for _, n := range sb.MayAlias {
			if n == a {
				return true
			}
		}
	}
	return false
}

// String renders the loop body, symbols first, one op per line.
func (l *Loop) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "loop %q (trip %d x %d entries)\n", l.Name, l.Trip, l.Entries)
	names := make([]string, 0, len(l.Symbols))
	for n := range l.Symbols {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		s := l.Symbols[n]
		fmt.Fprintf(&b, "  sym %s @%#x size %d", s.Name, s.Base, s.Size)
		if len(s.MayAlias) > 0 {
			fmt.Fprintf(&b, " mayalias %v", s.MayAlias)
		}
		b.WriteByte('\n')
	}
	for _, o := range l.Ops {
		fmt.Fprintf(&b, "  %s\n", o)
	}
	return b.String()
}

// Stats summarizes op counts by kind class.
type Stats struct {
	Ops    int
	Loads  int
	Stores int
	Int    int
	FP     int
	Copies int
}

// Stat computes op-count statistics for the loop.
func (l *Loop) Stat() Stats {
	var s Stats
	s.Ops = len(l.Ops)
	for _, o := range l.Ops {
		switch {
		case o.Kind == KindLoad:
			s.Loads++
		case o.Kind == KindStore:
			s.Stores++
		case o.Kind == KindCopy:
			s.Copies++
		case o.Kind.UnitClass() == ClassFP:
			s.FP++
		default:
			s.Int++
		}
	}
	return s
}
