package ir

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestKindProperties(t *testing.T) {
	for k := KindLoad; k < kindMax; k++ {
		if k.String() == "" || strings.HasPrefix(k.String(), "Kind(") {
			t.Errorf("kind %d has no name", int(k))
		}
		switch k {
		case KindLoad, KindStore:
			if !k.IsMem() || k.UnitClass() != ClassMem {
				t.Errorf("%v must be a memory op on a memory unit", k)
			}
			if k.Latency() != 0 {
				t.Errorf("%v latency is assigned by the scheduler, Latency() must be 0", k)
			}
		case KindFAdd, KindFSub, KindFMul, KindFDiv:
			if k.UnitClass() != ClassFP {
				t.Errorf("%v must execute on an FP unit", k)
			}
			if k.Latency() < 1 {
				t.Errorf("%v latency = %d, want >= 1", k, k.Latency())
			}
		case KindCopy:
			if k.UnitClass() != ClassBus {
				t.Errorf("copy must occupy a bus")
			}
		default:
			if k.UnitClass() != ClassInt {
				t.Errorf("%v must execute on an integer unit", k)
			}
			if k.Latency() < 1 {
				t.Errorf("%v latency = %d, want >= 1", k, k.Latency())
			}
		}
	}
	if KindInvalid.String() == "" {
		t.Error("invalid kind must still render")
	}
}

func TestAddrExprAddrAt(t *testing.T) {
	a := AddrExpr{Base: "x", Offset: 8, Stride: 4, Size: 4}
	if got := a.AddrAt(0x1000, 0); got != 0x1008 {
		t.Errorf("AddrAt(0) = %#x, want 0x1008", got)
	}
	if got := a.AddrAt(0x1000, 10); got != 0x1008+40 {
		t.Errorf("AddrAt(10) = %#x", got)
	}
	neg := AddrExpr{Base: "x", Offset: -16, Stride: -4, Size: 4}
	if got := neg.AddrAt(0x1000, 2); got != 0x1000-16-8 {
		t.Errorf("negative stride AddrAt(2) = %#x", got)
	}
}

func TestAddrAtAffineProperty(t *testing.T) {
	// Address deltas must be linear in the iteration delta.
	f := func(off int32, stride int16, i1, i2 uint16) bool {
		a := AddrExpr{Base: "x", Offset: int64(off), Stride: int64(stride), Size: 4}
		base := uint64(1 << 32)
		d1 := int64(a.AddrAt(base, int64(i1))) - int64(a.AddrAt(base, 0))
		d2 := int64(a.AddrAt(base, int64(i2))) - int64(a.AddrAt(base, 0))
		return d1 == int64(stride)*int64(i1) && d2 == int64(stride)*int64(i2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOverlap(t *testing.T) {
	cases := []struct {
		a    uint64
		sa   int
		b    uint64
		sb   int
		want bool
	}{
		{0, 4, 4, 4, false}, // adjacent
		{0, 4, 3, 4, true},  // one byte shared
		{0, 8, 2, 2, true},  // contained
		{100, 1, 100, 1, true},
		{100, 1, 101, 1, false},
	}
	for _, c := range cases {
		if got := Overlap(c.a, c.sa, c.b, c.sb); got != c.want {
			t.Errorf("Overlap(%d,%d,%d,%d) = %v, want %v", c.a, c.sa, c.b, c.sb, got, c.want)
		}
		if got := Overlap(c.b, c.sb, c.a, c.sa); got != c.want {
			t.Errorf("Overlap must be symmetric for %v", c)
		}
	}
}

func TestLoopValidate(t *testing.T) {
	mk := func() *Loop {
		b := NewBuilder("ok")
		b.Symbol("a", 0x1000, 4096)
		v := b.Load("ld", AddrExpr{Base: "a", Stride: 4, Size: 4})
		b.Store("st", AddrExpr{Base: "a", Offset: 0x100, Stride: 4, Size: 4}, v)
		return b.Loop()
	}

	if err := mk().Validate(); err != nil {
		t.Fatalf("valid loop rejected: %v", err)
	}

	l := mk()
	l.Trip = 0
	if l.Validate() == nil {
		t.Error("zero trip must be rejected")
	}

	l = mk()
	l.Ops[0].Addr.Base = "nosuch"
	if l.Validate() == nil {
		t.Error("unknown symbol must be rejected")
	}

	l = mk()
	l.Ops[0].Addr.Size = 3
	if l.Validate() == nil {
		t.Error("non-power-of-two access size must be rejected")
	}

	l = mk()
	l.Ops[1].Dst = 7
	if l.Validate() == nil {
		t.Error("store with destination register must be rejected")
	}

	l = mk()
	l.Ops[0].Addr = nil
	if l.Validate() == nil {
		t.Error("memory op without address must be rejected")
	}

	l = mk()
	l.Ops[1].ID = 5
	if l.Validate() == nil {
		t.Error("mismatched IDs must be rejected")
	}

	l = mk()
	l.Symbols["a"].MayAlias = []string{"ghost"}
	if l.Validate() == nil {
		t.Error("may-alias to unknown symbol must be rejected")
	}
}

func TestLoopCloneIndependence(t *testing.T) {
	b := NewBuilder("orig")
	b.Symbol("a", 0x1000, 4096)
	v := b.Load("ld", AddrExpr{Base: "a", Stride: 4, Size: 4})
	b.Store("st", AddrExpr{Base: "a", Offset: 64, Stride: 4, Size: 4}, v)
	l := b.Loop()

	c := l.Clone()
	c.Ops[0].Addr.Offset = 999
	c.Ops[0].Name = "mutated"
	c.Symbols["a"].Base = 0xdead
	c.Trip = 1

	if l.Ops[0].Addr.Offset == 999 || l.Ops[0].Name == "mutated" {
		t.Error("clone shares op state with original")
	}
	if l.Symbols["a"].Base == 0xdead {
		t.Error("clone shares symbols with original")
	}
	if l.Trip == 1 {
		t.Error("clone shares scalar fields")
	}
}

func TestRenumberRemapsReplicas(t *testing.T) {
	b := NewBuilder("r")
	b.Symbol("a", 0x1000, 4096)
	v := b.Load("ld", AddrExpr{Base: "a", Stride: 4, Size: 4})
	st := b.Store("st", AddrExpr{Base: "a", Offset: 64, Stride: 4, Size: 4}, v)
	l := b.Loop()

	rep := st.Clone()
	rep.ReplicaOf = st.ID + 1
	rep.Name = "st.c1"
	l.Append(rep)
	l.Renumber()
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	if !l.Ops[2].IsReplica() || l.Ops[2].Origin() != st.ID {
		t.Errorf("replica origin = %d, want %d", l.Ops[2].Origin(), st.ID)
	}

	// Reorder: move the replica to the front; origin must follow the store.
	l.Ops = []*Op{l.Ops[2], l.Ops[0], l.Ops[1]}
	l.Renumber()
	if got := l.Ops[0].Origin(); got != 2 {
		t.Errorf("after reorder, origin = %d, want 2", got)
	}
}

func TestDefsAndMemOps(t *testing.T) {
	b := NewBuilder("d")
	b.Symbol("a", 0x1000, 4096)
	v := b.Load("ld", AddrExpr{Base: "a", Stride: 4, Size: 4})
	w := b.Arith("add", KindAdd, v)
	b.Store("st", AddrExpr{Base: "a", Offset: 64, Stride: 4, Size: 4}, w)
	l := b.Loop()

	defs := l.Defs()
	if len(defs[v]) != 1 || defs[v][0] != 0 {
		t.Errorf("defs[%d] = %v", v, defs[v])
	}
	ms := l.MemOps()
	if len(ms) != 2 || ms[0].Kind != KindLoad || ms[1].Kind != KindStore {
		t.Errorf("MemOps = %v", ms)
	}
	st := l.Stat()
	if st.Ops != 3 || st.Loads != 1 || st.Stores != 1 || st.Int != 1 {
		t.Errorf("Stat = %+v", st)
	}
}

func TestMayAliasSymmetry(t *testing.T) {
	b := NewBuilder("m")
	b.Symbol("p", 0x1000, 64, "q")
	b.Symbol("q", 0x2000, 64)
	b.Symbol("r", 0x3000, 64)
	b.Load("ld", AddrExpr{Base: "p", Stride: 4, Size: 4})
	l := b.Loop()
	if !l.MayAlias("p", "q") || !l.MayAlias("q", "p") {
		t.Error("may-alias must be symmetric")
	}
	if l.MayAlias("p", "r") || l.MayAlias("r", "q") {
		t.Error("unrelated symbols must not alias")
	}
}

func TestLoopString(t *testing.T) {
	b := NewBuilder("s")
	b.Symbol("a", 0x1000, 4096)
	b.Load("ld", AddrExpr{Base: "a", Stride: 4, Size: 4})
	s := b.Loop().String()
	for _, want := range []string{"loop \"s\"", "sym a", "ld: load"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}
