package ir

import (
	"encoding/json"
	"fmt"
)

// The JSON interchange format lets loops be stored in files and fed to the
// command-line tools. It is a direct rendering of the IR:
//
//	{
//	  "name": "daxpy",
//	  "trip": 1000,
//	  "entries": 1,
//	  "symbols": [
//	    {"name": "x", "base": 65536, "size": 1048576},
//	    {"name": "y", "base": 524288, "size": 1048576, "mayAlias": ["x"]}
//	  ],
//	  "ops": [
//	    {"name": "ldx", "kind": "load", "dst": 1,
//	     "addr": {"base": "x", "offset": 0, "stride": 8, "size": 8}},
//	    {"name": "mul", "kind": "fmul", "dst": 2, "srcs": [0, 1]},
//	    {"name": "sty", "kind": "store", "srcs": [2],
//	     "addr": {"base": "y", "stride": 8, "size": 8}}
//	  ]
//	}
//
// Kinds use their String names ("load", "store", "add", ...). Replicas and
// copies are scheduler-internal and not accepted from JSON.

type jsonLoop struct {
	Name         string       `json:"name"`
	Trip         int64        `json:"trip"`
	Entries      int64        `json:"entries,omitempty"`
	ProfileTrip  int64        `json:"profileTrip,omitempty"`
	ProfileShift int64        `json:"profileShift,omitempty"`
	Symbols      []jsonSymbol `json:"symbols"`
	Ops          []jsonOp     `json:"ops"`
}

type jsonSymbol struct {
	Name     string   `json:"name"`
	Base     uint64   `json:"base"`
	Size     int64    `json:"size"`
	MayAlias []string `json:"mayAlias,omitempty"`
}

type jsonOp struct {
	Name string    `json:"name,omitempty"`
	Kind string    `json:"kind"`
	Dst  *int      `json:"dst,omitempty"`
	Srcs []int     `json:"srcs,omitempty"`
	Addr *AddrExpr `json:"addr,omitempty"`
}

// kindByName maps JSON kind names back to Kinds. Copies and fake consumers
// are intentionally absent: they are produced by the tools, not authored.
var kindByName = func() map[string]Kind {
	m := make(map[string]Kind)
	for k := KindLoad; k < kindMax; k++ {
		if k == KindCopy || k == KindFakeUse {
			continue
		}
		m[k.String()] = k
	}
	return m
}()

// EncodeJSON renders the loop in the interchange format.
func EncodeJSON(l *Loop) ([]byte, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	jl := jsonLoop{
		Name:         l.Name,
		Trip:         l.Trip,
		Entries:      l.Entries,
		ProfileTrip:  l.ProfileTrip,
		ProfileShift: l.ProfileShift,
	}
	// Deterministic symbol order: program order of first reference, then
	// leftovers sorted by name via the map walk below being sorted.
	emitted := make(map[string]bool)
	emit := func(name string) {
		if name == "" || emitted[name] {
			return
		}
		s := l.Symbols[name]
		emitted[name] = true
		jl.Symbols = append(jl.Symbols, jsonSymbol{
			Name: s.Name, Base: s.Base, Size: s.Size, MayAlias: s.MayAlias,
		})
	}
	for _, o := range l.Ops {
		if o.Addr != nil {
			emit(o.Addr.Base)
		}
	}
	for _, name := range sortedSymbolNames(l) {
		emit(name)
	}
	for _, o := range l.Ops {
		if o.IsReplica() || o.Kind == KindCopy || o.Kind == KindFakeUse {
			return nil, fmt.Errorf("ir: op %s is tool-generated and cannot be serialized", o.Label())
		}
		jo := jsonOp{Name: o.Name, Kind: o.Kind.String(), Addr: o.Addr}
		if o.Dst != NoReg {
			d := int(o.Dst)
			jo.Dst = &d
		}
		for _, s := range o.Srcs {
			jo.Srcs = append(jo.Srcs, int(s))
		}
		jl.Ops = append(jl.Ops, jo)
	}
	return json.MarshalIndent(jl, "", "  ")
}

// DecodeJSON parses a loop from the interchange format and validates it.
func DecodeJSON(data []byte) (*Loop, error) {
	var jl jsonLoop
	if err := json.Unmarshal(data, &jl); err != nil {
		return nil, fmt.Errorf("ir: %w", err)
	}
	l := NewLoop(jl.Name)
	if jl.Trip > 0 {
		l.Trip = jl.Trip
	}
	if jl.Entries > 0 {
		l.Entries = jl.Entries
	}
	l.ProfileTrip = jl.ProfileTrip
	l.ProfileShift = jl.ProfileShift
	for _, s := range jl.Symbols {
		l.AddSymbol(&Symbol{Name: s.Name, Base: s.Base, Size: s.Size, MayAlias: s.MayAlias})
	}
	for i, jo := range jl.Ops {
		kind, ok := kindByName[jo.Kind]
		if !ok {
			return nil, fmt.Errorf("ir: op %d has unknown kind %q", i, jo.Kind)
		}
		o := &Op{Name: jo.Name, Kind: kind, Dst: NoReg}
		if jo.Dst != nil {
			o.Dst = Reg(*jo.Dst)
		}
		for _, s := range jo.Srcs {
			o.Srcs = append(o.Srcs, Reg(s))
		}
		if jo.Addr != nil {
			a := *jo.Addr
			o.Addr = &a
		}
		l.Append(o)
	}
	if err := l.Validate(); err != nil {
		return nil, err
	}
	return l, nil
}

func sortedSymbolNames(l *Loop) []string {
	names := make([]string, 0, len(l.Symbols))
	for n := range l.Symbols {
		names = append(names, n)
	}
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return names
}
