// Package ir defines the loop-level intermediate representation the
// scheduling techniques operate on: operations with virtual registers,
// affine address expressions for memory accesses, and loops (the unit of
// modulo scheduling).
//
// The representation deliberately models innermost loop bodies only — the
// paper's techniques are local (per-loop) scheduling techniques applied to
// cyclic code. Addresses are affine in the iteration number
// (base + offset + stride·i), which is what the dependence tests, the
// preferred-cluster profiler and the trace-driven simulator all consume.
package ir

import "fmt"

// Kind enumerates operation kinds.
type Kind int

const (
	// KindInvalid is the zero Kind and is never valid in a loop.
	KindInvalid Kind = iota

	// Memory operations.
	KindLoad
	KindStore

	// Integer operations.
	KindAdd
	KindSub
	KindMul
	KindDiv
	KindShift
	KindLogic
	KindCmp

	// Floating-point operations.
	KindFAdd
	KindFSub
	KindFMul
	KindFDiv

	// KindCopy is an inter-cluster register copy. It is inserted by the
	// scheduler (it occupies a register bus, not a functional unit) but may
	// also appear in hand-built graphs.
	KindCopy

	// KindFakeUse is a fake consumer created by the DDGT load–store
	// synchronization transformation when no usable consumer of a load
	// exists (e.g. "add r0 = r0 + rX"). It executes on an integer unit.
	KindFakeUse

	kindMax
)

var kindNames = [...]string{
	KindInvalid: "invalid",
	KindLoad:    "load",
	KindStore:   "store",
	KindAdd:     "add",
	KindSub:     "sub",
	KindMul:     "mul",
	KindDiv:     "div",
	KindShift:   "shift",
	KindLogic:   "logic",
	KindCmp:     "cmp",
	KindFAdd:    "fadd",
	KindFSub:    "fsub",
	KindFMul:    "fmul",
	KindFDiv:    "fdiv",
	KindCopy:    "copy",
	KindFakeUse: "fakeuse",
}

func (k Kind) String() string {
	if k > KindInvalid && k < kindMax {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Class enumerates the functional-unit classes of the machine.
type Class int

const (
	ClassInt Class = iota // integer unit
	ClassFP               // floating-point unit
	ClassMem              // memory port
	ClassBus              // register-to-register bus (copies only)
)

func (c Class) String() string {
	switch c {
	case ClassInt:
		return "INT"
	case ClassFP:
		return "FP"
	case ClassMem:
		return "MEM"
	case ClassBus:
		return "BUS"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// UnitClass returns the functional-unit class an operation of kind k
// executes on.
func (k Kind) UnitClass() Class {
	switch k {
	case KindLoad, KindStore:
		return ClassMem
	case KindFAdd, KindFSub, KindFMul, KindFDiv:
		return ClassFP
	case KindCopy:
		return ClassBus
	default:
		return ClassInt
	}
}

// IsMem reports whether k is a memory operation.
func (k Kind) IsMem() bool { return k == KindLoad || k == KindStore }

// Latency returns the default execution latency in cycles of an operation
// of kind k. Memory operations have no fixed latency here — the scheduler
// assigns one of the four cache-access latencies (§2.2) — so Latency
// returns 0 for them; KindCopy latency is the register bus latency and is
// likewise architecture-dependent.
func (k Kind) Latency() int {
	switch k {
	case KindAdd, KindSub, KindShift, KindLogic, KindCmp, KindFakeUse:
		return 1
	case KindMul:
		return 3
	case KindDiv:
		return 8
	case KindFAdd, KindFSub:
		return 2
	case KindFMul:
		return 4
	case KindFDiv:
		return 12
	default:
		return 0
	}
}

// Reg is a virtual register. The IR assumes an unbounded virtual register
// space; register anti- and output-dependences are assumed to be removed by
// renaming / modulo variable expansion, so the dependence graph carries
// register flow (RF) dependences only, as in the paper.
type Reg int

// NoReg marks the absence of a destination register.
const NoReg Reg = -1

// Op is one operation of a loop body.
type Op struct {
	// ID is the index of the op in its loop's Ops slice. It is assigned by
	// Loop methods; hand-built ops are renumbered by Loop.Renumber.
	ID int

	// Name is an optional human-readable label ("n1", "n2", ...) used in
	// printing and tests.
	Name string

	Kind Kind

	// Dst is the destination register, or NoReg. Stores have no Dst.
	Dst Reg

	// Srcs are the source registers. For a store, Srcs[0] is the stored
	// value by convention (address computation is implicit in Addr).
	Srcs []Reg

	// Addr describes the access pattern of a memory operation; nil for
	// non-memory operations.
	Addr *AddrExpr

	// ReplicaOf is 1 + the ID of the original op this op replicates (store
	// replication, DDGT), or 0 — the zero value — when the op is an
	// original. Replicas of the same original execute mutually exclusively
	// at run time: only the instance whose assigned cluster is the
	// access's home cluster performs the store. Use Origin to read it.
	ReplicaOf int
}

// IsReplica reports whether the op is a store-replication instance.
func (o *Op) IsReplica() bool { return o.ReplicaOf != 0 }

// Origin returns the ID of the original op a replica was cloned from. It
// must only be called when IsReplica is true.
func (o *Op) Origin() int { return o.ReplicaOf - 1 }

// Clone returns a deep copy of the op (Srcs and Addr are copied).
func (o *Op) Clone() *Op {
	c := *o
	c.Srcs = append([]Reg(nil), o.Srcs...)
	if o.Addr != nil {
		a := *o.Addr
		c.Addr = &a
	}
	return &c
}

// Label returns Name when set and "op<ID>" otherwise.
func (o *Op) Label() string {
	if o.Name != "" {
		return o.Name
	}
	return fmt.Sprintf("op%d", o.ID)
}

func (o *Op) String() string {
	s := fmt.Sprintf("%s: %s", o.Label(), o.Kind)
	if o.Dst != NoReg {
		s += fmt.Sprintf(" r%d =", o.Dst)
	}
	for _, r := range o.Srcs {
		s += fmt.Sprintf(" r%d", r)
	}
	if o.Addr != nil {
		s += " " + o.Addr.String()
	}
	if o.IsReplica() {
		s += fmt.Sprintf(" (replica of op %d)", o.Origin())
	}
	return s
}
