package ir

import "fmt"

// AddrExpr is an affine address expression: the access of iteration i
// touches bytes [Address(i), Address(i)+Size) where
//
//	Address(i) = symbolBase(Base) + Offset + Stride·i
//
// The symbol base address is resolved by the loop's symbol table. This form
// drives three consumers:
//
//   - the dependence tester (exact distances for same-symbol, same-stride
//     pairs; conservative otherwise),
//   - the preferred-cluster profiler (home-cluster histogram over a run),
//   - the simulator (actual addresses per iteration).
type AddrExpr struct {
	Base   string `json:"base"`             // symbol (array / memory object) name
	Offset int64  `json:"offset,omitempty"` // constant byte offset into the symbol
	Stride int64  `json:"stride,omitempty"` // bytes advanced per iteration (may be 0 or negative)
	Size   int    `json:"size"`             // access width in bytes (1, 2, 4 or 8)
}

func (a AddrExpr) String() string {
	return fmt.Sprintf("[%s+%d+%d*i]:%d", a.Base, a.Offset, a.Stride, a.Size)
}

// AddrAt returns the byte address accessed at iteration i given the base
// address of the symbol.
func (a AddrExpr) AddrAt(base uint64, i int64) uint64 {
	return uint64(int64(base) + a.Offset + a.Stride*i)
}

// Symbol describes one memory object referenced by a loop.
type Symbol struct {
	Name string
	Base uint64 // base byte address
	Size int64  // object size in bytes (used for trace wrap-around checks)

	// MayAlias lists other symbol names the compiler could not prove
	// disjoint from this one (e.g. two pointer arguments). The dependence
	// tester adds conservative ambiguous dependences between accesses to
	// may-aliased symbols. The relation is treated as symmetric.
	MayAlias []string
}

// Overlap reports whether the byte intervals [a, a+sa) and [b, b+sb)
// intersect.
func Overlap(a uint64, sa int, b uint64, sb int) bool {
	return a < b+uint64(sb) && b < a+uint64(sa)
}
