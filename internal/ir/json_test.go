package ir_test

import (
	"strings"
	"testing"

	"vliwcache/internal/ir"
	"vliwcache/internal/loopgen"
)

func TestJSONRoundTripRandomLoops(t *testing.T) {
	for seed := int64(0); seed < 80; seed++ {
		l := loopgen.Random(seed, loopgen.DefaultParams())
		data, err := ir.EncodeJSON(l)
		if err != nil {
			t.Fatalf("seed %d: encode: %v", seed, err)
		}
		back, err := ir.DecodeJSON(data)
		if err != nil {
			t.Fatalf("seed %d: decode: %v\n%s", seed, err, data)
		}
		if back.Name != l.Name || back.Trip != l.Trip || back.Entries != l.Entries {
			t.Fatalf("seed %d: header mismatch", seed)
		}
		if len(back.Ops) != len(l.Ops) {
			t.Fatalf("seed %d: %d ops, want %d", seed, len(back.Ops), len(l.Ops))
		}
		for i, o := range l.Ops {
			b := back.Ops[i]
			if b.Kind != o.Kind || b.Dst != o.Dst || len(b.Srcs) != len(o.Srcs) {
				t.Fatalf("seed %d op %d: %v vs %v", seed, i, b, o)
			}
			if (o.Addr == nil) != (b.Addr == nil) {
				t.Fatalf("seed %d op %d: addr presence mismatch", seed, i)
			}
			if o.Addr != nil && *o.Addr != *b.Addr {
				t.Fatalf("seed %d op %d: addr %v vs %v", seed, i, *b.Addr, *o.Addr)
			}
		}
		if len(back.Symbols) != len(l.Symbols) {
			t.Fatalf("seed %d: symbol count mismatch", seed)
		}
		for name, s := range l.Symbols {
			bs, ok := back.Symbols[name]
			if !ok || bs.Base != s.Base || bs.Size != s.Size || len(bs.MayAlias) != len(s.MayAlias) {
				t.Fatalf("seed %d: symbol %q mismatch", seed, name)
			}
		}
	}
}

func TestDecodeJSONRejectsGarbage(t *testing.T) {
	cases := []string{
		`not json`,
		`{"name":"x","trip":10,"ops":[{"kind":"teleport"}]}`,
		`{"name":"x","trip":10,"ops":[{"kind":"load"}]}`, // load without addr
		`{"name":"x","trip":10,"symbols":[],"ops":[
		   {"kind":"load","dst":0,"addr":{"base":"ghost","stride":4,"size":4}}]}`,
		`{"name":"x","trip":10,"ops":[{"kind":"copy","dst":1,"srcs":[0]}]}`,
	}
	for i, c := range cases {
		if _, err := ir.DecodeJSON([]byte(c)); err == nil {
			t.Errorf("case %d accepted: %s", i, c)
		}
	}
}

func TestEncodeJSONRejectsToolGeneratedOps(t *testing.T) {
	b := ir.NewBuilder("gen")
	v := b.Arith("a", ir.KindAdd)
	b.Op(&ir.Op{Name: "cp", Kind: ir.KindCopy, Dst: v + 1, Srcs: []ir.Reg{v}})
	if _, err := ir.EncodeJSON(b.Loop()); err == nil {
		t.Error("copies must not serialize")
	}
}

func TestEncodeJSONDeterministic(t *testing.T) {
	l := loopgen.Random(5, loopgen.DefaultParams())
	a, err := ir.EncodeJSON(l)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ir.EncodeJSON(l)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Error("encoding is not deterministic")
	}
	if !strings.Contains(string(a), `"kind"`) {
		t.Error("unexpected encoding shape")
	}
}

func TestDecodeJSONDefaults(t *testing.T) {
	l, err := ir.DecodeJSON([]byte(`{"name":"d","trip":5,"ops":[{"kind":"add","dst":0}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if l.Entries != 1 {
		t.Errorf("entries default = %d, want 1", l.Entries)
	}
}
