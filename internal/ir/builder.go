package ir

// Builder offers a fluent API for constructing loops in tests, examples and
// the synthetic workload generators. Registers are allocated on demand.
type Builder struct {
	loop    *Loop
	nextReg Reg
}

// NewBuilder starts building a loop with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{loop: NewLoop(name)}
}

// Reg allocates a fresh virtual register.
func (b *Builder) Reg() Reg {
	r := b.nextReg
	b.nextReg++
	return r
}

// Symbol declares a memory object and returns the builder for chaining.
func (b *Builder) Symbol(name string, base uint64, size int64, mayAlias ...string) *Builder {
	b.loop.AddSymbol(&Symbol{Name: name, Base: base, Size: size, MayAlias: mayAlias})
	return b
}

// Trip sets execution trip count and entry count.
func (b *Builder) Trip(trip, entries int64) *Builder {
	b.loop.Trip, b.loop.Entries = trip, entries
	return b
}

// Profile sets the profiling trip count and base-address shift.
func (b *Builder) Profile(trip, shift int64) *Builder {
	b.loop.ProfileTrip, b.loop.ProfileShift = trip, shift
	return b
}

// Load appends a load of the given address pattern into a fresh register,
// returning the destination register. name may be empty.
func (b *Builder) Load(name string, addr AddrExpr) Reg {
	dst := b.Reg()
	b.loop.Append(&Op{Name: name, Kind: KindLoad, Dst: dst, Addr: &addr})
	return dst
}

// Store appends a store of val to the given address pattern.
func (b *Builder) Store(name string, addr AddrExpr, val Reg) *Op {
	return b.loop.Append(&Op{Name: name, Kind: KindStore, Dst: NoReg, Srcs: []Reg{val}, Addr: &addr})
}

// Arith appends an arithmetic op of the given kind over srcs, returning the
// fresh destination register.
func (b *Builder) Arith(name string, k Kind, srcs ...Reg) Reg {
	dst := b.Reg()
	b.loop.Append(&Op{Name: name, Kind: k, Dst: dst, Srcs: srcs})
	return dst
}

// Op appends an arbitrary pre-built op.
func (b *Builder) Op(o *Op) *Op { return b.loop.Append(o) }

// Loop finalizes and returns the loop. It panics if validation fails —
// builders are used to construct programmatic test fixtures where an
// invalid loop is a programming error.
func (b *Builder) Loop() *Loop {
	b.loop.Renumber()
	if err := b.loop.Validate(); err != nil {
		panic(err)
	}
	return b.loop
}
