package ddg

import (
	"fmt"

	"vliwcache/internal/ir"
)

// Build constructs the DDG of a loop: register flow dependences from
// def–use analysis (register anti/output dependences are assumed removed by
// renaming, matching the paper), and memory dependences (MF/MA/MO) from the
// affine disambiguator. The loop must validate.
func Build(l *ir.Loop) (*Graph, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	g := New(l)
	buildRegDeps(g)
	if err := buildMemDeps(g); err != nil {
		return nil, err
	}
	return g, nil
}

// MustBuild is Build for programmatically-correct fixtures; it panics on
// error.
func MustBuild(l *ir.Loop) *Graph {
	g, err := Build(l)
	if err != nil {
		panic(err)
	}
	return g
}

// buildRegDeps adds one RF edge per (reaching definition, use) pair. A use
// before any definition in program order is fed by the previous iteration's
// last definition (distance 1); registers never defined in the loop are
// live-in and add no edge.
func buildRegDeps(g *Graph) {
	defs := g.Loop.Defs()
	for _, o := range g.Loop.Ops {
		for _, src := range o.Srcs {
			ds := defs[src]
			if len(ds) == 0 {
				continue // live-in
			}
			// Latest def strictly before this op.
			reaching, dist := -1, 0
			for _, d := range ds {
				if d < o.ID {
					reaching = d
				}
			}
			if reaching < 0 {
				reaching, dist = ds[len(ds)-1], 1 // loop-carried
			}
			if reaching == o.ID {
				// Self-use across iterations (e.g. accumulator updating its
				// own register): loop-carried.
				dist = 1
			}
			g.MustAddEdge(reaching, o.ID, RF, dist, false)
		}
	}
}

// maxExactDist caps the dependence distances materialized by the exact
// same-stride test. Aliases at any distance matter for coherence, and for a
// same-stride pair the set of aliasing distances is intrinsically small
// (|Δoffset| spread over one stride), so this cap exists purely as a guard
// against adversarial inputs with stride 1 and huge access sizes.
const maxExactDist = 1 << 16

// buildMemDeps adds MF/MA/MO edges between every pair of memory operations
// (including a store with itself) that may access overlapping bytes. Exact
// distances are computed when both accesses address the same symbol with
// the same stride; other aliasing pairs get conservative ambiguous edges
// serializing all their instances (distance 0 forward, distance 1
// backward).
func buildMemDeps(g *Graph) error {
	mem := g.Loop.MemOps()
	for i, a := range mem {
		for j := i; j < len(mem); j++ {
			b := mem[j]
			if a.Kind == ir.KindLoad && b.Kind == ir.KindLoad {
				continue // load/load pairs never conflict
			}
			if err := addPairDeps(g, a, b); err != nil {
				return err
			}
		}
	}
	return nil
}

// addPairDeps analyzes one (earlier, later) pair in program order (a.ID <=
// b.ID; a == b for self-dependences) and adds the required edges.
func addPairDeps(g *Graph, a, b *ir.Op) error {
	ea, eb := *a.Addr, *b.Addr
	switch {
	case ea.Base != eb.Base:
		if g.Loop.MayAlias(ea.Base, eb.Base) {
			addAmbiguous(g, a, b)
		}
		return nil
	case ea.Stride != eb.Stride:
		// Same symbol, non-uniform strides: the dependence distance is not
		// constant, so the compiler stays conservative.
		addAmbiguous(g, a, b)
		return nil
	}

	// Exact test: same symbol, common stride s. Iteration i of a touches
	// [ea.Offset + s·i, +Sa); iteration j of b touches [eb.Offset + s·j,
	// +Sb). With d = j - i, the gap pb - pa equals (eb - ea) + s·d, and the
	// intervals overlap iff -Sb < pb - pa < Sa, i.e.
	//   s·d ∈ (ea.Offset - eb.Offset - Sb, ea.Offset - eb.Offset + Sa).
	s := ea.Stride
	diff := ea.Offset - eb.Offset
	lo, hi := diff-int64(eb.Size), diff+int64(ea.Size) // open interval (lo, hi)

	if s == 0 {
		if lo < 0 && 0 < hi {
			// Fixed addresses overlap every iteration: full serialization.
			addSerializing(g, a, b)
		}
		return nil
	}

	// Enumerate integer d with s·d strictly inside (lo, hi).
	// floorDiv/ceilDiv handle negative strides.
	dMin := ceilDiv(lo+1, s)
	dMax := floorDiv(hi-1, s)
	if s < 0 {
		dMin, dMax = ceilDiv(hi-1, s), floorDiv(lo+1, s)
	}
	if dMax-dMin > maxExactDist {
		return fmt.Errorf("ddg: pathological dependence between %s and %s (%d candidate distances)",
			a.Label(), b.Label(), dMax-dMin+1)
	}
	for d := dMin; d <= dMax; d++ {
		if prod := s * d; prod > lo && prod < hi {
			addExact(g, a, b, d)
		}
	}
	return nil
}

// addExact adds the dependence for a confirmed overlap between a's access
// in iteration i and b's access in iteration i+d. d may be negative, in
// which case the dependence runs b → a with distance -d. d == 0 with a == b
// is the access overlapping itself in the same iteration and is skipped.
func addExact(g *Graph, a, b *ir.Op, d int64) {
	switch {
	case d > 0:
		g.MustAddEdge(a.ID, b.ID, memKind(a, b), int(d), false)
	case d < 0:
		if a.ID == b.ID {
			return // mirror of the positive distance, already added
		}
		g.MustAddEdge(b.ID, a.ID, memKind(b, a), int(-d), false)
	default: // d == 0: same iteration
		if a.ID == b.ID {
			return
		}
		// a precedes b in program order (caller guarantees a.ID < b.ID
		// when a != b).
		g.MustAddEdge(a.ID, b.ID, memKind(a, b), 0, false)
	}
}

// addAmbiguous serializes a pair the compiler cannot disambiguate: a→b at
// distance 0 (same-iteration program order) and b→a at distance 1
// (loop-carried), which totally orders all dynamic instances of the two
// ops. For a self pair (a == b) a single distance-1 self edge suffices.
func addAmbiguous(g *Graph, a, b *ir.Op) {
	if a.ID == b.ID {
		g.MustAddEdge(a.ID, b.ID, memKind(a, b), 1, true)
		return
	}
	g.MustAddEdge(a.ID, b.ID, memKind(a, b), 0, true)
	g.MustAddEdge(b.ID, a.ID, memKind(b, a), 1, true)
}

// addSerializing is addAmbiguous for pairs known to conflict (exact test,
// stride 0): the edges are real, not ambiguous.
func addSerializing(g *Graph, a, b *ir.Op) {
	if a.ID == b.ID {
		g.MustAddEdge(a.ID, b.ID, memKind(a, b), 1, false)
		return
	}
	g.MustAddEdge(a.ID, b.ID, memKind(a, b), 0, false)
	g.MustAddEdge(b.ID, a.ID, memKind(b, a), 1, false)
}

// memKind returns the dependence kind for an edge from x to y.
func memKind(x, y *ir.Op) EdgeKind {
	switch {
	case x.Kind == ir.KindStore && y.Kind == ir.KindLoad:
		return MF
	case x.Kind == ir.KindLoad && y.Kind == ir.KindStore:
		return MA
	default:
		return MO
	}
}

func floorDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

func ceilDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) == (b < 0)) {
		q++
	}
	return q
}
