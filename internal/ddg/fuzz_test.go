package ddg

import (
	"testing"

	"vliwcache/internal/ir"
)

// decodeLoop turns fuzz bytes into a structurally valid loop: every four
// bytes become one op (kind selector, symbol/size selector, offset,
// stride). The decoder only produces loops that pass ir validation, so the
// fuzzer explores Build's dependence analysis — address patterns, aliasing,
// distances — rather than tripping input validation.
func decodeLoop(data []byte) *ir.Loop {
	l := ir.NewLoop("fuzz")
	l.Trip, l.Entries = 16, 1
	l.AddSymbol(&ir.Symbol{Name: "A", Base: 0x1000, Size: 4096})
	l.AddSymbol(&ir.Symbol{Name: "B", Base: 0x8000, Size: 4096, MayAlias: []string{"C"}})
	l.AddSymbol(&ir.Symbol{Name: "C", Base: 0x10000, Size: 4096, MayAlias: []string{"B"}})
	syms := [...]string{"A", "B", "C"}
	sizes := [...]int{1, 2, 4, 8}
	arith := [...]ir.Kind{ir.KindAdd, ir.KindMul, ir.KindCmp, ir.KindFAdd, ir.KindFMul}

	var regs []ir.Reg
	next := ir.Reg(0)
	pick := func(b byte) []ir.Reg {
		if len(regs) == 0 {
			return nil
		}
		return []ir.Reg{regs[int(b)%len(regs)]}
	}
	for i := 0; i+3 < len(data) && len(l.Ops) < 24; i += 4 {
		sel, sy, off, st := data[i], data[i+1], data[i+2], data[i+3]
		addr := ir.AddrExpr{
			Base:   syms[int(sy)%len(syms)],
			Offset: int64(off) % 64,
			Stride: int64(int8(st)) % 16,
			Size:   sizes[int(sy>>4)%len(sizes)],
		}
		switch sel % 4 {
		case 0: // load
			l.Append(&ir.Op{Kind: ir.KindLoad, Dst: next, Addr: &addr})
			regs = append(regs, next)
			next++
		case 1: // store
			l.Append(&ir.Op{Kind: ir.KindStore, Dst: ir.NoReg, Srcs: pick(off), Addr: &addr})
		default: // arithmetic over previously defined registers
			srcs := pick(off)
			if s := pick(st); s != nil && sel&0x10 != 0 {
				srcs = append(srcs, s...)
			}
			l.Append(&ir.Op{Kind: arith[int(sel>>5)%len(arith)], Dst: next, Srcs: srcs})
			regs = append(regs, next)
			next++
		}
	}
	l.Renumber()
	if l.Validate() != nil {
		return nil
	}
	return l
}

// FuzzBuildDDG asserts Build never panics on decoder-produced loops and
// that every graph it accepts satisfies the edge invariants downstream
// consumers rely on (endpoints in range, non-negative distances, a
// feasible initiation interval).
func FuzzBuildDDG(f *testing.F) {
	f.Add([]byte{0, 0, 0, 4})                                     // one load
	f.Add([]byte{0, 1, 8, 4, 1, 1, 8, 4})                         // load + store, same address
	f.Add([]byte{0, 0, 0, 1, 1, 0, 0, 255})                       // negative stride store
	f.Add([]byte{0, 1, 0, 4, 2, 0, 0, 0, 1, 2, 0, 4})             // load, arith, store to aliased symbol
	f.Add([]byte{1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 3, 0, 1, 2}) // store/store/load + arith

	f.Fuzz(func(t *testing.T, data []byte) {
		l := decodeLoop(data)
		if l == nil || len(l.Ops) == 0 {
			t.Skip()
		}
		g, err := Build(l)
		if err != nil {
			return // pathological dependence patterns are a legal outcome
		}
		for _, e := range g.Edges() {
			if e.From < 0 || e.From >= g.NumNodes() || e.To < 0 || e.To >= g.NumNodes() {
				t.Fatalf("edge %s endpoints outside [0,%d)", e, g.NumNodes())
			}
			if e.Dist < 0 {
				t.Fatalf("edge %s has negative distance", e)
			}
		}
		if _, err := g.RecMII(DefaultLatency(2)); err != nil {
			t.Errorf("Build-produced graph admits no II: %v", err)
		}
	})
}
