package ddg

import (
	"fmt"

	"vliwcache/internal/ir"
)

// LatencyFunc gives the scheduling latency of an op: the cycles after issue
// before dependent ops may issue. The scheduler supplies one that folds in
// its per-memory-op latency assignment; analyses that run before latency
// assignment can use DefaultLatency.
type LatencyFunc func(*ir.Op) int

// DefaultLatency returns a latency function using ir.Kind.Latency for
// non-memory ops and memLat for every memory op.
func DefaultLatency(memLat int) LatencyFunc {
	return func(o *ir.Op) int {
		if o.Kind.IsMem() {
			return memLat
		}
		return o.Kind.Latency()
	}
}

// EdgeLatency returns the latency component of a dependence edge:
//
//   - RF: the producer's execution latency (the value must exist);
//   - MF/MA/MO: 1 — intra-cluster issue order is what serializes memory
//     accesses at the banks, so the constraint is "issue strictly after";
//   - SYNC: 0 — the store may issue in the same cycle as the load's
//     consumer, because the consumer issuing at all proves (stall-on-use)
//     that the load completed.
func EdgeLatency(e *Edge, ops []*ir.Op, lat LatencyFunc) int {
	switch e.Kind {
	case RF:
		return lat(ops[e.From])
	case SYNC:
		return 0
	default:
		return 1
	}
}

// weight returns the modulo-scheduling constraint weight of e at initiation
// interval II: start(To) >= start(From) + weight.
func weight(e *Edge, ops []*ir.Op, lat LatencyFunc, ii int) int {
	return EdgeLatency(e, ops, lat) - ii*e.Dist
}

// FeasibleII reports whether the recurrence constraints admit a schedule at
// initiation interval ii, i.e. whether the constraint graph has no positive
// cycle.
func (g *Graph) FeasibleII(ii int, lat LatencyFunc) bool {
	_, ok := g.longest(ii, lat)
	return ok
}

// longest computes longest-path times from a virtual source (all nodes at
// time 0) under the II constraint weights. ok is false if a positive cycle
// exists (II infeasible).
func (g *Graph) longest(ii int, lat LatencyFunc) ([]int, bool) {
	n := g.NumNodes()
	t := make([]int, n)
	for round := 0; round < n; round++ {
		changed := false
		for from := 0; from < n; from++ {
			for _, e := range g.out[from] {
				if w := t[from] + weight(e, g.Loop.Ops, lat, ii); w > t[e.To] {
					t[e.To] = w
					changed = true
				}
			}
		}
		if !changed {
			return t, true
		}
	}
	return nil, false
}

// RecMII returns the recurrence-constrained minimum initiation interval:
// the smallest II for which no dependence cycle has positive constraint
// weight. The result is at least 1. A graph with a zero-distance positive
// cycle admits no II at all; such malformed graphs (impossible from Build,
// but constructible through AddEdge) are reported as an error instead of
// diverging.
func (g *Graph) RecMII(lat LatencyFunc) (int, error) {
	lo, hi := 1, 2
	for !g.FeasibleII(hi, lat) {
		hi *= 2
		if hi > 1<<20 {
			return 0, fmt.Errorf("ddg: loop %q admits no initiation interval (zero-distance dependence cycle)", g.Loop.Name)
		}
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if g.FeasibleII(mid, lat) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo, nil
}

// MustRecMII is RecMII for graphs known to be well-formed (fixtures and
// post-validation contexts); it panics on error.
func (g *Graph) MustRecMII(lat LatencyFunc) int {
	mii, err := g.RecMII(lat)
	if err != nil {
		panic(err)
	}
	return mii
}

// ASAP returns the as-soon-as-possible issue times at initiation interval
// ii, or ok=false if ii is infeasible.
func (g *Graph) ASAP(ii int, lat LatencyFunc) ([]int, bool) {
	return g.longest(ii, lat)
}

// ALAP returns as-late-as-possible issue times at initiation interval ii
// such that every op finishes within the given schedule horizon (typically
// max(ASAP)+latency). ok=false if ii is infeasible.
func (g *Graph) ALAP(ii, horizon int, lat LatencyFunc) ([]int, bool) {
	n := g.NumNodes()
	t := make([]int, n)
	for i := range t {
		t[i] = horizon - lat(g.Loop.Ops[i])
	}
	for round := 0; round < n; round++ {
		changed := false
		for from := 0; from < n; from++ {
			for _, e := range g.out[from] {
				if w := t[e.To] - weight(e, g.Loop.Ops, lat, ii); w < t[from] {
					t[from] = w
					changed = true
				}
			}
		}
		if !changed {
			return t, true
		}
	}
	return nil, false
}

// Heights returns scheduling priorities: the height of each op, i.e. the
// longest constraint-weight path from the op to any node, at initiation
// interval ii. Ops on critical recurrences get the largest heights.
// ok=false if ii is infeasible.
func (g *Graph) Heights(ii int, lat LatencyFunc) ([]int, bool) {
	n := g.NumNodes()
	h := make([]int, n)
	for i := range h {
		h[i] = lat(g.Loop.Ops[i])
	}
	for round := 0; round < n; round++ {
		changed := false
		for from := 0; from < n; from++ {
			for _, e := range g.out[from] {
				if w := h[e.To] + weight(e, g.Loop.Ops, lat, ii); w > h[from] {
					h[from] = w
					changed = true
				}
			}
		}
		if !changed {
			return h, true
		}
	}
	return nil, false
}

// ReachableZeroDist reports whether a dependence path of total distance 0
// leads from op `from` to op `to`. The DDGT load–store synchronization uses
// this to detect that synchronizing a store with a given consumer would
// create an unsatisfiable same-iteration cycle, requiring a fake consumer.
func (g *Graph) ReachableZeroDist(from, to int) bool {
	if from == to {
		return true
	}
	seen := make([]bool, g.NumNodes())
	stack := []int{from}
	seen[from] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.out[u] {
			if e.Dist != 0 || seen[e.To] {
				continue
			}
			if e.To == to {
				return true
			}
			seen[e.To] = true
			stack = append(stack, e.To)
		}
	}
	return false
}

// Consumers returns the ops consuming the value produced by op id via RF
// edges, paired with the edge distance.
func (g *Graph) Consumers(id int) []*Edge {
	var cs []*Edge
	for _, e := range g.out[id] {
		if e.Kind == RF {
			cs = append(cs, e)
		}
	}
	return cs
}
