package ddg

import (
	"testing"

	"vliwcache/internal/ir"
)

// chainLoop builds k dependent adds closed by a loop-carried edge:
// RecMII must be exactly k.
func chainLoop(t *testing.T, k int) *ir.Loop {
	t.Helper()
	b := ir.NewBuilder("chain")
	var prev ir.Reg = ir.NoReg
	for i := 0; i < k; i++ {
		if prev == ir.NoReg {
			prev = b.Arith("", ir.KindAdd)
		} else {
			prev = b.Arith("", ir.KindAdd, prev)
		}
	}
	l := b.Loop()
	l.Ops[0].Srcs = append(l.Ops[0].Srcs, prev) // close the cycle, dist 1
	return l
}

func TestRecMIIChain(t *testing.T) {
	for _, k := range []int{1, 2, 5, 17, 40} {
		g := MustBuild(chainLoop(t, k))
		if got := g.MustRecMII(DefaultLatency(1)); got != k {
			t.Errorf("k=%d: RecMII = %d, want %d", k, got, k)
		}
	}
}

func TestRecMIIAcyclic(t *testing.T) {
	b := ir.NewBuilder("acyclic")
	v := b.Arith("", ir.KindAdd)
	w := b.Arith("", ir.KindMul, v)
	b.Arith("", ir.KindAdd, w, v)
	g := MustBuild(b.Loop())
	if got := g.MustRecMII(DefaultLatency(1)); got != 1 {
		t.Errorf("acyclic RecMII = %d, want 1", got)
	}
}

func TestRecMIIDistanceTwo(t *testing.T) {
	// Cycle of total latency 10 spread over distance 2: RecMII = ceil(10/2).
	b := ir.NewBuilder("d2")
	var prev ir.Reg = ir.NoReg
	for i := 0; i < 10; i++ {
		if prev == ir.NoReg {
			prev = b.Arith("", ir.KindAdd)
		} else {
			prev = b.Arith("", ir.KindAdd, prev)
		}
	}
	l := b.Loop()
	g := MustBuild(l)
	// Manually add the back edge at distance 2.
	g.MustAddEdge(9, 0, RF, 2, false)
	if got := g.MustRecMII(DefaultLatency(1)); got != 5 {
		t.Errorf("RecMII = %d, want 5", got)
	}
}

func TestASAPRespectsEdges(t *testing.T) {
	g := MustBuild(chainLoop(t, 6))
	lat := DefaultLatency(1)
	ii := g.MustRecMII(lat)
	asap, ok := g.ASAP(ii, lat)
	if !ok {
		t.Fatal("ASAP infeasible at RecMII")
	}
	for _, e := range g.Edges() {
		if asap[e.To] < asap[e.From]+EdgeLatency(e, g.Loop.Ops, lat)-ii*e.Dist {
			t.Errorf("ASAP violates %v", e)
		}
	}
	alap, ok := g.ALAP(ii, 64, lat)
	if !ok {
		t.Fatal("ALAP infeasible")
	}
	for i := range asap {
		if alap[i] < asap[i] {
			t.Errorf("op %d: ALAP %d < ASAP %d", i, alap[i], asap[i])
		}
	}
}

func TestHeightsMonotoneAlongEdges(t *testing.T) {
	g := MustBuild(chainLoop(t, 6))
	lat := DefaultLatency(1)
	h, ok := g.Heights(7, lat)
	if !ok {
		t.Fatal("heights infeasible")
	}
	for _, e := range g.Edges() {
		if e.Dist > 0 {
			continue
		}
		if h[e.From] <= h[e.To]-EdgeLatency(e, g.Loop.Ops, lat) {
			t.Errorf("height not decreasing along %v: %d vs %d", e, h[e.From], h[e.To])
		}
	}
}

func TestFeasibleIIMonotone(t *testing.T) {
	g := MustBuild(chainLoop(t, 9))
	lat := DefaultLatency(1)
	feas := false
	for ii := 1; ii <= 12; ii++ {
		f := g.FeasibleII(ii, lat)
		if feas && !f {
			t.Errorf("feasibility not monotone at II=%d", ii)
		}
		feas = feas || f
	}
	if !feas {
		t.Error("no feasible II up to 12 for a 9-cycle recurrence")
	}
}

func TestReachableZeroDist(t *testing.T) {
	b := ir.NewBuilder("reach")
	v := b.Arith("a", ir.KindAdd)
	w := b.Arith("b", ir.KindAdd, v)
	b.Arith("c", ir.KindAdd, w)
	b.Arith("d", ir.KindAdd) // disconnected
	g := MustBuild(b.Loop())
	g.MustAddEdge(2, 3, RF, 1, false) // c -> d at distance 1 only

	if !g.ReachableZeroDist(0, 2) {
		t.Error("a must reach c at distance 0")
	}
	if g.ReachableZeroDist(2, 0) {
		t.Error("c must not reach a")
	}
	if g.ReachableZeroDist(0, 3) {
		t.Error("a->d crosses a distance-1 edge and is not zero-distance")
	}
	if !g.ReachableZeroDist(1, 1) {
		t.Error("an op reaches itself trivially")
	}
}

func TestGraphEditing(t *testing.T) {
	b := ir.NewBuilder("edit")
	v := b.Arith("a", ir.KindAdd)
	b.Arith("b", ir.KindAdd, v)
	l := b.Loop()
	g := New(l)
	e := g.MustAddEdge(0, 1, RF, 0, false)
	if g.NumEdges() != 1 || !g.HasEdge(0, 1, RF, 0) {
		t.Fatal("AddEdge failed")
	}
	g.RemoveEdge(e)
	if g.NumEdges() != 0 || g.HasEdge(0, 1, RF, 0) {
		t.Fatal("RemoveEdge failed")
	}
	g.RemoveEdge(e) // double removal is a no-op
	if g.NumEdges() != 0 {
		t.Fatal("double RemoveEdge corrupted the graph")
	}
}

func TestCloneIsolation(t *testing.T) {
	b := ir.NewBuilder("clone")
	v := b.Arith("a", ir.KindAdd)
	b.Arith("b", ir.KindAdd, v)
	g := MustBuild(b.Loop())
	n := g.NumEdges()
	c := g.Clone()
	c.AddEdge(1, 0, SYNC, 0, false)
	if g.NumEdges() != n {
		t.Error("mutating a clone changed the original")
	}
	for _, e := range g.Edges() {
		if e.Kind == SYNC {
			t.Error("SYNC edge leaked into original")
		}
	}
}

func TestNegativeDistancePanics(t *testing.T) {
	b := ir.NewBuilder("neg")
	b.Arith("a", ir.KindAdd)
	g := New(b.Loop())
	defer func() {
		if recover() == nil {
			t.Error("negative distance must panic")
		}
	}()
	g.MustAddEdge(0, 0, RF, -1, false)
}

func TestEdgeKindStrings(t *testing.T) {
	for _, k := range []EdgeKind{RF, MF, MA, MO, SYNC} {
		if k.String() == "" {
			t.Errorf("kind %d has no name", k)
		}
	}
	if !MF.IsMem() || !MA.IsMem() || !MO.IsMem() {
		t.Error("MF/MA/MO are memory dependences")
	}
	if RF.IsMem() || SYNC.IsMem() {
		t.Error("RF/SYNC are not memory dependences")
	}
}
