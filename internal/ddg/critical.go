package ddg

// CriticalCycle returns a dependence cycle that binds the recurrence-
// constrained minimum initiation interval: a cycle whose latency sum
// divided by its distance sum equals RecMII (rounded up). It returns nil
// when the graph has no recurrences (RecMII == 1 with no self-constraining
// cycle). The cycle is reported as its edge sequence, each edge leading
// from the previous one's head.
//
// The scheduler and the CLIs use this to explain *why* a loop cannot run
// faster: typically a loop-carried memory recurrence through a chain store
// and its trailing load.
func (g *Graph) CriticalCycle(lat LatencyFunc) []*Edge {
	recmii, err := g.RecMII(lat)
	if err != nil {
		return nil // no feasible II: every cycle is "critical", none binds
	}
	ii := recmii - 1
	if ii < 1 {
		// RecMII == 1: a cycle still "binds" if some cycle has
		// latency == distance; detect at ii = 0 semantics by trying to
		// find a positive cycle at II 0 … II 0 is meaningless, so treat
		// RecMII 1 as "no recurrence worth reporting".
		return nil
	}

	// At II = RecMII-1 the constraint graph has a positive cycle. Run
	// Bellman-Ford-style relaxation with predecessor tracking to find it.
	n := g.NumNodes()
	t := make([]int, n)
	pred := make([]*Edge, n)
	var last *Edge
	for round := 0; round <= n; round++ {
		last = nil
		for from := 0; from < n; from++ {
			for _, e := range g.out[from] {
				if w := t[from] + weight(e, g.Loop.Ops, lat, ii); w > t[e.To] {
					t[e.To] = w
					pred[e.To] = e
					last = e
				}
			}
		}
		if last == nil {
			return nil // converged: no positive cycle (shouldn't happen)
		}
	}

	// last.To is reachable from a positive cycle; walk predecessors n
	// steps to land inside the cycle, then collect it.
	v := last.To
	for i := 0; i < n; i++ {
		v = pred[v].From
	}
	var cycle []*Edge
	u := v
	for {
		e := pred[u]
		cycle = append(cycle, e)
		u = e.From
		if u == v {
			break
		}
	}
	// Reverse into forward order (each edge's To feeds the next's From).
	for i, j := 0, len(cycle)-1; i < j; i, j = i+1, j-1 {
		cycle[i], cycle[j] = cycle[j], cycle[i]
	}
	return cycle
}

// CycleStats summarizes a dependence cycle: total latency, total distance,
// and the implied II bound ceil(latency/distance).
func (g *Graph) CycleStats(cycle []*Edge, lat LatencyFunc) (latency, distance, bound int) {
	for _, e := range cycle {
		latency += EdgeLatency(e, g.Loop.Ops, lat)
		distance += e.Dist
	}
	if distance > 0 {
		bound = (latency + distance - 1) / distance
	}
	return
}
