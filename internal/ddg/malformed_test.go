package ddg

import (
	"strings"
	"testing"

	"vliwcache/internal/ir"
)

// twoOpLoop is a minimal well-formed loop used as the substrate for
// malformed-graph construction.
func twoOpLoop(t *testing.T) *ir.Loop {
	t.Helper()
	b := ir.NewBuilder("malformed")
	r := b.Arith("", ir.KindAdd)
	b.Arith("", ir.KindAdd, r)
	return b.Loop()
}

// The graph mutators reject malformed edges with errors instead of
// panicking or silently accepting them — the ddg layer is the first line
// of defense for every downstream consumer (chains, replication,
// scheduling), so a corrupt edge must never enter the graph.
func TestAddEdgeRejectsMalformed(t *testing.T) {
	cases := []struct {
		name     string
		from, to int
		dist     int
		wantSub  string
	}{
		{"negative distance", 0, 1, -1, "negative dependence distance"},
		{"from below range", -1, 1, 0, "outside op range"},
		{"to above range", 0, 2, 0, "outside op range"},
		{"both out of range", -3, 99, 0, "outside op range"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := New(twoOpLoop(t))
			e, err := g.AddEdge(tc.from, tc.to, RF, tc.dist, false)
			if err == nil {
				t.Fatalf("AddEdge(%d, %d, dist=%d) accepted a malformed edge", tc.from, tc.to, tc.dist)
			}
			if e != nil {
				t.Error("a rejected edge must be nil")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not mention %q", err, tc.wantSub)
			}
			if g.NumEdges() != 0 {
				t.Errorf("rejected edge still entered the graph (%d edges)", g.NumEdges())
			}
		})
	}
}

func TestMustAddEdgePanicsOnMalformed(t *testing.T) {
	g := New(twoOpLoop(t))
	defer func() {
		if recover() == nil {
			t.Error("MustAddEdge must panic on a malformed edge")
		}
	}()
	g.MustAddEdge(0, 1, RF, -2, false)
}

// A zero-distance positive-latency cycle admits no initiation interval at
// all. Build can never produce one, but AddEdge-constructed graphs can;
// RecMII must report it as an error rather than diverging.
func TestRecMIIZeroDistanceCycle(t *testing.T) {
	g := MustBuild(twoOpLoop(t)) // already has 0 -> 1 RF dist 0
	g.MustAddEdge(1, 0, RF, 0, false)

	if _, err := g.RecMII(DefaultLatency(1)); err == nil {
		t.Fatal("RecMII accepted a zero-distance dependence cycle")
	} else if !strings.Contains(err.Error(), "admits no initiation interval") {
		t.Errorf("unexpected error: %v", err)
	}

	defer func() {
		if recover() == nil {
			t.Error("MustRecMII must panic on a graph with no feasible II")
		}
	}()
	g.MustRecMII(DefaultLatency(1))
}
