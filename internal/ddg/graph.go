// Package ddg builds and analyzes Data Dependence Graphs over loop bodies.
//
// Edges carry a kind (register flow, memory flow, memory anti, memory
// output, or synchronization), a dependence distance in iterations, and an
// ambiguity flag for conservative dependences the disambiguator could not
// prove or disprove. Analyses include recurrence-constrained MII, ASAP/ALAP
// times and height-based scheduling priorities.
package ddg

import (
	"fmt"
	"sort"
	"strings"

	"vliwcache/internal/ir"
)

// EdgeKind classifies dependence edges (§3.1 of the paper).
type EdgeKind int

const (
	// RF is a register flow dependence (producer → consumer).
	RF EdgeKind = iota
	// MF is a memory flow dependence (store → load).
	MF
	// MA is a memory anti dependence (load → store).
	MA
	// MO is a memory output dependence (store → store).
	MO
	// SYNC is a synchronization dependence introduced by the DDGT
	// load–store synchronization transformation: the store must not be
	// scheduled before the chosen consumer of the load.
	SYNC
)

func (k EdgeKind) String() string {
	switch k {
	case RF:
		return "RF"
	case MF:
		return "MF"
	case MA:
		return "MA"
	case MO:
		return "MO"
	case SYNC:
		return "SYNC"
	}
	return fmt.Sprintf("EdgeKind(%d)", int(k))
}

// IsMem reports whether the kind is one of the memory dependence kinds
// (MF, MA or MO). SYNC edges are scheduling edges, not memory dependences.
func (k EdgeKind) IsMem() bool { return k == MF || k == MA || k == MO }

// Edge is a dependence from op From to op To with the given distance in
// iterations: the instance of To in iteration i+Dist depends on the
// instance of From in iteration i.
type Edge struct {
	From, To int
	Kind     EdgeKind
	Dist     int

	// Ambiguous marks conservative dependences: the disambiguator could
	// not prove the accesses independent (may-aliased symbols or
	// non-uniform strides). Code specialization (§6) targets these.
	Ambiguous bool
}

func (e *Edge) String() string {
	amb := ""
	if e.Ambiguous {
		amb = "?"
	}
	return fmt.Sprintf("%d-%s%s(d=%d)->%d", e.From, e.Kind, amb, e.Dist, e.To)
}

// Graph is a DDG over the ops of a loop. Node IDs are op IDs.
type Graph struct {
	Loop *ir.Loop

	out [][]*Edge
	in  [][]*Edge
	n   int // edge count
}

// New returns an empty graph sized for the loop's current ops.
func New(l *ir.Loop) *Graph {
	return &Graph{
		Loop: l,
		out:  make([][]*Edge, len(l.Ops)),
		in:   make([][]*Edge, len(l.Ops)),
	}
}

// NumNodes returns the number of nodes (ops) the graph covers.
func (g *Graph) NumNodes() int { return len(g.out) }

// NumEdges returns the number of edges.
func (g *Graph) NumEdges() int { return g.n }

// Grow extends the adjacency structures to cover ops appended to the loop
// after the graph was created (DDGT adds replicas and fake consumers).
func (g *Graph) Grow() {
	for len(g.out) < len(g.Loop.Ops) {
		g.out = append(g.out, nil)
		g.in = append(g.in, nil)
	}
}

// AddEdge inserts a dependence edge and returns it. It rejects negative
// distances and endpoints outside the loop's op range — a graph reached
// through the public API must never panic on malformed input.
func (g *Graph) AddEdge(from, to int, kind EdgeKind, dist int, ambiguous bool) (*Edge, error) {
	if dist < 0 {
		return nil, fmt.Errorf("ddg: negative dependence distance %d (%d->%d)", dist, from, to)
	}
	g.Grow()
	if from < 0 || from >= len(g.out) || to < 0 || to >= len(g.in) {
		return nil, fmt.Errorf("ddg: edge %d->%d outside op range [0,%d)", from, to, len(g.out))
	}
	e := &Edge{From: from, To: to, Kind: kind, Dist: dist, Ambiguous: ambiguous}
	g.out[from] = append(g.out[from], e)
	g.in[to] = append(g.in[to], e)
	g.n++
	return e, nil
}

// MustAddEdge is AddEdge for construction paths whose inputs are valid by
// invariant (the builders in this package, the DDGT transformation, test
// fixtures); it panics on error.
func (g *Graph) MustAddEdge(from, to int, kind EdgeKind, dist int, ambiguous bool) *Edge {
	e, err := g.AddEdge(from, to, kind, dist, ambiguous)
	if err != nil {
		panic(err)
	}
	return e
}

// HasEdge reports whether an edge with identical endpoints, kind and
// distance already exists.
func (g *Graph) HasEdge(from, to int, kind EdgeKind, dist int) bool {
	for _, e := range g.out[from] {
		if e.To == to && e.Kind == kind && e.Dist == dist {
			return true
		}
	}
	return false
}

// RemoveEdge deletes e from the graph. It is a no-op if e was already
// removed.
func (g *Graph) RemoveEdge(e *Edge) {
	removed := false
	g.out[e.From], removed = splice(g.out[e.From], e)
	if removed {
		g.in[e.To], _ = splice(g.in[e.To], e)
		g.n--
	}
}

func splice(es []*Edge, e *Edge) ([]*Edge, bool) {
	for i, x := range es {
		if x == e {
			return append(es[:i], es[i+1:]...), true
		}
	}
	return es, false
}

// Out returns the edges leaving op id. The slice must not be mutated.
func (g *Graph) Out(id int) []*Edge { return g.out[id] }

// In returns the edges entering op id. The slice must not be mutated.
func (g *Graph) In(id int) []*Edge { return g.in[id] }

// Edges returns all edges in a deterministic order.
func (g *Graph) Edges() []*Edge {
	var es []*Edge
	for _, out := range g.out {
		es = append(es, out...)
	}
	sort.Slice(es, func(i, j int) bool {
		a, b := es[i], es[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Dist < b.Dist
	})
	return es
}

// MemEdges returns all memory dependence edges (MF/MA/MO).
func (g *Graph) MemEdges() []*Edge {
	var es []*Edge
	for _, e := range g.Edges() {
		if e.Kind.IsMem() {
			es = append(es, e)
		}
	}
	return es
}

// String renders the graph, one edge per line, using op labels.
func (g *Graph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ddg %q: %d nodes, %d edges\n", g.Loop.Name, g.NumNodes(), g.NumEdges())
	for _, e := range g.Edges() {
		amb := ""
		if e.Ambiguous {
			amb = " (ambiguous)"
		}
		fmt.Fprintf(&b, "  %s -%s(d=%d)-> %s%s\n",
			g.Loop.Ops[e.From].Label(), e.Kind, e.Dist, g.Loop.Ops[e.To].Label(), amb)
	}
	return b.String()
}

// Clone returns a deep copy of the graph sharing the same loop pointer.
// Use CloneWithLoop to re-target a cloned loop.
func (g *Graph) Clone() *Graph { return g.CloneWithLoop(g.Loop) }

// CloneWithLoop returns a deep copy of the graph attached to the given loop
// (which must have the same op IDs).
func (g *Graph) CloneWithLoop(l *ir.Loop) *Graph {
	c := &Graph{
		Loop: l,
		out:  make([][]*Edge, len(g.out)),
		in:   make([][]*Edge, len(g.in)),
		n:    g.n,
	}
	for from, es := range g.out {
		for _, e := range es {
			ne := *e
			c.out[from] = append(c.out[from], &ne)
			c.in[e.To] = append(c.in[e.To], &ne)
		}
	}
	return c
}
