package ddg

import (
	"testing"

	"vliwcache/internal/ir"
)

func TestCriticalCycleChain(t *testing.T) {
	g := MustBuild(chainLoop(t, 12))
	lat := DefaultLatency(1)
	cycle := g.CriticalCycle(lat)
	if cycle == nil {
		t.Fatal("a 12-op recurrence must report a critical cycle")
	}
	latency, distance, bound := g.CycleStats(cycle, lat)
	if bound != g.MustRecMII(lat) {
		t.Errorf("cycle bound %d (lat %d / dist %d) != RecMII %d",
			bound, latency, distance, g.MustRecMII(lat))
	}
	// The cycle must be well-formed: consecutive edges connected, closed.
	for i, e := range cycle {
		next := cycle[(i+1)%len(cycle)]
		if e.To != next.From {
			t.Fatalf("edge %d (%v) does not feed edge %d (%v)", i, e, i+1, next)
		}
	}
}

func TestCriticalCycleMemoryRecurrence(t *testing.T) {
	// store C[i] -> load C[i-1] -> add -> store: the classic loop-carried
	// memory recurrence. The critical cycle must include the MF edge.
	b := ir.NewBuilder("memrec")
	b.Symbol("c", 0x1000, 1<<20)
	v := b.Load("ld", ir.AddrExpr{Base: "c", Offset: -16, Stride: 16, Size: 4})
	w := b.Arith("r0", ir.KindAdd, v)
	x := b.Arith("r1", ir.KindAdd, w)
	b.Store("st", ir.AddrExpr{Base: "c", Stride: 16, Size: 4}, x)
	g := MustBuild(b.Loop())
	lat := DefaultLatency(1)
	cycle := g.CriticalCycle(lat)
	if cycle == nil {
		t.Fatal("memory recurrence not found")
	}
	hasMF := false
	for _, e := range cycle {
		if e.Kind == MF {
			hasMF = true
		}
	}
	if !hasMF {
		t.Errorf("critical cycle misses the MF edge: %v", cycle)
	}
	if _, _, bound := g.CycleStats(cycle, lat); bound != g.MustRecMII(lat) {
		t.Errorf("bound mismatch")
	}
}

func TestCriticalCycleAcyclic(t *testing.T) {
	b := ir.NewBuilder("acyc")
	v := b.Arith("a", ir.KindAdd)
	b.Arith("b", ir.KindMul, v)
	g := MustBuild(b.Loop())
	if c := g.CriticalCycle(DefaultLatency(1)); c != nil {
		t.Errorf("acyclic graph reported a cycle: %v", c)
	}
}
