package ddg

import (
	"math/rand"
	"testing"

	"vliwcache/internal/ir"
)

func pairLoop(t *testing.T, a, b ir.AddrExpr, aStore, bStore bool, mayAlias bool) *ir.Loop {
	t.Helper()
	l := ir.NewLoop("pair")
	l.Trip = 64
	var alias []string
	if mayAlias && a.Base != b.Base {
		alias = []string{b.Base}
	}
	l.AddSymbol(&ir.Symbol{Name: a.Base, Base: 0x100000, Size: 1 << 20, MayAlias: alias})
	if b.Base != a.Base {
		l.AddSymbol(&ir.Symbol{Name: b.Base, Base: 0x200000, Size: 1 << 20})
	}
	mk := func(name string, e ir.AddrExpr, store bool, src ir.Reg) *ir.Op {
		if store {
			return &ir.Op{Name: name, Kind: ir.KindStore, Dst: ir.NoReg, Srcs: []ir.Reg{src}, Addr: &e}
		}
		return &ir.Op{Name: name, Kind: ir.KindLoad, Dst: src, Addr: &e}
	}
	l.Append(mk("a", a, aStore, 0))
	l.Append(mk("b", b, bStore, 1))
	l.Renumber()
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	return l
}

// edgeSet extracts the loop's memory dependences as (from, to, dist).
func edgeSet(g *Graph) map[[3]int]bool {
	s := make(map[[3]int]bool)
	for _, e := range g.Edges() {
		if e.Kind.IsMem() {
			s[[3]int{e.From, e.To, e.Dist}] = true
		}
	}
	return s
}

// bruteDeps enumerates actual overlaps among the loop's memory accesses
// (including each store with itself) over a window of iterations and
// returns the required dependences as (from, to, dist) triples.
func bruteDeps(l *ir.Loop, window int64) map[[3]int]bool {
	deps := make(map[[3]int]bool)
	pair := func(a, b *ir.Op) {
		if a.Kind == ir.KindLoad && b.Kind == ir.KindLoad {
			return
		}
		baseA := l.Symbols[a.Addr.Base].Base
		baseB := l.Symbols[b.Addr.Base].Base
		for i := int64(0); i < window; i++ {
			for j := int64(0); j < window; j++ {
				if !ir.Overlap(a.Addr.AddrAt(baseA, i), a.Addr.Size, b.Addr.AddrAt(baseB, j), b.Addr.Size) {
					continue
				}
				switch {
				case j > i:
					deps[[3]int{a.ID, b.ID, int(j - i)}] = true
				case j < i:
					deps[[3]int{b.ID, a.ID, int(i - j)}] = true
				case a.ID != b.ID:
					deps[[3]int{a.ID, b.ID, 0}] = true
				}
			}
		}
	}
	pair(l.Ops[0], l.Ops[1])
	pair(l.Ops[0], l.Ops[0])
	pair(l.Ops[1], l.Ops[1])
	return deps
}

// TestExactDependenceSoundAndComplete is the core disambiguation property:
// for same-symbol, same-stride pairs the dependence set must equal the
// brute-force ground truth (direction AND distance), modulo the window.
func TestExactDependenceSoundAndComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	sizes := []int{1, 2, 4, 8}
	const window = 24
	for trial := 0; trial < 2000; trial++ {
		stride := int64(rng.Intn(33) - 16)
		offA := int64(rng.Intn(65) - 32)
		offB := int64(rng.Intn(65) - 32)
		sa := sizes[rng.Intn(len(sizes))]
		sb := sizes[rng.Intn(len(sizes))]
		aStore := rng.Intn(2) == 0
		bStore := !aStore || rng.Intn(2) == 0 // at least one store

		a := ir.AddrExpr{Base: "s", Offset: offA, Stride: stride, Size: sa}
		b := ir.AddrExpr{Base: "s", Offset: offB, Stride: stride, Size: sb}
		l := pairLoop(t, a, b, aStore, bStore, false)
		g, err := Build(l)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		got := edgeSet(g)
		want := bruteDeps(l, window)

		// Completeness: every ground-truth ordering must be enforced,
		// either by a direct edge or by a serializing pattern (a unit-
		// distance self edge orders all instances of an op; the
		// {(a,b,0),(b,a,1)} pair totally orders two ops).
		// An edge (x,y,d') implies (x,y,d) for every d >= d', because the
		// dynamic instances of one op always reach the banks in iteration
		// order (same source cluster, in-order issue).
		implied := func(dep [3]int) bool {
			for d := 0; d <= dep[2]; d++ {
				if got[[3]int{dep[0], dep[1], d}] {
					return true
				}
			}
			return false
		}
		for dep := range want {
			if !implied(dep) {
				t.Fatalf("trial %d (stride %d, offs %d/%d sizes %d/%d): missing dependence %v\ngot %v",
					trial, stride, offA, offB, sa, sb, dep, got)
			}
		}
		for dep := range got {
			if dep[2] < window/2 && !want[dep] {
				t.Fatalf("trial %d (stride %d, offs %d/%d sizes %d/%d): spurious dependence %v\nwant %v",
					trial, stride, offA, offB, sa, sb, dep, want)
			}
		}
	}
}

func TestLoadLoadPairsHaveNoDeps(t *testing.T) {
	a := ir.AddrExpr{Base: "s", Offset: 0, Stride: 4, Size: 4}
	b := ir.AddrExpr{Base: "s", Offset: 0, Stride: 4, Size: 4}
	l := pairLoop(t, a, b, false, false, false)
	g := MustBuild(l)
	if len(g.MemEdges()) != 0 {
		t.Errorf("load/load pair produced %v", g.MemEdges())
	}
}

func TestMayAliasConservative(t *testing.T) {
	a := ir.AddrExpr{Base: "p", Offset: 0, Stride: 4, Size: 4}
	b := ir.AddrExpr{Base: "q", Offset: 0, Stride: 8, Size: 4}
	l := pairLoop(t, a, b, false, true, true)
	g := MustBuild(l)
	es := g.MemEdges()
	if len(es) != 2 {
		t.Fatalf("may-aliased pair must serialize with 2 edges, got %v", es)
	}
	for _, e := range es {
		if !e.Ambiguous {
			t.Errorf("conservative edge %v must be marked ambiguous", e)
		}
	}
	// Forward distance 0, backward distance 1.
	if !g.HasEdge(0, 1, MA, 0) || !g.HasEdge(1, 0, MF, 1) {
		t.Errorf("expected MA(0->1,d0) and MF(1->0,d1): %v", es)
	}
}

func TestDifferentSymbolsNoAliasNoDeps(t *testing.T) {
	a := ir.AddrExpr{Base: "p", Offset: 0, Stride: 4, Size: 4}
	b := ir.AddrExpr{Base: "q", Offset: 0, Stride: 4, Size: 4}
	l := pairLoop(t, a, b, true, true, false)
	g := MustBuild(l)
	if len(g.MemEdges()) != 0 {
		t.Errorf("independent symbols produced %v", g.MemEdges())
	}
}

func TestNonUniformStridesConservative(t *testing.T) {
	a := ir.AddrExpr{Base: "s", Offset: 0, Stride: 4, Size: 4}
	b := ir.AddrExpr{Base: "s", Offset: 0, Stride: 8, Size: 4}
	l := pairLoop(t, a, b, true, false, false)
	g := MustBuild(l)
	es := g.MemEdges()
	if len(es) != 2 {
		t.Fatalf("non-uniform strides must serialize, got %v", es)
	}
	for _, e := range es {
		if !e.Ambiguous {
			t.Errorf("edge %v must be ambiguous", e)
		}
	}
}

func TestStrideZeroSelfOutput(t *testing.T) {
	// A store writing the same address every iteration depends on itself
	// at distance 1 (real, not ambiguous).
	l := ir.NewLoop("self")
	l.Trip = 16
	l.AddSymbol(&ir.Symbol{Name: "s", Base: 0x1000, Size: 64})
	l.Append(&ir.Op{Name: "st", Kind: ir.KindStore, Dst: ir.NoReg, Srcs: []ir.Reg{0},
		Addr: &ir.AddrExpr{Base: "s", Stride: 0, Size: 4}})
	l.Renumber()
	g := MustBuild(l)
	if !g.HasEdge(0, 0, MO, 1) {
		t.Errorf("missing self MO(d=1): %v", g.Edges())
	}
	for _, e := range g.Edges() {
		if e.Ambiguous {
			t.Errorf("stride-0 self dependence is exact, got ambiguous %v", e)
		}
	}
}

func TestRegisterFlowDeps(t *testing.T) {
	b := ir.NewBuilder("rf")
	b.Symbol("a", 0x1000, 1<<16)
	v := b.Load("ld", ir.AddrExpr{Base: "a", Stride: 4, Size: 4})
	w := b.Arith("add", ir.KindAdd, v)
	x := b.Arith("mul", ir.KindMul, w, v)
	_ = x
	l := b.Loop()
	// Loop-carried: op1 also consumes op2's result (use before def).
	l.Ops[1].Srcs = append(l.Ops[1].Srcs, l.Ops[2].Dst)
	g := MustBuild(l)

	if !g.HasEdge(0, 1, RF, 0) || !g.HasEdge(1, 2, RF, 0) || !g.HasEdge(0, 2, RF, 0) {
		t.Errorf("missing same-iteration RF edges: %v", g.Edges())
	}
	if !g.HasEdge(2, 1, RF, 1) {
		t.Errorf("missing loop-carried RF edge: %v", g.Edges())
	}
}

func TestLiveInNoEdges(t *testing.T) {
	b := ir.NewBuilder("livein")
	b.Symbol("a", 0x1000, 1<<16)
	live := b.Reg()
	b.Store("st", ir.AddrExpr{Base: "a", Stride: 4, Size: 4}, live)
	g := MustBuild(b.Loop())
	for _, e := range g.Edges() {
		if e.Kind == RF {
			t.Errorf("live-in register must produce no RF edge: %v", e)
		}
	}
}

func TestSelfUseLoopCarried(t *testing.T) {
	// acc = acc + x: the self-use is a loop-carried dependence.
	b := ir.NewBuilder("acc")
	b.Arith("acc", ir.KindAdd)
	l := b.Loop()
	l.Ops[0].Srcs = []ir.Reg{l.Ops[0].Dst}
	g := MustBuild(l)
	if !g.HasEdge(0, 0, RF, 1) {
		t.Errorf("self accumulation must be RF(d=1): %v", g.Edges())
	}
}
