// Package bus models the dynamically-arbitrated shared resources of the
// architecture: the memory buses carrying remote accesses and refills
// (whose latency is non-deterministic as seen by the compiler — §2.3,
// footnote 2) and the ports of the next memory level.
package bus

// Arbiter hands out transfer slots on a set of identical buses. A transfer
// occupies one bus for the bus latency. Reservations may be requested at
// future instants (e.g. a reply leaving when the data is ready), so each
// bus tracks its busy intervals and the arbiter books the earliest gap at
// or after the requested time across all buses. Intervals wholly in the
// past are pruned using the observation that request times never decrease
// by more than the maximum in-flight span.
type Arbiter struct {
	lat  int64
	busy [][]interval // per bus, sorted by start

	floor int64 // lower bound on all future request times

	Transfers int64
	Waited    int64 // cycles requests spent waiting for a bus
}

type interval struct{ start, end int64 }

// NewArbiter creates an arbiter over n buses with the given per-transfer
// occupancy in cycles.
func NewArbiter(n, lat int) *Arbiter {
	return &Arbiter{lat: int64(lat), busy: make([][]interval, n)}
}

// Reset returns the arbiter to its just-constructed state — no booked
// intervals, zeroed counters — while keeping the per-bus interval storage
// allocated, so a pooled simulation machine can rerun without reallocating.
func (a *Arbiter) Reset() {
	for b := range a.busy {
		a.busy[b] = a.busy[b][:0]
	}
	a.floor = 0
	a.Transfers = 0
	a.Waited = 0
}

// Advance declares that every future Acquire time will be at or after t
// (the processor's monotone issue clock), allowing intervals wholly in the
// past to be pruned. Acquire itself never prunes: replies are booked at
// future instants and must not retire intervals that earlier-timed
// requests could still collide with.
func (a *Arbiter) Advance(t int64) {
	if t > a.floor {
		a.floor = t
		a.prune()
	}
}

// Acquire grants a bus at the earliest time >= t, returning the transfer's
// start and completion times.
func (a *Arbiter) Acquire(t int64) (start, done int64) {
	bestBus, bestStart := -1, int64(0)
	for b := range a.busy {
		s := a.earliestOn(b, t)
		if bestBus < 0 || s < bestStart {
			bestBus, bestStart = b, s
		}
	}
	a.insert(bestBus, bestStart)
	a.Transfers++
	a.Waited += bestStart - t
	return bestStart, bestStart + a.lat
}

// earliestOn finds the earliest gap of lat cycles on bus b at or after t.
func (a *Arbiter) earliestOn(b int, t int64) int64 {
	s := t
	for _, iv := range a.busy[b] {
		if iv.end <= s {
			continue
		}
		if iv.start >= s+a.lat {
			return s // gap before this interval fits
		}
		s = iv.end
	}
	return s
}

// insert books [s, s+lat) on bus b, keeping the list sorted.
func (a *Arbiter) insert(b int, s int64) {
	ivs := a.busy[b]
	pos := len(ivs)
	for i, iv := range ivs {
		if iv.start > s {
			pos = i
			break
		}
	}
	ivs = append(ivs, interval{})
	copy(ivs[pos+1:], ivs[pos:])
	ivs[pos] = interval{s, s + a.lat}
	a.busy[b] = ivs
}

// prune drops intervals that can no longer conflict: Advance promised that
// every future request time is >= floor, so intervals ending at or before
// it are dead.
func (a *Arbiter) prune() {
	for b, ivs := range a.busy {
		keep := ivs[:0]
		for _, iv := range ivs {
			if iv.end > a.floor {
				keep = append(keep, iv)
			}
		}
		a.busy[b] = keep
	}
}

// Latency returns the per-transfer occupancy.
func (a *Arbiter) Latency() int64 { return a.lat }

// VisitBusy calls f for every booked interval, in bus order and, within a
// bus, in start order. Callers snapshotting the arbiter should Advance
// first so only live intervals remain.
func (a *Arbiter) VisitBusy(f func(bus int, start, end int64)) {
	for b, ivs := range a.busy {
		for _, iv := range ivs {
			f(b, iv.start, iv.end)
		}
	}
}

// ShiftTime translates the arbiter forward by delta cycles: every booked
// interval and the prune floor move together. Advance should run first so
// dead intervals are not dragged into the future as phantom blockers.
func (a *Arbiter) ShiftTime(delta int64) {
	for b, ivs := range a.busy {
		for i := range ivs {
			ivs[i].start += delta
			ivs[i].end += delta
		}
		a.busy[b] = ivs
	}
	a.floor += delta
}

// Ports models the next memory level's request ports: at most n requests
// may start per cycle (the level itself is pipelined with a fixed total
// latency).
type Ports struct {
	n        int
	starts   map[int64]int
	maxStart int64 // largest start cycle ever booked (future-load horizon)

	Requests int64
	Waited   int64
}

// NewPorts creates a port scheduler admitting n request starts per cycle.
func NewPorts(n int) *Ports {
	return &Ports{n: n, starts: make(map[int64]int)}
}

// Reset returns the port scheduler to its just-constructed state. The
// per-cycle start map keeps its buckets, so a reused scheduler admitting a
// similar number of distinct start cycles does not allocate again.
func (p *Ports) Reset() {
	clear(p.starts)
	p.maxStart = 0
	p.Requests = 0
	p.Waited = 0
}

// Acquire returns the earliest cycle >= t at which a request may start.
func (p *Ports) Acquire(t int64) int64 {
	start := t
	for p.starts[start] >= p.n {
		start++
	}
	p.starts[start]++
	if start > p.maxStart {
		p.maxStart = start
	}
	p.Requests++
	p.Waited += start - t
	return start
}

// MaxStart returns the largest start cycle ever booked (0 when none).
// Bookings at cycles <= the current issue clock can no longer influence a
// future Acquire at or after it, so [now, MaxStart()] bounds the port
// state that is still live.
func (p *Ports) MaxStart() int64 { return p.maxStart }

// CountAt returns how many requests are booked to start at cycle t.
func (p *Ports) CountAt(t int64) int { return p.starts[t] }

// ShiftFuture translates the live port bookings forward by delta cycles:
// every booking at a cycle >= from moves to cycle+delta and bookings
// strictly before from — which can no longer collide with requests issued
// at or after it — are dropped. Bucket storage is kept.
func (p *Ports) ShiftFuture(from, delta int64) {
	if p.maxStart < from {
		clear(p.starts)
		return
	}
	span := p.maxStart - from
	kept := make([]int, span+1)
	for i := range kept {
		kept[i] = p.starts[from+int64(i)]
	}
	clear(p.starts)
	for i, n := range kept {
		if n > 0 {
			p.starts[from+int64(i)+delta] = n
		}
	}
	p.maxStart += delta
}
