package bus

import (
	"math/rand"
	"testing"
)

func TestArbiterUncontended(t *testing.T) {
	a := NewArbiter(4, 2)
	for i := int64(0); i < 4; i++ {
		start, done := a.Acquire(10)
		if start != 10 || done != 12 {
			t.Errorf("transfer %d: start=%d done=%d, want 10/12", i, start, done)
		}
	}
	// Fifth transfer at the same instant must wait for a bus.
	start, done := a.Acquire(10)
	if start != 12 || done != 14 {
		t.Errorf("fifth transfer: start=%d done=%d, want 12/14", start, done)
	}
	if a.Waited != 2 {
		t.Errorf("Waited = %d, want 2", a.Waited)
	}
}

func TestArbiterFutureReservationDoesNotBlockEarlierGap(t *testing.T) {
	// A reply reserved at a future instant must not delay an earlier
	// request that fits in the idle gap before it.
	a := NewArbiter(1, 2)
	if s, _ := a.Acquire(100); s != 100 {
		t.Fatalf("future reservation start = %d", s)
	}
	if s, _ := a.Acquire(50); s != 50 {
		t.Errorf("earlier request start = %d, want 50 (gap before the future transfer)", s)
	}
	// The gap [52,100) can host more transfers.
	if s, _ := a.Acquire(52); s != 52 {
		t.Error("gap not reusable")
	}
}

func TestArbiterNoOverlapProperty(t *testing.T) {
	// Whatever the request pattern, granted transfers on one bus never
	// overlap. Reconstruct occupancy from grants using a single bus.
	rng := rand.New(rand.NewSource(7))
	a := NewArbiter(1, 3)
	busy := make(map[int64]bool)
	tm := int64(0)
	for i := 0; i < 2000; i++ {
		tm += int64(rng.Intn(3))
		a.Advance(tm)
		req := tm + int64(rng.Intn(10)) // sometimes in the future
		start, done := a.Acquire(req)
		if start < req {
			t.Fatalf("granted before requested: %d < %d", start, req)
		}
		if done != start+3 {
			t.Fatalf("occupancy %d, want 3", done-start)
		}
		for c := start; c < done; c++ {
			if busy[c] {
				t.Fatalf("overlap at cycle %d", c)
			}
			busy[c] = true
		}
	}
}

func TestArbiterMonotonePerSource(t *testing.T) {
	// Requests presented in non-decreasing order are granted in
	// non-decreasing start order (per-source FIFO preservation).
	rng := rand.New(rand.NewSource(9))
	a := NewArbiter(4, 2)
	tm, last := int64(0), int64(-1)
	for i := 0; i < 5000; i++ {
		tm += int64(rng.Intn(2))
		start, _ := a.Acquire(tm)
		if start < last {
			t.Fatalf("grant order regressed: %d after %d", start, last)
		}
		last = start
	}
}

func TestPorts(t *testing.T) {
	p := NewPorts(2)
	if p.Acquire(5) != 5 || p.Acquire(5) != 5 {
		t.Error("two ports must admit two requests in one cycle")
	}
	if got := p.Acquire(5); got != 6 {
		t.Errorf("third request got %d, want 6", got)
	}
	if p.Requests != 3 || p.Waited != 1 {
		t.Errorf("Requests=%d Waited=%d", p.Requests, p.Waited)
	}
}

func TestPortsThroughputProperty(t *testing.T) {
	// n ports admit at most n starts per cycle regardless of pattern.
	p := NewPorts(3)
	counts := make(map[int64]int)
	rng := rand.New(rand.NewSource(3))
	tm := int64(0)
	for i := 0; i < 3000; i++ {
		tm += int64(rng.Intn(2))
		counts[p.Acquire(tm)]++
	}
	for cyc, n := range counts {
		if n > 3 {
			t.Fatalf("cycle %d admitted %d starts", cyc, n)
		}
	}
}
