package bus

import (
	"math/rand"
	"testing"
)

// TestArbiterPerSourceFIFOUnderCrossTraffic pins the ordering guarantee
// the internal/mc model checker's untimed abstraction is built on: a
// cluster presents its memory requests at non-decreasing times (the
// simulator's per-cluster busFloor enforces this), and the arbiter then
// grants that cluster's transfers at non-decreasing starts — so one
// cluster's bank arrivals can never be reordered against each other, no
// matter how other clusters' requests or future reply reservations carve
// up the buses. The model checker therefore only explores per-cluster
// FIFO request deliveries; this test is what entitles it to.
func TestArbiterPerSourceFIFOUnderCrossTraffic(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	a := NewArbiter(2, 3)
	const sources = 4
	clock := make([]int64, sources)
	last := make([]int64, sources)
	for s := range last {
		last[s] = -1
	}
	for i := 0; i < 20000; i++ {
		s := rng.Intn(sources)
		clock[s] += int64(rng.Intn(4)) // per-source non-decreasing request times
		switch rng.Intn(8) {
		case 0:
			// A reply booked at a future instant (data ready later):
			// allowed to grab any gap, must not perturb request FIFO.
			a.Acquire(clock[s] + int64(10+rng.Intn(40)))
		case 1:
			// The issue clock moved past every source: prune dead intervals.
			min := clock[0]
			for _, c := range clock[1:] {
				if c < min {
					min = c
				}
			}
			a.Advance(min)
		default:
			start, done := a.Acquire(clock[s])
			if start < clock[s] {
				t.Fatalf("source %d granted at %d before its request time %d", s, start, clock[s])
			}
			if start < last[s] {
				t.Fatalf("source %d FIFO violated: grant %d after grant %d (i=%d)", s, start, last[s], i)
			}
			if done-start != a.Latency() {
				t.Fatalf("occupancy %d, want %d", done-start, a.Latency())
			}
			last[s] = start
		}
	}
}
