package loopgen

import (
	"testing"

	"vliwcache/internal/core"
	"vliwcache/internal/ddg"
)

func TestCorpusDeterministic(t *testing.T) {
	a, err := Corpus(1, 8, DefaultCorpusParams())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Corpus(1, 8, DefaultCorpusParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 8 || len(b) != 8 {
		t.Fatalf("corpus sizes %d/%d, want 8", len(a), len(b))
	}
	for i := range a {
		if a[i].Name != b[i].Name || len(a[i].Ops) != len(b[i].Ops) {
			t.Fatalf("loop %d differs across generations", i)
		}
		for j := range a[i].Ops {
			if a[i].Ops[j].String() != b[i].Ops[j].String() {
				t.Fatalf("loop %d op %d differs: %s vs %s",
					i, j, a[i].Ops[j], b[i].Ops[j])
			}
		}
	}
}

func TestCorpusSatisfiesEnvelope(t *testing.T) {
	env := DefaultEnvelope()
	for _, seed := range []int64{1, 2, 3, 42, 12345} {
		loops, err := Corpus(seed, 6, DefaultCorpusParams())
		if err != nil {
			t.Fatal(err)
		}
		for _, l := range loops {
			if err := l.Validate(); err != nil {
				t.Errorf("seed %d %s: %v", seed, l.Name, err)
			}
			if err := CheckEnvelope(l, env); err != nil {
				t.Errorf("seed %d: %v", seed, err)
			}
		}
	}
}

func TestCorpusDialsMoveCharacteristics(t *testing.T) {
	// Raising ChainRatio must raise the mean CMR; raising AliasDensity
	// must produce may-aliased ops.
	low := DefaultCorpusParams()
	low.ChainRatio = 0
	low.AliasDensity = 0
	high := DefaultCorpusParams()
	high.ChainRatio = 0.6
	meanCMR := func(p CorpusParams) float64 {
		loops, err := Corpus(7, 8, p)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, l := range loops {
			g, err := ddg.Build(l)
			if err != nil {
				t.Fatal(err)
			}
			sum += core.AnalyzeChains(g).CMR()
		}
		return sum / float64(len(loops))
	}
	lo, hi := meanCMR(low), meanCMR(high)
	if hi <= lo {
		t.Errorf("mean CMR did not rise with ChainRatio: low %.3f, high %.3f", lo, hi)
	}
}

func TestCorpusZeroParamsAreDefaults(t *testing.T) {
	// Zero ChainRatio/AliasDensity/RecurDepth mean "disabled", but every
	// other zero field must inherit its default.
	got := CorpusParams{}.withDefaults()
	want := DefaultCorpusParams()
	want.ChainRatio, want.AliasDensity, want.RecurDepth = 0, 0, 0
	if got != want {
		t.Errorf("withDefaults() = %+v, want %+v", got, want)
	}
	// And a zero-dial corpus must still generate (the envelope does not
	// require a chain).
	if _, err := Corpus(3, 2, CorpusParams{}); err != nil {
		t.Error(err)
	}
}

func TestCorpusRejectsUnsatisfiableEnvelope(t *testing.T) {
	p := DefaultCorpusParams()
	p.MemOps = 1000 // beyond the envelope's MaxMemOps for every retry
	if _, err := Corpus(1, 1, p); err == nil {
		t.Error("corpus with 1000 mem ops must fail the envelope check")
	}
}
