package loopgen

import (
	"fmt"
	"math"
	"math/rand"

	"vliwcache/internal/core"
	"vliwcache/internal/ddg"
	"vliwcache/internal/ir"
)

// This file grows Random into a parameterized corpus generator: affine
// loop families built from the same ingredients as the mediabench
// generators (real chains as fixed-home walks with exact loop-carried
// dependences, ambiguous chains through may-aliased symbols, table /
// fixed-home / streaming access patterns, scalar recurrences), with dials
// for the characteristics the paper tabulates. Every generated loop is
// checked against an envelope derived from Tables 1/3/4 so the 14 tuned
// benchmarks become points in a continuum rather than outliers.

// StrideMix weights the access patterns of the non-chained memory ops:
// table lookups (stride 0), fixed-home walks (stride = one full
// interleave round, so every access of the op hits one cluster), and
// streaming walks (stride = element size, so homes rotate).
type StrideMix struct {
	Table  int
	Fixed  int
	Stream int
}

// CorpusParams are the dials of a generated loop family.
type CorpusParams struct {
	// MemOps is the nominal number of memory operations per loop; each
	// loop jitters it by up to ±25% deterministically.
	MemOps int

	// ChainRatio is the fraction of memory ops tied into the real
	// memory-dependent chain (cf. Table 3's CMR). 0 disables the chain.
	ChainRatio float64

	// AliasDensity is the fraction of the remaining memory ops that go
	// through a may-aliased symbol pair, forming an ambiguous chain.
	AliasDensity float64

	// RecurDepth is the length of the loop-carried scalar recurrence
	// threaded through the chain (0 disables it).
	RecurDepth int

	// Mix weights the stride families of the unchained ops. The zero
	// value means an equal mix.
	Mix StrideMix

	// ElemSize is the access width in bytes (1, 2, 4 or 8) — the "data
	// size" dial; streaming strides equal it.
	ElemSize int

	// ArithPerMem is the ratio of arithmetic ops to memory ops (Table 1's
	// instruction mix dial).
	ArithPerMem float64

	// Trip and Entries describe the profiled trip count.
	Trip    int64
	Entries int64
}

// DefaultCorpusParams sits near the middle of the mediabench
// characteristics: a dozen memory ops, a third of them chained, moderate
// aliasing, a shallow recurrence, an even stride mix and word accesses.
func DefaultCorpusParams() CorpusParams {
	return CorpusParams{
		MemOps:       12,
		ChainRatio:   0.35,
		AliasDensity: 0.3,
		RecurDepth:   2,
		Mix:          StrideMix{Table: 1, Fixed: 1, Stream: 1},
		ElemSize:     4,
		ArithPerMem:  1.0,
		Trip:         200,
		Entries:      2,
	}
}

func (p CorpusParams) withDefaults() CorpusParams {
	d := DefaultCorpusParams()
	if p.MemOps <= 0 {
		p.MemOps = d.MemOps
	}
	if p.ElemSize != 1 && p.ElemSize != 2 && p.ElemSize != 4 && p.ElemSize != 8 {
		p.ElemSize = d.ElemSize
	}
	if p.Mix == (StrideMix{}) {
		p.Mix = d.Mix
	}
	if p.Mix.Table < 0 || p.Mix.Fixed < 0 || p.Mix.Stream < 0 {
		p.Mix = d.Mix
	}
	if p.ChainRatio < 0 || p.ChainRatio > 1 || math.IsNaN(p.ChainRatio) {
		p.ChainRatio = d.ChainRatio
	}
	if p.AliasDensity < 0 || p.AliasDensity > 1 || math.IsNaN(p.AliasDensity) {
		p.AliasDensity = d.AliasDensity
	}
	if p.RecurDepth < 0 {
		p.RecurDepth = d.RecurDepth
	}
	if p.ArithPerMem <= 0 || p.ArithPerMem > 8 || math.IsNaN(p.ArithPerMem) {
		p.ArithPerMem = d.ArithPerMem
	}
	if p.Trip < 1 {
		p.Trip = d.Trip
	}
	if p.Entries < 1 {
		p.Entries = d.Entries
	}
	return p
}

// Envelope bounds the static characteristics a generated loop must land
// in to count as benchmark-like. The defaults bracket the paper's loops:
// Table 1 bounds the op counts and memory-instruction share, Table 3
// bounds the biggest-chain ratios (the largest reported CMR is 0.97, and
// CAR never exceeds CMR by construction).
type Envelope struct {
	MinOps      int
	MaxOps      int
	MinMemOps   int
	MaxMemOps   int
	MaxMemRatio float64
	MaxCMR      float64
}

// DefaultEnvelope returns the Table 1/3/4 characteristic envelope.
func DefaultEnvelope() Envelope {
	return Envelope{
		MinOps:      4,
		MaxOps:      512,
		MinMemOps:   2,
		MaxMemOps:   128,
		MaxMemRatio: 0.65,
		MaxCMR:      0.98,
	}
}

// CheckEnvelope verifies that the loop's static characteristics fall
// inside the envelope. It builds the loop's DDG, so a loop that passes is
// also known to have a well-formed dependence graph.
func CheckEnvelope(l *ir.Loop, env Envelope) error {
	g, err := ddg.Build(l)
	if err != nil {
		return fmt.Errorf("loopgen: %s: %w", l.Name, err)
	}
	st := core.AnalyzeChains(g)
	switch {
	case st.Ops < env.MinOps || st.Ops > env.MaxOps:
		return fmt.Errorf("loopgen: %s: %d ops outside [%d, %d]", l.Name, st.Ops, env.MinOps, env.MaxOps)
	case st.MemOps < env.MinMemOps || st.MemOps > env.MaxMemOps:
		return fmt.Errorf("loopgen: %s: %d mem ops outside [%d, %d]", l.Name, st.MemOps, env.MinMemOps, env.MaxMemOps)
	case float64(st.MemOps) > env.MaxMemRatio*float64(st.Ops):
		return fmt.Errorf("loopgen: %s: mem ratio %.2f exceeds %.2f", l.Name,
			float64(st.MemOps)/float64(st.Ops), env.MaxMemRatio)
	case st.CMR() > env.MaxCMR:
		return fmt.Errorf("loopgen: %s: CMR %.2f exceeds %.2f", l.Name, st.CMR(), env.MaxCMR)
	case st.CAR() > st.CMR():
		return fmt.Errorf("loopgen: %s: CAR %.2f exceeds CMR %.2f", l.Name, st.CAR(), st.CMR())
	}
	return nil
}

// Corpus generates n deterministic benchmark-like loops from the seed.
// Each loop is independently checked against the default envelope; a loop
// that falls outside it is regenerated from a derived sub-seed (bounded
// retries), so the returned corpus always satisfies CheckEnvelope. The
// same (seed, n, p) always yields byte-identical loops.
func Corpus(seed int64, n int, p CorpusParams) ([]*ir.Loop, error) {
	p = p.withDefaults()
	env := DefaultEnvelope()
	loops := make([]*ir.Loop, 0, n)
	for i := 0; i < n; i++ {
		var loop *ir.Loop
		err := fmt.Errorf("loopgen: no attempt made")
		for try := 0; try < 32 && err != nil; try++ {
			loop = corpusLoop(seed, i, try, p)
			err = CheckEnvelope(loop, env)
		}
		if err != nil {
			return nil, fmt.Errorf("loopgen: corpus(%d)[%d] cannot satisfy envelope: %w", seed, i, err)
		}
		loops = append(loops, loop)
	}
	return loops, nil
}

// corpusLoop materializes one loop of the family. The loop index varies
// the symbol bases (so corpus loops never collide in the address space)
// and the retry index only perturbs the RNG stream.
func corpusLoop(seed int64, idx, try int, p CorpusParams) *ir.Loop {
	rng := rand.New(rand.NewSource(seed<<20 ^ int64(idx)<<8 ^ int64(try) ^ 0x5DEECE66D))
	b := ir.NewBuilder(fmt.Sprintf("corpus%d.%02d", seed, idx))
	b.Trip(p.Trip, p.Entries)

	const lane = int64(0x40000)
	base := uint64(0x8000000) * uint64(idx+1)
	es := int64(p.ElemSize)
	ni := int64(16) // one full interleave round of the Table 2 machine

	// Partition the memory ops: chain, ambiguous, free.
	nmem := p.MemOps
	if nmem > 3 {
		nmem += rng.Intn(nmem/2+1) - nmem/4
	}
	if nmem < 2 {
		nmem = 2
	}
	nchain := int(math.Round(p.ChainRatio * float64(nmem)))
	if nchain == 1 {
		nchain = 2 // a chain needs at least two ops
	}
	if nchain > nmem {
		nchain = nmem
	}
	nambig := int(math.Round(p.AliasDensity * float64(nmem-nchain)))
	if nambig == 1 {
		nambig = 2
	}
	if nambig > nmem-nchain {
		nambig = 0
	}
	nfree := nmem - nchain - nambig

	// Tie the real and ambiguous chains together (C may-alias P) only
	// when enough free ops remain to keep the merged chain inside the
	// envelope's CMR bound.
	linkChains := nchain > 0 && nambig > 0 && nfree >= 1+nmem/10 && rng.Intn(2) == 0

	var vals []ir.Reg
	live := b.Reg() // live-in fallback value for early stores
	pick := func() ir.Reg {
		if len(vals) == 0 {
			return live
		}
		return vals[rng.Intn(len(vals))]
	}

	// Real chain over C: a fixed-home walk with stores at offsets 0,
	// -ni, ... and loads trailing them — exact loop-carried dependences
	// serialize every op into one memory-dependent chain.
	chainStores, chainLoads := 0, 0
	var chainLoadVal ir.Reg = ir.NoReg
	if nchain >= 2 {
		chainStores = 1 + nchain/2
		if chainStores > nchain {
			chainStores = nchain
		}
		chainLoads = nchain - chainStores
		var mayAlias []string
		if linkChains {
			mayAlias = []string{"P"}
		}
		b.Symbol("C", base, lane, mayAlias...)
		for j := 0; j < chainLoads; j++ {
			v := b.Load(fmt.Sprintf("cld%d", j),
				ir.AddrExpr{Base: "C", Offset: -ni * int64(chainStores+j), Stride: ni, Size: p.ElemSize})
			vals = append(vals, v)
			if j == 0 {
				chainLoadVal = v
			}
		}
	}

	// Loop-carried scalar recurrence, fed by the chain when one exists.
	var recurTail ir.Reg = ir.NoReg
	if p.RecurDepth > 0 {
		prev := ir.NoReg
		for j := 0; j < p.RecurDepth; j++ {
			var srcs []ir.Reg
			if prev != ir.NoReg {
				srcs = append(srcs, prev)
			}
			if j == 0 && chainLoadVal != ir.NoReg {
				srcs = append(srcs, chainLoadVal)
			} else if j%3 == 1 {
				srcs = append(srcs, pick())
			}
			prev = b.Arith(fmt.Sprintf("r%d", j), ir.KindAdd, srcs...)
		}
		recurTail = prev
	}

	for j := 0; j < chainStores; j++ {
		v := pick()
		if j == chainStores-1 && recurTail != ir.NoReg {
			v = recurTail
		}
		b.Store(fmt.Sprintf("cst%d", j),
			ir.AddrExpr{Base: "C", Offset: -ni * int64(j), Stride: ni, Size: p.ElemSize}, v)
	}

	// Ambiguous chain: loads through P and stores through Q, declared
	// may-aliased but walking lanes that never overlap.
	if nambig >= 2 {
		aLoads := nambig / 2
		aStores := nambig - aLoads
		b.Symbol("P", base+8*uint64(lane), lane*int64(aLoads+1), "Q")
		b.Symbol("Q", base+1024*uint64(lane), lane*int64(aStores+1))
		for j := 0; j < aLoads; j++ {
			off := int64(j)*lane + int64(j)*1056
			vals = append(vals, b.Load(fmt.Sprintf("ald%d", j),
				ir.AddrExpr{Base: "P", Offset: off, Stride: ni, Size: p.ElemSize}))
		}
		for j := 0; j < aStores; j++ {
			off := int64(j)*lane + int64(j)*1056
			b.Store(fmt.Sprintf("ast%d", j),
				ir.AddrExpr{Base: "Q", Offset: off, Stride: es, Size: p.ElemSize}, pick())
		}
	}

	// Free ops, weighted over the stride families. Stores are rarer than
	// loads, as in Table 1.
	if nfree > 0 {
		b.Symbol("T", base+2048*uint64(lane), lane)
		b.Symbol("A", base+3072*uint64(lane), lane)
		b.Symbol("S", base+4096*uint64(lane), lane*int64(nfree+1))
		wTab, wFix, wStr := p.Mix.Table, p.Mix.Fixed, p.Mix.Stream
		total := wTab + wFix + wStr
		if total <= 0 {
			wTab, wFix, wStr, total = 1, 1, 1, 3
		}
		for j := 0; j < nfree; j++ {
			w := rng.Intn(total)
			isStore := rng.Intn(4) == 0
			switch {
			case w < wTab:
				// Table lookup: stride 0, homes spread by offset.
				off := int64(j)*4 + int64(j/7)*64
				vals = append(vals, b.Load(fmt.Sprintf("tld%d", j),
					ir.AddrExpr{Base: "T", Offset: off, Stride: 0, Size: p.ElemSize}))
			case w < wTab+wFix:
				// Fixed-home walk.
				off := int64(j/2)*4 + int64(j%2)*16
				if isStore {
					b.Store(fmt.Sprintf("fst%d", j),
						ir.AddrExpr{Base: "A", Offset: off + lane/2, Stride: ni, Size: p.ElemSize}, pick())
				} else {
					vals = append(vals, b.Load(fmt.Sprintf("fld%d", j),
						ir.AddrExpr{Base: "A", Offset: off, Stride: ni, Size: p.ElemSize}))
				}
			default:
				// Streaming walk: homes rotate every iteration.
				off := int64(j) * lane / int64(nfree+1)
				if isStore {
					b.Store(fmt.Sprintf("sst%d", j),
						ir.AddrExpr{Base: "S", Offset: off, Stride: es, Size: p.ElemSize}, pick())
				} else {
					vals = append(vals, b.Load(fmt.Sprintf("sld%d", j),
						ir.AddrExpr{Base: "S", Offset: off, Stride: es, Size: p.ElemSize}))
				}
			}
		}
	}

	// Arithmetic dataflow over the loaded values.
	kinds := []ir.Kind{ir.KindAdd, ir.KindSub, ir.KindMul, ir.KindShift, ir.KindFAdd, ir.KindFMul}
	narith := int(math.Round(p.ArithPerMem * float64(nmem)))
	for j := 0; j < narith; j++ {
		var srcs []ir.Reg
		for s := 0; s <= rng.Intn(2); s++ {
			srcs = append(srcs, pick())
		}
		vals = append(vals, b.Arith(fmt.Sprintf("a%d", j), kinds[rng.Intn(len(kinds))], srcs...))
	}

	return b.Loop()
}
