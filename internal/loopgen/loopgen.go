// Package loopgen generates random but well-formed loops for property
// tests: random mixes of aliased and independent memory accesses, arith
// dataflow and loop-carried recurrences. Used by the scheduler and
// simulator test suites to check invariants over a broad input space.
package loopgen

import (
	"fmt"
	"math/rand"

	"vliwcache/internal/ir"
)

// Params bound the generated loop.
type Params struct {
	MaxMem   int // max memory ops (>=1)
	MaxArith int
	Trip     int64
	Entries  int64
}

// DefaultParams returns a small but varied configuration.
func DefaultParams() Params {
	return Params{MaxMem: 10, MaxArith: 12, Trip: 200, Entries: 2}
}

// Random builds a random valid loop from the given seed. Memory ops are
// spread over up to three symbols (one pair may-aliased, same-symbol
// accesses may truly alias through overlapping affine walks).
func Random(seed int64, p Params) *ir.Loop {
	rng := rand.New(rand.NewSource(seed))
	b := ir.NewBuilder(fmt.Sprintf("rand%d", seed))
	b.Trip(p.Trip, p.Entries)
	b.Symbol("A", 0x100000, 1<<20, "P")
	b.Symbol("P", 0x300000, 1<<20)
	b.Symbol("B", 0x500000, 1<<20)

	syms := []string{"A", "A", "P", "B"} // bias toward the aliasing pair
	sizes := []int{1, 2, 4, 8}
	var vals []ir.Reg
	live := b.Reg()

	nmem := 1 + rng.Intn(p.MaxMem)
	for i := 0; i < nmem; i++ {
		e := ir.AddrExpr{
			Base:   syms[rng.Intn(len(syms))],
			Offset: int64(rng.Intn(257) - 128),
			Stride: int64(rng.Intn(33) - 16),
			Size:   sizes[rng.Intn(len(sizes))],
		}
		if rng.Intn(3) == 0 { // store
			src := live
			if len(vals) > 0 {
				src = vals[rng.Intn(len(vals))]
			}
			b.Store(fmt.Sprintf("st%d", i), e, src)
		} else {
			vals = append(vals, b.Load(fmt.Sprintf("ld%d", i), e))
		}
	}

	kinds := []ir.Kind{ir.KindAdd, ir.KindSub, ir.KindMul, ir.KindShift, ir.KindFAdd, ir.KindFMul}
	narith := rng.Intn(p.MaxArith + 1)
	for i := 0; i < narith; i++ {
		var srcs []ir.Reg
		for s := 0; s <= rng.Intn(2); s++ {
			if len(vals) > 0 {
				srcs = append(srcs, vals[rng.Intn(len(vals))])
			}
		}
		vals = append(vals, b.Arith(fmt.Sprintf("a%d", i), kinds[rng.Intn(len(kinds))], srcs...))
	}

	loop := b.Loop()
	// Occasionally close a loop-carried scalar recurrence.
	if narith > 0 && rng.Intn(2) == 0 {
		for _, o := range loop.Ops {
			if o.Kind != ir.KindLoad && o.Kind != ir.KindStore && o.Dst != ir.NoReg {
				o.Srcs = append(o.Srcs, loop.Ops[len(loop.Ops)-1].Dst)
				break
			}
		}
	}
	return loop
}
