package loopgen_test

import (
	"testing"

	"vliwcache/internal/arch"
	"vliwcache/internal/core"
	"vliwcache/internal/loopgen"
	"vliwcache/internal/profiler"
	"vliwcache/internal/sched"
)

// FuzzLoopgenCorpus drives the corpus generator over fuzzed dials. The
// contract: whenever Corpus returns loops, every loop satisfies the
// characteristic envelope (Corpus's own postcondition, re-checked here),
// prepares under MDC, and closes a schedule that passes sched.Validate.
// Unsatisfiable dials must fail with an error, never a panic.
func FuzzLoopgenCorpus(f *testing.F) {
	f.Add(int64(1), 12, 35, 30, 2, 1, 1, 1)
	f.Add(int64(7), 4, 0, 0, 0, 1, 0, 0)
	f.Add(int64(42), 24, 60, 50, 4, 0, 1, 2)
	f.Add(int64(-3), 8, 98, 100, 8, 3, 1, 1)
	f.Fuzz(func(t *testing.T, seed int64, memOps, chainPct, aliasPct, recur, mixTable, mixFixed, mixStream int) {
		abs := func(v, m int) int {
			if v < 0 {
				v = -v
			}
			return v % m
		}
		p := loopgen.CorpusParams{
			MemOps:       2 + abs(memOps, 40),
			ChainRatio:   float64(abs(chainPct, 99)) / 100,
			AliasDensity: float64(abs(aliasPct, 101)) / 100,
			RecurDepth:   abs(recur, 9),
			Mix: loopgen.StrideMix{
				Table:  abs(mixTable, 4),
				Fixed:  abs(mixFixed, 4),
				Stream: abs(mixStream, 4),
			},
		}
		loops, err := loopgen.Corpus(seed, 2, p)
		if err != nil {
			return // unsatisfiable dials fail typed, and that is fine
		}
		cfg := arch.Default()
		env := loopgen.DefaultEnvelope()
		for _, l := range loops {
			if verr := l.Validate(); verr != nil {
				t.Fatalf("%s: invalid IR: %v", l.Name, verr)
			}
			if eerr := loopgen.CheckEnvelope(l, env); eerr != nil {
				t.Fatalf("%s escaped the envelope: %v", l.Name, eerr)
			}
			plan, perr := core.Prepare(l, core.PolicyMDC, cfg.NumClusters)
			if perr != nil {
				t.Fatalf("%s: Prepare: %v", l.Name, perr)
			}
			sc, serr := sched.Run(plan, sched.Options{Arch: cfg, Heuristic: sched.PrefClus,
				Profile: profiler.Run(l, cfg)})
			if serr != nil {
				t.Fatalf("%s: schedule: %v", l.Name, serr)
			}
			if verr := sched.Validate(sc); verr != nil {
				t.Fatalf("%s: schedule fails validation: %v", l.Name, verr)
			}
		}
	})
}
