package loopgen

import (
	"testing"

	"vliwcache/internal/ddg"
)

func TestRandomLoopsValid(t *testing.T) {
	for seed := int64(0); seed < 300; seed++ {
		l := Random(seed, DefaultParams())
		if err := l.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if _, err := ddg.Build(l); err != nil {
			t.Fatalf("seed %d: DDG: %v", seed, err)
		}
		if len(l.MemOps()) == 0 {
			t.Fatalf("seed %d: no memory ops", seed)
		}
	}
}

func TestRandomDeterministic(t *testing.T) {
	a := Random(9, DefaultParams())
	b := Random(9, DefaultParams())
	if a.String() != b.String() {
		t.Error("same seed must generate the same loop")
	}
	c := Random(10, DefaultParams())
	if a.String() == c.String() {
		t.Error("different seeds should differ")
	}
}

func TestRandomCoversAliasing(t *testing.T) {
	// Over many seeds, some loops must contain real memory dependences and
	// some ambiguous ones — the property suites rely on both.
	var exact, ambiguous int
	for seed := int64(0); seed < 100; seed++ {
		g := ddg.MustBuild(Random(seed, DefaultParams()))
		for _, e := range g.MemEdges() {
			if e.Ambiguous {
				ambiguous++
			} else {
				exact++
			}
		}
	}
	if exact == 0 || ambiguous == 0 {
		t.Errorf("coverage hole: %d exact, %d ambiguous memory dependences", exact, ambiguous)
	}
}
