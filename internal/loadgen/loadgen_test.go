package loadgen

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"
)

func writeRaw(path, body string) error {
	return os.WriteFile(path, []byte(body), 0o644)
}

// fakeServe is a stand-in serving tier: first request per body computes
// (tiny delay), the rest are "cache hits".
func fakeServe(t *testing.T) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := calls.Add(1)
		if n == 1 {
			w.Header().Set("X-Cache", "miss")
			time.Sleep(2 * time.Millisecond)
		} else {
			w.Header().Set("X-Cache", "hit")
		}
		w.Write([]byte(`{"ok":true}`))
	}))
	t.Cleanup(ts.Close)
	return ts, &calls
}

func TestRunOpen(t *testing.T) {
	ts, calls := fakeServe(t)
	cfg := Config{
		BaseURL:  ts.URL,
		Targets:  []Target{{Path: "/v1/cell", Body: []byte(`{}`)}},
		Rate:     200,
		Duration: 300 * time.Millisecond,
		Seed:     1,
	}
	res, err := RunOpen(context.Background(), "open-test", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != "open" || res.RatePerSec != 200 {
		t.Errorf("result header = %+v", res)
	}
	if res.Sent == 0 || res.Completed != res.Sent || res.Errors != 0 {
		t.Errorf("counts = %+v", res)
	}
	if res.Completed != calls.Load() {
		t.Errorf("completed %d != server calls %d", res.Completed, calls.Load())
	}
	// All but the first request hit the fake cache.
	if res.CacheHits != res.Completed-1 {
		t.Errorf("cacheHits = %d of %d", res.CacheHits, res.Completed)
	}
	if res.P50Millis <= 0 || res.P99Millis < res.P50Millis {
		t.Errorf("percentiles = %+v", res)
	}
}

// TestRunOpenDeterministicArrivals: equal seeds produce equal arrival
// schedules (same sent count under the same wall window is the
// observable slice of that).
func TestRunOpenDeterministicArrivals(t *testing.T) {
	ts, _ := fakeServe(t)
	cfg := Config{
		BaseURL:  ts.URL,
		Targets:  []Target{{Path: "/", Body: []byte(`{}`)}},
		Rate:     500,
		Duration: 200 * time.Millisecond,
		Seed:     7,
	}
	a, err := RunOpen(context.Background(), "a", cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunOpen(context.Background(), "b", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Sent != b.Sent {
		t.Errorf("same seed, different arrivals: %d vs %d", a.Sent, b.Sent)
	}
}

func TestRunClosed(t *testing.T) {
	ts, _ := fakeServe(t)
	cfg := Config{
		BaseURL:  ts.URL,
		Targets:  []Target{{Path: "/v1/cell", Body: []byte(`{}`)}},
		Duration: 200 * time.Millisecond,
		Workers:  3,
	}
	res, err := RunClosed(context.Background(), "closed-test", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != "closed" || res.Workers != 3 {
		t.Errorf("result header = %+v", res)
	}
	if res.Completed == 0 || res.ThroughputPerSec <= 0 {
		t.Errorf("counts = %+v", res)
	}
}

func TestBaselineRoundTripAndCompare(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_serve.json")
	base := &Baseline{
		GitSHA: "abc", Date: "2026-08-09T00:00:00Z", GoVersion: "go",
		Scenarios: []Result{{
			Name: "s", Mode: "open", RatePerSec: 10, DurationMillis: 1000,
			Sent: 10, Completed: 10, CacheHits: 9, CacheHitRatio: 0.9,
			ThroughputPerSec: 10, P50Millis: 1, P95Millis: 2, P99Millis: 3, MaxMillis: 4,
		}},
	}
	if err := base.Write(path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Scenarios) != 1 || back.Scenarios[0] != base.Scenarios[0] {
		t.Errorf("round trip changed baseline: %+v", back)
	}

	// Within tolerance: no regressions.
	got := *back
	got.Scenarios = []Result{base.Scenarios[0]}
	if regs := Compare(back, &got, 1.0); len(regs) != 0 {
		t.Errorf("identical run regressed: %v", regs)
	}

	// p99 blowout, throughput collapse, cache loss: three regressions.
	bad := base.Scenarios[0]
	bad.P99Millis = 100
	bad.ThroughputPerSec = 1
	bad.CacheHitRatio = 0.1
	got.Scenarios = []Result{bad}
	if regs := Compare(back, &got, 1.0); len(regs) != 3 {
		t.Errorf("regressions = %v", regs)
	}

	// Unmatched scenario names are ignored.
	bad.Name = "other"
	got.Scenarios = []Result{bad}
	if regs := Compare(back, &got, 1.0); len(regs) != 0 {
		t.Errorf("unmatched scenario compared: %v", regs)
	}
}

func TestLoadRejectsBadBaselines(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]string{
		"bad schema":    `{"schema":99,"scenarios":[{"name":"s","mode":"open","sent":1,"completed":1,"throughputPerSec":1,"p50Millis":1,"p95Millis":1,"p99Millis":1,"maxMillis":1}]}`,
		"no scenarios":  `{"schema":1,"scenarios":[]}`,
		"bad ratio":     `{"schema":1,"scenarios":[{"name":"s","mode":"open","sent":1,"completed":1,"cacheHitRatio":2,"throughputPerSec":1,"p50Millis":1,"p95Millis":1,"p99Millis":1,"maxMillis":1}]}`,
		"unordered pct": `{"schema":1,"scenarios":[{"name":"s","mode":"open","sent":1,"completed":1,"throughputPerSec":1,"p50Millis":5,"p95Millis":2,"p99Millis":3,"maxMillis":4}]}`,
	}
	i := 0
	for name, body := range cases {
		p := filepath.Join(dir, "b"+string(rune('a'+i))+".json")
		i++
		if err := writeRaw(p, body); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(p); err == nil {
			t.Errorf("%s: Load accepted invalid baseline", name)
		}
	}
}

// TestCommittedServeBaseline validates the repository's committed
// serving baseline (make bench-serve-check's always-on half).
func TestCommittedServeBaseline(t *testing.T) {
	b, err := Load(filepath.Join("..", "..", "BENCH_serve.json"))
	if err != nil {
		t.Fatalf("committed BENCH_serve.json invalid: %v", err)
	}
	names := make(map[string]bool)
	for _, s := range b.Scenarios {
		names[s.Name] = true
	}
	for _, want := range []string{"cell-open-warm", "cell-closed-saturation"} {
		if !names[want] {
			t.Errorf("committed baseline missing scenario %q (has %v)", want, names)
		}
	}
}
