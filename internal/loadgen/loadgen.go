// Package loadgen is an open-loop HTTP load generator for the serving
// tier, plus the committed serving-performance baseline it feeds
// (BENCH_serve.json, the serving analogue of perfbench's
// BENCH_sim.json).
//
// Open loop means arrivals are scheduled by a Poisson process that does
// NOT wait for responses: a saturated server keeps receiving work at
// the offered rate, so queueing delay shows up in the measured latency
// instead of silently throttling the generator (the coordinated-
// omission trap of closed-loop benchmarking). A separate closed-loop
// mode measures saturation throughput: N workers issuing back-to-back
// requests as fast as the server answers.
package loadgen

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"vliwcache/internal/obs"
)

// Target is one request in the generated mix.
type Target struct {
	// Path is the route ("/v1/cell", "/v1/schedule", ...).
	Path string
	// Body is the JSON request body.
	Body []byte
}

// Config parameterizes one load run.
type Config struct {
	// BaseURL is the server under test ("http://host:port").
	BaseURL string
	// Targets is the request mix, issued round-robin.
	Targets []Target
	// Rate is the open-loop mean arrival rate (requests/second).
	Rate float64
	// Duration bounds the arrival window (responses are awaited after).
	Duration time.Duration
	// Seed drives the arrival process; equal seeds replay identical
	// arrival schedules.
	Seed int64
	// Workers is the closed-loop concurrency (RunClosed only).
	Workers int
	// Client is the HTTP client (nil = a dedicated one).
	Client *http.Client
}

// Result is one run's measured outcome; field order is the committed
// baseline's wire order.
type Result struct {
	Name             string  `json:"name"`
	Mode             string  `json:"mode"` // "open" or "closed"
	RatePerSec       float64 `json:"ratePerSec,omitempty"`
	Workers          int     `json:"workers,omitempty"`
	DurationMillis   int64   `json:"durationMillis"`
	Sent             int64   `json:"sent"`
	Completed        int64   `json:"completed"`
	Errors           int64   `json:"errors"`
	Shed             int64   `json:"shed"`
	CacheHits        int64   `json:"cacheHits"`
	CacheHitRatio    float64 `json:"cacheHitRatio"`
	ThroughputPerSec float64 `json:"throughputPerSec"`
	P50Millis        float64 `json:"p50Millis"`
	P95Millis        float64 `json:"p95Millis"`
	P99Millis        float64 `json:"p99Millis"`
	MaxMillis        float64 `json:"maxMillis"`
}

// collector accumulates per-request outcomes behind one lock
// (obs.Histogram is not concurrency-safe).
type collector struct {
	mu     sync.Mutex
	hist   obs.Histogram
	done   int64
	errs   int64
	shed   int64
	hits   int64
	status map[int]int64
}

func newCollector() *collector { return &collector{status: make(map[int]int64)} }

func (c *collector) record(status int, hdr http.Header, elapsed time.Duration, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err != nil {
		c.errs++
		return
	}
	c.status[status]++
	switch {
	case status == http.StatusTooManyRequests:
		c.shed++
	case status >= 400:
		c.errs++
	default:
		c.done++
		c.hist.Observe(elapsed)
		if xc := hdr.Get("X-Cache"); xc == "hit" || xc == "coalesced" {
			c.hits++
		}
	}
}

func (c *collector) result(name, mode string, sent int64, wall time.Duration) *Result {
	c.mu.Lock()
	defer c.mu.Unlock()
	ms := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }
	r := &Result{
		Name:           name,
		Mode:           mode,
		DurationMillis: wall.Milliseconds(),
		Sent:           sent,
		Completed:      c.done,
		Errors:         c.errs,
		Shed:           c.shed,
		CacheHits:      c.hits,
		P50Millis:      ms(c.hist.Quantile(0.50)),
		P95Millis:      ms(c.hist.Quantile(0.95)),
		P99Millis:      ms(c.hist.Quantile(0.99)),
		MaxMillis:      ms(c.hist.Max()),
	}
	if c.done > 0 {
		r.CacheHitRatio = round4(float64(c.hits) / float64(c.done))
	}
	if wall > 0 {
		r.ThroughputPerSec = round4(float64(c.done) / wall.Seconds())
	}
	r.P50Millis = round4(r.P50Millis)
	r.P95Millis = round4(r.P95Millis)
	r.P99Millis = round4(r.P99Millis)
	r.MaxMillis = round4(r.MaxMillis)
	return r
}

// round4 keeps the committed baseline diff-friendly.
func round4(f float64) float64 { return math.Round(f*1e4) / 1e4 }

func (cfg *Config) client() *http.Client {
	if cfg.Client != nil {
		return cfg.Client
	}
	return &http.Client{}
}

func (cfg *Config) validate() error {
	if cfg.BaseURL == "" {
		return fmt.Errorf("loadgen: BaseURL is required")
	}
	if len(cfg.Targets) == 0 {
		return fmt.Errorf("loadgen: at least one target is required")
	}
	if cfg.Duration <= 0 {
		return fmt.Errorf("loadgen: Duration must be > 0")
	}
	return nil
}

func issue(ctx context.Context, client *http.Client, base string, t Target, col *collector) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+t.Path, bytes.NewReader(t.Body))
	if err != nil {
		col.record(0, nil, 0, err)
		return
	}
	req.Header.Set("Content-Type", "application/json")
	start := time.Now()
	resp, err := client.Do(req)
	elapsed := time.Since(start)
	if err != nil {
		col.record(0, nil, elapsed, err)
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	col.record(resp.StatusCode, resp.Header, elapsed, nil)
}

// RunOpen drives the open-loop Poisson run: exponential inter-arrival
// gaps at cfg.Rate for cfg.Duration, every arrival issued immediately
// in its own goroutine regardless of outstanding responses.
func RunOpen(ctx context.Context, name string, cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Rate <= 0 {
		return nil, fmt.Errorf("loadgen: open-loop Rate must be > 0")
	}
	client := cfg.client()
	col := newCollector()
	rng := rand.New(rand.NewSource(cfg.Seed))
	start := time.Now()
	deadline := start.Add(cfg.Duration)

	var wg sync.WaitGroup
	var sent int64
	next := start
	for i := 0; ; i++ {
		// Exponential inter-arrival gap: a Poisson process in the mean.
		gap := time.Duration(rng.ExpFloat64() / cfg.Rate * float64(time.Second))
		next = next.Add(gap)
		if next.After(deadline) {
			break
		}
		if d := time.Until(next); d > 0 {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(d):
			}
		}
		t := cfg.Targets[i%len(cfg.Targets)]
		sent++
		wg.Add(1)
		go func() {
			defer wg.Done()
			issue(ctx, client, cfg.BaseURL, t, col)
		}()
	}
	wg.Wait()
	res := col.result(name, "open", sent, time.Since(start))
	res.RatePerSec = cfg.Rate
	return res, nil
}

// RunClosed drives the closed-loop saturation run: cfg.Workers
// goroutines issuing back-to-back requests for cfg.Duration. The
// measured throughput is the server's sustained capacity at that
// concurrency.
func RunClosed(ctx context.Context, name string, cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 4
	}
	client := cfg.client()
	col := newCollector()
	start := time.Now()
	deadline := start.Add(cfg.Duration)

	var wg sync.WaitGroup
	var mu sync.Mutex
	var sent int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; time.Now().Before(deadline) && ctx.Err() == nil; i += workers {
				t := cfg.Targets[i%len(cfg.Targets)]
				mu.Lock()
				sent++
				mu.Unlock()
				issue(ctx, client, cfg.BaseURL, t, col)
			}
		}(w)
	}
	wg.Wait()
	res := col.result(name, "closed", sent, time.Since(start))
	res.Workers = workers
	return res, nil
}
