package loadgen

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"vliwcache/internal/fsx"
)

// Schema is the serving-baseline file schema version.
const Schema = 1

// DefaultLatencyTolerance is the relative p99 regression the serve gate
// accepts before failing. Serving latency on a shared box is far
// noisier than the simulator's CPU-bound ns/op, so the window is wide:
// the gate catches structural regressions (an accidental O(n) in the
// hot path, a lost cache), not percent-level drift.
const DefaultLatencyTolerance = 1.0

// Baseline is the committed serving-performance baseline
// (BENCH_serve.json at the repository root): paperload's measured
// latency percentiles, saturation throughput and cache-hit ratio.
type Baseline struct {
	Schema    int      `json:"schema"`
	GitSHA    string   `json:"git_sha"`
	Date      string   `json:"date"` // RFC 3339, UTC
	GoVersion string   `json:"go_version"`
	Scenarios []Result `json:"scenarios"`
}

// Load reads and validates a committed serving baseline.
func Load(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("loadgen: %w", err)
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("loadgen: %s: %w", path, err)
	}
	if b.Schema != Schema {
		return nil, fmt.Errorf("loadgen: %s: schema %d, want %d", path, b.Schema, Schema)
	}
	if len(b.Scenarios) == 0 {
		return nil, fmt.Errorf("loadgen: %s: no scenarios recorded", path)
	}
	for _, s := range b.Scenarios {
		if err := checkResult(s); err != nil {
			return nil, fmt.Errorf("loadgen: %s: scenario %q: %w", path, s.Name, err)
		}
	}
	return &b, nil
}

// checkResult is the always-on sanity gate over one recorded scenario:
// internally consistent counts, ordered percentiles, ratios in range.
func checkResult(s Result) error {
	switch {
	case s.Name == "":
		return fmt.Errorf("missing name")
	case s.Mode != "open" && s.Mode != "closed":
		return fmt.Errorf("mode %q", s.Mode)
	case s.Completed <= 0:
		return fmt.Errorf("no completed requests")
	case s.Completed+s.Errors+s.Shed > s.Sent:
		return fmt.Errorf("outcomes (%d) exceed sent (%d)", s.Completed+s.Errors+s.Shed, s.Sent)
	case s.CacheHitRatio < 0 || s.CacheHitRatio > 1:
		return fmt.Errorf("cache hit ratio %v out of [0,1]", s.CacheHitRatio)
	case s.P50Millis <= 0 || s.P50Millis > s.P95Millis || s.P95Millis > s.P99Millis || s.P99Millis > s.MaxMillis:
		return fmt.Errorf("percentiles not ordered: p50=%v p95=%v p99=%v max=%v",
			s.P50Millis, s.P95Millis, s.P99Millis, s.MaxMillis)
	case s.ThroughputPerSec <= 0:
		return fmt.Errorf("throughput %v", s.ThroughputPerSec)
	}
	return nil
}

// Write serializes the baseline deterministically (scenarios sorted by
// name, indented, atomic replace) so refreshes produce minimal diffs.
func (b *Baseline) Write(path string) error {
	b.Schema = Schema
	sort.Slice(b.Scenarios, func(i, j int) bool { return b.Scenarios[i].Name < b.Scenarios[j].Name })
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return fmt.Errorf("loadgen: %w", err)
	}
	return fsx.WriteFileAtomic(path, append(data, '\n'), 0o644)
}

// Regression is one violation found by Compare.
type Regression struct {
	Scenario string
	Detail   string
}

func (r Regression) String() string { return r.Scenario + ": " + r.Detail }

// Compare checks a fresh measurement against the recorded baseline:
// per matching scenario name, p99 may grow to base × (1 + tolerance)
// and throughput may shrink to base / (1 + tolerance); the cache-hit
// ratio must not collapse (≥ half the recorded ratio). Scenarios
// present on only one side are ignored — the gate compares behavior,
// not coverage.
func Compare(base, got *Baseline, tolerance float64) []Regression {
	if tolerance <= 0 {
		tolerance = DefaultLatencyTolerance
	}
	recorded := make(map[string]Result, len(base.Scenarios))
	for _, s := range base.Scenarios {
		recorded[s.Name] = s
	}
	var regs []Regression
	for _, g := range got.Scenarios {
		b, ok := recorded[g.Name]
		if !ok {
			continue
		}
		if limit := b.P99Millis * (1 + tolerance); g.P99Millis > limit {
			regs = append(regs, Regression{g.Name,
				fmt.Sprintf("p99 %.2fms exceeds %.2fms (base %.2fms +%d%%)",
					g.P99Millis, limit, b.P99Millis, int(tolerance*100))})
		}
		if floor := b.ThroughputPerSec / (1 + tolerance); g.ThroughputPerSec < floor {
			regs = append(regs, Regression{g.Name,
				fmt.Sprintf("throughput %.1f/s below %.1f/s (base %.1f/s)",
					g.ThroughputPerSec, floor, b.ThroughputPerSec)})
		}
		if b.CacheHitRatio > 0 && g.CacheHitRatio < b.CacheHitRatio/2 {
			regs = append(regs, Regression{g.Name,
				fmt.Sprintf("cache hit ratio %.2f collapsed from %.2f", g.CacheHitRatio, b.CacheHitRatio)})
		}
	}
	sort.Slice(regs, func(i, j int) bool { return regs[i].Scenario < regs[j].Scenario })
	return regs
}
