// Package profiler computes preferred-cluster information for memory
// instructions (§2.2, footnote 1: "the preferred cluster is computed
// through profiling").
//
// A profiling run walks the loop's address stream on the profile input
// (the loop's ProfileTrip iterations, with symbol bases shifted by
// ProfileShift) and records, per memory op, how many accesses map to each
// cluster under the architecture's interleaving function. The preferred
// cluster of an op is the cluster it accesses most; the preferred cluster
// of a memory dependent chain is the weighted vote over the whole chain
// ("average preferred cluster").
package profiler

import (
	"vliwcache/internal/arch"
	"vliwcache/internal/ir"
)

// Profile holds per-op home-cluster histograms for one loop.
type Profile struct {
	NumClusters int
	// Hist maps op ID to per-cluster access counts.
	Hist map[int][]int64
}

// Run profiles a loop on its profile input. Loops without an explicit
// ProfileTrip are profiled over their execution trip count.
func Run(loop *ir.Loop, cfg arch.Config) *Profile {
	p := &Profile{
		NumClusters: cfg.NumClusters,
		Hist:        make(map[int][]int64),
	}
	if cfg.Replicated() {
		// Every cluster holds every block: locality is placement-
		// independent and no memory op has a preferred cluster.
		return p
	}
	trip := loop.ProfileTrip
	if trip == 0 {
		trip = loop.Trip
	}
	// Bound the profiling walk: home clusters repeat with period
	// NumClusters*InterleaveBytes/gcd(stride, ...), so a few thousand
	// iterations characterize any affine stream.
	const maxProfileIters = 1 << 14
	if trip > maxProfileIters {
		trip = maxProfileIters
	}
	for _, o := range loop.Ops {
		if !o.Kind.IsMem() {
			continue
		}
		h := make([]int64, cfg.NumClusters)
		base := loop.Symbols[o.Addr.Base].Base + uint64(loop.ProfileShift)
		for i := int64(0); i < trip; i++ {
			h[cfg.HomeCluster(o.Addr.AddrAt(base, i))]++
		}
		p.Hist[o.ID] = h
	}
	return p
}

// Preferred returns the preferred cluster of the op, or -1 when the op has
// no profile (non-memory ops).
func (p *Profile) Preferred(op int) int {
	h, ok := p.Hist[op]
	if !ok {
		return -1
	}
	return argmax(h)
}

// ChainPreferred returns the average preferred cluster of a set of ops: the
// cluster maximizing the summed access counts of the whole chain.
func (p *Profile) ChainPreferred(ops []int) int {
	sum := make([]int64, p.NumClusters)
	any := false
	for _, id := range ops {
		if h, ok := p.Hist[id]; ok {
			any = true
			for c, v := range h {
				sum[c] += v
			}
		}
	}
	if !any {
		return -1
	}
	return argmax(sum)
}

// LocalityUpperBound returns the fraction of profiled accesses that would
// be local if every memory op executed in its preferred cluster — an upper
// bound on the local access ratio achievable by any placement.
func (p *Profile) LocalityUpperBound() float64 {
	var local, total int64
	for _, h := range p.Hist {
		best := int64(0)
		for _, v := range h {
			if v > best {
				best = v
			}
			total += v
		}
		local += best
	}
	if total == 0 {
		return 0
	}
	return float64(local) / float64(total)
}

func argmax(h []int64) int {
	best, bi := int64(-1), 0
	for i, v := range h {
		if v > best {
			best, bi = v, i
		}
	}
	return bi
}
