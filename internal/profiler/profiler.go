// Package profiler computes preferred-cluster information for memory
// instructions (§2.2, footnote 1: "the preferred cluster is computed
// through profiling").
//
// A profiling run walks the loop's address stream on the profile input
// (the loop's ProfileTrip iterations, with symbol bases shifted by
// ProfileShift) and records, per memory op, how many accesses map to each
// cluster under the architecture's interleaving function. The preferred
// cluster of an op is the cluster it accesses most; the preferred cluster
// of a memory dependent chain is the weighted vote over the whole chain
// ("average preferred cluster").
package profiler

import (
	"fmt"

	"vliwcache/internal/arch"
	"vliwcache/internal/ir"
)

// UnknownSymbolError reports a memory op whose address base names no
// symbol of its loop — the loop skipped ir.Loop.Validate, or the symbol
// table was mutated after construction.
type UnknownSymbolError struct {
	Loop string
	Op   int
	Base string
}

func (e *UnknownSymbolError) Error() string {
	return fmt.Sprintf("profiler: loop %q op %d: address base %q names no symbol", e.Loop, e.Op, e.Base)
}

// Profile holds per-op home-cluster histograms for one loop.
type Profile struct {
	NumClusters int
	// Hist maps op ID to per-cluster access counts.
	Hist map[int][]int64
	// Skipped diagnoses memory ops the profiling walk could not place
	// because their address base names no symbol. Skipped ops have no
	// histogram, so Preferred reports -1 for them — the same "no
	// preference" answer non-memory ops get.
	Skipped []*UnknownSymbolError
}

// Run profiles a loop on its profile input. Loops without an explicit
// ProfileTrip are profiled over their execution trip count.
func Run(loop *ir.Loop, cfg arch.Config) *Profile {
	p := &Profile{
		NumClusters: cfg.NumClusters,
		Hist:        make(map[int][]int64),
	}
	if cfg.Replicated() {
		// Every cluster holds every block: locality is placement-
		// independent and no memory op has a preferred cluster.
		return p
	}
	trip := loop.ProfileTrip
	if trip == 0 {
		trip = loop.Trip
	}
	// Bound the profiling walk: home clusters repeat with period
	// NumClusters*InterleaveBytes/gcd(stride, ...), so a few thousand
	// iterations characterize any affine stream.
	const maxProfileIters = 1 << 14
	if trip > maxProfileIters {
		trip = maxProfileIters
	}
	for _, o := range loop.Ops {
		if !o.Kind.IsMem() {
			continue
		}
		sym := loop.Symbols[o.Addr.Base]
		if sym == nil {
			p.Skipped = append(p.Skipped, &UnknownSymbolError{Loop: loop.Name, Op: o.ID, Base: o.Addr.Base})
			continue
		}
		h := make([]int64, cfg.NumClusters)
		base := sym.Base + uint64(loop.ProfileShift)
		for i := int64(0); i < trip; i++ {
			h[cfg.HomeCluster(o.Addr.AddrAt(base, i))]++
		}
		p.Hist[o.ID] = h
	}
	return p
}

// RunStrict is Run with malformed input reported instead of tolerated: a
// memory op whose address base names no symbol yields an
// *UnknownSymbolError. Unlike Run, the check applies under every cache
// layout, including replicated ones that skip the profiling walk.
func RunStrict(loop *ir.Loop, cfg arch.Config) (*Profile, error) {
	for _, o := range loop.Ops {
		if o.Kind.IsMem() && loop.Symbols[o.Addr.Base] == nil {
			return nil, &UnknownSymbolError{Loop: loop.Name, Op: o.ID, Base: o.Addr.Base}
		}
	}
	return Run(loop, cfg), nil
}

// Preferred returns the preferred cluster of the op, or -1 when the op has
// no profile (non-memory ops).
func (p *Profile) Preferred(op int) int {
	h, ok := p.Hist[op]
	if !ok {
		return -1
	}
	return argmax(h)
}

// ChainPreferred returns the average preferred cluster of a set of ops: the
// cluster maximizing the summed access counts of the whole chain.
func (p *Profile) ChainPreferred(ops []int) int {
	sum := make([]int64, p.NumClusters)
	any := false
	for _, id := range ops {
		if h, ok := p.Hist[id]; ok {
			any = true
			for c, v := range h {
				sum[c] += v
			}
		}
	}
	if !any {
		return -1
	}
	return argmax(sum)
}

// LocalityUpperBound returns the fraction of profiled accesses that would
// be local if every memory op executed in its preferred cluster — an upper
// bound on the local access ratio achievable by any placement.
func (p *Profile) LocalityUpperBound() float64 {
	var local, total int64
	for _, h := range p.Hist {
		best := int64(0)
		for _, v := range h {
			if v > best {
				best = v
			}
			total += v
		}
		local += best
	}
	if total == 0 {
		return 0
	}
	return float64(local) / float64(total)
}

func argmax(h []int64) int {
	best, bi := int64(-1), 0
	for i, v := range h {
		if v > best {
			best, bi = v, i
		}
	}
	return bi
}
