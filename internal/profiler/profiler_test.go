package profiler

import (
	"testing"

	"vliwcache/internal/arch"
	"vliwcache/internal/ir"
)

func TestFixedHomeProfile(t *testing.T) {
	cfg := arch.Default() // I=4, N=4
	b := ir.NewBuilder("fixed")
	b.Symbol("a", 0x1000, 1<<16)
	b.Trip(100, 1)
	// Stride 16 = N*I: always the same home; offset 8 selects cluster 2.
	b.Load("ld", ir.AddrExpr{Base: "a", Offset: 8, Stride: 16, Size: 4})
	p := Run(b.Loop(), cfg)
	if got := p.Preferred(0); got != 2 {
		t.Errorf("preferred = %d, want 2 (hist %v)", got, p.Hist[0])
	}
	h := p.Hist[0]
	if h[2] != 100 || h[0] != 0 || h[1] != 0 || h[3] != 0 {
		t.Errorf("hist = %v, want all accesses in cluster 2", h)
	}
}

func TestRotatingHomeProfile(t *testing.T) {
	cfg := arch.Default()
	b := ir.NewBuilder("rot")
	b.Symbol("a", 0x1000, 1<<16)
	b.Trip(400, 1)
	b.Load("ld", ir.AddrExpr{Base: "a", Stride: 4, Size: 4})
	p := Run(b.Loop(), cfg)
	h := p.Hist[0]
	for c, n := range h {
		if n != 100 {
			t.Errorf("cluster %d: %d accesses, want 100 (uniform rotation)", c, n)
		}
	}
}

func TestProfileShiftChangesHomes(t *testing.T) {
	cfg := arch.Default()
	mk := func(shift int64) int {
		b := ir.NewBuilder("s")
		b.Symbol("a", 0x1000, 1<<16)
		b.Trip(64, 1)
		b.Profile(0, shift)
		b.Load("ld", ir.AddrExpr{Base: "a", Stride: 16, Size: 4})
		return Run(b.Loop(), cfg).Preferred(0)
	}
	if mk(0) == mk(4) {
		t.Error("a 4-byte shift (non-multiple of N*I) must change the preferred cluster")
	}
	if mk(0) != mk(16) {
		t.Error("a 16-byte shift (multiple of N*I, i.e. padded) must preserve it")
	}
}

func TestChainPreferredWeightedVote(t *testing.T) {
	cfg := arch.Default()
	b := ir.NewBuilder("vote")
	b.Symbol("a", 0x1000, 1<<20)
	b.Trip(100, 1)
	b.Load("l0", ir.AddrExpr{Base: "a", Offset: 0, Stride: 16, Size: 4})  // cluster 0
	b.Load("l1", ir.AddrExpr{Base: "a", Offset: 12, Stride: 16, Size: 4}) // cluster 3
	b.Load("l2", ir.AddrExpr{Base: "a", Offset: 28, Stride: 16, Size: 4}) // cluster 3
	p := Run(b.Loop(), cfg)
	if got := p.ChainPreferred([]int{0, 1, 2}); got != 3 {
		t.Errorf("chain preferred = %d, want 3 (majority)", got)
	}
}

func TestNonMemoryOpsHaveNoProfile(t *testing.T) {
	cfg := arch.Default()
	b := ir.NewBuilder("nm")
	b.Arith("add", ir.KindAdd)
	p := Run(b.Loop(), cfg)
	if p.Preferred(0) != -1 {
		t.Error("non-memory op must have no preference")
	}
	if p.ChainPreferred([]int{0}) != -1 {
		t.Error("chain of non-memory ops must have no preference")
	}
}

func TestLocalityUpperBound(t *testing.T) {
	cfg := arch.Default()
	b := ir.NewBuilder("ub")
	b.Symbol("a", 0x1000, 1<<20)
	b.Trip(100, 1)
	b.Load("fixed", ir.AddrExpr{Base: "a", Stride: 16, Size: 4}) // 100% one cluster
	b.Load("rot", ir.AddrExpr{Base: "a", Offset: 0x8000, Stride: 4, Size: 4})
	p := Run(b.Loop(), cfg)
	ub := p.LocalityUpperBound()
	if ub <= 0.5 || ub > 1 {
		t.Errorf("upper bound = %v, want (0.5, 1] (one perfect + one uniform op)", ub)
	}
}
