package profiler

import (
	"errors"
	"strings"
	"testing"

	"vliwcache/internal/arch"
	"vliwcache/internal/ir"
)

// ghostLoop builds a loop whose load references a symbol that is missing
// from the symbol table — the malformed input a caller can produce by
// skipping ir.Loop.Validate or by mutating Symbols after construction.
func ghostLoop(t *testing.T) *ir.Loop {
	t.Helper()
	b := ir.NewBuilder("ghostly")
	b.Symbol("real", 0x1000, 4096)
	b.Trip(16, 1)
	v := b.Load("real", ir.AddrExpr{Base: "real", Stride: 4, Size: 4})
	b.Store("real", ir.AddrExpr{Base: "real", Offset: 64, Stride: 4, Size: 4}, v)
	l := b.Loop()
	l.Ops[1].Addr.Base = "ghost" // the store now references a missing symbol
	return l
}

// Run must not panic on a memory op whose address base names no symbol;
// it skips the op with a typed diagnostic and profiles the rest.
func TestRunSkipsUnknownSymbol(t *testing.T) {
	l := ghostLoop(t)
	p := Run(l, arch.Default())

	if len(p.Skipped) != 1 {
		t.Fatalf("got %d skipped diagnostics, want 1: %v", len(p.Skipped), p.Skipped)
	}
	d := p.Skipped[0]
	if d.Loop != "ghostly" || d.Op != 1 || d.Base != "ghost" {
		t.Errorf("diagnostic = %+v", d)
	}
	for _, sub := range []string{"ghostly", "op 1", `"ghost"`} {
		if !strings.Contains(d.Error(), sub) {
			t.Errorf("error %q does not mention %s", d.Error(), sub)
		}
	}

	// The well-formed load is still profiled; the skipped store reports
	// no preference, like a non-memory op.
	if got := p.Preferred(0); got < 0 {
		t.Errorf("Preferred(0) = %d, want a cluster", got)
	}
	if got := p.Preferred(1); got != -1 {
		t.Errorf("Preferred(1) = %d, want -1 for the skipped op", got)
	}
}

func TestRunStrictRejectsUnknownSymbol(t *testing.T) {
	l := ghostLoop(t)
	p, err := RunStrict(l, arch.Default())
	if err == nil {
		t.Fatal("RunStrict accepted a loop with an unknown address base")
	}
	if p != nil {
		t.Error("a rejected profile must be nil")
	}
	var use *UnknownSymbolError
	if !errors.As(err, &use) {
		t.Fatalf("error is %T, want *UnknownSymbolError", err)
	}
	if use.Base != "ghost" {
		t.Errorf("Base = %q", use.Base)
	}

	// The strict check also fires under replicated layouts, where the
	// profiling walk itself is skipped entirely.
	if _, err := RunStrict(l, arch.Default().WithLayout(arch.LayoutReplicated)); err == nil {
		t.Error("RunStrict missed the unknown symbol under the replicated layout")
	}
}

func TestRunStrictAcceptsWellFormed(t *testing.T) {
	b := ir.NewBuilder("ok")
	b.Symbol("a", 0x2000, 1024)
	b.Trip(8, 1)
	b.Load("a", ir.AddrExpr{Base: "a", Stride: 4, Size: 4})
	p, err := RunStrict(b.Loop(), arch.Default())
	if err != nil {
		t.Fatalf("RunStrict: %v", err)
	}
	if len(p.Skipped) != 0 {
		t.Errorf("unexpected diagnostics: %v", p.Skipped)
	}
}
