package arch

import (
	"testing"
	"testing/quick"
)

func TestDefaultMatchesTable2(t *testing.T) {
	c := Default()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.NumClusters != 4 || c.IntUnits != 1 || c.FPUnits != 1 || c.MemUnits != 1 {
		t.Error("Table 2: 4 clusters with 1 FP + 1 Integer + 1 Memory each")
	}
	if c.CacheBytes != 8*1024 || c.BlockBytes != 32 || c.CacheAssoc != 2 || c.CacheHitLatency != 1 {
		t.Error("Table 2: 8KB total, 32-byte blocks, 2-way, 1 cycle")
	}
	if c.RegBuses != 4 || c.RegBusLatency != 2 || c.MemBuses != 4 || c.MemBusLatency != 2 {
		t.Error("Table 2: 4+4 buses at half the core frequency")
	}
	if c.NextLevelLatency != 10 || c.NextLevelPorts != 4 {
		t.Error("Table 2: 4 ports + 10 cycle next level")
	}
	if c.ModuleBytes() != 2048 {
		t.Errorf("module = %d bytes, want 2048 (four 2KB modules)", c.ModuleBytes())
	}
	if c.SubblockBytes() != 8 {
		t.Errorf("subblock = %d bytes, want 8", c.SubblockBytes())
	}
}

func TestNobalVariants(t *testing.T) {
	m := NobalMem()
	if m.MemBuses != 4 || m.MemBusLatency != 2 || m.RegBuses != 2 || m.RegBusLatency != 4 {
		t.Errorf("NOBAL+MEM mismatch: %+v", m)
	}
	r := NobalReg()
	if r.MemBuses != 2 || r.MemBusLatency != 4 || r.RegBuses != 4 || r.RegBusLatency != 2 {
		t.Errorf("NOBAL+REG mismatch: %+v", r)
	}
	for _, c := range []Config{m, r} {
		if err := c.Validate(); err != nil {
			t.Error(err)
		}
	}
}

func TestHomeClusterInterleaving(t *testing.T) {
	c := Default() // interleave 4, 4 clusters
	for addr, want := range map[uint64]int{
		0: 0, 3: 0, 4: 1, 7: 1, 8: 2, 12: 3, 15: 3, 16: 0, 20: 1,
	} {
		if got := c.HomeCluster(addr); got != want {
			t.Errorf("HomeCluster(%d) = %d, want %d", addr, got, want)
		}
	}
	c2 := c.WithInterleave(2)
	for addr, want := range map[uint64]int{0: 0, 2: 1, 4: 2, 6: 3, 8: 0} {
		if got := c2.HomeCluster(addr); got != want {
			t.Errorf("I=2: HomeCluster(%d) = %d, want %d", addr, got, want)
		}
	}
}

func TestBlockDistributionProperty(t *testing.T) {
	// Every block's bytes must spread evenly: exactly SubblockBytes per
	// cluster, and Subblock must agree with HomeCluster and BlockAddr.
	c := Default()
	f := func(block uint32) bool {
		base := uint64(block) * uint64(c.BlockBytes)
		counts := make([]int, c.NumClusters)
		for b := 0; b < c.BlockBytes; b++ {
			addr := base + uint64(b)
			h := c.HomeCluster(addr)
			counts[h]++
			sub := c.Subblock(addr)
			if sub.Block != c.BlockAddr(addr) || sub.Cluster != h {
				return false
			}
		}
		for _, n := range counts {
			if n != c.SubblockBytes() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLatencies(t *testing.T) {
	l := Default().Latencies()
	if l.LocalHit != 1 || l.RemoteHit != 5 || l.LocalMiss != 11 || l.RemoteMiss != 15 {
		t.Errorf("latencies = %+v, want 1/5/11/15", l)
	}
	if !(l.LocalHit < l.RemoteHit && l.RemoteHit < l.LocalMiss && l.LocalMiss < l.RemoteMiss) {
		t.Error("latency ordering must be LH < RH < LM < RM for the default config")
	}
}

func TestValidateRejections(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.NumClusters = 0 },
		func(c *Config) { c.IntUnits = 0 },
		func(c *Config) { c.MemUnits = 0 },
		func(c *Config) { c.FPUnits = -1 },
		func(c *Config) { c.CacheBytes = 0 },
		func(c *Config) { c.CacheBytes = 1000 }, // not divisible
		func(c *Config) { c.BlockBytes = 24 },   // not divisible by N*I
		func(c *Config) { c.CacheAssoc = 0 },
		func(c *Config) { c.InterleaveBytes = 3 },
		func(c *Config) { c.InterleaveBytes = 0 },
		func(c *Config) { c.CacheHitLatency = 0 },
		func(c *Config) { c.RegBuses = 0 },
		func(c *Config) { c.MemBuses = 0 },
		func(c *Config) { c.RegBusLatency = 0 },
		func(c *Config) { c.NextLevelLatency = 0 },
		func(c *Config) { c.NextLevelPorts = 0 },
		func(c *Config) { c.ABEntries = -1 },
		func(c *Config) { c.ABEntries = 16; c.ABAssoc = 0 },
	}
	for i, mutate := range bad {
		c := Default()
		mutate(&c)
		if c.Validate() == nil {
			t.Errorf("mutation %d must be rejected: %+v", i, c)
		}
	}
}

func TestValidateEdgeCases(t *testing.T) {
	// Shapes that used to pass Validate and only fail deep inside the
	// simulator (cache.NewModule, bus.NewArbiter, BlockAddr masking) must
	// now be rejected up front with a message naming the violated rule.
	cases := []struct {
		name   string
		mutate func(*Config)
		wantOK bool
	}{
		{"default ok", func(c *Config) {}, true},
		{"2 clusters ok", func(c *Config) { c.NumClusters = 2 }, true},
		{"8 clusters I=2 ok", func(c *Config) { c.NumClusters = 8; c.InterleaveBytes = 2 }, true},
		{"block not power of two", func(c *Config) {
			// 48 satisfies every divisibility rule (with CacheBytes
			// adjusted to match), so only the power-of-two rule can fire.
			c.BlockBytes = 48
			c.CacheBytes = 4 * 48 * 16
		}, false},
		{"interleave wider than block", func(c *Config) { c.InterleaveBytes = 64 }, false},
		{"interleave not dividing block", func(c *Config) { c.BlockBytes = 2; c.InterleaveBytes = 4 }, false},
		{"clusters not dividing block words", func(c *Config) { c.NumClusters = 8; c.InterleaveBytes = 8 }, false},
		{"module lines not divisible by assoc", func(c *Config) { c.CacheAssoc = 3 }, false},
		{"zero mem buses single cluster", func(c *Config) {
			c.NumClusters = 1
			c.RegBuses = 0
			c.MemBuses = 0
		}, false},
		{"single cluster zero reg buses ok", func(c *Config) {
			c.NumClusters = 1
			c.RegBuses = 0
		}, true},
		{"negative reg buses", func(c *Config) { c.NumClusters = 1; c.RegBuses = -1 }, false},
		{"zero mem buses clustered", func(c *Config) { c.MemBuses = 0 }, false},
		{"replicated with AB", func(c *Config) {
			c.Layout = LayoutReplicated
			c.ABEntries = 16
		}, false},
		{"replicated ok", func(c *Config) { c.Layout = LayoutReplicated }, true},
		{"AB entries not divisible by assoc", func(c *Config) { c.ABEntries = 1; c.ABAssoc = 2 }, false},
		{"AB single direct-mapped entry ok", func(c *Config) { c.ABEntries = 1; c.ABAssoc = 1 }, true},
	}
	for _, tc := range cases {
		c := Default()
		tc.mutate(&c)
		err := c.Validate()
		if tc.wantOK && err != nil {
			t.Errorf("%s: unexpected Validate error: %v", tc.name, err)
		}
		if !tc.wantOK && err == nil {
			t.Errorf("%s: Validate must reject %+v", tc.name, c)
		}
	}
}

func TestWithAttractionBuffers(t *testing.T) {
	c := Default().WithAttractionBuffers(16)
	if c.ABEntries != 16 || c.ABAssoc != 2 {
		t.Errorf("AB config = %d/%d", c.ABEntries, c.ABAssoc)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if Default().ABEntries != 0 {
		t.Error("WithAttractionBuffers must not mutate the receiver")
	}
}

func TestStringMentionsAB(t *testing.T) {
	if s := Default().String(); s == "" {
		t.Error("empty String()")
	}
	c := Default().WithAttractionBuffers(16)
	if s := c.String(); s == Default().String() {
		t.Error("AB config must render differently")
	}
}
