// Package arch describes the machine model of a word-interleaved cache
// clustered VLIW processor: the cluster count and functional-unit mix, the
// geometry of the distributed data cache, the interconnect (register-to-
// register buses and memory buses) and the next memory level.
//
// The default configuration reproduces Table 2 of Gibert, Sánchez &
// González (CGO 2003); the NOBAL+MEM and NOBAL+REG variants of §4.2 and the
// Attraction Buffer configuration of §5 are provided as derived configs.
package arch

import "fmt"

// Layout selects how the distributed data cache is organized across
// clusters. The paper proposes and evaluates its techniques on the
// word-interleaved layout but notes (§2.3) that they apply to "any
// clustered configuration where the data cache has been clustered as
// well, such as the multiVLIW or a replicated-cache clustered VLIW
// processor"; the replicated layout models the latter.
type Layout int

const (
	// LayoutWordInterleaved distributes each cache block word-interleaved
	// across the clusters: address bytes [k·I, (k+1)·I) are homed in
	// cluster k mod N. Accesses to remote homes cross the memory buses.
	LayoutWordInterleaved Layout = iota

	// LayoutReplicated gives every cluster a full copy of the cache.
	// Loads are always satisfied locally; a store must update every
	// cluster's copy — either by broadcasting over the memory buses
	// (baseline and MDC) or, under DDGT store replication, by the
	// instance in each cluster updating its local copy directly. The
	// replication divides effective capacity by the cluster count.
	LayoutReplicated
)

func (l Layout) String() string {
	switch l {
	case LayoutWordInterleaved:
		return "word-interleaved"
	case LayoutReplicated:
		return "replicated"
	}
	return fmt.Sprintf("Layout(%d)", int(l))
}

// Config is the full machine description used by the scheduler and the
// simulator. The zero value is not valid; use Default or a variant
// constructor and adjust fields as needed, then call Validate.
type Config struct {
	// Layout is the cache organization; the zero value is the paper's
	// word-interleaved layout.
	Layout Layout

	// NumClusters is the number of clusters. Each cluster owns a register
	// file, one slice of the functional units, and one cache module.
	NumClusters int

	// Per-cluster functional unit counts.
	IntUnits int // integer ALUs per cluster
	FPUnits  int // floating-point units per cluster
	MemUnits int // memory (load/store) ports per cluster

	// Cache geometry. The total cache of CacheBytes is split evenly among
	// clusters. Blocks are BlockBytes wide and distributed word-interleaved
	// among the clusters with an interleaving factor of InterleaveBytes:
	// bytes [k*I, (k+1)*I) of the address space map to cluster
	// (k mod NumClusters). The words of a block residing in one cluster
	// form a "subblock" of BlockBytes/NumClusters bytes.
	CacheBytes      int
	BlockBytes      int
	CacheAssoc      int
	InterleaveBytes int
	CacheHitLatency int // latency of a local cache module hit

	// Register-to-register communication buses. These are statically
	// scheduled by the compiler: an inter-cluster copy occupies one bus for
	// RegBusLatency cycles. The buses run at a fraction of the core
	// frequency, which is already folded into RegBusLatency.
	RegBuses      int
	RegBusLatency int

	// Memory buses carry remote cache accesses and cache refills. They are
	// dynamically arbitrated at run time (latency as seen by the program is
	// non-deterministic). One hop (request or reply) occupies a bus for
	// MemBusLatency cycles.
	MemBuses      int
	MemBusLatency int

	// Next memory level (always hits in the paper's model).
	NextLevelLatency int // total latency of a next-level access
	NextLevelPorts   int

	// Attraction Buffers (per-cluster buffers caching remote subblocks).
	// ABEntries == 0 disables them.
	ABEntries int
	ABAssoc   int
}

// Default returns the baseline configuration of Table 2 of the paper:
// 4 clusters, 1 INT + 1 FP + 1 MEM unit per cluster, 8KB total cache in
// four 2KB modules (32-byte blocks, 2-way, 1-cycle hit), 4 register buses
// and 4 memory buses at half the core frequency (2-cycle hops), and a
// 10-cycle always-hit next level with 4 ports. Attraction Buffers are off.
func Default() Config {
	return Config{
		NumClusters:      4,
		IntUnits:         1,
		FPUnits:          1,
		MemUnits:         1,
		CacheBytes:       8 * 1024,
		BlockBytes:       32,
		CacheAssoc:       2,
		InterleaveBytes:  4,
		CacheHitLatency:  1,
		RegBuses:         4,
		RegBusLatency:    2,
		MemBuses:         4,
		MemBusLatency:    2,
		NextLevelLatency: 10,
		NextLevelPorts:   4,
		ABEntries:        0,
		ABAssoc:          2,
	}
}

// NobalMem returns the NOBAL+MEM variant of §4.2: four 2-cycle memory buses
// but only two 4-cycle register-to-register buses.
func NobalMem() Config {
	c := Default()
	c.MemBuses, c.MemBusLatency = 4, 2
	c.RegBuses, c.RegBusLatency = 2, 4
	return c
}

// NobalReg returns the NOBAL+REG variant of §4.2: two 4-cycle memory buses
// and four 2-cycle register-to-register buses.
func NobalReg() Config {
	c := Default()
	c.MemBuses, c.MemBusLatency = 2, 4
	c.RegBuses, c.RegBusLatency = 4, 2
	return c
}

// WithAttractionBuffers returns a copy of c with 2-way set-associative
// Attraction Buffers of the given number of entries in every cluster
// (16 entries in §5 of the paper).
func (c Config) WithAttractionBuffers(entries int) Config {
	c.ABEntries = entries
	c.ABAssoc = 2
	return c
}

// WithInterleave returns a copy of c using the given interleaving factor in
// bytes. The paper uses 4 bytes for epicdec, jpegdec, jpegenc, mpeg2dec,
// pgpdec, pgpenc and rasta, and 2 bytes for the rest.
func (c Config) WithInterleave(bytes int) Config {
	c.InterleaveBytes = bytes
	return c
}

// WithLayout returns a copy of c using the given cache layout.
func (c Config) WithLayout(l Layout) Config {
	c.Layout = l
	return c
}

// Replicated reports whether the cache layout replicates every block in
// every cluster.
func (c Config) Replicated() bool { return c.Layout == LayoutReplicated }

// Validate reports whether the configuration is internally consistent.
func (c Config) Validate() error {
	switch {
	case c.NumClusters < 1:
		return fmt.Errorf("arch: NumClusters must be >= 1, got %d", c.NumClusters)
	case c.IntUnits < 1 || c.MemUnits < 1:
		return fmt.Errorf("arch: each cluster needs at least one integer and one memory unit")
	case c.FPUnits < 0:
		return fmt.Errorf("arch: FPUnits must be >= 0, got %d", c.FPUnits)
	case c.CacheBytes <= 0 || c.BlockBytes <= 0:
		return fmt.Errorf("arch: cache and block sizes must be positive")
	case c.BlockBytes&(c.BlockBytes-1) != 0:
		return fmt.Errorf("arch: BlockBytes must be a power of two (block addresses are derived by masking), got %d", c.BlockBytes)
	case c.InterleaveBytes <= 0 || c.InterleaveBytes&(c.InterleaveBytes-1) != 0:
		return fmt.Errorf("arch: InterleaveBytes must be a positive power of two, got %d", c.InterleaveBytes)
	case c.BlockBytes%c.InterleaveBytes != 0:
		return fmt.Errorf("arch: InterleaveBytes %d does not divide BlockBytes %d",
			c.InterleaveBytes, c.BlockBytes)
	case (c.BlockBytes/c.InterleaveBytes)%c.NumClusters != 0:
		return fmt.Errorf("arch: NumClusters %d does not divide the %d interleave words of a %d-byte block",
			c.NumClusters, c.BlockBytes/c.InterleaveBytes, c.BlockBytes)
	case c.CacheBytes%(c.NumClusters*c.BlockBytes) != 0:
		return fmt.Errorf("arch: cache size %d not divisible into %d modules of %d-byte blocks",
			c.CacheBytes, c.NumClusters, c.BlockBytes)
	case c.CacheAssoc < 1:
		return fmt.Errorf("arch: CacheAssoc must be >= 1, got %d", c.CacheAssoc)
	case (c.ModuleBytes()/c.SubblockBytes())%c.CacheAssoc != 0:
		return fmt.Errorf("arch: %d-byte module of %d-byte subblocks has %d lines, not divisible into %d-way sets",
			c.ModuleBytes(), c.SubblockBytes(), c.ModuleBytes()/c.SubblockBytes(), c.CacheAssoc)
	case c.CacheHitLatency < 1:
		return fmt.Errorf("arch: CacheHitLatency must be >= 1, got %d", c.CacheHitLatency)
	case c.RegBuses < 0:
		return fmt.Errorf("arch: RegBuses must be >= 0, got %d", c.RegBuses)
	case c.RegBuses < 1 && c.NumClusters > 1:
		return fmt.Errorf("arch: a clustered machine needs at least one register bus")
	case c.MemBuses < 1:
		return fmt.Errorf("arch: at least one memory bus is required (cache refills cross the memory interconnect)")
	case c.RegBusLatency < 1 || c.MemBusLatency < 1:
		return fmt.Errorf("arch: bus latencies must be >= 1")
	case c.NextLevelLatency < 1 || c.NextLevelPorts < 1:
		return fmt.Errorf("arch: next level needs positive latency and ports")
	case c.ABEntries < 0:
		return fmt.Errorf("arch: ABEntries must be >= 0, got %d", c.ABEntries)
	case c.ABEntries > 0 && c.ABAssoc < 1:
		return fmt.Errorf("arch: ABAssoc must be >= 1 when Attraction Buffers are enabled")
	case c.ABEntries > 0 && c.ABEntries%c.ABAssoc != 0:
		return fmt.Errorf("arch: %d AB entries do not divide into %d-way sets", c.ABEntries, c.ABAssoc)
	case c.Replicated() && c.ABEntries > 0:
		return fmt.Errorf("arch: Attraction Buffers are meaningless under a replicated cache (every access is already local)")
	}
	return nil
}

// ModuleBytes returns the capacity in bytes of one per-cluster cache module.
func (c Config) ModuleBytes() int { return c.CacheBytes / c.NumClusters }

// SubblockBytes returns the number of bytes of each cache block that reside
// in a single cluster: a word-interleaved module holds 1/N of each block,
// a replicated module holds whole blocks (so the same module capacity
// caches N times fewer distinct blocks).
func (c Config) SubblockBytes() int {
	if c.Replicated() {
		return c.BlockBytes
	}
	return c.BlockBytes / c.NumClusters
}

// HomeCluster returns the cluster the given byte address is mapped to under
// word interleaving.
func (c Config) HomeCluster(addr uint64) int {
	return int((addr / uint64(c.InterleaveBytes)) % uint64(c.NumClusters))
}

// BlockAddr returns the address of the cache block containing addr.
func (c Config) BlockAddr(addr uint64) uint64 {
	return addr &^ uint64(c.BlockBytes-1)
}

// SubblockID identifies one subblock: the block address plus the home
// cluster. Two accesses hit the same subblock iff their SubblockIDs match.
type SubblockID struct {
	Block   uint64
	Cluster int
}

// Subblock returns the subblock identifier for the given address.
func (c Config) Subblock(addr uint64) SubblockID {
	return SubblockID{Block: c.BlockAddr(addr), Cluster: c.HomeCluster(addr)}
}

// AccessLatencies bundles the four static latency assumptions the scheduler
// may assign to a memory instruction (§2.2: local hit, remote hit, local
// miss, remote miss).
type AccessLatencies struct {
	LocalHit   int
	RemoteHit  int
	LocalMiss  int
	RemoteMiss int
}

// Latencies derives the four scheduling latencies from the configuration.
// A remote access adds a round trip over a memory bus; a miss adds the next
// level latency.
func (c Config) Latencies() AccessLatencies {
	hop := c.MemBusLatency
	return AccessLatencies{
		LocalHit:   c.CacheHitLatency,
		RemoteHit:  c.CacheHitLatency + 2*hop,
		LocalMiss:  c.CacheHitLatency + c.NextLevelLatency,
		RemoteMiss: c.CacheHitLatency + 2*hop + c.NextLevelLatency,
	}
}

// String returns a short human-readable summary of the configuration.
func (c Config) String() string {
	ab := "off"
	if c.ABEntries > 0 {
		ab = fmt.Sprintf("%d-entry %d-way", c.ABEntries, c.ABAssoc)
	}
	layout := fmt.Sprintf("%dB interleave", c.InterleaveBytes)
	if c.Replicated() {
		layout = "replicated"
	}
	return fmt.Sprintf(
		"%d clusters (%dI/%dF/%dM per cluster), %dKB cache (%dB blocks, %d-way, %s), %d reg buses (lat %d), %d mem buses (lat %d), L2 %dc/%dp, AB %s",
		c.NumClusters, c.IntUnits, c.FPUnits, c.MemUnits,
		c.CacheBytes/1024, c.BlockBytes, c.CacheAssoc, layout,
		c.RegBuses, c.RegBusLatency, c.MemBuses, c.MemBusLatency,
		c.NextLevelLatency, c.NextLevelPorts, ab)
}
