package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"vliwcache/internal/apiv1"
	"vliwcache/internal/arch"
)

// Defaults for router construction.
const (
	// DefaultJobParallelism bounds concurrently in-flight cells per
	// router (across all jobs and synchronous suites).
	DefaultJobParallelism = 4
	// DefaultDrainTimeout bounds how long Shutdown waits for running
	// jobs.
	DefaultDrainTimeout = 10 * time.Second
)

// Router is the serving tier's front node: it owns the v1 surface,
// shards compute onto workers by content address, and runs the async
// job lifecycle. Build one with NewRouter, mount Handler (or call
// Serve/ListenAndServe), stop with Shutdown.
type Router struct {
	base        arch.Config
	workers     []string
	vnodes      int
	client      *http.Client
	parallelism int
	drainTO     time.Duration
	pollEvery   time.Duration

	mu   sync.Mutex
	ring *Ring
	down map[string]string // worker URL → reason it was marked down

	jobs    *jobStore
	peers   *PeerSet
	sem     chan struct{}
	started time.Time

	cellsRouted   atomic.Int64
	cellsFromNear atomic.Int64 // served from a worker cache (hit/coalesced)
	cellsDegraded atomic.Int64

	draining atomic.Bool
	closing  chan struct{}
	jobWG    sync.WaitGroup

	httpMu  sync.Mutex
	httpSrv *http.Server
	stopBG  context.CancelFunc
}

// RouterOption configures a Router at construction time.
type RouterOption func(*Router)

// WithWorkers sets the worker base URLs ("http://host:port"). At least
// one worker is required to route anything; a worker-less router
// degrades every cell.
func WithWorkers(urls ...string) RouterOption {
	return func(rt *Router) { rt.workers = append([]string(nil), urls...) }
}

// WithRouterArch sets the base machine description the router resolves
// requests against. It MUST equal the workers' base config: router and
// worker derive the cell's content address independently and must agree
// byte-for-byte (default: the paper's Table 2 configuration, matching
// the worker default).
func WithRouterArch(cfg arch.Config) RouterOption {
	return func(rt *Router) { rt.base = cfg }
}

// WithVirtualNodes sets the ring's virtual-node count per worker
// (default DefaultVirtualNodes).
func WithVirtualNodes(n int) RouterOption {
	return func(rt *Router) { rt.vnodes = n }
}

// WithRouterClient sets the HTTP client used for worker requests
// (default: a dedicated client with no global timeout — per-request
// deadlines come from job cells' contexts).
func WithRouterClient(c *http.Client) RouterOption {
	return func(rt *Router) { rt.client = c }
}

// WithJobParallelism bounds concurrently in-flight cells
// (default DefaultJobParallelism; non-positive resets to it).
func WithJobParallelism(n int) RouterOption {
	return func(rt *Router) { rt.parallelism = n }
}

// WithRouterDrainTimeout bounds how long Shutdown waits for running
// jobs and in-flight requests (default DefaultDrainTimeout).
func WithRouterDrainTimeout(d time.Duration) RouterOption {
	return func(rt *Router) { rt.drainTO = d }
}

// WithRouterPollInterval sets the worker health poll interval used by
// the background reconciler (default DefaultPollInterval).
func WithRouterPollInterval(d time.Duration) RouterOption {
	return func(rt *Router) { rt.pollEvery = d }
}

// NewRouter builds a router over its worker set.
func NewRouter(opts ...RouterOption) *Router {
	rt := &Router{
		base:        arch.Default(),
		parallelism: DefaultJobParallelism,
		drainTO:     DefaultDrainTimeout,
		jobs:        newJobStore(),
		down:        make(map[string]string),
		closing:     make(chan struct{}),
		started:     time.Now(),
	}
	for _, o := range opts {
		o(rt)
	}
	if rt.parallelism <= 0 {
		rt.parallelism = DefaultJobParallelism
	}
	if rt.client == nil {
		rt.client = &http.Client{}
	}
	rt.ring = NewRing(rt.vnodes, rt.workers...)
	rt.peers = NewPeerSet(rt.workers, nil)
	rt.sem = make(chan struct{}, rt.parallelism)
	return rt
}

// Workers lists the configured worker URLs.
func (rt *Router) Workers() []string { return append([]string(nil), rt.workers...) }

// LiveWorkers lists workers currently on the ring, sorted.
func (rt *Router) LiveWorkers() []string {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.ring.Nodes()
}

// OwnerOf returns the live worker owning a content address ("" when
// none are live). Tests use it to assert cell placement.
func (rt *Router) OwnerOf(key string) string {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.ring.Owner(key)
}

// markDown removes a worker from the ring, recording why. Keys it
// owned fall to their ring successors (bounded movement), so retrying
// a failed cell against the new owner is exactly re-running consistent
// hashing after the membership change.
func (rt *Router) markDown(url, reason string) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if _, already := rt.down[url]; already {
		return
	}
	rt.down[url] = reason
	rt.ring.Remove(url)
}

// revive returns a marked-down worker to the ring (the reconciler calls
// it when the worker's /healthz reports serving again).
func (rt *Router) revive(url string) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if _, isDown := rt.down[url]; !isDown {
		return
	}
	delete(rt.down, url)
	rt.ring.Add(url)
}

// PollPeers refreshes worker health once and reconciles the ring:
// marked-down workers that report serving again rejoin. The background
// poller (started by Serve) calls this on an interval; tests call it
// directly.
func (rt *Router) PollPeers(ctx context.Context) {
	rt.peers.Poll(ctx)
	for _, st := range rt.peers.Snapshot() {
		switch st.Status {
		case apiv1.PeerServing:
			rt.revive(st.URL)
		case apiv1.PeerDraining, apiv1.PeerUnreachable:
			rt.markDown(st.URL, st.Status)
		}
	}
}

// routed is the outcome of routing one request body to the owner of a
// content address.
type routed struct {
	// status and body are the worker's response (status 0 means no
	// worker could be reached: the caller degrades or 503s).
	status int
	body   []byte
	// fromCache reports a worker cache hit (X-Cache: hit|coalesced).
	fromCache bool
	// naReason is set when no live worker remains.
	naReason string
}

// route posts body to the live owner of key at path, failing over along
// the ring: a transport error or 5xx marks the worker down and retries
// the next owner (which is exactly the key's owner on the shrunk ring);
// a 2xx/4xx answer is returned as-is — deterministic rejections must
// not burn through the worker set.
func (rt *Router) route(ctx context.Context, key, path string, body []byte) routed {
	for {
		rt.mu.Lock()
		owner := rt.ring.Owner(key)
		rt.mu.Unlock()
		if owner == "" {
			return routed{naReason: "no live workers"}
		}
		status, data, hdr, err := rt.post(ctx, owner+path, body)
		if err != nil {
			if ctx.Err() != nil {
				return routed{naReason: "canceled: " + ctx.Err().Error()}
			}
			rt.markDown(owner, err.Error())
			continue
		}
		if status >= 500 {
			rt.markDown(owner, fmt.Sprintf("http %d", status))
			continue
		}
		xc := hdr.Get("X-Cache")
		return routed{status: status, body: data, fromCache: xc == "hit" || xc == "coalesced"}
	}
}

func (rt *Router) post(ctx context.Context, url string, body []byte) (int, []byte, http.Header, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return 0, nil, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := rt.client.Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, nil, err
	}
	return resp.StatusCode, data, resp.Header, nil
}

// cellOutcome is one cell's terminal disposition inside a job or
// synchronous suite.
type cellOutcome struct {
	body      []byte
	fromCache bool
	degraded  bool
	// errStatus/errBody are a worker's deterministic rejection (4xx),
	// which fails the whole request — matching single-node suite
	// semantics, where the first failing cell fails the response.
	errStatus int
	errBody   []byte
}

// runCells routes every cell of a plan with bounded parallelism,
// reporting per-cell completion through report (may be nil). Outcomes
// are positional: outcome i belongs to plan.cells[i].
func (rt *Router) runCells(ctx context.Context, plan *jobPlan, report func(cellOutcome)) []cellOutcome {
	out := make([]cellOutcome, len(plan.cells))
	var wg sync.WaitGroup
	for i := range plan.cells {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rt.sem <- struct{}{}
			defer func() { <-rt.sem }()
			c := plan.cells[i]
			res := rt.route(ctx, c.key, "/v1/cell", c.body)
			rt.cellsRouted.Add(1)
			var oc cellOutcome
			switch {
			case res.naReason != "":
				oc = cellOutcome{body: degradedBody(c, res.naReason), degraded: true}
				rt.cellsDegraded.Add(1)
			case res.status == http.StatusOK:
				oc = cellOutcome{body: res.body, fromCache: res.fromCache}
				if res.fromCache {
					rt.cellsFromNear.Add(1)
				}
			default:
				oc = cellOutcome{errStatus: res.status, errBody: res.body}
			}
			out[i] = oc
			if report != nil {
				report(oc)
			}
		}(i)
	}
	wg.Wait()
	return out
}

// firstError scans outcomes in canonical cell order for a deterministic
// rejection.
func firstError(outcomes []cellOutcome) (int, []byte, bool) {
	for _, oc := range outcomes {
		if oc.errStatus != 0 {
			return oc.errStatus, oc.errBody, true
		}
	}
	return 0, nil, false
}

// Handler returns the router's HTTP handler: the full v1 surface.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/schedule", func(w http.ResponseWriter, r *http.Request) {
		rt.proxySchedule(w, r, "/v1/schedule")
	})
	mux.HandleFunc("POST /v1/simulate", func(w http.ResponseWriter, r *http.Request) {
		rt.proxySchedule(w, r, "/v1/simulate")
	})
	mux.HandleFunc("POST /v1/cell", rt.handleCell)
	mux.HandleFunc("POST /v1/suite", rt.handleSuite)
	mux.HandleFunc("POST /v1/jobs", rt.handleSubmitJob)
	mux.HandleFunc("GET /v1/jobs", rt.handleListJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", rt.handleJobStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/events", rt.handleJobEvents)
	mux.HandleFunc("GET /v1/jobs/{id}/artifacts", rt.handleJobArtifacts)
	mux.HandleFunc("GET /v1/benchmarks", func(w http.ResponseWriter, r *http.Request) {
		rt.proxyAny(w, r, "/v1/benchmarks")
	})
	mux.HandleFunc("GET /v1/archspace", func(w http.ResponseWriter, r *http.Request) {
		rt.proxyAny(w, r, "/v1/archspace")
	})
	mux.HandleFunc("GET /healthz", rt.handleHealthz)
	mux.HandleFunc("GET /metrics", rt.handleMetrics)
	return mux
}

// proxySchedule forwards a single-loop compute request to the worker
// owning its content address — the request-level analogue of cell
// routing, so repeated loops hit the same worker's cache.
func (rt *Router) proxySchedule(w http.ResponseWriter, r *http.Request, path string) {
	body, req, ok := decodeBody[apiv1.ScheduleRequest](w, r)
	if !ok {
		return
	}
	res, eresp := apiv1.ResolveSchedule(path, rt.base, req)
	if eresp != nil {
		writeTypedError(w, eresp)
		return
	}
	rt.proxyKey(w, r, res.Key, path, body)
}

// handleCell forwards one cell to its owning worker.
func (rt *Router) handleCell(w http.ResponseWriter, r *http.Request) {
	body, req, ok := decodeBody[apiv1.CellRequest](w, r)
	if !ok {
		return
	}
	res, eresp := apiv1.ResolveCell(rt.base, req)
	if eresp != nil {
		writeTypedError(w, eresp)
		return
	}
	rt.proxyKey(w, r, res.Key, "/v1/cell", body)
}

func (rt *Router) proxyKey(w http.ResponseWriter, r *http.Request, key, path string, body []byte) {
	res := rt.route(r.Context(), key, path, body)
	if res.naReason != "" {
		writeTypedError(w, &apiv1.ErrorResponse{Code: apiv1.CodeNoWorkers, Message: res.naReason})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(res.status)
	w.Write(res.body)
}

// handleSuite serves the synchronous suite on the router: decompose,
// fan out, assemble. The response bytes equal the single-node
// /v1/suite response when every cell computes; lost-worker cells
// degrade to n/a instead of failing the request.
func (rt *Router) handleSuite(w http.ResponseWriter, r *http.Request) {
	_, req, ok := decodeBody[apiv1.SuiteRequest](w, r)
	if !ok {
		return
	}
	if req.MaxIterations < 0 {
		writeTypedError(w, badPlan("iteration caps must be >= 0"))
		return
	}
	if _, err := req.SchedulerLabel(); err != nil {
		writeTypedError(w, apiv1.SchedulerErrorResponse(err))
		return
	}
	plan, eresp := rt.decomposeSuite(req)
	if eresp != nil {
		writeTypedError(w, eresp)
		return
	}
	outcomes := rt.runCells(r.Context(), plan, nil)
	if status, body, failed := firstError(outcomes); failed {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		w.Write(body)
		return
	}
	bodies := make([][]byte, len(outcomes))
	for i, oc := range outcomes {
		bodies[i] = oc.body
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(assemble(plan, bodies))
}

// handleSubmitJob accepts POST /v1/jobs: validate + decompose
// synchronously, then run asynchronously. 202 with the queued status.
func (rt *Router) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	if rt.draining.Load() {
		writeTypedError(w, &apiv1.ErrorResponse{Code: apiv1.CodeDraining, Message: "router is draining"})
		return
	}
	_, req, ok := decodeBody[apiv1.JobRequest](w, r)
	if !ok {
		return
	}
	if (req.Suite == nil) == (req.Sweep == nil) {
		writeTypedError(w, badPlan("exactly one of suite or sweep must be set"))
		return
	}
	var plan *jobPlan
	var eresp *apiv1.ErrorResponse
	if req.Suite != nil {
		if req.Suite.MaxIterations < 0 {
			writeTypedError(w, badPlan("iteration caps must be >= 0"))
			return
		}
		if _, err := req.Suite.SchedulerLabel(); err != nil {
			writeTypedError(w, apiv1.SchedulerErrorResponse(err))
			return
		}
		plan, eresp = rt.decomposeSuite(req.Suite)
	} else {
		if req.Sweep.MaxIterations < 0 {
			writeTypedError(w, badPlan("iteration caps must be >= 0"))
			return
		}
		if _, err := req.Sweep.SchedulerLabel(); err != nil {
			writeTypedError(w, apiv1.SchedulerErrorResponse(err))
			return
		}
		plan, eresp = rt.decomposeSweep(req.Sweep)
	}
	if eresp != nil {
		writeTypedError(w, eresp)
		return
	}
	j := rt.jobs.create(plan.kind, len(plan.cells))
	rt.jobWG.Add(1)
	go func() {
		defer rt.jobWG.Done()
		rt.runJob(j, plan)
	}()
	writeStatusJSON(w, http.StatusAccepted, j.snapshot())
}

// runJob drives one job to a terminal state.
func (rt *Router) runJob(j *job, plan *jobPlan) {
	j.update(func(s *apiv1.JobStatus) { s.State = apiv1.JobRunning })
	outcomes := rt.runCells(context.Background(), plan, func(oc cellOutcome) {
		j.update(func(s *apiv1.JobStatus) {
			s.CellsDone++
			if oc.fromCache {
				s.CellsFromCache++
			}
			if oc.degraded {
				s.CellsDegraded++
			}
		})
	})
	if _, body, failed := firstError(outcomes); failed {
		var er apiv1.ErrorResponse
		reason := string(body)
		if err := json.Unmarshal(body, &er); err == nil && er.Code != "" {
			reason = er.Code + ": " + er.Message
		}
		j.fail(reason)
		return
	}
	bodies := make([][]byte, len(outcomes))
	for i, oc := range outcomes {
		bodies[i] = oc.body
	}
	j.finish(assemble(plan, bodies))
}

func (rt *Router) handleListJobs(w http.ResponseWriter, r *http.Request) {
	writeStatusJSON(w, http.StatusOK, apiv1.JobListResponse{Jobs: rt.jobs.list()})
}

func (rt *Router) jobFor(w http.ResponseWriter, r *http.Request) *job {
	id := r.PathValue("id")
	j := rt.jobs.get(id)
	if j == nil {
		writeTypedError(w, &apiv1.ErrorResponse{Code: apiv1.CodeUnknownJob, Message: "unknown job " + id})
		return nil
	}
	return j
}

func (rt *Router) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	if j := rt.jobFor(w, r); j != nil {
		writeStatusJSON(w, http.StatusOK, j.snapshot())
	}
}

func (rt *Router) handleJobArtifacts(w http.ResponseWriter, r *http.Request) {
	j := rt.jobFor(w, r)
	if j == nil {
		return
	}
	body, eresp := j.artifactBytes()
	if eresp != nil {
		writeTypedError(w, eresp)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

// handleJobEvents streams job progress as Server-Sent Events: one
// "progress" event per status change, each with the full JobStatus as
// data (MarshalStatus bytes — identical to the poll body). The stream
// ends after the terminal event, on client disconnect, or on router
// shutdown.
func (rt *Router) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	j := rt.jobFor(w, r)
	if j == nil {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeTypedError(w, &apiv1.ErrorResponse{Code: apiv1.CodeInternal, Message: "streaming unsupported"})
		return
	}
	ch, snap, cancel := j.subscribe()
	defer cancel()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	emit := func(s apiv1.JobStatus) bool {
		fmt.Fprintf(w, "event: progress\ndata: %s\n\n", apiv1.MarshalStatus(s))
		fl.Flush()
		return s.Terminal()
	}
	if emit(snap) {
		return
	}
	for {
		select {
		case s := <-ch:
			if emit(s) {
				return
			}
		case <-r.Context().Done():
			return
		case <-rt.closing:
			return
		}
	}
}

// proxyAny forwards a GET to any live worker (sorted order, failing
// over): these routes are node-independent catalog listings.
func (rt *Router) proxyAny(w http.ResponseWriter, r *http.Request, path string) {
	rt.mu.Lock()
	nodes := rt.ring.Nodes()
	rt.mu.Unlock()
	for _, u := range nodes {
		req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, u+path, nil)
		if err != nil {
			continue
		}
		resp, err := rt.client.Do(req)
		if err != nil {
			rt.markDown(u, err.Error())
			continue
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode >= 500 {
			rt.markDown(u, "bad catalog response")
			continue
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(resp.StatusCode)
		w.Write(data)
		return
	}
	writeTypedError(w, &apiv1.ErrorResponse{Code: apiv1.CodeNoWorkers, Message: "no live workers"})
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if rt.draining.Load() {
		status = "draining"
	}
	writeStatusJSON(w, http.StatusOK, apiv1.HealthResponse{
		Status:       status,
		Draining:     rt.draining.Load(),
		UptimeMillis: time.Since(rt.started).Milliseconds(),
		Role:         "router",
		Peers:        rt.peers.Snapshot(),
	})
}

// handleMetrics renders router counters in the same line-oriented text
// format as the worker /metrics.
func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	rt.mu.Lock()
	live := len(rt.ring.nodes)
	downs := make([]string, 0, len(rt.down))
	for u := range rt.down {
		downs = append(downs, u)
	}
	rt.mu.Unlock()
	sort.Strings(downs)
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "router_workers_configured %d\n", len(rt.workers))
	fmt.Fprintf(w, "router_workers_live %d\n", live)
	fmt.Fprintf(w, "router_cells_routed %d\n", rt.cellsRouted.Load())
	fmt.Fprintf(w, "router_cells_from_cache %d\n", rt.cellsFromNear.Load())
	fmt.Fprintf(w, "router_cells_degraded %d\n", rt.cellsDegraded.Load())
	fmt.Fprintf(w, "router_jobs %d\n", len(rt.jobs.list()))
	for _, u := range downs {
		fmt.Fprintf(w, "router_worker_down %s\n", u)
	}
}

// Serve accepts connections on l until Shutdown, with the background
// health poller running alongside.
func (rt *Router) Serve(l net.Listener) error {
	rt.httpMu.Lock()
	if rt.httpSrv == nil {
		rt.httpSrv = &http.Server{Handler: rt.Handler()}
		ctx, cancel := context.WithCancel(context.Background())
		rt.stopBG = cancel
		go func() {
			interval := rt.pollEvery
			if interval <= 0 {
				interval = DefaultPollInterval
			}
			t := time.NewTicker(interval)
			defer t.Stop()
			for {
				rt.PollPeers(ctx)
				select {
				case <-ctx.Done():
					return
				case <-t.C:
				}
			}
		}()
	}
	srv := rt.httpSrv
	rt.httpMu.Unlock()
	return srv.Serve(l)
}

// ListenAndServe listens on addr and serves until Shutdown.
func (rt *Router) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return rt.Serve(l)
}

// Shutdown drains the router: new jobs are refused, SSE streams close,
// running jobs get up to the drain timeout to finish, then the HTTP
// server shuts down gracefully.
func (rt *Router) Shutdown(ctx context.Context) error {
	rt.draining.Store(true)
	close(rt.closing)
	if rt.drainTO > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, rt.drainTO)
		defer cancel()
	}
	done := make(chan struct{})
	go func() {
		rt.jobWG.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
	}
	rt.httpMu.Lock()
	srv := rt.httpSrv
	stop := rt.stopBG
	rt.httpMu.Unlock()
	if stop != nil {
		stop()
	}
	if srv == nil {
		return nil
	}
	return srv.Shutdown(ctx)
}

// Draining reports whether Shutdown has begun.
func (rt *Router) Draining() bool { return rt.draining.Load() }

// decodeBody reads and decodes a JSON request body, returning the raw
// bytes too (proxy routes forward them verbatim).
func decodeBody[T any](w http.ResponseWriter, r *http.Request) ([]byte, *T, bool) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 4<<20))
	if err != nil {
		writeTypedError(w, badPlan("reading body: %v", err))
		return nil, nil, false
	}
	v := new(T)
	if err := json.Unmarshal(body, v); err != nil {
		writeTypedError(w, badPlan("decoding request: %v", err))
		return nil, nil, false
	}
	return body, v, true
}

// writeTypedError writes a v1 error at its canonical status.
func writeTypedError(w http.ResponseWriter, eresp *apiv1.ErrorResponse) {
	writeStatusJSON(w, apiv1.StatusOf(eresp.Code), *eresp)
}

func writeStatusJSON(w http.ResponseWriter, status int, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
}
