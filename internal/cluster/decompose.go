package cluster

import (
	"encoding/json"
	"fmt"
	"strings"

	"vliwcache/internal/apiv1"
	"vliwcache/internal/mediabench"
)

// cell is one routed unit of work: a benchmark × variant (× sweep
// point) with its wire body and content address. The address doubles as
// the ring shard key, so identical cells always land on the worker
// whose cache owns them.
type cell struct {
	// key is the cell's content address (apiv1.ResolveCell.Key).
	key string
	// body is the CellRequest JSON posted to the owning worker.
	body []byte
	// point is the sweep point's canonical ArchKey ("" for suite cells).
	point string
	// bench/policy/heuristic/schedLabel are the response spellings,
	// kept so a degraded cell can be rendered without a worker.
	bench      string
	policy     string
	heuristic  string
	schedLabel string
}

// jobPlan is a decomposed suite or sweep: cells in canonical artifact
// order.
type jobPlan struct {
	kind  string // "suite" or "sweep"
	cells []cell
}

func badPlan(format string, args ...any) *apiv1.ErrorResponse {
	return &apiv1.ErrorResponse{Code: apiv1.CodeBadRequest, Message: fmt.Sprintf(format, args...)}
}

// decomposeSuite validates a SuiteRequest exactly like the single-node
// handler and splits it into per-cell requests. Validation happens here,
// synchronously at submission — a job that enters the queue can only
// fail on compute errors, never on malformed input.
func (rt *Router) decomposeSuite(req *apiv1.SuiteRequest) (*jobPlan, *apiv1.ErrorResponse) {
	if len(req.Variants) == 0 {
		return nil, badPlan("missing variants")
	}
	for i, v := range req.Variants {
		if _, err := apiv1.ParsePolicy(v.Policy); err != nil {
			return nil, badPlan("variant %d: %v", i, err)
		}
		if _, err := apiv1.ParseHeuristic(v.Heuristic); err != nil {
			return nil, badPlan("variant %d: %v", i, err)
		}
	}
	benches := req.Benches
	if len(benches) == 0 {
		for _, b := range mediabench.Figures() {
			benches = append(benches, b.Name)
		}
	}
	plan := &jobPlan{kind: "suite"}
	for _, bench := range benches {
		for _, v := range req.Variants {
			c, eresp := rt.makeCell(bench, v, req.Options, "")
			if eresp != nil {
				return nil, eresp
			}
			plan.cells = append(plan.cells, c)
		}
	}
	return plan, nil
}

// decomposeSweep splits a design-space sweep into point × bench ×
// variant cells. Each point is an arch overlay; the shared option
// block must not carry its own.
func (rt *Router) decomposeSweep(req *apiv1.SweepRequest) (*jobPlan, *apiv1.ErrorResponse) {
	if len(req.Points) == 0 {
		return nil, badPlan("missing points")
	}
	if req.Options.Arch != nil {
		return nil, badPlan("sweep options must not set arch; points carry the overlays")
	}
	if len(req.Variants) == 0 {
		return nil, badPlan("missing variants")
	}
	benches := req.Benches
	if len(benches) == 0 {
		for _, b := range mediabench.Figures() {
			benches = append(benches, b.Name)
		}
	}
	plan := &jobPlan{kind: "sweep"}
	for i := range req.Points {
		point := req.Points[i]
		resolved, err := point.Apply(rt.base)
		if err != nil {
			return nil, &apiv1.ErrorResponse{Code: apiv1.CodeInvalidArch, Message: fmt.Sprintf("point %d: %v", i, err)}
		}
		pointKey := apiv1.ArchKey(resolved)
		opts := req.Options
		opts.Arch = &point
		for _, bench := range benches {
			for _, v := range req.Variants {
				c, eresp := rt.makeCell(bench, v, opts, pointKey)
				if eresp != nil {
					return nil, eresp
				}
				plan.cells = append(plan.cells, c)
			}
		}
	}
	return plan, nil
}

// makeCell builds one cell: the wire request, its content address, and
// the spellings a degraded rendering needs.
func (rt *Router) makeCell(bench string, v apiv1.Variant, opts apiv1.Options, point string) (cell, *apiv1.ErrorResponse) {
	cr := apiv1.CellRequest{Bench: bench, Policy: v.Policy, Heuristic: v.Heuristic, Options: opts}
	res, eresp := apiv1.ResolveCell(rt.base, &cr)
	if eresp != nil {
		return cell{}, eresp
	}
	body, err := json.Marshal(cr)
	if err != nil {
		return cell{}, &apiv1.ErrorResponse{Code: apiv1.CodeInternal, Message: err.Error()}
	}
	return cell{
		key:        res.Key,
		body:       body,
		point:      point,
		bench:      bench,
		policy:     strings.ToLower(res.Variant.Policy.String()),
		heuristic:  strings.ToLower(res.Variant.Heuristic.String()),
		schedLabel: res.SchedulerLabel,
	}, nil
}

// degradedBody renders the cell no worker could compute: the suite
// tables' "n/a(reason)" idiom carried on the NA field, zero stats,
// empty loops. Single-node responses never contain NA, so its presence
// unambiguously marks router degradation.
func degradedBody(c cell, reason string) []byte {
	sc := apiv1.SuiteCell{
		Bench:     c.bench,
		Policy:    c.policy,
		Heuristic: c.heuristic,
		Loops:     []apiv1.LoopRun{},
		Scheduler: c.schedLabel,
		NA:        "n/a(" + reason + ")",
	}
	b, err := json.Marshal(sc)
	if err != nil {
		// SuiteCell contains only marshal-safe field types.
		panic(err)
	}
	return b
}

// assemble builds the artifact from per-cell bodies by concatenation.
// encoding/json's deterministic struct encoding makes this exact: an
// array element's bytes equal the standalone value's bytes, so the
// assembled artifact is byte-identical to the synchronous single-node
// response for the same request.
func assemble(plan *jobPlan, bodies [][]byte) []byte {
	var sb strings.Builder
	sb.WriteString(`{"cells":[`)
	for i, b := range bodies {
		if i > 0 {
			sb.WriteByte(',')
		}
		if plan.kind == "sweep" {
			// {"point":"<key>", + the cell body minus its opening brace.
			sb.WriteString(`{"point":`)
			pk, err := json.Marshal(plan.cells[i].point)
			if err != nil {
				panic(err)
			}
			sb.Write(pk)
			sb.WriteByte(',')
			sb.Write(b[1:])
		} else {
			sb.Write(b)
		}
	}
	sb.WriteString(`]}`)
	return []byte(sb.String())
}
