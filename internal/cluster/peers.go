package cluster

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"vliwcache/internal/apiv1"
)

// DefaultPollInterval is how often a PeerSet re-polls its peers.
const DefaultPollInterval = 2 * time.Second

// PeerSet polls a fixed set of peer base URLs for /healthz and caches
// the last view. Both roles use it: a worker watches its fellow workers
// (surfaced in its own /healthz so a rolling restart can be observed
// from any node), and the router watches its workers. Snapshot is
// cheap and non-blocking, so health answers never wait on a poll.
type PeerSet struct {
	urls   []string
	client *http.Client

	mu   sync.Mutex
	view map[string]apiv1.PeerStatus
}

// NewPeerSet builds a poller over peer base URLs ("http://host:port").
// A nil client uses a dedicated one with a short timeout.
func NewPeerSet(urls []string, client *http.Client) *PeerSet {
	if client == nil {
		client = &http.Client{Timeout: 2 * time.Second}
	}
	p := &PeerSet{urls: append([]string(nil), urls...), client: client, view: make(map[string]apiv1.PeerStatus)}
	for _, u := range p.urls {
		// Until the first poll completes a peer is unknown, reported as
		// unreachable rather than invented as serving.
		p.view[u] = apiv1.PeerStatus{URL: u, Status: apiv1.PeerUnreachable, Error: "not yet polled"}
	}
	return p
}

// Poll refreshes every peer's status once, concurrently.
func (p *PeerSet) Poll(ctx context.Context) {
	var wg sync.WaitGroup
	for _, u := range p.urls {
		wg.Add(1)
		go func(u string) {
			defer wg.Done()
			st := p.pollOne(ctx, u)
			p.mu.Lock()
			p.view[u] = st
			p.mu.Unlock()
		}(u)
	}
	wg.Wait()
}

func (p *PeerSet) pollOne(ctx context.Context, u string) apiv1.PeerStatus {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u+"/healthz", nil)
	if err != nil {
		return apiv1.PeerStatus{URL: u, Status: apiv1.PeerUnreachable, Error: err.Error()}
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return apiv1.PeerStatus{URL: u, Status: apiv1.PeerUnreachable, Error: err.Error()}
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return apiv1.PeerStatus{URL: u, Status: apiv1.PeerUnreachable, Error: err.Error()}
	}
	var h apiv1.HealthResponse
	if err := json.Unmarshal(body, &h); err != nil {
		return apiv1.PeerStatus{URL: u, Status: apiv1.PeerUnreachable, Error: "bad health body: " + err.Error()}
	}
	if h.Draining {
		return apiv1.PeerStatus{URL: u, Status: apiv1.PeerDraining}
	}
	return apiv1.PeerStatus{URL: u, Status: apiv1.PeerServing}
}

// Run polls until ctx is done (interval <= 0 means
// DefaultPollInterval). The first poll happens immediately.
func (p *PeerSet) Run(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = DefaultPollInterval
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		p.Poll(ctx)
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
	}
}

// Snapshot returns the last-polled view in URL order.
func (p *PeerSet) Snapshot() []apiv1.PeerStatus {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]apiv1.PeerStatus, 0, len(p.view))
	for _, st := range p.view {
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].URL < out[j].URL })
	return out
}
