// Package cluster is the multi-node serving tier: a router that shards
// compute requests across paperserved workers by content address, plus
// the async job API that fans suites and design-space sweeps out as
// independent cells.
//
// The sharding insight is that the serving layer is already content
// addressed: every request resolves to a canonical SHA-256 cache key
// (internal/resultcache, derived in apiv1.ResolveCell /
// ResolveSchedule), and determinism makes the cached bytes exact. The
// router hashes that same address onto a consistent-hash ring, so an
// identical cell always lands on the worker whose cache owns it — the
// distributed tier's aggregate cache is the union of per-worker caches
// with no invalidation protocol, because entries are immutable facts.
//
// Topology (DESIGN.md §16):
//
//	client ──▶ router ──▶ ring.Owner(cellKey) ──▶ worker /v1/cell
//	              │                                  (paperserved core)
//	              └─ /v1/jobs: decompose → fan out → assemble artifact
//
// Losing a worker moves only ~1/N of the address space (virtual nodes
// bound the movement); cells that no live worker can compute degrade to
// "n/a(reason)" in the artifact instead of failing the job, mirroring
// the suite tables' long-standing degraded-cell idiom.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
)

// DefaultVirtualNodes is the ring's default virtual-node count per
// worker. 128 points per node keeps the expected per-node share within
// a few percent of 1/N for small clusters while the ring stays tiny
// (N×128 16-byte points).
const DefaultVirtualNodes = 128

// Ring is a consistent-hash ring over worker names (base URLs). The
// hash is SHA-256-derived, so placement is identical across processes
// and platforms — router restarts and test assertions see the same
// ownership map. The zero value is unusable; call NewRing.
//
// Ring is not safe for concurrent mutation; the Router serializes
// membership changes under its own lock.
type Ring struct {
	replicas int
	points   []ringPoint // sorted by position
	nodes    map[string]bool
}

type ringPoint struct {
	pos  uint64
	node string
}

// NewRing builds a ring with the given virtual-node count per node
// (non-positive means DefaultVirtualNodes).
func NewRing(replicas int, nodes ...string) *Ring {
	if replicas <= 0 {
		replicas = DefaultVirtualNodes
	}
	r := &Ring{replicas: replicas, nodes: make(map[string]bool)}
	for _, n := range nodes {
		r.Add(n)
	}
	return r
}

// ringHash maps a string onto a ring position: the first 8 bytes of its
// SHA-256, big-endian. resultcache keys are themselves hex SHA-256
// digests, so cell positions inherit their uniformity; node positions
// ("url#i") get the same treatment.
func ringHash(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// Add inserts a node (no-op if present).
func (r *Ring) Add(node string) {
	if r.nodes[node] {
		return
	}
	r.nodes[node] = true
	for i := 0; i < r.replicas; i++ {
		r.points = append(r.points, ringPoint{ringHash(node + "#" + strconv.Itoa(i)), node})
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].pos != r.points[j].pos {
			return r.points[i].pos < r.points[j].pos
		}
		// Position collisions resolve by name so placement never depends
		// on insertion order.
		return r.points[i].node < r.points[j].node
	})
}

// Remove deletes a node (no-op if absent). Only keys the node owned
// move: they fall to each vanished point's clockwise successor.
func (r *Ring) Remove(node string) {
	if !r.nodes[node] {
		return
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Len returns the node count.
func (r *Ring) Len() int { return len(r.nodes) }

// Nodes lists the members in sorted order.
func (r *Ring) Nodes() []string {
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Owner returns the node owning key: the first ring point at or
// clockwise after the key's position. Empty string on an empty ring.
func (r *Ring) Owner(key string) string {
	owners := r.Owners(key, 1)
	if len(owners) == 0 {
		return ""
	}
	return owners[0]
}

// Owners returns up to n distinct nodes in ring order starting at the
// key's owner — the failover sequence: if the owner is down, the next
// entry is exactly the node the key would belong to after removing the
// owner from the ring.
func (r *Ring) Owners(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	pos := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].pos >= pos })
	seen := make(map[string]bool, n)
	out := make([]string, 0, n)
	for range r.points {
		if i == len(r.points) {
			i = 0
		}
		if node := r.points[i].node; !seen[node] {
			seen[node] = true
			out = append(out, node)
			if len(out) == n {
				break
			}
		}
		i++
	}
	return out
}
