package cluster

import (
	"fmt"
	"testing"
)

// TestRingDeterminism: placement is a pure function of (nodes, key) —
// no process-local state — so a restarted router reconstructs the
// identical ownership map.
func TestRingDeterminism(t *testing.T) {
	r1 := NewRing(0, "http://a", "http://b", "http://c")
	// Same members, different insertion order.
	r2 := NewRing(0, "http://c", "http://a", "http://b")
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("key-%d", i)
		if r1.Owner(key) != r2.Owner(key) {
			t.Fatalf("insertion order changed placement of %q: %s vs %s", key, r1.Owner(key), r2.Owner(key))
		}
	}
	// A third independent build agrees too (what a second process sees).
	r3 := NewRing(0, "http://a", "http://b", "http://c")
	if r1.Owner("probe") != r3.Owner("probe") {
		t.Error("rebuilt ring disagrees on placement")
	}
}

// TestRingBalance: with DefaultVirtualNodes, every node's share of a
// uniform key population stays near 1/N.
func TestRingBalance(t *testing.T) {
	nodes := []string{"http://a", "http://b", "http://c"}
	r := NewRing(0, nodes...)
	counts := make(map[string]int)
	const keys = 9000
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("key-%d", i))]++
	}
	for _, n := range nodes {
		share := float64(counts[n]) / keys
		// Ideal is 1/3; 128 virtual nodes keeps the spread well within
		// [0.2, 0.5] in practice.
		if share < 0.20 || share > 0.50 {
			t.Errorf("node %s owns %.1f%% of keys; want ~33%%", n, share*100)
		}
	}
}

// TestRingBoundedMovement: removing one of N nodes moves only the keys
// it owned — roughly 1/N of the space — and every surviving key keeps
// its owner.
func TestRingBoundedMovement(t *testing.T) {
	nodes := []string{"http://a", "http://b", "http://c", "http://d"}
	r := NewRing(0, nodes...)
	const keys = 4000
	before := make(map[string]string, keys)
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("key-%d", i)
		before[k] = r.Owner(k)
	}
	const victim = "http://b"
	r.Remove(victim)
	moved := 0
	for k, owner := range before {
		now := r.Owner(k)
		if owner == victim {
			if now == victim {
				t.Fatalf("key %q still owned by removed node", k)
			}
			moved++
		} else if now != owner {
			t.Fatalf("key %q moved from surviving node %s to %s", k, owner, now)
		}
	}
	share := float64(moved) / keys
	// The victim owned ~1/4 of the space; allow generous jitter but
	// catch a rehash-everything bug (share would be ~3/4).
	if share > 0.40 {
		t.Errorf("removal moved %.1f%% of keys; want ~25%%", share*100)
	}
}

// TestRingOwnersFailover: Owners(key, 2)[1] is exactly the owner after
// removing Owners(key, 2)[0] — the failover target equals the
// post-membership-change owner, so a retried cell lands where the
// shrunk ring would put it anyway.
func TestRingOwnersFailover(t *testing.T) {
	nodes := []string{"http://a", "http://b", "http://c"}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%d", i)
		r := NewRing(0, nodes...)
		owners := r.Owners(key, 2)
		if len(owners) != 2 || owners[0] == owners[1] {
			t.Fatalf("Owners(%q, 2) = %v", key, owners)
		}
		r.Remove(owners[0])
		if got := r.Owner(key); got != owners[1] {
			t.Fatalf("after removing %s, owner of %q = %s, want failover target %s",
				owners[0], key, got, owners[1])
		}
	}
}

func TestRingEdgeCases(t *testing.T) {
	r := NewRing(0)
	if got := r.Owner("k"); got != "" {
		t.Errorf("empty ring owner = %q", got)
	}
	if owners := r.Owners("k", 3); owners != nil {
		t.Errorf("empty ring owners = %v", owners)
	}
	r.Add("http://a")
	r.Add("http://a") // duplicate add is a no-op
	if r.Len() != 1 {
		t.Errorf("len = %d after duplicate add", r.Len())
	}
	if got := r.Owner("k"); got != "http://a" {
		t.Errorf("single-node ring owner = %q", got)
	}
	if owners := r.Owners("k", 5); len(owners) != 1 {
		t.Errorf("owners capped at node count; got %v", owners)
	}
	r.Remove("http://nope") // absent remove is a no-op
	r.Remove("http://a")
	if r.Len() != 0 || r.Owner("k") != "" {
		t.Error("ring not empty after removing sole node")
	}
}
