package cluster

import (
	"strconv"
	"sync"

	"vliwcache/internal/apiv1"
)

// jobStore is the router's in-memory job registry. Jobs are router
// state, not worker state: a worker only ever sees stateless cell
// requests, so the store needs no replication — losing the router
// loses job handles but no results (cells persist in worker caches,
// and a resubmitted job re-collects them as hits).
type jobStore struct {
	mu    sync.Mutex
	seq   int
	jobs  map[string]*job
	order []string
}

func newJobStore() *jobStore {
	return &jobStore{jobs: make(map[string]*job)}
}

// job is one async suite or sweep run.
type job struct {
	mu       sync.Mutex
	status   apiv1.JobStatus
	artifact []byte
	subs     map[chan apiv1.JobStatus]bool
	// done closes when the job reaches a terminal state.
	done chan struct{}
}

// create registers a queued job. IDs are sequential ("job-1", ...):
// deterministic, unguessable ids are not a goal for a trusted-network
// research service.
func (s *jobStore) create(kind string, total int) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	id := "job-" + strconv.Itoa(s.seq)
	j := &job{
		status: apiv1.JobStatus{ID: id, Kind: kind, State: apiv1.JobQueued, CellsTotal: total},
		subs:   make(map[chan apiv1.JobStatus]bool),
		done:   make(chan struct{}),
	}
	s.jobs[id] = j
	s.order = append(s.order, id)
	return j
}

func (s *jobStore) get(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// list snapshots every job's status in submission order.
func (s *jobStore) list() []apiv1.JobStatus {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	jobs := make([]*job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	out := make([]apiv1.JobStatus, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.snapshot())
	}
	return out
}

func (j *job) snapshot() apiv1.JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// update applies mutate to the status and fans the new snapshot out to
// subscribers. Subscriber channels are buffered; a slow subscriber
// drops intermediate snapshots (each event is a full status, so the
// latest one supersedes everything missed) but never blocks the job.
func (j *job) update(mutate func(*apiv1.JobStatus)) {
	j.mu.Lock()
	mutate(&j.status)
	snap := j.status
	terminal := j.status.Terminal()
	for ch := range j.subs {
		select {
		case ch <- snap:
		default:
			// Drop the oldest buffered snapshot to make room for the
			// newest; the subscriber always converges on current state.
			select {
			case <-ch:
			default:
			}
			select {
			case ch <- snap:
			default:
			}
		}
	}
	j.mu.Unlock()
	if terminal {
		close(j.done)
	}
}

// finish marks the job done and stores its artifact.
func (j *job) finish(artifact []byte) {
	j.mu.Lock()
	j.artifact = artifact
	j.mu.Unlock()
	j.update(func(s *apiv1.JobStatus) { s.State = apiv1.JobDone })
}

// fail marks the job failed with a reason.
func (j *job) fail(reason string) {
	j.update(func(s *apiv1.JobStatus) {
		s.State = apiv1.JobFailed
		s.Error = reason
	})
}

// artifactBytes returns the artifact, or a typed error: unfinished and
// failed jobs have none.
func (j *job) artifactBytes() ([]byte, *apiv1.ErrorResponse) {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.status.State {
	case apiv1.JobDone:
		return j.artifact, nil
	case apiv1.JobFailed:
		return nil, &apiv1.ErrorResponse{
			Code:    apiv1.CodeJobNotReady,
			Message: "job " + j.status.ID + " failed: " + j.status.Error,
		}
	default:
		return nil, &apiv1.ErrorResponse{
			Code:    apiv1.CodeJobNotReady,
			Message: "job " + j.status.ID + " is " + j.status.State,
		}
	}
}

// subscribe registers a progress listener, returning the subscription
// channel, the status as of subscription (emit it first — no update can
// be missed between snapshot and registration because both happen under
// the job lock), and a cancel function.
func (j *job) subscribe() (<-chan apiv1.JobStatus, apiv1.JobStatus, func()) {
	ch := make(chan apiv1.JobStatus, 16)
	j.mu.Lock()
	j.subs[ch] = true
	snap := j.status
	j.mu.Unlock()
	cancel := func() {
		j.mu.Lock()
		delete(j.subs, ch)
		j.mu.Unlock()
	}
	return ch, snap, cancel
}
