package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"vliwcache/internal/apiv1"
	"vliwcache/internal/arch"
	"vliwcache/internal/server"
)

// testSuiteReq is the grid the two-worker tests route: small enough to
// stay fast on one core, wide enough to spread across both workers.
func testSuiteReq() apiv1.SuiteRequest {
	return apiv1.SuiteRequest{
		Benches: []string{"rasta", "pgpdec"},
		Variants: []apiv1.Variant{
			{Policy: "mdc", Heuristic: "prefclus"},
			{Policy: "ddgt", Heuristic: "mincoms"},
		},
		Options: apiv1.Options{MaxIterations: 5, FastPath: true},
	}
}

type testCluster struct {
	workers []*server.Server
	wts     []*httptest.Server
	router  *Router
	rts     *httptest.Server
}

func newTestCluster(t *testing.T, n int) *testCluster {
	t.Helper()
	tc := &testCluster{}
	var urls []string
	for i := 0; i < n; i++ {
		srv := server.New(server.WithParallelism(1), server.WithRole("worker"))
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		tc.workers = append(tc.workers, srv)
		tc.wts = append(tc.wts, ts)
		urls = append(urls, ts.URL)
	}
	tc.router = NewRouter(WithWorkers(urls...), WithJobParallelism(2))
	tc.rts = httptest.NewServer(tc.router.Handler())
	t.Cleanup(tc.rts.Close)
	return tc
}

func postJSON(t *testing.T, base, path string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func getJSON(t *testing.T, base, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// runJob submits a job and polls it to a terminal state.
func runJob(t *testing.T, base string, jreq apiv1.JobRequest) apiv1.JobStatus {
	t.Helper()
	body, err := json.Marshal(jreq)
	if err != nil {
		t.Fatal(err)
	}
	resp, data := postJSON(t, base, "/v1/jobs", body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d (%s)", resp.StatusCode, data)
	}
	var st apiv1.JobStatus
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(120 * time.Second)
	for !st.Terminal() {
		if time.Now().After(deadline) {
			t.Fatalf("job %s did not finish: %+v", st.ID, st)
		}
		time.Sleep(50 * time.Millisecond)
		resp, data = getJSON(t, base, "/v1/jobs/"+st.ID)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll status = %d (%s)", resp.StatusCode, data)
		}
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

// TestSuiteJobMatchesSingleNode is the tier's headline invariant: a
// suite job fanned across two workers produces an artifact
// byte-identical to the synchronous single-node /v1/suite response,
// and every cell lands on (and only on) its ring owner's cache.
func TestSuiteJobMatchesSingleNode(t *testing.T) {
	single := server.New(server.WithParallelism(1))
	sts := httptest.NewServer(single.Handler())
	defer sts.Close()

	req := testSuiteReq()
	reqBody, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, want := postJSON(t, sts.URL, "/v1/suite", reqBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("single-node suite status = %d (%s)", resp.StatusCode, want)
	}

	tc := newTestCluster(t, 2)
	st := runJob(t, tc.rts.URL, apiv1.JobRequest{Suite: &req})
	if st.State != apiv1.JobDone || st.CellsTotal != 4 || st.CellsDone != 4 || st.CellsDegraded != 0 {
		t.Fatalf("job status = %+v", st)
	}
	resp, got := getJSON(t, tc.rts.URL, "/v1/jobs/"+st.ID+"/artifacts")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("artifacts status = %d (%s)", resp.StatusCode, got)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("artifact differs from single-node suite:\n  job: %s\nsuite: %s", got, want)
	}

	// Placement: each cell's content address must be cached on exactly
	// the worker the ring names as its owner.
	for _, bench := range req.Benches {
		for _, v := range req.Variants {
			cr := apiv1.CellRequest{Bench: bench, Policy: v.Policy, Heuristic: v.Heuristic, Options: req.Options}
			res, eresp := apiv1.ResolveCell(arch.Default(), &cr)
			if eresp != nil {
				t.Fatalf("resolve: %+v", eresp)
			}
			owner := tc.router.OwnerOf(res.Key)
			for i, ts := range tc.wts {
				has := tc.workers[i].CacheContains(res.Key)
				if ts.URL == owner && !has {
					t.Errorf("cell %s/%s: owner %s does not hold key", bench, v.Policy, owner)
				}
				if ts.URL != owner && has {
					t.Errorf("cell %s/%s: non-owner %s holds key", bench, v.Policy, ts.URL)
				}
			}
		}
	}

	// The same job resubmitted is served from worker caches.
	st2 := runJob(t, tc.rts.URL, apiv1.JobRequest{Suite: &req})
	if st2.State != apiv1.JobDone || st2.CellsFromCache != 4 {
		t.Errorf("resubmitted job not cache-served: %+v", st2)
	}
}

// TestSyncSuiteOnRouter: the router's synchronous /v1/suite matches the
// single-node bytes too (it is the same decompose/assemble path as
// jobs, minus the lifecycle).
func TestSyncSuiteOnRouter(t *testing.T) {
	single := server.New(server.WithParallelism(1))
	sts := httptest.NewServer(single.Handler())
	defer sts.Close()

	req := testSuiteReq()
	req.Benches = []string{"rasta"}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	_, want := postJSON(t, sts.URL, "/v1/suite", body)

	tc := newTestCluster(t, 2)
	resp, got := postJSON(t, tc.rts.URL, "/v1/suite", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("router suite status = %d (%s)", resp.StatusCode, got)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("router suite differs from single node:\nrouter: %s\nsingle: %s", got, want)
	}
}

// TestWorkerLossFailover: killing a worker re-routes its cells to the
// survivor (artifact still byte-identical); killing every worker
// degrades cells to n/a instead of failing the job.
func TestWorkerLossFailover(t *testing.T) {
	single := server.New(server.WithParallelism(1))
	sts := httptest.NewServer(single.Handler())
	defer sts.Close()

	req := testSuiteReq()
	reqBody, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	_, want := postJSON(t, sts.URL, "/v1/suite", reqBody)

	tc := newTestCluster(t, 2)
	st := runJob(t, tc.rts.URL, apiv1.JobRequest{Suite: &req})
	if st.State != apiv1.JobDone {
		t.Fatalf("warm job: %+v", st)
	}

	// Kill worker 0: its cells fail over to worker 1 and recompute
	// there; the artifact must not change.
	tc.wts[0].Close()
	st = runJob(t, tc.rts.URL, apiv1.JobRequest{Suite: &req})
	if st.State != apiv1.JobDone || st.CellsDegraded != 0 {
		t.Fatalf("failover job: %+v", st)
	}
	if len(tc.router.LiveWorkers()) != 1 {
		t.Errorf("live workers = %v, want just the survivor", tc.router.LiveWorkers())
	}
	resp, got := getJSON(t, tc.rts.URL, "/v1/jobs/"+st.ID+"/artifacts")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("artifacts status = %d", resp.StatusCode)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("failover artifact differs from single-node suite:\n  job: %s\nsuite: %s", got, want)
	}

	// Kill the survivor: the job still completes, every cell degraded.
	tc.wts[1].Close()
	st = runJob(t, tc.rts.URL, apiv1.JobRequest{Suite: &req})
	if st.State != apiv1.JobDone || st.CellsDegraded != st.CellsTotal {
		t.Fatalf("degraded job: %+v", st)
	}
	_, got = getJSON(t, tc.rts.URL, "/v1/jobs/"+st.ID+"/artifacts")
	var sr apiv1.SuiteResponse
	if err := json.Unmarshal(got, &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Cells) != 4 {
		t.Fatalf("degraded cells = %d", len(sr.Cells))
	}
	for _, c := range sr.Cells {
		if !strings.HasPrefix(c.NA, "n/a(") || len(c.Loops) != 0 {
			t.Errorf("degraded cell = %+v", c)
		}
	}

	// Sync routes now have no backend: typed 503.
	resp, data := postJSON(t, tc.rts.URL, "/v1/cell", []byte(`{"bench":"rasta","policy":"mdc"}`))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("cell with no workers = %d (%s)", resp.StatusCode, data)
	}
	var er apiv1.ErrorResponse
	if err := json.Unmarshal(data, &er); err != nil || er.Code != apiv1.CodeNoWorkers {
		t.Errorf("error = %s", data)
	}
}

// TestSweepJob: a two-point sweep artifact wraps each cell with its
// point key; the inner cell bytes equal a direct worker cell response
// with the point's arch overlay.
func TestSweepJob(t *testing.T) {
	tc := newTestCluster(t, 2)
	two := 16 * 1024
	points := []apiv1.Arch{{}, {CacheBytes: &two}}
	sweep := apiv1.SweepRequest{
		Points:   points,
		Benches:  []string{"rasta"},
		Variants: []apiv1.Variant{{Policy: "mdc", Heuristic: "prefclus"}},
		Options:  apiv1.Options{MaxIterations: 5, FastPath: true},
	}
	st := runJob(t, tc.rts.URL, apiv1.JobRequest{Sweep: &sweep})
	if st.State != apiv1.JobDone || st.Kind != "sweep" || st.CellsTotal != 2 {
		t.Fatalf("sweep job: %+v", st)
	}
	resp, got := getJSON(t, tc.rts.URL, "/v1/jobs/"+st.ID+"/artifacts")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("artifacts status = %d", resp.StatusCode)
	}

	// Rebuild the expected artifact from direct cell requests against
	// the router (same bytes as the owning worker's response).
	var cells []string
	for i := range points {
		cr := apiv1.CellRequest{
			Bench:  "rasta",
			Policy: "mdc",
			Options: apiv1.Options{
				MaxIterations: 5, FastPath: true, Arch: &points[i],
			},
		}
		cb, err := json.Marshal(cr)
		if err != nil {
			t.Fatal(err)
		}
		cresp, cdata := postJSON(t, tc.rts.URL, "/v1/cell", cb)
		if cresp.StatusCode != http.StatusOK {
			t.Fatalf("cell status = %d (%s)", cresp.StatusCode, cdata)
		}
		var sw apiv1.SweepResponse
		if err := json.Unmarshal(got, &sw); err != nil {
			t.Fatal(err)
		}
		pk, err := json.Marshal(sw.Cells[i].Point)
		if err != nil {
			t.Fatal(err)
		}
		cells = append(cells, `{"point":`+string(pk)+`,`+string(cdata[1:]))
	}
	want := `{"cells":[` + strings.Join(cells, ",") + `]}`
	if string(got) != want {
		t.Errorf("sweep artifact:\n got %s\nwant %s", got, want)
	}
}

// TestJobEventsSSE: the progress stream emits full JobStatus snapshots
// and terminates with the terminal state.
func TestJobEventsSSE(t *testing.T) {
	tc := newTestCluster(t, 2)
	req := testSuiteReq()
	req.Benches = []string{"rasta"}
	body, err := json.Marshal(apiv1.JobRequest{Suite: &req})
	if err != nil {
		t.Fatal(err)
	}
	resp, data := postJSON(t, tc.rts.URL, "/v1/jobs", body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d (%s)", resp.StatusCode, data)
	}
	var st apiv1.JobStatus
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}

	sresp, err := http.Get(tc.rts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if ct := sresp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}
	scanner := bufio.NewScanner(sresp.Body)
	var events []apiv1.JobStatus
	for scanner.Scan() {
		line := scanner.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev apiv1.JobStatus
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("bad event %q: %v", line, err)
		}
		events = append(events, ev)
		if ev.Terminal() {
			break
		}
	}
	if len(events) == 0 {
		t.Fatal("no progress events")
	}
	last := events[len(events)-1]
	if last.State != apiv1.JobDone || last.CellsDone != last.CellsTotal {
		t.Errorf("terminal event = %+v", last)
	}
}

// TestJobAPIErrors covers the typed failure paths of the job routes.
func TestJobAPIErrors(t *testing.T) {
	tc := newTestCluster(t, 1)

	resp, data := getJSON(t, tc.rts.URL, "/v1/jobs/job-999")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job = %d (%s)", resp.StatusCode, data)
	}

	// Exactly one of suite/sweep.
	resp, _ = postJSON(t, tc.rts.URL, "/v1/jobs", []byte(`{}`))
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty job = %d", resp.StatusCode)
	}
	both := `{"suite":{"variants":[{"policy":"mdc","heuristic":"prefclus"}]},"sweep":{"points":[{}],"variants":[{"policy":"mdc","heuristic":"prefclus"}]}}`
	resp, _ = postJSON(t, tc.rts.URL, "/v1/jobs", []byte(both))
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("both kinds = %d", resp.StatusCode)
	}

	// Validation is synchronous: bad input never becomes a job.
	bad := `{"suite":{"benches":["nope"],"variants":[{"policy":"mdc","heuristic":"prefclus"}]}}`
	resp, data = postJSON(t, tc.rts.URL, "/v1/jobs", []byte(bad))
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown bench job = %d (%s)", resp.StatusCode, data)
	}

	// Artifacts of a non-terminal job: typed 409 (store-level; jobs at
	// the HTTP layer finish too fast to pin the window reliably).
	j := tc.router.jobs.create("suite", 3)
	if _, eresp := j.artifactBytes(); eresp == nil || eresp.Code != apiv1.CodeJobNotReady {
		t.Errorf("queued artifacts = %+v", eresp)
	}
	j.fail("boom")
	if _, eresp := j.artifactBytes(); eresp == nil || eresp.Code != apiv1.CodeJobNotReady {
		t.Errorf("failed artifacts = %+v", eresp)
	}
	resp, data = getJSON(t, tc.rts.URL, "/v1/jobs/"+j.snapshot().ID+"/artifacts")
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("failed job artifacts = %d (%s)", resp.StatusCode, data)
	}

	// Job listing covers the store in submission order.
	resp, data = getJSON(t, tc.rts.URL, "/v1/jobs")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list = %d", resp.StatusCode)
	}
	var list apiv1.JobListResponse
	if err := json.Unmarshal(data, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != 1 || list.Jobs[0].ID != j.snapshot().ID {
		t.Errorf("list = %+v", list.Jobs)
	}
}

// TestRouterProxyAndHealth: single-key proxy routes pass worker bytes
// through; healthz reports the router role and polled peers.
func TestRouterProxyAndHealth(t *testing.T) {
	tc := newTestCluster(t, 2)

	// /v1/benchmarks proxies a catalog listing from a worker.
	resp, data := getJSON(t, tc.rts.URL, "/v1/benchmarks")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(data), "rasta") {
		t.Errorf("benchmarks = %d (%.80s)", resp.StatusCode, data)
	}

	// /v1/schedule proxies by content address: the response equals a
	// direct worker call byte-for-byte (both ultimately cache bytes).
	schedBody := []byte(fmt.Sprintf(`{"loop":%s,"policy":"mdc","maxIterations":5}`, daxpyJSON))
	resp, viaRouter := postJSON(t, tc.rts.URL, "/v1/schedule", schedBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("schedule via router = %d (%s)", resp.StatusCode, viaRouter)
	}
	var res apiv1.ScheduleResponse
	if err := json.Unmarshal(viaRouter, &res); err != nil {
		t.Fatal(err)
	}
	// Repeat: same worker, now a cache hit with identical bytes.
	_, second := postJSON(t, tc.rts.URL, "/v1/schedule", schedBody)
	if !bytes.Equal(viaRouter, second) {
		t.Error("repeated proxied schedule bytes differ")
	}

	tc.router.PollPeers(context.Background())
	resp, data = getJSON(t, tc.rts.URL, "/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
	var h apiv1.HealthResponse
	if err := json.Unmarshal(data, &h); err != nil {
		t.Fatal(err)
	}
	if h.Role != "router" || h.Status != "ok" || len(h.Peers) != 2 {
		t.Fatalf("health = %+v", h)
	}
	for _, p := range h.Peers {
		if p.Status != apiv1.PeerServing {
			t.Errorf("peer %s = %s", p.URL, p.Status)
		}
	}

	// A worker's own healthz names its role and (unpolled) peer slots.
	resp, data = getJSON(t, tc.wts[0].URL, "/healthz")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(data), `"role":"worker"`) {
		t.Errorf("worker healthz = %d (%s)", resp.StatusCode, data)
	}

	// Router metrics include the live-worker gauge.
	resp, data = getJSON(t, tc.rts.URL, "/metrics")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(data), "router_workers_live 2") {
		t.Errorf("metrics = %d (%.200s)", resp.StatusCode, data)
	}
}

// daxpyJSON is a small well-formed loop in the interchange format (the
// same fixture the server tests use for proxy assertions).
const daxpyJSON = `{
  "name": "daxpy",
  "trip": 50,
  "symbols": [
    {"name": "x", "base": 65536, "size": 1048576},
    {"name": "y", "base": 524288, "size": 1048576}
  ],
  "ops": [
    {"name": "ldx", "kind": "load", "dst": 0, "addr": {"base": "x", "stride": 8, "size": 8}},
    {"name": "ldy", "kind": "load", "dst": 1, "addr": {"base": "y", "stride": 8, "size": 8}},
    {"name": "mul", "kind": "fmul", "dst": 2, "srcs": [0, 1]},
    {"name": "sty", "kind": "store", "srcs": [2], "addr": {"base": "y", "stride": 8, "size": 8}}
  ]
}`
