// Package obs is the observability layer: structured cycle-level event
// tracing for the simulator and latency histograms for the experiment
// pipeline.
//
// The design contract is zero overhead when disabled: producers hold a
// Tracer interface value that is nil when tracing is off and guard every
// emission site with a single nil check, so the simulator hot path is
// unchanged when no tracer is installed (guarded by the `make obs`
// benchmark). When enabled, events are fixed-size structs routed to a
// sink — a bounded in-memory Ring for interactive debugging, a JSONL
// stream for machine-readable replay, or a Count sink that only
// aggregates per-kind totals (used by the trace-reconciliation tests).
//
// Event streams are deterministic: every field derives from simulation
// state, so two runs of the same schedule with the same fault seed
// produce byte-identical JSONL files.
package obs

import (
	"bufio"
	"fmt"
	"io"
	"sync"
)

// Kind enumerates the traced event types.
type Kind uint8

const (
	// KindIssue: one scheduled op (or inter-cluster copy) issued.
	// Arg is the op's completion time; Addr is 0 for non-memory ops.
	KindIssue Kind = iota
	// KindStall: the lockstep machine stalled on an unavailable source
	// value (stall-on-use). Arg is the number of stall cycles paid;
	// their sum reconciles exactly with Stats.StallCycles.
	KindStall
	// KindAccess: one classified memory access. Class holds the
	// sim.Class; per-class counts reconcile exactly with Stats.Accesses.
	KindAccess
	// KindBankArrival: the access's serialization point saw the request.
	// Cycle is the arrival time at the bank (or next level / remote copy).
	KindBankArrival
	// KindBusTransfer: a memory-bus transfer was granted. Cycle is the
	// request time, Arg the grant completion time.
	KindBusTransfer
	// KindABHit: an Attraction Buffer satisfied a remote access locally.
	KindABHit
	// KindABFlush: an Attraction Buffer was emptied (loop boundary or
	// injected adversarial replacement). Arg is 1 for injected flushes.
	KindABFlush
	// KindABInvalidate: a pending or present AB copy was dropped because
	// a store made it stale.
	KindABInvalidate
	// KindCoherence: the coherence checker ran. Arg is the number of
	// ordering violations found.
	KindCoherence

	numKinds = int(KindCoherence) + 1
)

var kindNames = [numKinds]string{
	"issue", "stall", "access", "bank_arrival", "bus_transfer",
	"ab_hit", "ab_flush", "ab_invalidate", "coherence",
}

func (k Kind) String() string {
	if int(k) < numKinds {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// NumKinds is the number of defined event kinds.
const NumKinds = numKinds

// Event is one traced occurrence. It is a flat fixed-size struct so ring
// storage and JSONL encoding stay allocation-light and deterministic.
// Field meaning varies slightly by Kind (see the Kind constants).
type Event struct {
	Kind    Kind
	Class   int8  // sim access class for KindAccess/KindBankArrival, else -1
	Op      int32 // op ID (or copy index for copy issues), -1 when n/a
	Cluster int32 // issuing cluster, -1 when n/a
	Entry   int64 // loop entry index
	Iter    int64 // iteration within the entry
	Cycle   int64 // primary timestamp (issue time, flush time, ...)
	Addr    uint64
	Arg     int64 // kind-specific payload (see Kind constants)
}

// Tracer receives events. Implementations must be safe for use from a
// single simulation goroutine; sinks shared across concurrent runs (the
// JSONL sink behind paperbench -trace) serialize internally.
type Tracer interface {
	Emit(Event)
}

// Flusher is implemented by sinks that buffer output.
type Flusher interface {
	Flush() error
}

// Ring is a bounded in-memory sink keeping the most recent events.
type Ring struct {
	buf   []Event
	next  int
	total int64
}

// NewRing builds a ring sink holding up to n events (n >= 1).
func NewRing(n int) *Ring {
	if n < 1 {
		n = 1
	}
	return &Ring{buf: make([]Event, 0, n)}
}

// Emit implements Tracer.
func (r *Ring) Emit(e Event) {
	r.total++
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
		return
	}
	r.buf[r.next] = e
	r.next = (r.next + 1) % cap(r.buf)
}

// Total is the number of events emitted, including evicted ones.
func (r *Ring) Total() int64 { return r.total }

// Events returns the retained events in emission order.
func (r *Ring) Events() []Event {
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Slice is an unbounded in-memory sink retaining every event in emission
// order. Unlike Ring it never evicts, so it is the sink of choice for
// fixtures that must compare a complete expected stream (the model
// checker's counterexample regressions) rather than a recent window. Not
// safe for concurrent emitters.
type Slice struct {
	Events []Event
}

// Emit implements Tracer.
func (s *Slice) Emit(e Event) { s.Events = append(s.Events, e) }

// Reset drops the retained events, keeping the storage.
func (s *Slice) Reset() { s.Events = s.Events[:0] }

// Count aggregates per-kind totals without retaining events: the cheapest
// enabled sink, used by reconciliation tests and overhead measurements.
type Count struct {
	N        [NumKinds]int64
	StallSum int64              // summed KindStall Arg (total stall cycles)
	ByClass  map[int8]int64     // KindAccess events per sim class
}

// NewCount builds a counting sink.
func NewCount() *Count { return &Count{ByClass: make(map[int8]int64)} }

// Emit implements Tracer.
func (c *Count) Emit(e Event) {
	if int(e.Kind) < NumKinds {
		c.N[e.Kind]++
	}
	switch e.Kind {
	case KindStall:
		c.StallSum += e.Arg
	case KindAccess:
		c.ByClass[e.Class]++
	}
}

// Accesses is the total number of KindAccess events seen.
func (c *Count) Accesses() int64 { return c.N[KindAccess] }

// JSONL streams events as JSON Lines. Encoding is hand-rolled with a fixed
// field order so equal event streams produce byte-identical files. Safe
// for concurrent emitters (each event line is written atomically).
type JSONL struct {
	mu sync.Mutex
	w  *bufio.Writer
}

// NewJSONL builds a JSONL sink over w.
func NewJSONL(w io.Writer) *JSONL { return &JSONL{w: bufio.NewWriter(w)} }

// Emit implements Tracer.
func (j *JSONL) Emit(e Event) {
	j.mu.Lock()
	fmt.Fprintf(j.w,
		`{"kind":%q,"entry":%d,"iter":%d,"cycle":%d,"op":%d,"cluster":%d,"class":%d,"addr":%d,"arg":%d}`+"\n",
		e.Kind.String(), e.Entry, e.Iter, e.Cycle, e.Op, e.Cluster, e.Class, e.Addr, e.Arg)
	j.mu.Unlock()
}

// Flush drains the buffered output to the underlying writer.
func (j *JSONL) Flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.w.Flush()
}

// Tee fans every event out to each sink in order.
type Tee []Tracer

// Emit implements Tracer.
func (t Tee) Emit(e Event) {
	for _, s := range t {
		s.Emit(e)
	}
}

// Flush flushes every sink that buffers.
func (t Tee) Flush() error {
	for _, s := range t {
		if f, ok := s.(Flusher); ok {
			if err := f.Flush(); err != nil {
				return err
			}
		}
	}
	return nil
}
