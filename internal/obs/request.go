package obs

import (
	"sync"
	"time"
)

// RequestEvent is one stage of a served request's lifecycle, emitted by
// the serving layer (internal/server) alongside the cycle-level
// simulation events: admission, queueing, computation, cache service
// and load shedding all leave a record, so a request's path through the
// admission-control state machine can be reconstructed after the fact.
type RequestEvent struct {
	// Seq is the request's serve-order sequence number (1-based).
	Seq int64
	// Route is the endpoint ("/v1/schedule", "/v1/suite", ...).
	Route string
	// Stage names the lifecycle step: "admit", "shed", "cache_hit",
	// "coalesced", "compute", "error" or "done".
	Stage string
	// Key is the content address of the request's result, when known.
	Key string
	// Status is the HTTP status the stage resolved to (0 when the
	// request is still in flight).
	Status int
	// Elapsed is the time spent in (or up to) this stage.
	Elapsed time.Duration
}

// RequestSink receives request lifecycle events. Implementations must
// be safe for concurrent use; the serving layer emits from handler
// goroutines.
type RequestSink interface {
	EmitRequest(RequestEvent)
}

// RequestLog is a bounded in-memory RequestSink keeping the most recent
// events, mirroring Ring for simulation events.
type RequestLog struct {
	mu     sync.Mutex
	events []RequestEvent
	next   int
	filled bool
	total  int64
}

// NewRequestLog returns a log holding the last n events (n < 1 is
// raised to 1).
func NewRequestLog(n int) *RequestLog {
	if n < 1 {
		n = 1
	}
	return &RequestLog{events: make([]RequestEvent, n)}
}

// EmitRequest implements RequestSink.
func (l *RequestLog) EmitRequest(e RequestEvent) {
	l.mu.Lock()
	l.events[l.next] = e
	l.next++
	if l.next == len(l.events) {
		l.next, l.filled = 0, true
	}
	l.total++
	l.mu.Unlock()
}

// Total reports how many events were emitted over the log's lifetime.
func (l *RequestLog) Total() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Events returns the retained events, oldest first.
func (l *RequestLog) Events() []RequestEvent {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.filled {
		return append([]RequestEvent(nil), l.events[:l.next]...)
	}
	out := make([]RequestEvent, 0, len(l.events))
	out = append(out, l.events[l.next:]...)
	out = append(out, l.events[:l.next]...)
	return out
}
