package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestRingKeepsMostRecent(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Emit(Event{Kind: KindIssue, Cycle: int64(i)})
	}
	if r.Total() != 10 {
		t.Fatalf("Total = %d, want 10", r.Total())
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	for i, e := range evs {
		if want := int64(6 + i); e.Cycle != want {
			t.Errorf("event %d cycle = %d, want %d (emission order)", i, e.Cycle, want)
		}
	}
}

func TestRingUnderfill(t *testing.T) {
	r := NewRing(8)
	r.Emit(Event{Cycle: 1})
	r.Emit(Event{Cycle: 2})
	evs := r.Events()
	if len(evs) != 2 || evs[0].Cycle != 1 || evs[1].Cycle != 2 {
		t.Fatalf("underfilled ring events = %v", evs)
	}
}

func TestJSONLDeterministicAndParseable(t *testing.T) {
	emit := func() string {
		var buf bytes.Buffer
		j := NewJSONL(&buf)
		j.Emit(Event{Kind: KindAccess, Class: 2, Op: 7, Cluster: 1, Entry: 0, Iter: 33, Cycle: 120, Addr: 0x1f40, Arg: 0})
		j.Emit(Event{Kind: KindStall, Class: -1, Op: -1, Cluster: -1, Cycle: 121, Arg: 5})
		if err := j.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := emit(), emit()
	if a != b {
		t.Fatal("equal event streams must serialize byte-identically")
	}
	lines := strings.Split(strings.TrimRight(a, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	if !strings.Contains(lines[0], `"kind":"access"`) || !strings.Contains(lines[0], `"addr":8000`) {
		t.Errorf("unexpected access line: %s", lines[0])
	}
	if !strings.Contains(lines[1], `"kind":"stall"`) || !strings.Contains(lines[1], `"arg":5`) {
		t.Errorf("unexpected stall line: %s", lines[1])
	}
}

func TestCountSink(t *testing.T) {
	c := NewCount()
	c.Emit(Event{Kind: KindAccess, Class: 0})
	c.Emit(Event{Kind: KindAccess, Class: 0})
	c.Emit(Event{Kind: KindAccess, Class: 3})
	c.Emit(Event{Kind: KindStall, Arg: 7})
	c.Emit(Event{Kind: KindStall, Arg: 3})
	if c.Accesses() != 3 {
		t.Errorf("Accesses = %d, want 3", c.Accesses())
	}
	if c.StallSum != 10 {
		t.Errorf("StallSum = %d, want 10", c.StallSum)
	}
	if c.ByClass[0] != 2 || c.ByClass[3] != 1 {
		t.Errorf("ByClass = %v", c.ByClass)
	}
}

func TestTee(t *testing.T) {
	a, b := NewCount(), NewRing(2)
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	tee := Tee{a, b, j}
	tee.Emit(Event{Kind: KindABHit})
	if err := tee.Flush(); err != nil {
		t.Fatal(err)
	}
	if a.N[KindABHit] != 1 || b.Total() != 1 || !strings.Contains(buf.String(), "ab_hit") {
		t.Error("tee must fan out to every sink")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %v, want 0", got)
	}
	if s := h.Summarize(); s.Count != 0 || s.Mean != 0 {
		t.Errorf("empty summary = %+v", s)
	}
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	if got := h.Quantile(0.5); got != 50*time.Millisecond {
		t.Errorf("p50 = %v, want 50ms", got)
	}
	if got := h.Quantile(0.95); got != 95*time.Millisecond {
		t.Errorf("p95 = %v, want 95ms", got)
	}
	if got := h.Max(); got != 100*time.Millisecond {
		t.Errorf("max = %v, want 100ms", got)
	}
	s := h.Summarize()
	if s.Count != 100 || s.Total != 5050*time.Millisecond || s.Mean != 5050*time.Millisecond/100 {
		t.Errorf("summary = %+v", s)
	}
	// Observing after a quantile query must keep the digest correct.
	h.Observe(500 * time.Millisecond)
	if got := h.Max(); got != 500*time.Millisecond {
		t.Errorf("max after late observe = %v, want 500ms", got)
	}
}

func TestKindStrings(t *testing.T) {
	for k := Kind(0); int(k) < NumKinds; k++ {
		if s := k.String(); s == "" || strings.HasPrefix(s, "Kind(") {
			t.Errorf("kind %d has no name", k)
		}
	}
	if s := Kind(200).String(); !strings.HasPrefix(s, "Kind(") {
		t.Errorf("unknown kind string = %q", s)
	}
}
