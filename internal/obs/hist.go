package obs

import (
	"fmt"
	"sort"
	"time"
)

// Histogram accumulates duration samples and summarizes them as quantiles.
// The experiment engine keeps one per pipeline stage; with thousands of
// grid cells at most, retaining raw samples is cheaper and more accurate
// than a sketch. Not safe for concurrent use; callers lock around it.
type Histogram struct {
	samples []time.Duration
	sum     time.Duration
	sorted  bool
}

// Observe records one sample.
func (h *Histogram) Observe(d time.Duration) {
	h.samples = append(h.samples, d)
	h.sum += d
	h.sorted = false
}

// Count is the number of recorded samples.
func (h *Histogram) Count() int64 { return int64(len(h.samples)) }

// Sum is the total of all recorded samples.
func (h *Histogram) Sum() time.Duration { return h.sum }

// Quantile returns the p-quantile (0 <= p <= 1) using nearest-rank on the
// sorted samples, or 0 when empty.
func (h *Histogram) Quantile(p float64) time.Duration {
	if len(h.samples) == 0 {
		return 0
	}
	if !h.sorted {
		sort.Slice(h.samples, func(i, j int) bool { return h.samples[i] < h.samples[j] })
		h.sorted = true
	}
	if p <= 0 {
		return h.samples[0]
	}
	if p >= 1 {
		return h.samples[len(h.samples)-1]
	}
	idx := int(p*float64(len(h.samples))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.samples) {
		idx = len(h.samples) - 1
	}
	return h.samples[idx]
}

// Max returns the largest sample, or 0 when empty.
func (h *Histogram) Max() time.Duration { return h.Quantile(1) }

// Summary is a point-in-time digest of a histogram.
type Summary struct {
	Count int64         `json:"count"`
	Total time.Duration `json:"total_ns"`
	Mean  time.Duration `json:"mean_ns"`
	P50   time.Duration `json:"p50_ns"`
	P95   time.Duration `json:"p95_ns"`
	Max   time.Duration `json:"max_ns"`
}

// Summarize digests the histogram.
func (h *Histogram) Summarize() Summary {
	s := Summary{Count: h.Count(), Total: h.sum}
	if s.Count > 0 {
		s.Mean = h.sum / time.Duration(s.Count)
		s.P50 = h.Quantile(0.50)
		s.P95 = h.Quantile(0.95)
		s.Max = h.Max()
	}
	return s
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d total=%v mean=%v p50=%v p95=%v max=%v",
		s.Count, s.Total.Round(time.Microsecond), s.Mean.Round(time.Microsecond),
		s.P50.Round(time.Microsecond), s.P95.Round(time.Microsecond), s.Max.Round(time.Microsecond))
}
