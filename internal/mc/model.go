package mc

import (
	"fmt"

	"vliwcache/internal/arch"
	"vliwcache/internal/cache"
	"vliwcache/internal/obs"
)

// Sentinels for state.copyVer: the version a cluster's Attraction Buffer
// copy of a subblock holds. Non-negative values are the identity (origin
// op index) of the store whose value the copy carries; verInit is the
// initial memory content; verNone marks "no copy"; values <= verFlightBase
// encode a copy whose data is still in flight on fetch by op
// -(v - verFlightBase).
const (
	verInit       = int16(-1)
	verNone       = int16(-2)
	verFlightBase = int16(-3)
)

func encodeFlight(op int) int16 { return verFlightBase - int16(op) }
func decodeFlight(v int16) int  { return int(verFlightBase - v) }

// model holds the static tables derived from a validated Config.
type model struct {
	cfg    *Config
	nclus  int
	nsubs  int
	slots  [][]int // slot -> op indices, in listed order
	prog   []int16 // per op: program-order identity
	want   []int16 // per load op: identity of the expected observed store
	last   []int16 // per sub: identity of the program-last store
	subIDs []arch.SubblockID
	autos  []autoPerm // config automorphisms; autos[0] is the identity
}

// state is one explored machine configuration. States are cloned before
// every transition; the Attraction Buffers are the real cache
// implementation so the checker exercises its replacement behavior, with
// copyVer carrying the value identity the buffer itself does not store.
type state struct {
	next    int16   // next slot to issue
	bankVer []int16 // per sub: identity of the last store serialized at the bank
	maxAny  []int16 // per sub: largest identity of any serialized access
	maxSto  []int16 // per sub: largest identity of a serialized store
	pend    []int16 // [cluster*nsubs+sub]: op of the live pending fetch, -1 none
	copyVer []int16 // [cluster*nsubs+sub]: version of the AB copy (see sentinels)
	abs     []*cache.AttractionBuffer
	msgs    []msg
	step    int64 // LRU clock; canonicalization reduces it to per-set ranks
}

// msg is one in-flight bus message. Requests (stage 0) leave their
// cluster in FIFO order — the arbiter property internal/bus pins — and
// replies (stage 1) land in any order.
type msg struct {
	op      int16
	cluster int8
	sub     int8
	store   bool
	stage   int8
	capVer  int16   // bank version captured at the bank (stage 1)
	obs     []int16 // loads observing this fetch's value, checked at capture
}

const (
	stageReq = int8(0)
	stageRep = int8(1)
)

// StepKind enumerates the transition kinds of the model.
type StepKind uint8

const (
	// StepIssue issues the next slot's operations (lockstep word).
	StepIssue StepKind = iota
	// StepDeliverReq delivers a cluster's oldest queued request to its
	// subblock's home bank.
	StepDeliverReq
	// StepDeliverRep lands an in-flight reply at its requesting cluster.
	StepDeliverRep
	// StepFlush adversarially empties one cluster's Attraction Buffer.
	StepFlush
)

// Step is one transition: a counterexample is a sequence of Steps from
// the initial state.
type Step struct {
	Kind    StepKind
	Cluster int // DeliverReq/DeliverRep/Flush: the requesting cluster
	Op      int // Issue: slot index; DeliverReq/DeliverRep: the message's op
}

func (s Step) String() string {
	switch s.Kind {
	case StepIssue:
		return fmt.Sprintf("issue slot %d", s.Op)
	case StepDeliverReq:
		return fmt.Sprintf("deliver request of op %d (cluster %d) at bank", s.Op, s.Cluster)
	case StepDeliverRep:
		return fmt.Sprintf("deliver reply of op %d to cluster %d", s.Op, s.Cluster)
	case StepFlush:
		return fmt.Sprintf("flush attraction buffer of cluster %d", s.Cluster)
	}
	return fmt.Sprintf("step(%d)", s.Kind)
}

// newModel builds the static tables for cfg (which must validate).
func newModel(cfg *Config) (*model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &model{cfg: cfg, nclus: cfg.Clusters, nsubs: len(cfg.Homes)}
	for i, o := range cfg.Ops {
		for o.Slot >= len(m.slots) {
			m.slots = append(m.slots, nil)
		}
		m.slots[o.Slot] = append(m.slots[o.Slot], i)
	}
	m.prog = make([]int16, len(cfg.Ops))
	m.want = make([]int16, len(cfg.Ops))
	m.last = make([]int16, m.nsubs)
	for s := range m.last {
		m.last[s] = verInit
	}
	for i, o := range cfg.Ops {
		m.prog[i] = int16(cfg.prog(i))
		m.want[i] = m.last[o.Sub] // loads expect the program-latest earlier store
		if o.Kind == Store {
			m.last[o.Sub] = m.prog[i]
		}
	}
	m.subIDs = make([]arch.SubblockID, m.nsubs)
	for s := range m.subIDs {
		m.subIDs[s] = cfg.subID(s)
	}
	m.autos = m.automorphisms()
	return m, nil
}

// initial builds the root state: nothing issued, banks at initial memory.
func (m *model) initial() *state {
	st := &state{
		bankVer: fill16(m.nsubs, verInit),
		maxAny:  fill16(m.nsubs, verInit),
		maxSto:  fill16(m.nsubs, verInit),
		pend:    fill16(m.nclus*m.nsubs, -1),
		copyVer: fill16(m.nclus*m.nsubs, verNone),
	}
	if m.cfg.ABEntries > 0 {
		st.abs = make([]*cache.AttractionBuffer, m.nclus)
		for c := range st.abs {
			st.abs[c] = cache.NewAttractionBuffer(m.cfg.ABEntries, m.cfg.ABAssoc)
		}
	}
	return st
}

func fill16(n int, v int16) []int16 {
	s := make([]int16, n)
	for i := range s {
		s[i] = v
	}
	return s
}

// clone deep-copies a state so a transition can be applied to the copy.
func (st *state) clone() *state {
	cp := &state{
		next:    st.next,
		bankVer: append([]int16(nil), st.bankVer...),
		maxAny:  append([]int16(nil), st.maxAny...),
		maxSto:  append([]int16(nil), st.maxSto...),
		pend:    append([]int16(nil), st.pend...),
		copyVer: append([]int16(nil), st.copyVer...),
		step:    st.step,
	}
	if st.abs != nil {
		cp.abs = make([]*cache.AttractionBuffer, len(st.abs))
		for c, ab := range st.abs {
			cp.abs[c] = ab.Clone()
		}
	}
	cp.msgs = make([]msg, len(st.msgs))
	for i, mg := range st.msgs {
		cp.msgs[i] = mg
		if mg.obs != nil {
			cp.msgs[i].obs = append([]int16(nil), mg.obs...)
		}
	}
	return cp
}

// terminal reports whether every op has issued and no message is in
// flight: the program has quiesced.
func (m *model) terminal(st *state) bool {
	return int(st.next) >= len(m.slots) && len(st.msgs) == 0
}

// enumerate lists the enabled transitions of st in a fixed deterministic
// order: issue, then each cluster's oldest queued request, then replies
// by op, then adversarial flushes by cluster.
func (m *model) enumerate(st *state) []Step {
	var steps []Step
	if int(st.next) < len(m.slots) {
		steps = append(steps, Step{Kind: StepIssue, Op: int(st.next)})
	}
	for c := 0; c < m.nclus; c++ {
		for i := range st.msgs {
			mg := &st.msgs[i]
			if mg.stage == stageReq && int(mg.cluster) == c {
				steps = append(steps, Step{Kind: StepDeliverReq, Cluster: c, Op: int(mg.op)})
				break // FIFO: only the oldest request of a cluster may deliver
			}
		}
	}
	for op := 0; op < len(m.cfg.Ops); op++ {
		for i := range st.msgs {
			mg := &st.msgs[i]
			if mg.stage == stageRep && int(mg.op) == op {
				steps = append(steps, Step{Kind: StepDeliverRep, Cluster: int(mg.cluster), Op: op})
			}
		}
	}
	if m.cfg.AdversarialFlush && st.abs != nil {
		for c := 0; c < m.nclus; c++ {
			if present, _ := m.abScan(st, c); present != 0 {
				steps = append(steps, Step{Kind: StepFlush, Cluster: c})
			}
		}
	}
	return steps
}

// apply executes one transition on st in place, returning the first
// invariant violation it causes (nil if none). em, when non-nil, receives
// the obs events the transition corresponds to — the same code path
// drives exploration and counterexample replay.
func (m *model) apply(st *state, sp Step, em func(obs.Event)) *Violation {
	switch sp.Kind {
	case StepIssue:
		if int(st.next) >= len(m.slots) || sp.Op != int(st.next) {
			return nil
		}
		ops := m.slots[sp.Op]
		st.next++
		for _, id := range ops {
			if v := m.issue(st, id, em); v != nil {
				return v
			}
		}
		return m.ownerCheck(st)
	case StepDeliverReq:
		if v := m.deliverReq(st, sp, em); v != nil {
			return v
		}
		return m.ownerCheck(st)
	case StepDeliverRep:
		m.deliverRep(st, sp, em)
		return m.ownerCheck(st)
	case StepFlush:
		m.flushAB(st, sp.Cluster, true, em)
		return m.ownerCheck(st)
	}
	return nil
}

// issue executes op id at its cluster, mirroring sim.memAccess with time
// abstracted away: nullified replica instances, requester-side combining
// (and the remote-store conflict the PR 2 fix handles), local accesses,
// Attraction Buffer hits, and the bus path.
func (m *model) issue(st *state, id int, em func(obs.Event)) *Violation {
	o := m.cfg.Ops[id]
	c, s, home := o.Cluster, o.Sub, m.cfg.Homes[o.Sub]
	isStore := o.Kind == Store
	ps := c*m.nsubs + s
	emit(em, obs.Event{Kind: obs.KindAccess, Class: -1, Op: int32(id), Cluster: int32(c)})

	// Store replication: only the instance in the home cluster executes;
	// the others keep their cluster's local state fresh.
	if isStore && o.Origin >= 0 && c != home {
		if st.abs != nil && m.abHas(st, c, s) {
			st.abs[c].Update(m.subIDs[s], st.tick())
			st.copyVer[ps] = m.prog[id]
		}
		st.pend[ps] = -1
		return nil
	}

	// Requester-side combining: a live pending fetch of the subblock.
	if p := st.pend[ps]; p >= 0 {
		if !isStore {
			// Combined: serialized with the original request at issue
			// (sim records the arrival at issue time); the observed value
			// is whatever the fetch captures at the bank.
			if v := m.serialize(st, s, id, false, em); v != nil {
				return v
			}
			return m.observeFetch(st, int(p), id)
		}
		// A remote store cannot join — its write must reach the home
		// bank — and it makes the in-flight copy stale: drop the pending
		// entry and (the PR 2 fix) the eagerly-inserted copy.
		st.pend[ps] = -1
		if st.abs != nil && !m.cfg.DisableABInvalidate {
			if st.abs[c].Invalidate(m.subIDs[s]) {
				st.copyVer[ps] = verNone
				emit(em, obs.Event{Kind: obs.KindABInvalidate, Class: -1, Op: int32(id), Cluster: int32(c)})
			}
		}
	}

	// Local access: serialized at the bank immediately.
	if c == home {
		if v := m.serialize(st, s, id, isStore, em); v != nil {
			return v
		}
		if isStore {
			st.bankVer[s] = m.prog[id]
			return nil
		}
		return m.observed(st, id, st.bankVer[s])
	}

	// Remote access: the Attraction Buffer may satisfy it locally.
	if st.abs != nil && m.abHas(st, c, s) {
		if !isStore {
			st.abs[c].Lookup(m.subIDs[s], st.tick())
			if v := m.serialize(st, s, id, false, em); v != nil {
				return v
			}
			emit(em, obs.Event{Kind: obs.KindABHit, Class: -1, Op: int32(id), Cluster: int32(c)})
			if cv := st.copyVer[ps]; cv <= verFlightBase {
				// The copy's data is still in flight (possible only with
				// the PR 2 fix disabled): the load observes the capture.
				return m.observeFetch(st, decodeFlight(cv), id)
			}
			return m.observed(st, id, st.copyVer[ps])
		}
		// MDC store into the replicated copy: dirty, written back to the
		// home bank when the buffer flushes.
		st.abs[c].Write(m.subIDs[s], st.tick())
		if v := m.serialize(st, s, id, true, em); v != nil {
			return v
		}
		emit(em, obs.Event{Kind: obs.KindABHit, Class: -1, Op: int32(id), Cluster: int32(c)})
		st.copyVer[ps] = m.prog[id]
		return nil
	}

	// Bus path: the request enters this cluster's FIFO stream.
	st.msgs = append(st.msgs, msg{op: int16(id), cluster: int8(c), sub: int8(s), store: isStore})
	emit(em, obs.Event{Kind: obs.KindBusTransfer, Class: -1, Op: int32(id), Cluster: int32(c)})
	if !isStore {
		st.pend[ps] = int16(id)
		if st.abs != nil {
			// Eager insert (sim inserts at issue, timestamped reply
			// time): the copy is visible from now, its data in flight.
			m.abInsert(st, c, s, encodeFlight(id))
		}
	}
	return nil
}

// deliverReq delivers the named queued request at its home bank: the
// access serializes there, stores write the bank, loads capture the bank
// version (their reply carries it back).
func (m *model) deliverReq(st *state, sp Step, em func(obs.Event)) *Violation {
	i := st.findMsg(int16(sp.Op), stageReq)
	if i < 0 {
		return nil
	}
	mg := &st.msgs[i]
	s := int(mg.sub)
	if v := m.serialize(st, s, int(mg.op), mg.store, em); v != nil {
		return v
	}
	if mg.store {
		st.bankVer[s] = m.prog[mg.op]
		st.msgs = append(st.msgs[:i], st.msgs[i+1:]...)
		return nil
	}
	cap := st.bankVer[s]
	mg.capVer = cap
	mg.stage = stageRep
	if v := m.observed(st, int(mg.op), cap); v != nil {
		return v
	}
	for _, ob := range mg.obs {
		if v := m.observed(st, int(ob), cap); v != nil {
			return v
		}
	}
	mg.obs = mg.obs[:0]
	return nil
}

// deliverRep lands a reply: the pending entry retires and the in-flight
// Attraction Buffer copy resolves to the captured version. A copy a later
// store already updated keeps the newer version (non-clobbering fill, see
// the package comment), and a copy that was invalidated or evicted in the
// meantime is not re-inserted (the simulator's insert happened at issue).
func (m *model) deliverRep(st *state, sp Step, em func(obs.Event)) {
	i := st.findMsg(int16(sp.Op), stageRep)
	if i < 0 {
		return
	}
	mg := st.msgs[i]
	c, s := int(mg.cluster), int(mg.sub)
	ps := c*m.nsubs + s
	emit(em, obs.Event{Kind: obs.KindBusTransfer, Class: -1, Op: int32(mg.op), Cluster: int32(c)})
	if st.pend[ps] == mg.op {
		st.pend[ps] = -1
	}
	if st.abs != nil && m.abHas(st, c, s) {
		st.abs[c].Insert(m.subIDs[s], st.tick()) // refresh; the line is present, nothing evicts
		if st.copyVer[ps] == encodeFlight(int(mg.op)) {
			st.copyVer[ps] = mg.capVer
		}
	}
	st.msgs = append(st.msgs[:i], st.msgs[i+1:]...)
}

// flushAB empties one cluster's Attraction Buffer: dirty copies write
// their value back to the home bank (the technique's free flush), then
// every line drops.
func (m *model) flushAB(st *state, c int, injected bool, em func(obs.Event)) {
	if st.abs == nil {
		return
	}
	present, dirty := m.abScan(st, c)
	for s := 0; s < m.nsubs; s++ {
		ps := c*m.nsubs + s
		if present&(1<<s) != 0 {
			if dirty&(1<<s) != 0 && st.copyVer[ps] >= 0 {
				st.bankVer[s] = st.copyVer[ps]
			}
			st.copyVer[ps] = verNone
		}
	}
	st.abs[c].Flush()
	arg := int64(0)
	if injected {
		arg = 1
	}
	emit(em, obs.Event{Kind: obs.KindABFlush, Class: -1, Op: -1, Cluster: int32(c), Arg: arg})
}

// finalCheck runs on terminal states: flush every buffer (the loop
// boundary), then the banks must hold the program-last store of every
// subblock.
func (m *model) finalCheck(st *state, em func(obs.Event)) *Violation {
	for c := 0; c < m.nclus; c++ {
		m.flushAB(st, c, false, em)
	}
	for s := 0; s < m.nsubs; s++ {
		if st.bankVer[s] != m.last[s] {
			return &Violation{
				Invariant: InvLostUpdate, Op: -1, Sub: s,
				Detail: fmt.Sprintf("bank of subblock %d holds version %s after the final flush, program-last store is %s",
					s, verName(st.bankVer[s]), verName(m.last[s])),
			}
		}
	}
	return nil
}

// serialize orders one access at its subblock's serialization point and
// checks the serialization invariant — the untimed statement of what
// sim's coherence checker tests on bank-arrival records: a store must not
// arrive after a program-later access, a load not after a program-later
// store.
func (m *model) serialize(st *state, s, id int, isStore bool, em func(obs.Event)) *Violation {
	p := m.prog[id]
	emit(em, obs.Event{Kind: obs.KindBankArrival, Class: -1, Op: int32(id), Cluster: int32(m.cfg.Homes[s])})
	if isStore && st.maxAny[s] > p {
		return &Violation{
			Invariant: InvSerialization, Op: id, Sub: s,
			Detail: fmt.Sprintf("store %d serialized after program-later access %d of subblock %d", id, st.maxAny[s], s),
		}
	}
	if !isStore && st.maxSto[s] > p {
		return &Violation{
			Invariant: InvSerialization, Op: id, Sub: s,
			Detail: fmt.Sprintf("load %d serialized after program-later store %d of subblock %d", id, st.maxSto[s], s),
		}
	}
	if p > st.maxAny[s] {
		st.maxAny[s] = p
	}
	if isStore && p > st.maxSto[s] {
		st.maxSto[s] = p
	}
	return nil
}

// observed checks the stale-value invariant: load id saw version got; it
// must equal the program-latest store ordered before the load.
func (m *model) observed(st *state, id int, got int16) *Violation {
	if got == m.want[id] {
		return nil
	}
	return &Violation{
		Invariant: InvStaleValue, Op: id, Sub: m.cfg.Ops[id].Sub,
		Detail: fmt.Sprintf("load %d observed version %s, expected %s", id, verName(got), verName(m.want[id])),
	}
}

// observeFetch defers load id's value check to fetchOp's bank capture, or
// performs it now when the capture already happened.
func (m *model) observeFetch(st *state, fetchOp, id int) *Violation {
	for i := range st.msgs {
		mg := &st.msgs[i]
		if int(mg.op) != fetchOp {
			continue
		}
		if mg.stage == stageRep {
			return m.observed(st, id, mg.capVer)
		}
		mg.obs = append(mg.obs, int16(id))
		return nil
	}
	return nil // fetch already fully retired; nothing left to observe
}

// ownerCheck checks the single-owner invariant on the whole state: a
// dirty copy of a subblock (modified data, MDC) excludes every other
// cluster's copy of it.
func (m *model) ownerCheck(st *state) *Violation {
	if st.abs == nil {
		return nil
	}
	for s := 0; s < m.nsubs; s++ {
		holders, dirtyHolders := 0, 0
		for c := 0; c < m.nclus; c++ {
			present, dirty := m.abScan(st, c)
			if present&(1<<s) != 0 {
				holders++
				if dirty&(1<<s) != 0 {
					dirtyHolders++
				}
			}
		}
		if dirtyHolders > 1 || (dirtyHolders == 1 && holders > 1) {
			return &Violation{
				Invariant: InvSingleOwner, Op: -1, Sub: s,
				Detail: fmt.Sprintf("subblock %d has a dirty copy alongside %d other cop(ies)", s, holders-1),
			}
		}
	}
	return nil
}

// abScan reports which subblocks cluster c's Attraction Buffer currently
// holds (and which of those copies are dirty) as bitmasks.
func (m *model) abScan(st *state, c int) (present, dirty uint32) {
	st.abs[c].VisitLines(func(_, _ int, sub arch.SubblockID, valid, d bool, _ int64) {
		if !valid {
			return
		}
		s := int(sub.Block>>5) - 1
		present |= 1 << s
		if d {
			dirty |= 1 << s
		}
	})
	return present, dirty
}

func (m *model) abHas(st *state, c, s int) bool {
	present, _ := m.abScan(st, c)
	return present&(1<<s) != 0
}

// abInsert inserts subblock s into cluster c's buffer with the given copy
// version, reconciling copyVer with any eviction the insertion caused
// (a dirty victim writes back to its home bank, exactly as a flush
// would — the copy is the freshest value).
func (m *model) abInsert(st *state, c, s int, ver int16) {
	pre, preDirty := m.abScan(st, c)
	st.abs[c].Insert(m.subIDs[s], st.tick())
	post, _ := m.abScan(st, c)
	for e := 0; e < m.nsubs; e++ {
		if e == s || pre&(1<<e) == 0 || post&(1<<e) != 0 {
			continue
		}
		pe := c*m.nsubs + e
		if preDirty&(1<<e) != 0 && st.copyVer[pe] >= 0 {
			st.bankVer[e] = st.copyVer[pe]
		}
		st.copyVer[pe] = verNone
	}
	st.copyVer[c*m.nsubs+s] = ver
}

func (st *state) tick() int64 {
	st.step++
	return st.step
}

func (st *state) findMsg(op int16, stage int8) int {
	for i := range st.msgs {
		if st.msgs[i].op == op && st.msgs[i].stage == stage {
			return i
		}
	}
	return -1
}

func emit(em func(obs.Event), e obs.Event) {
	if em != nil {
		em(e)
	}
}

func verName(v int16) string {
	switch {
	case v == verInit:
		return "initial-memory"
	case v >= 0:
		return fmt.Sprintf("store %d", v)
	}
	return fmt.Sprintf("version(%d)", v)
}
