package mc

import (
	"fmt"
	"strings"

	"vliwcache/internal/obs"
)

// Invariant names carried by Violation.
const (
	InvSerialization = "serialization"
	InvStaleValue    = "stale-value"
	InvSingleOwner   = "single-owner"
	InvLostUpdate    = "lost-update"
)

// Violation describes one invariant failure.
type Violation struct {
	// Invariant is one of the Inv* constants.
	Invariant string
	// Op is the violating operation's index, -1 for whole-state
	// invariants (single-owner, lost-update).
	Op int
	// Sub is the subblock involved.
	Sub int
	// Detail is a human-readable account of the failure.
	Detail string
}

func (v *Violation) String() string {
	return fmt.Sprintf("%s violation: %s", v.Invariant, v.Detail)
}

// Counterexample is a minimal-length trace from the initial state to a
// violation: BFS order guarantees no shorter step sequence violates any
// invariant. Replaying the Steps through the model reproduces the
// violation deterministically.
type Counterexample struct {
	Config    *Config
	Steps     []Step
	Violation Violation
}

func (cx *Counterexample) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "counterexample (%d steps) for %q:\n", len(cx.Steps), cx.Config.Name)
	for i, sp := range cx.Steps {
		fmt.Fprintf(&b, "  %2d. %s\n", i+1, sp.String())
	}
	fmt.Fprintf(&b, "  => %s\n", cx.Violation.String())
	return b.String()
}

// Replay re-executes the counterexample on a fresh model, returning the
// violation it reproduces (nil if the trace no longer violates — e.g.
// replayed against a config with the fix re-enabled). When em is non-nil
// it receives the obs event stream of the replay; Cycle carries the step
// index (the model is untimed), and a final KindCoherence event with
// Arg=1 marks the reproduced violation.
func (cx *Counterexample) Replay(cfg *Config, em func(obs.Event)) (*Violation, error) {
	m, err := newModel(cfg)
	if err != nil {
		return nil, err
	}
	st := m.initial()
	for i, sp := range cx.Steps {
		step := int64(i)
		wrap := em
		if em != nil {
			wrap = func(e obs.Event) {
				e.Cycle = step
				em(e)
			}
		}
		if v := m.apply(st, sp, wrap); v != nil {
			if em != nil {
				em(obs.Event{Kind: obs.KindCoherence, Class: -1, Op: -1, Cluster: -1, Cycle: step, Arg: 1})
			}
			return v, nil
		}
	}
	if m.terminal(st) {
		if v := m.finalCheck(st, nil); v != nil {
			if em != nil {
				em(obs.Event{Kind: obs.KindCoherence, Class: -1, Op: -1, Cluster: -1, Cycle: int64(len(cx.Steps)), Arg: 1})
			}
			return v, nil
		}
	}
	return nil, nil
}

// Events renders the counterexample as the obs event stream of its
// replay — the regression-fixture form: a golden stream a test can pin
// and diff, in the exact encoding the simulator's tracing uses.
func (cx *Counterexample) Events() []obs.Event {
	var sink obs.Slice
	cx.Replay(cx.Config, sink.Emit)
	return sink.Events
}

// DelayedRequests reports, for every request the trace delivers at a
// bank, how many issue steps elapsed between the op's issue and its
// delivery. A positive count means the interleaving held that request
// back across later instructions — exactly the delay a fault.Script bus
// hold must realize to reproduce the trace in the timed simulator (the
// chaos-seed form of the counterexample).
func (cx *Counterexample) DelayedRequests() map[int]int {
	issued := map[int]int{} // op -> number of issue steps completed at its issue
	issues := 0
	out := map[int]int{}
	for _, sp := range cx.Steps {
		switch sp.Kind {
		case StepIssue:
			issues++
			for _, id := range opsInSlot(cx.Config, sp.Op) {
				issued[id] = issues
			}
		case StepDeliverReq:
			if at, ok := issued[sp.Op]; ok {
				out[sp.Op] = issues - at
			}
		}
	}
	return out
}

func opsInSlot(cfg *Config, slot int) []int {
	var ids []int
	for i, o := range cfg.Ops {
		if o.Slot == slot {
			ids = append(ids, i)
		}
	}
	return ids
}
