package mc

import (
	"context"
	"errors"
	"reflect"
	"testing"
)

// fuzzBudget keeps each fuzz execution bounded: large enough that the
// canonical configurations complete, small enough that a pathological
// decoded program degrades in milliseconds.
const (
	fuzzMaxStates      = 5000
	fuzzMaxTransitions = 30000
)

// decodeConfig turns fuzz bytes into a candidate configuration. The
// decoder is biased toward validity (clusters, subblocks and ops mostly
// land in range) but deliberately leaves room for every Validate failure
// mode, so the fuzzer exercises both the checker and its input gate.
func decodeConfig(data []byte) *Config {
	pos := 0
	next := func() byte {
		if pos >= len(data) {
			return 0
		}
		b := data[pos]
		pos++
		return b
	}
	cfg := &Config{
		Name:     "fuzz",
		Clusters: int(next() % (MaxClusters + 1)), // 0..4: 0 is invalid
	}
	nsubs := int(next() % 3) // 0..2: 0 is invalid
	for s := 0; s < nsubs; s++ {
		cfg.Homes = append(cfg.Homes, int(next()%(MaxClusters+1))-1) // -1..3
	}
	nops := int(next() % 6) // 0..5: 0 is invalid
	slot := 0
	for i := 0; i < nops; i++ {
		b := next()
		op := Op{
			Cluster: int(b % MaxClusters),
			Kind:    OpKind(b >> 7),
			Origin:  -1,
		}
		if nsubs > 0 {
			op.Sub = int(b>>2) % (nsubs + 1) // may exceed the last subblock
		}
		if b&0x40 != 0 && i > 0 {
			slot++
		}
		op.Slot = slot
		if b&0x20 != 0 && i > 0 {
			op.Origin = int(b) % i // replica link; Validate vets the group shape
		}
		cfg.Ops = append(cfg.Ops, op)
	}
	flags := next()
	cfg.ABEntries = int(flags%3) * 2 // 0, 2 or 4 lines
	cfg.ABAssoc = 1 + int(flags>>2)%2
	cfg.AdversarialFlush = flags&0x10 != 0
	cfg.DisableABInvalidate = flags&0x20 != 0
	cfg.MaxStates = fuzzMaxStates
	cfg.MaxTransitions = fuzzMaxTransitions
	return cfg
}

// FuzzMCConfig holds the checker to its contract on arbitrary bounded
// configurations: Validate never panics; on every valid configuration
// Check terminates within budget or degrades to *BudgetError, is
// byte-deterministic across runs, reaches the same verdict with symmetry
// reduction on and off, and any counterexample it reports replays to the
// identical violation.
func FuzzMCConfig(f *testing.F) {
	// Shapes of the canonical configurations plus a few degenerate ones.
	f.Add([]byte{2, 1, 1, 3, 0x80, 0x40, 0x40, 0x12})          // mdc-chain-like: L/S/L, adversarial flush + toggle room
	f.Add([]byte{2, 1, 0, 2, 0x80, 0xE1, 0x11})                // replica store pair
	f.Add([]byte{3, 1, 0, 4, 1, 2, 0x41, 0x42, 0x12})          // read sharing across two slots
	f.Add([]byte{2, 2, 0, 1, 3, 0x84, 0x44, 0x31})             // two subblocks, mixed kinds
	f.Add([]byte{0})                                           // invalid: zero clusters
	f.Add([]byte{2, 0})                                        // invalid: no subblocks
	f.Add([]byte{2, 1, 5, 1, 0})                               // invalid: home out of range
	f.Add([]byte{4, 2, 0, 1, 5, 0x80, 0x41, 0x42, 0x43, 0xFF}) // wide, all knobs

	f.Fuzz(func(t *testing.T, data []byte) {
		cfg := decodeConfig(data)
		if err := cfg.Validate(); err != nil {
			return // the gate rejected it; that is a fine outcome
		}
		ctx := context.Background()
		res1, err1 := Check(ctx, cfg)
		res2, err2 := Check(ctx, cfg)
		if (err1 == nil) != (err2 == nil) || !reflect.DeepEqual(res1, res2) {
			t.Fatalf("nondeterministic check:\nrun1 %v (%v)\nrun2 %v (%v)", res1, err1, res2, err2)
		}
		if err1 != nil {
			var be *BudgetError
			if !errors.Is(err1, ErrBudget) || !errors.As(err1, &be) {
				t.Fatalf("check failed with a non-budget error: %v", err1)
			}
			var be2 *BudgetError
			errors.As(err2, &be2)
			if *be != *be2 {
				t.Fatalf("budget degradation nondeterministic: %+v vs %+v", be, be2)
			}
		}
		if res1 != nil && res1.Counterexample != nil {
			v, rerr := res1.Counterexample.Replay(cfg, nil)
			if rerr != nil {
				t.Fatalf("counterexample does not replay: %v", rerr)
			}
			if v == nil || *v != res1.Counterexample.Violation {
				t.Fatalf("replayed violation %v differs from reported %v", v, res1.Counterexample.Violation)
			}
		}

		// Differential: the verdict must not depend on symmetry reduction.
		// (Comparable only when both explorations finish within budget —
		// the reduced space can fit where the full one exhausts.)
		nosym := *cfg
		nosym.DisableSymmetry = true
		res3, err3 := Check(ctx, &nosym)
		if err1 == nil && err3 == nil && res1.OK() != res3.OK() {
			t.Fatalf("symmetry reduction changed the verdict: sym=%v nosym=%v", res1, res3)
		}
		if err1 == nil && err3 == nil && !res1.OK() &&
			res1.Counterexample.Violation.Invariant != res3.Counterexample.Violation.Invariant {
			t.Fatalf("symmetry reduction changed the violated invariant: %v vs %v",
				res1.Counterexample.Violation, res3.Counterexample.Violation)
		}
	})
}
