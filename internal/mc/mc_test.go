package mc

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"vliwcache/internal/obs"
)

// TestMCSmoke pins the canonical configurations' exact exploration
// profile: the checker is deterministic, so states, transitions, depth
// and automorphism-group size are golden values. A change here means the
// model (or its canonicalization) changed behavior — which must be
// deliberate.
func TestMCSmoke(t *testing.T) {
	want := map[string]Result{
		"mdc-chain":        {States: 32, Transitions: 56, Depth: 9, Automorphisms: 1},
		"ddgt-replication": {States: 18, Transitions: 27, Depth: 8, Automorphisms: 1},
		"read-sharing":     {States: 104, Transitions: 277, Depth: 13, Automorphisms: 2},
	}
	ck := NewChecker()
	for _, cfg := range CanonicalConfigs() {
		res, err := ck.Check(context.Background(), cfg)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		if !res.OK() {
			t.Fatalf("%s: unexpected violation:\n%s", cfg.Name, res.Counterexample)
		}
		w := want[cfg.Name]
		if res.States != w.States || res.Transitions != w.Transitions ||
			res.Depth != w.Depth || res.Automorphisms != w.Automorphisms {
			t.Errorf("%s: got %v, want states=%d transitions=%d depth=%d autos=%d",
				cfg.Name, res, w.States, w.Transitions, w.Depth, w.Automorphisms)
		}
	}
}

// TestBudgetExhaustion: budgets degrade to a typed partial-coverage
// error, never a panic and never a silent pass.
func TestBudgetExhaustion(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  func() *Config
	}{
		{"states", func() *Config { c := ReadSharing(); c.MaxStates = 5; return c }},
		{"transitions", func() *Config { c := ReadSharing(); c.MaxTransitions = 7; return c }},
	} {
		cfg := tc.cfg()
		res, err := Check(context.Background(), cfg)
		if err == nil {
			t.Fatalf("%s: budget did not trip (%v)", tc.name, res)
		}
		if !errors.Is(err, ErrBudget) {
			t.Fatalf("%s: err = %v, want ErrBudget", tc.name, err)
		}
		var be *BudgetError
		if !errors.As(err, &be) {
			t.Fatalf("%s: err %T does not unwrap to *BudgetError", tc.name, err)
		}
		if res == nil {
			t.Fatalf("%s: no partial result alongside the budget error", tc.name)
		}
		if be.States != res.States || be.Transitions != res.Transitions {
			t.Errorf("%s: coverage mismatch: error %+v vs result %v", tc.name, be, res)
		}
		if be.Frontier <= 0 {
			t.Errorf("%s: budget error reports no unexplored frontier: %+v", tc.name, be)
		}
		if res.Counterexample != nil {
			t.Errorf("%s: partial exploration of a passing config found a violation", tc.name)
		}
	}
}

// TestSymmetryReduction: the reader-swap automorphism of read-sharing
// folds the state space, and the verdict does not depend on the
// reduction.
func TestSymmetryReduction(t *testing.T) {
	sym, err := Check(context.Background(), ReadSharing())
	if err != nil {
		t.Fatal(err)
	}
	nosym := ReadSharing()
	nosym.DisableSymmetry = true
	full, err := Check(context.Background(), nosym)
	if err != nil {
		t.Fatal(err)
	}
	if sym.Automorphisms != 2 || full.Automorphisms != 1 {
		t.Errorf("automorphisms = %d/%d, want 2 with reduction and 1 without",
			sym.Automorphisms, full.Automorphisms)
	}
	if sym.States >= full.States {
		t.Errorf("symmetry reduction did not reduce: %d states with, %d without", sym.States, full.States)
	}
	if sym.OK() != full.OK() {
		t.Errorf("verdict depends on symmetry reduction: %v vs %v", sym.OK(), full.OK())
	}
}

// TestDeterminism: the same configuration explores identically — counts,
// counterexample steps and the replayed event stream — across runs,
// across fresh and reused checkers. make race runs this under the race
// detector.
func TestDeterminism(t *testing.T) {
	bug := MDCChain()
	bug.Name = "mdc-chain-pr2"
	bug.DisableABInvalidate = true
	shared := NewChecker()
	var first *Result
	var firstEvents []obs.Event
	for i := 0; i < 3; i++ {
		ck := shared
		if i == 1 {
			ck = NewChecker() // a fresh checker must agree with a reused one
		}
		res, err := ck.Check(context.Background(), bug)
		if err != nil {
			t.Fatal(err)
		}
		if res.OK() {
			t.Fatal("PR 2 configuration did not produce a counterexample")
		}
		ev := res.Counterexample.Events()
		if first == nil {
			first, firstEvents = res, ev
			continue
		}
		if !reflect.DeepEqual(res, first) {
			t.Errorf("run %d: result diverged:\n got %v\nwant %v", i, res, first)
		}
		if !reflect.DeepEqual(ev, firstEvents) {
			t.Errorf("run %d: replayed event stream diverged", i)
		}
	}
	for i := 0; i < 2; i++ { // passing configs too
		res, err := shared.Check(context.Background(), MDCChain())
		if err != nil || !res.OK() {
			t.Fatalf("mdc-chain: %v %v", res, err)
		}
		if res.States != 32 || res.Transitions != 56 {
			t.Errorf("run %d: mdc-chain drifted: %v", i, res)
		}
	}
}

// TestDDGTAntiDependence records a genuine checker finding (see
// EXPERIMENTS.md): a load issued before a replicated store group, fetching
// the subblock from another cluster, races the home instance's bank write
// under unbounded request delay. The schedule must order the store group
// after such loads (or pad the anti-dependence); the flow-only canonical
// configuration does, this variant deliberately does not.
func TestDDGTAntiDependence(t *testing.T) {
	cfg := &Config{
		Name:     "ddgt-antidep",
		Clusters: 2,
		Homes:    []int{0},
		Ops: []Op{
			{Cluster: 1, Kind: Load, Sub: 0, Slot: 0, Origin: -1}, // in-flight fetch...
			{Cluster: 0, Kind: Store, Sub: 0, Slot: 1, Origin: 1}, // ...races the home write
			{Cluster: 1, Kind: Store, Sub: 0, Slot: 1, Origin: 1},
		},
		ABEntries: 2,
		ABAssoc:   2,
	}
	res, err := Check(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() {
		t.Fatal("expected the anti-dependence race to violate serialization")
	}
	if got := res.Counterexample.Violation.Invariant; got != InvSerialization {
		t.Errorf("violated invariant = %s, want %s", got, InvSerialization)
	}
}

// TestConfigValidate rejects malformed configurations.
func TestConfigValidate(t *testing.T) {
	base := func() *Config { return MDCChain() }
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"no clusters", func(c *Config) { c.Clusters = 0 }},
		{"too many clusters", func(c *Config) { c.Clusters = MaxClusters + 1 }},
		{"no subblocks", func(c *Config) { c.Homes = nil }},
		{"bad home", func(c *Config) { c.Homes = []int{7} }},
		{"no ops", func(c *Config) { c.Ops = nil }},
		{"bad op cluster", func(c *Config) { c.Ops[0].Cluster = 9 }},
		{"bad op sub", func(c *Config) { c.Ops[0].Sub = 3 }},
		{"slot gap", func(c *Config) { c.Ops[2].Slot = 5 }},
		{"first slot nonzero", func(c *Config) { for i := range c.Ops { c.Ops[i].Slot++ } }},
		{"assoc mismatch", func(c *Config) { c.ABAssoc = 3 }},
		{"negative budget", func(c *Config) { c.MaxStates = -1 }},
		{"origin not a store group", func(c *Config) { c.Ops[2].Origin = 0 }},
		{"origin in the future", func(c *Config) { c.Ops[0].Origin = 2 }},
	}
	for _, tc := range cases {
		cfg := base()
		tc.mut(cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted an invalid config", tc.name)
		}
	}
	for _, cfg := range CanonicalConfigs() {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
	}
}

// TestContextCancel: a canceled context aborts cleanly.
func TestContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Check(ctx, ReadSharing())
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("got (%v, %v), want context.Canceled", res, err)
	}
}
