package mc

import (
	"context"
	"errors"
	"fmt"
)

// ErrBudget is the sentinel wrapped by every BudgetError, so callers can
// errors.Is(err, mc.ErrBudget) without caring which bound tripped.
var ErrBudget = errors.New("mc: exploration budget exhausted")

// BudgetError reports that exploration stopped at its state or transition
// budget. It is a degradation, not a failure: the partial Result returned
// alongside it is sound for every state actually explored, and the error
// carries the coverage the run achieved — how much was seen, how much
// frontier was left unexplored, and how deep the search got.
type BudgetError struct {
	MaxStates      int64 // configured bounds
	MaxTransitions int64
	States         int64 // explored before the budget tripped
	Transitions    int64
	Frontier       int // states enqueued but never expanded
	Depth          int // deepest BFS level reached
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf(
		"mc: exploration budget exhausted: %d/%d states, %d/%d transitions explored (frontier %d unexpanded, depth %d)",
		e.States, e.MaxStates, e.Transitions, e.MaxTransitions, e.Frontier, e.Depth)
}

// Unwrap makes errors.Is(err, ErrBudget) true.
func (e *BudgetError) Unwrap() error { return ErrBudget }

// Result is the outcome of one exhaustive check.
type Result struct {
	// Name echoes the configuration's name.
	Name string
	// States is the number of distinct canonical states reached.
	States int64
	// Transitions is the number of transitions explored.
	Transitions int64
	// Depth is the deepest BFS level expanded (the longest shortest-path).
	Depth int
	// Automorphisms is the symmetry group size used for reduction
	// (1 = identity only).
	Automorphisms int
	// Counterexample is non-nil iff an invariant was violated; it is a
	// minimal-length trace.
	Counterexample *Counterexample
}

// OK reports whether the check passed (no violation found).
func (r *Result) OK() bool { return r != nil && r.Counterexample == nil }

func (r *Result) String() string {
	verdict := "PASS"
	if !r.OK() {
		verdict = "FAIL(" + r.Counterexample.Violation.Invariant + ")"
	}
	return fmt.Sprintf("%s: %s states=%d transitions=%d depth=%d autos=%d",
		r.Name, verdict, r.States, r.Transitions, r.Depth, r.Automorphisms)
}

// Checker runs exhaustive checks, reusing its seen-table and encoding
// buffers across calls (the epoch-cleared-table idiom the simulator's
// runner uses for its per-run maps).
type Checker struct {
	seen    seenTab
	scratch [2][]byte
}

// NewChecker builds a reusable checker.
func NewChecker() *Checker {
	c := &Checker{}
	c.seen.init()
	c.scratch[0] = make([]byte, 0, 256)
	c.scratch[1] = make([]byte, 0, 256)
	return c
}

// Check explores cfg exhaustively. See Checker.Check.
func Check(ctx context.Context, cfg *Config) (*Result, error) {
	return NewChecker().Check(ctx, cfg)
}

// node is one discovered state in the BFS tree: enough to reconstruct
// the (minimal) path from the root via parent pointers.
type node struct {
	parent int32
	step   Step
}

type qent struct {
	id    int32
	depth int32
	st    *state
}

// Check runs a breadth-first exhaustive exploration of cfg's transition
// system, checking every invariant on every reachable state. It returns:
//
//   - (result with nil Counterexample, nil): every reachable state within
//     the budget satisfies the invariants and the search exhausted the
//     state space — a full proof for the bounded configuration;
//   - (result with Counterexample, nil): a violation, with a
//     minimal-length trace;
//   - (partial result, *BudgetError): the budget tripped first; the error
//     carries the explored coverage (errors.Is(err, ErrBudget));
//   - (nil, err): invalid configuration or canceled context.
func (ck *Checker) Check(ctx context.Context, cfg *Config) (*Result, error) {
	m, err := newModel(cfg)
	if err != nil {
		return nil, err
	}
	maxStates, maxTransitions := cfg.MaxStates, cfg.MaxTransitions
	if maxStates == 0 {
		maxStates = DefaultMaxStates
	}
	if maxTransitions == 0 {
		maxTransitions = DefaultMaxTransitions
	}

	res := &Result{Name: cfg.Name, Automorphisms: len(m.autos)}
	if cfg.DisableSymmetry {
		res.Automorphisms = 1
	}
	ck.seen.reset()

	root := m.initial()
	_, fp := m.canonical(root, &ck.scratch)
	ck.seen.insert(fp)
	res.States = 1

	nodes := []node{{parent: -1}}
	queue := []qent{{id: 0, depth: 0, st: root}}

	path := func(id int32, extra *Step) []Step {
		var steps []Step
		for id > 0 {
			steps = append(steps, nodes[id].step)
			id = nodes[id].parent
		}
		for i, j := 0, len(steps)-1; i < j; i, j = i+1, j-1 {
			steps[i], steps[j] = steps[j], steps[i]
		}
		if extra != nil {
			steps = append(steps, *extra)
		}
		return steps
	}
	fail := func(id int32, extra *Step, v *Violation) (*Result, error) {
		res.Counterexample = &Counterexample{Config: cfg, Steps: path(id, extra), Violation: *v}
		return res, nil
	}
	budget := func(qi int) (*Result, error) {
		return res, &BudgetError{
			MaxStates: maxStates, MaxTransitions: maxTransitions,
			States: res.States, Transitions: res.Transitions,
			Frontier: len(queue) - qi, Depth: res.Depth,
		}
	}

	for qi := 0; qi < len(queue); qi++ {
		cur := queue[qi]
		queue[qi].st = nil // expanded states are not revisited; let them go
		if int(cur.depth) > res.Depth {
			res.Depth = int(cur.depth)
		}
		if res.Transitions&0x3FF == 0 && ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if m.terminal(cur.st) {
			if v := m.finalCheck(cur.st.clone(), nil); v != nil {
				return fail(cur.id, nil, v)
			}
			continue
		}
		for _, sp := range m.enumerate(cur.st) {
			if res.Transitions >= maxTransitions {
				return budget(qi)
			}
			res.Transitions++
			succ := cur.st.clone()
			sp := sp
			if v := m.apply(succ, sp, nil); v != nil {
				return fail(cur.id, &sp, v)
			}
			_, fp := m.canonical(succ, &ck.scratch)
			if !ck.seen.insert(fp) {
				continue // already reached (possibly as a symmetric image)
			}
			if res.States >= maxStates {
				return budget(qi)
			}
			res.States++
			nodes = append(nodes, node{parent: cur.id, step: sp})
			queue = append(queue, qent{id: int32(len(nodes) - 1), depth: cur.depth + 1, st: succ})
		}
	}
	return res, nil
}

// seenTab is an open-addressed fingerprint set with O(1) epoch clearing —
// the same table idiom the simulator's runner uses for its pending and
// coherence maps, here keyed by canonical-state fingerprints.
type seenTab struct {
	fps   []uint64
	eps   []uint32
	shift uint
	n     int
	epoch uint32
}

const seenTabMinSize = 1 << 10

func (t *seenTab) init() {
	if t.fps == nil {
		t.alloc(seenTabMinSize)
		t.epoch = 1
	}
}

func (t *seenTab) alloc(n int) {
	t.fps = make([]uint64, n)
	t.eps = make([]uint32, n)
	t.shift = 64 - log2(n)
	t.n = 0
}

// reset invalidates every entry in O(1) by advancing the epoch.
func (t *seenTab) reset() {
	t.epoch++
	t.n = 0
	if t.epoch == 0 { // wrapped: stale epochs could alias, really clear
		clear(t.eps)
		t.epoch = 1
	}
}

// insert adds fp, reporting whether it was absent.
func (t *seenTab) insert(fp uint64) bool {
	if t.n >= len(t.fps)-len(t.fps)/4 {
		t.grow()
	}
	i := (fp * fibMult) >> t.shift
	for t.eps[i] == t.epoch {
		if t.fps[i] == fp {
			return false
		}
		i = (i + 1) & uint64(len(t.fps)-1)
	}
	t.fps[i], t.eps[i] = fp, t.epoch
	t.n++
	return true
}

func (t *seenTab) grow() {
	of, oe, epoch := t.fps, t.eps, t.epoch
	t.alloc(2 * len(of))
	t.epoch = 1
	for i, e := range oe {
		if e == epoch {
			t.insert(of[i])
		}
	}
}

// fibMult is the 64-bit Fibonacci hashing multiplier.
const fibMult = 0x9E3779B97F4A7C15

func log2(n int) uint {
	s := uint(0)
	for 1<<s < n {
		s++
	}
	return s
}
