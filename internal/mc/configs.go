package mc

// Canonical bounded configurations: the shapes the paper's techniques
// must keep coherent, small enough to check exhaustively. These back the
// smoke suite (`make mc-smoke`), the paperbench -mc mode, and the golden
// state/transition counts pinned in the tests.

// MDCChain is the MDC (memory dependent chain) shape: one cluster issues
// load / store / load of one remote subblock, so the whole chain rides
// the bus, the pending-fetch combining logic, and the Attraction Buffer.
// With DisableABInvalidate set this exact configuration rediscovers the
// PR 2 bug: the store conflicting with the lead load's pending fetch
// leaves the eagerly-inserted copy visible, phantom-writes it, and the
// delayed lead request then serializes after the store.
func MDCChain() *Config {
	return &Config{
		Name:     "mdc-chain",
		Clusters: 2,
		Homes:    []int{1}, // the chain's cluster 0 is remote from the data
		Ops: []Op{
			{Cluster: 0, Kind: Load, Sub: 0, Slot: 0, Origin: -1},
			{Cluster: 0, Kind: Store, Sub: 0, Slot: 1, Origin: -1},
			{Cluster: 0, Kind: Load, Sub: 0, Slot: 2, Origin: -1},
		},
		ABEntries:        2,
		ABAssoc:          2,
		AdversarialFlush: true,
	}
}

// DDGTReplication is the DDGT (data dependent graph transformation)
// shape: a store replicated across both clusters — the home instance
// writes the bank, the nullified replica refreshes its cluster's copy —
// followed by two loads in the non-home cluster that exercise the fetch,
// requester-side combining, and the Attraction Buffer fill. The flow-only
// ordering (store group first) is deliberate: a load issued before the
// replicated store genuinely races the home instance's bank write under
// unbounded request delay, a checker finding recorded in EXPERIMENTS.md.
func DDGTReplication() *Config {
	return &Config{
		Name:     "ddgt-replication",
		Clusters: 2,
		Homes:    []int{0},
		Ops: []Op{
			{Cluster: 0, Kind: Store, Sub: 0, Slot: 0, Origin: 0},
			{Cluster: 1, Kind: Store, Sub: 0, Slot: 0, Origin: 0},
			{Cluster: 1, Kind: Load, Sub: 0, Slot: 1, Origin: -1},
			{Cluster: 1, Kind: Load, Sub: 0, Slot: 2, Origin: -1},
		},
		ABEntries:        2,
		ABAssoc:          2,
		AdversarialFlush: true,
	}
}

// ReadSharing is the symmetric read-sharing shape: two non-home clusters
// each load the same subblock twice. Swapping the two reader clusters is
// a configuration automorphism, so symmetry reduction folds the state
// space roughly in half — the property TestSymmetryReduction pins.
func ReadSharing() *Config {
	return &Config{
		Name:     "read-sharing",
		Clusters: 3,
		Homes:    []int{0},
		Ops: []Op{
			{Cluster: 1, Kind: Load, Sub: 0, Slot: 0, Origin: -1},
			{Cluster: 2, Kind: Load, Sub: 0, Slot: 0, Origin: -1},
			{Cluster: 1, Kind: Load, Sub: 0, Slot: 1, Origin: -1},
			{Cluster: 2, Kind: Load, Sub: 0, Slot: 1, Origin: -1},
		},
		ABEntries:        2,
		ABAssoc:          2,
		AdversarialFlush: true,
	}
}

// CanonicalConfigs returns the configurations paperbench -mc and the
// smoke suite check, in reporting order.
func CanonicalConfigs() []*Config {
	return []*Config{MDCChain(), DDGTReplication(), ReadSharing()}
}
