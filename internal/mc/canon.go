package mc

import (
	"vliwcache/internal/arch"
	"vliwcache/internal/cache"
)

// Canonicalization and symmetry reduction.
//
// Two states are equivalent when one is the image of the other under a
// configuration automorphism: a pair of permutations (π over clusters,
// σ over subblocks) that maps the static structure — homes, the program's
// slots/kinds/origins, Attraction Buffer set placement, and the
// program-order semantics (prog identities and load expectations) — onto
// itself. The checker encodes every state under every automorphism and
// keeps the lexicographically smallest byte string as the canonical form;
// states are deduplicated by a 64-bit FNV-1a fingerprint of that string
// (hash compaction, the standard explicit-state trade: a fingerprint
// collision could merge two distinct states, with probability ~n²/2⁶⁵ for
// n explored states).

// autoPerm is one configuration automorphism, with the forward maps the
// filter derived and the inverse maps the encoder iterates with.
type autoPerm struct {
	clus []int8  // cluster c -> image cluster π(c)
	sub  []int8  // subblock s -> image subblock σ(s)
	op   []int16 // op i -> image op (the op at π(cluster), same slot)
	id   []int16 // program identity p -> image identity prog[op[p]]

	clusInv []int8
	subInv  []int8
}

// automorphisms enumerates the configuration's automorphism group by
// filtering all (π, σ) pairs — at most 24×24 for the bounded limits. The
// identity is always autos[0].
func (m *model) automorphisms() []autoPerm {
	cfg := m.cfg
	var autos []autoPerm
	var abGeom *cache.AttractionBuffer
	if cfg.ABEntries > 0 {
		abGeom = cache.NewAttractionBuffer(cfg.ABEntries, cfg.ABAssoc)
	}
	for _, pi := range permutations(m.nclus) {
		for _, sigma := range permutations(m.nsubs) {
			if a := m.checkAuto(pi, sigma, abGeom); a != nil {
				autos = append(autos, *a)
			}
		}
	}
	return autos
}

// checkAuto decides whether (π, σ) is a configuration automorphism and, if
// so, builds the full autoPerm. Every condition below is required for the
// image of a reachable state to be reachable with an isomorphic future:
//
//   - homes commute: home(σ(s)) == π(home(s));
//   - AB placement commutes: σ(s)'s subblock hashes to the same set as s;
//   - the program maps onto itself slot-wise: the image of op i — same
//     slot, cluster π(cluster(i)) — exists with the same kind, subblock
//     σ(sub(i)), and a consistently mapped replica origin;
//   - program-order semantics are preserved: the induced identity map is
//     strictly monotone (serialization compares identities with <), every
//     load's expected store maps to the image load's expected store, and
//     each subblock's program-last store maps across σ.
func (m *model) checkAuto(pi, sigma []int8, abGeom *cache.AttractionBuffer) *autoPerm {
	cfg := m.cfg
	for s, h := range cfg.Homes {
		if cfg.Homes[sigma[s]] != int(pi[h]) {
			return nil
		}
		if abGeom != nil && abGeom.SetIndex(cfg.subID(s)) != abGeom.SetIndex(cfg.subID(int(sigma[s]))) {
			return nil
		}
	}
	opMap := make([]int16, len(cfg.Ops))
	for i, o := range cfg.Ops {
		j := -1
		for k, ok := range cfg.Ops {
			if ok.Slot == o.Slot && ok.Cluster == int(pi[o.Cluster]) {
				j = k
				break
			}
		}
		if j < 0 {
			return nil
		}
		img := cfg.Ops[j]
		if img.Kind != o.Kind || img.Sub != int(sigma[o.Sub]) || (img.Origin < 0) != (o.Origin < 0) {
			return nil
		}
		opMap[i] = int16(j)
	}
	for i, o := range cfg.Ops {
		if o.Origin >= 0 && int(cfg.Ops[opMap[i]].Origin) != int(opMap[o.Origin]) {
			return nil
		}
	}
	// Induced identity map. Program-order comparisons are all
	// per-subblock (serialize compares a store against every earlier
	// access of its subblock and a load against its stores), so the map
	// must preserve relative order on every comparable pair: same
	// subblock, at least one store. Pure load-load pairs are never
	// ordered by any check and may swap — that freedom is exactly what
	// lets symmetric read sharing collapse.
	idMap := make([]int16, len(cfg.Ops))
	for p := range idMap {
		idMap[p] = m.prog[opMap[p]]
	}
	for s := range cfg.Homes {
		var ids []int
		for i, o := range cfg.Ops {
			if int(m.prog[i]) == i && o.Sub == s {
				ids = append(ids, i)
			}
		}
		for x := 0; x < len(ids); x++ {
			for y := x + 1; y < len(ids); y++ {
				p, q := ids[x], ids[y]
				if cfg.Ops[p].Kind == Store || cfg.Ops[q].Kind == Store {
					if idMap[p] >= idMap[q] {
						return nil
					}
				}
			}
		}
	}
	for i, o := range cfg.Ops {
		if o.Kind == Load && m.want[opMap[i]] != mapVer(m.want[i], idMap) {
			return nil
		}
	}
	for s := range cfg.Homes {
		if m.last[sigma[s]] != mapVer(m.last[s], idMap) {
			return nil
		}
	}
	a := &autoPerm{
		clus: append([]int8(nil), pi...), sub: append([]int8(nil), sigma...),
		op: opMap, id: idMap,
		clusInv: invert(pi), subInv: invert(sigma),
	}
	return a
}

// mapVer maps a version value through an automorphism's identity map:
// store identities remap, in-flight links follow the op map (the caller
// passes a.id or a.op appropriately via mapVerFull), sentinels pass
// through.
func mapVer(v int16, idMap []int16) int16 {
	if v >= 0 {
		return idMap[v]
	}
	return v
}

// mapVerFull additionally follows in-flight links through the op map.
func (a *autoPerm) mapVerFull(v int16) int16 {
	switch {
	case v >= 0:
		return a.id[v]
	case v <= verFlightBase:
		return encodeFlight(int(a.op[decodeFlight(v)]))
	}
	return v
}

func (a *autoPerm) mapOp(v int16) int16 {
	if v < 0 {
		return v
	}
	return a.op[v]
}

func permutations(n int) [][]int8 {
	base := make([]int8, n)
	for i := range base {
		base[i] = int8(i)
	}
	var out [][]int8
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			out = append(out, append([]int8(nil), base...))
			return
		}
		// Lexicographic-first order keeps the identity at index 0.
		for i := k; i < n; i++ {
			base[k], base[i] = base[i], base[k]
			rec(k + 1)
			base[k], base[i] = base[i], base[k]
		}
		// The swap generation above is not fully lexicographic beyond the
		// first level, but the identity (no swaps) is always emitted first,
		// which is all the callers rely on.
	}
	rec(0)
	return out
}

func invert(p []int8) []int8 {
	inv := make([]int8, len(p))
	for i, v := range p {
		inv[v] = int8(i)
	}
	return inv
}

// encByte packs a small signed model value (identities, sentinels,
// in-flight links; range -(2+MaxOps) .. MaxOps) into one byte.
func encByte(v int16) byte { return byte(v + 16) }

const (
	encSep     = byte(0xFE) // section / queue separator
	encInvalid = byte(0xFF) // invalid AB way
)

// encode appends st's byte encoding under automorphism a to buf. The
// encoding is a total description of the modeled machine: issue cursor,
// per-subblock bank state, per-cluster pending and copy-version tables,
// Attraction Buffer contents with lastUse reduced to per-set LRU ranks
// (the absolute clock never matters, only the relative recency the victim
// scan compares), and in-flight messages — requests per source cluster in
// FIFO order, replies sorted by op. Counters are deliberately excluded:
// they never influence behavior.
func (m *model) encode(st *state, a *autoPerm, buf []byte) []byte {
	buf = append(buf, byte(st.next))
	for t := 0; t < m.nsubs; t++ {
		s := int(a.subInv[t])
		buf = append(buf, encByte(a.mapVerFull(st.bankVer[s])),
			encByte(a.mapVerFull(st.maxAny[s])), encByte(a.mapVerFull(st.maxSto[s])))
	}
	for tc := 0; tc < m.nclus; tc++ {
		c := int(a.clusInv[tc])
		for ts := 0; ts < m.nsubs; ts++ {
			s := int(a.subInv[ts])
			ps := c*m.nsubs + s
			buf = append(buf, encByte(a.mapOp(st.pend[ps])), encByte(a.mapVerFull(st.copyVer[ps])))
		}
	}
	if st.abs != nil {
		for tc := 0; tc < m.nclus; tc++ {
			buf = m.encodeAB(st, int(a.clusInv[tc]), a, buf)
		}
	}
	// Requests: per image cluster, source FIFO order.
	for tc := 0; tc < m.nclus; tc++ {
		c := int(a.clusInv[tc])
		for i := range st.msgs {
			mg := &st.msgs[i]
			if mg.stage != stageReq || int(mg.cluster) != c {
				continue
			}
			kind := byte(0)
			if mg.store {
				kind = 1
			}
			buf = append(buf, encByte(a.mapOp(mg.op)), kind, byte(a.sub[mg.sub]))
			buf = m.encodeObs(mg.obs, a, buf)
		}
		buf = append(buf, encSep)
	}
	// Replies: unordered; sort by image op for a canonical listing.
	var reps [MaxOps]int16
	nr := 0
	for i := range st.msgs {
		if st.msgs[i].stage == stageRep {
			reps[nr] = int16(i)
			nr++
		}
	}
	for x := 1; x < nr; x++ { // insertion sort by mapped op
		for y := x; y > 0 && a.mapOp(st.msgs[reps[y]].op) < a.mapOp(st.msgs[reps[y-1]].op); y-- {
			reps[y], reps[y-1] = reps[y-1], reps[y]
		}
	}
	for x := 0; x < nr; x++ {
		mg := &st.msgs[reps[x]]
		buf = append(buf, encByte(a.mapOp(mg.op)), encByte(a.mapVerFull(mg.capVer)))
	}
	return buf
}

// encodeAB appends cluster c's Attraction Buffer in storage order (the
// victim scan prefers the lowest invalid way, so way positions are kept),
// with lastUse compressed to the line's LRU rank within its set.
func (m *model) encodeAB(st *state, c int, a *autoPerm, buf []byte) []byte {
	type lineEnc struct {
		set, way int
		sub      int8
		valid    bool
		dirty    bool
		lastUse  int64
	}
	var lines [MaxABLines]lineEnc
	n := 0
	st.abs[c].VisitLines(func(set, way int, sub arch.SubblockID, valid, dirty bool, lastUse int64) {
		le := lineEnc{set: set, way: way, valid: valid, dirty: dirty, lastUse: lastUse}
		if valid {
			le.sub = a.sub[int(sub.Block>>5)-1]
		}
		lines[n] = le
		n++
	})
	for i := 0; i < n; i++ {
		if !lines[i].valid {
			buf = append(buf, encInvalid)
			continue
		}
		rank := byte(0) // how many valid lines in the same set are more recent
		for j := 0; j < n; j++ {
			if j != i && lines[j].valid && lines[j].set == lines[i].set && lines[j].lastUse > lines[i].lastUse {
				rank++
			}
		}
		d := byte(0)
		if lines[i].dirty {
			d = 1
		}
		buf = append(buf, byte(lines[i].sub), d, rank)
	}
	return append(buf, encSep)
}

func (m *model) encodeObs(obsList []int16, a *autoPerm, buf []byte) []byte {
	var mapped [MaxOps]int16
	for i, o := range obsList {
		mapped[i] = a.mapOp(o)
	}
	n := len(obsList)
	for x := 1; x < n; x++ {
		for y := x; y > 0 && mapped[y] < mapped[y-1]; y-- {
			mapped[y], mapped[y-1] = mapped[y-1], mapped[y]
		}
	}
	buf = append(buf, byte(n))
	for i := 0; i < n; i++ {
		buf = append(buf, encByte(mapped[i]))
	}
	return buf
}

// canonical returns the lexicographically smallest encoding of st over
// the automorphism group (or the identity encoding when symmetry
// reduction is disabled) and its 64-bit FNV-1a fingerprint. The scratch
// buffers live in the Checker so steady-state exploration does not
// allocate per state.
func (m *model) canonical(st *state, scratch *[2][]byte) ([]byte, uint64) {
	autos := m.autos
	if m.cfg.DisableSymmetry {
		autos = autos[:1]
	}
	scratch[0] = m.encode(st, &autos[0], scratch[0][:0])
	for i := 1; i < len(autos); i++ {
		scratch[1] = m.encode(st, &autos[i], scratch[1][:0])
		if lessBytes(scratch[1], scratch[0]) {
			scratch[0], scratch[1] = scratch[1], scratch[0]
		}
	}
	return scratch[0], fnv64(scratch[0])
}

func lessBytes(a, b []byte) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

func fnv64(b []byte) uint64 {
	h := uint64(0xcbf29ce484222325)
	for _, c := range b {
		h ^= uint64(c)
		h *= 0x100000001b3
	}
	return h
}
