package mc_test

// The chaos-seed round trip: the model checker's PR 2 counterexample
// names an interleaving — hold the lead load's bus request in flight
// across the conflicting store's issue — and a fault.Script realizes
// exactly that delay in the cycle-level simulator. The timed machine must
// agree with the untimed model: violations with the fix reverted, none
// with the fix in force, under the identical fault plan.

import (
	"context"
	"testing"

	"vliwcache/internal/arch"
	"vliwcache/internal/core"
	"vliwcache/internal/fault"
	"vliwcache/internal/ir"
	"vliwcache/internal/mc"
	"vliwcache/internal/sched"
	"vliwcache/internal/sim"
)

// pr2Loop is the timed analog of mc.MDCChain: load / store / load of one
// subblock, all in a cluster remote from the subblock's home. Stride 32
// walks a block per iteration so the lead load misses (and re-attracts)
// every time.
func pr2Loop(t *testing.T, cfg arch.Config) *sched.Schedule {
	t.Helper()
	b := ir.NewBuilder("pr2")
	b.Symbol("a", 0x10000, 1<<20)
	b.Trip(40, 1)
	live := b.Reg()
	v := b.Load("lead", ir.AddrExpr{Base: "a", Stride: 32, Size: 4})
	b.Store("st", ir.AddrExpr{Base: "a", Stride: 32, Size: 4}, live)
	w := b.Load("trail", ir.AddrExpr{Base: "a", Stride: 32, Size: 4})
	b.Arith("use", ir.KindAdd, v, w)
	loop := b.Loop()
	plan, err := core.Prepare(loop, core.PolicyMDC, cfg.NumClusters)
	if err != nil {
		t.Fatal(err)
	}
	// Home of every iteration's subblock is cluster 0; run the chain
	// remotely so the whole counterexample path (bus, pending, AB) is live.
	plan.ForceCluster = map[int]int{0: 2, 1: 2, 2: 2}
	sc, err := sched.Run(plan, sched.Options{Arch: cfg, Heuristic: sched.MinComs})
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func TestCounterexampleChaosSeedRoundTrip(t *testing.T) {
	// The counterexample's delay profile: op 0's request held across one
	// later issue. Size the timed hold generously past any schedule gap.
	res, err := mc.Check(context.Background(), func() *mc.Config {
		c := mc.MDCChain()
		c.DisableABInvalidate = true
		return c
	}())
	if err != nil || res.OK() {
		t.Fatalf("model checker produced no counterexample: %v %v", res, err)
	}
	delayed := res.Counterexample.DelayedRequests()
	if delayed[0] == 0 {
		t.Fatalf("counterexample does not delay the lead request: %v", delayed)
	}

	script := &fault.Script{Bus: map[fault.ScriptKey]int64{}}
	for iter := int64(5); iter < 15; iter++ {
		script.Bus[fault.ScriptKey{ID: 0, Iter: iter}] = int64(delayed[0]) * 64
	}

	cfg := arch.Default().WithAttractionBuffers(16)
	sc := pr2Loop(t, cfg)

	buggy, err := sim.Run(sc, sim.Options{
		CheckCoherence:      true,
		DisableABInvalidate: true,
		NewFaults:           script.Faults(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if buggy.Violations == 0 {
		t.Errorf("chaos seed did not reproduce the counterexample in the timed simulator (faults=%d)", buggy.InjectedFaults)
	}

	fixed, err := sim.Run(sc, sim.Options{
		CheckCoherence: true,
		NewFaults:      script.Faults(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if fixed.Violations != 0 {
		t.Errorf("fixed simulator violates under the same fault plan: %d", fixed.Violations)
	}
}
