// Package mc is an explicit-state model checker for the coherence
// substrate: it exhaustively enumerates the interleavings a small bounded
// configuration of cache banks, Attraction Buffers and memory buses can
// produce, and checks the paper's coherence invariants as safety
// properties on every reachable state.
//
// The model is the untimed abstraction of the cycle-level simulator
// (internal/sim). Issue order is fixed — the machine is a lockstep VLIW,
// so all clusters issue a slot's operations simultaneously and slots
// issue in schedule order — while everything the compiler cannot see is
// nondeterministic: when each in-flight bus request reaches its home
// bank (constrained only by the per-cluster FIFO the arbiter guarantees,
// see internal/bus), when each reply lands, and when an Attraction
// Buffer spontaneously loses its copies (adversarial replacement). A
// state therefore abstracts times away entirely and a path through the
// transition system is one possible serialization of the timed machine;
// conversely every timed execution, under any fault injection the chaos
// harness can produce, maps to some path. Checking all paths subsumes
// chaos testing's sampled ones on these bounded configurations.
//
// Checked invariants (see DESIGN.md §13 for the exact statements):
//
//   - serialization: aliased accesses reach their subblock's
//     serialization point in program order — precisely the property
//     sim's coherence checker tests on timed runs;
//   - stale-value: every load observes the value of the program-latest
//     store ordered before it (Attraction Buffer copies are never
//     stale-visible — the bug class PR 2's chaos suite caught);
//   - single-owner: a dirty Attraction Buffer copy of a subblock
//     excludes every other cluster's copy (MDC confines modified data
//     to one cluster);
//   - lost-update: after the final buffer flush the banks hold the
//     program-last store of every subblock.
//
// Deliberate model simplifications, documented rather than hidden: cache
// modules are abstracted away (hit/miss affects timing only, and the
// model has no time), local-miss pending entries are not modeled (a
// local access serializes at issue either way), and a reply fill never
// clobbers a copy a later store already updated (the simulator carries
// no data, so its Insert-refresh has the same effect).
package mc

import (
	"fmt"

	"vliwcache/internal/arch"
)

// OpKind is the kind of a modeled memory operation.
type OpKind uint8

const (
	// Load reads one subblock.
	Load OpKind = iota
	// Store writes one subblock.
	Store
)

func (k OpKind) String() string {
	if k == Store {
		return "store"
	}
	return "load"
}

// Op is one memory operation of the modeled program. Operations sharing
// a Slot issue simultaneously (one VLIW word); a store replicated by DDGT
// appears as one instance per cluster, all sharing the group's Origin.
type Op struct {
	// Cluster issues the operation.
	Cluster int
	// Kind is Load or Store.
	Kind OpKind
	// Sub indexes Config.Homes: which subblock the operation touches.
	Sub int
	// Slot is the issue slot. Slots are issued in increasing order; ops
	// within a slot issue in the same cycle (at most one per cluster).
	Slot int
	// Origin is -1 for a plain operation. Store-replication (DDGT)
	// instances of one original store share the group leader's op index
	// here: only the instance in the home cluster performs the store,
	// the others are nullified (refreshing their cluster's Attraction
	// Buffer copy). The group's program-order identity is Origin.
	Origin int
}

// Limits keeping configurations bounded: the checker is exhaustive, so
// these are small by design (the ISSUE's canonical configurations use 2
// clusters, 1 subblock and 3-4 operations).
const (
	MaxClusters = 4
	MaxSubs     = 4
	MaxOps      = 10
	MaxABLines  = 4
)

// Default exploration budgets (see Config.MaxStates/MaxTransitions).
const (
	DefaultMaxStates      = 1 << 20
	DefaultMaxTransitions = 1 << 23
)

// Config is one bounded model-checking problem: the machine shape, the
// program, and the exploration budget. Validate before Check (Check
// validates too).
type Config struct {
	// Name labels the configuration in results and reports.
	Name string
	// Clusters is the number of clusters (1..MaxClusters).
	Clusters int
	// Homes maps each modeled subblock to its home cluster.
	Homes []int
	// Ops is the program in issue order (sorted by Slot; within a slot,
	// ascending Cluster).
	Ops []Op
	// ABEntries/ABAssoc give every cluster an Attraction Buffer of that
	// geometry; ABEntries == 0 disables the buffers.
	ABEntries int
	ABAssoc   int
	// AdversarialFlush adds a transition that empties any cluster's
	// Attraction Buffer at any point — the buffer may lose its copies to
	// replacement at any time on real hardware, so a protected program
	// must stay coherent without them.
	AdversarialFlush bool
	// DisableABInvalidate reverts the PR 2 Attraction-Buffer fix in the
	// model, exactly as sim.Options.DisableABInvalidate does in the
	// simulator: a remote store conflicting with a pending fetch leaves
	// the eagerly-inserted copy visible. Exists so the checked-in
	// counterexample regression can rediscover the bug.
	DisableABInvalidate bool
	// DisableSymmetry turns off symmetry reduction (canonicalization
	// still runs with the identity permutation only). Used by the
	// differential fuzz check: the verdict must not depend on it.
	DisableSymmetry bool
	// MaxStates / MaxTransitions bound the exploration; 0 selects the
	// defaults. Exhaustion is not an abort: Check returns the partial
	// Result plus a *BudgetError describing the explored coverage.
	MaxStates      int64
	MaxTransitions int64
}

// Validate checks the configuration's internal consistency.
func (c *Config) Validate() error {
	if c.Clusters < 1 || c.Clusters > MaxClusters {
		return fmt.Errorf("mc: Clusters must be 1..%d, got %d", MaxClusters, c.Clusters)
	}
	if len(c.Homes) < 1 || len(c.Homes) > MaxSubs {
		return fmt.Errorf("mc: need 1..%d subblocks, got %d", MaxSubs, len(c.Homes))
	}
	for s, h := range c.Homes {
		if h < 0 || h >= c.Clusters {
			return fmt.Errorf("mc: subblock %d homed in invalid cluster %d", s, h)
		}
	}
	if len(c.Ops) < 1 || len(c.Ops) > MaxOps {
		return fmt.Errorf("mc: need 1..%d ops, got %d", MaxOps, len(c.Ops))
	}
	if c.ABEntries < 0 || c.ABEntries > MaxABLines {
		return fmt.Errorf("mc: ABEntries must be 0..%d, got %d", MaxABLines, c.ABEntries)
	}
	if c.ABEntries > 0 && (c.ABAssoc < 1 || c.ABEntries%c.ABAssoc != 0) {
		return fmt.Errorf("mc: ABAssoc %d does not divide ABEntries %d", c.ABAssoc, c.ABEntries)
	}
	if c.MaxStates < 0 || c.MaxTransitions < 0 {
		return fmt.Errorf("mc: negative budget")
	}
	slot, lastCluster := 0, -1
	for i, o := range c.Ops {
		if o.Cluster < 0 || o.Cluster >= c.Clusters {
			return fmt.Errorf("mc: op %d in invalid cluster %d", i, o.Cluster)
		}
		if o.Sub < 0 || o.Sub >= len(c.Homes) {
			return fmt.Errorf("mc: op %d touches invalid subblock %d", i, o.Sub)
		}
		if o.Kind != Load && o.Kind != Store {
			return fmt.Errorf("mc: op %d has invalid kind %d", i, o.Kind)
		}
		switch {
		case o.Slot == slot+1:
			slot, lastCluster = o.Slot, -1
		case o.Slot != slot:
			return fmt.Errorf("mc: op %d slot %d breaks the contiguous non-decreasing slot order", i, o.Slot)
		}
		if i == 0 && o.Slot != 0 {
			return fmt.Errorf("mc: first op must be in slot 0, got %d", o.Slot)
		}
		if o.Cluster <= lastCluster {
			return fmt.Errorf("mc: op %d: within a slot ops must be in ascending cluster order (one per cluster)", i)
		}
		lastCluster = o.Cluster
		if o.Origin != -1 {
			if o.Origin < 0 || o.Origin >= len(c.Ops) || o.Origin > i {
				return fmt.Errorf("mc: op %d has invalid replica origin %d", i, o.Origin)
			}
			org := c.Ops[o.Origin]
			if o.Kind != Store || org.Kind != Store || org.Origin != o.Origin || org.Sub != o.Sub {
				return fmt.Errorf("mc: op %d: replica group must be stores of one subblock led by their first instance", i)
			}
		}
	}
	return nil
}

// prog returns the program-order identity of op i: the replica group's
// origin for grouped stores, the op's own index otherwise. Identities
// order aliased accesses; the serialization invariant demands the banks
// see them in this order.
func (c *Config) prog(i int) int {
	if o := c.Ops[i]; o.Origin >= 0 {
		return o.Origin
	}
	return i
}

// subID synthesizes the arch.SubblockID the model uses for subblock s, so
// the states can embed the real cache.AttractionBuffer implementation.
// Distinct subblocks get distinct block addresses; the home cluster rides
// along as in the simulator.
func (c *Config) subID(s int) arch.SubblockID {
	return arch.SubblockID{Block: uint64(s+1) << 5, Cluster: c.Homes[s]}
}
