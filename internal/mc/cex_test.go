package mc

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"vliwcache/internal/obs"
)

// pr2Config is the checked-in regression configuration: the canonical MDC
// chain with the PR 2 Attraction-Buffer conflict fix reverted via the
// injected toggle.
func pr2Config() *Config {
	cfg := MDCChain()
	cfg.Name = "mdc-chain-pr2"
	cfg.DisableABInvalidate = true
	return cfg
}

// pr2Steps is the minimal counterexample the checker must rediscover: the
// lead load's bus request is held in flight while the store issues,
// conflicts with the pending fetch, phantom-writes the eagerly-inserted
// (and, with the fix reverted, never invalidated) Attraction Buffer copy
// — serializing the store at issue — and only then does the lead request
// reach the bank, after its program-later store.
var pr2Steps = []Step{
	{Kind: StepIssue, Op: 0},
	{Kind: StepIssue, Op: 1},
	{Kind: StepDeliverReq, Cluster: 0, Op: 0},
}

// pr2Events is the counterexample in its obs-event regression-fixture
// form: the exact stream Counterexample.Events must replay. Cycle is the
// trace step index (the model is untimed); the final KindCoherence event
// with Arg=1 marks the reproduced violation.
var pr2Events = []obs.Event{
	{Kind: obs.KindAccess, Class: -1, Op: 0, Cluster: 0, Cycle: 0},
	{Kind: obs.KindBusTransfer, Class: -1, Op: 0, Cluster: 0, Cycle: 0},
	{Kind: obs.KindAccess, Class: -1, Op: 1, Cluster: 0, Cycle: 1},
	{Kind: obs.KindBankArrival, Class: -1, Op: 1, Cluster: 1, Cycle: 1},
	{Kind: obs.KindABHit, Class: -1, Op: 1, Cluster: 0, Cycle: 1},
	{Kind: obs.KindBankArrival, Class: -1, Op: 0, Cluster: 1, Cycle: 2},
	{Kind: obs.KindCoherence, Class: -1, Op: -1, Cluster: -1, Cycle: 2, Arg: 1},
}

// TestPR2CounterexampleRegression: the checker rediscovers the PR 2
// call-order-visibility bug, minimally, whenever the fix is absent — and
// proves its absence is the cause, because the identical trace replayed
// against the fixed model is violation-free.
func TestPR2CounterexampleRegression(t *testing.T) {
	res, err := Check(context.Background(), pr2Config())
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() {
		t.Fatal("checker failed to rediscover the PR 2 bug with the fix reverted")
	}
	cx := res.Counterexample
	if !reflect.DeepEqual(cx.Steps, pr2Steps) {
		t.Errorf("counterexample drifted from the minimal trace:\n got %v\nwant %v", cx.Steps, pr2Steps)
	}
	v := cx.Violation
	if v.Invariant != InvSerialization || v.Op != 0 || v.Sub != 0 {
		t.Errorf("violation = %+v, want serialization on load 0 / subblock 0", v)
	}

	// The same trace against the fixed model: no violation. The fix keeps
	// the store off the stale copy, so the interleaving is harmless.
	if got, err := cx.Replay(MDCChain(), nil); err != nil || got != nil {
		t.Errorf("trace violates the FIXED model too (v=%v err=%v): the fix is not what prevents it", got, err)
	}
	// And against the bug config it reproduces the identical violation.
	got, err := cx.Replay(pr2Config(), nil)
	if err != nil || got == nil || *got != v {
		t.Errorf("replay did not reproduce the violation: got %v err=%v want %v", got, err, v)
	}

	// With the fix in force, the full state space is clean.
	fixed, err := Check(context.Background(), MDCChain())
	if err != nil {
		t.Fatal(err)
	}
	if !fixed.OK() {
		t.Fatalf("fixed configuration violates:\n%s", fixed.Counterexample)
	}
}

// TestPR2EventFixture: the counterexample's obs-event rendering is the
// pinned golden stream.
func TestPR2EventFixture(t *testing.T) {
	res, err := Check(context.Background(), pr2Config())
	if err != nil || res.OK() {
		t.Fatalf("no counterexample: %v %v", res, err)
	}
	got := res.Counterexample.Events()
	if !reflect.DeepEqual(got, pr2Events) {
		t.Errorf("event fixture drifted:\n got %+v\nwant %+v", got, pr2Events)
	}
}

// TestCounterexampleString: the human rendering names every step and the
// violation.
func TestCounterexampleString(t *testing.T) {
	res, err := Check(context.Background(), pr2Config())
	if err != nil || res.OK() {
		t.Fatalf("no counterexample: %v %v", res, err)
	}
	s := res.Counterexample.String()
	for _, want := range []string{
		"counterexample (3 steps)", "issue slot 0", "issue slot 1",
		"deliver request of op 0", "serialization violation",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering lacks %q:\n%s", want, s)
		}
	}
}

// TestDelayedRequests: the chaos-seed sizing: the trace holds the lead
// load's request across exactly one later issue (the store's).
func TestDelayedRequests(t *testing.T) {
	res, err := Check(context.Background(), pr2Config())
	if err != nil || res.OK() {
		t.Fatalf("no counterexample: %v %v", res, err)
	}
	got := res.Counterexample.DelayedRequests()
	if !reflect.DeepEqual(got, map[int]int{0: 1}) {
		t.Errorf("DelayedRequests = %v, want map[0:1]", got)
	}
}
