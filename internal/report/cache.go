package report

import (
	"encoding/csv"
	"encoding/json"
	"io"
	"strconv"
)

// CacheRecord labels one result-cache counter snapshot for export
// (serving layer, see internal/resultcache). It is a flat copy of the
// cache's Stats so report stays decoupled from the cache package;
// field set and column order are fixed, like every export here.
type CacheRecord struct {
	Name        string `json:"name"`
	Hits        int64  `json:"hits"`
	Misses      int64  `json:"misses"`
	Coalesced   int64  `json:"coalesced"`
	Puts        int64  `json:"puts"`
	Evictions   int64  `json:"evictions"`
	Oversized   int64  `json:"oversized"`
	Entries     int    `json:"entries"`
	Bytes       int64  `json:"bytes"`
	BudgetBytes int64  `json:"budget_bytes"`
}

// WriteCacheJSON serializes cache records as a JSON array.
func WriteCacheJSON(w io.Writer, recs []CacheRecord) error {
	if recs == nil {
		recs = []CacheRecord{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(recs)
}

var cacheHeader = []string{
	"name", "hits", "misses", "coalesced", "puts", "evictions",
	"oversized", "entries", "bytes", "budget_bytes",
}

// WriteCacheCSV serializes cache records as CSV with a fixed header row.
func WriteCacheCSV(w io.Writer, recs []CacheRecord) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(cacheHeader); err != nil {
		return err
	}
	i64 := func(v int64) string { return strconv.FormatInt(v, 10) }
	for _, r := range recs {
		row := []string{
			r.Name, i64(r.Hits), i64(r.Misses), i64(r.Coalesced), i64(r.Puts),
			i64(r.Evictions), i64(r.Oversized), strconv.Itoa(r.Entries),
			i64(r.Bytes), i64(r.BudgetBytes),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
