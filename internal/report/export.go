package report

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"vliwcache/internal/engine"
	"vliwcache/internal/sim"
)

// Machine-readable exports. Every figure and table of the evaluation is
// backed by sim.Stats and engine.Metrics values; these writers serialize
// them (plus chaos-mode fault logs) as JSON and CSV so external tooling
// can consume a run without scraping the ASCII artifacts. Field sets and
// column orders are fixed, so equal inputs produce byte-identical output.

// StatsRecord labels one Stats value for export (a loop, a benchmark
// total, a whole-suite aggregate...).
type StatsRecord struct {
	Name  string
	Stats *sim.Stats
}

// statsView is the flattened projection of sim.Stats: raw counters plus
// the derived quantities the paper reports. NaN can never appear — ratio
// accessors return 0 for empty runs.
type statsView struct {
	Name              string  `json:"name"`
	Iterations        int64   `json:"iterations"`
	Entries           int64   `json:"entries"`
	Cycles            int64   `json:"cycles"`
	ComputeCycles     int64   `json:"compute_cycles"`
	StallCycles       int64   `json:"stall_cycles"`
	TotalAccesses     int64   `json:"total_accesses"`
	LocalHits         int64   `json:"local_hits"`
	RemoteHits        int64   `json:"remote_hits"`
	LocalMisses       int64   `json:"local_misses"`
	RemoteMisses      int64   `json:"remote_misses"`
	Combined          int64   `json:"combined"`
	LocalHitRatio     float64 `json:"local_hit_ratio"`
	ABHits            int64   `json:"ab_hits"`
	ABUpdates         int64   `json:"ab_updates"`
	NullifiedStores   int64   `json:"nullified_stores"`
	CommOps           int64   `json:"comm_ops"`
	Violations        int64   `json:"violations"`
	BusTransfers      int64   `json:"bus_transfers"`
	BusWaitedCycles   int64   `json:"bus_waited_cycles"`
	NextLevelRequests int64   `json:"next_level_requests"`
	PortsWaited       int64   `json:"ports_waited"`
	Evictions         int64   `json:"evictions"`
	Writebacks        int64   `json:"writebacks"`
	ABFlushes         int64   `json:"ab_flushes"`
	ABDirtyWritebacks int64   `json:"ab_dirty_writebacks"`
	InjectedFaults    int64   `json:"injected_faults"`
}

func viewOf(r StatsRecord) statsView {
	s := r.Stats
	return statsView{
		Name:       r.Name,
		Iterations: s.Iterations, Entries: s.Entries,
		Cycles: s.Cycles(), ComputeCycles: s.ComputeCycles, StallCycles: s.StallCycles,
		TotalAccesses: s.TotalAccesses(),
		LocalHits:     s.Accesses[sim.LocalHit], RemoteHits: s.Accesses[sim.RemoteHit],
		LocalMisses: s.Accesses[sim.LocalMiss], RemoteMisses: s.Accesses[sim.RemoteMiss],
		Combined:      s.Accesses[sim.Combined],
		LocalHitRatio: s.LocalHitRatio(),
		ABHits:        s.ABHits, ABUpdates: s.ABUpdates,
		NullifiedStores: s.NullifiedStores, CommOps: s.CommOps, Violations: s.Violations,
		BusTransfers: s.BusTransfers, BusWaitedCycles: s.BusWaitedCycles,
		NextLevelRequests: s.NextLevelRequests, PortsWaited: s.PortsWaited,
		Evictions: s.Evictions, Writebacks: s.Writebacks,
		ABFlushes: s.ABFlushes, ABDirtyWritebacks: s.ABDirtyWritebacks,
		InjectedFaults: s.InjectedFaults,
	}
}

// WriteStatsJSON serializes the records as a JSON array.
func WriteStatsJSON(w io.Writer, recs []StatsRecord) error {
	views := make([]statsView, len(recs))
	for i, r := range recs {
		views[i] = viewOf(r)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(views)
}

var statsHeader = []string{
	"name", "iterations", "entries", "cycles", "compute_cycles", "stall_cycles",
	"total_accesses", "local_hits", "remote_hits", "local_misses", "remote_misses",
	"combined", "local_hit_ratio", "ab_hits", "ab_updates", "nullified_stores",
	"comm_ops", "violations", "bus_transfers", "bus_waited_cycles",
	"next_level_requests", "ports_waited", "evictions", "writebacks",
	"ab_flushes", "ab_dirty_writebacks", "injected_faults",
}

// WriteStatsCSV serializes the records as CSV with a fixed header row.
func WriteStatsCSV(w io.Writer, recs []StatsRecord) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(statsHeader); err != nil {
		return err
	}
	i64 := func(v int64) string { return strconv.FormatInt(v, 10) }
	for _, r := range recs {
		v := viewOf(r)
		row := []string{
			v.Name, i64(v.Iterations), i64(v.Entries), i64(v.Cycles),
			i64(v.ComputeCycles), i64(v.StallCycles), i64(v.TotalAccesses),
			i64(v.LocalHits), i64(v.RemoteHits), i64(v.LocalMisses), i64(v.RemoteMisses),
			i64(v.Combined), strconv.FormatFloat(v.LocalHitRatio, 'f', 6, 64),
			i64(v.ABHits), i64(v.ABUpdates), i64(v.NullifiedStores),
			i64(v.CommOps), i64(v.Violations), i64(v.BusTransfers), i64(v.BusWaitedCycles),
			i64(v.NextLevelRequests), i64(v.PortsWaited), i64(v.Evictions), i64(v.Writebacks),
			i64(v.ABFlushes), i64(v.ABDirtyWritebacks), i64(v.InjectedFaults),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// stageView serializes one pipeline stage's latency summary.
type stageView struct {
	Stage string `json:"stage"`
	Count int64  `json:"count"`
	Total int64  `json:"total_ns"`
	Mean  int64  `json:"mean_ns"`
	P50   int64  `json:"p50_ns"`
	P95   int64  `json:"p95_ns"`
	Max   int64  `json:"max_ns"`
}

// metricsView serializes one engine.Metrics snapshot.
type metricsView struct {
	Name        string      `json:"name"`
	Workers     int         `json:"workers"`
	Submitted   int64       `json:"submitted"`
	Computed    int64       `json:"computed"`
	CacheHits   int64       `json:"cache_hits"`
	FlightWaits int64       `json:"flight_waits"`
	Canceled    int64       `json:"canceled"`
	Panics      int64       `json:"panics"`
	Retries     int64       `json:"retries"`
	TimedOut    int64       `json:"timed_out"`
	BusyNS      int64       `json:"busy_ns"`
	WallNS      int64       `json:"wall_ns"`
	Utilization float64     `json:"utilization"`
	Stages      []stageView `json:"stages"`
}

// MetricsRecord labels one engine metrics snapshot for export.
type MetricsRecord struct {
	Name    string
	Metrics engine.Metrics
}

func metricsViewOf(r MetricsRecord) metricsView {
	m := r.Metrics
	v := metricsView{
		Name: r.Name, Workers: m.Workers, Submitted: m.Submitted,
		Computed: m.Computed, CacheHits: m.CacheHits, FlightWaits: m.FlightWaits,
		Canceled: m.Canceled, Panics: m.Panics, Retries: m.Retries, TimedOut: m.TimedOut,
		BusyNS: int64(m.Busy), WallNS: int64(m.Wall), Utilization: m.Utilization(),
	}
	for _, st := range m.Stages {
		v.Stages = append(v.Stages, stageView{
			Stage: st.Stage, Count: st.Count, Total: int64(st.Total),
			Mean: int64(st.Mean), P50: int64(st.P50), P95: int64(st.P95), Max: int64(st.Max),
		})
	}
	return v
}

// WriteMetricsJSON serializes engine metrics snapshots as a JSON array.
func WriteMetricsJSON(w io.Writer, recs []MetricsRecord) error {
	views := make([]metricsView, len(recs))
	for i, r := range recs {
		views[i] = metricsViewOf(r)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(views)
}

// WriteMetricsCSV serializes per-stage latency rows as CSV.
func WriteMetricsCSV(w io.Writer, recs []MetricsRecord) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"name", "stage", "count", "total_ns", "mean_ns", "p50_ns", "p95_ns", "max_ns"}); err != nil {
		return err
	}
	for _, r := range recs {
		v := metricsViewOf(r)
		for _, st := range v.Stages {
			row := []string{
				v.Name, st.Stage, strconv.FormatInt(st.Count, 10),
				strconv.FormatInt(st.Total, 10), strconv.FormatInt(st.Mean, 10),
				strconv.FormatInt(st.P50, 10), strconv.FormatInt(st.P95, 10),
				strconv.FormatInt(st.Max, 10),
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// FaultRecord labels one chaos-mode fault log for export: either a
// per-run injector log (Faults/Log) or a degraded-mode cell failure
// (Reason/Err).
type FaultRecord struct {
	Name   string `json:"name"`
	Reason string `json:"reason,omitempty"`
	Err    string `json:"error,omitempty"`
	Faults int64  `json:"faults,omitempty"`
	Log    string `json:"log,omitempty"`
}

// WriteFaultsJSON serializes fault records as a JSON array.
func WriteFaultsJSON(w io.Writer, recs []FaultRecord) error {
	if recs == nil {
		recs = []FaultRecord{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(recs)
}

// WriteFaultsCSV serializes fault records as CSV.
func WriteFaultsCSV(w io.Writer, recs []FaultRecord) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"name", "reason", "error", "faults"}); err != nil {
		return err
	}
	for _, r := range recs {
		if err := cw.Write([]string{r.Name, r.Reason, r.Err, fmt.Sprint(r.Faults)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
