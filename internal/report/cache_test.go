package report

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"testing"
)

func TestWriteCacheJSONAndCSV(t *testing.T) {
	recs := []CacheRecord{{
		Name: "results", Hits: 7, Misses: 3, Coalesced: 2, Puts: 3,
		Evictions: 1, Oversized: 0, Entries: 2, Bytes: 1024, BudgetBytes: 4096,
	}}

	var buf bytes.Buffer
	if err := WriteCacheJSON(&buf, recs); err != nil {
		t.Fatalf("WriteCacheJSON: %v", err)
	}
	var got []CacheRecord
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(got) != 1 || got[0] != recs[0] {
		t.Fatalf("round trip = %+v", got)
	}

	// Determinism: equal inputs produce identical bytes.
	var again bytes.Buffer
	if err := WriteCacheJSON(&again, recs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("equal inputs produced different JSON bytes")
	}

	buf.Reset()
	if err := WriteCacheCSV(&buf, recs); err != nil {
		t.Fatalf("WriteCacheCSV: %v", err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("invalid CSV: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want header + 1", len(rows))
	}
	wantHeader := []string{"name", "hits", "misses", "coalesced", "puts",
		"evictions", "oversized", "entries", "bytes", "budget_bytes"}
	for i, h := range wantHeader {
		if rows[0][i] != h {
			t.Errorf("header[%d] = %q, want %q", i, rows[0][i], h)
		}
	}
	if rows[1][0] != "results" || rows[1][1] != "7" || rows[1][9] != "4096" {
		t.Errorf("row = %v", rows[1])
	}
}

func TestWriteCacheJSONEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCacheJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if got := string(bytes.TrimSpace(buf.Bytes())); got != "[]" {
		t.Errorf("nil records = %q, want []", got)
	}
}
