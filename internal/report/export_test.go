package report

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"

	"vliwcache/internal/engine"
	"vliwcache/internal/sim"
)

func sampleStats() *sim.Stats {
	s := &sim.Stats{Iterations: 10, Entries: 2, ComputeCycles: 100, StallCycles: 40}
	s.Accesses[sim.LocalHit] = 6
	s.Accesses[sim.RemoteHit] = 2
	s.Accesses[sim.LocalMiss] = 1
	s.Accesses[sim.RemoteMiss] = 1
	s.Accesses[sim.Combined] = 3
	s.ABHits = 4
	return s
}

func TestWriteStatsJSON(t *testing.T) {
	var buf bytes.Buffer
	recs := []StatsRecord{
		{Name: "gsmdec/MDC+PrefClus", Stats: sampleStats()},
		{Name: "empty", Stats: &sim.Stats{}}, // must not produce NaN
	}
	if err := WriteStatsJSON(&buf, recs); err != nil {
		t.Fatalf("WriteStatsJSON: %v", err)
	}
	var got []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(got) != 2 {
		t.Fatalf("got %d records, want 2", len(got))
	}
	if got[0]["name"] != "gsmdec/MDC+PrefClus" {
		t.Errorf("name = %v", got[0]["name"])
	}
	if got[0]["cycles"].(float64) != 140 {
		t.Errorf("cycles = %v, want 140", got[0]["cycles"])
	}
	if got[0]["total_accesses"].(float64) != 13 {
		t.Errorf("total_accesses = %v, want 13", got[0]["total_accesses"])
	}
	if r := got[0]["local_hit_ratio"].(float64); math.Abs(r-6.0/13) > 1e-9 {
		t.Errorf("local_hit_ratio = %v, want %v", r, 6.0/13)
	}
	// Empty stats export as zeros, never NaN (json.Marshal would have
	// failed on NaN — but check the value explicitly too).
	if r := got[1]["local_hit_ratio"].(float64); r != 0 {
		t.Errorf("empty local_hit_ratio = %v, want 0", r)
	}
}

func TestWriteStatsCSV(t *testing.T) {
	var buf bytes.Buffer
	recs := []StatsRecord{{Name: "a", Stats: sampleStats()}, {Name: "b", Stats: &sim.Stats{}}}
	if err := WriteStatsCSV(&buf, recs); err != nil {
		t.Fatalf("WriteStatsCSV: %v", err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("output is not valid CSV: %v", err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3 (header + 2)", len(rows))
	}
	if len(rows[0]) != len(statsHeader) {
		t.Fatalf("header has %d columns, want %d", len(rows[0]), len(statsHeader))
	}
	for _, row := range rows[1:] {
		if len(row) != len(rows[0]) {
			t.Fatalf("row has %d columns, header has %d", len(row), len(rows[0]))
		}
		for _, cell := range row {
			if strings.Contains(cell, "NaN") {
				t.Fatalf("NaN leaked into CSV row %v", row)
			}
		}
	}
	if rows[1][0] != "a" || rows[2][0] != "b" {
		t.Errorf("name column = %q, %q", rows[1][0], rows[2][0])
	}
}

func TestWriteStatsDeterministic(t *testing.T) {
	recs := []StatsRecord{{Name: "x", Stats: sampleStats()}}
	var a, b bytes.Buffer
	if err := WriteStatsJSON(&a, recs); err != nil {
		t.Fatal(err)
	}
	if err := WriteStatsJSON(&b, recs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("equal inputs produced different JSON bytes")
	}
}

func TestWriteMetricsJSONAndCSV(t *testing.T) {
	e := engine.New(4)
	e.RecordStage("simulate", 10*time.Millisecond)
	e.RecordStage("simulate", 30*time.Millisecond)
	e.RecordStage("profile", 5*time.Millisecond)
	m := e.Metrics()

	var buf bytes.Buffer
	if err := WriteMetricsJSON(&buf, []MetricsRecord{{Name: "suite", Metrics: m}}); err != nil {
		t.Fatalf("WriteMetricsJSON: %v", err)
	}
	var got []metricsView
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(got) != 1 || got[0].Workers != 4 {
		t.Fatalf("bad metrics view: %+v", got)
	}
	if len(got[0].Stages) != 2 {
		t.Fatalf("got %d stages, want 2", len(got[0].Stages))
	}
	// Stages are sorted by name: profile, simulate.
	if got[0].Stages[0].Stage != "profile" || got[0].Stages[1].Stage != "simulate" {
		t.Errorf("stage order: %+v", got[0].Stages)
	}
	sim := got[0].Stages[1]
	if sim.Count != 2 || sim.Total != int64(40*time.Millisecond) {
		t.Errorf("simulate stage: %+v", sim)
	}
	if sim.Max != int64(30*time.Millisecond) {
		t.Errorf("simulate max = %d", sim.Max)
	}

	buf.Reset()
	if err := WriteMetricsCSV(&buf, []MetricsRecord{{Name: "suite", Metrics: m}}); err != nil {
		t.Fatalf("WriteMetricsCSV: %v", err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("invalid CSV: %v", err)
	}
	if len(rows) != 3 { // header + 2 stages
		t.Fatalf("got %d rows, want 3", len(rows))
	}
}

func TestWriteFaults(t *testing.T) {
	recs := []FaultRecord{
		{Name: "gsmdec/MDC+PrefClus", Faults: 7, Log: "mem+3 op=1\n"},
		{Name: "epic/DDGT+MinComs", Reason: "timeout", Err: "cell timed out"},
	}
	var buf bytes.Buffer
	if err := WriteFaultsJSON(&buf, recs); err != nil {
		t.Fatalf("WriteFaultsJSON: %v", err)
	}
	var got []FaultRecord
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(got) != 2 || got[0].Faults != 7 || got[1].Reason != "timeout" {
		t.Fatalf("round trip: %+v", got)
	}

	// nil slice must still encode as a JSON array, not null.
	buf.Reset()
	if err := WriteFaultsJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if s := strings.TrimSpace(buf.String()); s != "[]" {
		t.Errorf("nil records encoded as %q, want []", s)
	}

	buf.Reset()
	if err := WriteFaultsCSV(&buf, recs); err != nil {
		t.Fatalf("WriteFaultsCSV: %v", err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("invalid CSV: %v", err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
}
