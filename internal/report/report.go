// Package report renders detailed human-readable reports about a compiled
// and simulated loop: how the initiation interval decomposes into resource
// and recurrence bounds (and which dependence cycle binds it), how the
// schedule utilizes each cluster's units and the register buses, and how
// the simulated memory behaviour breaks down.
package report

import (
	"fmt"
	"strings"

	"vliwcache/internal/arch"
	"vliwcache/internal/ddg"
	"vliwcache/internal/ir"
	"vliwcache/internal/sched"
	"vliwcache/internal/sim"
	"vliwcache/internal/textplot"
)

// Text renders the full report for one schedule and its simulation
// statistics (stats may be nil to report on the schedule alone).
func Text(sc *sched.Schedule, st *sim.Stats) string {
	var b strings.Builder
	plan, cfg := sc.Plan, sc.Arch

	fmt.Fprintf(&b, "loop %q under %s, %s heuristic-scheduled\n",
		plan.Loop.Name, plan.Policy, cfg)

	// II decomposition.
	res := sched.ResMII(plan, cfg)
	lf := minLatencyFunc(cfg)
	// The schedule validated, so its graph is well-formed and RecMII exists.
	rec := plan.Graph.MustRecMII(lf)
	fmt.Fprintf(&b, "\nII = %d  (ResMII %d, RecMII %d, schedule length %d, %d copies/iter)\n",
		sc.II, res, rec, sc.Length, len(sc.Copies))

	if cycle := plan.Graph.CriticalCycle(lf); cycle != nil {
		lat, dist, bound := plan.Graph.CycleStats(cycle, lf)
		fmt.Fprintf(&b, "critical recurrence (latency %d over distance %d -> II >= %d):\n",
			lat, dist, bound)
		for _, e := range cycle {
			fmt.Fprintf(&b, "  %s -%s(d=%d)-> %s\n",
				plan.Loop.Ops[e.From].Label(), e.Kind, e.Dist, plan.Loop.Ops[e.To].Label())
		}
	}

	// Chains / replication summary.
	if len(plan.Chains) > 0 {
		fmt.Fprintf(&b, "memory dependent chains: %d (biggest %d ops)\n",
			len(plan.Chains), len(plan.Chains[0]))
	}
	if len(plan.ReplicaGroups) > 0 {
		fmt.Fprintf(&b, "replicated stores: %d (+%d instances), fake consumers: %d, MA removed: %d\n",
			len(plan.ReplicaGroups), len(plan.ReplicaGroups)*(cfg.NumClusters-1),
			len(plan.FakeConsumers), plan.RemovedMA)
	}

	// Utilization: slots used per cluster per class over one II.
	b.WriteString("\nutilization (slots used / available per iteration):\n")
	t := textplot.NewTable("cluster", "INT", "FP", "MEM", "ops")
	var used [8][3]int
	var opsPer [8]int
	for id, o := range plan.Loop.Ops {
		c := sc.Cluster[id]
		if c < len(used) {
			switch o.Kind.UnitClass() {
			case ir.ClassInt:
				used[c][0]++
			case ir.ClassFP:
				used[c][1]++
			case ir.ClassMem:
				used[c][2]++
			}
			opsPer[c]++
		}
	}
	for c := 0; c < cfg.NumClusters && c < len(used); c++ {
		t.Rowf("cl%d\t%d/%d\t%d/%d\t%d/%d\t%d", c,
			used[c][0], cfg.IntUnits*sc.II,
			used[c][1], cfg.FPUnits*sc.II,
			used[c][2], cfg.MemUnits*sc.II,
			opsPer[c])
	}
	b.WriteString(t.String())
	busSlots := cfg.RegBuses * sc.II
	busUsed := len(sc.Copies) * cfg.RegBusLatency
	fmt.Fprintf(&b, "register buses: %d/%d slot-cycles per iteration\n", busUsed, busSlots)

	if st == nil {
		return b.String()
	}

	// Simulation breakdown.
	fmt.Fprintf(&b, "\nsimulated %d iterations x %d entries: %d cycles (compute %d + stall %d)\n",
		st.Iterations/maxI64(1, st.Entries), st.Entries, st.Cycles(), st.ComputeCycles, st.StallCycles)
	at := textplot.NewTable("class", "accesses", "share")
	for cl := sim.Class(0); cl < sim.NumClasses; cl++ {
		at.Rowf("%s\t%d\t%.1f%%", cl, st.Accesses[cl], 100*st.ClassRatio(cl))
	}
	b.WriteString(at.String())
	fmt.Fprintf(&b, "attraction buffer hits %d, nullified store instances %d\n", st.ABHits, st.NullifiedStores)
	fmt.Fprintf(&b, "memory buses: %d transfers, %d wait cycles; next level: %d requests, %d wait cycles\n",
		st.BusTransfers, st.BusWaitedCycles, st.NextLevelRequests, st.PortsWaited)
	fmt.Fprintf(&b, "cache: %d evictions (%d dirty); communications executed: %d\n",
		st.Evictions, st.Writebacks, st.CommOps)
	if st.Violations > 0 {
		fmt.Fprintf(&b, "!! memory ordering violations: %d\n", st.Violations)
	}
	return b.String()
}

func minLatencyFunc(cfg arch.Config) ddg.LatencyFunc {
	hit := cfg.Latencies().LocalHit
	return func(o *ir.Op) int {
		if o.Kind.IsMem() {
			return hit
		}
		return o.Kind.Latency()
	}
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
