package report

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// Optimality-gap export: per-loop initiation intervals of the heuristic
// schedulers against the exact oracle's lower bound. Field sets and column
// orders are fixed — equal inputs produce byte-identical output — so the
// committed gap artifacts diff cleanly.

// Gap row statuses.
const (
	// GapClosed marks a loop the oracle solved to optimality: OracleII
	// equals LowerBound.
	GapClosed = "closed"
	// GapBoundOnly marks a loop the oracle could not close within its
	// node budget; only LowerBound is proven.
	GapBoundOnly = "bound-only(budget)"
)

// GapHeuristic is one heuristic scheduler's result on a loop.
type GapHeuristic struct {
	Name string `json:"name"` // registry name ("prefclus", "mincoms", ...)
	II   int    `json:"ii"`   // achieved initiation interval (0 = failed)
}

// GapRow is one loop's optimality-gap record.
type GapRow struct {
	Bench      string         `json:"bench"`
	Loop       string         `json:"loop"`
	Policy     string         `json:"policy"`
	LowerBound int            `json:"lower_bound"`
	OracleII   int            `json:"oracle_ii"` // 0 when the oracle found no schedule
	Status     string         `json:"status"`    // GapClosed or GapBoundOnly
	Nodes      int64          `json:"nodes"`     // oracle search nodes expended
	Heuristics []GapHeuristic `json:"heuristics"`
}

// BestHeuristicII returns the smallest successful heuristic II of the row,
// or 0 when every heuristic failed.
func (r *GapRow) BestHeuristicII() int {
	best := 0
	for _, h := range r.Heuristics {
		if h.II > 0 && (best == 0 || h.II < best) {
			best = h.II
		}
	}
	return best
}

// Gap returns best heuristic II minus the proven lower bound — the
// certified suboptimality of the best heuristic. Only meaningful when the
// row is closed (otherwise it is an upper bound on the true gap).
func (r *GapRow) Gap() int {
	if best := r.BestHeuristicII(); best > 0 {
		return best - r.LowerBound
	}
	return 0
}

// WriteGapJSON serializes gap rows as an indented JSON array.
func WriteGapJSON(w io.Writer, rows []GapRow) error {
	if rows == nil {
		rows = []GapRow{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rows)
}

// WriteGapCSV serializes gap rows as CSV. The heuristic columns are taken
// from the first row's Heuristics in order; every row must carry the same
// heuristic set (the gap experiment guarantees this).
func WriteGapCSV(w io.Writer, rows []GapRow) error {
	cw := csv.NewWriter(w)
	header := []string{"bench", "loop", "policy", "lower_bound", "oracle_ii", "status", "nodes", "gap"}
	var names []string
	if len(rows) > 0 {
		for _, h := range rows[0].Heuristics {
			names = append(names, h.Name)
			header = append(header, h.Name+"_ii")
		}
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for i := range rows {
		r := &rows[i]
		rec := []string{
			r.Bench, r.Loop, r.Policy,
			strconv.Itoa(r.LowerBound), strconv.Itoa(r.OracleII),
			r.Status, strconv.FormatInt(r.Nodes, 10), strconv.Itoa(r.Gap()),
		}
		byName := make(map[string]int, len(r.Heuristics))
		for _, h := range r.Heuristics {
			byName[h.Name] = h.II
		}
		if len(r.Heuristics) != len(names) {
			return fmt.Errorf("report: gap row %s/%s has %d heuristics, header has %d",
				r.Bench, r.Loop, len(r.Heuristics), len(names))
		}
		for _, n := range names {
			ii, ok := byName[n]
			if !ok {
				return fmt.Errorf("report: gap row %s/%s missing heuristic %q", r.Bench, r.Loop, n)
			}
			rec = append(rec, strconv.Itoa(ii))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
