package report

import (
	"strings"
	"testing"

	"vliwcache/internal/arch"
	"vliwcache/internal/core"
	"vliwcache/internal/ir"
	"vliwcache/internal/profiler"
	"vliwcache/internal/sched"
	"vliwcache/internal/sim"
)

func fixture(t *testing.T, pol core.Policy) (*sched.Schedule, *sim.Stats) {
	t.Helper()
	b := ir.NewBuilder("fixture")
	b.Symbol("c", 0x10000, 1<<20)
	b.Trip(500, 1)
	v := b.Load("ld", ir.AddrExpr{Base: "c", Offset: -16, Stride: 16, Size: 4})
	w := b.Arith("r0", ir.KindAdd, v)
	b.Store("st", ir.AddrExpr{Base: "c", Stride: 16, Size: 4}, w)
	loop := b.Loop()
	cfg := arch.Default()
	plan, err := core.Prepare(loop, pol, cfg.NumClusters)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := sched.Run(plan, sched.Options{Arch: cfg, Heuristic: sched.PrefClus, Profile: profiler.Run(loop, cfg)})
	if err != nil {
		t.Fatal(err)
	}
	st, err := sim.Run(sc, sim.Options{CheckCoherence: true})
	if err != nil {
		t.Fatal(err)
	}
	return sc, st
}

func TestReportSections(t *testing.T) {
	sc, st := fixture(t, core.PolicyMDC)
	out := Text(sc, st)
	for _, want := range []string{
		"II =", "ResMII", "RecMII",
		"critical recurrence",
		"MF", // the loop-carried memory flow edge binds the recurrence
		"memory dependent chains: 1",
		"utilization",
		"cl0", "cl3",
		"register buses",
		"simulated",
		"local hit",
		"memory buses",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "violations") {
		t.Error("coherent run must not warn about violations")
	}
}

func TestReportDDGTSection(t *testing.T) {
	sc, st := fixture(t, core.PolicyDDGT)
	out := Text(sc, st)
	if !strings.Contains(out, "replicated stores: 1 (+3 instances)") {
		t.Errorf("missing replication summary:\n%s", out)
	}
}

func TestReportScheduleOnly(t *testing.T) {
	sc, _ := fixture(t, core.PolicyFree)
	out := Text(sc, nil)
	if strings.Contains(out, "simulated") {
		t.Error("schedule-only report must omit simulation sections")
	}
	if !strings.Contains(out, "II =") {
		t.Error("missing II section")
	}
}
