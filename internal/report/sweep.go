package report

import (
	"encoding/csv"
	"encoding/json"
	"io"
	"strconv"
)

// Design-space sweep export: one row per (architecture point, workload,
// variant) cell, flattened so the committed artifact diffs cleanly. As
// with the gap report, field sets and column orders are fixed and equal
// inputs produce byte-identical output.

// SweepRow is one cell of an architecture sweep.
type SweepRow struct {
	// Architecture point identity (the archspace point name) plus the
	// dialed dimensions broken out for filtering.
	Arch            string `json:"arch"`
	NumClusters     int    `json:"num_clusters"`
	InterleaveBytes int    `json:"interleave_bytes"`
	CacheBytes      int    `json:"cache_bytes"`
	CacheAssoc      int    `json:"cache_assoc"`
	ABEntries       int    `json:"ab_entries"`
	Layout          string `json:"layout"`

	// Workload identity: a mediabench benchmark or a corpus loop family.
	Workload string `json:"workload"`
	Source   string `json:"source"` // "mediabench" or "corpus"

	// Variant identity.
	Policy    string `json:"policy"`
	Heuristic string `json:"heuristic"`

	// Schedule-level results summed over the workload's loops.
	Loops int `json:"loops"`
	II    int `json:"ii"`
	Comms int `json:"comms"`

	// Simulation results summed over the workload's loops.
	Cycles        int64   `json:"cycles"`
	ComputeCycles int64   `json:"compute_cycles"`
	StallCycles   int64   `json:"stall_cycles"`
	LocalHits     int64   `json:"local_hits"`
	RemoteHits    int64   `json:"remote_hits"`
	LocalMisses   int64   `json:"local_misses"`
	RemoteMisses  int64   `json:"remote_misses"`
	ABHits        int64   `json:"ab_hits"`
	CommOps       int64   `json:"comm_ops"`
	BusTransfers  int64   `json:"bus_transfers"`
	LocalHitPct   float64 `json:"local_hit_pct"`
}

// WriteSweepJSON serializes sweep rows as an indented JSON array.
func WriteSweepJSON(w io.Writer, rows []SweepRow) error {
	if rows == nil {
		rows = []SweepRow{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rows)
}

var sweepHeader = []string{
	"arch", "num_clusters", "interleave_bytes", "cache_bytes", "cache_assoc",
	"ab_entries", "layout", "workload", "source", "policy", "heuristic",
	"loops", "ii", "comms", "cycles", "compute_cycles", "stall_cycles",
	"local_hits", "remote_hits", "local_misses", "remote_misses", "ab_hits",
	"comm_ops", "bus_transfers", "local_hit_pct",
}

// WriteSweepCSV serializes sweep rows as CSV with a fixed column order.
func WriteSweepCSV(w io.Writer, rows []SweepRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(sweepHeader); err != nil {
		return err
	}
	for i := range rows {
		r := &rows[i]
		rec := []string{
			r.Arch,
			strconv.Itoa(r.NumClusters), strconv.Itoa(r.InterleaveBytes),
			strconv.Itoa(r.CacheBytes), strconv.Itoa(r.CacheAssoc),
			strconv.Itoa(r.ABEntries), r.Layout,
			r.Workload, r.Source, r.Policy, r.Heuristic,
			strconv.Itoa(r.Loops), strconv.Itoa(r.II), strconv.Itoa(r.Comms),
			strconv.FormatInt(r.Cycles, 10),
			strconv.FormatInt(r.ComputeCycles, 10),
			strconv.FormatInt(r.StallCycles, 10),
			strconv.FormatInt(r.LocalHits, 10),
			strconv.FormatInt(r.RemoteHits, 10),
			strconv.FormatInt(r.LocalMisses, 10),
			strconv.FormatInt(r.RemoteMisses, 10),
			strconv.FormatInt(r.ABHits, 10),
			strconv.FormatInt(r.CommOps, 10),
			strconv.FormatInt(r.BusTransfers, 10),
			strconv.FormatFloat(r.LocalHitPct, 'f', 2, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
