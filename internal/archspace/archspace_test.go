package archspace

import (
	"strings"
	"testing"

	"vliwcache/internal/arch"
)

func TestCanonicalGrid(t *testing.T) {
	g := Canonical()
	valid, invalid := g.Enumerate()
	if len(invalid) != 0 {
		t.Fatalf("canonical grid has %d invalid points, want 0: %+v", len(invalid), invalid)
	}
	if len(valid) != 12 {
		t.Fatalf("canonical grid has %d points, want 12 (3 clusters x 2 interleavings x AB on/off)", len(valid))
	}
	if g.Size() != 12 {
		t.Errorf("Size() = %d, want 12", g.Size())
	}
	// Deterministic order: NumClusters outermost, so the first four points
	// are the 2-cluster ones.
	if valid[0].Config.NumClusters != 2 || valid[3].Config.NumClusters != 2 ||
		valid[4].Config.NumClusters != 4 {
		t.Errorf("unexpected order: %v", names(valid))
	}
	// Names are unique.
	seen := map[string]bool{}
	for _, p := range valid {
		if seen[p.Name] {
			t.Errorf("duplicate point name %q", p.Name)
		}
		seen[p.Name] = true
		if err := p.Config.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestEnumerateDeterministic(t *testing.T) {
	g := Canonical()
	a, b := g.Points(), g.Points()
	if len(a) != len(b) {
		t.Fatal("nondeterministic point count")
	}
	for i := range a {
		if a[i].Name != b[i].Name || a[i].Config != b[i].Config {
			t.Fatalf("point %d differs across enumerations", i)
		}
	}
}

func TestZeroGridIsBase(t *testing.T) {
	g := Grid{Base: arch.Default()}
	pts := g.Points()
	if len(pts) != 1 || pts[0].Config != arch.Default() {
		t.Fatalf("zero grid = %v, want exactly the base config", names(pts))
	}
	if pts[0].Name != "c4-i4-8KB-w2-rb4x2-mb4x2-ab0-wi" {
		t.Errorf("base point name = %q", pts[0].Name)
	}
}

func TestInvalidPointsReported(t *testing.T) {
	// 8 clusters at 8-byte interleave cannot split a 32-byte block.
	g := Grid{
		Base:            arch.Default(),
		NumClusters:     []int{4, 8},
		InterleaveBytes: []int{8},
	}
	valid, invalid := g.Enumerate()
	if len(valid) != 1 || valid[0].Config.NumClusters != 4 {
		t.Errorf("valid = %v, want only the 4-cluster point", names(valid))
	}
	if len(invalid) != 1 || !strings.HasPrefix(invalid[0].Name, "c8-i8-") {
		t.Errorf("invalid = %+v, want the named 8-cluster rejection", invalid)
	}
}

func TestDistinctSubstrates(t *testing.T) {
	pts := Canonical().Points()
	// Geometry folds InterleaveBytes away (it shapes addressing, not
	// storage), so the 12 canonical points share 3 clusters x 2 AB
	// settings = 6 substrates.
	if n := DistinctSubstrates(pts); n != 6 {
		t.Errorf("DistinctSubstrates = %d, want 6", n)
	}
}

func names(pts []Point) []string {
	out := make([]string, len(pts))
	for i, p := range pts {
		out[i] = p.Name
	}
	return out
}
