// Package archspace turns the single machine shape of Table 2 into a
// sweepable design space. A Grid names dial values for the architectural
// parameters the paper holds fixed (cluster count, interleaving factor,
// cache geometry, bus provisioning, Attraction Buffer size, cache layout);
// enumerating it yields every valid arch.Config in the cross product, each
// with a deterministic human-readable name that doubles as a report key.
//
// Enumeration order is fixed (dials vary in field-declaration order with
// the first field outermost), so a grid renders the same point list on
// every machine — sweeps built on it are byte-stable. Points whose
// combination violates arch.Validate are skipped and reported, never
// silently dropped.
package archspace

import (
	"fmt"

	"vliwcache/internal/arch"
	"vliwcache/internal/sim"
)

// Grid is a cross product of architecture dials over a base configuration.
// A nil/empty dial slice means "inherit the base value" for that
// dimension; a populated slice replaces it with each listed value in turn.
// The zero Grid over any base therefore enumerates exactly that base.
type Grid struct {
	// Base supplies every field not named by a dial. Typically
	// arch.Default().
	Base arch.Config

	// Dials, outermost first in enumeration order.
	NumClusters     []int
	InterleaveBytes []int
	CacheBytes      []int
	CacheAssoc      []int
	RegBuses        []int
	RegBusLatency   []int
	MemBuses        []int
	MemBusLatency   []int
	ABEntries       []int
	Layouts         []arch.Layout
}

// Point is one valid configuration of a Grid. Name is deterministic,
// derived only from the configuration, and unique within any grid (two
// distinct configs that share a name would have to agree on every dialed
// field).
type Point struct {
	Name   string
	Config arch.Config
}

// Invalid records a grid combination rejected by arch.Validate, so sweeps
// can report coverage honestly instead of silently shrinking.
type Invalid struct {
	Name string
	Err  error
}

func dial(vals []int, base int) []int {
	if len(vals) == 0 {
		return []int{base}
	}
	return vals
}

func dialLayouts(vals []arch.Layout, base arch.Layout) []arch.Layout {
	if len(vals) == 0 {
		return []arch.Layout{base}
	}
	return vals
}

// Enumerate walks the cross product in declaration order and splits it
// into valid points and rejected combinations. The point order is the
// canonical sweep order: NumClusters varies slowest, Layout fastest.
func (g Grid) Enumerate() (valid []Point, invalid []Invalid) {
	for _, nc := range dial(g.NumClusters, g.Base.NumClusters) {
		for _, il := range dial(g.InterleaveBytes, g.Base.InterleaveBytes) {
			for _, cb := range dial(g.CacheBytes, g.Base.CacheBytes) {
				for _, cw := range dial(g.CacheAssoc, g.Base.CacheAssoc) {
					for _, rb := range dial(g.RegBuses, g.Base.RegBuses) {
						for _, rl := range dial(g.RegBusLatency, g.Base.RegBusLatency) {
							for _, mb := range dial(g.MemBuses, g.Base.MemBuses) {
								for _, ml := range dial(g.MemBusLatency, g.Base.MemBusLatency) {
									for _, ab := range dial(g.ABEntries, g.Base.ABEntries) {
										for _, lay := range dialLayouts(g.Layouts, g.Base.Layout) {
											cfg := g.Base
											cfg.NumClusters = nc
											cfg.InterleaveBytes = il
											cfg.CacheBytes = cb
											cfg.CacheAssoc = cw
											cfg.RegBuses = rb
											cfg.RegBusLatency = rl
											cfg.MemBuses = mb
											cfg.MemBusLatency = ml
											cfg.Layout = lay
											if ab > 0 {
												cfg = cfg.WithAttractionBuffers(ab)
											} else {
												cfg.ABEntries = 0
											}
											name := Name(cfg)
											if err := cfg.Validate(); err != nil {
												invalid = append(invalid, Invalid{Name: name, Err: err})
												continue
											}
											valid = append(valid, Point{Name: name, Config: cfg})
										}
									}
								}
							}
						}
					}
				}
			}
		}
	}
	return valid, invalid
}

// Points returns the valid points of the grid in canonical order.
func (g Grid) Points() []Point {
	valid, _ := g.Enumerate()
	return valid
}

// Size returns the total number of combinations (valid or not) the grid
// describes, without enumerating configurations.
func (g Grid) Size() int {
	n := 1
	for _, d := range [][]int{
		dial(g.NumClusters, g.Base.NumClusters),
		dial(g.InterleaveBytes, g.Base.InterleaveBytes),
		dial(g.CacheBytes, g.Base.CacheBytes),
		dial(g.CacheAssoc, g.Base.CacheAssoc),
		dial(g.RegBuses, g.Base.RegBuses),
		dial(g.RegBusLatency, g.Base.RegBusLatency),
		dial(g.MemBuses, g.Base.MemBuses),
		dial(g.MemBusLatency, g.Base.MemBusLatency),
		dial(g.ABEntries, g.Base.ABEntries),
	} {
		n *= len(d)
	}
	return n * len(dialLayouts(g.Layouts, g.Base.Layout))
}

// Name renders the deterministic point name of a configuration: every
// dialed dimension in fixed order, e.g. "c4-i4-8KB-w2-rb4x2-mb4x2-ab0-wi".
func Name(c arch.Config) string {
	layout := "wi"
	if c.Replicated() {
		layout = "rep"
	}
	cache := fmt.Sprintf("%dB", c.CacheBytes)
	if c.CacheBytes > 0 && c.CacheBytes%1024 == 0 {
		cache = fmt.Sprintf("%dKB", c.CacheBytes/1024)
	}
	return fmt.Sprintf("c%d-i%d-%s-w%d-rb%dx%d-mb%dx%d-ab%d-%s",
		c.NumClusters, c.InterleaveBytes, cache, c.CacheAssoc,
		c.RegBuses, c.RegBusLatency, c.MemBuses, c.MemBusLatency,
		c.ABEntries, layout)
}

// DistinctSubstrates counts how many distinct simulator substrates the
// points require, using the same geometry equality the machine pool uses
// to decide whether a rebind can keep its cache modules, buses and
// tables. Points beyond the first per geometry are nearly free to sweep.
func DistinctSubstrates(points []Point) int {
	seen := make(map[sim.Geometry]struct{}, len(points))
	for _, p := range points {
		seen[sim.GeometryOf(p.Config)] = struct{}{}
	}
	return len(seen)
}

// Canonical returns the committed small grid swept by SWEEP_report.json:
// three cluster counts × two interleavings × Attraction Buffers off/on
// over the Table 2 base — 12 points, all valid.
func Canonical() Grid {
	return Grid{
		Base:            arch.Default(),
		NumClusters:     []int{2, 4, 8},
		InterleaveBytes: []int{2, 4},
		ABEntries:       []int{0, 16},
	}
}
