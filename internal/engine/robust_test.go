package engine

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestDoRecoversPanic(t *testing.T) {
	e := New(2)
	_, err := e.Do(context.Background(), "boom", func(context.Context) (any, error) {
		panic("cell diverged")
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("got %v, want *PanicError", err)
	}
	if pe.Value != "cell diverged" {
		t.Errorf("panic value = %v", pe.Value)
	}
	if !strings.Contains(string(pe.Stack), "TestDoRecoversPanic") {
		t.Errorf("stack does not name the panic site:\n%s", pe.Stack)
	}
	if m := e.Metrics(); m.Panics != 1 {
		t.Errorf("Panics = %d, want 1", m.Panics)
	}
	// The flight was evicted: a later Do under the same key runs again.
	v, err := e.Do(context.Background(), "boom", func(context.Context) (any, error) {
		return 7, nil
	})
	if err != nil || v != 7 {
		t.Fatalf("retry after panic: %v, %v", v, err)
	}
}

func TestTaskTimeout(t *testing.T) {
	e := New(2, WithTaskTimeout(20*time.Millisecond))
	_, err := e.Do(context.Background(), "slow", func(ctx context.Context) (any, error) {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(5 * time.Second):
			return nil, nil
		}
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want DeadlineExceeded", err)
	}
	if m := e.Metrics(); m.TimedOut != 1 {
		t.Errorf("TimedOut = %d, want 1", m.TimedOut)
	}
}

func TestRetryTransient(t *testing.T) {
	e := New(2, WithRetry(3, time.Millisecond))
	calls := 0
	v, err := e.Do(context.Background(), "flaky", func(context.Context) (any, error) {
		calls++
		if calls < 3 {
			return nil, MarkTransient(fmt.Errorf("hiccup %d", calls))
		}
		return "ok", nil
	})
	if err != nil || v != "ok" {
		t.Fatalf("got %v, %v", v, err)
	}
	if calls != 3 {
		t.Errorf("calls = %d, want 3", calls)
	}
	if m := e.Metrics(); m.Retries != 2 {
		t.Errorf("Retries = %d, want 2", m.Retries)
	}
}

func TestRetryDoesNotTouchPermanentErrors(t *testing.T) {
	e := New(2, WithRetry(3, time.Millisecond))
	calls := 0
	_, err := e.Do(context.Background(), "perm", func(context.Context) (any, error) {
		calls++
		return nil, errors.New("deterministic failure")
	})
	if err == nil || calls != 1 {
		t.Fatalf("err=%v calls=%d, want 1 call and an error", err, calls)
	}
}

func TestRetryExhaustion(t *testing.T) {
	e := New(2, WithRetry(2, time.Millisecond))
	calls := 0
	_, err := e.Do(context.Background(), "always", func(context.Context) (any, error) {
		calls++
		return nil, MarkTransient(errors.New("still down"))
	})
	if !Transient(err) {
		t.Fatalf("got %v, want the final transient error", err)
	}
	if calls != 3 {
		t.Errorf("calls = %d, want 3 (1 + 2 retries)", calls)
	}
}

func TestMapRecoversPanic(t *testing.T) {
	e := New(2)
	err := e.Map(context.Background(), 4, func(_ context.Context, i int) error {
		if i == 2 {
			panic("worker down")
		}
		return nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("got %v, want *PanicError", err)
	}
}

func TestMapAllCollectsWithoutCancelling(t *testing.T) {
	e := New(4)
	ran := make([]bool, 6)
	errs := e.MapAll(context.Background(), 6, func(_ context.Context, i int) error {
		ran[i] = true
		switch i {
		case 1:
			return errors.New("cell 1 failed")
		case 3:
			panic("cell 3 diverged")
		}
		return nil
	})
	for i, r := range ran {
		if !r {
			t.Errorf("cell %d never ran (siblings must not be cancelled)", i)
		}
	}
	for i, err := range errs {
		switch i {
		case 1:
			if err == nil || err.Error() != "cell 1 failed" {
				t.Errorf("errs[1] = %v", err)
			}
		case 3:
			var pe *PanicError
			if !errors.As(err, &pe) {
				t.Errorf("errs[3] = %v, want *PanicError", err)
			}
		default:
			if err != nil {
				t.Errorf("errs[%d] = %v, want nil", i, err)
			}
		}
	}
}

func TestBackoffDeterminism(t *testing.T) {
	a := New(1, WithRetry(4, time.Millisecond), WithRetrySeed(7))
	b := New(1, WithRetry(4, time.Millisecond), WithRetrySeed(7))
	for i := 0; i < 4; i++ {
		if da, db := a.backoffFor(i), b.backoffFor(i); da != db {
			t.Errorf("attempt %d: %v vs %v with the same seed", i, da, db)
		}
	}
}
