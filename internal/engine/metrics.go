package engine

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"vliwcache/internal/obs"
)

// StageTime is the accumulated wall time of one pipeline stage across all
// tasks the engine ran, with the histogram summary of its per-run
// latencies (p50/p95/max).
type StageTime struct {
	Stage string
	Count int64
	Total time.Duration
	Mean  time.Duration
	P50   time.Duration
	P95   time.Duration
	Max   time.Duration
}

// Metrics is a point-in-time snapshot of an engine's counters.
type Metrics struct {
	// Workers is the pool size.
	Workers int
	// Submitted counts Do calls.
	Submitted int64
	// Computed counts tasks that actually executed (cache misses).
	Computed int64
	// CacheHits counts Do calls served from a completed memoized result.
	CacheHits int64
	// FlightWaits counts Do calls that joined an in-flight computation
	// instead of starting their own (single-flight deduplication).
	FlightWaits int64
	// Canceled counts Do calls that returned early on context cancellation.
	Canceled int64
	// Panics counts task panics the engine recovered into errors.
	Panics int64
	// Retries counts transient-failure retries performed.
	Retries int64
	// TimedOut counts task attempts that hit the per-task deadline.
	TimedOut int64
	// PoolRuns counts simulations dispatched through a machine pool.
	// Zero unless the owner wired a pool in (see experiments.WithMachinePool);
	// the engine itself does not pool machines.
	PoolRuns int64
	// PoolReuses counts PoolRuns that reused an idle pooled machine
	// instead of constructing one.
	PoolReuses int64
	// FastPathRuns counts pooled simulations that ran with the
	// steady-state fast path armed (sim.Options.FastPath set and the
	// schedule proved eligible). Like the pool counters, these are wired
	// in by the owner (see experiments.WithFastPath); zero without a
	// machine pool.
	FastPathRuns int64
	// FastPathFallbacks counts fast-path runs that fell back to plain
	// cycle-by-cycle simulation because eligibility could not be proved
	// (tracer installed, fault injection, aperiodic state, ...).
	FastPathFallbacks int64
	// FastPathExtrapolations counts steady-state detections that
	// validated and skipped ahead analytically.
	FastPathExtrapolations int64
	// FastPathSkippedCycles is the total simulated cycles the fast path
	// never executed: dead-cycle skips plus extrapolated iterations.
	FastPathSkippedCycles int64
	// SubstrateBuilds counts pooled binds that constructed a machine
	// substrate (cache modules, Attraction Buffers, arbiter, ports) from
	// scratch because no idle machine shared the cell's cache geometry.
	// Wired in by the owner alongside the pool counters; zero without a
	// machine pool. An arch sweep ordered arch-major keeps this near the
	// number of distinct geometries (see archspace.DistinctSubstrates).
	SubstrateBuilds int64
	// SubstrateReuses counts pooled binds that kept the machine's
	// substrate because the new schedule's cache geometry matched.
	SubstrateReuses int64
	// Busy is the summed wall time worker slots spent executing tasks.
	Busy time.Duration
	// Wall is the elapsed time since the engine was created.
	Wall time.Duration
	// Stages breaks Busy down by pipeline stage, sorted by stage name.
	Stages []StageTime
}

// Metrics snapshots the engine's counters.
func (e *Engine) Metrics() Metrics {
	m := Metrics{
		Workers:     e.workers,
		Submitted:   e.submitted.Load(),
		Computed:    e.computed.Load(),
		CacheHits:   e.cacheHits.Load(),
		FlightWaits: e.flightWaits.Load(),
		Canceled:    e.canceled.Load(),
		Panics:      e.panics.Load(),
		Retries:     e.retries.Load(),
		TimedOut:    e.timedOut.Load(),
		Busy:        time.Duration(e.busyNanos.Load()),
		Wall:        time.Since(e.start),
	}
	e.stageMu.Lock()
	for name, st := range e.stages {
		s := st.hist.Summarize()
		m.Stages = append(m.Stages, StageTime{Stage: name, Count: s.Count,
			Total: s.Total, Mean: s.Mean, P50: s.P50, P95: s.P95, Max: s.Max})
	}
	e.stageMu.Unlock()
	sort.Slice(m.Stages, func(i, j int) bool { return m.Stages[i].Stage < m.Stages[j].Stage })
	return m
}

// Utilization is the fraction of total worker capacity (wall time × pool
// size) spent executing tasks, in [0, 1].
func (m Metrics) Utilization() float64 {
	cap := float64(m.Wall) * float64(m.Workers)
	if cap <= 0 {
		return 0
	}
	u := float64(m.Busy) / cap
	if u > 1 {
		u = 1
	}
	return u
}

// String renders a compact human-readable summary.
func (m Metrics) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "engine: %d workers, %d submitted = %d computed + %d cache hits + %d flight waits + %d canceled\n",
		m.Workers, m.Submitted, m.Computed, m.CacheHits, m.FlightWaits, m.Canceled)
	fmt.Fprintf(&b, "engine: wall %v, busy %v, utilization %.0f%%\n",
		m.Wall.Round(time.Millisecond), m.Busy.Round(time.Millisecond), 100*m.Utilization())
	if m.Panics > 0 || m.Retries > 0 || m.TimedOut > 0 {
		fmt.Fprintf(&b, "engine: %d panics recovered, %d retries, %d deadline hits\n",
			m.Panics, m.Retries, m.TimedOut)
	}
	if m.PoolRuns > 0 {
		fmt.Fprintf(&b, "engine: machine pool %d runs, %d reuses (%.0f%%)\n",
			m.PoolRuns, m.PoolReuses, 100*float64(m.PoolReuses)/float64(m.PoolRuns))
	}
	if m.SubstrateBuilds > 0 || m.SubstrateReuses > 0 {
		fmt.Fprintf(&b, "engine: substrate %d builds, %d reuses\n",
			m.SubstrateBuilds, m.SubstrateReuses)
	}
	if m.FastPathRuns > 0 || m.FastPathFallbacks > 0 {
		fmt.Fprintf(&b, "engine: fast path %d eligible, %d fallbacks, %d extrapolations, %d cycles skipped\n",
			m.FastPathRuns, m.FastPathFallbacks, m.FastPathExtrapolations, m.FastPathSkippedCycles)
	}
	for _, st := range m.Stages {
		fmt.Fprintf(&b, "engine: stage %-10s %6d runs  total %v  p50 %v  p95 %v  max %v\n",
			st.Stage, st.Count, st.Total.Round(time.Millisecond),
			st.P50.Round(time.Microsecond), st.P95.Round(time.Microsecond), st.Max.Round(time.Microsecond))
	}
	return b.String()
}

// Summary converts a StageTime back into an obs.Summary (for exports).
func (st StageTime) Summary() obs.Summary {
	return obs.Summary{Count: st.Count, Total: st.Total, Mean: st.Mean,
		P50: st.P50, P95: st.P95, Max: st.Max}
}
