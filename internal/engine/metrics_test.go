package engine

import (
	"strings"
	"testing"
	"time"
)

// Utilization divides by wall time × pool size; a zero-value snapshot
// (no wall time elapsed, no workers) must yield 0, not NaN.
func TestUtilizationZero(t *testing.T) {
	cases := []struct {
		name string
		m    Metrics
	}{
		{"zero value", Metrics{}},
		{"workers but no wall", Metrics{Workers: 8}},
		{"wall but no workers", Metrics{Wall: time.Second}},
	}
	for _, tc := range cases {
		if u := tc.m.Utilization(); u != 0 {
			t.Errorf("%s: Utilization = %v, want 0", tc.name, u)
		}
		if out := tc.m.String(); strings.Contains(out, "NaN") {
			t.Errorf("%s: String() leaked NaN: %s", tc.name, out)
		}
	}
}

func TestUtilizationClamped(t *testing.T) {
	m := Metrics{Workers: 1, Wall: time.Second, Busy: 2 * time.Second}
	if u := m.Utilization(); u != 1 {
		t.Errorf("Utilization = %v, want clamp to 1", u)
	}
}

func TestStageHistogramSummaries(t *testing.T) {
	e := New(2)
	for i := 1; i <= 100; i++ {
		e.RecordStage("simulate", time.Duration(i)*time.Millisecond)
	}
	m := e.Metrics()
	if len(m.Stages) != 1 {
		t.Fatalf("got %d stages, want 1", len(m.Stages))
	}
	st := m.Stages[0]
	if st.Stage != "simulate" || st.Count != 100 {
		t.Fatalf("stage = %+v", st)
	}
	if st.P50 != 50*time.Millisecond {
		t.Errorf("p50 = %v, want 50ms", st.P50)
	}
	if st.P95 != 95*time.Millisecond {
		t.Errorf("p95 = %v, want 95ms", st.P95)
	}
	if st.Max != 100*time.Millisecond {
		t.Errorf("max = %v, want 100ms", st.Max)
	}
	if st.Total != 5050*time.Millisecond {
		t.Errorf("total = %v", st.Total)
	}
	sum := st.Summary()
	if sum.Count != 100 || sum.Max != st.Max {
		t.Errorf("Summary round trip: %+v", sum)
	}
}
