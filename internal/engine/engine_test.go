package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestDoMemoizes(t *testing.T) {
	e := New(2)
	var calls atomic.Int64
	task := func(ctx context.Context) (any, error) {
		calls.Add(1)
		return 42, nil
	}
	for i := 0; i < 5; i++ {
		v, err := e.Do(context.Background(), "k", task)
		if err != nil {
			t.Fatal(err)
		}
		if v.(int) != 42 {
			t.Fatalf("got %v", v)
		}
	}
	if calls.Load() != 1 {
		t.Errorf("task ran %d times, want 1", calls.Load())
	}
	m := e.Metrics()
	if m.Computed != 1 || m.CacheHits != 4 || m.Submitted != 5 {
		t.Errorf("metrics = %+v", m)
	}
}

func TestSingleFlightDedup(t *testing.T) {
	e := New(4)
	var calls atomic.Int64
	release := make(chan struct{})
	task := func(ctx context.Context) (any, error) {
		calls.Add(1)
		<-release
		return "v", nil
	}
	var wg sync.WaitGroup
	results := make([]any, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := e.Do(context.Background(), "same", task)
			if err != nil {
				t.Error(err)
			}
			results[i] = v
		}(i)
	}
	// Let every goroutine reach the flight before releasing the leader.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()
	if calls.Load() != 1 {
		t.Errorf("task ran %d times, want 1", calls.Load())
	}
	for i, v := range results {
		if v != "v" {
			t.Errorf("result[%d] = %v", i, v)
		}
	}
}

func TestBoundedConcurrency(t *testing.T) {
	const workers = 2
	e := New(workers)
	var cur, max atomic.Int64
	task := func(ctx context.Context) (any, error) {
		n := cur.Add(1)
		for {
			m := max.Load()
			if n <= m || max.CompareAndSwap(m, n) {
				break
			}
		}
		time.Sleep(5 * time.Millisecond)
		cur.Add(-1)
		return nil, nil
	}
	err := e.Map(context.Background(), 10, func(ctx context.Context, i int) error {
		_, err := e.Do(ctx, fmt.Sprintf("k%d", i), task)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := max.Load(); got > workers {
		t.Errorf("observed %d concurrent tasks, pool is %d", got, workers)
	}
}

func TestDoCancellation(t *testing.T) {
	e := New(1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := e.Do(ctx, "k", func(ctx context.Context) (any, error) { return nil, nil })
	if !errors.Is(err, context.Canceled) {
		t.Errorf("pre-canceled Do = %v, want context.Canceled", err)
	}

	// A waiter joining a slow flight must unblock when its ctx dies.
	release := make(chan struct{})
	go e.Do(context.Background(), "slow", func(ctx context.Context) (any, error) {
		<-release
		return nil, nil
	})
	time.Sleep(10 * time.Millisecond)
	wctx, wcancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer wcancel()
	_, err = e.Do(wctx, "slow", func(ctx context.Context) (any, error) { return nil, nil })
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("waiter = %v, want context.DeadlineExceeded", err)
	}
	close(release)
}

func TestErrorsAreNotCached(t *testing.T) {
	e := New(2)
	boom := errors.New("boom")
	var calls atomic.Int64
	task := func(ctx context.Context) (any, error) {
		if calls.Add(1) == 1 {
			return nil, boom
		}
		return "ok", nil
	}
	if _, err := e.Do(context.Background(), "k", task); !errors.Is(err, boom) {
		t.Fatalf("first call = %v, want boom", err)
	}
	v, err := e.Do(context.Background(), "k", task)
	if err != nil || v != "ok" {
		t.Fatalf("retry = %v, %v", v, err)
	}
	if calls.Load() != 2 {
		t.Errorf("task ran %d times, want 2", calls.Load())
	}
}

func TestMapFirstErrorCancelsRest(t *testing.T) {
	e := New(4)
	boom := errors.New("boom")
	var after atomic.Int64
	err := e.Map(context.Background(), 50, func(ctx context.Context, i int) error {
		if i == 0 {
			return boom
		}
		time.Sleep(time.Millisecond)
		if ctx.Err() != nil {
			after.Add(1)
			return ctx.Err()
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Errorf("Map = %v, want boom", err)
	}
}

func TestStageTimes(t *testing.T) {
	e := New(1)
	e.RecordStage("schedule", 3*time.Millisecond)
	e.RecordStage("schedule", 2*time.Millisecond)
	e.RecordStage("simulate", time.Millisecond)
	m := e.Metrics()
	if len(m.Stages) != 2 {
		t.Fatalf("stages = %+v", m.Stages)
	}
	if m.Stages[0].Stage != "schedule" || m.Stages[0].Count != 2 || m.Stages[0].Total != 5*time.Millisecond {
		t.Errorf("schedule stage = %+v", m.Stages[0])
	}
	if s := m.String(); s == "" {
		t.Error("empty metrics string")
	}
}

func TestDefaultWorkers(t *testing.T) {
	if e := New(0); e.Workers() < 1 {
		t.Errorf("default pool size %d", e.Workers())
	}
}
