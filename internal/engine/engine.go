// Package engine provides the parallel experiment executor: a bounded
// worker pool running keyed tasks with single-flight memoization and
// context cancellation. The experiments package submits independent
// (benchmark, variant) cells through one Engine so the paper's full
// evaluation grid fans out across cores while each cell is still computed
// exactly once, and aggregation stays deterministic because callers render
// results in canonical order after the fan-out completes.
package engine

import (
	"context"
	"math/rand"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"vliwcache/internal/obs"
)

// Task computes one memoizable unit of work. It must honor ctx promptly
// (the experiment pipeline checks it at stage boundaries).
type Task func(ctx context.Context) (any, error)

// flight is one in-progress or completed computation of a key.
type flight struct {
	done chan struct{} // closed when val/err are final
	val  any
	err  error
}

// Engine is a bounded worker pool with a single-flight memo cache.
// The zero value is not usable; call New.
type Engine struct {
	workers int
	sem     chan struct{} // worker slots; len == workers

	mu      sync.Mutex
	flights map[string]*flight

	start time.Time

	submitted   atomic.Int64
	computed    atomic.Int64
	cacheHits   atomic.Int64
	flightWaits atomic.Int64
	canceled    atomic.Int64
	busyNanos   atomic.Int64
	panics      atomic.Int64
	retries     atomic.Int64
	timedOut    atomic.Int64

	// Robustness envelope (see robust.go).
	taskTimeout time.Duration
	retryMax    int
	retryBase   time.Duration
	rngMu       sync.Mutex
	rng         *rand.Rand // backoff jitter

	stageMu sync.Mutex
	stages  map[string]*stageStat
}

type stageStat struct {
	hist obs.Histogram
}

// New builds an engine with the given number of worker slots. A
// non-positive count defaults to runtime.GOMAXPROCS(0). Options add the
// robustness envelope: per-task deadlines, transient-error retry.
func New(workers int, opts ...Option) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	e := &Engine{
		workers: workers,
		sem:     make(chan struct{}, workers),
		flights: make(map[string]*flight),
		start:   time.Now(),
		stages:  make(map[string]*stageStat),
		rng:     rand.New(rand.NewSource(1)),
	}
	for _, o := range opts {
		o(e)
	}
	return e
}

// Workers reports the pool size.
func (e *Engine) Workers() int { return e.workers }

// Do returns the memoized result for key, computing it at most once across
// concurrent callers. The first caller (the leader) runs task on a worker
// slot; callers that arrive while the computation is in flight block until
// it finishes and share its result. Successful results are cached forever;
// a failed computation is evicted so a later call can retry (its error is
// still delivered to every caller that joined the failed flight).
//
// Cancelling ctx unblocks the calling goroutine promptly: a waiter stops
// waiting, and a leader that has not yet acquired a worker slot gives up
// and evicts the flight.
func (e *Engine) Do(ctx context.Context, key string, task Task) (any, error) {
	e.submitted.Add(1)
	if err := ctx.Err(); err != nil {
		e.canceled.Add(1)
		return nil, err
	}

	e.mu.Lock()
	if f, ok := e.flights[key]; ok {
		e.mu.Unlock()
		select {
		case <-f.done:
			e.cacheHits.Add(1)
			return f.val, f.err
		default:
		}
		e.flightWaits.Add(1)
		select {
		case <-f.done:
			return f.val, f.err
		case <-ctx.Done():
			e.canceled.Add(1)
			return nil, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	e.flights[key] = f
	e.mu.Unlock()

	// Leader: acquire a worker slot, respecting cancellation.
	select {
	case e.sem <- struct{}{}:
	case <-ctx.Done():
		e.abort(key, f, ctx.Err())
		e.canceled.Add(1)
		return nil, f.err
	}
	if err := ctx.Err(); err != nil {
		<-e.sem
		e.abort(key, f, err)
		e.canceled.Add(1)
		return nil, f.err
	}

	t0 := time.Now()
	val, err := e.runTask(ctx, task)
	e.busyNanos.Add(int64(time.Since(t0)))
	<-e.sem

	e.computed.Add(1)
	if err != nil {
		e.abort(key, f, err)
		return nil, err
	}
	f.val = val
	close(f.done)
	return val, nil
}

// Run executes task on a worker slot without memoization. Unlike Do it
// takes no key and caches nothing — callers that own result reuse (the
// serving layer's content-addressed cache coalesces and stores response
// bytes itself) still share the same bounded pool, robustness envelope
// (per-task deadline, transient retry, panic recovery) and metrics as
// the memoized path. Time spent waiting for a worker slot is recorded
// as the "queue" stage, so pool backpressure is visible in Metrics.
func (e *Engine) Run(ctx context.Context, task Task) (any, error) {
	e.submitted.Add(1)
	if err := ctx.Err(); err != nil {
		e.canceled.Add(1)
		return nil, err
	}
	tq := time.Now()
	select {
	case e.sem <- struct{}{}:
	case <-ctx.Done():
		e.canceled.Add(1)
		return nil, ctx.Err()
	}
	e.RecordStage("queue", time.Since(tq))

	t0 := time.Now()
	val, err := e.runTask(ctx, task)
	e.busyNanos.Add(int64(time.Since(t0)))
	<-e.sem

	e.computed.Add(1)
	return val, err
}

// abort finalizes a failed flight: the error reaches every waiter, and the
// key is evicted so a future Do retries the computation.
func (e *Engine) abort(key string, f *flight, err error) {
	e.mu.Lock()
	if e.flights[key] == f {
		delete(e.flights, key)
	}
	e.mu.Unlock()
	f.err = err
	close(f.done)
}

// Map runs fn(ctx, i) for every i in [0, n) concurrently and waits for all
// of them. The first error cancels the context handed to the remaining
// calls and is returned. Map itself does not consume worker slots — tasks
// that should be bounded must go through Do — so it is safe to Map over a
// grid whose cells each call Do without risking slot deadlock.
func (e *Engine) Map(ctx context.Context, n int, fn func(ctx context.Context, i int) error) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg    sync.WaitGroup
		once  sync.Once
		first error
	)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					e.panics.Add(1)
					once.Do(func() {
						first = &PanicError{Value: r, Stack: debug.Stack()}
						cancel()
					})
				}
			}()
			if ctx.Err() != nil {
				return
			}
			if err := fn(ctx, i); err != nil {
				once.Do(func() {
					first = err
					cancel()
				})
			}
		}(i)
	}
	wg.Wait()
	return first
}

// RecordStage accumulates wall time attributed to a named pipeline stage
// (prepare, profile, schedule, simulate, ...) into that stage's latency
// histogram. Safe for concurrent use.
func (e *Engine) RecordStage(name string, d time.Duration) {
	e.stageMu.Lock()
	st := e.stages[name]
	if st == nil {
		st = &stageStat{}
		e.stages[name] = st
	}
	st.hist.Observe(d)
	e.stageMu.Unlock()
}
