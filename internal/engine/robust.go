package engine

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime/debug"
	"sync"
	"time"
)

// PanicError is a panic recovered from a task, carrying the recovered
// value and the goroutine stack at the panic site. The engine converts
// worker panics into errors so one diverging cell degrades the experiment
// grid instead of killing the process.
type PanicError struct {
	Value any
	Stack []byte
}

func (p *PanicError) Error() string { return fmt.Sprintf("task panicked: %v", p.Value) }

// ErrTransient marks errors worth retrying (resource exhaustion, flaky
// I/O). Wrap with MarkTransient; the engine retries only errors for which
// Transient reports true.
var ErrTransient = errors.New("transient failure")

// MarkTransient wraps err so Transient (and errors.Is with ErrTransient)
// reports true for it.
func MarkTransient(err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("%w: %w", ErrTransient, err)
}

// Transient reports whether err is marked retryable.
func Transient(err error) bool { return errors.Is(err, ErrTransient) }

// Option configures an Engine at construction.
type Option func(*Engine)

// WithTaskTimeout bounds each task attempt: the context handed to the task
// is cancelled after d, and a task that honors it returns
// context.DeadlineExceeded. Zero (the default) means no per-task deadline.
func WithTaskTimeout(d time.Duration) Option {
	return func(e *Engine) { e.taskTimeout = d }
}

// WithRetry re-runs a task up to max extra times when it fails with a
// transient error (see ErrTransient), sleeping an exponentially growing,
// jittered backoff starting at base between attempts. The jitter RNG is
// seeded deterministically so test runs are reproducible.
func WithRetry(max int, base time.Duration) Option {
	return func(e *Engine) {
		e.retryMax = max
		e.retryBase = base
	}
}

// WithRetrySeed seeds the backoff jitter (default 1).
func WithRetrySeed(seed int64) Option {
	return func(e *Engine) { e.rng = rand.New(rand.NewSource(seed)) }
}

// runTask executes one task with the engine's robustness envelope:
// per-attempt deadline, panic-to-error conversion, and bounded retry with
// jittered backoff for transient failures.
func (e *Engine) runTask(ctx context.Context, task Task) (any, error) {
	for attempt := 0; ; attempt++ {
		val, err := e.attempt(ctx, task)
		if err == nil || attempt >= e.retryMax || !Transient(err) || ctx.Err() != nil {
			return val, err
		}
		e.retries.Add(1)
		select {
		case <-time.After(e.backoffFor(attempt)):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// attempt runs the task once under the per-task deadline, converting a
// panic into a *PanicError.
func (e *Engine) attempt(ctx context.Context, task Task) (val any, err error) {
	if e.taskTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, e.taskTimeout)
		defer cancel()
	}
	defer func() {
		if r := recover(); r != nil {
			e.panics.Add(1)
			val, err = nil, &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	val, err = task(ctx)
	if err != nil && errors.Is(err, context.DeadlineExceeded) {
		e.timedOut.Add(1)
	}
	return val, err
}

// backoffFor returns the sleep before retry attempt+1: base << attempt,
// plus up to 50% deterministic jitter to decorrelate retry storms.
func (e *Engine) backoffFor(attempt int) time.Duration {
	d := e.retryBase
	if d <= 0 {
		d = time.Millisecond
	}
	if attempt < 16 {
		d <<= attempt
	} else {
		d <<= 16
	}
	e.rngMu.Lock()
	j := e.rng.Int63n(int64(d)/2 + 1)
	e.rngMu.Unlock()
	return d + time.Duration(j)
}

// MapAll runs fn(ctx, i) for every i in [0, n) concurrently and waits for
// all of them, collecting one error slot per index. Unlike Map it does NOT
// cancel siblings on the first failure — this is the degraded-mode
// primitive: every cell gets its chance, and the caller decides what to do
// with the failures. A panicking fn is captured as a *PanicError in its
// slot. The returned slice has length n; nil entries succeeded.
func (e *Engine) MapAll(ctx context.Context, n int, fn func(ctx context.Context, i int) error) []error {
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					e.panics.Add(1)
					errs[i] = &PanicError{Value: r, Stack: debug.Stack()}
				}
			}()
			if err := ctx.Err(); err != nil {
				errs[i] = err
				return
			}
			errs[i] = fn(ctx, i)
		}(i)
	}
	wg.Wait()
	return errs
}
