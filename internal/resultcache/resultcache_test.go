package resultcache

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestKeyStableAndPrefixSafe(t *testing.T) {
	if Key("a", "b") != Key("a", "b") {
		t.Error("Key must be deterministic")
	}
	if Key("ab", "c") == Key("a", "bc") {
		t.Error("length prefixing must prevent concatenation collisions")
	}
	if Key("a") == Key("a", "") {
		t.Error("arity must be part of the address")
	}
}

func TestGetPutLRUEviction(t *testing.T) {
	// Budget fits exactly two of these entries (key 1 byte + val 9 bytes).
	c := New(20)
	val := func(s string) []byte { return []byte(s + "12345678") }
	c.Put("a", val("a"))
	c.Put("b", val("b"))
	if got, ok := c.Get("a"); !ok || !bytes.Equal(got, val("a")) {
		t.Fatal("a must be cached")
	}
	// "a" is now most recently used, so inserting "c" evicts "b".
	c.Put("c", val("c"))
	if _, ok := c.Get("b"); ok {
		t.Error("b must have been evicted (LRU)")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a must have survived (recently used)")
	}
	if _, ok := c.Get("c"); !ok {
		t.Error("c must be cached")
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 2 || st.Bytes != 20 {
		t.Errorf("stats = %+v", st)
	}
}

func TestOversizedNeverStored(t *testing.T) {
	c := New(4)
	c.Put("k", []byte("way too large"))
	if _, ok := c.Get("k"); ok {
		t.Error("oversized entry must not be stored")
	}
	if st := c.Stats(); st.Oversized != 1 || st.Entries != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestDoOutcomes(t *testing.T) {
	c := New(0)
	ctx := context.Background()
	calls := 0
	compute := func(context.Context) ([]byte, error) { calls++; return []byte("r"), nil }

	got, out, err := c.Do(ctx, "k", compute)
	if err != nil || out != Miss || string(got) != "r" {
		t.Fatalf("first Do = %q, %v, %v", got, out, err)
	}
	got, out, err = c.Do(ctx, "k", compute)
	if err != nil || out != Hit || string(got) != "r" {
		t.Fatalf("second Do = %q, %v, %v", got, out, err)
	}
	if calls != 1 {
		t.Errorf("compute ran %d times, want 1", calls)
	}

	// A failed computation is not cached and the error is returned.
	boom := errors.New("boom")
	_, out, err = c.Do(ctx, "bad", func(context.Context) ([]byte, error) { return nil, boom })
	if out != Miss || !errors.Is(err, boom) {
		t.Fatalf("failed Do = %v, %v", out, err)
	}
	if _, ok := c.Get("bad"); ok {
		t.Error("failed result must not be cached")
	}

	for o, want := range map[Outcome]string{Miss: "miss", Hit: "hit", Coalesced: "coalesced", Outcome(9): "unknown"} {
		if o.String() != want {
			t.Errorf("Outcome(%d).String() = %q", o, o.String())
		}
	}
}

// TestDoCoalescing proves N concurrent identical Do calls run compute
// exactly once: one leader computes while every other caller blocks on
// the in-flight computation and shares its bytes.
func TestDoCoalescing(t *testing.T) {
	const n = 16
	c := New(0)
	var computes atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	compute := func(context.Context) ([]byte, error) {
		computes.Add(1)
		close(started)
		<-release
		return []byte("shared"), nil
	}

	results := make([][]byte, n)
	outcomes := make([]Outcome, n)
	var wg sync.WaitGroup
	leaderIn := make(chan struct{}) // leader's Do call entered
	wg.Add(1)
	go func() {
		defer wg.Done()
		close(leaderIn)
		results[0], outcomes[0], _ = c.Do(context.Background(), "k", compute)
	}()
	<-leaderIn
	<-started // compute is running; everyone else must coalesce
	for i := 1; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], outcomes[i], _ = c.Do(context.Background(), "k", compute)
		}(i)
	}
	// Wait until all followers are registered as coalesced, then let
	// the leader finish.
	for {
		if st := c.Stats(); st.Coalesced == n-1 {
			break
		}
	}
	close(release)
	wg.Wait()

	if got := computes.Load(); got != 1 {
		t.Fatalf("compute ran %d times, want 1", got)
	}
	var coalesced int
	for i := range results {
		if !bytes.Equal(results[i], []byte("shared")) {
			t.Fatalf("caller %d got %q", i, results[i])
		}
		if outcomes[i] == Coalesced {
			coalesced++
		}
	}
	if outcomes[0] != Miss || coalesced != n-1 {
		t.Errorf("outcomes = %v", outcomes)
	}
}

func TestDoCoalescedWaiterCancellation(t *testing.T) {
	c := New(0)
	release := make(chan struct{})
	started := make(chan struct{})
	go c.Do(context.Background(), "k", func(context.Context) ([]byte, error) {
		close(started)
		<-release
		return []byte("v"), nil
	})
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, out, err := c.Do(ctx, "k", func(context.Context) ([]byte, error) {
		t.Error("cancelled waiter must not compute")
		return nil, nil
	})
	if out != Coalesced || !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled waiter = %v, %v", out, err)
	}
	close(release)
}

// TestDoConcurrentDistinctKeys hammers the cache with a mixed keyspace
// under the race detector.
func TestDoConcurrentDistinctKeys(t *testing.T) {
	c := New(1 << 10) // small budget: eviction races with lookup
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", i%32)
				want := []byte(fmt.Sprintf("v%d", i%32))
				got, _, err := c.Do(context.Background(), key, func(context.Context) ([]byte, error) {
					return want, nil
				})
				if err != nil || !bytes.Equal(got, want) {
					t.Errorf("Do(%s) = %q, %v", key, got, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Hits+st.Misses+st.Coalesced != 8*200 {
		t.Errorf("lookup accounting leaks: %+v", st)
	}
}
