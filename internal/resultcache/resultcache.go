// Package resultcache is the serving layer's content-addressed result
// cache: computed response bodies keyed by a stable hash of everything
// that determines them, with single-flight request coalescing and an
// LRU byte-budget eviction policy.
//
// The design leans on a property the rest of the repo already proves:
// the pipeline is deterministic — equal inputs (canonical loop bytes,
// policy, heuristic, machine description, simulation options, fault
// seed) produce byte-identical outputs. Caching and coalescing are
// therefore correct by construction: a hit replays the exact bytes the
// populating miss produced, and N concurrent identical requests can
// safely share one computation.
//
// Unlike engine.Engine's single-flight memo (which caches forever and
// is sized for a bounded experiment grid), this cache is built for an
// unbounded request stream: completed flights are dropped, results live
// in the LRU under a byte budget, and eviction is O(1) per entry.
package resultcache

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sync"
)

// Key hashes an ordered list of request components into a stable
// content address. Components are length-prefixed before hashing, so
// ("ab","c") and ("a","bc") cannot collide.
func Key(parts ...string) string {
	h := sha256.New()
	var n [8]byte
	for _, p := range parts {
		binary.BigEndian.PutUint64(n[:], uint64(len(p)))
		h.Write(n[:])
		h.Write([]byte(p))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Outcome classifies how a Do call was served.
type Outcome int

const (
	// Miss: this caller computed the result (the flight leader).
	Miss Outcome = iota
	// Hit: the result was already cached; its stored bytes were served.
	Hit
	// Coalesced: an identical computation was in flight; this caller
	// waited for it and shares its result.
	Coalesced
)

func (o Outcome) String() string {
	switch o {
	case Miss:
		return "miss"
	case Hit:
		return "hit"
	case Coalesced:
		return "coalesced"
	}
	return "unknown"
}

// Stats is a point-in-time snapshot of the cache's counters.
type Stats struct {
	// Hits counts lookups served from a stored result.
	Hits int64
	// Misses counts lookups that computed (Do) or missed (Get).
	Misses int64
	// Coalesced counts Do calls that joined an in-flight computation.
	Coalesced int64
	// Puts counts results inserted into the store.
	Puts int64
	// Evictions counts entries removed to honor the byte budget.
	Evictions int64
	// Oversized counts results too large to store at all (larger than
	// the whole budget); they are served but never cached.
	Oversized int64
	// Entries is the number of stored results.
	Entries int
	// Bytes is the stored payload volume (keys + values).
	Bytes int64
	// BudgetBytes is the configured byte budget.
	BudgetBytes int64
}

// flight is one in-progress computation of a key.
type flight struct {
	done chan struct{} // closed when val/err are final
	val  []byte
	err  error
}

// entry is one stored result.
type entry struct {
	key string
	val []byte
}

// Cache is a content-addressed byte cache with single-flight coalescing
// and LRU eviction under a byte budget. It is safe for concurrent use.
// The zero value is not usable; call New.
type Cache struct {
	mu      sync.Mutex
	budget  int64
	bytes   int64
	ll      *list.List // front = most recently used
	entries map[string]*list.Element
	flights map[string]*flight

	hits, misses, coalesced int64
	puts, evictions         int64
	oversized               int64
}

// DefaultBudget is the byte budget used when New is given a
// non-positive one: 64 MiB, roughly 10^5 schedule responses.
const DefaultBudget = 64 << 20

// New builds a cache with the given byte budget (<= 0 uses
// DefaultBudget).
func New(budgetBytes int64) *Cache {
	if budgetBytes <= 0 {
		budgetBytes = DefaultBudget
	}
	return &Cache{
		budget:  budgetBytes,
		ll:      list.New(),
		entries: make(map[string]*list.Element),
		flights: make(map[string]*flight),
	}
}

// Get returns the stored bytes for key, marking the entry most recently
// used. Callers must treat the returned slice as immutable: the cache
// serves the same backing array to every hit (that is what makes hits
// byte-identical and allocation-free).
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.hits++
		c.ll.MoveToFront(el)
		return el.Value.(*entry).val, true
	}
	c.misses++
	return nil, false
}

// Peek is Get for layered lookups: a found key counts as a hit and is
// marked most recently used, but an absent key records nothing — the
// caller is expected to follow up with Do, which owns the miss (or
// coalesce) accounting. This keeps Hits+Misses+Coalesced equal to the
// number of logical lookups when a fast path runs in front of Do.
func (c *Cache) Peek(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.hits++
		c.ll.MoveToFront(el)
		return el.Value.(*entry).val, true
	}
	return nil, false
}

// Contains reports whether key is resident, without counting a hit or
// touching LRU order — a pure inspection for tests and diagnostics
// (e.g. asserting a cell landed on its ring owner).
func (c *Cache) Contains(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[key]
	return ok
}

// Put stores val under key (no-op if the key is already present),
// evicting least-recently-used entries until the budget holds. The
// cache takes ownership of val.
func (c *Cache) Put(key string, val []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.putLocked(key, val)
}

func (c *Cache) putLocked(key string, val []byte) {
	if _, ok := c.entries[key]; ok {
		return
	}
	size := entrySize(key, val)
	if size > c.budget {
		c.oversized++
		return
	}
	c.entries[key] = c.ll.PushFront(&entry{key: key, val: val})
	c.bytes += size
	c.puts++
	for c.bytes > c.budget {
		back := c.ll.Back()
		if back == nil {
			break
		}
		e := back.Value.(*entry)
		c.ll.Remove(back)
		delete(c.entries, e.key)
		c.bytes -= entrySize(e.key, e.val)
		c.evictions++
	}
}

func entrySize(key string, val []byte) int64 { return int64(len(key) + len(val)) }

// Do returns the bytes for key, computing them at most once across
// concurrent callers. A stored result is served directly (Hit). If an
// identical computation is in flight, the caller waits for it and
// shares its outcome (Coalesced); cancelling ctx abandons the wait. The
// first caller for an absent key runs compute (Miss) and publishes a
// successful result to the store; a failed computation is delivered to
// every coalesced waiter and nothing is cached, so a later call
// retries.
//
// The leader runs compute with its own ctx — if the leader's request is
// cancelled mid-computation, coalesced waiters receive that error too
// (they can retry, becoming the new leader).
func (c *Cache) Do(ctx context.Context, key string, compute func(ctx context.Context) ([]byte, error)) ([]byte, Outcome, error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.hits++
		c.ll.MoveToFront(el)
		val := el.Value.(*entry).val
		c.mu.Unlock()
		return val, Hit, nil
	}
	if f, ok := c.flights[key]; ok {
		c.coalesced++
		c.mu.Unlock()
		select {
		case <-f.done:
			return f.val, Coalesced, f.err
		case <-ctx.Done():
			return nil, Coalesced, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	c.flights[key] = f
	c.misses++
	c.mu.Unlock()

	val, err := compute(ctx)

	c.mu.Lock()
	delete(c.flights, key)
	if err == nil {
		c.putLocked(key, val)
	}
	c.mu.Unlock()
	f.val, f.err = val, err
	close(f.done)
	return val, Miss, err
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:        c.hits,
		Misses:      c.misses,
		Coalesced:   c.coalesced,
		Puts:        c.puts,
		Evictions:   c.evictions,
		Oversized:   c.oversized,
		Entries:     len(c.entries),
		Bytes:       c.bytes,
		BudgetBytes: c.budget,
	}
}
