package sched

import (
	"testing"

	"vliwcache/internal/arch"
	"vliwcache/internal/core"
	"vliwcache/internal/loopgen"
	"vliwcache/internal/profiler"
)

// TestOrderSlackValidates: the swing-style ordering must produce valid
// schedules over random loops, for every policy.
func TestOrderSlackValidates(t *testing.T) {
	cfg := arch.Default()
	for seed := int64(400); seed < 460; seed++ {
		loop := loopgen.Random(seed, loopgen.DefaultParams())
		for _, pol := range []core.Policy{core.PolicyFree, core.PolicyMDC, core.PolicyDDGT} {
			plan, err := core.Prepare(loop, pol, cfg.NumClusters)
			if err != nil {
				t.Fatal(err)
			}
			sc, err := Run(plan, Options{Arch: cfg, Heuristic: MinComs, Order: OrderSlack,
				Profile: profiler.Run(loop, cfg)})
			if err != nil {
				t.Fatalf("seed %d %v: %v", seed, pol, err)
			}
			if err := Validate(sc); err != nil {
				t.Fatalf("seed %d %v: %v", seed, pol, err)
			}
		}
	}
}

// TestOrderingsComparable: both orderings achieve IIs within a small factor
// of each other on random loops (neither is catastrophically bad).
func TestOrderingsComparable(t *testing.T) {
	cfg := arch.Default()
	var hSum, sSum int
	for seed := int64(500); seed < 540; seed++ {
		loop := loopgen.Random(seed, loopgen.DefaultParams())
		plan, err := core.Prepare(loop, core.PolicyMDC, cfg.NumClusters)
		if err != nil {
			t.Fatal(err)
		}
		prof := profiler.Run(loop, cfg)
		a, err := Run(plan, Options{Arch: cfg, Heuristic: PrefClus, Order: OrderHeight, Profile: prof})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(plan, Options{Arch: cfg, Heuristic: PrefClus, Order: OrderSlack, Profile: prof})
		if err != nil {
			t.Fatal(err)
		}
		hSum += a.II
		sSum += b.II
	}
	if hSum*2 < sSum || sSum*2 < hSum {
		t.Errorf("orderings wildly divergent: height sum %d vs slack sum %d", hSum, sSum)
	}
	t.Logf("total II: height=%d slack=%d", hSum, sSum)
}

func TestOrderStrings(t *testing.T) {
	if OrderHeight.String() != "height" || OrderSlack.String() != "slack" {
		t.Error("order names changed")
	}
}
