package sched

import (
	"vliwcache/internal/arch"
	"vliwcache/internal/ir"
)

// classIndex maps functional-unit classes to rows of the reservation table.
func classIndex(c ir.Class) int {
	switch c {
	case ir.ClassInt:
		return 0
	case ir.ClassFP:
		return 1
	case ir.ClassMem:
		return 2
	}
	return -1
}

// mrt is a modulo reservation table: per-cluster functional units plus the
// shared register-to-register buses, each with II time slots. Entries store
// the owning op ID so ejection can free reservations uniformly.
type mrt struct {
	ii  int
	cfg arch.Config

	// fu[cluster][class][slot] lists owner op IDs; capacity is the unit
	// count of the class.
	fu [][][][]int

	// bus[b][slot] holds the producer op ID of the copy occupying bus b at
	// that slot, or -1.
	bus [][]int
}

func newMRT(cfg arch.Config, ii int) *mrt {
	m := &mrt{ii: ii, cfg: cfg}
	m.fu = make([][][][]int, cfg.NumClusters)
	for c := range m.fu {
		m.fu[c] = make([][][]int, 3)
		for k := range m.fu[c] {
			m.fu[c][k] = make([][]int, ii)
		}
	}
	m.bus = make([][]int, cfg.RegBuses)
	for b := range m.bus {
		m.bus[b] = make([]int, ii)
		for s := range m.bus[b] {
			m.bus[b][s] = -1
		}
	}
	return m
}

func (m *mrt) units(class int) int {
	switch class {
	case 0:
		return m.cfg.IntUnits
	case 1:
		return m.cfg.FPUnits
	case 2:
		return m.cfg.MemUnits
	}
	return 0
}

func (m *mrt) slot(t int) int {
	s := t % m.ii
	if s < 0 {
		s += m.ii
	}
	return s
}

// fuFree reports whether an op of the given class can issue in cluster c at
// cycle t.
func (m *mrt) fuFree(c int, class ir.Class, t int) bool {
	k := classIndex(class)
	return len(m.fu[c][k][m.slot(t)]) < m.units(k)
}

// fuOwners returns the ops occupying the (cluster, class) row at cycle t.
func (m *mrt) fuOwners(c int, class ir.Class, t int) []int {
	k := classIndex(class)
	return m.fu[c][k][m.slot(t)]
}

// fuReserve records op occupying a unit of its class in cluster c at t.
func (m *mrt) fuReserve(op, c int, class ir.Class, t int) {
	k := classIndex(class)
	s := m.slot(t)
	m.fu[c][k][s] = append(m.fu[c][k][s], op)
}

// fuRelease frees op's unit reservation.
func (m *mrt) fuRelease(op, c int, class ir.Class, t int) {
	k := classIndex(class)
	s := m.slot(t)
	row := m.fu[c][k][s]
	for i, o := range row {
		if o == op {
			m.fu[c][k][s] = append(row[:i], row[i+1:]...)
			return
		}
	}
}

// busFind returns a bus that is free for the cfg.RegBusLatency consecutive
// slots starting at cycle t, or -1.
func (m *mrt) busFind(t int) int {
	for b := range m.bus {
		if m.busFreeOn(b, t) {
			return b
		}
	}
	return -1
}

func (m *mrt) busFreeOn(b, t int) bool {
	if m.cfg.RegBusLatency > m.ii {
		// A transfer spanning more than II cycles would overlap itself in
		// the modulo table; such a bus can carry at most one transfer,
		// which we model by requiring the whole table row free.
		for s := 0; s < m.ii; s++ {
			if m.bus[b][s] != -1 {
				return false
			}
		}
		return true
	}
	for d := 0; d < m.cfg.RegBusLatency; d++ {
		if m.bus[b][m.slot(t+d)] != -1 {
			return false
		}
	}
	return true
}

// busReserve occupies bus b for a transfer starting at t, owned by the
// producer op.
func (m *mrt) busReserve(producer, b, t int) {
	span := m.cfg.RegBusLatency
	if span > m.ii {
		span = m.ii
	}
	for d := 0; d < span; d++ {
		m.bus[b][m.slot(t+d)] = producer
	}
}

// busRelease frees the reservation of the transfer starting at t on bus b.
func (m *mrt) busRelease(b, t int) {
	span := m.cfg.RegBusLatency
	if span > m.ii {
		span = m.ii
	}
	for d := 0; d < span; d++ {
		m.bus[b][m.slot(t+d)] = -1
	}
}

// busOwnersOn returns the distinct producer ops holding any of the slots a
// transfer starting at t would need on bus b.
func (m *mrt) busOwnersOn(b, t int) []int {
	span := m.cfg.RegBusLatency
	if span > m.ii {
		span = m.ii
	}
	var owners []int
	for d := 0; d < span; d++ {
		o := m.bus[b][m.slot(t+d)]
		if o == -1 {
			continue
		}
		dup := false
		for _, x := range owners {
			if x == o {
				dup = true
				break
			}
		}
		if !dup {
			owners = append(owners, o)
		}
	}
	return owners
}

// copyKey identifies one value transfer: a producer op's value moving to a
// cluster. Consumers in the same cluster share the transfer.
type copyKey struct {
	producer  int
	toCluster int
}

// copyRes is a reserved inter-cluster value transfer.
type copyRes struct {
	key   copyKey
	start int // cycle the bus transfer starts (producer iteration frame)
	bus   int
	users map[int]bool // consumer op IDs relying on this transfer
}
