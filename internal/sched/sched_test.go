package sched

import (
	"testing"

	"vliwcache/internal/arch"
	"vliwcache/internal/core"
	"vliwcache/internal/ir"
	"vliwcache/internal/profiler"
)

// daxpyLoop builds y[i] = a*x[i] + y[i]: two loads, one store, FP ops, and
// an exact loop-independent dependence structure (the store aliases the
// load of y at distance 0 only).
func daxpyLoop() *ir.Loop {
	b := ir.NewBuilder("daxpy")
	b.Symbol("x", 0x10000, 1<<20)
	b.Symbol("y", 0x80000, 1<<20)
	a := b.Reg() // live-in scalar
	x := b.Load("ldx", ir.AddrExpr{Base: "x", Stride: 8, Size: 8})
	y := b.Load("ldy", ir.AddrExpr{Base: "y", Stride: 8, Size: 8})
	m := b.Arith("mul", ir.KindFMul, a, x)
	sum := b.Arith("add", ir.KindFAdd, m, y)
	b.Store("sty", ir.AddrExpr{Base: "y", Stride: 8, Size: 8}, sum)
	return b.Loop()
}

// recurrenceLoop builds s += a[i] (loop-carried RF recurrence) plus an
// ambiguous store through a may-aliased pointer, creating a memory chain.
func recurrenceLoop() *ir.Loop {
	b := ir.NewBuilder("recurrence")
	b.Symbol("a", 0x10000, 1<<20)
	b.Symbol("p", 0x90000, 1<<20, "a")
	v := b.Load("lda", ir.AddrExpr{Base: "a", Stride: 4, Size: 4})
	b.Arith("acc", ir.KindAdd, v)
	loop := b.Loop()
	// acc accumulates into itself across iterations.
	accOp := loop.Ops[1]
	accOp.Srcs = append(accOp.Srcs, accOp.Dst)
	// Append a store through the may-aliased pointer.
	loop.Append(&ir.Op{Name: "stp", Kind: ir.KindStore, Dst: ir.NoReg,
		Srcs: []ir.Reg{accOp.Dst}, Addr: &ir.AddrExpr{Base: "p", Stride: 4, Size: 4}})
	loop.Renumber()
	if err := loop.Validate(); err != nil {
		panic(err)
	}
	return loop
}

func scheduleOrDie(t *testing.T, loop *ir.Loop, pol core.Policy, h Heuristic, cfg arch.Config) *Schedule {
	t.Helper()
	plan, err := core.Prepare(loop, pol, cfg.NumClusters)
	if err != nil {
		t.Fatal(err)
	}
	prof := profiler.Run(loop, cfg)
	sc, err := Run(plan, Options{Arch: cfg, Heuristic: h, Profile: prof})
	if err != nil {
		t.Fatalf("%s/%s: %v", pol, h, err)
	}
	return sc
}

func TestScheduleDaxpyAllPolicies(t *testing.T) {
	cfg := arch.Default()
	for _, pol := range []core.Policy{core.PolicyFree, core.PolicyMDC, core.PolicyDDGT} {
		for _, h := range []Heuristic{PrefClus, MinComs} {
			sc := scheduleOrDie(t, daxpyLoop(), pol, h, cfg)
			if err := Validate(sc); err != nil {
				t.Errorf("%s/%s: invalid schedule: %v\n%s", pol, h, err, sc)
			}
			if sc.II < 1 {
				t.Errorf("%s/%s: II = %d", pol, h, sc.II)
			}
		}
	}
}

func TestScheduleRecurrence(t *testing.T) {
	cfg := arch.Default()
	for _, pol := range []core.Policy{core.PolicyFree, core.PolicyMDC, core.PolicyDDGT} {
		sc := scheduleOrDie(t, recurrenceLoop(), pol, MinComs, cfg)
		if err := Validate(sc); err != nil {
			t.Errorf("%s: %v\n%s", pol, err, sc)
		}
	}
}

func TestMDCChainSingleCluster(t *testing.T) {
	cfg := arch.Default()
	loop := recurrenceLoop()
	plan, err := core.Prepare(loop, core.PolicyMDC, cfg.NumClusters)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Chains) != 1 || len(plan.Chains[0]) != 2 {
		t.Fatalf("chains = %v, want one chain {load, store}", plan.Chains)
	}
	sc, err := Run(plan, Options{Arch: cfg, Heuristic: PrefClus, Profile: profiler.Run(loop, cfg)})
	if err != nil {
		t.Fatal(err)
	}
	ch := plan.Chains[0]
	if sc.Cluster[ch[0]] != sc.Cluster[ch[1]] {
		t.Errorf("chain split: clusters %d and %d", sc.Cluster[ch[0]], sc.Cluster[ch[1]])
	}
}

func TestDDGTReplicasCoverClusters(t *testing.T) {
	cfg := arch.Default()
	loop := recurrenceLoop()
	plan, err := core.Prepare(loop, core.PolicyDDGT, cfg.NumClusters)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.ReplicaGroups) != 1 {
		t.Fatalf("replica groups = %v, want 1", plan.ReplicaGroups)
	}
	sc, err := Run(plan, Options{Arch: cfg, Heuristic: MinComs, Profile: profiler.Run(loop, cfg)})
	if err != nil {
		t.Fatal(err)
	}
	for _, group := range plan.ReplicaGroups {
		seen := make(map[int]bool)
		for _, id := range group {
			seen[sc.Cluster[id]] = true
		}
		if len(seen) != cfg.NumClusters {
			t.Errorf("replica group clusters = %v, want all %d clusters", seen, cfg.NumClusters)
		}
	}
}

func TestResMIIBounds(t *testing.T) {
	cfg := arch.Default()
	// 9 memory ops over 4 clusters x 1 mem unit => ResMII >= 3.
	b := ir.NewBuilder("memheavy")
	b.Symbol("a", 0x1000, 1<<20)
	for i := 0; i < 9; i++ {
		b.Load("", ir.AddrExpr{Base: "a", Offset: int64(1024 * i), Stride: 4, Size: 4})
	}
	loop := b.Loop()
	plan, err := core.Prepare(loop, core.PolicyFree, cfg.NumClusters)
	if err != nil {
		t.Fatal(err)
	}
	if got := ResMII(plan, cfg); got != 3 {
		t.Errorf("ResMII = %d, want 3", got)
	}
	sc, err := Run(plan, Options{Arch: cfg, Heuristic: MinComs})
	if err != nil {
		t.Fatal(err)
	}
	if sc.II < 3 {
		t.Errorf("II = %d < ResMII 3", sc.II)
	}
}

func TestLatencyAssignmentUsesSlack(t *testing.T) {
	cfg := arch.Default()
	// A load whose consumer is far away (long int chain) should be
	// assigned a large latency; a load feeding its consumer immediately on
	// the critical recurrence should stay small.
	b := ir.NewBuilder("slack")
	b.Symbol("a", 0x1000, 1<<20)
	v := b.Load("ld", ir.AddrExpr{Base: "a", Stride: 4, Size: 4})
	x := v
	for i := 0; i < 6; i++ {
		x = b.Arith("", ir.KindMul, x)
	}
	_ = x
	loop := b.Loop()
	plan, err := core.Prepare(loop, core.PolicyFree, cfg.NumClusters)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := Run(plan, Options{Arch: cfg, Heuristic: MinComs})
	if err != nil {
		t.Fatal(err)
	}
	lats := cfg.Latencies()
	if sc.Lat[0] < lats.RemoteMiss {
		// With six dependent multiplies after it, the load alone does not
		// determine the critical path at the achieved II... but the
		// critical path runs through it, so promotion must have stopped
		// below remote miss only if the path would lengthen.
		asap := sc.Cycle[0]
		_ = asap
	}
	if err := Validate(sc); err != nil {
		t.Fatal(err)
	}
}

func TestNobalConfigsSchedule(t *testing.T) {
	for _, cfg := range []arch.Config{arch.NobalMem(), arch.NobalReg()} {
		sc := scheduleOrDie(t, daxpyLoop(), core.PolicyDDGT, PrefClus, cfg)
		if err := Validate(sc); err != nil {
			t.Errorf("%s: %v", cfg, err)
		}
	}
}
