package sched

import (
	"fmt"

	"vliwcache/internal/ddg"
)

// Validate checks every invariant a correct modulo schedule must satisfy:
// complete placement, functional-unit and bus capacity at every modulo
// slot, every dependence honored (with the bus transfer actually scheduled
// for cross-cluster register flow), memory dependent chains in a single
// cluster, and replica groups covering every cluster exactly once. The
// scheduler runs it on its own output; tests use it as the oracle.
func Validate(sc *Schedule) error {
	plan, cfg, ii := sc.Plan, sc.Arch, sc.II
	ops := plan.Loop.Ops
	if ii < 1 {
		return fmt.Errorf("II = %d", ii)
	}
	if len(sc.Cycle) != len(ops) || len(sc.Cluster) != len(ops) || len(sc.Lat) != len(ops) {
		return fmt.Errorf("schedule arrays do not match op count")
	}

	// Placement and capacity.
	m := newMRT(cfg, ii)
	for id, o := range ops {
		if sc.Cycle[id] < 0 {
			return fmt.Errorf("op %s unscheduled", o.Label())
		}
		if sc.Cluster[id] < 0 || sc.Cluster[id] >= cfg.NumClusters {
			return fmt.Errorf("op %s in invalid cluster %d", o.Label(), sc.Cluster[id])
		}
		if !m.fuFree(sc.Cluster[id], o.Kind.UnitClass(), sc.Cycle[id]) {
			return fmt.Errorf("%s units oversubscribed in cluster %d at slot %d",
				o.Kind.UnitClass(), sc.Cluster[id], sc.Cycle[id]%ii)
		}
		m.fuReserve(id, sc.Cluster[id], o.Kind.UnitClass(), sc.Cycle[id])
	}

	// Bus capacity: every copy's span must be free when replayed.
	for _, c := range sc.Copies {
		if c.Bus < 0 || c.Bus >= cfg.RegBuses {
			return fmt.Errorf("copy of op %d uses invalid bus %d", c.Producer, c.Bus)
		}
		if !m.busFreeOn(c.Bus, c.Start) {
			return fmt.Errorf("bus %d oversubscribed at start %d (copy of op %d)", c.Bus, c.Start, c.Producer)
		}
		m.busReserve(c.Producer, c.Bus, c.Start)
		if c.Start < sc.Cycle[c.Producer]+sc.Lat[c.Producer] {
			return fmt.Errorf("copy of op %d starts at %d before the value exists (ready %d)",
				c.Producer, c.Start, sc.Cycle[c.Producer]+sc.Lat[c.Producer])
		}
	}
	copyAt := make(map[copyKey]Copy, len(sc.Copies))
	for _, c := range sc.Copies {
		copyAt[copyKey{c.Producer, c.ToCluster}] = c
	}

	// Dependences.
	for _, e := range plan.Graph.Edges() {
		tf, tt := sc.Cycle[e.From], sc.Cycle[e.To]
		if e.Kind == ddg.RF && sc.Cluster[e.From] != sc.Cluster[e.To] {
			cp, ok := copyAt[copyKey{e.From, sc.Cluster[e.To]}]
			if !ok {
				return fmt.Errorf("edge %v crosses clusters with no transfer scheduled", e)
			}
			if cp.Start+cfg.RegBusLatency > tt+ii*e.Dist {
				return fmt.Errorf("edge %v: transfer arrives at %d after use at %d",
					e, cp.Start+cfg.RegBusLatency, tt+ii*e.Dist)
			}
			continue
		}
		if tt < tf+edgeLat(sc, e)-ii*e.Dist {
			return fmt.Errorf("edge %v violated: from@%d lat %d to@%d dist %d II %d",
				e, tf, edgeLat(sc, e), tt, e.Dist, ii)
		}
	}

	// MDC: chains share a cluster.
	for ci, chain := range plan.Chains {
		for _, id := range chain[1:] {
			if sc.Cluster[id] != sc.Cluster[chain[0]] {
				return fmt.Errorf("chain %d split across clusters (%d vs %d)", ci, sc.Cluster[id], sc.Cluster[chain[0]])
			}
		}
	}

	// DDGT: each replica group covers every cluster exactly once.
	for orig, group := range plan.ReplicaGroups {
		seen := make([]bool, cfg.NumClusters)
		for _, id := range group {
			c := sc.Cluster[id]
			if seen[c] {
				return fmt.Errorf("replica group of op %d has two instances in cluster %d", orig, c)
			}
			seen[c] = true
		}
		for c, ok := range seen {
			if !ok {
				return fmt.Errorf("replica group of op %d missing an instance in cluster %d", orig, c)
			}
		}
	}
	return nil
}

// edgeLat is the scheduling latency of an edge given the assigned op
// latencies (same-cluster RF or any non-RF edge).
func edgeLat(sc *Schedule, e *ddg.Edge) int {
	switch e.Kind {
	case ddg.RF:
		return sc.Lat[e.From]
	case ddg.SYNC:
		return 0
	default:
		return 1
	}
}
