package sched

import (
	"testing"

	"vliwcache/internal/arch"
	"vliwcache/internal/core"
	"vliwcache/internal/ir"
)

// TestLatencyAssignmentRecurrenceCapped: a load inside a loop-carried
// memory recurrence cannot assume a large latency without breaking the II,
// so it must stay at (or near) the local-hit latency — this is the load
// that stalls at run time (§4.2).
func TestLatencyAssignmentRecurrenceCapped(t *testing.T) {
	cfg := arch.Default()
	b := ir.NewBuilder("rec")
	b.Symbol("c", 0x10000, 1<<20)
	v := b.Load("ld", ir.AddrExpr{Base: "c", Offset: -16, Stride: 16, Size: 4})
	w := b.Arith("r0", ir.KindAdd, v)
	x := b.Arith("r1", ir.KindAdd, w)
	b.Store("st", ir.AddrExpr{Base: "c", Stride: 16, Size: 4}, x)
	loop := b.Loop()
	plan, err := core.Prepare(loop, core.PolicyFree, cfg.NumClusters)
	if err != nil {
		t.Fatal(err)
	}
	// Cycle: st -(MF,d1)-> ld -> r0 -> r1 -> st: RecMII = 3 + lat(ld).
	ii := MustMII(plan, cfg)
	lat, ok := assignLatencies(plan, cfg, ii)
	if !ok {
		t.Fatal("infeasible at MII")
	}
	// The load's latency is capped by the recurrence: lat(ld) <= ii - 3.
	if lat[0] > ii-3 {
		t.Errorf("load latency %d breaks the recurrence at II=%d", lat[0], ii)
	}
}

// TestLatencyAssignmentSlackPromoted: a load with no recurrence pressure in
// a resource-bound loop gets promoted to the local-miss latency.
func TestLatencyAssignmentSlackPromoted(t *testing.T) {
	cfg := arch.Default()
	b := ir.NewBuilder("slack")
	b.Symbol("a", 0x10000, 1<<20)
	v := b.Load("ld", ir.AddrExpr{Base: "a", Stride: 16, Size: 4})
	b.Arith("use", ir.KindAdd, v)
	// Enough independent integer work to force a resource-bound II.
	for i := 0; i < 60; i++ {
		b.Arith("", ir.KindAdd)
	}
	loop := b.Loop()
	plan, err := core.Prepare(loop, core.PolicyFree, cfg.NumClusters)
	if err != nil {
		t.Fatal(err)
	}
	ii := MustMII(plan, cfg) // 61 INT ops / 4 clusters => 16
	lat, ok := assignLatencies(plan, cfg, ii)
	if !ok {
		t.Fatal("infeasible")
	}
	if want := cfg.Latencies().LocalMiss; lat[0] != want {
		t.Errorf("free load assigned %d, want promotion to local miss %d", lat[0], want)
	}
	lats := cfg.Latencies()
	if lat[0] > lats.LocalMiss {
		t.Error("promotion must stop at local miss (remote misses stall)")
	}
}

// TestLatencyAssignmentStoresStayMinimal: stores produce no value, so
// promoting them buys nothing.
func TestLatencyAssignmentStoresStayMinimal(t *testing.T) {
	cfg := arch.Default()
	b := ir.NewBuilder("st")
	b.Symbol("a", 0x10000, 1<<20)
	live := b.Reg()
	b.Store("st", ir.AddrExpr{Base: "a", Stride: 16, Size: 4}, live)
	plan, err := core.Prepare(b.Loop(), core.PolicyFree, cfg.NumClusters)
	if err != nil {
		t.Fatal(err)
	}
	lat, ok := assignLatencies(plan, cfg, MustMII(plan, cfg))
	if !ok {
		t.Fatal("infeasible")
	}
	if lat[0] != cfg.Latencies().LocalHit {
		t.Errorf("store latency = %d, want the floor", lat[0])
	}
}

func TestResMIIChainBound(t *testing.T) {
	cfg := arch.Default()
	// Build a loop whose chain of 6 memory ops binds ResMII under MDC.
	b := ir.NewBuilder("chain6")
	b.Symbol("c", 0x10000, 1<<20)
	var v ir.Reg
	for i := 0; i < 5; i++ {
		v = b.Load("", ir.AddrExpr{Base: "c", Offset: -16 * int64(i+1), Stride: 16, Size: 4})
	}
	b.Store("st", ir.AddrExpr{Base: "c", Stride: 16, Size: 4}, v)
	loop := b.Loop()

	free, err := core.Prepare(loop, core.PolicyFree, cfg.NumClusters)
	if err != nil {
		t.Fatal(err)
	}
	mdc, err := core.Prepare(loop, core.PolicyMDC, cfg.NumClusters)
	if err != nil {
		t.Fatal(err)
	}
	if ResMII(free, cfg) >= 6 {
		t.Errorf("free ResMII = %d: 6 mem ops over 4 clusters must be 2", ResMII(free, cfg))
	}
	if got := ResMII(mdc, cfg); got != 6 {
		t.Errorf("MDC ResMII = %d, want 6 (chain on one memory port)", got)
	}
}

func TestScheduleStringRendering(t *testing.T) {
	cfg := arch.Default()
	loop := daxpyLoop()
	plan, err := core.Prepare(loop, core.PolicyMDC, cfg.NumClusters)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := Run(plan, Options{Arch: cfg, Heuristic: MinComs})
	if err != nil {
		t.Fatal(err)
	}
	s := sc.String()
	if len(s) == 0 || sc.CommOps() != len(sc.Copies) {
		t.Error("rendering/accessors broken")
	}
}
