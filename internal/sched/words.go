package sched

import (
	"fmt"
	"strings"

	"vliwcache/internal/ir"
)

// Words renders the kernel as VLIW instruction words: one row per modulo
// slot, one column group per cluster with the cluster's INT/FP/MEM issue
// slots, plus the register-bus transfers active in the slot. Stage numbers
// (cycle / II) are shown as op suffixes, so overlapped iterations are
// visible: "ld.s2" issues two stages (iterations) behind the newest one.
func (s *Schedule) Words() string {
	ii := s.II
	cfg := s.Arch
	type cell struct{ int_, fp, mem []string }
	grid := make([][]cell, ii)
	for r := range grid {
		grid[r] = make([]cell, cfg.NumClusters)
	}
	for id, o := range s.Plan.Loop.Ops {
		slot := s.Cycle[id] % ii
		stage := s.Cycle[id] / ii
		label := o.Label()
		if stage > 0 {
			label = fmt.Sprintf("%s.s%d", label, stage)
		}
		c := &grid[slot][s.Cluster[id]]
		switch o.Kind.UnitClass() {
		case ir.ClassInt:
			c.int_ = append(c.int_, label)
		case ir.ClassFP:
			c.fp = append(c.fp, label)
		case ir.ClassMem:
			c.mem = append(c.mem, label)
		}
	}
	buses := make([][]string, ii)
	span := cfg.RegBusLatency
	if span > ii {
		span = ii
	}
	for _, cp := range s.Copies {
		label := fmt.Sprintf("%s->cl%d", s.Plan.Loop.Ops[cp.Producer].Label(), cp.ToCluster)
		for d := 0; d < span; d++ {
			slot := (cp.Start + d) % ii
			if slot < 0 {
				slot += ii
			}
			buses[slot] = append(buses[slot], label)
		}
	}

	join := func(xs []string) string {
		if len(xs) == 0 {
			return "."
		}
		return strings.Join(xs, "+")
	}
	var b strings.Builder
	fmt.Fprintf(&b, "kernel of %q: II=%d (rows are modulo slots; .sN marks ops of older stages)\n",
		s.Plan.Loop.Name, ii)

	// Column widths per cluster (I/F/M joined cells).
	rows := make([][]string, ii)
	header := []string{"slot"}
	for c := 0; c < cfg.NumClusters; c++ {
		header = append(header, fmt.Sprintf("cl%d[I|F|M]", c))
	}
	header = append(header, "buses")
	for r := 0; r < ii; r++ {
		row := []string{fmt.Sprintf("%d", r)}
		for c := 0; c < cfg.NumClusters; c++ {
			cell := grid[r][c]
			row = append(row, join(cell.int_)+" | "+join(cell.fp)+" | "+join(cell.mem))
		}
		row = append(row, join(buses[r]))
		rows[r] = row
	}
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	line(header)
	for _, row := range rows {
		line(row)
	}
	return b.String()
}
