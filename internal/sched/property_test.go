package sched

import (
	"errors"
	"testing"

	"vliwcache/internal/arch"
	"vliwcache/internal/core"
	"vliwcache/internal/ir"
	"vliwcache/internal/loopgen"
	"vliwcache/internal/profiler"
)

// TestRandomLoopsScheduleValidates is the scheduler's central property:
// over random loops, every policy × heuristic combination must produce a
// schedule that passes full validation (placement, capacities, every
// dependence with its bus transfer, chain co-location, replica coverage).
func TestRandomLoopsScheduleValidates(t *testing.T) {
	cfg := arch.Default()
	for seed := int64(0); seed < 150; seed++ {
		loop := loopgen.Random(seed, loopgen.DefaultParams())
		for _, pol := range []core.Policy{core.PolicyFree, core.PolicyMDC, core.PolicyDDGT} {
			for _, h := range []Heuristic{PrefClus, MinComs} {
				plan, err := core.Prepare(loop, pol, cfg.NumClusters)
				if err != nil {
					t.Fatalf("seed %d %v: %v", seed, pol, err)
				}
				prof := profiler.Run(loop, cfg)
				sc, err := Run(plan, Options{Arch: cfg, Heuristic: h, Profile: prof})
				if err != nil {
					t.Fatalf("seed %d %v/%v: %v\n%s", seed, pol, h, err, loop)
				}
				if err := Validate(sc); err != nil {
					t.Fatalf("seed %d %v/%v: %v\n%s", seed, pol, h, err, sc)
				}
				if sc.II < MustMII(plan, cfg) {
					t.Fatalf("seed %d: II %d below MII %d", seed, sc.II, MustMII(plan, cfg))
				}
			}
		}
	}
}

// TestScheduleDeterminism: the same inputs must produce identical schedules.
func TestScheduleDeterminism(t *testing.T) {
	cfg := arch.Default()
	loop := loopgen.Random(7, loopgen.DefaultParams())
	prof := profiler.Run(loop, cfg)
	mk := func() *Schedule {
		plan, err := core.Prepare(loop, core.PolicyDDGT, cfg.NumClusters)
		if err != nil {
			t.Fatal(err)
		}
		sc, err := Run(plan, Options{Arch: cfg, Heuristic: MinComs, Profile: prof})
		if err != nil {
			t.Fatal(err)
		}
		return sc
	}
	a, b := mk(), mk()
	if a.II != b.II || len(a.Copies) != len(b.Copies) {
		t.Fatalf("II/copies differ: %d/%d vs %d/%d", a.II, len(a.Copies), b.II, len(b.Copies))
	}
	for i := range a.Cycle {
		if a.Cycle[i] != b.Cycle[i] || a.Cluster[i] != b.Cluster[i] {
			t.Fatalf("op %d placed at (%d,%d) then (%d,%d)", i,
				a.Cycle[i], a.Cluster[i], b.Cycle[i], b.Cluster[i])
		}
	}
}

// TestValidateCatchesCorruption: Validate must reject broken schedules.
func TestValidateCatchesCorruption(t *testing.T) {
	cfg := arch.Default()
	loop := loopgen.Random(3, loopgen.DefaultParams())
	plan, err := core.Prepare(loop, core.PolicyMDC, cfg.NumClusters)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := Run(plan, Options{Arch: cfg, Heuristic: PrefClus, Profile: profiler.Run(loop, cfg)})
	if err != nil {
		t.Fatal(err)
	}

	corruptions := []func(*Schedule){
		func(s *Schedule) { s.Cycle[0] = -1 },
		func(s *Schedule) { s.Cluster[0] = cfg.NumClusters },
		func(s *Schedule) { s.II = 0 },
	}
	if len(plan.Chains) > 0 {
		ch := plan.Chains[0]
		corruptions = append(corruptions, func(s *Schedule) {
			s.Cluster[ch[0]] = (s.Cluster[ch[0]] + 1) % cfg.NumClusters
		})
	}
	for i, corrupt := range corruptions {
		c := &Schedule{
			Plan:    sc.Plan,
			Arch:    sc.Arch,
			II:      sc.II,
			Length:  sc.Length,
			Cycle:   append([]int(nil), sc.Cycle...),
			Cluster: append([]int(nil), sc.Cluster...),
			Lat:     append([]int(nil), sc.Lat...),
			Copies:  append([]Copy(nil), sc.Copies...),
		}
		corrupt(c)
		if Validate(c) == nil {
			t.Errorf("corruption %d not caught", i)
		}
	}
}

func TestMaxIIRespected(t *testing.T) {
	cfg := arch.Default()
	loop := loopgen.Random(11, loopgen.DefaultParams())
	plan, err := core.Prepare(loop, core.PolicyFree, cfg.NumClusters)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(plan, Options{Arch: cfg, Heuristic: MinComs, MaxII: 1, Budget: 1}); err == nil {
		// A MaxII of 1 with budget 1 may still succeed for tiny loops;
		// only fail the test if the loop clearly cannot fit.
		if MustMII(plan, cfg) > 1 {
			t.Error("scheduler claimed success beyond MaxII")
		}
	} else if !errors.Is(err, ErrInfeasible) {
		t.Errorf("infeasible schedule error %v must wrap ErrInfeasible", err)
	}
}

func TestRejectsExplicitCopies(t *testing.T) {
	cfg := arch.Default()
	b := irBuilderWithCopy()
	plan, err := core.Prepare(b, core.PolicyFree, cfg.NumClusters)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(plan, Options{Arch: cfg, Heuristic: MinComs}); err == nil {
		t.Error("loops with explicit copy ops must be rejected")
	}
}

// irBuilderWithCopy builds a loop containing an explicit KindCopy op.
func irBuilderWithCopy() *ir.Loop {
	b := ir.NewBuilder("withcopy")
	v := b.Arith("a", ir.KindAdd)
	b.Op(&ir.Op{Name: "cp", Kind: ir.KindCopy, Dst: v + 1, Srcs: []ir.Reg{v}})
	return b.Loop()
}
