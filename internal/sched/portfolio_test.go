package sched

import (
	"context"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"vliwcache/internal/arch"
	"vliwcache/internal/core"
)

// waitNoExtraGoroutines polls until the process is back to the baseline
// goroutine count (anything spawned by the code under test has exited),
// failing with a full stack dump if it never settles.
func waitNoExtraGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d running, baseline %d\n%s",
				runtime.NumGoroutine(), base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// ctxWatcher is a portfolio member that spawns a helper goroutine watching
// its context — the pattern that leaks if the portfolio never cancels the
// race context — and then declines to schedule.
type ctxWatcher struct {
	name  string
	alive *atomic.Int32
}

func (w ctxWatcher) Name() string { return w.name }

func (w ctxWatcher) Schedule(ctx context.Context, plan *core.Plan, opts Options) (*Schedule, error) {
	w.alive.Add(1)
	go func() {
		<-ctx.Done()
		w.alive.Add(-1)
	}()
	return nil, fmt.Errorf("%s: declines every plan", w.name)
}

// TestPortfolioCancelsRaceContext: once every race slot has reported, the
// portfolio cancels the derived context, so ctx-watching helpers spawned
// by losing members exit even under a never-canceled parent context.
func TestPortfolioCancelsRaceContext(t *testing.T) {
	cfg := arch.Default()
	plan, err := core.Prepare(daxpyLoop(), core.PolicyFree, cfg.NumClusters)
	if err != nil {
		t.Fatal(err)
	}
	real, err := Get(NameMinComs)
	if err != nil {
		t.Fatal(err)
	}
	var alive atomic.Int32
	p := &Portfolio{members: []Scheduler{
		real,
		ctxWatcher{name: "watcher-a", alive: &alive},
		ctxWatcher{name: "watcher-b", alive: &alive},
	}}

	base := runtime.NumGoroutine()
	sc, winner, err := p.ScheduleBest(context.Background(), plan, Options{Arch: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if winner != NameMinComs || sc == nil {
		t.Fatalf("winner = %q (sc=%v), want %s", winner, sc, NameMinComs)
	}
	waitNoExtraGoroutines(t, base)
	if n := alive.Load(); n != 0 {
		t.Errorf("%d ctx-watching helpers still alive after the race settled", n)
	}
}

// TestPortfolioAllFail: the joined failure path also tears the race down.
func TestPortfolioAllFail(t *testing.T) {
	cfg := arch.Default()
	plan, err := core.Prepare(daxpyLoop(), core.PolicyFree, cfg.NumClusters)
	if err != nil {
		t.Fatal(err)
	}
	var alive atomic.Int32
	p := &Portfolio{members: []Scheduler{
		ctxWatcher{name: "watcher-a", alive: &alive},
		ctxWatcher{name: "watcher-b", alive: &alive},
	}}
	base := runtime.NumGoroutine()
	if _, _, err := p.ScheduleBest(context.Background(), plan, Options{Arch: cfg}); err == nil {
		t.Fatal("portfolio of declining members succeeded")
	}
	waitNoExtraGoroutines(t, base)
	if n := alive.Load(); n != 0 {
		t.Errorf("%d ctx-watching helpers still alive after the failed race", n)
	}
}
