package sched

import (
	"testing"

	"vliwcache/internal/arch"
	"vliwcache/internal/ir"
)

func TestMRTFUCapacity(t *testing.T) {
	cfg := arch.Default() // 1 unit per class per cluster
	m := newMRT(cfg, 4)
	if !m.fuFree(0, ir.ClassMem, 2) {
		t.Fatal("fresh table must be free")
	}
	m.fuReserve(7, 0, ir.ClassMem, 2)
	if m.fuFree(0, ir.ClassMem, 2) {
		t.Error("slot must be taken")
	}
	if m.fuFree(0, ir.ClassMem, 6) {
		t.Error("cycle 6 maps to the same modulo slot (II=4)")
	}
	if !m.fuFree(0, ir.ClassMem, 3) || !m.fuFree(1, ir.ClassMem, 2) || !m.fuFree(0, ir.ClassInt, 2) {
		t.Error("other slots/clusters/classes must stay free")
	}
	if got := m.fuOwners(0, ir.ClassMem, 6); len(got) != 1 || got[0] != 7 {
		t.Errorf("owners = %v", got)
	}
	m.fuRelease(7, 0, ir.ClassMem, 2)
	if !m.fuFree(0, ir.ClassMem, 2) {
		t.Error("release failed")
	}
}

func TestMRTMultipleUnits(t *testing.T) {
	cfg := arch.Default()
	cfg.IntUnits = 2
	m := newMRT(cfg, 3)
	m.fuReserve(1, 0, ir.ClassInt, 0)
	if !m.fuFree(0, ir.ClassInt, 0) {
		t.Error("second integer unit must be available")
	}
	m.fuReserve(2, 0, ir.ClassInt, 0)
	if m.fuFree(0, ir.ClassInt, 0) {
		t.Error("both units taken")
	}
}

func TestMRTNegativeCycleSlots(t *testing.T) {
	cfg := arch.Default()
	m := newMRT(cfg, 5)
	// Cycle -3 maps to slot 2.
	m.fuReserve(9, 1, ir.ClassMem, -3)
	if m.fuFree(1, ir.ClassMem, 2) {
		t.Error("negative cycles must wrap into the table")
	}
}

func TestMRTBusSpan(t *testing.T) {
	cfg := arch.Default() // 4 buses, latency 2
	m := newMRT(cfg, 6)
	b := m.busFind(1)
	if b < 0 {
		t.Fatal("fresh table must have a bus")
	}
	m.busReserve(3, b, 1) // occupies slots 1,2 on bus b
	if m.busFreeOn(b, 1) || m.busFreeOn(b, 2) {
		t.Error("reserved span must be busy")
	}
	if m.busFreeOn(b, 0) {
		t.Error("a transfer at 0 spans slots 0,1 and collides")
	}
	if !m.busFreeOn(b, 3) {
		t.Error("slot 3,4 must be free")
	}
	if got := m.busOwnersOn(b, 2); len(got) != 1 || got[0] != 3 {
		t.Errorf("owners = %v", got)
	}
	m.busRelease(b, 1)
	if !m.busFreeOn(b, 1) {
		t.Error("release failed")
	}
}

func TestMRTBusLongerThanII(t *testing.T) {
	cfg := arch.Default()
	cfg.RegBusLatency = 5
	m := newMRT(cfg, 3) // transfer longer than II occupies the whole row
	b := m.busFind(0)
	if b < 0 {
		t.Fatal("must find a bus")
	}
	m.busReserve(1, b, 0)
	for s := 0; s < 3; s++ {
		if m.busFreeOn(b, s) {
			t.Errorf("slot %d must be busy (whole-row occupancy)", s)
		}
	}
	// Other buses remain available.
	if m.busFind(0) < 0 {
		t.Error("remaining buses must be available")
	}
}
