package sched

import (
	"sync"
	"testing"

	"vliwcache/internal/arch"
	"vliwcache/internal/core"
	"vliwcache/internal/loopgen"
	"vliwcache/internal/profiler"
)

var (
	fuzzOnce  sync.Once
	fuzzBases []*Schedule
)

// fuzzSchedules builds a small pool of valid schedules (one per policy)
// exactly once per process; every fuzz execution mutates a clone.
func fuzzSchedules(tb testing.TB) []*Schedule {
	fuzzOnce.Do(func() {
		cfg := arch.Default()
		loop := loopgen.Random(11, loopgen.DefaultParams())
		prof := profiler.Run(loop, cfg)
		for _, pol := range []core.Policy{core.PolicyFree, core.PolicyMDC, core.PolicyDDGT} {
			plan, err := core.Prepare(loop, pol, cfg.NumClusters)
			if err != nil {
				tb.Fatal(err)
			}
			sc, err := Run(plan, Options{Arch: cfg, Heuristic: PrefClus, Profile: prof})
			if err != nil {
				tb.Fatal(err)
			}
			fuzzBases = append(fuzzBases, sc)
		}
	})
	return fuzzBases
}

func fuzzClone(sc *Schedule) *Schedule {
	d := *sc
	d.Cycle = append([]int(nil), sc.Cycle...)
	d.Cluster = append([]int(nil), sc.Cluster...)
	d.Lat = append([]int(nil), sc.Lat...)
	d.Copies = append([]Copy(nil), sc.Copies...)
	return &d
}

// FuzzValidate drives Validate with byte-directed corruptions of a valid
// schedule: every three input bytes select a mutation site and value. The
// property is purely defensive — Validate must return (an error or nil)
// on every corruption, never panic or hang, because the chaos harness
// leans on it as the oracle that kills schedule mutants.
func FuzzValidate(f *testing.F) {
	f.Add([]byte{0, 0, 200})                      // corrupt one cycle
	f.Add([]byte{1, 2, 255})                      // move an op off-grid
	f.Add([]byte{3, 0, 0})                        // II = 0
	f.Add([]byte{5, 0, 7, 6, 0, 9, 7, 1, 3})      // corrupt copy fields
	f.Add([]byte{8, 0, 0, 8, 0, 0, 8, 0, 0})      // drop several copies
	f.Add([]byte{9, 1, 1, 2, 3, 129, 4, 0, 250})  // duplicate copy + lat/length
	f.Add([]byte{0, 1, 2, 1, 2, 3, 3, 1, 1, 255}) // mixed corruption

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, base := range fuzzSchedules(t) {
			sc := fuzzClone(base)
			n := len(sc.Cycle)
			for i := 0; i+2 < len(data); i += 3 {
				kind, idx, val := data[i], int(data[i+1]), int(int8(data[i+2]))
				switch kind % 10 {
				case 0:
					sc.Cycle[idx%n] = val
				case 1:
					sc.Cluster[idx%n] = val
				case 2:
					sc.Lat[idx%n] = val
				case 3:
					sc.II = val
				case 4:
					sc.Length = val
				case 5:
					if len(sc.Copies) > 0 {
						sc.Copies[idx%len(sc.Copies)].Start = val
					}
				case 6:
					if len(sc.Copies) > 0 {
						sc.Copies[idx%len(sc.Copies)].Bus = val
					}
				case 7:
					if len(sc.Copies) > 0 {
						sc.Copies[idx%len(sc.Copies)].ToCluster = val
					}
				case 8:
					if len(sc.Copies) > 0 {
						k := idx % len(sc.Copies)
						sc.Copies = append(sc.Copies[:k:k], sc.Copies[k+1:]...)
					}
				case 9:
					if len(sc.Copies) > 0 {
						sc.Copies = append(sc.Copies, sc.Copies[idx%len(sc.Copies)])
					}
				}
			}
			_ = Validate(sc) // must not panic on any corruption

			// The clone under mutation must not have leaked state into the
			// shared base schedule.
			if err := Validate(base); err != nil {
				t.Fatalf("pristine base schedule no longer validates: %v", err)
			}
		}
	})
}
