package sched

import (
	"strings"
	"testing"

	"vliwcache/internal/arch"
	"vliwcache/internal/core"
	"vliwcache/internal/profiler"
)

func TestWordsRendering(t *testing.T) {
	cfg := arch.Default()
	loop := daxpyLoop()
	plan, err := core.Prepare(loop, core.PolicyMDC, cfg.NumClusters)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := Run(plan, Options{Arch: cfg, Heuristic: PrefClus, Profile: profiler.Run(loop, cfg)})
	if err != nil {
		t.Fatal(err)
	}
	out := sc.Words()
	if !strings.Contains(out, "cl0[I|F|M]") || !strings.Contains(out, "cl3[I|F|M]") {
		t.Errorf("missing cluster columns:\n%s", out)
	}
	// Every op label appears exactly once somewhere in the grid.
	for _, o := range loop.Ops {
		if !strings.Contains(out, o.Label()) {
			t.Errorf("op %s missing from the kernel words:\n%s", o.Label(), out)
		}
	}
	// Row count = II (plus header lines).
	rows := strings.Count(out, "\n") - 2
	if rows != sc.II {
		t.Errorf("%d rows for II=%d", rows, sc.II)
	}
}

func TestWordsShowBuses(t *testing.T) {
	cfg := arch.Default()
	loop := daxpyLoop()
	plan, err := core.Prepare(loop, core.PolicyDDGT, cfg.NumClusters)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := Run(plan, Options{Arch: cfg, Heuristic: PrefClus, Profile: profiler.Run(loop, cfg)})
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Copies) == 0 {
		t.Skip("no copies scheduled for this fixture")
	}
	if !strings.Contains(sc.Words(), "->cl") {
		t.Error("bus transfers not rendered")
	}
}
