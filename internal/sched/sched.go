// Package sched implements clustered iterative modulo scheduling for the
// word-interleaved cache clustered VLIW processor (§2.2 of the paper).
//
// The scheduler combines:
//
//   - iterative modulo scheduling (height-priority placement with ejection
//     and II escalation) over a modulo reservation table covering the
//     per-cluster functional units and the register-to-register buses;
//   - cluster assignment under one of two heuristics: PrefClus (memory
//     instructions go to the cluster they access most, per profiling) and
//     MinComs (every instruction goes where register communications are
//     minimized and workload balance is maximized, followed by a
//     virtual-to-physical cluster post-pass maximizing local accesses);
//   - the coherence constraints prepared by the core package: memory
//     dependent chains pinned to a single cluster (MDC) or store replicas
//     pinned one per cluster (DDGT);
//   - cache-sensitive latency assignment: each load is scheduled with the
//     largest of the four access latencies (local/remote hit/miss) that
//     does not lengthen the schedule (after [21]).
package sched

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"vliwcache/internal/arch"
	"vliwcache/internal/core"
	"vliwcache/internal/ddg"
	"vliwcache/internal/ir"
	"vliwcache/internal/profiler"
)

// ErrInfeasible reports that no schedule fits within the II budget. Errors
// returned by Run for an unschedulable loop wrap it, so callers can test
// with errors.Is instead of string matching.
var ErrInfeasible = errors.New("infeasible schedule")

// Heuristic selects the cluster-assignment heuristic of §2.2.
type Heuristic int

const (
	// PrefClus schedules memory instructions in their preferred cluster
	// (the cluster they access most, per profiling).
	PrefClus Heuristic = iota
	// MinComs schedules every instruction in the cluster with the best
	// trade-off between register communications and workload balance, then
	// runs a post-pass mapping virtual to physical clusters to maximize
	// local accesses.
	MinComs
	// Locality schedules memory instructions in their profiled home
	// cluster (as PrefClus) and weighs memory neighbors double when
	// placing non-memory instructions, so computation follows the data
	// into the cluster whose cache bank holds it. Canonically selected as
	// the registered scheduler NameLocality.
	Locality
)

func (h Heuristic) String() string {
	switch h {
	case PrefClus:
		return "PrefClus"
	case Locality:
		return "Locality"
	}
	return "MinComs"
}

// Order selects the priority order in which the iterative modulo
// scheduler places operations.
type Order int

const (
	// OrderHeight places ops by decreasing height (longest constraint
	// path to any sink) — Rau's iterative modulo scheduling order.
	OrderHeight Order = iota
	// OrderSlack places ops by increasing scheduling freedom
	// (ALAP - ASAP), the ordering criterion of swing modulo scheduling
	// [16]: ops on critical recurrences (zero slack) go first.
	OrderSlack
)

func (o Order) String() string {
	if o == OrderSlack {
		return "slack"
	}
	return "height"
}

// Options configure a scheduling run.
type Options struct {
	Arch      arch.Config
	Heuristic Heuristic

	// Order selects the placement priority (default OrderHeight).
	//
	// Deprecated: Order (with Heuristic) is the enum spelling of
	// scheduler selection, kept for pre-registry call sites. New code
	// selects a registered Scheduler by name instead — "prefclus-slack"
	// and "mincoms-slack" are the registry names for the OrderSlack
	// variants (see Register, Get and RunScheduler).
	Order Order

	// Profile supplies preferred-cluster information. Required by PrefClus
	// and by the MinComs post-pass; when nil, preferences default to
	// cluster 0 and the post-pass is skipped.
	Profile *profiler.Profile

	// MaxII caps initiation-interval escalation (default 1024).
	MaxII int

	// Budget is the placement-attempt budget per candidate II, as a
	// multiple of the op count (default 16).
	Budget int
}

func (o Options) withDefaults() Options {
	if o.MaxII == 0 {
		o.MaxII = 1024
	}
	if o.Budget == 0 {
		o.Budget = 48
	}
	return o
}

// Copy is one scheduled inter-cluster value transfer: the value produced by
// Producer is moved to ToCluster over register bus Bus, occupying it from
// cycle Start (in the producer's iteration frame) for the bus latency.
type Copy struct {
	Producer  int
	ToCluster int
	Start     int
	Bus       int
}

// Schedule is a modulo schedule of a planned loop.
type Schedule struct {
	Plan *core.Plan
	Arch arch.Config

	// II is the initiation interval: a new iteration starts every II
	// cycles.
	II int

	// Length is the schedule length of one iteration (issue of its first
	// op to completion of its last).
	Length int

	// Cycle and Cluster give each op's issue cycle (within its iteration,
	// flat, not modulo) and cluster.
	Cycle, Cluster []int

	// Lat is the per-op latency assumed at scheduling time. For loads this
	// is the assigned cache-access latency; consumers are scheduled this
	// many cycles later, and the difference between the actual and the
	// assigned latency is what the stall-on-use processor pays at run
	// time.
	Lat []int

	// Copies are the inter-cluster communication operations, one per
	// (producer, destination cluster) pair per iteration.
	Copies []Copy
}

// CommOps returns the number of communication operations per iteration.
func (s *Schedule) CommOps() int { return len(s.Copies) }

// String renders the kernel: ops grouped by cycle with cluster and slot.
func (s *Schedule) String() string {
	type row struct{ cyc, cl, id int }
	rows := make([]row, 0, len(s.Cycle))
	for id := range s.Cycle {
		rows = append(rows, row{s.Cycle[id], s.Cluster[id], id})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].cyc != rows[j].cyc {
			return rows[i].cyc < rows[j].cyc
		}
		if rows[i].cl != rows[j].cl {
			return rows[i].cl < rows[j].cl
		}
		return rows[i].id < rows[j].id
	})
	out := fmt.Sprintf("schedule %q: II=%d len=%d copies=%d\n",
		s.Plan.Loop.Name, s.II, s.Length, len(s.Copies))
	for _, r := range rows {
		o := s.Plan.Loop.Ops[r.id]
		out += fmt.Sprintf("  t=%3d (slot %2d) cl%d  %s (lat %d)\n",
			r.cyc, r.cyc%s.II, r.cl, o, s.Lat[r.id])
	}
	for _, c := range s.Copies {
		out += fmt.Sprintf("  copy %s -> cl%d bus%d @%d\n",
			s.Plan.Loop.Ops[c.Producer].Label(), c.ToCluster, c.Bus, c.Start)
	}
	return out
}

// Run modulo-schedules a planned loop with the heuristic/order selected
// by the Options enums. It is the legacy enum spelling of scheduler
// selection and behaves identically to resolving the corresponding
// registry name and calling its Schedule with a background context.
func Run(plan *core.Plan, opts Options) (*Schedule, error) {
	return RunScheduler(context.Background(), nameFor(opts.Heuristic, opts.Order), plan, opts)
}

// Precheck validates that a plan is schedulable at all on the machine:
// the configuration is sound, the loop carries no pre-existing copy ops,
// and every op has a functional unit to run on. Every Scheduler
// implementation runs it first so the error surface is uniform.
func Precheck(plan *core.Plan, cfg arch.Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	for _, o := range plan.Loop.Ops {
		if o.Kind == ir.KindCopy {
			return fmt.Errorf("sched: loop %q contains explicit copy ops; copies are generated by the scheduler", plan.Loop.Name)
		}
	}
	if cfg.FPUnits == 0 {
		for _, o := range plan.Loop.Ops {
			if o.Kind.UnitClass() == ir.ClassFP {
				return fmt.Errorf("sched: loop %q uses FP ops but the machine has no FP units", plan.Loop.Name)
			}
		}
	}
	return nil
}

// runIMS is the iterative-modulo-scheduling engine shared by every
// heuristic scheduler: assign latencies, compute the minimum initiation
// interval, and escalate II until a schedule fits. ctx is checked once
// per candidate II.
func runIMS(ctx context.Context, plan *core.Plan, opts Options) (*Schedule, error) {
	opts = opts.withDefaults()
	if err := Precheck(plan, opts.Arch); err != nil {
		return nil, err
	}

	mii, err := MII(plan, opts.Arch)
	if err != nil {
		return nil, fmt.Errorf("sched: loop %q: %w", plan.Loop.Name, err)
	}
	for ii := mii; ii <= opts.MaxII; ii++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		lat, ok := assignLatencies(plan, opts.Arch, ii)
		if !ok {
			continue
		}
		s := newState(plan, opts, ii, lat)
		if sc, ok := s.run(); ok {
			if opts.Heuristic == MinComs && opts.Profile != nil {
				postPass(sc, opts.Profile)
			}
			if err := Validate(sc); err != nil {
				return nil, fmt.Errorf("sched: internal error: %w", err)
			}
			return sc, nil
		}
	}
	return nil, fmt.Errorf("sched: %w: loop %q does not fit within MaxII=%d", ErrInfeasible, plan.Loop.Name, opts.MaxII)
}

// MII returns the minimum initiation interval: the maximum of the resource
// and recurrence constrained bounds. It fails when the dependence graph
// admits no initiation interval at all (a zero-distance positive cycle —
// impossible from ddg.Build, but reachable through hand-built graphs).
func MII(plan *core.Plan, cfg arch.Config) (int, error) {
	res := ResMII(plan, cfg)
	rec, err := plan.Graph.RecMII(minLatency(plan, cfg))
	if err != nil {
		return 0, err
	}
	if rec > res {
		return rec, nil
	}
	return res, nil
}

// MustMII is MII for plans known to be well-formed (fixtures and
// post-validation contexts); it panics on error.
func MustMII(plan *core.Plan, cfg arch.Config) int {
	mii, err := MII(plan, cfg)
	if err != nil {
		panic(err)
	}
	return mii
}

// ResMII returns the resource-constrained minimum initiation interval: per
// unit class, the op count divided by the machine-wide unit count — and,
// for MDC plans, per chain, the chain's memory ops over one cluster's
// memory units (the whole chain shares a cluster).
func ResMII(plan *core.Plan, cfg arch.Config) int {
	counts := [3]int{}
	for _, o := range plan.Loop.Ops {
		if k := classIndex(o.Kind.UnitClass()); k >= 0 {
			counts[k]++
		}
	}
	units := [3]int{cfg.IntUnits, cfg.FPUnits, cfg.MemUnits}
	mii := 1
	for k, n := range counts {
		if n == 0 {
			continue
		}
		if b := ceil(n, units[k]*cfg.NumClusters); b > mii {
			mii = b
		}
	}
	for _, chain := range plan.Chains {
		if b := ceil(len(chain), cfg.MemUnits); b > mii {
			mii = b
		}
	}
	// DDGT: every cluster executes one instance of each replicated store,
	// already folded into the MEM op count divided by all clusters.
	return mii
}

func ceil(a, b int) int { return (a + b - 1) / b }

// minLatency is the latency function with every memory op at the local-hit
// latency — the optimistic floor used for MII estimation.
func minLatency(plan *core.Plan, cfg arch.Config) ddg.LatencyFunc {
	hit := cfg.Latencies().LocalHit
	return func(o *ir.Op) int {
		if o.Kind.IsMem() {
			return hit
		}
		return o.Kind.Latency()
	}
}

// AssignLatencies exposes the cache-sensitive latency assignment to other
// schedulers (the exact oracle): every Scheduler must price loads the same
// way or its II would not be comparable to the heuristics'. ok is false
// when the II is infeasible even at minimum latencies.
func AssignLatencies(plan *core.Plan, cfg arch.Config, ii int) ([]int, bool) {
	return assignLatencies(plan, cfg, ii)
}

// assignLatencies performs cache-sensitive latency assignment at the given
// II: every load starts at the local-hit latency and is promoted to the
// largest of the four access latencies that keeps the II feasible and does
// not lengthen the critical path (compute time unaffected, §2.2). Stores
// produce no value, so their latency stays at the floor. ok is false when
// the II is infeasible even at minimum latencies.
func assignLatencies(plan *core.Plan, cfg arch.Config, ii int) ([]int, bool) {
	loop := plan.Loop
	lats := cfg.Latencies()
	lat := make([]int, len(loop.Ops))
	for i, o := range loop.Ops {
		if o.Kind.IsMem() {
			lat[i] = lats.LocalHit
		} else {
			lat[i] = o.Kind.Latency()
		}
	}
	lf := func(o *ir.Op) int { return lat[o.ID] }

	asap, ok := plan.Graph.ASAP(ii, lf)
	if !ok {
		return nil, false
	}
	horizon := 0
	for i := range asap {
		if h := asap[i] + lat[i]; h > horizon {
			horizon = h
		}
	}
	// Promotion may stretch the dependence-graph critical path up to the
	// initiation interval: steady-state compute time (II per iteration) is
	// unaffected, only the pipeline fill/drain grows ("the largest
	// possible latency that does not have an impact on compute time").
	if horizon < ii {
		horizon = ii
	}

	// Promote loads in slack order (most slack first): a load with
	// abundant slack can absorb a remote-miss assumption without touching
	// the critical path.
	alap, ok := plan.Graph.ALAP(ii, horizon, lf)
	if !ok {
		return nil, false
	}
	type cand struct{ id, slack int }
	var loads []cand
	for _, o := range loop.Ops {
		if o.Kind == ir.KindLoad {
			loads = append(loads, cand{o.ID, alap[o.ID] - asap[o.ID]})
		}
	}
	sort.Slice(loads, func(i, j int) bool {
		if loads[i].slack != loads[j].slack {
			return loads[i].slack > loads[j].slack
		}
		return loads[i].id < loads[j].id
	})

	// Promotion candidates stop at the local-miss latency: assuming a
	// remote miss for every load would hide all memory latency but stretch
	// value lifetimes (and hence register pressure) far beyond the
	// register files — the paper's compromise (§2.2, after [21]) leaves
	// remote misses to the stall-on-use mechanism.
	options := []int{lats.LocalMiss, lats.RemoteHit, lats.LocalHit}
	sort.Sort(sort.Reverse(sort.IntSlice(options)))
	for _, c := range loads {
		old := lat[c.id]
		for _, L := range options {
			if L < old {
				break
			}
			lat[c.id] = L
			if na, ok := plan.Graph.ASAP(ii, lf); ok {
				nh := 0
				for i := range na {
					if h := na[i] + lat[i]; h > nh {
						nh = h
					}
				}
				if nh <= horizon {
					break // keep this latency
				}
			}
			lat[c.id] = old
		}
	}
	return lat, true
}
