package sched

import (
	"testing"

	"vliwcache/internal/arch"
	"vliwcache/internal/core"
	"vliwcache/internal/ir"
	"vliwcache/internal/profiler"
)

// TestPostPassMaximizesLocality builds a loop whose four fixed-home loads
// prefer distinct clusters and verifies that the MinComs post-pass maps the
// virtual clusters so every load lands in its preferred (home) cluster.
func TestPostPassMaximizesLocality(t *testing.T) {
	cfg := arch.Default()
	b := ir.NewBuilder("post")
	b.Symbol("a", 0x100000, 1<<20)
	b.Trip(400, 1)
	var regs []ir.Reg
	for j := 0; j < 4; j++ {
		// Stride 16 (N*I), offset j*4: home cluster j, forever.
		v := b.Load("", ir.AddrExpr{Base: "a", Offset: int64(j) * 4, Stride: 16, Size: 4})
		regs = append(regs, v)
	}
	// Per-lane arithmetic so MinComs keeps each load's consumers with it.
	for j := 0; j < 4; j++ {
		w := b.Arith("", ir.KindAdd, regs[j])
		b.Arith("", ir.KindMul, w)
	}
	loop := b.Loop()
	plan, err := core.Prepare(loop, core.PolicyFree, cfg.NumClusters)
	if err != nil {
		t.Fatal(err)
	}
	prof := profiler.Run(loop, cfg)
	sc, err := Run(plan, Options{Arch: cfg, Heuristic: MinComs, Profile: prof})
	if err != nil {
		t.Fatal(err)
	}
	local := 0
	for j := 0; j < 4; j++ {
		if sc.Cluster[j] == prof.Preferred(j) {
			local++
		}
	}
	// The post-pass guarantees at least as much locality as any single
	// permutation can extract; with one load per home and lane-structured
	// consumers, the optimum (4) should be reachable, but scheduling noise
	// can merge lanes — require at least half.
	if local < 2 {
		t.Errorf("only %d/4 loads local after the post-pass (clusters %v, prefs %v %v %v %v)",
			local, sc.Cluster[:4], prof.Preferred(0), prof.Preferred(1), prof.Preferred(2), prof.Preferred(3))
	}
}

// TestPostPassPreservesValidity: permuting clusters must keep every
// invariant (dependences, copies, replica coverage).
func TestPostPassPreservesValidity(t *testing.T) {
	cfg := arch.Default()
	loop := daxpyLoop()
	for _, pol := range []core.Policy{core.PolicyFree, core.PolicyMDC, core.PolicyDDGT} {
		plan, err := core.Prepare(loop, pol, cfg.NumClusters)
		if err != nil {
			t.Fatal(err)
		}
		sc, err := Run(plan, Options{Arch: cfg, Heuristic: MinComs, Profile: profiler.Run(loop, cfg)})
		if err != nil {
			t.Fatal(err)
		}
		if err := Validate(sc); err != nil {
			t.Errorf("%v: %v", pol, err)
		}
	}
}

func TestPermuteEnumeratesAll(t *testing.T) {
	seen := make(map[[3]int]bool)
	permute(identity(3), 0, func(p []int) {
		seen[[3]int{p[0], p[1], p[2]}] = true
	})
	if len(seen) != 6 {
		t.Errorf("permute visited %d permutations, want 6", len(seen))
	}
}
