package sched

import (
	"vliwcache/internal/profiler"
)

// postPass implements the MinComs virtual-to-physical cluster mapping
// (§2.2): the clusters the scheduler assigned are treated as virtual
// clusters, and a one-to-one mapping onto physical clusters is chosen to
// maximize local memory accesses using each memory op's preferred-cluster
// histogram. Homogeneous clusters make any permutation legal.
func postPass(sc *Schedule, prof *profiler.Profile) {
	n := sc.Arch.NumClusters
	// gain[v][p]: profiled accesses that become local if virtual cluster v
	// maps to physical cluster p.
	gain := make([][]int64, n)
	for v := range gain {
		gain[v] = make([]int64, n)
	}
	for id, o := range sc.Plan.Loop.Ops {
		if !o.Kind.IsMem() {
			continue
		}
		hid := id
		if o.IsReplica() {
			hid = o.Origin()
		}
		h, ok := prof.Hist[hid]
		if !ok {
			continue
		}
		v := sc.Cluster[id]
		for p := 0; p < n; p++ {
			gain[v][p] += h[p]
		}
	}

	best := identity(n)
	bestGain := int64(-1)
	perm := identity(n)
	permute(perm, 0, func(p []int) {
		var g int64
		for v := 0; v < n; v++ {
			g += gain[v][p[v]]
		}
		if g > bestGain {
			bestGain = g
			copy(best, p)
		}
	})

	for id := range sc.Cluster {
		sc.Cluster[id] = best[sc.Cluster[id]]
	}
	for i := range sc.Copies {
		sc.Copies[i].ToCluster = best[sc.Copies[i].ToCluster]
	}
}

func identity(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// permute enumerates all permutations of p[k:] in place.
func permute(p []int, k int, visit func([]int)) {
	if k == len(p) {
		visit(p)
		return
	}
	for i := k; i < len(p); i++ {
		p[k], p[i] = p[i], p[k]
		permute(p, k+1, visit)
		p[k], p[i] = p[i], p[k]
	}
}
