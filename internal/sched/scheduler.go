package sched

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"vliwcache/internal/core"
)

// ErrUnknownScheduler reports a scheduler name absent from the registry.
// Errors returned by Get (and everything layered on it: portfolios, the
// experiment options, the wire schema) wrap it, so callers test with
// errors.Is instead of string matching.
var ErrUnknownScheduler = errors.New("unknown scheduler")

// Scheduler is the pluggable scheduling interface: anything that turns a
// planned loop into a valid modulo schedule. Implementations must be safe
// for concurrent use (one Scheduler value is shared by every portfolio
// race and experiment cell) and must emit schedules that pass Validate.
//
// Schedule must honor ctx: a canceled context returns promptly with
// ctx.Err() (checked at least once per candidate II). The Options carry
// the machine description, profile and budgets; implementations that
// select their own heuristic/ordering ignore the corresponding enum
// fields.
type Scheduler interface {
	// Name returns the registry name, a stable lower-case identifier
	// ("prefclus", "mincoms", "oracle", ...).
	Name() string
	// Schedule modulo-schedules the plan.
	Schedule(ctx context.Context, plan *core.Plan, opts Options) (*Schedule, error)
}

// registry is the global scheduler registry. Built-in heuristics register
// in init below; the oracle self-registers from its own package (like a
// database/sql driver), so importing internal/oracle is what makes
// "oracle" resolvable.
var registry = struct {
	sync.RWMutex
	m map[string]Scheduler
}{m: make(map[string]Scheduler)}

// Register adds a scheduler under its Name. Registering an empty name or
// a name already taken is an error — names are the wire-visible identity
// of a scheduler and must be unique.
func Register(s Scheduler) error {
	name := s.Name()
	if name == "" {
		return fmt.Errorf("sched: cannot register scheduler with empty name")
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.m[name]; dup {
		return fmt.Errorf("sched: scheduler %q already registered", name)
	}
	registry.m[name] = s
	return nil
}

// MustRegister is Register for init-time registration of schedulers whose
// names are unique by construction; it panics on error.
func MustRegister(s Scheduler) {
	if err := Register(s); err != nil {
		panic(err)
	}
}

// Get returns the scheduler registered under name. Unknown names wrap
// ErrUnknownScheduler and list the registered names.
func Get(name string) (Scheduler, error) {
	registry.RLock()
	s, ok := registry.m[name]
	registry.RUnlock()
	if !ok {
		return nil, fmt.Errorf("sched: %w %q (registered: %s)",
			ErrUnknownScheduler, name, namesString())
	}
	return s, nil
}

// Names returns the registered scheduler names, sorted.
func Names() []string {
	registry.RLock()
	defer registry.RUnlock()
	names := make([]string, 0, len(registry.m))
	for n := range registry.m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func namesString() string {
	ns := Names()
	out := ""
	for i, n := range ns {
		if i > 0 {
			out += ", "
		}
		out += n
	}
	return out
}

// heuristicScheduler adapts the iterative modulo scheduler to the
// Scheduler interface: each registered name fixes one (heuristic, order)
// combination, overriding whatever the enum fields of the passed Options
// say. This is the canonical spelling of heuristic selection; the enum
// fields remain only for pre-portfolio call sites (see Options.Order).
type heuristicScheduler struct {
	name      string
	heuristic Heuristic
	order     Order
}

func (h *heuristicScheduler) Name() string { return h.name }

func (h *heuristicScheduler) Schedule(ctx context.Context, plan *core.Plan, opts Options) (*Schedule, error) {
	opts.Heuristic = h.heuristic
	opts.Order = h.order
	return runIMS(ctx, plan, opts)
}

// Built-in registry names.
const (
	// NamePrefClus is the paper's PrefClus assignment under Rau
	// height-priority ordering.
	NamePrefClus = "prefclus"
	// NameMinComs is the paper's MinComs assignment (with the
	// virtual-to-physical post-pass) under height-priority ordering.
	NameMinComs = "mincoms"
	// NamePrefClusSlack and NameMinComsSlack are the swing-style
	// minimum-slack ordering variants of the two paper heuristics.
	NamePrefClusSlack = "prefclus-slack"
	NameMinComsSlack  = "mincoms-slack"
	// NameLocality is the locality-aware assignment variant: memory
	// instructions go to their profiled home cluster (as PrefClus) and
	// non-memory instructions follow the data — register neighbors that
	// are memory instructions weigh double, keeping consumers next to
	// the cache bank holding their operands (after the locality-aware
	// MPSoC scheduling line of work).
	NameLocality = "locality"
	// NameOracle is the exact branch-and-bound scheduler registered by
	// internal/oracle.
	NameOracle = "oracle"
)

func init() {
	MustRegister(&heuristicScheduler{NamePrefClus, PrefClus, OrderHeight})
	MustRegister(&heuristicScheduler{NameMinComs, MinComs, OrderHeight})
	MustRegister(&heuristicScheduler{NamePrefClusSlack, PrefClus, OrderSlack})
	MustRegister(&heuristicScheduler{NameMinComsSlack, MinComs, OrderSlack})
	MustRegister(&heuristicScheduler{NameLocality, Locality, OrderHeight})
}

// nameFor maps the legacy enum pair onto the registry name that runs the
// identical algorithm. It backs the compatibility shim: Run(plan, opts)
// behaves exactly as it did before the registry existed.
func nameFor(h Heuristic, o Order) string {
	switch {
	case h == PrefClus && o == OrderHeight:
		return NamePrefClus
	case h == PrefClus && o == OrderSlack:
		return NamePrefClusSlack
	case h == MinComs && o == OrderHeight:
		return NameMinComs
	case h == MinComs && o == OrderSlack:
		return NameMinComsSlack
	case h == Locality:
		return NameLocality
	}
	return NamePrefClus
}

// RunScheduler resolves name in the registry and schedules the plan with
// it. It is the context-first, name-based spelling of Run.
func RunScheduler(ctx context.Context, name string, plan *core.Plan, opts Options) (*Schedule, error) {
	s, err := Get(name)
	if err != nil {
		return nil, err
	}
	return s.Schedule(ctx, plan, opts)
}
