package sched

import (
	"sort"

	"vliwcache/internal/core"
	"vliwcache/internal/ddg"
	"vliwcache/internal/ir"
)

// state is one II attempt of the iterative modulo scheduler.
type state struct {
	plan *core.Plan
	opts Options
	ii   int
	lat  []int

	n            int
	cycle        []int // -1 = unscheduled
	cluster      []int
	prevCycle    []int // cycle at last ejection/forcing, for the +1 rule
	height       []int
	chainCluster []int // per chain, -1 = not yet assigned
	usage        []int // scheduled ops per cluster (workload balance)
	m            *mrt
	copies       map[copyKey]*copyRes
	budget       int
}

func newState(plan *core.Plan, opts Options, ii int, lat []int) *state {
	n := len(plan.Loop.Ops)
	s := &state{
		plan:      plan,
		opts:      opts,
		ii:        ii,
		lat:       lat,
		n:         n,
		cycle:     make([]int, n),
		cluster:   make([]int, n),
		prevCycle: make([]int, n),
		usage:     make([]int, opts.Arch.NumClusters),
		m:         newMRT(opts.Arch, ii),
		copies:    make(map[copyKey]*copyRes),
		budget:    opts.Budget * n,
	}
	for i := range s.cycle {
		s.cycle[i] = -1
		s.prevCycle[i] = -1
	}
	s.chainCluster = make([]int, len(plan.Chains))
	for i := range s.chainCluster {
		s.chainCluster[i] = -1
	}
	// PrefClus (and Locality) computes chain clusters prior to
	// scheduling: the average preferred cluster of the whole chain (§3.2).
	if (opts.Heuristic == PrefClus || opts.Heuristic == Locality) && opts.Profile != nil {
		for i, chain := range plan.Chains {
			s.chainCluster[i] = opts.Profile.ChainPreferred(chain)
		}
	}
	return s
}

func (s *state) lf(o *ir.Op) int { return s.lat[o.ID] }

// run drives placement until every op is scheduled or the budget runs out.
func (s *state) run() (*Schedule, bool) {
	h, ok := s.plan.Graph.Heights(s.ii, s.lf)
	if !ok {
		return nil, false
	}
	s.height = h
	if s.opts.Order == OrderSlack {
		// Swing-style priority: negative slack, so ops with the least
		// scheduling freedom are placed first; height breaks ties via the
		// composite priority below.
		asap, ok1 := s.plan.Graph.ASAP(s.ii, s.lf)
		horizon := 0
		for i := range asap {
			if t := asap[i] + s.lat[i]; t > horizon {
				horizon = t
			}
		}
		alap, ok2 := s.plan.Graph.ALAP(s.ii, horizon, s.lf)
		if !ok1 || !ok2 {
			return nil, false
		}
		for i := range s.height {
			slack := alap[i] - asap[i]
			// Compose: primary key -slack (fewer freedom first), secondary
			// the height, packed so the primary dominates.
			s.height[i] = -slack*(horizon+1) + s.height[i]%(horizon+1)
		}
	}

	for {
		u := s.next()
		if u < 0 {
			break
		}
		if s.budget <= 0 {
			return nil, false
		}
		s.budget--
		s.scheduleOp(u)
	}
	return s.emit(), true
}

// next returns the highest-priority unscheduled op, or -1 when done.
func (s *state) next() int {
	best := -1
	for id := 0; id < s.n; id++ {
		if s.cycle[id] >= 0 {
			continue
		}
		if best < 0 || s.height[id] > s.height[best] {
			best = id
		}
	}
	return best
}

// busLat is the register bus transfer latency.
func (s *state) busLat() int { return s.opts.Arch.RegBusLatency }

// effLat returns the effective latency of edge e when its target is placed
// in cluster c (the source must be scheduled for RF edges).
func (s *state) effLat(e *ddg.Edge, c int) int {
	base := ddg.EdgeLatency(e, s.plan.Loop.Ops, s.lf)
	if e.Kind == ddg.RF && s.cycle[e.From] >= 0 && s.cluster[e.From] != c {
		return base + s.busLat()
	}
	return base
}

// est returns the earliest start of op u in cluster c given scheduled
// predecessors.
func (s *state) est(u, c int) int {
	t := 0
	for _, e := range s.plan.Graph.In(u) {
		if e.From == u || s.cycle[e.From] < 0 {
			continue
		}
		if w := s.cycle[e.From] + s.effLat(e, c) - s.ii*e.Dist; w > t {
			t = w
		}
	}
	return t
}

// candidates returns the clusters to try for op u, most preferred first.
func (s *state) candidates(u int) []int {
	if c, ok := s.plan.ForceCluster[u]; ok {
		return []int{c}
	}
	if ci, ok := s.plan.ChainOf[u]; ok && s.chainCluster[ci] >= 0 {
		return []int{s.chainCluster[ci]}
	}
	nc := s.opts.Arch.NumClusters
	order := make([]int, nc)
	for i := range order {
		order[i] = i
	}

	op := s.plan.Loop.Ops[u]
	memPreferred := s.opts.Heuristic == PrefClus || s.opts.Heuristic == Locality
	if memPreferred && op.Kind.IsMem() && s.opts.Profile != nil {
		// Preferred-cluster ordering by access histogram (replicas share
		// the original's profile).
		hid := u
		if op.IsReplica() {
			hid = op.Origin()
		}
		if h, ok := s.opts.Profile.Hist[hid]; ok {
			sort.SliceStable(order, func(i, j int) bool {
				return h[order[i]] > h[order[j]]
			})
			return order
		}
	}

	// MinComs (and non-memory ops under PrefClus/Locality): maximize
	// already-placed RF neighbors in the cluster, then workload balance.
	// Locality weighs memory neighbors double so computation gravitates
	// toward the cluster whose cache bank holds the data it consumes.
	memWeight := 1
	if s.opts.Heuristic == Locality {
		memWeight = 2
	}
	weightOf := func(id int) int {
		if s.plan.Loop.Ops[id].Kind.IsMem() {
			return memWeight
		}
		return 1
	}
	aff := make([]int, nc)
	for _, e := range s.plan.Graph.In(u) {
		if e.Kind == ddg.RF && e.From != u && s.cycle[e.From] >= 0 {
			aff[s.cluster[e.From]] += weightOf(e.From)
		}
	}
	for _, e := range s.plan.Graph.Out(u) {
		if e.Kind == ddg.RF && e.To != u && s.cycle[e.To] >= 0 {
			aff[s.cluster[e.To]] += weightOf(e.To)
		}
	}
	sort.SliceStable(order, func(i, j int) bool {
		if aff[order[i]] != aff[order[j]] {
			return aff[order[i]] > aff[order[j]]
		}
		return s.usage[order[i]] < s.usage[order[j]]
	})
	return order
}

// scheduleOp places op u, scanning candidate clusters and slots; when no
// conflict-free placement exists it forces one, ejecting conflicting ops.
func (s *state) scheduleOp(u int) {
	cands := s.candidates(u)
	for _, c := range cands {
		base := s.est(u, c)
		for dt := 0; dt < s.ii; dt++ {
			if s.tryPlace(u, c, base+dt) {
				return
			}
		}
	}
	s.force(u, cands[0])
}

// tryPlace attempts a conflict-free placement of u at (c, t).
func (s *state) tryPlace(u, c, t int) bool {
	if !s.m.fuFree(c, s.plan.Loop.Ops[u].Kind.UnitClass(), t) {
		return false
	}
	// Timing against scheduled successors.
	for _, e := range s.plan.Graph.Out(u) {
		if e.To == u || s.cycle[e.To] < 0 {
			continue
		}
		if s.cycle[e.To] < t+s.effLatFrom(e, c, t)-s.ii*e.Dist {
			return false
		}
	}
	plan, ok := s.planCopies(u, c, t)
	if !ok {
		return false
	}
	s.commit(u, c, t, plan)
	return true
}

// effLatFrom is effLat for an out-edge of the op being placed at cluster c:
// cross-cluster RF adds the bus latency.
func (s *state) effLatFrom(e *ddg.Edge, c, _ int) int {
	base := ddg.EdgeLatency(e, s.plan.Loop.Ops, s.lf)
	if e.Kind == ddg.RF && s.cycle[e.To] >= 0 && s.cluster[e.To] != c {
		return base + s.busLat()
	}
	return base
}

// copyPlan is the set of transfers a placement needs.
type copyPlan struct {
	reuse []reusePlan
	fresh []freshPlan
}

type reusePlan struct {
	res  *copyRes
	user int
}

type freshPlan struct {
	key        copyKey
	start, bus int
	users      []int
}

// planCopies computes the transfers needed to place u at (c, t):
// cross-cluster values from scheduled producers into c, and u's own value
// to clusters of scheduled consumers. ok is false when a needed transfer
// cannot be satisfied (no bus slot within its window).
func (s *state) planCopies(u, c, t int) (copyPlan, bool) {
	var plan copyPlan
	bl := s.busLat()

	// Inbound: scheduled RF producers in other clusters.
	for _, e := range s.plan.Graph.In(u) {
		if e.Kind != ddg.RF || e.From == u || s.cycle[e.From] < 0 || s.cluster[e.From] == c {
			continue
		}
		p := e.From
		deadline := t + s.ii*e.Dist - bl // latest transfer start
		ready := s.cycle[p] + s.lat[p]
		if ex, ok := s.copies[copyKey{p, c}]; ok {
			if ex.start >= ready && ex.start <= deadline {
				plan.reuse = append(plan.reuse, reusePlan{ex, u})
				continue
			}
			return copyPlan{}, false // existing transfer incompatible
		}
		start, bus, ok := s.findBus(ready, deadline, plan.fresh)
		if !ok {
			return copyPlan{}, false
		}
		plan.fresh = append(plan.fresh, freshPlan{copyKey{p, c}, start, bus, []int{u}})
	}

	// Outbound: u's value to clusters holding scheduled consumers. Group
	// consumers per cluster; one transfer serves them all, so its window is
	// the intersection of their windows.
	type window struct {
		deadline int
		users    []int
	}
	outw := make(map[int]*window)
	for _, e := range s.plan.Graph.Out(u) {
		if e.Kind != ddg.RF || e.To == u || s.cycle[e.To] < 0 || s.cluster[e.To] == c {
			continue
		}
		d := s.cycle[e.To] + s.ii*e.Dist - bl
		w, ok := outw[s.cluster[e.To]]
		if !ok {
			outw[s.cluster[e.To]] = &window{deadline: d, users: []int{e.To}}
			continue
		}
		if d < w.deadline {
			w.deadline = d
		}
		w.users = append(w.users, e.To)
	}
	ready := t + s.lat[u]
	// Deterministic iteration order over destination clusters.
	dsts := make([]int, 0, len(outw))
	for d := range outw {
		dsts = append(dsts, d)
	}
	sort.Ints(dsts)
	for _, dst := range dsts {
		w := outw[dst]
		start, bus, ok := s.findBus(ready, w.deadline, plan.fresh)
		if !ok {
			return copyPlan{}, false
		}
		plan.fresh = append(plan.fresh, freshPlan{copyKey{u, dst}, start, bus, w.users})
	}
	return plan, true
}

// findBus locates a (start, bus) with every slot of the transfer free,
// scanning starts from early to late, avoiding conflicts with transfers
// already tentatively planned in this placement.
func (s *state) findBus(ready, deadline int, pending []freshPlan) (start, bus int, ok bool) {
	if deadline < ready {
		return 0, 0, false
	}
	// Scanning more than II starts revisits the same modulo slots.
	limit := deadline
	if limit > ready+s.ii-1 {
		limit = ready + s.ii - 1
	}
	for t := ready; t <= limit; t++ {
		for b := range s.m.bus {
			if !s.m.busFreeOn(b, t) || conflictsPending(s, pending, b, t) {
				continue
			}
			return t, b, true
		}
	}
	return 0, 0, false
}

// conflictsPending reports whether a transfer on bus b starting at t would
// overlap a transfer tentatively planned in this same placement.
func conflictsPending(s *state, pending []freshPlan, b, t int) bool {
	bl := s.busLat()
	if bl > s.ii {
		bl = s.ii
	}
	for _, f := range pending {
		if f.bus != b {
			continue
		}
		for d1 := 0; d1 < bl; d1++ {
			for d2 := 0; d2 < bl; d2++ {
				if s.m.slot(t+d1) == s.m.slot(f.start+d2) {
					return true
				}
			}
		}
	}
	return false
}

// commit applies a placement and its copy plan.
func (s *state) commit(u, c, t int, plan copyPlan) {
	s.m.fuReserve(u, c, s.plan.Loop.Ops[u].Kind.UnitClass(), t)
	s.cycle[u] = t
	s.cluster[u] = c
	s.usage[c]++
	for _, r := range plan.reuse {
		r.res.users[r.user] = true
	}
	for _, f := range plan.fresh {
		res := &copyRes{key: f.key, start: f.start, bus: f.bus, users: map[int]bool{}}
		for _, usr := range f.users {
			res.users[usr] = true
		}
		s.m.busReserve(f.key.producer, f.bus, f.start)
		s.copies[f.key] = res
	}
	if ci, ok := s.plan.ChainOf[u]; ok && s.chainCluster[ci] < 0 {
		s.chainCluster[ci] = c
	}
}

// eject unschedules op x: frees its unit, detaches it from transfers it
// consumed, and drops transfers it produced.
func (s *state) eject(x int) {
	if s.cycle[x] < 0 {
		return
	}
	s.m.fuRelease(x, s.cluster[x], s.plan.Loop.Ops[x].Kind.UnitClass(), s.cycle[x])
	s.usage[s.cluster[x]]--
	s.prevCycle[x] = s.cycle[x]
	s.cycle[x] = -1
	for k, res := range s.copies {
		if k.producer == x {
			s.m.busRelease(res.bus, res.start)
			delete(s.copies, k)
			continue
		}
		if res.users[x] {
			delete(res.users, x)
			if len(res.users) == 0 {
				s.m.busRelease(res.bus, res.start)
				delete(s.copies, k)
			}
		}
	}
}

// force places u at its preferred cluster at max(est, prev+1), ejecting
// whatever conflicts: unit owners, timing-violated neighbors, and — when a
// needed transfer cannot be routed — the neighbor needing it.
func (s *state) force(u, c int) {
	t := s.est(u, c)
	if t <= s.prevCycle[u] {
		t = s.prevCycle[u] + 1
	}

	// Free the functional unit.
	class := s.plan.Loop.Ops[u].Kind.UnitClass()
	for !s.m.fuFree(c, class, t) {
		owners := s.m.fuOwners(c, class, t)
		s.eject(owners[0])
	}

	// Timing against scheduled neighbors: eject violators. Predecessor
	// violations cannot arise (t >= est), except when est used a different
	// cluster assumption — est was computed for this same c, so only
	// successors can be violated.
	for _, e := range s.plan.Graph.Out(u) {
		if e.To == u || s.cycle[e.To] < 0 {
			continue
		}
		if s.cycle[e.To] < t+s.effLatFrom(e, c, t)-s.ii*e.Dist {
			s.eject(e.To)
		}
	}

	// Route transfers, ejecting neighbors whose transfer cannot fit.
	for {
		plan, ok := s.planCopies(u, c, t)
		if ok {
			s.commit(u, c, t, plan)
			return
		}
		if !s.ejectOneCopyBlocker(u, c, t) {
			// Last resort: free every bus slot by ejecting all transfer
			// producers, then retry once more; if that cannot help, eject
			// all RF neighbors.
			if !s.ejectAnyNeighbor(u, c) {
				// Nothing left to eject — place without the transfer;
				// Validate will fail loudly if this ever happens.
				plan, _ := s.planCopies(u, c, t)
				s.commit(u, c, t, plan)
				return
			}
		}
	}
}

// ejectOneCopyBlocker finds the first scheduled RF neighbor of u whose
// required transfer cannot be satisfied and ejects it. Returns false when
// every neighbor's transfer is routable (so planCopies must have failed for
// another reason) or there is nothing to eject.
func (s *state) ejectOneCopyBlocker(u, c, t int) bool {
	bl := s.busLat()
	for _, e := range s.plan.Graph.In(u) {
		if e.Kind != ddg.RF || e.From == u || s.cycle[e.From] < 0 || s.cluster[e.From] == c {
			continue
		}
		p := e.From
		ready := s.cycle[p] + s.lat[p]
		deadline := t + s.ii*e.Dist - bl
		if ex, ok := s.copies[copyKey{p, c}]; ok && ex.start >= ready && ex.start <= deadline {
			continue
		}
		if _, _, ok := s.findBus(ready, deadline, nil); !ok {
			s.eject(p)
			return true
		}
	}
	for _, e := range s.plan.Graph.Out(u) {
		if e.Kind != ddg.RF || e.To == u || s.cycle[e.To] < 0 || s.cluster[e.To] == c {
			continue
		}
		ready := t + s.lat[u]
		deadline := s.cycle[e.To] + s.ii*e.Dist - bl
		if _, _, ok := s.findBus(ready, deadline, nil); !ok {
			s.eject(e.To)
			return true
		}
	}
	return false
}

// ejectAnyNeighbor ejects one scheduled RF neighbor of u in another
// cluster, freeing bus pressure. Returns false if none exists.
func (s *state) ejectAnyNeighbor(u, c int) bool {
	for _, e := range s.plan.Graph.In(u) {
		if e.Kind == ddg.RF && e.From != u && s.cycle[e.From] >= 0 && s.cluster[e.From] != c {
			s.eject(e.From)
			return true
		}
	}
	for _, e := range s.plan.Graph.Out(u) {
		if e.Kind == ddg.RF && e.To != u && s.cycle[e.To] >= 0 && s.cluster[e.To] != c {
			s.eject(e.To)
			return true
		}
	}
	return false
}

// emit freezes the state into a Schedule.
func (s *state) emit() *Schedule {
	sc := &Schedule{
		Plan:    s.plan,
		Arch:    s.opts.Arch,
		II:      s.ii,
		Cycle:   append([]int(nil), s.cycle...),
		Cluster: append([]int(nil), s.cluster...),
		Lat:     append([]int(nil), s.lat...),
	}
	for i := range sc.Cycle {
		if end := sc.Cycle[i] + s.lat[i]; end > sc.Length {
			sc.Length = end
		}
	}
	keys := make([]copyKey, 0, len(s.copies))
	for k := range s.copies {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].producer != keys[j].producer {
			return keys[i].producer < keys[j].producer
		}
		return keys[i].toCluster < keys[j].toCluster
	})
	for _, k := range keys {
		res := s.copies[k]
		sc.Copies = append(sc.Copies, Copy{
			Producer:  k.producer,
			ToCluster: k.toCluster,
			Start:     res.start,
			Bus:       res.bus,
		})
	}
	return sc
}
