package sched

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"vliwcache/internal/core"
	"vliwcache/internal/engine"
)

// Portfolio races several registered schedulers on the same plan and
// keeps the best valid schedule. "Best" is decided by a deterministic
// total order — initiation interval first (steady-state cycles are
// II-proportional), then schedule length (fill/drain cycles), then
// communication ops, then the portfolio's name order as the final
// tie-break — so a portfolio run is reproducible regardless of which
// member finishes first.
//
// A portfolio of one member is exactly that member: the schedule (and
// therefore everything downstream — simulation statistics, rendered
// figures, cache keys' payloads) is byte-identical to calling the member
// directly.
type Portfolio struct {
	members []Scheduler
	eng     *engine.Engine
}

// NewPortfolio resolves the named schedulers in the registry. The name
// order is preserved — it is the deterministic tie-break. Duplicate names
// are rejected (a duplicate could never win a tie-break and only burns a
// race slot); unknown names wrap ErrUnknownScheduler.
func NewPortfolio(names ...string) (*Portfolio, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("sched: empty portfolio")
	}
	seen := make(map[string]bool, len(names))
	p := &Portfolio{members: make([]Scheduler, len(names))}
	for i, name := range names {
		if seen[name] {
			return nil, fmt.Errorf("sched: duplicate scheduler %q in portfolio", name)
		}
		seen[name] = true
		s, err := Get(name)
		if err != nil {
			return nil, err
		}
		p.members[i] = s
	}
	return p, nil
}

// WithEngine routes the race through a caller-owned engine's bounded
// worker pool instead of one goroutine per member, so portfolio fan-out
// shares worker slots (and metrics) with the experiment grid. It returns
// p for chaining.
func (p *Portfolio) WithEngine(e *engine.Engine) *Portfolio {
	p.eng = e
	return p
}

// Names returns the member names in race (tie-break) order.
func (p *Portfolio) Names() []string {
	ns := make([]string, len(p.members))
	for i, m := range p.members {
		ns[i] = m.Name()
	}
	return ns
}

// Name implements Scheduler: "portfolio(a+b+c)".
func (p *Portfolio) Name() string {
	out := "portfolio("
	for i, m := range p.members {
		if i > 0 {
			out += "+"
		}
		out += m.Name()
	}
	return out + ")"
}

// Schedule implements Scheduler by racing every member and returning the
// winning schedule. Use ScheduleBest to also learn which member won.
func (p *Portfolio) Schedule(ctx context.Context, plan *core.Plan, opts Options) (*Schedule, error) {
	sc, _, err := p.ScheduleBest(ctx, plan, opts)
	return sc, err
}

// ScheduleBest races every member concurrently and returns the best valid
// schedule plus the winning member's name. When every member fails, the
// errors are joined (errors.Is still finds ErrInfeasible and friends
// through the join).
func (p *Portfolio) ScheduleBest(ctx context.Context, plan *core.Plan, opts Options) (*Schedule, string, error) {
	if len(p.members) == 1 {
		sc, err := p.members[0].Schedule(ctx, plan, opts)
		if err != nil {
			return nil, "", err
		}
		return sc, p.members[0].Name(), nil
	}

	// The race runs under a derived context that is canceled as soon as
	// every slot has reported (and on every early return): a member that
	// spawned ctx-watching helpers must not keep them alive past the race,
	// and a caller-supplied long-lived context must not pin them either.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Each member writes only its own slot, so the race is data-race-free
	// and the outcome does not depend on finish order.
	scs := make([]*Schedule, len(p.members))
	errs := make([]error, len(p.members))
	var wg sync.WaitGroup
	for i, m := range p.members {
		wg.Add(1)
		go func(i int, m Scheduler) {
			defer wg.Done()
			if p.eng != nil {
				v, err := p.eng.Run(ctx, func(ctx context.Context) (any, error) {
					return m.Schedule(ctx, plan, opts)
				})
				if sc, ok := v.(*Schedule); ok {
					scs[i] = sc
				}
				errs[i] = err
				return
			}
			scs[i], errs[i] = m.Schedule(ctx, plan, opts)
		}(i, m)
	}
	wg.Wait()

	best := -1
	for i, sc := range scs {
		if errs[i] != nil || sc == nil {
			continue
		}
		if best < 0 || betterSchedule(sc, scs[best]) {
			best = i
		}
	}
	if best < 0 {
		return nil, "", fmt.Errorf("sched: portfolio %s: every member failed: %w", p.Name(), errors.Join(errs...))
	}
	return scs[best], p.members[best].Name(), nil
}

// betterSchedule reports whether a strictly beats b in the portfolio
// order: lower II, then shorter length, then fewer communication ops.
// Equal schedules are not "better", so the earliest member in name order
// keeps a tie.
func betterSchedule(a, b *Schedule) bool {
	if a.II != b.II {
		return a.II < b.II
	}
	if a.Length != b.Length {
		return a.Length < b.Length
	}
	return len(a.Copies) < len(b.Copies)
}
