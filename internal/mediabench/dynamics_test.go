package mediabench

import (
	"testing"

	"vliwcache/internal/arch"
	"vliwcache/internal/core"
	"vliwcache/internal/profiler"
	"vliwcache/internal/sched"
	"vliwcache/internal/sim"
)

// TestSuiteDynamics runs every benchmark's loops end to end under MDC and
// sanity-checks the simulated behaviour: accesses conserved, no ordering
// violations, and the access mix dominated by local hits (the generator's
// tables and paired fixed-home walks are built for reuse).
func TestSuiteDynamics(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, b := range All() {
		cfg := arch.Default().WithInterleave(b.Interleave)
		var total sim.Stats
		for _, loop := range b.Loops {
			plan, err := core.Prepare(loop, core.PolicyMDC, cfg.NumClusters)
			if err != nil {
				t.Fatalf("%s/%s: %v", b.Name, loop.Name, err)
			}
			sc, err := sched.Run(plan, sched.Options{Arch: cfg, Heuristic: sched.PrefClus,
				Profile: profiler.Run(loop, cfg)})
			if err != nil {
				t.Fatalf("%s/%s: %v", b.Name, loop.Name, err)
			}
			st, err := sim.Run(sc, sim.Options{MaxIterations: 250, MaxEntries: 1, CheckCoherence: true})
			if err != nil {
				t.Fatalf("%s/%s: %v", b.Name, loop.Name, err)
			}
			if st.Violations != 0 {
				t.Errorf("%s/%s: %d ordering violations under MDC", b.Name, loop.Name, st.Violations)
			}
			total.Add(st)
		}
		if lh := total.LocalHitRatio(); lh < 0.30 {
			t.Errorf("%s: local hit ratio %.2f unrealistically low", b.Name, lh)
		}
		if total.TotalAccesses() == 0 {
			t.Errorf("%s: no accesses simulated", b.Name)
		}
	}
}

// TestProfileMatchesExecutionHomes: with the generator's padded layouts
// the profile-input preferred cluster is the execution-input home for
// fixed-home ops (the paper's padding argument, §2.2).
func TestProfileMatchesExecutionHomes(t *testing.T) {
	b, err := Get("jpegenc")
	if err != nil {
		t.Fatal(err)
	}
	cfg := arch.Default().WithInterleave(b.Interleave)
	loop := b.Loops[0]
	prof := profiler.Run(loop, cfg)
	for _, o := range loop.Ops {
		if !o.Kind.IsMem() || o.Addr.Stride != int64(4*b.Interleave) {
			continue // only fixed-home ops have a guaranteed home
		}
		want := cfg.HomeCluster(o.Addr.AddrAt(loop.Symbols[o.Addr.Base].Base, 0))
		if got := prof.Preferred(o.ID); got != want {
			t.Errorf("%s: preferred %d, execution home %d", o.Label(), got, want)
		}
	}
}
