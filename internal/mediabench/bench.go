package mediabench

import (
	"errors"
	"fmt"
	"sort"

	"vliwcache/internal/ir"
)

// Benchmark is one synthesized Mediabench program: its loops plus the
// metadata of Table 1.
type Benchmark struct {
	Name string

	// Interleave is the interleaving factor in bytes used for this
	// benchmark (§4.1: 4 bytes for epicdec, epicenc, jpegdec, jpegenc,
	// mpeg2dec, pgpdec, pgpenc and rasta; 2 bytes for the rest).
	Interleave int

	// MainDataSize and MainDataPct reproduce the last column of Table 1:
	// the most common data type size and the percentage of dynamic memory
	// instructions referencing it.
	MainDataSize int
	MainDataPct  float64

	// ProfileInput and ExecInput name the two input sets (Table 1).
	ProfileInput, ExecInput string

	// Loops are the benchmark's modulo-scheduled loops, main loop first.
	Loops []*ir.Loop

	specs []loopSpec
}

// InFigures reports whether the benchmark appears in the paper's result
// figures (all of Table 1 except epicenc).
func (b *Benchmark) InFigures() bool { return b.Name != "epicenc" }

// benchDef couples Table 1 metadata with the generated loop specs.
type benchDef struct {
	name         string
	interleave   int
	dataSize     int
	dataPct      float64
	profileInput string
	execInput    string
	loops        []loopSpec
}

// defs is ordered as the paper's tables (alphabetical).
var defs = []benchDef{
	{
		name: "epicdec", interleave: 4, dataSize: 4, dataPct: 84,
		profileInput: "test_image.pgm.E", execInput: "titanic3.pgm.E",
		loops: []loopSpec{
			// §5.4: an important loop with 76 memory instructions forming
			// one huge memory dependent chain.
			{name: "epicdec.unquantize", trip: 2500, entries: 2, es: 4,
				chainStores: 6, chainLoads: 16, ambigLoads: 38, ambigStores: 16,
				tableLoads: 12, fixedLoads: 14, fixedStores: 4, streamLoads: 8, streamStores: 5,
				arith: 152, recur: 74},
			{name: "epicdec.huffman", trip: 600, entries: 1, es: 4,
				tableLoads: 6, fixedLoads: 6, fixedStores: 2, streamLoads: 2, streamStores: 1,
				arith: 40},
		},
	},
	{
		name: "epicenc", interleave: 4, dataSize: 4, dataPct: 89,
		profileInput: "test_image", execInput: "titanic3.pgm",
		loops: []loopSpec{
			{name: "epicenc.filter", trip: 2500, entries: 2, es: 4,
				chainStores: 2, chainLoads: 4, ambigLoads: 2,
				tableLoads: 6, fixedLoads: 8, fixedStores: 2, streamLoads: 2, streamStores: 1,
				arith: 54, recur: 6, fp: true},
			{name: "epicenc.quantize", trip: 600, entries: 1, es: 4,
				tableLoads: 4, fixedLoads: 4, fixedStores: 2, arith: 30},
		},
	},
	{
		name: "g721dec", interleave: 2, dataSize: 2, dataPct: 89,
		profileInput: "clinton.g721", execInput: "S_16_44.g721",
		loops: []loopSpec{
			{name: "g721dec.predict", trip: 3000, entries: 2, es: 2,
				tableLoads: 6, fixedLoads: 5, fixedStores: 2, streamLoads: 1,
				arith: 37, recur: 8},
			{name: "g721dec.update", trip: 800, entries: 1, es: 2,
				tableLoads: 4, fixedLoads: 3, fixedStores: 1, arith: 28},
		},
	},
	{
		name: "g721enc", interleave: 2, dataSize: 2, dataPct: 91.7,
		profileInput: "clinton.pcm", execInput: "S_16_44.pcm",
		loops: []loopSpec{
			{name: "g721enc.quantize", trip: 3000, entries: 2, es: 2,
				tableLoads: 5, fixedLoads: 5, fixedStores: 2, streamLoads: 1,
				arith: 42, recur: 8},
			{name: "g721enc.adapt", trip: 800, entries: 1, es: 2,
				tableLoads: 4, fixedLoads: 3, fixedStores: 1, arith: 26},
		},
	},
	{
		name: "gsmdec", interleave: 2, dataSize: 2, dataPct: 99,
		profileInput: "clint.pcm.run.gsm", execInput: "S_16_44.pcm.gsm",
		loops: []loopSpec{
			{name: "gsmdec.synthesis", trip: 2500, entries: 2, es: 2,
				chainStores: 1, chainLoads: 2,
				tableLoads: 6, fixedLoads: 6, fixedStores: 1, streamLoads: 1,
				arith: 125, recur: 8},
			{name: "gsmdec.postproc", trip: 700, entries: 1, es: 2,
				tableLoads: 4, fixedLoads: 4, fixedStores: 1, arith: 35},
		},
	},
	{
		name: "gsmenc", interleave: 2, dataSize: 2, dataPct: 99,
		profileInput: "clinton.pcm", execInput: "S_16_44.pcm",
		loops: []loopSpec{
			{name: "gsmenc.lpc", trip: 2500, entries: 2, es: 2,
				chainStores: 1, chainLoads: 1,
				tableLoads: 8, fixedLoads: 12, fixedStores: 2, streamLoads: 1,
				arith: 171, recur: 4},
			{name: "gsmenc.preproc", trip: 700, entries: 1, es: 2,
				tableLoads: 4, fixedLoads: 4, fixedStores: 1, arith: 30},
		},
	},
	{
		name: "jpegdec", interleave: 4, dataSize: 1, dataPct: 53,
		profileInput: "testimg.jpg", execInput: "monalisa.jpg",
		loops: []loopSpec{
			{name: "jpegdec.idct", trip: 2500, entries: 2, es: 1,
				chainStores: 2, chainLoads: 4, ambigLoads: 6, ambigStores: 2,
				tableLoads: 6, fixedLoads: 6, fixedStores: 1, streamLoads: 1,
				arith: 93, recur: 12},
			{name: "jpegdec.color", trip: 600, entries: 1, es: 1,
				tableLoads: 5, fixedLoads: 4, fixedStores: 1, arith: 32},
		},
	},
	{
		name: "jpegenc", interleave: 4, dataSize: 4, dataPct: 70,
		profileInput: "testimg.ppm", execInput: "monalisa.ppm",
		loops: []loopSpec{
			{name: "jpegenc.fdct", trip: 2500, entries: 2, es: 4,
				chainStores: 1, chainLoads: 1,
				tableLoads: 9, fixedLoads: 12, fixedStores: 3, streamLoads: 2,
				arith: 35, recur: 4},
			{name: "jpegenc.huffman", trip: 700, entries: 1, es: 4,
				tableLoads: 4, fixedLoads: 4, fixedStores: 1, arith: 22},
		},
	},
	{
		name: "mpeg2dec", interleave: 4, dataSize: 8, dataPct: 49,
		profileInput: "mei16v2.m2v", execInput: "tek6.m2v",
		loops: []loopSpec{
			{name: "mpeg2dec.motion", trip: 2500, entries: 2, es: 8,
				chainStores: 1, chainLoads: 2,
				tableLoads: 7, fixedLoads: 9, fixedStores: 3, streamLoads: 1,
				arith: 33, recur: 4},
			{name: "mpeg2dec.saturate", trip: 700, entries: 1, es: 8,
				tableLoads: 4, fixedLoads: 4, fixedStores: 1, arith: 24},
		},
	},
	{
		name: "pegwitdec", interleave: 2, dataSize: 2, dataPct: 75.8,
		profileInput: "pegwit.enc", execInput: "tech_rep.txt.enc",
		loops: []loopSpec{
			{name: "pegwitdec.gfmul", trip: 2500, entries: 2, es: 2,
				chainStores: 2, chainLoads: 2, ambigLoads: 1, ambigStores: 1,
				tableLoads: 6, fixedLoads: 8, fixedStores: 2,
				arith: 60, recur: 4},
			{name: "pegwitdec.hash", trip: 700, entries: 1, es: 2,
				tableLoads: 4, fixedLoads: 4, fixedStores: 1, arith: 28},
		},
	},
	{
		name: "pegwitenc", interleave: 2, dataSize: 2, dataPct: 83.6,
		profileInput: "pgptest.plain", execInput: "tech_rep.txt",
		loops: []loopSpec{
			{name: "pegwitenc.gfmul", trip: 2500, entries: 2, es: 2,
				chainStores: 3, chainLoads: 3, ambigLoads: 1, ambigStores: 1,
				tableLoads: 5, fixedLoads: 8, fixedStores: 2,
				arith: 60, recur: 6},
			{name: "pegwitenc.hash", trip: 700, entries: 1, es: 2,
				tableLoads: 4, fixedLoads: 4, fixedStores: 1, arith: 28},
		},
	},
	{
		name: "pgpdec", interleave: 4, dataSize: 4, dataPct: 92.1,
		profileInput: "pgptext.pgp", execInput: "tech_rep.txt.enc",
		loops: []loopSpec{
			{name: "pgpdec.mpimul", trip: 2500, entries: 2, es: 4,
				chainStores: 4, chainLoads: 17, ambigLoads: 6, ambigStores: 3,
				tableLoads: 4, fixedLoads: 6, fixedStores: 1,
				arith: 56, recur: 28},
			{name: "pgpdec.idea", trip: 600, entries: 1, es: 4,
				tableLoads: 5, fixedLoads: 4, fixedStores: 1, streamLoads: 1, streamStores: 1,
				arith: 30},
		},
	},
	{
		name: "pgpenc", interleave: 4, dataSize: 4, dataPct: 73.2,
		profileInput: "pgptest.plain", execInput: "tech_rep.txt",
		loops: []loopSpec{
			{name: "pgpenc.mpimul", trip: 2500, entries: 2, es: 4,
				chainStores: 4, chainLoads: 13, ambigLoads: 5, ambigStores: 3,
				tableLoads: 5, fixedLoads: 8, fixedStores: 2,
				arith: 56, recur: 23},
			{name: "pgpenc.idea", trip: 600, entries: 1, es: 4,
				tableLoads: 5, fixedLoads: 4, fixedStores: 1, streamLoads: 1, streamStores: 1,
				arith: 30},
		},
	},
	{
		name: "rasta", interleave: 4, dataSize: 4, dataPct: 95,
		profileInput: "ex5_c1.wav", execInput: "ex5_c1.wav",
		loops: []loopSpec{
			{name: "rasta.fft", trip: 3000, entries: 2, es: 4,
				chainStores: 1, chainLoads: 2, ambigLoads: 7, ambigStores: 3,
				tableLoads: 5, fixedLoads: 5, fixedStores: 1, streamLoads: 1,
				arith: 14, recur: 11, fp: true},
			{name: "rasta.bandpass", trip: 500, entries: 1, es: 4,
				tableLoads: 3, fixedLoads: 3, fixedStores: 1, arith: 18, fp: true},
		},
	},
}

// All generates the full suite, ordered as in the paper's tables.
func All() []*Benchmark {
	bs := make([]*Benchmark, len(defs))
	for i, d := range defs {
		bs[i] = build(d, uint64(i))
	}
	return bs
}

// Figures generates the thirteen benchmarks that appear in the result
// figures (Table 1 minus epicenc).
func Figures() []*Benchmark {
	var bs []*Benchmark
	for _, b := range All() {
		if b.InFigures() {
			bs = append(bs, b)
		}
	}
	return bs
}

// ErrUnknownBenchmark reports a benchmark name outside the suite. Errors
// returned by Get (and by experiment lookups built on it) wrap it, so
// callers can test with errors.Is instead of string matching.
var ErrUnknownBenchmark = errors.New("unknown benchmark")

// Get generates one benchmark by name.
func Get(name string) (*Benchmark, error) {
	for i, d := range defs {
		if d.name == name {
			return build(d, uint64(i)), nil
		}
	}
	return nil, fmt.Errorf("mediabench: %w %q (have %v)", ErrUnknownBenchmark, name, Names())
}

// Names lists the suite in table order.
func Names() []string {
	ns := make([]string, len(defs))
	for i, d := range defs {
		ns[i] = d.name
	}
	sort.Strings(ns)
	return ns
}

func build(d benchDef, seed uint64) *Benchmark {
	b := &Benchmark{
		Name:         d.name,
		Interleave:   d.interleave,
		MainDataSize: d.dataSize,
		MainDataPct:  d.dataPct,
		ProfileInput: d.profileInput,
		ExecInput:    d.execInput,
		specs:        d.loops,
	}
	for j, s := range d.loops {
		b.Loops = append(b.Loops, buildLoop(s, d.interleave, seed*16+uint64(j)))
	}
	return b
}
