// Package mediabench synthesizes the Mediabench-like workload suite the
// paper evaluates on (Table 1). The original benchmarks require the IMPACT
// C compiler and the Mediabench sources/inputs, neither of which is
// available here; instead, each benchmark is generated as a set of
// modulo-schedulable loops whose dependence structure, access strides, data
// sizes and memory-dependent-chain shapes are tuned to the per-benchmark
// characteristics the paper publishes:
//
//   - main data size and interleaving factor (Table 1 / §4.1),
//   - CMR and CAR chain ratios (Table 3),
//   - the epicdec loop with a huge memory dependent chain (§5.4),
//   - chains that shrink under code specialization for epicdec, pgpdec
//     and rasta (Table 5) — their chains are mostly ambiguous
//     (never-materializing) dependences glued to a smaller real core.
//
// Loops are built from five ingredient patterns:
//
//   - table loads: stride 0 (coefficient/lookup tables), always hitting
//     after warm-up, each with a 100% preferred home cluster;
//   - unrolled fixed-home accesses: stride = NumClusters×Interleave, so
//     each op always addresses the same cluster (the paper unrolls loops
//     to maximize such accesses, §2.2);
//   - streaming accesses: stride = element size, home rotating;
//   - real chains: stores plus trailing loads over one array, with exact
//     loop-carried memory flow/output dependences;
//   - ambiguous chains: fixed-home loads and stores through may-aliased
//     symbols that never actually overlap (false unresolved dependences).
//
// Independent stores are placed in private address lanes far from every
// other op's walk so the exact dependence test proves them independent.
package mediabench

import (
	"fmt"

	"vliwcache/internal/ir"
)

// lane spacing: larger than any op's walk (trip × stride).
const lane = 0x40000

// laneOff returns the base offset of lane j: lanes are spaced far enough
// apart that independent walks never overlap, and staggered by 33 blocks
// (1056 bytes, a multiple of every N×I) so they spread over the modules'
// cache sets without changing home clusters.
func laneOff(j int) int64 { return int64(j)*lane + int64(j)*1056 }

// loopSpec describes one generated loop.
type loopSpec struct {
	name    string
	trip    int64
	entries int64

	es int // element size in bytes (main data size of the benchmark)

	// Real chain: chainStores stores and chainLoads trailing loads over
	// array C with exact loop-carried dependences; one memory chain.
	chainStores, chainLoads int

	// Ambiguous chain: fixed-home loads of P and stores of Q; P may-alias
	// Q (and C when a real chain exists, gluing the parts into one chain)
	// but the ranges never overlap. Code specialization removes these.
	ambigLoads, ambigStores int

	// Independent accesses.
	tableLoads                int // stride 0, strongly preferred home
	fixedLoads, fixedStores   int // stride NxI, fixed home
	streamLoads, streamStores int // stride es, rotating home

	// Arithmetic ops consuming the loaded values.
	arith int
	fp    bool

	// recur is the length of a loop-carried scalar recurrence (an
	// accumulator chain of 1-cycle ops). When the loop has a real chain,
	// the recurrence is wired through it — chain load feeds the
	// recurrence, the recurrence feeds the chain store — forming a
	// loop-carried memory recurrence that bounds the II the way serial
	// pointer/carry chains do in real code, and capping the latency the
	// scheduler may assume for the chain load (the stall-on-use pressure
	// point of §4.2).
	recur int
}

func (s loopSpec) ops() int {
	return s.memOps() + s.arith + s.recur
}

func (s loopSpec) memOps() int {
	return s.chainStores + s.chainLoads + s.ambigLoads + s.ambigStores +
		s.tableLoads + s.fixedLoads + s.fixedStores + s.streamLoads + s.streamStores
}

func (s loopSpec) chainOps() int {
	c := s.chainStores + s.chainLoads + s.ambigLoads + s.ambigStores
	if c == 1 {
		// A single memory op cannot form a chain.
		return 0
	}
	return c
}

// pool tracks produced values by home-cluster lane, so the generated
// dataflow has the shape of real unrolled code: loads of a lane feed the
// arithmetic of that lane, which feeds the stores of that lane. Cluster
// assignment heuristics (MinComs in particular) rely on this structure.
type pool struct {
	live    ir.Reg
	byGroup [4][]ir.Reg
	any     []ir.Reg
}

func (p *pool) add(group int, r ir.Reg) {
	if group >= 0 {
		p.byGroup[group%4] = append(p.byGroup[group%4], r)
		return
	}
	p.any = append(p.any, r)
}

// pick returns a value, preferring the given lane, then unassigned values,
// then other lanes, then the live-in register.
func (p *pool) pick(group int, salt uint64) ir.Reg {
	if group >= 0 {
		if g := p.byGroup[group%4]; len(g) > 0 {
			return g[int(salt>>33)%len(g)]
		}
	}
	if len(p.any) > 0 {
		return p.any[int(salt>>17)%len(p.any)]
	}
	for d := 0; d < 4; d++ {
		if g := p.byGroup[(group+d+4)%4]; len(g) > 0 {
			return g[int(salt>>7)%len(g)]
		}
	}
	return p.live
}

// buildLoop materializes a loopSpec. seed varies symbol bases so loops do
// not collide in the address space.
func buildLoop(s loopSpec, interleave int, seed uint64) *ir.Loop {
	b := ir.NewBuilder(s.name)
	b.Trip(s.trip, s.entries)

	base := 0x4000000 * (seed + 1)
	es := int64(s.es)
	ni := int64(4 * interleave) // fixed-home stride (4 clusters)
	il := int64(interleave)

	vals := &pool{live: b.Reg()}
	rng := seed*0x9E3779B97F4A7C15 + 12345
	next := func() uint64 {
		rng = rng*6364136223846793005 + 1442695040888963407
		return rng
	}
	// home returns the home cluster of a fixed-home access at the given
	// offset from the loop's base region.
	home := func(off int64) int {
		return int(((int64(base) + off) / il) % 4)
	}

	// Real chain over array C: a fixed-home walk (stride N×I — aliased
	// accesses necessarily share homes under word interleaving) with
	// stores at offsets 0, -N·I, ... and loads trailing by 1..chainLoads
	// iterations: exact loop-carried MO/MF dependences chain them all.
	var chainLoadVal, recurTail ir.Reg = ir.NoReg, ir.NoReg
	if s.chainStores+s.chainLoads > 0 {
		var mayAlias []string
		if s.ambigLoads+s.ambigStores > 0 {
			mayAlias = []string{"P"}
		}
		b.Symbol("C", base, lane, mayAlias...)
		for j := 0; j < s.chainLoads; j++ {
			v := b.Load(fmt.Sprintf("cld%d", j),
				ir.AddrExpr{Base: "C", Offset: -ni * int64(s.chainStores+j), Stride: ni, Size: s.es})
			vals.add(home(0), v)
			if j == 0 {
				chainLoadVal = v
			}
		}
	}

	// Loop-carried scalar recurrence, threaded through the real chain when
	// one exists: cld0 -> r0 -> ... -> r(k-1) -> last chain store, which
	// feeds next iteration's cld0 through memory.
	if s.recur > 0 {
		prev := ir.NoReg
		for j := 0; j < s.recur; j++ {
			var srcs []ir.Reg
			if prev != ir.NoReg {
				srcs = append(srcs, prev)
			}
			if j == 0 && chainLoadVal != ir.NoReg {
				srcs = append(srcs, chainLoadVal)
			} else if j%3 == 1 {
				srcs = append(srcs, vals.pick(j, next()))
			}
			prev = b.Arith(fmt.Sprintf("r%d", j), ir.KindAdd, srcs...)
		}
		recurTail = prev
	}

	if s.chainStores > 0 {
		for j := 0; j < s.chainStores; j++ {
			v := vals.pick(home(0), next())
			if j == s.chainStores-1 && recurTail != ir.NoReg {
				v = recurTail
			}
			b.Store(fmt.Sprintf("cst%d", j),
				ir.AddrExpr{Base: "C", Offset: -ni * int64(j), Stride: ni, Size: s.es}, v)
		}
	}

	// Ambiguous chain: fixed-home loads and rotating-home stores through
	// may-aliased symbols whose lanes never overlap.
	if s.ambigLoads+s.ambigStores > 0 {
		b.Symbol("P", base+8*lane, lane*int64(max(1, s.ambigLoads)), "Q")
		b.Symbol("Q", base+1024*lane, lane*int64(max(1, s.ambigStores)))
		for j := 0; j < s.ambigLoads; j++ {
			// Loads pair up 16 bytes apart (half a block): both halves of
			// the home module's subblock get reused, halving cold misses.
			off := laneOff(j/2) + int64(j/2)*il + int64(j%2)*16
			v := b.Load(fmt.Sprintf("ald%d", j),
				ir.AddrExpr{Base: "P", Offset: off, Stride: ni, Size: s.es})
			vals.add(home(8*lane+off), v)
		}
		for j := 0; j < s.ambigStores; j++ {
			// Rotating-home stores: local only one iteration in four under
			// FREE or MDC, but always local under DDGT store replication —
			// "all replicated stores result in local store operations".
			b.Store(fmt.Sprintf("ast%d", j),
				ir.AddrExpr{Base: "Q", Offset: laneOff(j), Stride: es, Size: s.es}, vals.pick(j, next()))
		}
	}

	// Tables: stride-0 loads, homes spread round-robin.
	if s.tableLoads > 0 {
		b.Symbol("T", base+2048*lane, lane)
		for j := 0; j < s.tableLoads; j++ {
			off := int64(j)*il + int64(j/7)*64
			v := b.Load(fmt.Sprintf("tld%d", j),
				ir.AddrExpr{Base: "T", Offset: off, Stride: 0, Size: s.es})
			vals.add(home(2048*lane+off), v)
		}
	}

	// Fixed-home accesses: an unrolled walk, offsets stepping one
	// interleave unit so homes spread; stores in private lanes.
	if s.fixedLoads > 0 {
		b.Symbol("A", base+3072*lane, lane)
		for j := 0; j < s.fixedLoads; j++ {
			off := int64(j/2)*il + int64(j%2)*16
			v := b.Load(fmt.Sprintf("fld%d", j),
				ir.AddrExpr{Base: "A", Offset: off, Stride: ni, Size: s.es})
			vals.add(home(3072*lane+off), v)
		}
	}
	if s.fixedStores > 0 {
		b.Symbol("AS", base+4096*lane, lane*int64(s.fixedStores))
		for j := 0; j < s.fixedStores; j++ {
			off := laneOff(j) + int64(j)*il
			b.Store(fmt.Sprintf("fst%d", j),
				ir.AddrExpr{Base: "AS", Offset: off, Stride: ni, Size: s.es},
				vals.pick(home(4096*lane+off), next()))
		}
	}

	// Streaming accesses: stride = element size, homes rotating.
	if s.streamLoads > 0 {
		b.Symbol("B", base+6144*lane, lane*int64(s.streamLoads))
		for j := 0; j < s.streamLoads; j++ {
			v := b.Load(fmt.Sprintf("sld%d", j),
				ir.AddrExpr{Base: "B", Offset: laneOff(j), Stride: es, Size: s.es})
			vals.add(-1, v)
		}
	}
	if s.streamStores > 0 {
		b.Symbol("BS", base+8192*lane, lane*int64(s.streamStores))
		for j := 0; j < s.streamStores; j++ {
			b.Store(fmt.Sprintf("sst%d", j),
				ir.AddrExpr{Base: "BS", Offset: laneOff(j), Stride: es, Size: s.es}, vals.pick(j, next()))
		}
	}

	// Arithmetic: per-lane chains over the loaded values, as unrolled code
	// produces — lane g's ops consume and extend lane g's values.
	for j := 0; j < s.arith; j++ {
		g := j % 4
		srcs := []ir.Reg{vals.pick(g, next())}
		if next()&1 == 0 {
			srcs = append(srcs, vals.pick(g, next()))
		}
		k := ir.KindAdd
		switch {
		case s.fp && j%3 == 2:
			k = ir.KindFAdd
		case s.fp && j%3 == 1:
			k = ir.KindFMul
		case !s.fp && j%5 == 4:
			k = ir.KindMul
		case !s.fp && j%5 == 3:
			k = ir.KindShift
		}
		v := b.Arith(fmt.Sprintf("a%d", j), k, srcs...)
		vals.add(g, v)
	}

	loop := b.Loop()
	if recurTail != ir.NoReg {
		// Close the scalar recurrence: r0 consumes the tail value of the
		// previous iteration (a use before the def in program order is a
		// loop-carried register flow dependence).
		for _, o := range loop.Ops {
			if o.Name == "r0" {
				o.Srcs = append(o.Srcs, recurTail)
				break
			}
		}
	}
	return loop
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
