package mediabench

import (
	"math"
	"testing"

	"vliwcache/internal/core"
	"vliwcache/internal/ddg"
)

func TestAllGenerate(t *testing.T) {
	bs := All()
	if len(bs) != 14 {
		t.Fatalf("suite has %d benchmarks, want 14 (Table 1)", len(bs))
	}
	for _, b := range bs {
		if len(b.Loops) == 0 {
			t.Errorf("%s: no loops", b.Name)
		}
		for _, l := range b.Loops {
			if err := l.Validate(); err != nil {
				t.Errorf("%s/%s: %v", b.Name, l.Name, err)
				continue
			}
			if _, err := ddg.Build(l); err != nil {
				t.Errorf("%s/%s: DDG: %v", b.Name, l.Name, err)
			}
		}
	}
}

func TestChainSizesMatchSpecs(t *testing.T) {
	for i, d := range defs {
		b := build(d, uint64(i))
		for j, l := range b.Loops {
			spec := d.loops[j]
			g := ddg.MustBuild(l)
			st := core.AnalyzeChains(g)
			if st.Biggest != spec.chainOps() {
				t.Errorf("%s/%s: biggest chain = %d, want %d",
					b.Name, l.Name, st.Biggest, spec.chainOps())
			}
			if st.MemOps != spec.memOps() {
				t.Errorf("%s/%s: mem ops = %d, want %d", b.Name, l.Name, st.MemOps, spec.memOps())
			}
		}
	}
}

// table3 holds the paper's published CMR/CAR per benchmark.
var table3 = map[string][2]float64{
	"epicdec":   {0.64, 0.22},
	"g721dec":   {0, 0},
	"g721enc":   {0, 0},
	"gsmdec":    {0.18, 0.02},
	"gsmenc":    {0.08, 0.01},
	"jpegdec":   {0.46, 0.09},
	"jpegenc":   {0.07, 0.03},
	"mpeg2dec":  {0.13, 0.05},
	"pegwitdec": {0.27, 0.07},
	"pegwitenc": {0.35, 0.09},
	"pgpdec":    {0.73, 0.24},
	"pgpenc":    {0.63, 0.21},
	"rasta":     {0.52, 0.26},
}

// BenchmarkRatios computes a benchmark's dynamic CMR and CAR: per-loop
// chain statistics weighted by dynamic instruction counts.
func benchmarkRatios(b *Benchmark) (cmr, car float64) {
	var chainDyn, memDyn, opsDyn float64
	for _, l := range b.Loops {
		g := ddg.MustBuild(l)
		st := core.AnalyzeChains(g)
		w := float64(l.Trip * l.Entries)
		chainDyn += float64(st.Biggest) * w
		memDyn += float64(st.MemOps) * w
		opsDyn += float64(st.Ops) * w
	}
	if memDyn == 0 || opsDyn == 0 {
		return 0, 0
	}
	return chainDyn / memDyn, chainDyn / opsDyn
}

func TestTable3Shape(t *testing.T) {
	const tol = 0.10
	for _, b := range Figures() {
		want, ok := table3[b.Name]
		if !ok {
			t.Fatalf("no Table 3 target for %s", b.Name)
		}
		cmr, car := benchmarkRatios(b)
		if math.Abs(cmr-want[0]) > tol {
			t.Errorf("%s: CMR = %.3f, paper %.2f (tolerance %.2f)", b.Name, cmr, want[0], tol)
		}
		if math.Abs(car-want[1]) > tol {
			t.Errorf("%s: CAR = %.3f, paper %.2f (tolerance %.2f)", b.Name, car, want[1], tol)
		}
		t.Logf("%-10s CMR %.3f (paper %.2f)  CAR %.3f (paper %.2f)", b.Name, cmr, want[0], car, want[1])
	}
}

func TestInterleaveFactorsMatchPaper(t *testing.T) {
	four := map[string]bool{"epicdec": true, "epicenc": true, "jpegdec": true, "jpegenc": true,
		"mpeg2dec": true, "pgpdec": true, "pgpenc": true, "rasta": true}
	for _, b := range All() {
		want := 2
		if four[b.Name] {
			want = 4
		}
		if b.Interleave != want {
			t.Errorf("%s: interleave %d, want %d", b.Name, b.Interleave, want)
		}
	}
}

func TestGetAndNames(t *testing.T) {
	if _, err := Get("nosuch"); err == nil {
		t.Error("Get(nosuch) must fail")
	}
	b, err := Get("rasta")
	if err != nil || b.Name != "rasta" {
		t.Errorf("Get(rasta) = %v, %v", b, err)
	}
	if len(Names()) != 14 {
		t.Errorf("Names() = %v", Names())
	}
}
