package core

import (
	"vliwcache/internal/ddg"
)

// SpecializeMaxIters bounds the number of iterations the dynamic
// disambiguation check examines per loop.
const SpecializeMaxIters = 4096

// Specialize models code specialization (§6, [3]): two versions of the
// loop are generated, one honoring the ambiguous memory dependences
// (restrictive) and one ignoring them (aggressive), guarded by a run-time
// check of whether the ambiguous accesses actually overlap. Specialize
// evaluates that check against the loop's execution input and returns a
// copy of the DDG in which every ambiguous dependence that never
// materializes has been removed, together with the number of removed
// edges. Dependences that do occur at run time — and all unambiguous
// dependences — are kept.
func Specialize(g *ddg.Graph) (*ddg.Graph, int) {
	sg := g.Clone()
	loop := sg.Loop

	iters := loop.Trip
	if iters > SpecializeMaxIters {
		iters = SpecializeMaxIters
	}

	// Byte footprints of the ops participating in ambiguous edges.
	foot := make(map[int]map[uint64]struct{})
	footprint := func(id int) map[uint64]struct{} {
		if f, ok := foot[id]; ok {
			return f
		}
		f := make(map[uint64]struct{})
		o := loop.Ops[id]
		base := loop.Symbols[o.Addr.Base].Base
		for i := int64(0); i < iters; i++ {
			a := o.Addr.AddrAt(base, i)
			for b := 0; b < o.Addr.Size; b++ {
				f[a+uint64(b)] = struct{}{}
			}
		}
		foot[id] = f
		return f
	}

	removed := 0
	for _, e := range sg.Edges() {
		if !e.Ambiguous || !e.Kind.IsMem() {
			continue
		}
		fa, fb := footprint(e.From), footprint(e.To)
		if len(fb) < len(fa) {
			fa, fb = fb, fa
		}
		overlap := false
		for a := range fa {
			if _, ok := fb[a]; ok {
				overlap = true
				break
			}
		}
		if !overlap {
			sg.RemoveEdge(e)
			removed++
		}
	}
	return sg, removed
}
