package core

import (
	"sort"

	"vliwcache/internal/ddg"
)

// Chains computes the memory dependent chains of a DDG (§3.2): the
// connected components, over memory dependence edges (MF/MA/MO), of the
// loop's memory operations. Only components with at least two distinct ops
// are chains — an isolated memory op needs no serialization and may be
// scheduled freely. Chains are returned sorted by size (largest first),
// each chain sorted by op ID; chainOf maps every chained op ID to its chain
// index.
func Chains(g *ddg.Graph) (chains [][]int, chainOf map[int]int) {
	parent := make(map[int]int)
	var find func(x int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}

	for _, o := range g.Loop.MemOps() {
		parent[o.ID] = o.ID
	}
	for _, e := range g.Edges() {
		if e.Kind.IsMem() && e.From != e.To {
			union(e.From, e.To)
		}
	}

	groups := make(map[int][]int)
	for _, o := range g.Loop.MemOps() {
		r := find(o.ID)
		groups[r] = append(groups[r], o.ID)
	}
	chainOf = make(map[int]int)
	for _, members := range groups {
		if len(members) < 2 {
			continue
		}
		sort.Ints(members)
		chains = append(chains, members)
	}
	sort.Slice(chains, func(i, j int) bool {
		if len(chains[i]) != len(chains[j]) {
			return len(chains[i]) > len(chains[j])
		}
		return chains[i][0] < chains[j][0]
	})
	for idx, ch := range chains {
		for _, id := range ch {
			chainOf[id] = idx
		}
	}
	return chains, chainOf
}

// ChainStats are the per-loop ratios of Table 3.
type ChainStats struct {
	// Biggest is the number of memory ops in the loop's biggest chain
	// (0 when the loop has no chain).
	Biggest int
	// MemOps and Ops are the loop's static memory-op and total-op counts.
	MemOps int
	Ops    int
}

// CMR is the biggest-Chain-over-Memory-instructions Ratio.
func (s ChainStats) CMR() float64 {
	if s.MemOps == 0 {
		return 0
	}
	return float64(s.Biggest) / float64(s.MemOps)
}

// CAR is the biggest-Chain-over-All-instructions Ratio.
func (s ChainStats) CAR() float64 {
	if s.Ops == 0 {
		return 0
	}
	return float64(s.Biggest) / float64(s.Ops)
}

// AnalyzeChains computes the chain statistics of a DDG. Because every op of
// an innermost loop executes once per iteration, the static ratios equal
// the dynamic (per-iteration-weighted) ratios the paper reports for a
// single loop; benchmark-level aggregation weights loops by their dynamic
// instruction counts (see the experiments package).
func AnalyzeChains(g *ddg.Graph) ChainStats {
	chains, _ := Chains(g)
	st := ChainStats{MemOps: len(g.Loop.MemOps()), Ops: len(g.Loop.Ops)}
	if len(chains) > 0 {
		st.Biggest = len(chains[0])
	}
	return st
}
