package core

import (
	"testing"

	"vliwcache/internal/ddg"
	"vliwcache/internal/ir"
)

// TestSelfOnlyStoreNotReplicated: a store whose only memory dependence is
// with itself needs no replication (§3.3: "only stores that have a memory
// dependence with some OTHER instruction need to be replicated").
func TestSelfOnlyStoreNotReplicated(t *testing.T) {
	b := ir.NewBuilder("self")
	b.Symbol("a", 0x1000, 64)
	live := b.Reg()
	b.Store("st", ir.AddrExpr{Base: "a", Stride: 0, Size: 4}, live) // self MO d1 only
	g := ddg.MustBuild(b.Loop())
	plan, err := Transform(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.ReplicaGroups) != 0 {
		t.Errorf("self-dependent store replicated: %v", plan.ReplicaGroups)
	}
	if len(plan.Loop.Ops) != 1 {
		t.Errorf("ops = %d, want 1", len(plan.Loop.Ops))
	}
	// The self MO edge survives (it serializes the store's own instances).
	if !plan.Graph.HasEdge(0, 0, ddg.MO, 1) {
		t.Error("self MO edge lost")
	}
}

func TestTransformTwoClusters(t *testing.T) {
	b := ir.NewBuilder("two")
	b.Symbol("c", 0x1000, 1<<16)
	v := b.Load("ld", ir.AddrExpr{Base: "c", Offset: -8, Stride: 8, Size: 4})
	b.Store("st", ir.AddrExpr{Base: "c", Stride: 8, Size: 4}, v)
	g := ddg.MustBuild(b.Loop())
	plan, err := Transform(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	group := plan.ReplicaGroups[1]
	if len(group) != 2 {
		t.Fatalf("group = %v, want 2 instances", group)
	}
	for k, id := range group {
		if plan.ForceCluster[id] != k {
			t.Errorf("instance %d pinned to %d, want %d", id, plan.ForceCluster[id], k)
		}
	}
}

// TestSyncDistancePreserved: MA at distance d becomes SYNC at distance d.
func TestSyncDistancePreserved(t *testing.T) {
	b := ir.NewBuilder("dist")
	b.Symbol("c", 0x1000, 1<<16)
	// Load reads 3 elements ahead: MA load->store at distance 3.
	v := b.Load("ld", ir.AddrExpr{Base: "c", Offset: 24, Stride: 8, Size: 4})
	w := b.Arith("use", ir.KindAdd, v)
	b.Store("st", ir.AddrExpr{Base: "c", Stride: 8, Size: 4}, w)
	g := ddg.MustBuild(b.Loop())
	maDist := -1
	for _, e := range g.MemEdges() {
		if e.Kind == ddg.MA {
			maDist = e.Dist
		}
	}
	if maDist != 3 {
		t.Fatalf("fixture MA distance = %d, want 3", maDist)
	}
	plan, err := Transform(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	for _, e := range plan.Graph.Edges() {
		if e.Kind == ddg.SYNC {
			if e.Dist != 3 {
				t.Errorf("SYNC distance = %d, want 3", e.Dist)
			}
			if e.From != 1 { // the consumer "use"
				t.Errorf("SYNC anchored at op %d, want the consumer", e.From)
			}
			found++
		}
	}
	if found == 0 {
		t.Error("no SYNC edges created")
	}
}
