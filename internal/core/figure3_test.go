package core

import (
	"testing"

	"vliwcache/internal/ddg"
	"vliwcache/internal/ir"
)

// figure3 hand-builds the worked example of the paper: the DDG of Figure 3
// with ops n1 (load), n2 (load), n3 (store), n4 (store), n5 (add) and the
// dependences described in §3. The loop body is constructed so that the
// register flow edges (n1→n4, n2→n5) arise naturally; memory dependences
// are added by hand to match the figure exactly.
func figure3(t *testing.T) *ddg.Graph {
	t.Helper()
	b := ir.NewBuilder("figure3")
	// Four distinct symbols: the affine tester proves them independent, so
	// the memory dependences of the figure are added by hand below, as the
	// unresolved dependences the paper's compiler could not discharge.
	b.Symbol("A1", 0x1000, 4096)
	b.Symbol("A2", 0x3000, 4096)
	b.Symbol("A3", 0x5000, 4096)
	b.Symbol("A4", 0x7000, 4096)
	liveIn := b.Reg() // n3 stores a loop-invariant value (live-in register)
	r1 := b.Load("n1", ir.AddrExpr{Base: "A1", Stride: 4, Size: 4})
	r2 := b.Load("n2", ir.AddrExpr{Base: "A2", Stride: 4, Size: 4})
	b.Store("n3", ir.AddrExpr{Base: "A3", Stride: 4, Size: 4}, liveIn)
	b.Store("n4", ir.AddrExpr{Base: "A4", Stride: 4, Size: 4}, r1)
	b.Arith("n5", ir.KindAdd, r2)
	loop := b.Loop()

	g := ddg.New(loop)
	// Register flow, as in the figure: n4 is n1's only consumer, n5 is
	// n2's only consumer.
	g.MustAddEdge(0, 3, ddg.RF, 0, false) // n1 -> n4 (stored value)
	g.MustAddEdge(1, 4, ddg.RF, 0, false) // n2 -> n5
	// Memory flow (loop-carried: the stores feed next iteration's loads).
	g.MustAddEdge(2, 0, ddg.MF, 1, true) // n3 -> n1
	g.MustAddEdge(2, 1, ddg.MF, 1, true) // n3 -> n2
	g.MustAddEdge(3, 1, ddg.MF, 1, true) // n4 -> n2
	// Memory anti (the loads must read before the stores overwrite).
	g.MustAddEdge(0, 2, ddg.MA, 0, true) // n1 -> n3: needs a fake consumer
	g.MustAddEdge(0, 3, ddg.MA, 0, true) // n1 -> n4: redundant with RF n1->n4
	g.MustAddEdge(1, 2, ddg.MA, 0, true) // n2 -> n3: SYNC n5 -> n3
	g.MustAddEdge(1, 3, ddg.MA, 0, true) // n2 -> n4: SYNC n5 -> n4
	// Memory output.
	g.MustAddEdge(2, 3, ddg.MO, 0, true) // n3 -> n4
	g.MustAddEdge(3, 2, ddg.MO, 1, true) // n4 -> n3 (loop-carried)
	return g
}

func TestFigure3Chain(t *testing.T) {
	g := figure3(t)
	chains, chainOf := Chains(g)
	if len(chains) != 1 {
		t.Fatalf("got %d chains, want 1: %v", len(chains), chains)
	}
	want := []int{0, 1, 2, 3} // {n1, n2, n3, n4}
	if len(chains[0]) != len(want) {
		t.Fatalf("chain = %v, want %v", chains[0], want)
	}
	for i, id := range want {
		if chains[0][i] != id {
			t.Fatalf("chain = %v, want %v", chains[0], want)
		}
	}
	if _, ok := chainOf[4]; ok {
		t.Errorf("n5 (non-memory) must not be in a chain")
	}
	st := AnalyzeChains(g)
	if st.Biggest != 4 || st.MemOps != 4 || st.Ops != 5 {
		t.Errorf("chain stats = %+v, want Biggest=4 MemOps=4 Ops=5", st)
	}
	if st.CMR() != 1.0 {
		t.Errorf("CMR = %v, want 1.0", st.CMR())
	}
	if got, want := st.CAR(), 4.0/5.0; got != want {
		t.Errorf("CAR = %v, want %v", got, want)
	}
}

func TestFigure3Transform(t *testing.T) {
	const n = 4 // clusters
	g := figure3(t)
	plan, err := Transform(g, n)
	if err != nil {
		t.Fatal(err)
	}
	loop, tg := plan.Loop, plan.Graph

	// The original loop and graph must be untouched.
	if len(g.Loop.Ops) != 5 {
		t.Fatalf("original loop mutated: %d ops", len(g.Loop.Ops))
	}
	for _, e := range g.Edges() {
		if e.Kind == ddg.SYNC {
			t.Fatalf("original graph mutated: %v", e)
		}
	}

	// 5 original ops + 3 replicas of each store + 1 fake consumer of n1.
	if got, want := len(loop.Ops), 5+2*(n-1)+1; got != want {
		t.Fatalf("transformed loop has %d ops, want %d:\n%s", got, want, loop)
	}
	if len(plan.FakeConsumers) != 1 {
		t.Fatalf("fake consumers = %v, want exactly 1", plan.FakeConsumers)
	}
	fc := loop.Ops[plan.FakeConsumers[0]]
	if fc.Kind != ir.KindFakeUse || len(fc.Srcs) != 1 || fc.Srcs[0] != loop.Ops[0].Dst {
		t.Errorf("fake consumer %v must read n1's destination", fc)
	}

	// Both stores replicated, instance k pinned to cluster k.
	for _, orig := range []int{2, 3} {
		group := plan.ReplicaGroups[orig]
		if len(group) != n {
			t.Fatalf("store %s has %d instances, want %d", loop.Ops[orig].Label(), len(group), n)
		}
		for k, id := range group {
			if plan.ForceCluster[id] != k {
				t.Errorf("instance %d of %s pinned to cluster %d, want %d",
					id, loop.Ops[orig].Label(), plan.ForceCluster[id], k)
			}
		}
	}

	// No MA dependences survive.
	for _, e := range tg.Edges() {
		if e.Kind == ddg.MA {
			t.Errorf("MA edge survived the transformation: %v", e)
		}
	}
	if plan.RemovedMA == 0 {
		t.Error("RemovedMA = 0, want > 0")
	}

	// n5 synchronizes every instance of n3 and of n4 (MA n2→n3, n2→n4).
	for _, orig := range []int{2, 3} {
		for _, inst := range plan.ReplicaGroups[orig] {
			if !tg.HasEdge(4, inst, ddg.SYNC, 0) {
				t.Errorf("missing SYNC n5 -> instance %d of %s", inst, loop.Ops[orig].Label())
			}
		}
	}
	// The fake consumer synchronizes every instance of n3 (MA n1→n3); the
	// MA n1→n4 edges were redundant with RF n1→n4 so n4 instances must NOT
	// be synchronized with the fake consumer.
	for _, inst := range plan.ReplicaGroups[2] {
		if !tg.HasEdge(fc.ID, inst, ddg.SYNC, 0) {
			t.Errorf("missing SYNC NEW_CONS -> instance %d of n3", inst)
		}
	}
	for _, inst := range plan.ReplicaGroups[3] {
		if tg.HasEdge(fc.ID, inst, ddg.SYNC, 0) {
			t.Errorf("unexpected SYNC NEW_CONS -> instance %d of n4 (MA was redundant)", inst)
		}
	}

	// MO dependences are replicated between same-cluster instances only.
	g3, g4 := plan.ReplicaGroups[2], plan.ReplicaGroups[3]
	for k := 0; k < n; k++ {
		if !tg.HasEdge(g3[k], g4[k], ddg.MO, 0) {
			t.Errorf("missing MO n3[%d] -> n4[%d]", k, k)
		}
		if !tg.HasEdge(g4[k], g3[k], ddg.MO, 1) {
			t.Errorf("missing loop-carried MO n4[%d] -> n3[%d]", k, k)
		}
		for j := 0; j < n; j++ {
			if j != k && tg.HasEdge(g3[k], g4[j], ddg.MO, 0) {
				t.Errorf("cross-cluster MO n3[%d] -> n4[%d] must not exist", k, j)
			}
		}
	}

	// Every instance of n4 receives the stored value (RF n1 -> instances);
	// n3 stores a live-in so its instances have no RF inputs.
	for _, inst := range plan.ReplicaGroups[3] {
		if !tg.HasEdge(0, inst, ddg.RF, 0) {
			t.Errorf("missing RF n1 -> instance %d of n4", inst)
		}
	}

	// The transformed graph must admit a modulo schedule (no zero-distance
	// cycles): RecMII must be finite and small.
	lat := ddg.DefaultLatency(1)
	if !tg.FeasibleII(16, lat) {
		t.Fatal("transformed graph infeasible at II=16: unsatisfiable cycle created")
	}
}

func TestFigure3TransformIdempotentClone(t *testing.T) {
	g := figure3(t)
	p1, err := Transform(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Transform(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(p1.Loop.Ops) != len(p2.Loop.Ops) || p1.Graph.NumEdges() != p2.Graph.NumEdges() {
		t.Error("Transform is not deterministic across invocations on the same input")
	}
}

func TestPrepareFree(t *testing.T) {
	g := figure3(t)
	plan, err := PrepareGraph(g, PolicyFree, 4)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Graph != g || plan.Loop != g.Loop {
		t.Error("PolicyFree must not copy or transform the graph")
	}
	if len(plan.Chains) != 0 || len(plan.ForceCluster) != 0 {
		t.Error("PolicyFree must carry no constraints")
	}
}

func TestPrepareMDC(t *testing.T) {
	g := figure3(t)
	plan, err := PrepareGraph(g, PolicyMDC, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Chains) != 1 || len(plan.Chains[0]) != 4 {
		t.Fatalf("MDC chains = %v", plan.Chains)
	}
}
