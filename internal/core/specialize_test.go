package core

import (
	"testing"

	"vliwcache/internal/ddg"
	"vliwcache/internal/ir"
)

// ambigNeverLoop: a load and store through may-aliased symbols whose lanes
// never overlap — code specialization must remove the dependences.
func ambigNeverLoop() *ir.Loop {
	b := ir.NewBuilder("never")
	b.Symbol("p", 0x10000, 1<<16, "q")
	b.Symbol("q", 0x90000, 1<<16)
	b.Trip(500, 1)
	v := b.Load("ld", ir.AddrExpr{Base: "p", Stride: 4, Size: 4})
	b.Store("st", ir.AddrExpr{Base: "q", Stride: 4, Size: 4}, v)
	return b.Loop()
}

// ambigActualLoop: may-aliased symbols whose walks DO collide (the symbols
// overlap in memory), so specialization must keep the dependences.
func ambigActualLoop() *ir.Loop {
	b := ir.NewBuilder("actual")
	b.Symbol("p", 0x10000, 1<<16, "q")
	b.Symbol("q", 0x10000, 1<<16) // same base: every access truly collides
	b.Trip(500, 1)
	v := b.Load("ld", ir.AddrExpr{Base: "p", Stride: 4, Size: 4})
	b.Store("st", ir.AddrExpr{Base: "q", Stride: 4, Size: 4}, v)
	return b.Loop()
}

func TestSpecializeRemovesFalseDeps(t *testing.T) {
	g := ddg.MustBuild(ambigNeverLoop())
	before := len(g.MemEdges())
	if before == 0 {
		t.Fatal("fixture must have ambiguous dependences")
	}
	sg, removed := Specialize(g)
	if removed != before {
		t.Errorf("removed %d of %d ambiguous edges", removed, before)
	}
	if len(sg.MemEdges()) != 0 {
		t.Errorf("edges survived: %v", sg.MemEdges())
	}
	// The original graph must be untouched.
	if len(g.MemEdges()) != before {
		t.Error("Specialize mutated its input")
	}
	// Chains disappear: CMR drops to zero (Table 5 mechanism).
	if st := AnalyzeChains(sg); st.Biggest != 0 {
		t.Errorf("chain survived specialization: %+v", st)
	}
}

func TestSpecializeKeepsActualDeps(t *testing.T) {
	g := ddg.MustBuild(ambigActualLoop())
	before := len(g.MemEdges())
	sg, removed := Specialize(g)
	if removed != 0 {
		t.Errorf("removed %d edges that actually materialize", removed)
	}
	if len(sg.MemEdges()) != before {
		t.Error("real dependences lost")
	}
}

func TestSpecializeKeepsExactDeps(t *testing.T) {
	// Exact (non-ambiguous) dependences are never candidates.
	b := ir.NewBuilder("exact")
	b.Symbol("a", 0x1000, 1<<16)
	b.Trip(100, 1)
	v := b.Load("ld", ir.AddrExpr{Base: "a", Offset: -4, Stride: 4, Size: 4})
	b.Store("st", ir.AddrExpr{Base: "a", Stride: 4, Size: 4}, v)
	g := ddg.MustBuild(b.Loop())
	if len(g.MemEdges()) == 0 {
		t.Fatal("fixture must have an exact dependence")
	}
	_, removed := Specialize(g)
	if removed != 0 {
		t.Error("exact dependences must never be removed")
	}
}

func TestChainsPartitionProperty(t *testing.T) {
	// Chains form a partition of a subset of memory ops: disjoint, each op
	// in at most one chain, chainOf consistent, and any two ops connected
	// by a memory edge share a chain.
	for _, mk := range []func() *ir.Loop{ambigNeverLoop, ambigActualLoop} {
		g := ddg.MustBuild(mk())
		chains, chainOf := Chains(g)
		seen := make(map[int]int)
		for ci, ch := range chains {
			if len(ch) < 2 {
				t.Errorf("chain %d has %d members; singletons are not chains", ci, len(ch))
			}
			for _, id := range ch {
				if prev, dup := seen[id]; dup {
					t.Errorf("op %d in chains %d and %d", id, prev, ci)
				}
				seen[id] = ci
				if chainOf[id] != ci {
					t.Errorf("chainOf[%d] = %d, want %d", id, chainOf[id], ci)
				}
				if !g.Loop.Ops[id].Kind.IsMem() {
					t.Errorf("non-memory op %d in a chain", id)
				}
			}
		}
		for _, e := range g.MemEdges() {
			if e.From == e.To {
				continue
			}
			if chainOf[e.From] != chainOf[e.To] {
				t.Errorf("edge %v spans chains", e)
			}
		}
	}
}

func TestPrepareUnknownPolicy(t *testing.T) {
	g := ddg.MustBuild(ambigNeverLoop())
	if _, err := PrepareGraph(g, Policy(99), 4); err == nil {
		t.Error("unknown policy must fail")
	}
	if _, err := PrepareGraph(g, PolicyDDGT, 0); err == nil {
		t.Error("DDGT with zero clusters must fail")
	}
}

func TestTransformSingleCluster(t *testing.T) {
	// numClusters == 1: no replicas needed, but MA elimination still runs.
	g := ddg.MustBuild(ambigActualLoop())
	plan, err := Transform(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Loop.Ops) < len(g.Loop.Ops) {
		t.Error("ops lost")
	}
	for _, e := range plan.Graph.Edges() {
		if e.Kind == ddg.MA {
			t.Errorf("MA edge survived: %v", e)
		}
	}
}

func TestPolicyStrings(t *testing.T) {
	if PolicyFree.String() != "FREE" || PolicyMDC.String() != "MDC" || PolicyDDGT.String() != "DDGT" {
		t.Error("policy names changed")
	}
}
