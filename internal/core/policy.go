// Package core implements the paper's contribution: the two local
// scheduling techniques that guarantee serialization of aliased memory
// instructions in a clustered VLIW processor with a distributed data cache.
//
//   - MDC (§3.2): memory dependent chains. Connected components of the
//     memory-dependence subgraph are computed and every op of a component
//     is constrained to the same cluster, where issue order serializes the
//     accesses.
//
//   - DDGT (§3.3): data dependence graph transformations. Stores with
//     memory dependences are replicated once per cluster (only the dynamic
//     home instance executes); memory anti dependences are converted to
//     SYNC dependences from a consumer of the load to the store,
//     fabricating a fake consumer when needed.
//
// Both techniques are packaged as a Plan consumed by the modulo scheduler.
// Code specialization (§6, Table 5) is also provided: it removes ambiguous
// dependences that never materialize at run time, shrinking chains.
package core

import (
	"fmt"

	"vliwcache/internal/ddg"
	"vliwcache/internal/ir"
)

// Policy selects how memory coherence is guaranteed (or not) when
// assigning instructions to clusters.
type Policy int

const (
	// PolicyFree schedules memory instructions in any cluster with no
	// coherence guarantee. This is the paper's optimistic baseline: aliased
	// accesses from different clusters can reach the banks out of program
	// order and corrupt memory (the simulator's coherence checker counts
	// such violations).
	PolicyFree Policy = iota
	// PolicyMDC builds memory dependent chains and pins each chain to one
	// cluster.
	PolicyMDC
	// PolicyDDGT applies store replication and load–store synchronization,
	// freeing loads to be scheduled anywhere.
	PolicyDDGT
)

func (p Policy) String() string {
	switch p {
	case PolicyFree:
		return "FREE"
	case PolicyMDC:
		return "MDC"
	case PolicyDDGT:
		return "DDGT"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// Plan is a loop prepared for scheduling under a coherence policy. For
// PolicyDDGT the Loop and Graph are transformed deep copies of the input;
// for the other policies they are the originals.
type Plan struct {
	Policy Policy
	Loop   *ir.Loop
	Graph  *ddg.Graph

	// Chains (PolicyMDC) are the memory dependent chains: sets of op IDs
	// that must be assigned to the same cluster. ChainOf maps an op ID to
	// its index in Chains, or is absent for unchained ops.
	Chains  [][]int
	ChainOf map[int]int

	// ForceCluster (PolicyDDGT) pins store instances to clusters: instance
	// k of a replicated store must execute in cluster k.
	ForceCluster map[int]int

	// ReplicaGroups maps each replicated original store's ID to all of its
	// instance IDs (the original first).
	ReplicaGroups map[int][]int

	// FakeConsumers lists the IDs of fake consumer ops fabricated by
	// load–store synchronization.
	FakeConsumers []int

	// RemovedMA counts MA dependences eliminated (redundant with an RF
	// dependence) or converted to SYNC dependences by DDGT.
	RemovedMA int
}

// Prepare analyzes the loop, builds its DDG and applies the given policy.
// numClusters is required by PolicyDDGT (store replication degree).
func Prepare(loop *ir.Loop, pol Policy, numClusters int) (*Plan, error) {
	g, err := ddg.Build(loop)
	if err != nil {
		return nil, err
	}
	return PrepareGraph(g, pol, numClusters)
}

// PrepareGraph is Prepare for a pre-built (possibly hand-constructed or
// specialized) DDG.
func PrepareGraph(g *ddg.Graph, pol Policy, numClusters int) (*Plan, error) {
	switch pol {
	case PolicyFree:
		return &Plan{Policy: pol, Loop: g.Loop, Graph: g}, nil
	case PolicyMDC:
		chains, chainOf := Chains(g)
		return &Plan{Policy: pol, Loop: g.Loop, Graph: g, Chains: chains, ChainOf: chainOf}, nil
	case PolicyDDGT:
		if numClusters < 1 {
			return nil, fmt.Errorf("core: PolicyDDGT requires numClusters >= 1, got %d", numClusters)
		}
		return Transform(g, numClusters)
	default:
		return nil, fmt.Errorf("core: unknown policy %v", pol)
	}
}
