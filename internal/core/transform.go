package core

import (
	"fmt"
	"sort"

	"vliwcache/internal/ddg"
	"vliwcache/internal/ir"
)

// Transform applies the DDGT solution (§3.3) to a copy of the loop and its
// DDG and returns the resulting plan:
//
//  1. Store replication: every store with a memory dependence on another
//     instruction is replicated numClusters-1 times. Instance k of every
//     such store is pinned to cluster k; at run time only the instance
//     whose cluster is the access's home cluster performs the store. All
//     input and output dependences of the store are replicated; dependences
//     between two replicated stores are replicated between same-cluster
//     instances (which is where serialization happens), and self
//     dependences stay per-instance.
//
//  2. Load–store synchronization: every MA dependence L→S is removed. If an
//     RF dependence L→S with the same distance exists it was redundant;
//     otherwise a SYNC dependence is added from a same-iteration consumer
//     of L to S. If every candidate consumer would close an unsatisfiable
//     same-iteration cycle (the consumer is itself dependent on S at
//     distance 0), a fake consumer of the load is fabricated and used.
//
// The input graph is not modified.
func Transform(g *ddg.Graph, numClusters int) (*Plan, error) {
	loop := g.Loop.Clone()
	tg := g.CloneWithLoop(loop)
	plan := &Plan{
		Policy:        PolicyDDGT,
		Loop:          loop,
		Graph:         tg,
		ForceCluster:  make(map[int]int),
		ReplicaGroups: make(map[int][]int),
	}
	replicateStores(plan, numClusters)
	if err := synchronizeLoadsStores(plan); err != nil {
		return nil, err
	}
	loop.Renumber() // IDs are already dense; this re-checks replica refs
	if err := loop.Validate(); err != nil {
		return nil, fmt.Errorf("core: DDGT produced an invalid loop: %w", err)
	}
	return plan, nil
}

// hasMemDepOther reports whether op id has a memory dependence (MF/MA/MO)
// with a different instruction.
func hasMemDepOther(g *ddg.Graph, id int) bool {
	for _, e := range g.Out(id) {
		if e.Kind.IsMem() && e.To != id {
			return true
		}
	}
	for _, e := range g.In(id) {
		if e.Kind.IsMem() && e.From != id {
			return true
		}
	}
	return false
}

// replicateStores performs phase 1 of the transformation on plan.Loop /
// plan.Graph in place.
func replicateStores(plan *Plan, numClusters int) {
	loop, tg := plan.Loop, plan.Graph

	var originals []int
	for _, o := range loop.Ops {
		if o.Kind == ir.KindStore && hasMemDepOther(tg, o.ID) {
			originals = append(originals, o.ID)
		}
	}

	// instances[origID][k] is the op executing in cluster k; index 0 is the
	// original.
	instances := make(map[int][]int, len(originals))
	for _, sid := range originals {
		ids := []int{sid}
		for k := 1; k < numClusters; k++ {
			r := loop.Ops[sid].Clone()
			r.Name = fmt.Sprintf("%s.c%d", loop.Ops[sid].Label(), k)
			r.ReplicaOf = sid + 1
			loop.Append(r)
			ids = append(ids, r.ID)
		}
		instances[sid] = ids
		plan.ReplicaGroups[sid] = ids
		for k, id := range ids {
			plan.ForceCluster[id] = k
		}
	}
	tg.Grow()

	// Replicate the dependences. Snapshot first: we add edges while
	// iterating.
	for _, e := range tg.Edges() {
		fromIDs, fromRep := instances[e.From]
		toIDs, toRep := instances[e.To]
		switch {
		case fromRep && toRep:
			// Includes self dependences (fromIDs == toIDs): instance k
			// pairs with instance k — serialization between two stores (or
			// a store and itself) happens inside each cluster.
			for k := 1; k < numClusters; k++ {
				tg.MustAddEdge(fromIDs[k], toIDs[k], e.Kind, e.Dist, e.Ambiguous)
			}
		case fromRep:
			for k := 1; k < numClusters; k++ {
				tg.MustAddEdge(fromIDs[k], e.To, e.Kind, e.Dist, e.Ambiguous)
			}
		case toRep:
			for k := 1; k < numClusters; k++ {
				tg.MustAddEdge(e.From, toIDs[k], e.Kind, e.Dist, e.Ambiguous)
			}
		}
	}
}

// synchronizeLoadsStores performs phase 2: MA elimination.
func synchronizeLoadsStores(plan *Plan) error {
	tg, loop := plan.Graph, plan.Loop

	// fakeFor reuses one fake consumer per load.
	fakeFor := make(map[int]int)

	var maEdges []*ddg.Edge
	for _, e := range tg.Edges() {
		if e.Kind == ddg.MA {
			maEdges = append(maEdges, e)
		}
	}
	for _, d := range maEdges {
		l, s := d.From, d.To
		if loop.Ops[l].Kind != ir.KindLoad || loop.Ops[s].Kind != ir.KindStore {
			return fmt.Errorf("core: MA edge %v does not run load->store", d)
		}
		// Redundant MA: an RF dependence with the same distance already
		// orders the pair (the store cannot execute before it receives the
		// value the load produced).
		if tg.HasEdge(l, s, ddg.RF, d.Dist) {
			tg.RemoveEdge(d)
			plan.RemovedMA++
			continue
		}
		cons, ok := chooseConsumer(plan, l, s, d.Dist)
		if !ok {
			cons = fakeConsumer(plan, l, fakeFor)
		}
		tg.MustAddEdge(cons, s, ddg.SYNC, d.Dist, false)
		tg.RemoveEdge(d)
		plan.RemovedMA++
	}
	return nil
}

// chooseConsumer picks a same-iteration consumer of load l that can be
// synchronized with store s at the given dependence distance. Non-memory
// consumers are preferred ("if possible, not a store"); a candidate is
// rejected when the SYNC edge would close a zero-distance cycle — i.e. the
// consumer is reachable from s over a distance-0 dependence path while the
// MA distance is 0 (the paper's "sequentially posterior to S and dependent
// on S" case).
func chooseConsumer(plan *Plan, l, s, dist int) (int, bool) {
	tg, loop := plan.Graph, plan.Loop
	group := plan.ReplicaGroups[replicaOrigin(loop, s)]

	var cands []int
	for _, e := range tg.Consumers(l) {
		if e.Dist != 0 {
			continue // consumer of a previous iteration's value
		}
		if e.To == s || inGroup(group, e.To) {
			continue // the store itself (or a sibling instance)
		}
		cands = append(cands, e.To)
	}
	// Prefer non-memory consumers, then lower IDs for determinism.
	sort.Slice(cands, func(i, j int) bool {
		mi, mj := loop.Ops[cands[i]].Kind.IsMem(), loop.Ops[cands[j]].Kind.IsMem()
		if mi != mj {
			return !mi
		}
		return cands[i] < cands[j]
	})
	for _, c := range cands {
		// A consumer dependent on the store at distance 0 would close an
		// unsatisfiable same-iteration cycle. The test runs at the level of
		// replica origins: instance k of a store inherits the dependence
		// structure of its original, so a sibling instance of a dependent
		// store is just as unusable as the dependent store itself.
		if dist == 0 && (tg.ReachableZeroDist(s, c) ||
			tg.ReachableZeroDist(replicaOrigin(loop, s), replicaOrigin(loop, c))) {
			continue
		}
		return c, true
	}
	return 0, false
}

// replicaOrigin returns the original op ID for a replica, or the op's own
// ID otherwise.
func replicaOrigin(loop *ir.Loop, id int) int {
	if o := loop.Ops[id]; o.IsReplica() {
		return o.Origin()
	}
	return id
}

func inGroup(group []int, id int) bool {
	for _, g := range group {
		if g == id {
			return true
		}
	}
	return false
}

// fakeConsumer returns (creating on first use) the fake consumer of load l:
// an op that only reads the value the load produced ("add r0 = r0 + r27"),
// giving load–store synchronization a safe anchor.
func fakeConsumer(plan *Plan, l int, fakeFor map[int]int) int {
	if id, ok := fakeFor[l]; ok {
		return id
	}
	loop, tg := plan.Loop, plan.Graph
	load := loop.Ops[l]
	fc := &ir.Op{
		Name: load.Label() + ".cons",
		Kind: ir.KindFakeUse,
		Dst:  ir.NoReg,
		Srcs: []ir.Reg{load.Dst},
	}
	loop.Append(fc)
	tg.Grow()
	tg.MustAddEdge(l, fc.ID, ddg.RF, 0, false)
	fakeFor[l] = fc.ID
	plan.FakeConsumers = append(plan.FakeConsumers, fc.ID)
	return fc.ID
}
