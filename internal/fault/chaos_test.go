package fault_test

import (
	"context"
	"errors"
	"testing"

	"vliwcache/internal/arch"
	"vliwcache/internal/core"
	"vliwcache/internal/fault"
	"vliwcache/internal/loopgen"
	"vliwcache/internal/profiler"
	"vliwcache/internal/sched"
	"vliwcache/internal/sim"
)

// buildSchedule compiles one random loop under the given policy. Schedules
// are expensive relative to short simulations, so the chaos tests build
// each once and reuse it across many fault seeds.
func buildSchedule(t *testing.T, loopSeed int64, pol core.Policy, cfg arch.Config) *sched.Schedule {
	t.Helper()
	loop := loopgen.Random(loopSeed, loopgen.DefaultParams())
	plan, err := core.Prepare(loop, pol, cfg.NumClusters)
	if err != nil {
		t.Fatalf("loop seed %d %v: %v", loopSeed, pol, err)
	}
	h := sched.PrefClus
	if loopSeed%2 == 0 {
		h = sched.MinComs
	}
	sc, err := sched.Run(plan, sched.Options{Arch: cfg, Heuristic: h, Profile: profiler.Run(loop, cfg)})
	if err != nil {
		t.Fatalf("loop seed %d %v: %v", loopSeed, pol, err)
	}
	return sc
}

// TestChaosCoherenceProperty is the paper's guarantee under adversarial
// timing: across >=1000 seeded fault-injection runs, MDC and DDGT
// schedules never produce a single memory ordering violation — injected
// bus queueing, memory latency variance, hit/miss flips, and Attraction
// Buffer flushes included.
func TestChaosCoherenceProperty(t *testing.T) {
	cfg := arch.Default().WithAttractionBuffers(16)
	const loops = 8
	const seedsPerSchedule = 64 // 8 loops x 2 policies x 64 seeds = 1024 runs
	runs, faults := 0, int64(0)
	for ls := int64(0); ls < loops; ls++ {
		for _, pol := range []core.Policy{core.PolicyMDC, core.PolicyDDGT} {
			sc := buildSchedule(t, ls, pol, cfg)
			for fs := int64(0); fs < seedsPerSchedule; fs++ {
				st, err := sim.Run(sc, sim.Options{
					CheckCoherence: true,
					MaxIterations:  48,
					NewFaults:      fault.Seeded(fs, fault.DefaultConfig()),
				})
				if err != nil {
					t.Fatalf("loop %d %v fault seed %d: %v", ls, pol, fs, err)
				}
				if st.Violations != 0 {
					t.Errorf("loop %d %v fault seed %d: %d ordering violations under injection",
						ls, pol, fs, st.Violations)
				}
				runs++
				faults += st.InjectedFaults
			}
		}
	}
	if runs < 1000 {
		t.Fatalf("only %d chaos runs, want >= 1000", runs)
	}
	if faults == 0 {
		t.Fatalf("injector never fired across %d runs; the chaos suite is dead", runs)
	}
	t.Logf("%d runs, %d injected faults, 0 violations", runs, faults)
}

// TestChaosOracleLiveness proves the coherence checker still has teeth
// under the same harness: the unprotected FREE baseline must trip it on at
// least one seeded run. Without this, a silently broken checker would make
// the zero-violation property above vacuous.
func TestChaosOracleLiveness(t *testing.T) {
	cfg := arch.Default()
	for ls := int64(0); ls < 24; ls++ {
		sc := buildSchedule(t, ls, core.PolicyFree, cfg)
		for fs := int64(0); fs < 16; fs++ {
			st, err := sim.Run(sc, sim.Options{
				CheckCoherence: true,
				MaxIterations:  48,
				NewFaults:      fault.Seeded(fs, fault.DefaultConfig()),
			})
			if err != nil {
				t.Fatalf("loop %d fault seed %d: %v", ls, fs, err)
			}
			if st.Violations > 0 {
				t.Logf("FREE baseline: loop seed %d, fault seed %d -> %d violations", ls, fs, st.Violations)
				return
			}
		}
	}
	t.Fatal("FREE baseline never tripped the coherence checker under injection; oracle may be dead")
}

// TestInjectorDeterminism: identical seeds reproduce the identical fault
// sequence byte for byte, and identical statistics.
func TestInjectorDeterminism(t *testing.T) {
	sc := buildSchedule(t, 3, core.PolicyMDC, arch.Default().WithAttractionBuffers(16))
	run := func(seed int64) (*sim.Stats, string) {
		var inj *fault.Injector
		st, err := sim.Run(sc, sim.Options{
			CheckCoherence: true,
			MaxIterations:  64,
			NewFaults: func(*sched.Schedule) sim.FaultInjector {
				inj = fault.New(seed, fault.DefaultConfig())
				return inj
			},
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		return st, inj.Log()
	}

	stA, logA := run(42)
	stB, logB := run(42)
	if logA == "" {
		t.Fatal("seed 42 injected no faults; determinism test is vacuous")
	}
	if logA != logB {
		t.Errorf("same seed, different fault logs:\n--- A ---\n%s--- B ---\n%s", logA, logB)
	}
	if *stA != *stB {
		t.Errorf("same seed, different stats:\nA: %v\nB: %v", stA, stB)
	}
	_, logC := run(43)
	if logC == logA {
		t.Error("different seeds produced identical fault logs")
	}
}

// TestChaosCancellation: a canceled context aborts a chaos run with the
// context's error instead of completing it.
func TestChaosCancellation(t *testing.T) {
	sc := buildSchedule(t, 1, core.PolicyMDC, arch.Default())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := sim.RunContext(ctx, sc, sim.Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext with canceled context: got %v, want context.Canceled", err)
	}
}
