package fault

import (
	"fmt"
	"sort"
	"strings"

	"vliwcache/internal/ddg"
	"vliwcache/internal/sched"
)

// Mutator corrupts a valid schedule in one targeted way. Apply returns the
// mutant and a description, or ok=false when the schedule has no structure
// the mutator can corrupt (e.g. no replica groups to break). Every mutator
// constructs a mutant that is invalid by construction, so an Apply that
// returns ok=true and a mutant sched.Validate accepts is a genuine hole in
// the validator.
type Mutator struct {
	Class string
	Apply func(sc *sched.Schedule) (mutant *sched.Schedule, desc string, ok bool)
}

// Mutators returns the schedule mutation suite, one mutator per corruption
// class of the validator's invariants.
func Mutators() []Mutator {
	return []Mutator{
		{Class: "cycle-swap", Apply: mutateSwapCycles},
		{Class: "chain-split", Apply: mutateSplitChain},
		{Class: "drop-copy", Apply: mutateDropCopy},
		{Class: "break-replica", Apply: mutateBreakReplica},
		{Class: "shrink-ii", Apply: mutateShrinkII},
	}
}

// cloneSchedule deep-copies the mutable schedule arrays; the Plan and
// Config are shared (mutators never touch them).
func cloneSchedule(sc *sched.Schedule) *sched.Schedule {
	d := *sc
	d.Cycle = append([]int(nil), sc.Cycle...)
	d.Cluster = append([]int(nil), sc.Cluster...)
	d.Lat = append([]int(nil), sc.Lat...)
	d.Copies = append([]sched.Copy(nil), sc.Copies...)
	return &d
}

// mutateSwapCycles swaps the issue cycles across a zero-distance dependence
// edge, putting the consumer before its producer. Any edge with distinct
// endpoint cycles works: after the swap the consumer issues at the
// producer's old (earlier) cycle, which no non-negative edge latency can
// satisfy.
func mutateSwapCycles(sc *sched.Schedule) (*sched.Schedule, string, bool) {
	for _, e := range sc.Plan.Graph.Edges() {
		if e.Dist != 0 || sc.Cycle[e.From] == sc.Cycle[e.To] {
			continue
		}
		d := cloneSchedule(sc)
		d.Cycle[e.From], d.Cycle[e.To] = d.Cycle[e.To], d.Cycle[e.From]
		return d, fmt.Sprintf("swapped cycles across %v edge %d->%d", e.Kind, e.From, e.To), true
	}
	return nil, "", false
}

// mutateSplitChain moves one member of a memory dependent chain to another
// cluster, breaking the MDC single-cluster invariant.
func mutateSplitChain(sc *sched.Schedule) (*sched.Schedule, string, bool) {
	if sc.Arch.NumClusters < 2 {
		return nil, "", false
	}
	for ci, chain := range sc.Plan.Chains {
		if len(chain) < 2 {
			continue
		}
		d := cloneSchedule(sc)
		id := chain[1]
		d.Cluster[id] = (d.Cluster[id] + 1) % sc.Arch.NumClusters
		return d, fmt.Sprintf("moved op %d of chain %d off-cluster", id, ci), true
	}
	return nil, "", false
}

// mutateDropCopy removes the inter-cluster transfer a cross-cluster
// register flow edge depends on.
func mutateDropCopy(sc *sched.Schedule) (*sched.Schedule, string, bool) {
	for _, e := range sc.Plan.Graph.Edges() {
		if e.Kind == ddg.RF && sc.Cluster[e.From] != sc.Cluster[e.To] {
			for i, c := range sc.Copies {
				if c.Producer == e.From && c.ToCluster == sc.Cluster[e.To] {
					d := cloneSchedule(sc)
					d.Copies = append(d.Copies[:i:i], d.Copies[i+1:]...)
					return d, fmt.Sprintf("dropped copy of op %d to cluster %d", c.Producer, c.ToCluster), true
				}
			}
		}
	}
	return nil, "", false
}

// mutateBreakReplica collapses two instances of a replica group into one
// cluster, so the group no longer covers every cluster exactly once.
func mutateBreakReplica(sc *sched.Schedule) (*sched.Schedule, string, bool) {
	if sc.Arch.NumClusters < 2 {
		return nil, "", false
	}
	for orig, group := range sc.Plan.ReplicaGroups {
		if len(group) < 2 {
			continue
		}
		d := cloneSchedule(sc)
		d.Cluster[group[1]] = d.Cluster[group[0]]
		return d, fmt.Sprintf("replica group of op %d doubled in cluster %d", orig, d.Cluster[group[0]]), true
	}
	return nil, "", false
}

// mutateShrinkII lowers the initiation interval below what the schedule
// was built for: it walks II-1 downward and returns the first II the
// validator should reject (some intermediate II may coincidentally still
// fit the modulo reservation table); if every positive II somehow
// validates, it falls back to the always-illegal II = 0.
func mutateShrinkII(sc *sched.Schedule) (*sched.Schedule, string, bool) {
	for ii := sc.II - 1; ii >= 0; ii-- {
		d := cloneSchedule(sc)
		d.II = ii
		if sched.Validate(d) != nil {
			return d, fmt.Sprintf("II shrunk %d -> %d", sc.II, ii), true
		}
	}
	d := cloneSchedule(sc)
	d.II = 0
	return d, fmt.Sprintf("II forced %d -> 0", sc.II), true
}

// Survivor is a mutant the validator failed to kill.
type Survivor struct {
	Class string
	Desc  string
	Sched *sched.Schedule
}

// Scoreboard tallies, per mutation class, how many mutants applied and how
// many the validator killed. It is the regression gate: AllKilled must
// hold for the mutation suite to pass.
type Scoreboard struct {
	counts map[string]*tally
}

type tally struct{ applied, killed int }

// NewScoreboard returns an empty scoreboard.
func NewScoreboard() *Scoreboard {
	return &Scoreboard{counts: make(map[string]*tally)}
}

// Record tallies one applied mutant of the class and whether it was killed.
func (s *Scoreboard) Record(class string, killed bool) {
	t := s.counts[class]
	if t == nil {
		t = &tally{}
		s.counts[class] = t
	}
	t.applied++
	if killed {
		t.killed++
	}
}

// Class returns how many mutants of one class were applied and killed.
func (s *Scoreboard) Class(class string) (applied, killed int) {
	if t := s.counts[class]; t != nil {
		return t.applied, t.killed
	}
	return 0, 0
}

// Applied returns the total number of mutants applied.
func (s *Scoreboard) Applied() int {
	n := 0
	for _, t := range s.counts {
		n += t.applied
	}
	return n
}

// AllKilled reports whether at least one mutant applied and every applied
// mutant was killed.
func (s *Scoreboard) AllKilled() bool {
	if len(s.counts) == 0 {
		return false
	}
	for _, t := range s.counts {
		if t.killed != t.applied {
			return false
		}
	}
	return true
}

// String renders the scoreboard, one class per line, sorted.
func (s *Scoreboard) String() string {
	classes := make([]string, 0, len(s.counts))
	for c := range s.counts {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	var b strings.Builder
	for _, c := range classes {
		t := s.counts[c]
		fmt.Fprintf(&b, "%-14s %d/%d killed\n", c, t.killed, t.applied)
	}
	return b.String()
}

// MutateAll runs every mutator against a valid schedule, records the
// outcomes on the scoreboard, and returns the mutants that survived
// validation (expected: none).
func MutateAll(sc *sched.Schedule, sb *Scoreboard) []Survivor {
	var survivors []Survivor
	for _, m := range Mutators() {
		mutant, desc, ok := m.Apply(sc)
		if !ok {
			continue
		}
		killed := sched.Validate(mutant) != nil
		sb.Record(m.Class, killed)
		if !killed {
			survivors = append(survivors, Survivor{Class: m.Class, Desc: desc, Sched: mutant})
		}
	}
	return survivors
}
