package fault_test

import (
	"testing"

	"vliwcache/internal/arch"
	"vliwcache/internal/core"
	"vliwcache/internal/fault"
	"vliwcache/internal/sched"
	"vliwcache/internal/sim"
)

// scriptProbe lets a test read back the per-run injector a Script factory
// produced, to compare logs across runs.
type scriptProbe struct {
	mk  sim.NewFaultsFunc
	inj sim.FaultInjector
}

func (p *scriptProbe) new(sc *sched.Schedule) sim.FaultInjector {
	p.inj = p.mk(sc)
	return p.inj
}

// TestScriptDeterministicAndExact: a Script injects exactly the listed
// faults — nothing sampled, nothing extra — and reusing one plan across
// runs yields byte-identical logs and statistics.
func TestScriptDeterministicAndExact(t *testing.T) {
	cfg := arch.Default().WithAttractionBuffers(16)
	sc := buildSchedule(t, 2, core.PolicyMDC, cfg)

	script := &fault.Script{
		Bus:   map[fault.ScriptKey]int64{},
		Mem:   map[fault.ScriptKey]int64{},
		Flush: map[fault.ScriptKey]bool{{ID: 0, Iter: 7}: true},
	}
	// Address every op ID the schedule could plausibly carry on a few
	// mid-run iterations; IDs that never execute simply never fire, which
	// is itself part of the "exactly the listed faults" contract.
	for id := 0; id < 8; id++ {
		script.Bus[fault.ScriptKey{ID: id, Iter: 3}] = 17
		script.Mem[fault.ScriptKey{ID: id, Iter: 5}] = 6
	}

	var stats []*sim.Stats
	var logs []string
	for run := 0; run < 3; run++ {
		probe := &scriptProbe{mk: script.Faults()}
		st, err := sim.Run(sc, sim.Options{
			CheckCoherence: true,
			MaxIterations:  32,
			NewFaults:      probe.new,
		})
		if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		lg, ok := probe.inj.(interface{ Log() string })
		if !ok {
			t.Fatal("script injector does not expose Log()")
		}
		stats = append(stats, st)
		logs = append(logs, lg.Log())
	}

	if stats[0].InjectedFaults == 0 {
		t.Fatal("scripted faults never fired; the plan addressed no live access")
	}
	if logs[0] == "" {
		t.Fatal("empty log despite injected faults")
	}
	for run := 1; run < 3; run++ {
		if *stats[run] != *stats[0] {
			t.Errorf("run %d stats differ:\n%+v\nwant\n%+v", run, stats[run], stats[0])
		}
		if logs[run] != logs[0] {
			t.Errorf("run %d log differs:\n%q\nwant\n%q", run, logs[run], logs[0])
		}
	}

	// An empty Script is a no-op injector: zero faults, empty log, and the
	// run is identical to an uninjected one.
	probe := &scriptProbe{mk: (&fault.Script{}).Faults()}
	st, err := sim.Run(sc, sim.Options{CheckCoherence: true, MaxIterations: 32, NewFaults: probe.new})
	if err != nil {
		t.Fatal(err)
	}
	if st.InjectedFaults != 0 {
		t.Errorf("empty script injected %d faults", st.InjectedFaults)
	}
	if lg := probe.inj.(interface{ Log() string }).Log(); lg != "" {
		t.Errorf("empty script produced log %q", lg)
	}
	clean, err := sim.Run(sc, sim.Options{CheckCoherence: true, MaxIterations: 32})
	if err != nil {
		t.Fatal(err)
	}
	if st.Cycles() != clean.Cycles() || st.Violations != clean.Violations {
		t.Errorf("empty script perturbed the run: %d cycles/%d violations vs %d/%d",
			st.Cycles(), st.Violations, clean.Cycles(), clean.Violations)
	}
}
