package fault_test

import (
	"testing"

	"vliwcache/internal/arch"
	"vliwcache/internal/core"
	"vliwcache/internal/fault"
	"vliwcache/internal/sched"
)

// TestMutationScoreboard is the mutation-testing regression gate: every
// applicable mutant of a valid schedule must be killed by sched.Validate.
// A survivor is a hole in the validator — exactly the oracle the rest of
// the repo (scheduler self-checks, simulator input checks, chaos suite)
// leans on.
func TestMutationScoreboard(t *testing.T) {
	sb := fault.NewScoreboard()
	cfg := arch.Default()
	for ls := int64(0); ls < 12; ls++ {
		for _, pol := range []core.Policy{core.PolicyFree, core.PolicyMDC, core.PolicyDDGT} {
			sc := buildSchedule(t, ls, pol, cfg)
			if err := sched.Validate(sc); err != nil {
				t.Fatalf("loop %d %v: pristine schedule invalid: %v", ls, pol, err)
			}
			for _, s := range fault.MutateAll(sc, sb) {
				t.Errorf("loop %d %v: SURVIVOR [%s] %s", ls, pol, s.Class, s.Desc)
			}
		}
	}
	if !sb.AllKilled() {
		t.Errorf("mutants survived:\n%s", sb)
	}
	// Every mutation class must actually have been exercised: a class that
	// never applies is a silently dead gate.
	for _, m := range fault.Mutators() {
		if applied, _ := sb.Class(m.Class); applied == 0 {
			t.Errorf("mutation class %q never applied across the corpus", m.Class)
		}
	}
	t.Logf("scoreboard (%d mutants):\n%s", sb.Applied(), sb)
}
