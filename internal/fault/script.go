package fault

import (
	"fmt"
	"strings"

	"vliwcache/internal/sched"
	"vliwcache/internal/sim"
)

// Script is an explicit fault plan: instead of sampling faults from a
// seeded RNG it injects exactly the listed delays, flips and flushes and
// nothing else. It is how a model-checker counterexample is replayed in
// the timed simulator — the checker's interleaving names which request
// must be held back, and a Script realizes exactly that delay — and is
// useful anywhere a test needs one precisely-placed fault rather than a
// statistical mix.
//
// Keys address a dynamic access as (op ID, iteration); Flush keys are
// (cluster, iteration). A Script is immutable while running; build one,
// then hand Faults() to sim.Options.NewFaults.
type Script struct {
	// Bus maps {op, iter} to extra cycles the access's request waits
	// before entering memory-bus arbitration.
	Bus map[ScriptKey]int64
	// Mem maps {op, iter} to extra cycles on the data-return path.
	Mem map[ScriptKey]int64
	// Flip marks {op, iter} accesses whose hit/miss class is flipped.
	Flip map[ScriptKey]bool
	// Flush marks {cluster, iter} points where the cluster's Attraction
	// Buffer is forcibly flushed before the access.
	Flush map[ScriptKey]bool
}

// ScriptKey addresses one dynamic event of a Script.
type ScriptKey struct {
	ID   int // op ID (Bus/Mem/Flip) or cluster (Flush)
	Iter int64
}

// Faults returns a sim.Options.NewFaults factory. Each run gets a fresh
// injector over the shared (read-only) plan, so one Script is safe across
// concurrent runs and every run's Log is byte-identical.
func (s *Script) Faults() sim.NewFaultsFunc {
	return func(*sched.Schedule) sim.FaultInjector {
		return &scriptRun{plan: s}
	}
}

// scriptRun is one run's view of a Script: the plan plus this run's log.
type scriptRun struct {
	plan   *Script
	log    strings.Builder
	faults int
}

// Faults returns how many faults this run has emitted.
func (r *scriptRun) Faults() int { return r.faults }

// Log returns the fault event log in emission order, in the same format
// as the seeded Injector's.
func (r *scriptRun) Log() string { return r.log.String() }

func (r *scriptRun) emit(format string, args ...any) {
	r.faults++
	fmt.Fprintf(&r.log, format, args...)
}

// MemExtra implements sim.FaultInjector.
func (r *scriptRun) MemExtra(op, cluster int, iter int64) int64 {
	d := r.plan.Mem[ScriptKey{op, iter}]
	if d > 0 {
		r.emit("mem op=%d cl=%d it=%d +%d\n", op, cluster, iter, d)
	}
	return d
}

// BusExtra implements sim.FaultInjector.
func (r *scriptRun) BusExtra(op, cluster int, iter int64) int64 {
	d := r.plan.Bus[ScriptKey{op, iter}]
	if d > 0 {
		r.emit("bus op=%d cl=%d it=%d +%d\n", op, cluster, iter, d)
	}
	return d
}

// FlipClass implements sim.FaultInjector.
func (r *scriptRun) FlipClass(op, cluster int, iter int64, hit bool) bool {
	if !r.plan.Flip[ScriptKey{op, iter}] {
		return false
	}
	r.emit("flip op=%d cl=%d it=%d hit=%t\n", op, cluster, iter, hit)
	return true
}

// FlushAB implements sim.FaultInjector.
func (r *scriptRun) FlushAB(cluster int, iter int64) bool {
	if !r.plan.Flush[ScriptKey{cluster, iter}] {
		return false
	}
	r.emit("abflush cl=%d it=%d\n", cluster, iter)
	return true
}
