// Package fault is the deterministic fault-injection harness ("chaos
// mode") for the simulator and the scheduler:
//
//   - Injector implements sim.FaultInjector with a seeded RNG: randomized
//     extra memory and bus latency, hit/miss class flips, and forced
//     Attraction Buffer flushes. The same seed reproduces the same fault
//     sequence byte for byte (Log), which is the property the chaos suite
//     relies on to re-run counterexamples.
//   - The mutators in mutate.go corrupt valid schedules in targeted ways
//     and score whether sched.Validate kills every mutant.
//
// The injector only produces timings the real machine could produce (see
// sim.FaultInjector): under any such timing the paper guarantees MDC and
// DDGT schedules stay coherent, so the chaos suite asserts zero violations
// for them across many seeds while the unprotected baseline trips the
// checker.
package fault

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"strings"

	"vliwcache/internal/sched"
	"vliwcache/internal/sim"
)

// Config sets per-access fault probabilities and magnitudes. Zero-valued
// fields disable the corresponding fault.
type Config struct {
	// MemExtraProb injects 1..MemExtraMax extra cycles on the data-return
	// path of an access (DRAM variance, refill queueing).
	MemExtraProb float64
	MemExtraMax  int64

	// BusExtraProb injects 1..BusExtraMax cycles of output-queue delay
	// before a request enters memory-bus arbitration.
	BusExtraProb float64
	BusExtraMax  int64

	// FlipProb flips an access's cache outcome (hit<->miss, timing only).
	FlipProb float64

	// ABFlushProb forcibly flushes the accessing cluster's Attraction
	// Buffer before the access.
	ABFlushProb float64
}

// DefaultConfig is an aggressive mix: every fault class enabled with
// magnitudes large enough to reorder anything not explicitly protected.
func DefaultConfig() Config {
	return Config{
		MemExtraProb: 0.10, MemExtraMax: 40,
		BusExtraProb: 0.10, BusExtraMax: 25,
		FlipProb:    0.05,
		ABFlushProb: 0.02,
	}
}

// Injector is a seeded sim.FaultInjector. It is stateful (RNG position and
// fault log) and must not be shared between concurrent runs; build one per
// run, e.g. via Seeded.
type Injector struct {
	cfg    Config
	rng    *rand.Rand
	log    strings.Builder
	faults int
}

// New builds an injector whose fault sequence is fully determined by seed
// and cfg (given a fixed consultation order, which the simulator provides).
func New(seed int64, cfg Config) *Injector {
	return &Injector{cfg: cfg, rng: rand.New(rand.NewSource(seed))}
}

// Faults returns how many faults the injector has emitted.
func (j *Injector) Faults() int { return j.faults }

// Log returns the fault event log: one line per emitted fault, in emission
// order. Two runs with the same seed produce byte-identical logs.
func (j *Injector) Log() string { return j.log.String() }

func (j *Injector) emit(format string, args ...any) {
	j.faults++
	fmt.Fprintf(&j.log, format, args...)
}

// MemExtra implements sim.FaultInjector.
func (j *Injector) MemExtra(op, cluster int, iter int64) int64 {
	if j.cfg.MemExtraProb <= 0 || j.cfg.MemExtraMax < 1 || j.rng.Float64() >= j.cfg.MemExtraProb {
		return 0
	}
	d := 1 + j.rng.Int63n(j.cfg.MemExtraMax)
	j.emit("mem op=%d cl=%d it=%d +%d\n", op, cluster, iter, d)
	return d
}

// BusExtra implements sim.FaultInjector.
func (j *Injector) BusExtra(op, cluster int, iter int64) int64 {
	if j.cfg.BusExtraProb <= 0 || j.cfg.BusExtraMax < 1 || j.rng.Float64() >= j.cfg.BusExtraProb {
		return 0
	}
	d := 1 + j.rng.Int63n(j.cfg.BusExtraMax)
	j.emit("bus op=%d cl=%d it=%d +%d\n", op, cluster, iter, d)
	return d
}

// FlipClass implements sim.FaultInjector.
func (j *Injector) FlipClass(op, cluster int, iter int64, hit bool) bool {
	if j.cfg.FlipProb <= 0 || j.rng.Float64() >= j.cfg.FlipProb {
		return false
	}
	j.emit("flip op=%d cl=%d it=%d hit=%t\n", op, cluster, iter, hit)
	return true
}

// FlushAB implements sim.FaultInjector.
func (j *Injector) FlushAB(cluster int, iter int64) bool {
	if j.cfg.ABFlushProb <= 0 || j.rng.Float64() >= j.cfg.ABFlushProb {
		return false
	}
	j.emit("abflush cl=%d it=%d\n", cluster, iter)
	return true
}

// Seeded returns a factory for sim.Options.NewFaults: each run gets a
// fresh injector whose seed mixes the base seed with the schedule's
// identity (loop name, policy, II). A suite running cells concurrently
// therefore injects the same faults into the same cell regardless of
// execution order or parallelism.
func Seeded(seed int64, cfg Config) sim.NewFaultsFunc {
	return func(sc *sched.Schedule) sim.FaultInjector {
		h := fnv.New64a()
		fmt.Fprintf(h, "%s|%s|%d", sc.Plan.Loop.Name, sc.Plan.Policy, sc.II)
		return New(seed^int64(h.Sum64()), cfg)
	}
}
