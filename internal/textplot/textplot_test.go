package textplot

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestStackedBarWidths(t *testing.T) {
	bar := StackedBar(10, []Segment{{0.5, '#'}, {0.5, '.'}})
	if bar != "#####....." {
		t.Errorf("bar = %q", bar)
	}
	if got := StackedBar(10, nil); got != strings.Repeat(" ", 10) {
		t.Errorf("empty bar = %q", got)
	}
	// Over-full segments are truncated to the width.
	if got := StackedBar(8, []Segment{{0.9, 'a'}, {0.9, 'b'}}); len([]rune(got)) != 8 {
		t.Errorf("overfull bar length = %d", len([]rune(got)))
	}
	// Negative fractions are clamped.
	if got := StackedBar(4, []Segment{{-1, 'x'}, {1, 'y'}}); got != "yyyy" {
		t.Errorf("negative clamp = %q", got)
	}
}

func TestStackedBarWidthProperty(t *testing.T) {
	f := func(fracs []float64) bool {
		segs := make([]Segment, len(fracs))
		for i, fr := range fracs {
			segs[i] = Segment{Frac: fr, Rune: 'x'}
		}
		return len([]rune(StackedBar(20, segs))) == 20
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBar(t *testing.T) {
	if got := Bar(10, 0.5, 1.0, '#'); got != "#####     " {
		t.Errorf("Bar = %q", got)
	}
	if got := Bar(10, 5, 1.0, '#'); !strings.HasSuffix(got, ">") || len(got) != 10 {
		t.Errorf("overflow Bar = %q", got)
	}
	if got := Bar(10, -2, 1.0, '#'); got != strings.Repeat(" ", 10) {
		t.Errorf("negative Bar = %q", got)
	}
	if got := Bar(4, 1, 0, '#'); len(got) != 4 {
		t.Errorf("zero-max Bar = %q", got)
	}
}

func TestBarNaN(t *testing.T) {
	nan := math.NaN()
	// A NaN value (e.g. a ratio over zero accesses) renders as an empty
	// bar of the right width; a NaN max falls back to 1.
	if got := Bar(10, nan, 1.0, '#'); got != strings.Repeat(" ", 10) {
		t.Errorf("NaN value Bar = %q", got)
	}
	if got := Bar(10, 0.5, nan, '#'); got != "#####     " {
		t.Errorf("NaN max Bar = %q", got)
	}
	if got := Bar(10, nan, nan, '#'); got != strings.Repeat(" ", 10) {
		t.Errorf("NaN/NaN Bar = %q", got)
	}
}

func TestTableAlignment(t *testing.T) {
	tb := NewTable("name", "value")
	tb.Row("x", "1")
	tb.Rowf("longer\t23")
	s := tb.String()
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines:\n%s", len(lines), s)
	}
	w := len(lines[0])
	for i, ln := range lines {
		if len(ln) != w && i > 0 && strings.TrimSpace(ln) != "" {
			// Rows may be shorter only by trailing spaces of the last col.
			if len(strings.TrimRight(ln, " ")) > w {
				t.Errorf("line %d wider than header: %q", i, ln)
			}
		}
	}
	if !strings.Contains(s, "longer") || !strings.Contains(s, "23") {
		t.Error("cells missing")
	}
}

func TestTableExtraCellsDropped(t *testing.T) {
	tb := NewTable("one")
	tb.Row("a", "overflow")
	if s := tb.String(); strings.Contains(s, "overflow") {
		t.Errorf("extra cell rendered: %q", s)
	}
}
