// Package textplot renders the paper's figures as ASCII stacked bar charts
// so the benchmark harness can print directly comparable output.
package textplot

import (
	"fmt"
	"strings"
)

// Segment is one component of a stacked bar.
type Segment struct {
	Frac float64 // 0..1
	Rune rune
}

// StackedBar renders segments into a fixed-width horizontal bar. Fractions
// are clamped and the bar padded/truncated to exactly width runes.
func StackedBar(width int, segs []Segment) string {
	var b strings.Builder
	used := 0
	for _, s := range segs {
		f := s.Frac
		if !(f > 0) { // negative or NaN
			continue
		}
		if f > 1 {
			f = 1
		}
		n := int(f*float64(width) + 0.5)
		if used+n > width {
			n = width - used
		}
		if n <= 0 {
			continue
		}
		b.WriteString(strings.Repeat(string(s.Rune), n))
		used += n
	}
	if used < width {
		b.WriteString(strings.Repeat(" ", width-used))
	}
	return b.String()
}

// Bar renders a single-valued bar scaled so that 1.0 == width runes; values
// above max are truncated with a '>' marker.
func Bar(width int, value, max float64, r rune) string {
	if max <= 0 || max != max {
		max = 1
	}
	if value != value { // NaN renders as an empty bar, not garbage
		value = 0
	}
	n := int(value / max * float64(width))
	if n > width {
		return strings.Repeat(string(r), width-1) + ">"
	}
	if n < 0 {
		n = 0
	}
	return strings.Repeat(string(r), n) + strings.Repeat(" ", width-n)
}

// Table is a minimal column-aligned text table.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// Row appends a row; cells beyond the header width are dropped.
func (t *Table) Row(cells ...string) *Table {
	t.rows = append(t.rows, cells)
	return t
}

// Rowf appends a row of formatted cells.
func (t *Table) Rowf(format string, args ...interface{}) *Table {
	return t.Row(strings.Split(fmt.Sprintf(format, args...), "\t")...)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i := 0; i < len(widths); i++ {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
	return b.String()
}
