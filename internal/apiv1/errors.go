package apiv1

import (
	"context"
	"errors"
	"net/http"

	"vliwcache/internal/experiments"
	"vliwcache/internal/mediabench"
	"vliwcache/internal/sched"
)

// ErrorResponse is the body of every non-2xx response. Code is a stable
// machine-readable discriminator (the Code* constants); Message is
// human-readable and may change between releases; Details carries
// error-specific context (pipeline stage, benchmark name, ...).
type ErrorResponse struct {
	Code    string            `json:"code"`
	Message string            `json:"message"`
	Details map[string]string `json:"details,omitempty"`
}

// Typed error codes. Every code maps to exactly one HTTP status.
const (
	// CodeBadRequest: the request body could not be decoded or failed
	// validation (malformed JSON, unknown policy name, invalid loop).
	CodeBadRequest = "bad_request" // 400
	// CodeUnknownBenchmark: a suite request named a benchmark outside
	// the synthesized Mediabench suite.
	CodeUnknownBenchmark = "unknown_benchmark" // 404
	// CodeInfeasibleSchedule: the loop does not fit within the
	// scheduler's II budget.
	CodeInfeasibleSchedule = "infeasible_schedule" // 422
	// CodeUnknownScheduler: the request named a scheduler (or portfolio
	// member) absent from the registry.
	CodeUnknownScheduler = "unknown_scheduler" // 422
	// CodeInvalidArch: a structured arch override produced a geometry
	// rejected by arch.Validate (interleaving not dividing the block,
	// cluster count not dividing the block words, zero buses, ...).
	CodeInvalidArch = "invalid_arch" // 422
	// CodePipelineFailure: a pipeline stage failed for a reason other
	// than infeasibility; Details locates the stage.
	CodePipelineFailure = "pipeline_failure" // 422
	// CodeDeadlineExceeded: the per-request deadline expired before the
	// computation finished.
	CodeDeadlineExceeded = "deadline_exceeded" // 504
	// CodeOverloaded: the admission queue is full; retry after the
	// Retry-After header's delay.
	CodeOverloaded = "overloaded" // 429
	// CodeDraining: the server is shutting down and no longer admits
	// compute requests.
	CodeDraining = "draining" // 503
	// CodeUnknownJob: the job id does not exist on this router.
	CodeUnknownJob = "unknown_job" // 404
	// CodeJobNotReady: artifacts were requested before the job reached
	// a terminal state (or the job failed and has none).
	CodeJobNotReady = "job_not_ready" // 409
	// CodeNoWorkers: the cluster router has no live worker to route a
	// synchronous request to.
	CodeNoWorkers = "no_workers" // 503
	// CodeInternal: an unexpected failure (recovered panic, ...).
	CodeInternal = "internal" // 500
)

// StatusOf returns the HTTP status a code maps to.
func StatusOf(code string) int {
	switch code {
	case CodeBadRequest:
		return http.StatusBadRequest
	case CodeUnknownBenchmark, CodeUnknownJob:
		return http.StatusNotFound
	case CodeInfeasibleSchedule, CodeUnknownScheduler, CodeInvalidArch, CodePipelineFailure:
		return http.StatusUnprocessableEntity
	case CodeJobNotReady:
		return http.StatusConflict
	case CodeDeadlineExceeded:
		return http.StatusGatewayTimeout
	case CodeOverloaded:
		return http.StatusTooManyRequests
	case CodeDraining, CodeNoWorkers:
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}

// ErrorFor maps a pipeline error onto its wire representation: the HTTP
// status and the typed ErrorResponse body. It understands the repo's
// sentinel errors (mediabench.ErrUnknownBenchmark, sched.ErrInfeasible),
// *experiments.PipelineError (whose location lands in Details), and
// context deadline expiry; anything else is CodeInternal.
func ErrorFor(err error) (int, ErrorResponse) {
	resp := ErrorResponse{Message: err.Error()}
	switch {
	case errors.Is(err, mediabench.ErrUnknownBenchmark):
		resp.Code = CodeUnknownBenchmark
	case errors.Is(err, sched.ErrUnknownScheduler):
		resp.Code = CodeUnknownScheduler
	case errors.Is(err, ErrInvalidArch):
		resp.Code = CodeInvalidArch
	case errors.Is(err, sched.ErrInfeasible):
		resp.Code = CodeInfeasibleSchedule
	case errors.Is(err, context.DeadlineExceeded):
		resp.Code = CodeDeadlineExceeded
	case errors.Is(err, context.Canceled):
		resp.Code = CodeDraining
	default:
		resp.Code = CodeInternal
	}
	var pe *experiments.PipelineError
	if errors.As(err, &pe) {
		if resp.Code == CodeInternal {
			resp.Code = CodePipelineFailure
		}
		resp.Details = map[string]string{
			"stage":   pe.Stage,
			"loop":    pe.Loop,
			"variant": pe.Variant.String(),
		}
		if pe.Bench != "" {
			resp.Details["bench"] = pe.Bench
		}
	}
	return StatusOf(resp.Code), resp
}
