package apiv1

import (
	"fmt"

	"vliwcache/internal/sched"
	"vliwcache/internal/sim"
)

// Options is the unified execution-option block shared by every compute
// request in the v1 schema. PRs 6–9 accreted these knobs one request
// type at a time (fault seed in PR 2's wire debut, fastPath in PR 8,
// scheduler/portfolio in PR 6, arch in PR 9), each re-declared per
// request; the jobs API would have made a fourth copy. Instead every
// request — ScheduleRequest (also /v1/simulate), SuiteRequest,
// CellRequest, SweepRequest — embeds this one struct, so a knob added
// here reaches the whole surface at once and cannot drift.
//
// Embedding preserves the wire contract: encoding/json promotes the
// embedded fields in place, legacy bodies decode unchanged (JSON decode
// is order-independent), and cache addresses are derived from resolved
// values, not raw bodies. The canonical marshal order of requests is
// pinned by TestRequestFieldOrder.
type Options struct {
	// MaxIterations caps simulated iterations per loop entry (0 = the
	// loop's trip count).
	MaxIterations int64 `json:"maxIterations,omitempty"`
	// MaxEntries caps simulated loop entries (0 = the loop's entries).
	MaxEntries int64 `json:"maxEntries,omitempty"`
	// CheckCoherence runs the memory ordering checker.
	CheckCoherence bool `json:"checkCoherence,omitempty"`
	// FaultSeed, when non-zero, enables deterministic fault injection
	// (chaos mode) with the default fault mix under this seed.
	FaultSeed int64 `json:"faultSeed,omitempty"`
	// FastPath turns on the simulator's steady-state fast path
	// (dead-cycle skipping plus validated loop extrapolation). Results
	// are bit-identical to the default path; runs the fast path cannot
	// prove periodic fall back to plain simulation.
	FastPath bool `json:"fastPath,omitempty"`
	// DeadlineMillis bounds the request's wall time. Zero uses the
	// server default; values above the server maximum are clamped.
	// The deadline does not participate in the result-cache key.
	DeadlineMillis int64 `json:"deadlineMillis,omitempty"`
	// Scheduler, when set, schedules with the named registered scheduler
	// ("oracle", "locality", "prefclus-slack", ...) instead of the
	// Heuristic enum. Unknown names fail with a 422 unknown_scheduler
	// error. Absent, the frozen v1 heuristic behavior applies.
	Scheduler string `json:"scheduler,omitempty"`
	// Portfolio, when set, races the named registered schedulers and
	// keeps the best valid schedule (tie-break: II, then schedule length,
	// then name order). Mutually exclusive with Scheduler. A portfolio of
	// one behaves exactly like Scheduler with that name.
	Portfolio []string `json:"portfolio,omitempty"`
	// Arch, when set, overrides individual machine-description fields on
	// top of the request's base configuration. Omitted fields inherit; a
	// resulting geometry that fails validation is the typed 422
	// invalid_arch error.
	Arch *Arch `json:"arch,omitempty"`
}

// SchedulerLabel validates the scheduler selection: scheduler and
// portfolio are mutually exclusive, and every name must be in the sched
// registry (unknown names wrap sched.ErrUnknownScheduler, the
// CodeUnknownScheduler case). It returns the selection's response label
// — the scheduler name, "portfolio(a+b)", or "" when nothing was
// selected and the frozen v1 behavior applies.
func (o *Options) SchedulerLabel() (string, error) {
	if o.Scheduler != "" && len(o.Portfolio) > 0 {
		return "", fmt.Errorf("scheduler and portfolio are mutually exclusive")
	}
	if o.Scheduler != "" {
		if _, err := sched.Get(o.Scheduler); err != nil {
			return "", err
		}
		return o.Scheduler, nil
	}
	if len(o.Portfolio) > 0 {
		p, err := sched.NewPortfolio(o.Portfolio...)
		if err != nil {
			return "", err
		}
		return p.Name(), nil
	}
	return "", nil
}

// SimOptions projects the option block onto the simulator's knobs.
// Fault injection is keyed by seed and bound by the serving layer (the
// injector constructor lives outside the wire schema).
func (o *Options) SimOptions() sim.Options {
	return sim.Options{
		MaxIterations:  o.MaxIterations,
		MaxEntries:     o.MaxEntries,
		CheckCoherence: o.CheckCoherence,
		FastPath:       o.FastPath,
	}
}

// SimOptionsKey renders the cache-relevant simulation knobs. The
// per-request deadline is deliberately absent: it bounds the wall time
// of a computation, never its result.
func SimOptionsKey(opts sim.Options, seed int64) string {
	k := fmt.Sprintf("maxIters=%d maxEntries=%d coherence=%t seed=%d",
		opts.MaxIterations, opts.MaxEntries, opts.CheckCoherence, seed)
	// The fast path produces bit-identical statistics, but it joins the
	// key anyway so a fallback investigation (re-request without the
	// flag) never gets served the other mode's cached bytes. Appended
	// only when set, so legacy requests keep their cache addresses.
	if opts.FastPath {
		k += " fast=true"
	}
	return k
}
