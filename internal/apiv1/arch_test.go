package apiv1

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"vliwcache/internal/arch"
)

// TestParseConfigNamedConfigEquivalence pins the deprecation contract:
// the deprecated ParseConfig and its replacement NamedConfig are the
// same function over every input class.
func TestParseConfigNamedConfigEquivalence(t *testing.T) {
	for _, name := range []string{"", "default", "DEFAULT", "nobal+mem", "nobal+reg", "NoBal+Reg", "turbo", "nobal+bus"} {
		oldCfg, oldErr := ParseConfig(name)
		newCfg, newErr := NamedConfig(name)
		if oldCfg != newCfg {
			t.Errorf("ParseConfig(%q) = %+v, NamedConfig = %+v", name, oldCfg, newCfg)
		}
		if (oldErr == nil) != (newErr == nil) {
			t.Errorf("ParseConfig(%q) err = %v, NamedConfig err = %v", name, oldErr, newErr)
		}
	}
}

// TestArchApply covers the overlay semantics: nil inherits, the empty
// object is the identity, present fields override, and a geometry
// rejected by arch.Validate wraps ErrInvalidArch.
func TestArchApply(t *testing.T) {
	base := arch.Default()

	var nilArch *Arch
	got, err := nilArch.Apply(base)
	if err != nil || got != base {
		t.Errorf("nil Apply = %+v, %v; want identity", got, err)
	}

	got, err = (&Arch{}).Apply(base)
	if err != nil || got != base {
		t.Errorf("empty Apply = %+v, %v; want identity", got, err)
	}

	nc, il := 2, 2
	got, err = (&Arch{NumClusters: &nc, InterleaveBytes: &il}).Apply(base)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumClusters != 2 || got.InterleaveBytes != 2 {
		t.Errorf("override Apply = %+v", got)
	}
	if got.CacheBytes != base.CacheBytes {
		t.Errorf("unset fields must inherit: cache %d != %d", got.CacheBytes, base.CacheBytes)
	}

	// Enabling ABs without naming an associativity gets the 2-way
	// default, exactly like arch.Config.WithAttractionBuffers.
	ab := 16
	got, err = (&Arch{ABEntries: &ab}).Apply(base)
	if err != nil {
		t.Fatal(err)
	}
	if want := base.WithAttractionBuffers(16); got != want {
		t.Errorf("AB default Apply = %+v, want %+v", got, want)
	}

	bad := 64
	if _, err = (&Arch{InterleaveBytes: &bad}).Apply(base); !errors.Is(err, ErrInvalidArch) {
		t.Errorf("invalid geometry err = %v, want ErrInvalidArch", err)
	}
	layout := "hexagonal"
	if _, err = (&Arch{Layout: &layout}).Apply(base); !errors.Is(err, ErrInvalidArch) {
		t.Errorf("bad layout err = %v, want ErrInvalidArch", err)
	}
}

// TestArchOfRoundTrip: ArchOf renders every field, so applying the
// result to any base reproduces the original configuration.
func TestArchOfRoundTrip(t *testing.T) {
	for _, cfg := range []arch.Config{
		arch.Default(),
		arch.Default().WithLayout(arch.LayoutReplicated),
		arch.Default().WithAttractionBuffers(16),
		arch.NobalMem(),
		arch.NobalReg(),
	} {
		a := ArchOf(cfg)
		other := arch.NobalReg() // a deliberately different base
		got, err := a.Apply(other)
		if err != nil {
			t.Fatalf("Apply(ArchOf(%+v)): %v", cfg, err)
		}
		if got != cfg {
			t.Errorf("round trip = %+v, want %+v", got, cfg)
		}
	}
}

// TestArchKeyCanonical pins the canonical encoding: field order is
// frozen, and distinct machines encode distinctly.
func TestArchKeyCanonical(t *testing.T) {
	key := ArchKey(arch.Default())
	want := "layout=interleaved,nc=4,int=1,fp=1,mem=1,cache=8192,block=32,assoc=2,il=4,hit=1,rb=4,rbl=2,mb=4,mbl=2,nll=10,nlp=4,ab=0,aba=2"
	if key != want {
		t.Errorf("ArchKey(default) = %q, want %q", key, want)
	}
	if k2 := ArchKey(arch.Default().WithLayout(arch.LayoutReplicated)); !strings.HasPrefix(k2, "layout=replicated,") || k2[len("layout=replicated"):] != key[len("layout=interleaved"):] {
		t.Errorf("replicated key = %q, want only the layout field to change from %q", k2, key)
	}
}

// TestArchWireFieldOrder freezes the JSON encoding of a fully-populated
// Arch: field names and order never change once shipped.
func TestArchWireFieldOrder(t *testing.T) {
	data, err := json.Marshal(ArchOf(arch.Default()))
	if err != nil {
		t.Fatal(err)
	}
	want := `{"layout":"interleaved","numClusters":4,"intUnits":1,"fpUnits":1,"memUnits":1,"cacheBytes":8192,"blockBytes":32,"cacheAssoc":2,"interleaveBytes":4,"cacheHitLatency":1,"regBuses":4,"regBusLatency":2,"memBuses":4,"memBusLatency":2,"nextLevelLatency":10,"nextLevelPorts":4,"abEntries":0,"abAssoc":2}`
	if string(data) != want {
		t.Errorf("wire encoding drifted:\n got:  %s\n want: %s", data, want)
	}
}
