package apiv1

import "encoding/json"

// The async job lifecycle. A suite or sweep is a grid of independent
// cells; submitting it as a job turns the one long synchronous request
// into a fanned-out batch:
//
//	POST /v1/jobs {"suite": {...}}      → 202 JobStatus (id, queued)
//	GET  /v1/jobs/{id}                  → JobStatus (poll)
//	GET  /v1/jobs/{id}/events           → SSE progress stream
//	GET  /v1/jobs/{id}/artifacts        → the response bytes
//
// Artifacts are byte-identical to the synchronous endpoint's response
// for the same body: a suite job's artifact is exactly the
// SuiteResponse bytes POST /v1/suite would have returned. Like every
// v1 type, field order is frozen.

// CellRequest asks for one suite cell: one benchmark under one
// (policy, heuristic) variant. It is the unit the cluster router
// fans out — POST /v1/cell on a worker — and the unit of result
// caching in the distributed tier.
type CellRequest struct {
	// Bench names the benchmark.
	Bench string `json:"bench"`
	// Policy selects the coherence policy: "free", "mdc" or "ddgt".
	Policy string `json:"policy"`
	// Heuristic selects the cluster-assignment heuristic: "prefclus"
	// (default) or "mincoms".
	Heuristic string `json:"heuristic,omitempty"`
	// Options is the unified execution-option block (embedded).
	Options
}

// SweepRequest asks for an architecture design-space sweep: every point
// × benchmark × variant cell. Points are structured arch overlays —
// typically echoed from GET /v1/archspace — applied to the serving
// tier's base configuration.
type SweepRequest struct {
	// Points lists the architecture overlays to sweep; it must not be
	// empty.
	Points []Arch `json:"points"`
	// Benches selects benchmarks by name; empty means every benchmark
	// of the paper's result figures.
	Benches []string `json:"benches,omitempty"`
	// Variants lists the (policy, heuristic) combinations; it must not
	// be empty.
	Variants []Variant `json:"variants"`
	// Options is the unified execution-option block (embedded). Its
	// Arch field must be absent — each point is the arch overlay.
	Options
}

// SweepCell is one point × benchmark × variant outcome.
type SweepCell struct {
	// Point is the canonical cache-key encoding (ArchKey) of the
	// point's resolved configuration, doubling as the row key.
	Point string `json:"point"`
	SuiteCell
}

// SweepResponse is a sweep job's artifact, cells in canonical order
// (points in request order, then benches, then variants).
type SweepResponse struct {
	Cells []SweepCell `json:"cells"`
}

// Job lifecycle states.
const (
	JobQueued  = "queued"
	JobRunning = "running"
	JobDone    = "done"
	JobFailed  = "failed"
)

// JobRequest is the body of POST /v1/jobs: exactly one of Suite or
// Sweep must be set.
type JobRequest struct {
	// Suite submits a suite grid (the async form of POST /v1/suite).
	Suite *SuiteRequest `json:"suite,omitempty"`
	// Sweep submits a design-space sweep.
	Sweep *SweepRequest `json:"sweep,omitempty"`
}

// JobStatus is the poll body of GET /v1/jobs/{id}, the creation body of
// POST /v1/jobs, and the data payload of every SSE progress event.
type JobStatus struct {
	// ID addresses the job on the poll/events/artifacts routes.
	ID string `json:"id"`
	// Kind is "suite" or "sweep".
	Kind string `json:"kind"`
	// State is the lifecycle state: queued → running → done | failed.
	State string `json:"state"`
	// CellsTotal is the job's cell count (fixed at submission).
	CellsTotal int `json:"cellsTotal"`
	// CellsDone counts finished cells (computed, served from cache, or
	// degraded).
	CellsDone int `json:"cellsDone"`
	// CellsFromCache counts cells a worker served from its result cache
	// (X-Cache hit or coalesced).
	CellsFromCache int `json:"cellsFromCache"`
	// CellsDegraded counts cells no worker could compute, rendered as
	// n/a(reason) in the artifact instead of failing the job.
	CellsDegraded int `json:"cellsDegraded"`
	// Error is the failure reason (failed state only).
	Error string `json:"error,omitempty"`
}

// Terminal reports whether the state is final.
func (s *JobStatus) Terminal() bool {
	return s.State == JobDone || s.State == JobFailed
}

// JobListResponse is the body of GET /v1/jobs: statuses in submission
// order.
type JobListResponse struct {
	Jobs []JobStatus `json:"jobs"`
}

// MarshalStatus renders a JobStatus deterministically (frozen field
// order, like every v1 body).
func MarshalStatus(s JobStatus) []byte {
	b, err := json.Marshal(s)
	if err != nil {
		// JobStatus contains only marshal-safe field types.
		panic(err)
	}
	return b
}
