// Package apiv1 is the versioned wire schema of the paperserved HTTP
// service. It mirrors the facade's functional-options API one-for-one:
// every request field corresponds to a With* option (or a SimOptions
// field), and every response field is a stable projection of the
// pipeline artifacts (Plan, Schedule, Stats).
//
// The schema is deliberately flat and order-stable: struct fields are
// declared in wire order and encoding/json preserves declaration order,
// so two marshals of the same value are byte-identical. The serving
// layer's content-addressed result cache depends on that property —
// a cache hit replays the exact bytes the populating miss produced.
//
// Versioning contract: fields may be added to v1 (old clients ignore
// them), but existing fields never change name, type or order. Breaking
// changes get a new package (apiv2) and a new URL prefix.
package apiv1

import (
	"encoding/json"
	"fmt"
	"strings"

	"vliwcache/internal/arch"
	"vliwcache/internal/core"
	"vliwcache/internal/sched"
	"vliwcache/internal/sim"
)

// ScheduleRequest asks for the full pipeline on one loop: profile,
// prepare under the coherence policy, modulo schedule, simulate.
// It is also the body of POST /v1/simulate (which returns only the
// simulation statistics).
type ScheduleRequest struct {
	// Loop is the loop body in the ir JSON interchange format. The
	// service canonicalizes it (decode + deterministic re-encode), so
	// formatting differences do not defeat result caching.
	Loop json.RawMessage `json:"loop"`
	// Policy selects the coherence policy: "free", "mdc" or "ddgt".
	Policy string `json:"policy"`
	// Heuristic selects the cluster-assignment heuristic: "prefclus"
	// (default) or "mincoms".
	Heuristic string `json:"heuristic,omitempty"`
	// Config names the machine description: "default" (Table 2),
	// "nobal+mem" or "nobal+reg" (§4.2). Empty means "default".
	Config string `json:"config,omitempty"`
	// Layout selects the cache organization: "interleaved" (default)
	// or "replicated".
	Layout string `json:"layout,omitempty"`
	// ABEntries enables per-cluster Attraction Buffers (0 = off).
	ABEntries int `json:"abEntries,omitempty"`
	// Options is the unified execution-option block (embedded; its
	// fields appear inline on the wire). When Options.Arch is present,
	// the legacy Layout field applies only if non-empty (the structured
	// layout wins otherwise); ABEntries > 0 still applies on top.
	Options
	// IncludeSchedule adds the rendered modulo schedule to the response.
	IncludeSchedule bool `json:"includeSchedule,omitempty"`
}

// ScheduleResponse is the outcome of POST /v1/schedule.
type ScheduleResponse struct {
	Loop      string `json:"loop"`
	Policy    string `json:"policy"`
	Heuristic string `json:"heuristic"`
	// II is the initiation interval of the kernel.
	II int `json:"ii"`
	// Comms counts scheduled inter-cluster copies per iteration.
	Comms int `json:"comms"`
	// Stats are the simulation statistics.
	Stats Stats `json:"stats"`
	// Schedule is the rendered modulo schedule (IncludeSchedule only).
	Schedule string `json:"schedule,omitempty"`
	// Scheduler echoes the effective scheduler selection — the request's
	// scheduler name, or "portfolio(a+b+...)" for a portfolio race.
	// Absent when the request used the frozen heuristic path, so legacy
	// response bytes are unchanged.
	Scheduler string `json:"scheduler,omitempty"`
}

// SimulateResponse is the outcome of POST /v1/simulate: the statistics
// alone, for callers that only need timing/behaviour numbers.
type SimulateResponse struct {
	Loop  string `json:"loop"`
	Stats Stats  `json:"stats"`
}

// Stats is the wire projection of sim.Stats: raw counters plus the
// derived cycle total. Field order is frozen.
type Stats struct {
	Iterations      int64 `json:"iterations"`
	Entries         int64 `json:"entries"`
	Cycles          int64 `json:"cycles"`
	ComputeCycles   int64 `json:"computeCycles"`
	StallCycles     int64 `json:"stallCycles"`
	LocalHits       int64 `json:"localHits"`
	RemoteHits      int64 `json:"remoteHits"`
	LocalMisses     int64 `json:"localMisses"`
	RemoteMisses    int64 `json:"remoteMisses"`
	ABHits          int64 `json:"abHits"`
	NullifiedStores int64 `json:"nullifiedStores"`
	CommOps         int64 `json:"commOps"`
	Violations      int64 `json:"violations"`
	BusTransfers    int64 `json:"busTransfers"`
	InjectedFaults  int64 `json:"injectedFaults"`
}

// StatsOf projects sim.Stats onto the wire schema.
func StatsOf(s *sim.Stats) Stats {
	return Stats{
		Iterations:      s.Iterations,
		Entries:         s.Entries,
		Cycles:          s.Cycles(),
		ComputeCycles:   s.ComputeCycles,
		StallCycles:     s.StallCycles,
		LocalHits:       s.Accesses[sim.LocalHit],
		RemoteHits:      s.Accesses[sim.RemoteHit],
		LocalMisses:     s.Accesses[sim.LocalMiss],
		RemoteMisses:    s.Accesses[sim.RemoteMiss],
		ABHits:          s.ABHits,
		NullifiedStores: s.NullifiedStores,
		CommOps:         s.CommOps,
		Violations:      s.Violations,
		BusTransfers:    s.BusTransfers,
		InjectedFaults:  s.InjectedFaults,
	}
}

// Variant names one (policy, heuristic) combination of a suite grid.
type Variant struct {
	Policy    string `json:"policy"`
	Heuristic string `json:"heuristic"`
}

// SuiteRequest asks for a benchmark × variant grid of experiment cells.
type SuiteRequest struct {
	// Benches selects benchmarks by name; empty means every benchmark
	// of the paper's result figures.
	Benches []string `json:"benches,omitempty"`
	// Variants lists the (policy, heuristic) combinations to run; it
	// must not be empty.
	Variants []Variant `json:"variants"`
	// Options is the unified execution-option block (embedded; its
	// fields appear inline on the wire) applied to every cell. The
	// scheduler selection replaces each variant's heuristic; Arch
	// overlays the server's base configuration.
	Options
}

// SuiteResponse carries the computed grid in canonical cell order
// (benchmarks in request order, variants in request order within each).
type SuiteResponse struct {
	Cells []SuiteCell `json:"cells"`
}

// SuiteCell is one benchmark under one variant.
type SuiteCell struct {
	Bench     string    `json:"bench"`
	Policy    string    `json:"policy"`
	Heuristic string    `json:"heuristic"`
	Loops     []LoopRun `json:"loops"`
	Total     Stats     `json:"total"`
	// Scheduler echoes the request-level scheduler selection (see
	// ScheduleResponse.Scheduler). Absent for frozen-path requests.
	Scheduler string `json:"scheduler,omitempty"`
	// NA, when non-empty, marks a degraded cell: the cluster router
	// could not compute it on any worker and carries the reason here
	// (rendered as "n/a(reason)", the suite tables' degraded idiom).
	// Loops is empty and Total is zero for degraded cells. Absent on
	// every computed cell, so single-node bytes are unchanged.
	NA string `json:"na,omitempty"`
}

// LoopRun is one loop's outcome inside a suite cell.
type LoopRun struct {
	Loop  string `json:"loop"`
	II    int    `json:"ii"`
	Comms int    `json:"comms"`
	Stats Stats  `json:"stats"`
}

// BenchmarksResponse lists the synthesized Mediabench suite.
type BenchmarksResponse struct {
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Benchmark is the wire projection of one benchmark's Table 1 metadata.
type Benchmark struct {
	Name         string  `json:"name"`
	Interleave   int     `json:"interleave"`
	Loops        int     `json:"loops"`
	MainDataSize int     `json:"mainDataSize"`
	MainDataPct  float64 `json:"mainDataPct"`
	ProfileInput string  `json:"profileInput"`
	ExecInput    string  `json:"execInput"`
	InFigures    bool    `json:"inFigures"`
}

// ParsePolicy maps a wire policy name onto core.Policy. Names are
// case-insensitive.
func ParsePolicy(name string) (core.Policy, error) {
	switch strings.ToLower(name) {
	case "free":
		return core.PolicyFree, nil
	case "mdc":
		return core.PolicyMDC, nil
	case "ddgt":
		return core.PolicyDDGT, nil
	}
	return 0, fmt.Errorf("unknown policy %q (want free, mdc or ddgt)", name)
}

// ParseHeuristic maps a wire heuristic name onto sched.Heuristic. The
// empty string defaults to PrefClus.
func ParseHeuristic(name string) (sched.Heuristic, error) {
	switch strings.ToLower(name) {
	case "", "prefclus":
		return sched.PrefClus, nil
	case "mincoms":
		return sched.MinComs, nil
	}
	return 0, fmt.Errorf("unknown heuristic %q (want prefclus or mincoms)", name)
}

// ParseLayout maps a wire layout name onto arch.Layout. The empty string
// defaults to the word-interleaved layout.
func ParseLayout(name string) (arch.Layout, error) {
	switch strings.ToLower(name) {
	case "", "interleaved":
		return arch.LayoutWordInterleaved, nil
	case "replicated":
		return arch.LayoutReplicated, nil
	}
	return 0, fmt.Errorf("unknown layout %q (want interleaved or replicated)", name)
}
