package apiv1

import (
	"encoding/json"
	"errors"
	"testing"

	"vliwcache/internal/arch"
	"vliwcache/internal/core"
	"vliwcache/internal/ir"
	"vliwcache/internal/profiler"
	"vliwcache/internal/sched"
	"vliwcache/internal/sim"
)

// fuzzLoop is a small well-formed loop for driving arbitrary machine
// configurations end to end.
func fuzzLoop(tb testing.TB) *ir.Loop {
	tb.Helper()
	b := ir.NewBuilder("fuzzarch")
	b.Symbol("x", 0x10000, 1<<16)
	b.Symbol("y", 0x80000, 1<<16)
	b.Trip(8, 1)
	r0 := b.Load("ldx", ir.AddrExpr{Base: "x", Stride: 8, Size: 8})
	r1 := b.Load("ldy", ir.AddrExpr{Base: "y", Stride: 8, Size: 8})
	r2 := b.Arith("mul", ir.KindFMul, r0, r1)
	b.Store("sty", ir.AddrExpr{Base: "y", Stride: 8, Size: 8}, r2)
	return b.Loop()
}

// simulatableBounds keeps fuzzed machines inside a neighborhood where a
// tiny end-to-end run is cheap: the contract under test is "valid
// geometry simulates or fails typed", not "arbitrarily huge machines
// are fast".
func simulatableBounds(c arch.Config) bool {
	return c.NumClusters <= 16 &&
		c.IntUnits <= 16 && c.FPUnits <= 16 && c.MemUnits <= 16 &&
		c.CacheBytes <= 1<<20 && c.BlockBytes <= 4096 && c.CacheAssoc <= 64 &&
		c.CacheHitLatency <= 64 &&
		c.RegBuses <= 32 && c.RegBusLatency <= 64 &&
		c.MemBuses <= 32 && c.MemBusLatency <= 64 &&
		c.NextLevelLatency <= 256 && c.NextLevelPorts <= 64 &&
		c.ABEntries <= 4096 && c.ABAssoc <= 64
}

// FuzzArchConfig decodes arbitrary bytes as a wire arch object and
// overlays it on the default machine. The contract: Apply either fails
// wrapping ErrInvalidArch (the typed 422) or yields a config passing
// arch.Validate whose ArchOf rendering round-trips; bounded valid
// machines must then drive the schedule→simulate pipeline to completion
// or to an error inside the typed taxonomy (never CodeInternal).
func FuzzArchConfig(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"numClusters":2}`))
	f.Add([]byte(`{"numClusters":8,"interleaveBytes":2}`))
	f.Add([]byte(`{"layout":"replicated"}`))
	f.Add([]byte(`{"abEntries":16}`))
	f.Add([]byte(`{"interleaveBytes":64}`))
	f.Add([]byte(`{"memBuses":0}`))
	f.Add([]byte(`{"blockBytes":48,"cacheBytes":3072}`))
	loop := fuzzLoop(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		var a Arch
		if err := json.Unmarshal(data, &a); err != nil {
			t.Skip("not a wire arch object")
		}
		cfg, err := a.Apply(arch.Default())
		if err != nil {
			if !errors.Is(err, ErrInvalidArch) {
				t.Fatalf("Apply error outside the typed taxonomy: %v", err)
			}
			return
		}
		if verr := cfg.Validate(); verr != nil {
			t.Fatalf("Apply returned an invalid config %+v: %v", cfg, verr)
		}
		ao := ArchOf(cfg)
		if rt, rerr := ao.Apply(arch.NobalReg()); rerr != nil || rt != cfg {
			t.Fatalf("ArchOf round trip = %+v, %v; want %+v", rt, rerr, cfg)
		}
		if !simulatableBounds(cfg) {
			return
		}
		plan, err := core.Prepare(loop, core.PolicyMDC, cfg.NumClusters)
		if err != nil {
			t.Fatalf("Prepare on valid config %+v: %v", cfg, err)
		}
		sc, err := sched.Run(plan, sched.Options{Arch: cfg, Heuristic: sched.PrefClus,
			Profile: profiler.Run(loop, cfg)})
		if err != nil {
			if _, resp := ErrorFor(err); resp.Code == CodeInternal {
				t.Fatalf("schedule error outside the typed taxonomy on %+v: %v", cfg, err)
			}
			return
		}
		st, err := sim.Run(sc, sim.Options{MaxIterations: 8, CheckCoherence: true})
		if err != nil {
			if _, resp := ErrorFor(err); resp.Code == CodeInternal {
				t.Fatalf("simulate error outside the typed taxonomy on %+v: %v", cfg, err)
			}
			return
		}
		if st.Cycles() <= 0 {
			t.Fatalf("simulation of valid config %+v ran zero cycles", cfg)
		}
	})
}
