package apiv1

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"reflect"
	"testing"

	"vliwcache/internal/arch"
	"vliwcache/internal/core"
	"vliwcache/internal/experiments"
	"vliwcache/internal/mediabench"
	"vliwcache/internal/sched"
	"vliwcache/internal/sim"
)

// TestScheduleRequestRoundTrip proves the request schema survives
// encode → decode → encode byte-identically (stable field order).
func TestScheduleRequestRoundTrip(t *testing.T) {
	req := ScheduleRequest{
		Loop:      json.RawMessage(`{"name":"daxpy","trip":10,"symbols":[],"ops":[]}`),
		Policy:    "mdc",
		Heuristic: "mincoms",
		Config:    "nobal+mem",
		Layout:    "replicated",
		ABEntries: 16,
		Options: Options{
			MaxIterations:  500,
			MaxEntries:     2,
			CheckCoherence: true,
			FaultSeed:      7,
			DeadlineMillis: 1500,
		},
		IncludeSchedule: true,
	}
	first, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	var back ScheduleRequest
	if err := json.Unmarshal(first, &back); err != nil {
		t.Fatal(err)
	}
	second, err := json.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if string(first) != string(second) {
		t.Errorf("round trip not byte-identical:\n%s\n%s", first, second)
	}
	if !reflect.DeepEqual(req, back) {
		t.Errorf("round trip changed value: %+v vs %+v", req, back)
	}
}

func TestSuiteRequestRoundTrip(t *testing.T) {
	req := SuiteRequest{
		Benches:  []string{"pgpdec", "rasta"},
		Variants: []Variant{{"mdc", "prefclus"}, {"ddgt", "mincoms"}},
		Options: Options{
			MaxIterations:  100,
			CheckCoherence: true,
			FaultSeed:      3,
		},
	}
	first, _ := json.Marshal(req)
	var back SuiteRequest
	if err := json.Unmarshal(first, &back); err != nil {
		t.Fatal(err)
	}
	second, _ := json.Marshal(back)
	if string(first) != string(second) {
		t.Errorf("round trip not byte-identical:\n%s\n%s", first, second)
	}
}

// TestResponseFieldOrder freezes the wire order of the response schema:
// marshal output must list fields in declaration order, so cached bytes
// and freshly marshaled bytes can never disagree.
func TestResponseFieldOrder(t *testing.T) {
	resp := ScheduleResponse{Loop: "l", Policy: "mdc", Heuristic: "prefclus", II: 3, Comms: 1}
	b, err := json.Marshal(resp)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"loop":"l","policy":"mdc","heuristic":"prefclus","ii":3,"comms":1,` +
		`"stats":{"iterations":0,"entries":0,"cycles":0,"computeCycles":0,"stallCycles":0,` +
		`"localHits":0,"remoteHits":0,"localMisses":0,"remoteMisses":0,"abHits":0,` +
		`"nullifiedStores":0,"commOps":0,"violations":0,"busTransfers":0,"injectedFaults":0}}`
	if string(b) != want {
		t.Errorf("field order drifted:\n got %s\nwant %s", b, want)
	}
}

func TestStatsOf(t *testing.T) {
	s := &sim.Stats{
		Iterations:    10,
		Entries:       1,
		ComputeCycles: 100,
		StallCycles:   20,
		CommOps:       5,
		Violations:    1,
	}
	s.Accesses[sim.LocalHit] = 7
	s.Accesses[sim.RemoteMiss] = 3
	got := StatsOf(s)
	if got.Cycles != 120 || got.LocalHits != 7 || got.RemoteMisses != 3 || got.Violations != 1 {
		t.Errorf("projection wrong: %+v", got)
	}
}

func TestParsers(t *testing.T) {
	if p, err := ParsePolicy("DDGT"); err != nil || p != core.PolicyDDGT {
		t.Errorf("ParsePolicy(DDGT) = %v, %v", p, err)
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Error("ParsePolicy(bogus) must fail")
	}
	if h, err := ParseHeuristic(""); err != nil || h != sched.PrefClus {
		t.Errorf("ParseHeuristic(empty) = %v, %v", h, err)
	}
	if _, err := ParseHeuristic("x"); err == nil {
		t.Error("ParseHeuristic(x) must fail")
	}
	if cfg, err := NamedConfig(""); err != nil || cfg != arch.Default() {
		t.Errorf("NamedConfig(empty) = %+v, %v", cfg, err)
	}
	if _, err := NamedConfig("x"); err == nil {
		t.Error("NamedConfig(x) must fail")
	}
	if l, err := ParseLayout("replicated"); err != nil || l != arch.LayoutReplicated {
		t.Errorf("ParseLayout(replicated) = %v, %v", l, err)
	}
	if _, err := ParseLayout("x"); err == nil {
		t.Error("ParseLayout(x) must fail")
	}
}

func TestErrorFor(t *testing.T) {
	cases := []struct {
		err    error
		status int
		code   string
	}{
		{fmt.Errorf("wrap: %w", mediabench.ErrUnknownBenchmark), http.StatusNotFound, CodeUnknownBenchmark},
		{fmt.Errorf("wrap: %w", sched.ErrInfeasible), http.StatusUnprocessableEntity, CodeInfeasibleSchedule},
		{context.DeadlineExceeded, http.StatusGatewayTimeout, CodeDeadlineExceeded},
		{errors.New("boom"), http.StatusInternalServerError, CodeInternal},
	}
	for _, c := range cases {
		status, resp := ErrorFor(c.err)
		if status != c.status || resp.Code != c.code {
			t.Errorf("ErrorFor(%v) = %d/%s, want %d/%s", c.err, status, resp.Code, c.status, c.code)
		}
	}

	// A PipelineError wrapping ErrInfeasible keeps the infeasible code
	// and gains location details.
	pe := &experiments.PipelineError{
		Bench: "pgpdec", Loop: "main",
		Variant: experiments.MDCPrefClus, Stage: "schedule",
		Err: fmt.Errorf("sched: %w", sched.ErrInfeasible),
	}
	status, resp := ErrorFor(pe)
	if status != http.StatusUnprocessableEntity || resp.Code != CodeInfeasibleSchedule {
		t.Errorf("pipeline infeasible = %d/%s", status, resp.Code)
	}
	if resp.Details["stage"] != "schedule" || resp.Details["bench"] != "pgpdec" {
		t.Errorf("details = %v", resp.Details)
	}

	// A PipelineError wrapping an unclassified error becomes a typed
	// pipeline failure, not an internal error.
	pe.Err = errors.New("weird")
	status, resp = ErrorFor(pe)
	if status != http.StatusUnprocessableEntity || resp.Code != CodePipelineFailure {
		t.Errorf("pipeline failure = %d/%s", status, resp.Code)
	}

	if StatusOf("no_such_code") != http.StatusInternalServerError {
		t.Error("unknown codes must map to 500")
	}
}
