package apiv1

import (
	"encoding/json"
	"strings"
	"testing"

	"vliwcache/internal/sched"
	"vliwcache/internal/sim"
)

// TestLegacyBodiesDecodeUnchanged proves the Options unification is
// invisible to existing clients: request bodies written against the
// pre-unification flat schema (every knob a top-level field) decode
// into the embedded Options exactly as they decoded into the old
// per-request copies.
func TestLegacyBodiesDecodeUnchanged(t *testing.T) {
	scheduleBody := `{
		"loop": {"name":"daxpy"},
		"policy": "mdc",
		"heuristic": "mincoms",
		"config": "nobal+mem",
		"maxIterations": 500,
		"maxEntries": 2,
		"checkCoherence": true,
		"faultSeed": 7,
		"fastPath": true,
		"includeSchedule": true,
		"deadlineMillis": 1500,
		"scheduler": "oracle"
	}`
	var sr ScheduleRequest
	if err := json.Unmarshal([]byte(scheduleBody), &sr); err != nil {
		t.Fatal(err)
	}
	if sr.MaxIterations != 500 || sr.MaxEntries != 2 || !sr.CheckCoherence ||
		sr.FaultSeed != 7 || !sr.FastPath || sr.DeadlineMillis != 1500 ||
		sr.Scheduler != "oracle" || !sr.IncludeSchedule || sr.Policy != "mdc" {
		t.Errorf("legacy schedule body decoded wrong: %+v", sr)
	}

	suiteBody := `{
		"benches": ["rasta"],
		"variants": [{"policy":"mdc","heuristic":"prefclus"}],
		"maxIterations": 100,
		"fastPath": true,
		"portfolio": ["prefclus-height","mincoms-slack"],
		"arch": {"numClusters": 2}
	}`
	var su SuiteRequest
	if err := json.Unmarshal([]byte(suiteBody), &su); err != nil {
		t.Fatal(err)
	}
	if su.MaxIterations != 100 || !su.FastPath ||
		len(su.Portfolio) != 2 || su.Portfolio[1] != "mincoms-slack" ||
		su.Arch == nil || su.Arch.NumClusters == nil || *su.Arch.NumClusters != 2 {
		t.Errorf("legacy suite body decoded wrong: %+v", su)
	}
}

// TestRequestFieldOrder freezes the canonical marshal order of the
// unified request schema. Decode never depends on order, but tooling
// that round-trips requests (the router's job store, paperload's
// request log) should emit one stable spelling.
func TestRequestFieldOrder(t *testing.T) {
	two := 2
	sched := ScheduleRequest{
		Loop:      json.RawMessage(`{"name":"l"}`),
		Policy:    "mdc",
		Heuristic: "mincoms",
		Options: Options{
			MaxIterations: 5,
			FastPath:      true,
			Scheduler:     "oracle",
			Arch:          &Arch{NumClusters: &two},
		},
		IncludeSchedule: true,
	}
	b, err := json.Marshal(sched)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"loop":{"name":"l"},"policy":"mdc","heuristic":"mincoms",` +
		`"maxIterations":5,"fastPath":true,"scheduler":"oracle",` +
		`"arch":{"numClusters":2},"includeSchedule":true}`
	if string(b) != want {
		t.Errorf("schedule request order drifted:\n got %s\nwant %s", b, want)
	}

	cell := CellRequest{
		Bench:   "rasta",
		Policy:  "mdc",
		Options: Options{MaxIterations: 5, FaultSeed: 3},
	}
	b, err = json.Marshal(cell)
	if err != nil {
		t.Fatal(err)
	}
	want = `{"bench":"rasta","policy":"mdc","maxIterations":5,"faultSeed":3}`
	if string(b) != want {
		t.Errorf("cell request order drifted:\n got %s\nwant %s", b, want)
	}
}

func TestOptionsSchedulerLabel(t *testing.T) {
	if label, err := (&Options{}).SchedulerLabel(); err != nil || label != "" {
		t.Errorf("empty options = %q, %v; want frozen path", label, err)
	}
	if label, err := (&Options{Scheduler: "oracle"}).SchedulerLabel(); err != nil || label != "oracle" {
		t.Errorf("named = %q, %v", label, err)
	}
	if _, err := (&Options{Scheduler: "bogus"}).SchedulerLabel(); err == nil {
		t.Error("unknown scheduler must fail")
	}
	if _, err := (&Options{Scheduler: "oracle", Portfolio: []string{"oracle"}}).SchedulerLabel(); err == nil {
		t.Error("scheduler+portfolio must be mutually exclusive")
	}
	names := sched.Names()
	if len(names) >= 2 {
		label, err := (&Options{Portfolio: names[:2]}).SchedulerLabel()
		if err != nil || !strings.HasPrefix(label, "portfolio(") {
			t.Errorf("portfolio = %q, %v", label, err)
		}
	}
}

// TestSimOptionsKey pins the cache-key fragment format: changing it
// silently invalidates (or worse, aliases) every cached result.
func TestSimOptionsKey(t *testing.T) {
	got := SimOptionsKey(sim.Options{MaxIterations: 25, MaxEntries: 2, CheckCoherence: true}, 7)
	want := "maxIters=25 maxEntries=2 coherence=true seed=7"
	if got != want {
		t.Errorf("key = %q, want %q", got, want)
	}
	got = SimOptionsKey(sim.Options{FastPath: true}, 0)
	want = "maxIters=0 maxEntries=0 coherence=false seed=0 fast=true"
	if got != want {
		t.Errorf("fast key = %q, want %q", got, want)
	}
}
