package apiv1

// HealthResponse is the body of GET /healthz on every node of the
// serving tier. The first three fields are the frozen single-node
// shape from PR 5; Role and Peers joined with the cluster tier and are
// omitted when empty, so single-node bytes are unchanged.
type HealthResponse struct {
	// Status is "ok" (serving) or "draining".
	Status string `json:"status"`
	// Draining reports whether shutdown has begun.
	Draining bool `json:"draining"`
	// UptimeMillis is the node's uptime.
	UptimeMillis int64 `json:"uptimeMillis"`
	// Role is "worker" or "router" in a cluster deployment.
	Role string `json:"role,omitempty"`
	// Peers is this node's last-polled view of its peers (a worker's
	// fellow workers, a router's workers), so a rolling restart can
	// watch the whole tier from any node.
	Peers []PeerStatus `json:"peers,omitempty"`
}

// Peer states as seen by a poller.
const (
	PeerServing     = "serving"
	PeerDraining    = "draining"
	PeerUnreachable = "unreachable"
)

// PeerStatus is one peer's last-polled health.
type PeerStatus struct {
	// URL is the peer's base URL.
	URL string `json:"url"`
	// Status is "serving", "draining" or "unreachable".
	Status string `json:"status"`
	// Error is the poll failure (unreachable only).
	Error string `json:"error,omitempty"`
}
