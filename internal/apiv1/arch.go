package apiv1

import (
	"errors"
	"fmt"
	"strings"

	"vliwcache/internal/arch"
)

// Structured architecture descriptions on the wire. The legacy `config`
// field names one of three frozen machine shapes; the `arch` object opens
// every arch.Config dial to clients. Every field is optional — an omitted
// field inherits the base configuration (the named config, or Table 2) —
// so the empty object is exactly the legacy behavior and old request
// bytes keep their meaning and their cache addresses.

// ErrInvalidArch marks a structured arch override whose resulting
// geometry fails arch.Validate — the typed 422 invalid_arch case.
var ErrInvalidArch = errors.New("invalid arch")

// Arch is the wire form of arch.Config. All fields are pointers: nil
// inherits the base value, a present value overrides it. Field order is
// frozen like every other v1 type.
type Arch struct {
	// Layout: "interleaved" or "replicated".
	Layout           *string `json:"layout,omitempty"`
	NumClusters      *int    `json:"numClusters,omitempty"`
	IntUnits         *int    `json:"intUnits,omitempty"`
	FPUnits          *int    `json:"fpUnits,omitempty"`
	MemUnits         *int    `json:"memUnits,omitempty"`
	CacheBytes       *int    `json:"cacheBytes,omitempty"`
	BlockBytes       *int    `json:"blockBytes,omitempty"`
	CacheAssoc       *int    `json:"cacheAssoc,omitempty"`
	InterleaveBytes  *int    `json:"interleaveBytes,omitempty"`
	CacheHitLatency  *int    `json:"cacheHitLatency,omitempty"`
	RegBuses         *int    `json:"regBuses,omitempty"`
	RegBusLatency    *int    `json:"regBusLatency,omitempty"`
	MemBuses         *int    `json:"memBuses,omitempty"`
	MemBusLatency    *int    `json:"memBusLatency,omitempty"`
	NextLevelLatency *int    `json:"nextLevelLatency,omitempty"`
	NextLevelPorts   *int    `json:"nextLevelPorts,omitempty"`
	ABEntries        *int    `json:"abEntries,omitempty"`
	ABAssoc          *int    `json:"abAssoc,omitempty"`
}

func override(dst *int, src *int) {
	if src != nil {
		*dst = *src
	}
}

// Apply overlays the present fields onto base and validates the result.
// A geometry rejected by arch.Validate comes back wrapping ErrInvalidArch
// so the serving layer can map it to the typed 422 invalid_arch error.
func (a *Arch) Apply(base arch.Config) (arch.Config, error) {
	cfg := base
	if a == nil {
		return cfg, nil
	}
	if a.Layout != nil {
		l, err := ParseLayout(*a.Layout)
		if err != nil {
			return arch.Config{}, fmt.Errorf("%w: %v", ErrInvalidArch, err)
		}
		cfg.Layout = l
	}
	override(&cfg.NumClusters, a.NumClusters)
	override(&cfg.IntUnits, a.IntUnits)
	override(&cfg.FPUnits, a.FPUnits)
	override(&cfg.MemUnits, a.MemUnits)
	override(&cfg.CacheBytes, a.CacheBytes)
	override(&cfg.BlockBytes, a.BlockBytes)
	override(&cfg.CacheAssoc, a.CacheAssoc)
	override(&cfg.InterleaveBytes, a.InterleaveBytes)
	override(&cfg.CacheHitLatency, a.CacheHitLatency)
	override(&cfg.RegBuses, a.RegBuses)
	override(&cfg.RegBusLatency, a.RegBusLatency)
	override(&cfg.MemBuses, a.MemBuses)
	override(&cfg.MemBusLatency, a.MemBusLatency)
	override(&cfg.NextLevelLatency, a.NextLevelLatency)
	override(&cfg.NextLevelPorts, a.NextLevelPorts)
	override(&cfg.ABEntries, a.ABEntries)
	override(&cfg.ABAssoc, a.ABAssoc)
	if cfg.ABEntries > 0 && cfg.ABAssoc < 1 && a.ABAssoc == nil {
		// Enabling ABs through the wire without naming an associativity
		// gets the paper's 2-way default, mirroring WithAttractionBuffers.
		cfg.ABAssoc = 2
	}
	if err := cfg.Validate(); err != nil {
		return arch.Config{}, fmt.Errorf("%w: %v", ErrInvalidArch, err)
	}
	return cfg, nil
}

// ArchKey renders the canonical cache-key encoding of a configuration:
// every arch.Config field in declaration order, independent of which
// request fields produced it. Two requests resolving to the same machine
// share one cache entry; the encoding never changes once shipped.
func ArchKey(c arch.Config) string {
	layout := "interleaved"
	if c.Replicated() {
		layout = "replicated"
	}
	return fmt.Sprintf(
		"layout=%s,nc=%d,int=%d,fp=%d,mem=%d,cache=%d,block=%d,assoc=%d,il=%d,hit=%d,rb=%d,rbl=%d,mb=%d,mbl=%d,nll=%d,nlp=%d,ab=%d,aba=%d",
		layout, c.NumClusters, c.IntUnits, c.FPUnits, c.MemUnits,
		c.CacheBytes, c.BlockBytes, c.CacheAssoc, c.InterleaveBytes,
		c.CacheHitLatency, c.RegBuses, c.RegBusLatency, c.MemBuses,
		c.MemBusLatency, c.NextLevelLatency, c.NextLevelPorts,
		c.ABEntries, c.ABAssoc)
}

// ArchOf renders a configuration as a fully-specified wire object:
// every field present, so applying it to any base reproduces c exactly.
func ArchOf(c arch.Config) Arch {
	layout := "interleaved"
	if c.Replicated() {
		layout = "replicated"
	}
	p := func(v int) *int { return &v }
	return Arch{
		Layout:           &layout,
		NumClusters:      p(c.NumClusters),
		IntUnits:         p(c.IntUnits),
		FPUnits:          p(c.FPUnits),
		MemUnits:         p(c.MemUnits),
		CacheBytes:       p(c.CacheBytes),
		BlockBytes:       p(c.BlockBytes),
		CacheAssoc:       p(c.CacheAssoc),
		InterleaveBytes:  p(c.InterleaveBytes),
		CacheHitLatency:  p(c.CacheHitLatency),
		RegBuses:         p(c.RegBuses),
		RegBusLatency:    p(c.RegBusLatency),
		MemBuses:         p(c.MemBuses),
		MemBusLatency:    p(c.MemBusLatency),
		NextLevelLatency: p(c.NextLevelLatency),
		NextLevelPorts:   p(c.NextLevelPorts),
		ABEntries:        p(c.ABEntries),
		ABAssoc:          p(c.ABAssoc),
	}
}

// ArchPoint is one entry of the GET /v1/archspace listing: a named grid
// point, its canonical cache-key encoding, and the fully-specified arch
// object a client can echo back on /v1/schedule or /v1/suite.
type ArchPoint struct {
	Name string `json:"name"`
	Key  string `json:"key"`
	Arch Arch   `json:"arch"`
}

// ArchSpaceResponse is the body of GET /v1/archspace.
type ArchSpaceResponse struct {
	Points []ArchPoint `json:"points"`
}

// NamedConfig maps a wire config name onto a machine description. The
// empty string defaults to the paper's Table 2 configuration. This is the
// replacement for the deprecated ParseConfig spelling.
func NamedConfig(name string) (arch.Config, error) {
	switch strings.ToLower(name) {
	case "", "default":
		return arch.Default(), nil
	case "nobal+mem":
		return arch.NobalMem(), nil
	case "nobal+reg":
		return arch.NobalReg(), nil
	}
	return arch.Config{}, fmt.Errorf("unknown config %q (want default, nobal+mem or nobal+reg)", name)
}
