package apiv1

import (
	"encoding/json"
	"testing"
)

// TestJobStatusFieldOrder freezes the JobStatus wire order; the SSE
// stream and the poll route must emit identical bytes for the same
// snapshot.
func TestJobStatusFieldOrder(t *testing.T) {
	s := JobStatus{
		ID: "job-1", Kind: "suite", State: JobRunning,
		CellsTotal: 28, CellsDone: 7, CellsFromCache: 2, CellsDegraded: 1,
	}
	want := `{"id":"job-1","kind":"suite","state":"running",` +
		`"cellsTotal":28,"cellsDone":7,"cellsFromCache":2,"cellsDegraded":1}`
	if got := string(MarshalStatus(s)); got != want {
		t.Errorf("status order drifted:\n got %s\nwant %s", got, want)
	}
	s.State = JobFailed
	s.Error = "boom"
	if got := string(MarshalStatus(s)); got == want {
		t.Error("error field must render on failed jobs")
	}
}

func TestJobStatusTerminal(t *testing.T) {
	for state, terminal := range map[string]bool{
		JobQueued: false, JobRunning: false, JobDone: true, JobFailed: true,
	} {
		s := JobStatus{State: state}
		if s.Terminal() != terminal {
			t.Errorf("Terminal(%s) = %v", state, s.Terminal())
		}
	}
}

// TestSweepCellFieldOrder proves a SweepCell marshals as the point key
// followed by the embedded SuiteCell's fields in place — the property
// the router exploits to assemble sweep artifacts from worker cell
// bytes by concatenation.
func TestSweepCellFieldOrder(t *testing.T) {
	inner := SuiteCell{
		Bench: "rasta", Policy: "mdc", Heuristic: "prefclus",
		Loops: []LoopRun{},
	}
	innerB, err := json.Marshal(inner)
	if err != nil {
		t.Fatal(err)
	}
	outer := SweepCell{Point: "p1", SuiteCell: inner}
	outerB, err := json.Marshal(outer)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"point":"p1",` + string(innerB[1:])
	if string(outerB) != want {
		t.Errorf("sweep cell bytes:\n got %s\nwant %s", outerB, want)
	}
}

func TestJobRequestRoundTrip(t *testing.T) {
	req := JobRequest{
		Sweep: &SweepRequest{
			Points:   []Arch{{}},
			Benches:  []string{"rasta"},
			Variants: []Variant{{Policy: "mdc", Heuristic: "prefclus"}},
			Options:  Options{MaxIterations: 5, FastPath: true},
		},
	}
	first, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	var back JobRequest
	if err := json.Unmarshal(first, &back); err != nil {
		t.Fatal(err)
	}
	second, err := json.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if string(first) != string(second) {
		t.Errorf("round trip not byte-identical:\n%s\n%s", first, second)
	}
	if back.Suite != nil || back.Sweep == nil || back.Sweep.MaxIterations != 5 {
		t.Errorf("round trip changed value: %+v", back)
	}
}
