package apiv1

import (
	"bytes"
	"errors"
	"fmt"
	"strings"

	"vliwcache/internal/arch"
	"vliwcache/internal/experiments"
	"vliwcache/internal/ir"
	"vliwcache/internal/mediabench"
	"vliwcache/internal/resultcache"
	"vliwcache/internal/sched"
	"vliwcache/internal/sim"
)

// Request resolution: validating a wire request against the internal
// types and deriving its canonical content address. This used to be
// private to internal/server; the cluster router needs the exact same
// derivation — the content address doubles as the consistent-hash shard
// key, so router and worker MUST agree byte-for-byte on it, which is
// why both call this one implementation.

// ResolvedSchedule is a validated ScheduleRequest bound to internal
// types, plus the request's content address.
type ResolvedSchedule struct {
	Loop            *ir.Loop
	Variant         experiments.Variant
	Config          arch.Config
	Sim             sim.Options
	Seed            int64
	IncludeSchedule bool
	DeadlineMillis  int64
	Portfolio       []string
	// SchedulerLabel is the response Scheduler field ("" = frozen path).
	SchedulerLabel string
	// Key is the content address: the SHA-256 of every input that
	// determines the response bytes.
	Key string
}

// ResolvedCell is a validated CellRequest bound to internal types, plus
// the cell's content address (the cluster tier's shard key).
type ResolvedCell struct {
	Bench          string
	Variant        experiments.Variant
	Config         arch.Config
	Sim            sim.Options
	Seed           int64
	DeadlineMillis int64
	Portfolio      []string
	SchedulerLabel string
	Key            string
}

func badResolve(format string, args ...any) *ErrorResponse {
	return &ErrorResponse{Code: CodeBadRequest, Message: fmt.Sprintf(format, args...)}
}

// SchedulerErrorResponse maps a scheduler-selection validation failure
// onto the wire taxonomy: unknown registry names are the typed 422,
// anything else (mutually exclusive fields) is a plain bad request.
func SchedulerErrorResponse(err error) *ErrorResponse {
	code := CodeBadRequest
	if errors.Is(err, sched.ErrUnknownScheduler) {
		code = CodeUnknownScheduler
	}
	return &ErrorResponse{Code: code, Message: err.Error()}
}

// ResolveSchedule validates a ScheduleRequest against base (the serving
// tier's machine description) and derives its cache key under the route
// namespace ns. The loop is canonicalized — decoded and
// deterministically re-encoded — so formatting differences between
// equivalent request bodies address the same cache entry.
func ResolveSchedule(ns string, base arch.Config, req *ScheduleRequest) (*ResolvedSchedule, *ErrorResponse) {
	if len(req.Loop) == 0 || string(bytes.TrimSpace(req.Loop)) == "null" {
		return nil, badResolve("missing loop")
	}
	loop, err := ir.DecodeJSON(req.Loop)
	if err != nil {
		return nil, badResolve("invalid loop: %v", err)
	}
	if loop.Name == "" || len(loop.Ops) == 0 {
		return nil, badResolve("loop must have a name and at least one op")
	}
	canonical, err := ir.EncodeJSON(loop)
	if err != nil {
		return nil, badResolve("canonicalizing loop: %v", err)
	}
	policy, err := ParsePolicy(req.Policy)
	if err != nil {
		return nil, badResolve("%v", err)
	}
	heuristic, err := ParseHeuristic(req.Heuristic)
	if err != nil {
		return nil, badResolve("%v", err)
	}
	schedLabel, err := req.SchedulerLabel()
	if err != nil {
		return nil, SchedulerErrorResponse(err)
	}
	cfg := base
	if req.Config != "" {
		cfg, err = NamedConfig(req.Config)
		if err != nil {
			return nil, badResolve("%v", err)
		}
	}
	layout, err := ParseLayout(req.Layout)
	if err != nil {
		return nil, badResolve("%v", err)
	}
	// Legacy requests always get the layout fold-in (empty = interleaved,
	// byte-for-byte the frozen behavior). With a structured arch present
	// the legacy field applies only when explicitly set, so an omitted
	// layout inherits from the base and the arch object.
	if req.Layout != "" || req.Arch == nil {
		cfg = cfg.WithLayout(layout)
	}
	if req.Arch != nil {
		cfg, err = req.Arch.Apply(cfg)
		if err != nil {
			return nil, &ErrorResponse{Code: CodeInvalidArch, Message: err.Error()}
		}
	}
	if req.ABEntries < 0 {
		return nil, badResolve("abEntries must be >= 0")
	}
	if req.ABEntries > 0 {
		cfg = cfg.WithAttractionBuffers(req.ABEntries)
	}
	if req.Arch != nil {
		// The legacy layout/AB folds can break a validated arch override
		// (e.g. Attraction Buffers on a replicated layout); re-validate so
		// structured requests never reach the simulator invalid.
		if verr := cfg.Validate(); verr != nil {
			return nil, &ErrorResponse{Code: CodeInvalidArch, Message: verr.Error()}
		}
	}
	if req.MaxIterations < 0 || req.MaxEntries < 0 {
		return nil, badResolve("iteration caps must be >= 0")
	}
	opts := req.SimOptions()
	res := &ResolvedSchedule{
		Loop:            loop,
		Variant:         experiments.Variant{Policy: policy, Heuristic: heuristic, Scheduler: req.Scheduler},
		Config:          cfg,
		Sim:             opts,
		Seed:            req.FaultSeed,
		IncludeSchedule: req.IncludeSchedule,
		DeadlineMillis:  req.DeadlineMillis,
		Portfolio:       req.Portfolio,
		SchedulerLabel:  schedLabel,
	}
	parts := []string{
		ns,
		string(canonical),
		policy.String(),
		heuristic.String(),
		fmt.Sprintf("%+v", cfg),
		SimOptionsKey(opts, req.FaultSeed),
		fmt.Sprintf("schedule=%t", req.IncludeSchedule),
	}
	res.Key = resultcache.Key(append(parts, optionKeyParts(&req.Options, cfg)...)...)
	return res, nil
}

// ResolveCell validates a CellRequest against base and derives the
// cell's content address. A suite or sweep decomposes into exactly
// these cells; the address is both the worker's cache key and the
// router's shard key, so an identical cell always lands on the node
// that owns its cache entry.
func ResolveCell(base arch.Config, req *CellRequest) (*ResolvedCell, *ErrorResponse) {
	if req.Bench == "" {
		return nil, badResolve("missing bench")
	}
	if _, err := mediabench.Get(req.Bench); err != nil {
		_, eresp := ErrorFor(err)
		return nil, &eresp
	}
	policy, err := ParsePolicy(req.Policy)
	if err != nil {
		return nil, badResolve("%v", err)
	}
	heuristic, err := ParseHeuristic(req.Heuristic)
	if err != nil {
		return nil, badResolve("%v", err)
	}
	schedLabel, err := req.SchedulerLabel()
	if err != nil {
		return nil, SchedulerErrorResponse(err)
	}
	cfg := base
	if req.Arch != nil {
		cfg, err = req.Arch.Apply(base)
		if err != nil {
			return nil, &ErrorResponse{Code: CodeInvalidArch, Message: err.Error()}
		}
	}
	if req.MaxIterations < 0 || req.MaxEntries < 0 {
		return nil, badResolve("iteration caps must be >= 0")
	}
	opts := req.SimOptions()
	res := &ResolvedCell{
		Bench:          req.Bench,
		Variant:        experiments.Variant{Policy: policy, Heuristic: heuristic},
		Config:         cfg,
		Sim:            opts,
		Seed:           req.FaultSeed,
		DeadlineMillis: req.DeadlineMillis,
		Portfolio:      req.Portfolio,
		SchedulerLabel: schedLabel,
	}
	parts := []string{
		"/v1/cell",
		req.Bench,
		policy.String(),
		heuristic.String(),
		fmt.Sprintf("%+v", cfg),
		SimOptionsKey(opts, req.FaultSeed),
	}
	res.Key = resultcache.Key(append(parts, optionKeyParts(&req.Options, cfg)...)...)
	return res, nil
}

// optionKeyParts renders the key components of the unified option block
// that join a cache address only when present, so legacy requests keep
// their pre-existing addresses.
func optionKeyParts(o *Options, resolved arch.Config) []string {
	var parts []string
	if o.Scheduler != "" {
		parts = append(parts, "scheduler="+o.Scheduler)
	}
	if len(o.Portfolio) > 0 {
		parts = append(parts, "portfolio="+strings.Join(o.Portfolio, "+"))
	}
	// Structured arch requests key on the canonical field-order encoding
	// of the resolved machine: two spellings of one machine share a cache
	// entry, and legacy requests (no arch object) keep their addresses.
	if o.Arch != nil {
		parts = append(parts, "arch="+ArchKey(resolved))
	}
	return parts
}
