// Deprecated v1 spellings, collected in one place like the facade's
// deprecated.go. The symbols keep working forever (v1 never breaks),
// but new code must use the replacements; `make check-deprecated`
// rejects fresh call sites outside this file and its tests.
package apiv1

import (
	"vliwcache/internal/arch"
)

// ParseConfig maps a wire config name onto a machine description. The
// empty string defaults to the paper's Table 2 configuration.
//
// Deprecated: ParseConfig is the name-only spelling of machine selection;
// use NamedConfig for the three frozen names and Arch.Apply for
// structured overrides.
func ParseConfig(name string) (arch.Config, error) {
	return NamedConfig(name)
}

// ValidateSchedulers checks a scheduler/portfolio selection and returns
// its response label (see Options.SchedulerLabel).
//
// Deprecated: ValidateSchedulers is the loose-argument spelling from the
// per-request option era; requests now embed the unified Options block —
// use Options.SchedulerLabel, which validates the same selection from
// the request itself.
func ValidateSchedulers(scheduler string, portfolio []string) (string, error) {
	o := Options{Scheduler: scheduler, Portfolio: portfolio}
	return o.SchedulerLabel()
}
