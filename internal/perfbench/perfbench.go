// Package perfbench defines the committed performance-baseline schema for
// the simulator's hot path and the comparison logic of the regression
// gate. The baseline (BENCH_sim.json at the repository root) records, per
// benchmark, the ns/op, allocs/op, B/op and cells/sec measured on the
// machine that refreshed it; `make bench-check` re-measures and fails when
// ns/op regresses beyond the tolerance or the steady state allocates.
//
// This package holds only the schema and arithmetic — measurement lives in
// the repository's _test.go files (testing.Benchmark), keeping the
// "testing" package out of non-test binaries that link the facade.
package perfbench

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Schema is the current baseline file schema version. Version 2 added
// cells_per_sec to every grid-shaped benchmark (schema 1 recorded it only
// for PooledGrid); the field itself decodes identically, so Load accepts
// both versions.
const Schema = 2

// minSchema is the oldest baseline file version Load still accepts.
const minSchema = 1

// DefaultTolerance is the relative ns/op regression the gate accepts
// before failing (10%), absorbing run-to-run noise on a quiet host.
const DefaultTolerance = 0.10

// Metric is one benchmark's recorded performance.
type Metric struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	// CellsPerSec is the paper-grid throughput in experiment cells per
	// second, recorded for benchmarks that run whole cells (0 otherwise).
	CellsPerSec float64 `json:"cells_per_sec,omitempty"`
}

// Baseline is the committed performance baseline.
type Baseline struct {
	Schema     int               `json:"schema"`
	GitSHA     string            `json:"git_sha"`
	Date       string            `json:"date"` // RFC 3339, UTC
	GoVersion  string            `json:"go_version"`
	Benchmarks map[string]Metric `json:"benchmarks"`
}

// Load reads and validates a baseline file.
func Load(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("perfbench: %w", err)
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("perfbench: %s: %w", path, err)
	}
	if b.Schema < minSchema || b.Schema > Schema {
		return nil, fmt.Errorf("perfbench: %s: schema %d, want %d..%d", path, b.Schema, minSchema, Schema)
	}
	if len(b.Benchmarks) == 0 {
		return nil, fmt.Errorf("perfbench: %s: no benchmarks recorded", path)
	}
	return &b, nil
}

// Write serializes the baseline deterministically (sorted keys, indented)
// so refreshes produce minimal diffs.
func (b *Baseline) Write(path string) error {
	b.Schema = Schema
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return fmt.Errorf("perfbench: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Regression is one gate violation found by Compare.
type Regression struct {
	Benchmark string  // benchmark name
	Field     string  // "ns_per_op", "allocs_per_op", or "missing"
	Base      float64 // recorded value
	Got       float64 // measured value
}

func (r Regression) String() string {
	if r.Field == "missing" {
		return fmt.Sprintf("%s: recorded in the baseline but not measured", r.Benchmark)
	}
	return fmt.Sprintf("%s: %s regressed %.0f -> %.0f (%+.1f%%)",
		r.Benchmark, r.Field, r.Base, r.Got, 100*(r.Got-r.Base)/r.Base)
}

// Compare checks measured results against a recorded baseline and returns
// every violation, sorted by benchmark name:
//
//   - a baseline benchmark that was not measured ("missing");
//   - ns/op above base × (1 + tolerance);
//   - allocs/op above zero when the baseline records zero (the
//     steady-state benchmarks pin the allocation-free contract exactly),
//     or above base × (1 + tolerance) otherwise (benchmarks that
//     inherently allocate see a few counts of run-to-run jitter from
//     background goroutines).
//
// Benchmarks measured but not recorded are ignored: adding a benchmark
// must not fail the gate until the baseline is refreshed.
func Compare(base, got *Baseline, tolerance float64) []Regression {
	if tolerance <= 0 {
		tolerance = DefaultTolerance
	}
	var regs []Regression
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		b := base.Benchmarks[name]
		g, ok := got.Benchmarks[name]
		if !ok {
			regs = append(regs, Regression{Benchmark: name, Field: "missing"})
			continue
		}
		if b.NsPerOp > 0 && g.NsPerOp > b.NsPerOp*(1+tolerance) {
			regs = append(regs, Regression{Benchmark: name, Field: "ns_per_op", Base: b.NsPerOp, Got: g.NsPerOp})
		}
		allocBudget := b.AllocsPerOp * (1 + tolerance) // 0 stays exactly 0
		if g.AllocsPerOp > allocBudget {
			regs = append(regs, Regression{Benchmark: name, Field: "allocs_per_op", Base: b.AllocsPerOp, Got: g.AllocsPerOp})
		}
	}
	return regs
}
