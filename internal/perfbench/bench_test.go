package perfbench

// Measurement side of the perf-regression harness. The benchmarks here
// cover the simulator hot path the PR optimizes:
//
//   - RunnerSteadyState: a pooled machine re-running one schedule — the
//     allocation-free steady state (the gate pins allocs/op to 0);
//   - RunnerCoherence: the same with the coherence checker on (epoch
//     tables + record sorting included, still 0 allocs);
//   - ColdRun: sim.Run building a machine from scratch each time — the
//     construction cost pooling avoids;
//   - PooledGrid: a small paper grid through an experiments.Suite with a
//     machine pool, reported as cells/sec;
//   - SweepGrid: a small archspace design-space sweep through
//     experiments.Sweep, reported as cells/sec.
//
// `go test -bench . ./internal/perfbench` just measures. REFRESH_BENCH=1
// rewrites the committed baseline (BENCH_sim.json at the repository
// root); BENCH_CHECK=1 measures and fails on regression (`make
// bench-check`).

import (
	"context"
	"math"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"testing"
	"time"

	"vliwcache/internal/arch"
	"vliwcache/internal/archspace"
	"vliwcache/internal/core"
	"vliwcache/internal/experiments"
	"vliwcache/internal/mediabench"
	"vliwcache/internal/profiler"
	"vliwcache/internal/sched"
	"vliwcache/internal/sim"
)

// baselinePath locates the committed baseline from this package directory.
const baselinePath = "../../BENCH_sim.json"

var benchOpts = sim.Options{MaxIterations: 300, MaxEntries: 1}

// hotSchedule builds the same schedule BenchmarkSimulator times: the
// first gsmdec loop under MDC + PrefClus.
func hotSchedule(tb testing.TB) *sched.Schedule {
	tb.Helper()
	bench, err := mediabench.Get("gsmdec")
	if err != nil {
		tb.Fatal(err)
	}
	loop := bench.Loops[0]
	cfg := arch.Default().WithInterleave(bench.Interleave)
	plan, err := core.Prepare(loop, core.PolicyMDC, cfg.NumClusters)
	if err != nil {
		tb.Fatal(err)
	}
	sc, err := sched.Run(plan, sched.Options{Arch: cfg, Heuristic: sched.PrefClus, Profile: profiler.Run(loop, cfg)})
	if err != nil {
		tb.Fatal(err)
	}
	return sc
}

func runnerBench(tb testing.TB, opts sim.Options) func(b *testing.B) {
	sc := hotSchedule(tb)
	r, err := sim.NewRunner(sc, opts)
	if err != nil {
		tb.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 2; i++ { // warm: grow tables and rings off the timer
		if _, err := r.Run(ctx); err != nil {
			tb.Fatal(err)
		}
	}
	return func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := r.Run(ctx); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkRunnerSteadyState(b *testing.B) { runnerBench(b, benchOpts)(b) }

func BenchmarkRunnerCoherence(b *testing.B) {
	opts := benchOpts
	opts.CheckCoherence = true
	runnerBench(b, opts)(b)
}

func BenchmarkColdRun(b *testing.B) {
	sc := hotSchedule(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(sc, benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

// gridCells is how many cells one PooledGrid iteration computes.
const gridCells = 6

// batchCells is how many schedules one SimGrid iteration simulates, and
// extTrip the stretched trip count that puts them deep in steady state —
// long enough that the fast path's detect + validate overhead amortizes
// into a >=10x throughput win over cycle-by-cycle simulation.
const (
	batchCells = 4
	extTrip    = 16000
)

// batchSchedules builds the SimGrid vehicle: the steady-state auxiliary
// loop of four benchmarks, trip-extended to extTrip, scheduled under
// MDC + PrefClus. The same schedules feed the slow and the fast variant,
// so the pair measures exactly the extrapolation win.
func batchSchedules(tb testing.TB) []*sched.Schedule {
	tb.Helper()
	scs := make([]*sched.Schedule, 0, batchCells)
	for _, name := range []string{"epicenc", "jpegdec", "jpegenc", "mpeg2dec"} {
		bench, err := mediabench.Get(name)
		if err != nil {
			tb.Fatal(err)
		}
		loop := *bench.Loops[1]
		loop.Trip = extTrip
		cfg := arch.Default().WithInterleave(bench.Interleave)
		plan, err := core.Prepare(&loop, core.PolicyMDC, cfg.NumClusters)
		if err != nil {
			tb.Fatal(err)
		}
		sc, err := sched.Run(plan, sched.Options{Arch: cfg, Heuristic: sched.PrefClus, Profile: profiler.Run(&loop, cfg)})
		if err != nil {
			tb.Fatal(err)
		}
		scs = append(scs, sc)
	}
	return scs
}

func simGridBench(tb testing.TB, fast bool) func(b *testing.B) {
	scs := batchSchedules(tb)
	opts := sim.Options{MaxEntries: 1, FastPath: fast}
	ctx := context.Background()
	return func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sim.RunBatch(ctx, scs, opts); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkSimGrid(b *testing.B)     { simGridBench(b, false)(b) }
func BenchmarkFastSimGrid(b *testing.B) { simGridBench(b, true)(b) }

func pooledGridOnce(tb testing.TB) {
	opts := sim.Options{MaxIterations: 120, MaxEntries: 1}
	s := experiments.NewSuite(arch.Default(),
		experiments.WithSimOptions(opts),
		experiments.WithParallelism(1),
		experiments.WithMachinePool(1))
	for _, bench := range []string{"epicdec", "gsmenc", "pgpdec"} {
		for _, v := range []experiments.Variant{experiments.MDCPrefClus, experiments.DDGTPrefClus} {
			if _, err := s.CellContext(context.Background(), bench, v); err != nil {
				tb.Fatal(err)
			}
		}
	}
}

func BenchmarkPooledGrid(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pooledGridOnce(b)
	}
}

// sweepCells is how many cells one SweepGrid iteration computes: the
// points × workloads × variants product of the benchmark grid below.
const sweepCells = 4

// sweepGridBench measures design-space-sweep throughput: a two-point
// archspace grid over two benchmarks through experiments.Sweep, sharing
// one machine pool so substrate reuse behaves as in the committed sweep.
func sweepGridBench(tb testing.TB) func(b *testing.B) {
	tb.Helper()
	grid := archspace.Grid{Base: arch.Default(), NumClusters: []int{2, 4}}
	points := grid.Points()
	var workloads []experiments.SweepWorkload
	for _, name := range []string{"epicdec", "gsmenc"} {
		bench, err := mediabench.Get(name)
		if err != nil {
			tb.Fatal(err)
		}
		workloads = append(workloads, experiments.SweepWorkload{Name: bench.Name, Source: "mediabench", Loops: bench.Loops})
	}
	opts := experiments.SweepOptions{
		Sim:         sim.Options{MaxIterations: 120, MaxEntries: 1},
		FastPath:    true,
		Parallelism: 1,
		Pool:        sim.NewPool(1),
	}
	ctx := context.Background()
	return func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := experiments.Sweep(ctx, points, workloads, opts); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkSweepGrid(b *testing.B) { sweepGridBench(b)(b) }

// TestSteadyStateAllocs pins the headline property outside benchmark
// runs: a warm pooled machine must not allocate, with and without the
// coherence checker. Always on — no env gate.
func TestSteadyStateAllocs(t *testing.T) {
	for _, check := range []bool{false, true} {
		opts := benchOpts
		opts.CheckCoherence = check
		sc := hotSchedule(t)
		r, err := sim.NewRunner(sc, opts)
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		for i := 0; i < 2; i++ {
			if _, err := r.Run(ctx); err != nil {
				t.Fatal(err)
			}
		}
		if n := testing.AllocsPerRun(5, func() {
			if _, err := r.Run(ctx); err != nil {
				t.Fatal(err)
			}
		}); n != 0 {
			t.Errorf("CheckCoherence=%v: %v allocs/op in steady state, want 0", check, n)
		}
	}
}

// measure runs every gate benchmark once through testing.Benchmark.
func measure(tb testing.TB) map[string]Metric {
	out := make(map[string]Metric)
	record := func(name string, fn func(b *testing.B), cells int) {
		r := testing.Benchmark(fn)
		m := Metric{
			NsPerOp:     float64(r.NsPerOp()),
			AllocsPerOp: float64(r.AllocsPerOp()),
			BytesPerOp:  float64(r.AllocedBytesPerOp()),
		}
		if cells > 0 && r.NsPerOp() > 0 {
			m.CellsPerSec = float64(cells) / (float64(r.NsPerOp()) * 1e-9)
		}
		out[name] = m
	}
	record("RunnerSteadyState", runnerBench(tb, benchOpts), 0)
	coh := benchOpts
	coh.CheckCoherence = true
	record("RunnerCoherence", runnerBench(tb, coh), 0)
	record("ColdRun", BenchmarkColdRun, 0)
	record("PooledGrid", BenchmarkPooledGrid, gridCells)
	record("SweepGrid", sweepGridBench(tb), sweepCells)
	record("SimGrid", simGridBench(tb, false), batchCells)
	record("FastSimGrid", simGridBench(tb, true), batchCells)
	return out
}

// TestBenchBaselineRefresh rewrites the committed baseline. Run it via
// `make bench-baseline` (REFRESH_BENCH=1) on a quiet machine.
func TestBenchBaselineRefresh(t *testing.T) {
	if os.Getenv("REFRESH_BENCH") == "" {
		t.Skip("set REFRESH_BENCH=1 (or run `make bench-baseline`) to rewrite BENCH_sim.json")
	}
	sha := "unknown"
	if out, err := exec.Command("git", "rev-parse", "HEAD").Output(); err == nil {
		sha = strings.TrimSpace(string(out))
	}
	b := &Baseline{
		GitSHA:     sha,
		Date:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		Benchmarks: measure(t),
	}
	if err := b.Write(baselinePath); err != nil {
		t.Fatal(err)
	}
	for name, m := range b.Benchmarks {
		t.Logf("%s: %.0f ns/op, %g allocs/op, %g B/op, %.2f cells/s",
			name, m.NsPerOp, m.AllocsPerOp, m.BytesPerOp, m.CellsPerSec)
	}
}

// TestBenchRegressionGate is the `make bench-check` gate: re-measure and
// fail when ns/op regresses more than the tolerance against the committed
// baseline, or when a steady-state benchmark allocates. Timing verdicts
// compare the componentwise best of several attempts and are skipped
// (with a diagnostic, mirroring the OBS_GUARD pattern) when the host
// can't resolve the tolerance:
//
//   - NOISY_HOST=1 forces the skip;
//   - an A/A probe noisier than the tolerance means back-to-back runs
//     already disagree by more than the gate measures;
//   - a uniform slowdown — even the *least*-affected timing benchmark
//     regressed — means the host drifted since the baseline (shared
//     tenancy, frequency scaling); a code regression shows up as one
//     benchmark slowing relative to the others.
//
// Alloc regressions always fail: allocation counts don't drift with host
// speed (zero-pinned benchmarks fail on any alloc; inherently allocating
// ones get the same relative tolerance, via Compare).
func TestBenchRegressionGate(t *testing.T) {
	if os.Getenv("BENCH_CHECK") == "" {
		t.Skip("set BENCH_CHECK=1 (or run `make bench-check`) to run the regression gate")
	}
	base, err := Load(baselinePath)
	if err != nil {
		t.Fatalf("no usable baseline: %v (run `make bench-baseline` to create one)", err)
	}

	const attempts = 3
	tol := DefaultTolerance
	best := make(map[string]Metric)
	var regs []Regression
	noise := 0.0
	for i := 0; i < attempts; i++ {
		for name, m := range measure(t) {
			b, ok := best[name]
			if !ok {
				best[name] = m
				continue
			}
			if m.NsPerOp < b.NsPerOp {
				b.NsPerOp = m.NsPerOp
			}
			if m.AllocsPerOp < b.AllocsPerOp {
				b.AllocsPerOp = m.AllocsPerOp
			}
			if m.BytesPerOp < b.BytesPerOp {
				b.BytesPerOp = m.BytesPerOp
			}
			best[name] = b
		}
		regs = Compare(base, &Baseline{Benchmarks: best}, tol)
		if len(regs) == 0 {
			return
		}
		// A/A noise of the cheapest hot benchmark, for the skip decision.
		a := testing.Benchmark(runnerBench(t, benchOpts)).NsPerOp()
		b := testing.Benchmark(runnerBench(t, benchOpts)).NsPerOp()
		noise = 2 * absf(float64(a)-float64(b)) / float64(a+b)
		t.Logf("attempt %d: %d regressions on best-of-%d, A/A noise %.1f%%", i+1, len(regs), i+1, 100*noise)
	}
	var speed, hard []Regression
	for _, r := range regs {
		if r.Field == "ns_per_op" {
			speed = append(speed, r)
		} else {
			hard = append(hard, r)
		}
	}
	for _, r := range hard {
		t.Errorf("bench gate: %s", r)
	}
	if len(speed) > 0 {
		drift := hostDrift(base, best)
		switch {
		case os.Getenv("NOISY_HOST") != "":
			t.Skipf("NOISY_HOST set; %d timing regressions unverified: %v", len(speed), speed)
		case noise > tol:
			t.Skipf("host too noisy to resolve the %.0f%% ns/op tolerance (A/A noise %.1f%%); "+
				"%d timing regressions unverified: %v", 100*tol, 100*noise, len(speed), speed)
		case drift > 1+tol/2:
			t.Skipf("every timing benchmark slowed in unison (min ratio %.2f) — host drift since "+
				"the baseline, not a code regression; %d timing regressions unverified: %v",
				drift, len(speed), speed)
		default:
			for _, r := range speed {
				t.Errorf("bench gate: %s", r)
			}
		}
	}
}

// hostDrift is the smallest measured/baseline ns ratio across timing
// benchmarks: above 1, even the least-affected benchmark slowed, which
// points at the host rather than any one code path.
func hostDrift(base *Baseline, got map[string]Metric) float64 {
	min := math.Inf(1)
	for name, b := range base.Benchmarks {
		g, ok := got[name]
		if !ok || b.NsPerOp <= 0 || g.NsPerOp <= 0 {
			continue
		}
		if r := g.NsPerOp / b.NsPerOp; r < min {
			min = r
		}
	}
	return min
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// TestBaselineFileValid ensures the committed baseline stays loadable and
// still records the allocation-free contract for the steady-state
// benchmarks.
func TestBaselineFileValid(t *testing.T) {
	b, err := Load(baselinePath)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"RunnerSteadyState", "RunnerCoherence", "ColdRun", "PooledGrid", "SweepGrid", "SimGrid", "FastSimGrid"} {
		m, ok := b.Benchmarks[name]
		if !ok {
			t.Errorf("baseline is missing benchmark %q", name)
			continue
		}
		if m.NsPerOp <= 0 {
			t.Errorf("%s: ns/op %v, want > 0", name, m.NsPerOp)
		}
	}
	for _, name := range []string{"RunnerSteadyState", "RunnerCoherence"} {
		if m := b.Benchmarks[name]; m.AllocsPerOp != 0 {
			t.Errorf("%s: baseline records %g allocs/op; the steady state must stay allocation-free", name, m.AllocsPerOp)
		}
	}
	// Every grid-shaped benchmark must record its throughput (schema 1
	// recorded cells_per_sec only for PooledGrid).
	for _, name := range []string{"PooledGrid", "SweepGrid", "SimGrid", "FastSimGrid"} {
		if m := b.Benchmarks[name]; m.CellsPerSec <= 0 {
			t.Errorf("%s: cells_per_sec %v, want > 0", name, m.CellsPerSec)
		}
	}
	// The headline claim of the fast path, pinned on the committed
	// numbers: extrapolation buys at least an order of magnitude on the
	// steady-state grid.
	if slow, fast := b.Benchmarks["SimGrid"].CellsPerSec, b.Benchmarks["FastSimGrid"].CellsPerSec; fast < 10*slow {
		t.Errorf("FastSimGrid %.1f cells/s vs SimGrid %.1f cells/s: %.1fx, want >= 10x",
			fast, slow, fast/slow)
	}
	if b.GitSHA == "" || b.Date == "" || b.GoVersion == "" {
		t.Error("baseline provenance fields (git_sha, date, go_version) must be set")
	}
}

// TestLoadSchema1 pins backward compatibility: schema-1 baseline files
// (no cells_per_sec outside PooledGrid) must keep loading after the
// schema-2 bump, and unknown future schemas must be rejected.
func TestLoadSchema1(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/bench.json"
	v1 := `{
  "schema": 1,
  "git_sha": "abc",
  "date": "2026-01-01T00:00:00Z",
  "go_version": "go1.24",
  "benchmarks": {
    "RunnerSteadyState": {"ns_per_op": 100, "allocs_per_op": 0, "bytes_per_op": 0},
    "PooledGrid": {"ns_per_op": 500, "allocs_per_op": 9, "bytes_per_op": 10, "cells_per_sec": 12}
  }
}`
	if err := os.WriteFile(path, []byte(v1), 0o644); err != nil {
		t.Fatal(err)
	}
	b, err := Load(path)
	if err != nil {
		t.Fatalf("schema-1 baseline rejected: %v", err)
	}
	if b.Benchmarks["PooledGrid"].CellsPerSec != 12 {
		t.Errorf("cells_per_sec = %v, want 12", b.Benchmarks["PooledGrid"].CellsPerSec)
	}
	if b.Benchmarks["RunnerSteadyState"].CellsPerSec != 0 {
		t.Errorf("absent cells_per_sec decoded as %v, want 0", b.Benchmarks["RunnerSteadyState"].CellsPerSec)
	}
	// Comparing a schema-2 measurement against the schema-1 file must not
	// flag the added benchmarks/fields (they are simply not recorded).
	got := &Baseline{Benchmarks: map[string]Metric{
		"RunnerSteadyState": {NsPerOp: 100},
		"PooledGrid":        {NsPerOp: 500, AllocsPerOp: 9, CellsPerSec: 240},
		"SimGrid":           {NsPerOp: 900, CellsPerSec: 20},
		"FastSimGrid":       {NsPerOp: 60, CellsPerSec: 300},
	}}
	if regs := Compare(b, got, 0.10); len(regs) != 0 {
		t.Errorf("schema-1 baseline vs schema-2 measurement: unexpected regressions %v", regs)
	}

	future := `{"schema": 3, "benchmarks": {"A": {"ns_per_op": 1}}}`
	if err := os.WriteFile(path, []byte(future), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Error("schema-3 baseline loaded; want rejection")
	}
}

// TestBatchGridIdentity pins the SimGrid vehicle's correctness outside
// benchmark runs: the fast variant must return statistics identical to
// cycle-by-cycle simulation on every schedule it extrapolates.
func TestBatchGridIdentity(t *testing.T) {
	scs := batchSchedules(t)
	ctx := context.Background()
	slow, err := sim.RunBatch(ctx, scs, sim.Options{MaxEntries: 1})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := sim.RunBatch(ctx, scs, sim.Options{MaxEntries: 1, FastPath: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range slow {
		if slow[i] != fast[i] {
			t.Errorf("schedule %d: fast-path stats diverge:\nslow: %+v\nfast: %+v", i, slow[i], fast[i])
		}
	}
}

// TestCompare covers the gate arithmetic.
func TestCompare(t *testing.T) {
	base := &Baseline{Benchmarks: map[string]Metric{
		"A": {NsPerOp: 1000, AllocsPerOp: 0},
		"B": {NsPerOp: 2000, AllocsPerOp: 5},
		"C": {NsPerOp: 500},
		"E": {NsPerOp: 1000, AllocsPerOp: 1e6},
		"Z": {NsPerOp: 100, AllocsPerOp: 0},
	}}
	got := &Baseline{Benchmarks: map[string]Metric{
		"A": {NsPerOp: 1050, AllocsPerOp: 0}, // +5%: fine
		"B": {NsPerOp: 2500, AllocsPerOp: 6}, // +25% ns and +20% allocs: two violations
		// C missing
		"D": {NsPerOp: 9999},                       // unrecorded: ignored
		"E": {NsPerOp: 1000, AllocsPerOp: 1e6 + 4}, // alloc jitter within tolerance: fine
		"Z": {NsPerOp: 100, AllocsPerOp: 1},        // zero-pinned benchmark allocated: violation
	}}
	regs := Compare(base, got, 0.10)
	if len(regs) != 4 {
		t.Fatalf("got %d regressions %v, want 4", len(regs), regs)
	}
	if regs[0].Benchmark != "B" || regs[0].Field != "ns_per_op" {
		t.Errorf("regs[0] = %+v", regs[0])
	}
	if regs[1].Benchmark != "B" || regs[1].Field != "allocs_per_op" {
		t.Errorf("regs[1] = %+v", regs[1])
	}
	if regs[2].Benchmark != "C" || regs[2].Field != "missing" {
		t.Errorf("regs[2] = %+v", regs[2])
	}
	if regs[3].Benchmark != "Z" || regs[3].Field != "allocs_per_op" {
		t.Errorf("regs[3] = %+v", regs[3])
	}
	for _, r := range regs {
		if r.String() == "" {
			t.Error("empty regression description")
		}
	}
}

// TestHostDrift covers the uniform-slowdown detector.
func TestHostDrift(t *testing.T) {
	base := &Baseline{Benchmarks: map[string]Metric{
		"A": {NsPerOp: 1000},
		"B": {NsPerOp: 2000},
	}}
	uniform := map[string]Metric{"A": {NsPerOp: 1300}, "B": {NsPerOp: 2600}}
	if d := hostDrift(base, uniform); d < 1.29 || d > 1.31 {
		t.Errorf("uniform slowdown: drift %v, want ~1.30", d)
	}
	// One benchmark regressed while the other held: no host drift.
	single := map[string]Metric{"A": {NsPerOp: 1300}, "B": {NsPerOp: 2000}}
	if d := hostDrift(base, single); d > 1.01 {
		t.Errorf("single regression: drift %v, want ~1.0", d)
	}
}
