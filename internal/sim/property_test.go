package sim

import (
	"testing"

	"vliwcache/internal/arch"
	"vliwcache/internal/core"
	"vliwcache/internal/ir"
	"vliwcache/internal/loopgen"
	"vliwcache/internal/profiler"
	"vliwcache/internal/sched"
)

func executeRandom(t *testing.T, seed int64, pol core.Policy, h sched.Heuristic, cfg arch.Config) (*ir.Loop, *Stats) {
	t.Helper()
	loop := loopgen.Random(seed, loopgen.DefaultParams())
	plan, err := core.Prepare(loop, pol, cfg.NumClusters)
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	sc, err := sched.Run(plan, sched.Options{Arch: cfg, Heuristic: h, Profile: profiler.Run(loop, cfg)})
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	st, err := Run(sc, Options{CheckCoherence: true})
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	return loop, st
}

// TestCoherenceGuaranteeProperty is the paper's central claim: over random
// loops with real aliasing, MDC and DDGT schedules never produce memory
// ordering violations — with and without Attraction Buffers.
func TestCoherenceGuaranteeProperty(t *testing.T) {
	configs := []arch.Config{
		arch.Default(),
		arch.Default().WithAttractionBuffers(16),
		arch.NobalReg(),
	}
	for seed := int64(0); seed < 60; seed++ {
		cfg := configs[seed%int64(len(configs))]
		for _, pol := range []core.Policy{core.PolicyMDC, core.PolicyDDGT} {
			h := sched.PrefClus
			if seed%2 == 0 {
				h = sched.MinComs
			}
			loop, st := executeRandom(t, seed, pol, h, cfg)
			if st.Violations != 0 {
				t.Errorf("seed %d %v/%v: %d ordering violations\n%s", seed, pol, h, st.Violations, loop)
			}
		}
	}
}

// TestAccessConservationProperty: every executed memory access is
// classified exactly once; replica groups execute exactly one instance per
// iteration.
func TestAccessConservationProperty(t *testing.T) {
	cfg := arch.Default()
	for seed := int64(100); seed < 140; seed++ {
		loop := loopgen.Random(seed, loopgen.DefaultParams())
		plan, err := core.Prepare(loop, core.PolicyDDGT, cfg.NumClusters)
		if err != nil {
			t.Fatal(err)
		}
		sc, err := sched.Run(plan, sched.Options{Arch: cfg, Heuristic: sched.MinComs, Profile: profiler.Run(loop, cfg)})
		if err != nil {
			t.Fatal(err)
		}
		st, err := Run(sc, Options{})
		if err != nil {
			t.Fatal(err)
		}

		// Expected accesses: all non-replicated memory ops once per
		// iteration, plus one executing instance per replica group.
		perIter := int64(0)
		inGroup := make(map[int]bool)
		for _, g := range plan.ReplicaGroups {
			for _, id := range g {
				inGroup[id] = true
			}
			perIter++ // exactly one instance executes
		}
		for _, o := range plan.Loop.Ops {
			if o.Kind.IsMem() && !inGroup[o.ID] {
				perIter++
			}
		}
		want := perIter * st.Iterations
		if got := st.TotalAccesses(); got != want {
			t.Errorf("seed %d: %d accesses, want %d", seed, got, want)
		}
		wantNull := int64(len(plan.ReplicaGroups)) * int64(cfg.NumClusters-1) * st.Iterations
		if st.NullifiedStores != wantNull {
			t.Errorf("seed %d: %d nullified, want %d", seed, st.NullifiedStores, wantNull)
		}
	}
}

// TestCycleAccountingProperty: compute time equals the ideal schedule time
// (II per steady-state iteration plus drain), and total = compute + stall.
func TestCycleAccountingProperty(t *testing.T) {
	cfg := arch.Default()
	for seed := int64(200); seed < 230; seed++ {
		loop := loopgen.Random(seed, loopgen.DefaultParams())
		plan, err := core.Prepare(loop, core.PolicyMDC, cfg.NumClusters)
		if err != nil {
			t.Fatal(err)
		}
		sc, err := sched.Run(plan, sched.Options{Arch: cfg, Heuristic: sched.PrefClus, Profile: profiler.Run(loop, cfg)})
		if err != nil {
			t.Fatal(err)
		}
		st, err := Run(sc, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if st.Cycles() != st.ComputeCycles+st.StallCycles {
			t.Fatalf("seed %d: cycle identity broken", seed)
		}
		// Compute time is bounded below by II per steady-state iteration
		// (the last iteration of each entry drains in less than an II when
		// the kernel is short).
		if min := (st.Iterations - st.Entries) * int64(sc.II); st.ComputeCycles < min {
			t.Errorf("seed %d: compute %d below (iterations-entries)*II %d",
				seed, st.ComputeCycles, min)
		}
	}
}

// TestSimulatorDeterminism: repeated runs produce identical statistics.
func TestSimulatorDeterminism(t *testing.T) {
	cfg := arch.Default().WithAttractionBuffers(16)
	_, a := executeRandom(t, 77, core.PolicyDDGT, sched.PrefClus, cfg)
	_, b := executeRandom(t, 77, core.PolicyDDGT, sched.PrefClus, cfg)
	if *a != *b {
		t.Errorf("nondeterministic simulation:\n%s\n%s", a, b)
	}
}
