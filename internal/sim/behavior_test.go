package sim

import (
	"testing"

	"vliwcache/internal/arch"
	"vliwcache/internal/core"
	"vliwcache/internal/ir"
	"vliwcache/internal/sched"
)

// TestABFlushBetweenEntries: attraction buffers flush at loop boundaries,
// so the first accesses of every entry re-attract their subblocks.
func TestABFlushBetweenEntries(t *testing.T) {
	b := ir.NewBuilder("flush")
	b.Symbol("a", 0x10000, 1<<16)
	b.Trip(400, 3)
	// Stride-0 remote table load: home is fixed; schedule it in a cluster
	// away from home by pinning via ForceCluster below.
	b.Load("ld", ir.AddrExpr{Base: "a", Offset: 4, Stride: 0, Size: 4}) // home 1
	b.Arith("use", ir.KindAdd, 0)
	loop := b.Loop()

	cfg := arch.Default().WithAttractionBuffers(16)
	plan, err := core.Prepare(loop, core.PolicyFree, cfg.NumClusters)
	if err != nil {
		t.Fatal(err)
	}
	plan.ForceCluster = map[int]int{0: 3} // remote from home 1
	sc, err := sched.Run(plan, sched.Options{Arch: cfg, Heuristic: sched.MinComs})
	if err != nil {
		t.Fatal(err)
	}
	st, err := Run(sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.ABFlushes != int64(cfg.NumClusters)*3 {
		t.Errorf("AB flushes = %d, want %d (per cluster per entry)", st.ABFlushes, cfg.NumClusters*3)
	}
	// Exactly one remote fetch per entry; everything else hits the AB.
	remote := st.Accesses[RemoteHit] + st.Accesses[RemoteMiss]
	if remote != 3 {
		t.Errorf("remote accesses = %d, want 3 (one attraction per entry)", remote)
	}
	if st.ABHits < 3*(400-2) {
		t.Errorf("AB hits = %d, want nearly all accesses", st.ABHits)
	}
}

// TestCombinedAccessesAppear: two loads of the same subblock in the same
// cluster, one cycle apart, with a miss in flight => combined accesses.
func TestCombinedAccessesAppear(t *testing.T) {
	b := ir.NewBuilder("comb")
	b.Symbol("a", 0x10000, 1<<20)
	b.Trip(500, 1)
	// Both loads hit the same subblock every iteration and walk forward a
	// block every iteration: the leader misses, the trailer combines.
	v := b.Load("lead", ir.AddrExpr{Base: "a", Stride: 32, Size: 4})
	w := b.Load("trail", ir.AddrExpr{Base: "a", Offset: 0, Stride: 32, Size: 4})
	b.Arith("use", ir.KindAdd, v, w)
	loop := b.Loop()
	cfg := arch.Default()
	plan, err := core.Prepare(loop, core.PolicyFree, cfg.NumClusters)
	if err != nil {
		t.Fatal(err)
	}
	// Same cluster as the home of the walk start (home of addr 0x10000
	// varies; force both into cluster 0 and let locality fall out).
	plan.ForceCluster = map[int]int{0: 0, 1: 0}
	sc, err := sched.Run(plan, sched.Options{Arch: cfg, Heuristic: sched.MinComs})
	if err != nil {
		t.Fatal(err)
	}
	st, err := Run(sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Accesses[Combined] == 0 {
		t.Errorf("no combined accesses: %s", st)
	}
}

// TestNobalConfigsSimulate: the §4.2 configurations run end to end.
func TestNobalConfigsSimulate(t *testing.T) {
	for _, cfg := range []arch.Config{arch.NobalMem(), arch.NobalReg()} {
		st := runPolicy(t, streamLoop(1200), core.PolicyDDGT, sched.PrefClus, cfg, Options{CheckCoherence: true})
		if st.Violations != 0 {
			t.Errorf("%s: %d violations", cfg, st.Violations)
		}
		if st.Cycles() <= 0 {
			t.Errorf("%s: no cycles", cfg)
		}
	}
}

// TestStallMatchesLatencyGap: a consumer scheduled at the assigned latency
// pays exactly actual-assigned when the access misses.
func TestStallMatchesLatencyGap(t *testing.T) {
	b := ir.NewBuilder("gap")
	b.Symbol("a", 0x10000, 1<<24)
	b.Trip(300, 1)
	v := b.Load("ld", ir.AddrExpr{Base: "a", Stride: 32, Size: 4}) // always misses
	b.Arith("use", ir.KindAdd, v)
	loop := b.Loop()
	cfg := arch.Default()
	plan, err := core.Prepare(loop, core.PolicyFree, cfg.NumClusters)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := sched.Run(plan, sched.Options{Arch: cfg, Heuristic: sched.MinComs})
	if err != nil {
		t.Fatal(err)
	}
	st, err := Run(sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The load is local 1/4 of the time... its home rotates? stride 32
	// with I=4: home = (32i/4)%4 = 0 always. Local when placed in cluster
	// 0. Assigned latency <= LocalMiss; actual local miss = 11 or remote
	// miss = 15. The gap per iteration is (actual - assigned), never
	// negative.
	perIter := float64(st.StallCycles) / float64(st.Iterations)
	lats := cfg.Latencies()
	if perIter > float64(lats.RemoteMiss) {
		t.Errorf("stall per iteration %.1f exceeds the worst access latency", perIter)
	}
}

// TestPendingInvalidationOnRemoteStore: the remote-store invalidation rule
// (a store must not let later loads combine with a stale in-flight copy).
func TestPendingInvalidationOnRemoteStore(t *testing.T) {
	b := ir.NewBuilder("inval")
	b.Symbol("a", 0x10000, 1<<20)
	b.Trip(800, 1)
	live := b.Reg()
	v := b.Load("lead", ir.AddrExpr{Base: "a", Stride: 32, Size: 4}) // miss each iter
	b.Store("st", ir.AddrExpr{Base: "a", Offset: 4, Stride: 32, Size: 4}, live)
	w := b.Load("trail", ir.AddrExpr{Base: "a", Offset: 4, Stride: 32, Size: 4})
	b.Arith("use", ir.KindAdd, v, w)
	loop := b.Loop()
	cfg := arch.Default()
	plan, err := core.Prepare(loop, core.PolicyMDC, cfg.NumClusters)
	if err != nil {
		t.Fatal(err)
	}
	st := mustRun(t, plan, cfg)
	if st.Violations != 0 {
		t.Errorf("MDC with store-into-pending pattern: %d violations", st.Violations)
	}
}

func mustRun(t *testing.T, plan *core.Plan, cfg arch.Config) *Stats {
	t.Helper()
	sc, err := sched.Run(plan, sched.Options{Arch: cfg, Heuristic: sched.MinComs})
	if err != nil {
		t.Fatal(err)
	}
	st, err := Run(sc, Options{CheckCoherence: true})
	if err != nil {
		t.Fatal(err)
	}
	return st
}
