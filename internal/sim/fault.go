package sim

import "vliwcache/internal/sched"

// FaultInjector perturbs the timing the machine model produces. Injection
// points are chosen so that every perturbation is one the real hardware
// could legally produce — variable memory latency, queueing delay, cache
// interference — never one that breaks a physical invariant the paper's
// techniques rely on (in particular, requests from one cluster reach the
// banks in issue order: the simulator serializes per-cluster request
// streams FIFO even under injected delay). The paper's guarantee is that
// MDC/DDGT schedules stay coherent under *any* such timing, so a schedule
// that trips the coherence checker under injection is a real counterexample.
//
// An injector is stateful (it owns a seeded RNG and a fault log) and is
// consulted by exactly one Run at a time; it must not be shared between
// concurrent simulations. Implementations live in internal/fault.
type FaultInjector interface {
	// MemExtra returns extra cycles appended to the data-return path of
	// the memory access by op at the given iteration (e.g. DRAM variance,
	// refill queueing). It delays the value's availability, not the
	// access's arrival at the bank.
	MemExtra(op, cluster int, iter int64) int64

	// BusExtra returns extra cycles the request of op waits in its
	// cluster's output queue before entering memory-bus arbitration. The
	// simulator keeps the per-cluster queue FIFO: a delayed request also
	// delays every later request from the same cluster.
	BusExtra(op, cluster int, iter int64) int64

	// FlipClass reports whether to flip the cache outcome of this access:
	// a hit is downgraded to a miss (forcing the next-level path) and a
	// miss is upgraded to a hit (data served at hit latency, no fill) —
	// pure timing perturbations of the word-interleaved modules.
	FlipClass(op, cluster int, iter int64, hit bool) bool

	// FlushAB reports whether to forcibly flush the cluster's Attraction
	// Buffer before this access, modeling adversarial replacement.
	FlushAB(cluster int, iter int64) bool
}

// NewFaultsFunc builds a fresh per-run injector for a schedule. Options
// carries a factory rather than an injector so one Options value can be
// shared across the concurrent runs of an experiment suite: each run gets
// its own injector, deterministically derived from the schedule identity.
type NewFaultsFunc func(sc *sched.Schedule) FaultInjector

// faultHooks adapts an optional injector to unconditional call sites: a
// nil *faultHooks (or nil injector) injects nothing.
type faultHooks struct {
	inj   FaultInjector
	stats *Stats
}

func (f *faultHooks) memExtra(op, cluster int, iter int64) int64 {
	if f == nil || f.inj == nil {
		return 0
	}
	d := f.inj.MemExtra(op, cluster, iter)
	if d < 0 {
		d = 0
	}
	if d > 0 {
		f.stats.InjectedFaults++
	}
	return d
}

func (f *faultHooks) busExtra(op, cluster int, iter int64) int64 {
	if f == nil || f.inj == nil {
		return 0
	}
	d := f.inj.BusExtra(op, cluster, iter)
	if d < 0 {
		d = 0
	}
	if d > 0 {
		f.stats.InjectedFaults++
	}
	return d
}

func (f *faultHooks) flip(op, cluster int, iter int64, hit bool) bool {
	if f == nil || f.inj == nil {
		return false
	}
	if f.inj.FlipClass(op, cluster, iter, hit) {
		f.stats.InjectedFaults++
		return true
	}
	return false
}

func (f *faultHooks) flushAB(cluster int, iter int64) bool {
	if f == nil || f.inj == nil {
		return false
	}
	if f.inj.FlushAB(cluster, iter) {
		f.stats.InjectedFaults++
		return true
	}
	return false
}
