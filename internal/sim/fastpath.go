package sim

// This file is the simulator's fast-forward layer (ROADMAP item 5). It
// exploits the structure the paper itself relies on: a modulo-scheduled
// loop repeats its kernel with period II, so once the memory substrate
// reaches a steady state the machine's dynamic state becomes periodic and
// the remaining iterations are analytically extrapolable. Two mechanisms,
// both exact:
//
//  1. Dead-cycle skipping. A kernel cycle with no active event mutates
//     nothing and emits nothing — state changes only when an event
//     executes — so the cycle counter may jump over a run of dead cycles
//     in one step. Inside the fully-active region the per-slot activity
//     pattern is static, so the jump is a table lookup. This is sound
//     unconditionally (even under tracers and fault injection: a dead
//     cycle produces no trace line and consults no injector).
//
//  2. Steady-state extrapolation. At iteration boundaries the dynamic
//     state is snapshotted in a *normalized* form (times relative to the
//     current clock, cache tags shifted back by each address stream's
//     per-iteration stride, LRU timestamps rank-compressed) and hashed
//     into an epoch-cleared open-addressed table — the same idiom as the
//     pendTab/coherTab hot-path tables. When two snapshots taken P
//     iterations apart compare equal byte-for-byte, one more full period
//     is simulated and compared against the recorded one (state AND
//     counter deltas); only then are the remaining whole periods skipped:
//     counters are credited in bulk and the live state is translated
//     forward in time (and the tags forward in address space) to exactly
//     the state the slow path would have reached. Because validation
//     precedes the jump, a 64-bit hash collision costs a wasted compare,
//     never a wrong result (contrast DESIGN.md §13.3, where fingerprints
//     are trusted).
//
// The detection layer disarms itself — loudly, via FastPathStats — for
// anything that breaks periodicity or observability-neutrality: tracers,
// CSV traces, fault injectors, the coherence checker, replicated layouts,
// Attraction Buffers, overlapping unequal-stride address streams, or
// periods too long to pay off. Disarmed runs still get dead-cycle
// skipping and remain byte-identical to the slow path.

import (
	"math"
	"sort"
)

// FastPathStats reports what the fast-forward layer did during a run (or,
// aggregated by a Pool, across runs). It lives outside Stats on purpose:
// Stats must be byte-identical between the fast and slow paths.
type FastPathStats struct {
	// EligibleRuns / FallbackRuns count runs where steady-state detection
	// was armed / disarmed. LastFallbackReason names the most recent
	// disarm cause ("" when none): the loud part of "falls back loudly,
	// never silently wrong".
	EligibleRuns       int64
	FallbackRuns       int64
	LastFallbackReason string

	// Dead-cycle skipping (always on under Options.FastPath).
	DeadCycleSkips    int64 // jumps over >= 2 consecutive dead cycles
	DeadCyclesSkipped int64 // cycles those jumps covered beyond the first

	// Steady-state detection and extrapolation.
	Snapshots          int64 // normalized state snapshots taken
	Detections         int64 // snapshot pairs that compared equal
	ValidationFailures int64 // detections whose confirmation period diverged
	Extrapolations     int64 // validated skips applied
	SkippedIterations  int64 // iterations covered by extrapolation
	SkippedCycles      int64 // absolute cycles (compute+stall) extrapolated
}

// Add accumulates o into s (Pool aggregation).
func (s *FastPathStats) Add(o *FastPathStats) {
	s.EligibleRuns += o.EligibleRuns
	s.FallbackRuns += o.FallbackRuns
	if o.LastFallbackReason != "" {
		s.LastFallbackReason = o.LastFallbackReason
	}
	s.DeadCycleSkips += o.DeadCycleSkips
	s.DeadCyclesSkipped += o.DeadCyclesSkipped
	s.Snapshots += o.Snapshots
	s.Detections += o.Detections
	s.ValidationFailures += o.ValidationFailures
	s.Extrapolations += o.Extrapolations
	s.SkippedIterations += o.SkippedIterations
	s.SkippedCycles += o.SkippedCycles
}

const (
	// fpMaxPeriod caps the set-aligned snapshot period (in iterations):
	// beyond it detection cannot amortize before realistic trip counts.
	fpMaxPeriod = 4096
	// fpMaxPortSpan caps the live next-level-port window a snapshot will
	// serialize; larger windows defer the snapshot to the next boundary.
	fpMaxPortSpan = 4096
	// fpSlots is how many snapshots are retained for period detection.
	fpSlots = 8
	// fpTabSize is the open-addressed fingerprint table size (power of 2).
	fpTabSize = 64
)

// strideClass is one merged address stream: every memory op whose
// footprint falls in [lo, hi) advances by stride bytes per iteration.
type strideClass struct {
	stride int64
	lo, hi uint64 // block-aligned byte footprint [lo, hi)
}

// fpSlot is one retained snapshot: the normalized state words, the raw
// counter vector at the instant it was taken, and where/when it was taken.
type fpSlot struct {
	used  bool
	c     int64 // iteration index
	at    int64 // absolute time (base + v + stall)
	hash  uint64
	words []uint64
	ctr   []int64
}

// fpTab maps snapshot hashes to slot indices: open-addressed, linearly
// probed, cleared per entry by an epoch bump (the pendTab idiom).
type fpTab struct {
	hashes [fpTabSize]uint64
	slot   [fpTabSize]int32
	eps    [fpTabSize]uint32
	epoch  uint32
}

func (t *fpTab) reset() {
	t.epoch++
	if t.epoch == 0 {
		clear(t.eps[:])
		t.epoch = 1
	}
}

const fpDetect, fpValidate = 0, 1

type fastPath struct {
	stats FastPathStats

	// Schedule/option-derived statics, rebuilt per bind.
	detect     bool   // steady-state detection armed for this bind
	reason     string // why not, when !detect
	classes    []strideClass
	period     int64 // snapshot cadence, iterations (set-aligned)
	snapLo     int64 // first snapshot-eligible iteration
	snapHi     int64 // last snapshot-eligible iteration
	skipEndMax int64 // skipped windows must end at or before this iteration
	steadyNext []int64
	steadyEnd  int64 // last cycle of the fully-active region

	// Per-entry dynamic state.
	armed     bool
	phase     int
	tab       fpTab
	slots     [fpSlots]fpSlot
	nextSlot  int
	valRef    *fpSlot
	valPd     int64
	valTarget int64
	valDelta  []int64

	// Reusable scratch.
	buf      []uint64 // snapshot under construction
	ctrBuf   []int64  // counter vector under construction
	deltaBuf []int64
	ptrs     []*int64
	ring     []int64  // ring rotation scratch
	pendKeys []uint64 // pending-table rebuild scratch
	pendVals []int64
	rank     []int64 // per-set LRU sort scratch
	rankTag  []uint64
	rankIdx  []int
}

// bindFast (re)derives the fast-forward statics for the bound schedule.
// Called at the end of machine.bind; a nil m.fast means Options.FastPath
// is off and the hot loop takes the historic path untouched.
func (m *machine) bindFast() {
	if !m.opts.FastPath {
		m.fast = nil
		return
	}
	if m.fast == nil {
		m.fast = &fastPath{}
	}
	m.fast.buildStatic(m)
}

// buildStatic derives the per-slot dead-cycle jump table, the stride
// classes and the set-aligned snapshot period, and decides whether
// steady-state detection can arm for this schedule + option set.
func (f *fastPath) buildStatic(m *machine) {
	ii := int64(m.sc.II)
	f.steadyEnd = int64(f.minEventCycle(m)) + (m.trip-1)*ii
	if cap(f.steadyNext) < int(ii) {
		f.steadyNext = make([]int64, ii)
	}
	f.steadyNext = f.steadyNext[:ii]
	for s := int64(0); s < ii; s++ {
		d := int64(1)
		for ; d < ii; d++ {
			if len(m.slotEvents[(s+d)%ii]) > 0 {
				break
			}
		}
		f.steadyNext[s] = d
	}

	f.detect, f.reason = f.detectEligible(m)
}

func (f *fastPath) minEventCycle(m *machine) int {
	minEv := m.maxCycle
	for _, evs := range m.slotEvents {
		for _, ev := range evs {
			if ev.cycle < minEv {
				minEv = ev.cycle
			}
		}
	}
	return minEv
}

// detectEligible checks every precondition of steady-state extrapolation
// and computes the stride classes and snapshot window. The conditions are
// exactly the ones under which a skipped interval could differ from its
// recorded period or be externally observable; anything else falls back
// to plain (dead-cycle-skipping) simulation, counted in FastPathStats.
func (f *fastPath) detectEligible(m *machine) (bool, string) {
	o, cfg := &m.opts, m.cfg
	switch {
	case o.Tracer != nil:
		return false, "tracer installed"
	case o.Trace != nil:
		return false, "CSV trace installed"
	case o.NewFaults != nil:
		return false, "fault injector installed"
	case o.CheckCoherence:
		return false, "coherence checker records every access"
	case o.DisableABInvalidate:
		return false, "AB-invalidate fix disabled"
	case cfg.Replicated():
		return false, "replicated layout"
	case cfg.ABEntries > 0:
		return false, "attraction buffers hold cross-period state"
	}

	// Build one footprint per memory op, merge same-stride overlaps, and
	// reject unequal-stride overlaps: tag attribution during the skip's
	// address translation must be unique.
	f.classes = f.classes[:0]
	for id := range m.loop.Ops {
		op := m.loop.Ops[id]
		if !op.Kind.IsMem() {
			continue
		}
		base := m.loop.Symbols[op.Addr.Base].Base
		a0 := op.Addr.AddrAt(base, 0)
		a1 := op.Addr.AddrAt(base, m.trip-1)
		lo, hi := a0, a1
		if hi < lo {
			lo, hi = hi, lo
		}
		hi += uint64(op.Addr.Size) - 1
		bb := uint64(cfg.BlockBytes)
		lo -= lo % bb
		hi = hi - hi%bb + bb
		f.classes = append(f.classes, strideClass{stride: op.Addr.Stride, lo: lo, hi: hi})
	}
	if len(f.classes) == 0 {
		return false, "no memory ops"
	}
	sort.Slice(f.classes, func(i, j int) bool { return f.classes[i].lo < f.classes[j].lo })
	merged := f.classes[:1]
	for _, c := range f.classes[1:] {
		last := &merged[len(merged)-1]
		if c.lo < last.hi {
			if c.stride != last.stride {
				return false, "overlapping address streams with unequal strides"
			}
			if c.hi > last.hi {
				last.hi = c.hi
			}
			continue
		}
		merged = append(merged, c)
	}
	f.classes = merged

	// Fill breaks equal-lastUse victim ties by tag, and the snapshot's
	// way-insensitive set encoding relies on that order being stable as
	// the streams translate: a tie between blocks of two unequal-stride
	// classes must keep its sign after both advance by up to trip
	// iterations. Distinct classes are separated by at least their gap
	// (footprints are disjoint after merging), so gap >= |stride
	// difference| * trip rules every flip out. Same-stride pairs shift
	// rigidly and need no check.
	for i := range f.classes {
		for j := i + 1; j < len(f.classes); j++ {
			ds := f.classes[i].stride - f.classes[j].stride
			if ds == 0 {
				continue
			}
			if ds < 0 {
				ds = -ds
			}
			gap := f.classes[j].lo - f.classes[i].hi
			if uint64(m.trip) > 0 && uint64(ds) > math.MaxUint64/uint64(m.trip) {
				return false, "address streams too close for stable victim tie-breaking"
			}
			if gap < uint64(ds)*uint64(m.trip) {
				return false, "address streams too close for stable victim tie-breaking"
			}
		}
	}

	// Set-aligned period: after P iterations each stream's addresses have
	// advanced by stride*P bytes, a multiple of nsets*BlockBytes, so every
	// tag moves within its own set (and, BlockBytes being a multiple of
	// NumClusters*InterleaveBytes, keeps its home cluster and subblock).
	nsets, _ := m.modules[0].Shape()
	wrap := int64(nsets) * int64(cfg.BlockBytes)
	period := int64(1)
	for _, c := range f.classes {
		s := c.stride
		if s == 0 {
			continue
		}
		if s < 0 {
			s = -s
		}
		p := wrap / gcd64(s, wrap)
		period = lcm64(period, p)
		if period > fpMaxPeriod {
			return false, "set-alignment period too long"
		}
	}
	f.period = period

	ii := int64(m.sc.II)
	f.snapLo = ceilDiv64(int64(m.maxCycle), ii)
	tailPad := ceilDiv64(int64(m.maxCycle), ii) + 1
	f.snapHi = m.trip - 1 - tailPad
	minEv := int64(f.minEventCycle(m))
	f.skipEndMax = (minEv + (m.trip-1)*ii + 1) / ii
	if f.skipEndMax > m.trip {
		f.skipEndMax = m.trip
	}
	// Detection needs room for two matching snapshots, a validation
	// period, and at least one period worth of skipping.
	if f.snapHi-f.snapLo < 4*period {
		return false, "trip too short for the snapshot period"
	}
	return true, ""
}

// runBegin resets the per-run statistics (machine.reset).
func (f *fastPath) runBegin() {
	reason := f.reason
	f.stats = FastPathStats{}
	if f.detect {
		f.stats.EligibleRuns = 1
	} else {
		f.stats.FallbackRuns = 1
		f.stats.LastFallbackReason = reason
	}
}

// entryBegin resets the per-entry detection state (runEntry).
func (f *fastPath) entryBegin() {
	f.armed = f.detect
	f.phase = fpDetect
	f.tab.reset()
	for i := range f.slots {
		f.slots[i].used = false
	}
	f.nextSlot = 0
	f.valRef = nil
}

// boundary runs at iteration boundaries while detection is armed. It
// returns (newV, true) when a validated skip jumped the cycle counter.
func (f *fastPath) boundary(m *machine, v int64) (int64, bool) {
	c := v / int64(m.sc.II)
	if c < f.snapLo || c > f.snapHi || (c-f.snapLo)%f.period != 0 {
		return 0, false
	}
	if f.phase == fpValidate && c != f.valTarget {
		return 0, false
	}
	words, ok := f.buildSnapshot(m, v)
	if !ok {
		return 0, false
	}
	f.stats.Snapshots++
	h := fpHash(words)
	now := m.base + v + m.stall
	ctr := m.fpCounters(f.ctrBuf[:0])
	f.ctrBuf = ctr

	if f.phase == fpValidate {
		f.valTarget = 0
		match := wordsEqual(words, f.valRef.words) &&
			deltaEqual(ctr, f.valRef.ctr, f.valDelta)
		if match {
			if nv, ok := f.skip(m, v, c, now); ok {
				return nv, true
			}
			// No room (or an overflow guard tripped): nothing was
			// mutated; detection stays disarmed for this entry.
			f.armed = false
			return 0, false
		}
		f.stats.ValidationFailures++
		f.phase = fpDetect
		f.store(c, now, h, words, ctr)
		return 0, false
	}

	if prev := f.probe(h, words); prev != nil {
		f.stats.Detections++
		pd := c - prev.c
		f.valDelta = subVec(f.deltaBuf[:0], ctr, prev.ctr)
		f.deltaBuf = f.valDelta
		f.valRef = f.store(c, now, h, words, ctr)
		f.valPd = pd
		f.valTarget = c + pd
		if f.valTarget > f.snapHi {
			// Too close to the tail to confirm; keep hunting for a
			// shorter period (there is none on this grid — disarm).
			f.armed = false
			return 0, false
		}
		f.phase = fpValidate
		return 0, false
	}
	f.store(c, now, h, words, ctr)
	return 0, false
}

// probe looks the hash up and returns the retained snapshot that compares
// fully equal, or nil. Stale table entries (recycled slots) lose.
func (f *fastPath) probe(h uint64, words []uint64) *fpSlot {
	t := &f.tab
	i := (h * fibMult) >> (64 - 6)
	for n := 0; n < fpTabSize && t.eps[i] == t.epoch; n++ {
		if t.hashes[i] == h {
			s := &f.slots[t.slot[i]]
			if s.used && s.hash == h && wordsEqual(s.words, words) {
				return s
			}
		}
		i = (i + 1) & (fpTabSize - 1)
	}
	return nil
}

// insert records hash -> slot, overwriting an equal-hash entry.
func (f *fastPath) insert(h uint64, slot int32) {
	t := &f.tab
	i := (h * fibMult) >> (64 - 6)
	for n := 0; n < fpTabSize-1 && t.eps[i] == t.epoch && t.hashes[i] != h; n++ {
		i = (i + 1) & (fpTabSize - 1)
	}
	t.hashes[i], t.slot[i], t.eps[i] = h, slot, t.epoch
}

// store copies the snapshot into the next ring slot and returns its index.
func (f *fastPath) store(c, at int64, h uint64, words []uint64, ctr []int64) *fpSlot {
	idx := f.nextSlot
	f.nextSlot = (f.nextSlot + 1) % fpSlots
	s := &f.slots[idx]
	s.used, s.c, s.at, s.hash = true, c, at, h
	s.words = append(s.words[:0], words...)
	s.ctr = append(s.ctr[:0], ctr...)
	// The table may still reference the evicted occupant; probe treats
	// hash-mismatched slots as stale.
	f.insert(h, int32(idx))
	return s
}

// ctrStall is the index of the stall accumulator in the counter vector
// built by fpCounters.
const ctrStall = int(NumClasses) + 3

// fpCounters serializes every counter that advances during steady kernel
// iterations into one flat vector. fpCounterPtrs must mirror this layout
// exactly: the pair is how extrapolated periods are credited in bulk.
// Counters that cannot advance while detection is armed (AB flush/hit
// counters, injected faults, coherence records) are excluded by the
// eligibility conditions and asserted by validation: if one did move, the
// state or delta comparison fails and no skip happens.
func (m *machine) fpCounters(out []int64) []int64 {
	st := m.stats
	out = append(out, st.Accesses[:]...)
	out = append(out, st.ABHits, st.ABUpdates, st.NullifiedStores, m.stall)
	for _, mod := range m.modules {
		out = append(out, mod.Hits, mod.Misses, mod.Evictions, mod.Writebacks)
	}
	out = append(out, m.arb.Transfers, m.arb.Waited, m.ports.Requests, m.ports.Waited)
	return out
}

func (m *machine) fpCounterPtrs() []*int64 {
	st := m.stats
	p := m.fast.ptrs[:0]
	for i := range st.Accesses {
		p = append(p, &st.Accesses[i])
	}
	p = append(p, &st.ABHits, &st.ABUpdates, &st.NullifiedStores, &m.stall)
	for _, mod := range m.modules {
		p = append(p, &mod.Hits, &mod.Misses, &mod.Evictions, &mod.Writebacks)
	}
	p = append(p, &m.arb.Transfers, &m.arb.Waited, &m.ports.Requests, &m.ports.Waited)
	m.fast.ptrs = p
	return p
}

// skip applies a validated extrapolation: credit nskip periods of counter
// deltas and translate the live machine state forward by exactly the time
// (and address) distance the slow path would have covered. All overflow
// guards run before the first mutation, so a failed skip leaves the
// machine untouched and simulation simply continues.
func (f *fastPath) skip(m *machine, v, c, now int64) (int64, bool) {
	ii := int64(m.sc.II)
	pd := f.valPd
	nskip := (f.skipEndMax - c) / pd
	if nskip < 1 {
		return 0, false
	}
	iters := nskip * pd
	stallDelta := f.valDelta[ctrStall]
	// Guard the cycle arithmetic itself (satellite: int64 overflow audit).
	stallPart, ok := mulAdd64(nskip, stallDelta, 0)
	if !ok {
		return 0, false
	}
	shift, ok := mulAdd64(iters, ii, stallPart)
	if !ok {
		return 0, false
	}
	ptrs := m.fpCounterPtrs()
	for i, p := range ptrs {
		if _, ok := mulAdd64(nskip, f.valDelta[i], *p); !ok {
			return 0, false
		}
	}

	// 1. Counters, in bulk.
	for i, p := range ptrs {
		*p += nskip * f.valDelta[i]
	}

	// 2. Value rings: rotate by iters (ring index is iter % window) and
	// translate every completion time forward.
	window := int64(m.window)
	f.shiftRings(m.complete, window, iters, shift)
	f.shiftRings(m.copyArr, window, iters, shift)

	// 3. Cache modules: each stream's tags advance by stride*iters bytes
	// (set-preserving by construction of the period); LRU clocks advance
	// with the machine clock.
	for _, mod := range m.modules {
		nsets, assoc := mod.Shape()
		for set := 0; set < nsets; set++ {
			for way := 0; way < assoc; way++ {
				tag, valid, _, _ := mod.Line(set, way)
				if !valid {
					continue
				}
				cls := f.classify(tag)
				mod.AdjustLine(set, way, uint64(cls.stride*iters), shift)
			}
		}
	}

	// 4. Pending tables: live requests move with their stream; completed
	// ones are dropped (a strict `> now` check already ignores them).
	for cl := range m.pending {
		t := &m.pending[cl]
		keys, vals := f.pendKeys[:0], f.pendVals[:0]
		t.visit(func(key uint64, val int64) {
			if val > now {
				keys = append(keys, key)
				vals = append(vals, val)
			}
		})
		t.reset()
		bb := uint64(m.cfg.BlockBytes)
		for i, key := range keys {
			blk := key / bb * bb
			cls := f.classify(blk)
			t.put(key+uint64(cls.stride*iters), vals[i]+shift)
		}
		f.pendKeys, f.pendVals = keys, vals
	}

	// 5. Buses and ports: prune what is already dead, then translate the
	// live reservations. Future requests issue at or after now+shift, so
	// the untranslated (skipped-period) reservations they would have seen
	// on the slow path can no longer influence any arbitration decision.
	m.arb.Advance(now)
	m.arb.ShiftTime(shift)
	m.ports.ShiftFuture(now, shift)
	for cl := range m.busFloor {
		if m.busFloor[cl] > now {
			m.busFloor[cl] += shift
		}
	}

	f.stats.Extrapolations++
	f.stats.SkippedIterations += iters
	f.stats.SkippedCycles += shift
	f.armed = false
	return v + iters*ii, true
}

// shiftRings maps slot p%window of iteration p to hold what iteration
// p-iters held, translated by shift: exactly the slow path's post-skip
// ring content (stale slots are governed by the same periodicity).
func (f *fastPath) shiftRings(rings []int64, window, iters, shift int64) {
	r := iters % window
	if cap(f.ring) < int(window) {
		f.ring = make([]int64, window)
	}
	scratch := f.ring[:window]
	for base := int64(0); base < int64(len(rings)); base += window {
		ring := rings[base : base+window]
		for j := int64(0); j < window; j++ {
			scratch[j] = ring[((j-r)%window+window)%window] + shift
		}
		copy(ring, scratch)
	}
}

// classify returns the stride class owning block address blk. Every tag
// and pending key originates from a classified memory op, so the lookup
// cannot miss; the panic guards the invariant.
func (f *fastPath) classify(blk uint64) *strideClass {
	lo, hi := 0, len(f.classes)
	for lo < hi {
		mid := (lo + hi) / 2
		if f.classes[mid].lo <= blk {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 || blk >= f.classes[lo-1].hi {
		panic("sim: fast path: unclassified block address")
	}
	return &f.classes[lo-1]
}

// buildSnapshot serializes the complete live dynamic state at iteration
// boundary v into a normalized word vector: every absolute time becomes a
// delta from the current clock (clamped at zero — anything in the past is
// behaviorally equivalent to "ready now"), every tag is shifted back by
// stride*iteration so periodic streams compare equal, and LRU timestamps
// are rank-compressed per set (victim selection depends only on relative
// order, and every future touch outranks every current one). Two equal
// snapshots therefore guarantee identical future behavior per cycle
// offset — the skip-safety argument of DESIGN.md §14.
func (f *fastPath) buildSnapshot(m *machine, v int64) ([]uint64, bool) {
	ii := int64(m.sc.II)
	c := v / ii
	now := m.base + v + m.stall
	w := f.buf[:0]

	// Value rings, canonical order: slots for iterations c-1 .. c-window.
	window := int64(m.window)
	w = f.snapRings(w, m.complete, window, c, now)
	w = f.snapRings(w, m.copyArr, window, c, now)

	// Pending requests per cluster, live entries only, sorted by
	// stream-normalized key.
	bb := uint64(m.cfg.BlockBytes)
	for cl := range m.pending {
		keys, vals := f.pendKeys[:0], f.pendVals[:0]
		m.pending[cl].visit(func(key uint64, val int64) {
			if val > now {
				blk := key / bb * bb
				keys = append(keys, key-uint64(f.classify(blk).stride*c))
				vals = append(vals, val-now)
			}
		})
		sort.Sort(&pendPairs{keys, vals})
		w = append(w, uint64(len(keys)))
		for i := range keys {
			w = append(w, keys[i], uint64(vals[i]))
		}
		f.pendKeys, f.pendVals = keys, vals
	}

	// Cache modules: each set as a way-insensitive sorted line list —
	// valid lines in (lastUse, tag) order (exactly Fill's victim-scan
	// order, which the tag tie-break makes invariant under renaming the
	// ways), emitted as (stream-normalized tag, dirty) pairs behind a
	// count. LRU timestamps are rank-compressed into the emission order:
	// victim selection depends only on relative order, and every future
	// touch outranks every line present now. Two states whose sets hold
	// the same lines in different ways therefore compare equal — they
	// behave identically forever — which halves the detected period on
	// loops where competing streams alternate ways each set wrap.
	for _, mod := range m.modules {
		nsets, assoc := mod.Shape()
		if cap(f.rank) < assoc {
			f.rank = make([]int64, assoc)
			f.rankTag = make([]uint64, assoc)
			f.rankIdx = make([]int, assoc)
		}
		for set := 0; set < nsets; set++ {
			n := 0
			for way := 0; way < assoc; way++ {
				tag, valid, _, lastUse := mod.Line(set, way)
				if valid {
					f.rank[n] = lastUse
					f.rankTag[n] = tag
					f.rankIdx[n] = way
					n++
				}
			}
			// Insertion sort by (lastUse, tag): n <= assoc, tiny.
			for i := 1; i < n; i++ {
				for j := i; j > 0 && (f.rank[j] < f.rank[j-1] ||
					(f.rank[j] == f.rank[j-1] && f.rankTag[j] < f.rankTag[j-1])); j-- {
					f.rank[j], f.rank[j-1] = f.rank[j-1], f.rank[j]
					f.rankTag[j], f.rankTag[j-1] = f.rankTag[j-1], f.rankTag[j]
					f.rankIdx[j], f.rankIdx[j-1] = f.rankIdx[j-1], f.rankIdx[j]
				}
			}
			w = append(w, uint64(n))
			for i := 0; i < n; i++ {
				_, _, dirty, _ := mod.Line(set, f.rankIdx[i])
				d := uint64(0)
				if dirty {
					d = 1
				}
				tag := f.rankTag[i]
				w = append(w, tag-uint64(f.classify(tag).stride*c), d)
			}
		}
	}

	// Bus arbiter: live intervals, starts clamped to now (a reservation
	// already underway blocks exactly like one starting now).
	lastBus := -1
	m.arb.VisitBusy(func(bus int, start, end int64) {
		if end <= now {
			return
		}
		for lastBus < bus {
			lastBus++
			w = append(w, ^uint64(0)-1) // per-bus separator
		}
		if start < now {
			start = now
		}
		w = append(w, uint64(start-now), uint64(end-now))
	})

	// Next-level ports: the live booking window [now, maxStart].
	span := m.ports.MaxStart() - now
	if span > fpMaxPortSpan {
		return nil, false
	}
	w = append(w, ^uint64(0)-2)
	for t := int64(0); t <= span; t++ {
		if n := m.ports.CountAt(now + t); n > 0 {
			w = append(w, uint64(t), uint64(n))
		}
	}

	// Per-cluster FIFO floors, clamped: floors in the past are inert.
	for _, fl := range m.busFloor {
		d := fl - now
		if d < 0 {
			d = 0
		}
		w = append(w, uint64(d))
	}

	f.buf = w
	return w, true
}

// snapRings appends the normalized ring state: for each ring, the values
// of producer iterations c-1 .. c-window, as clamped deltas from now.
func (f *fastPath) snapRings(w []uint64, rings []int64, window, c, now int64) []uint64 {
	for base := int64(0); base < int64(len(rings)); base += window {
		ring := rings[base : base+window]
		for j := int64(1); j <= window; j++ {
			p := c - j
			var raw int64
			if p >= 0 {
				raw = ring[p%window]
			}
			d := raw - now
			if d < 0 {
				d = 0
			}
			w = append(w, uint64(d))
		}
	}
	return w
}

// pendPairs sorts parallel key/value slices by key.
type pendPairs struct {
	keys []uint64
	vals []int64
}

func (p *pendPairs) Len() int           { return len(p.keys) }
func (p *pendPairs) Less(i, j int) bool { return p.keys[i] < p.keys[j] }
func (p *pendPairs) Swap(i, j int) {
	p.keys[i], p.keys[j] = p.keys[j], p.keys[i]
	p.vals[i], p.vals[j] = p.vals[j], p.vals[i]
}

func fpHash(words []uint64) uint64 {
	h := uint64(len(words)) + 1
	for _, w := range words {
		h = (h ^ w) * fibMult
		h ^= h >> 29
	}
	return h
}

func wordsEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i, w := range a {
		if w != b[i] {
			return false
		}
	}
	return true
}

// subVec appends a-b to out.
func subVec(out, a, b []int64) []int64 {
	for i := range a {
		out = append(out, a[i]-b[i])
	}
	return out
}

// deltaEqual reports whether cur-base == delta, componentwise.
func deltaEqual(cur, base, delta []int64) bool {
	if len(cur) != len(base) || len(cur) != len(delta) {
		return false
	}
	for i := range cur {
		if cur[i]-base[i] != delta[i] {
			return false
		}
	}
	return true
}

// mulAdd64 computes a*b + c, reporting false on any int64 overflow.
// Extrapolation deltas are non-negative (counters are monotone), so a
// negative operand also fails closed.
func mulAdd64(a, b, c int64) (int64, bool) {
	if a < 0 || b < 0 || c < 0 {
		if b == 0 && c >= 0 { // a*0+c is safe for any a
			return c, true
		}
		return 0, false
	}
	if b != 0 && a > math.MaxInt64/b {
		return 0, false
	}
	p := a * b
	if c > math.MaxInt64-p {
		return 0, false
	}
	return p + c, true
}

func gcd64(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func lcm64(a, b int64) int64 {
	return a / gcd64(a, b) * b
}

func ceilDiv64(a, b int64) int64 {
	return (a + b - 1) / b
}

// visit calls fn for every live entry of the pending table.
func (t *pendTab) visit(fn func(key uint64, val int64)) {
	for i, e := range t.eps {
		if e == t.epoch && t.vals[i] != 0 {
			fn(t.keys[i], t.vals[i])
		}
	}
}
