// Package sim is the cycle-level simulator of the word-interleaved cache
// clustered VLIW processor executing a modulo-scheduled loop.
//
// The model follows §2 of the paper:
//
//   - stall-on-use: the (lockstep) VLIW stalls only when an instruction
//     issues whose source value has not arrived yet; the gap between a
//     load's assigned scheduling latency and its actual latency is paid
//     here, split into compute time (ideal schedule) and stall time;
//   - distributed cache: each access is routed to the home cluster of its
//     address; remote accesses ride dynamically arbitrated memory buses
//     whose latency is non-deterministic under contention;
//   - request combining: an access to a subblock already requested and
//     still pending does not issue a second request ("combined" class);
//   - store replication semantics: only the replica instance whose cluster
//     is the home cluster performs the store, the others are nullified
//     (updating their cluster's Attraction Buffer copy if present);
//   - Attraction Buffers (§5): remote subblocks fetched by loads are
//     replicated into the local buffer; MDC stores write dirty copies that
//     flush at loop boundaries; buffers are flushed between loop entries;
//   - a coherence checker (optional) that records every access's arrival
//     at the banks and counts conflicting accesses arriving out of program
//     order — the corruption the paper's techniques exist to prevent.
//
// Execution is split into three layers so machines can be pooled (see
// Runner and Pool in runner.go): schedule-derived statics built once per
// Bind, a config-derived substrate (caches, buses, tables) reused across
// schedules with the same geometry, and per-run dynamic state cleared by
// an allocation-free reset. RunContext is the one-shot convenience over a
// throwaway Runner.
package sim

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"slices"
	"sort"

	"vliwcache/internal/arch"
	"vliwcache/internal/bus"
	"vliwcache/internal/cache"
	"vliwcache/internal/ddg"
	"vliwcache/internal/ir"
	"vliwcache/internal/obs"
	"vliwcache/internal/sched"
)

// Options control a simulation run.
type Options struct {
	// MaxIterations caps iterations per loop entry (0 = the loop's Trip).
	MaxIterations int64
	// MaxEntries caps the number of loop entries (0 = the loop's Entries).
	MaxEntries int64
	// CheckCoherence records bank arrivals and counts ordering violations
	// (costs memory proportional to the dynamic access count).
	CheckCoherence bool
	// Trace, when non-nil, receives one CSV line per memory access:
	// entry,iter,op,cluster,class,addr,issue. A header line is written
	// first.
	Trace io.Writer
	// Tracer, when non-nil, receives typed cycle-level events (issues,
	// stalls, accesses, bank arrivals, bus transfers, Attraction Buffer
	// activity, coherence results). Every emission site is gated on a nil
	// check, so a run with Tracer == nil pays nothing. Event streams are
	// deterministic: equal schedules and fault seeds produce identical
	// streams. Sinks that implement obs.Flusher are flushed when the run
	// completes.
	Tracer obs.Tracer
	// NewFaults, when non-nil, builds a fresh fault injector for this run
	// (chaos mode). A factory rather than an injector so one Options value
	// is safe to share across concurrent runs; see FaultInjector.
	NewFaults NewFaultsFunc
	// FastPath enables the fast-forward layer (see fastpath.go): dead
	// kernel cycles are jumped in one step, and — when the schedule and
	// options permit — the steady-state tail of each entry is detected by
	// normalized state snapshots and extrapolated analytically. Results
	// (Stats, traces, fault logs) are byte-identical to the slow path;
	// configurations that would break that guarantee disarm the detector
	// and are counted in FastPathStats (Runner.FastPath, Pool.FastPath).
	FastPath bool
	// DisableABInvalidate reverts the Attraction-Buffer conflict fix: a
	// remote store that finds a pending fetch of its subblock clears the
	// pending entry but leaves the eagerly-inserted (still in-flight) copy
	// visible. This reintroduces the call-order-visibility bug the
	// coherence checker originally caught, and exists only so regression
	// tests (and the internal/mc counterexample replay) can demonstrate
	// that the checker still trips on it. Never set it in real runs.
	DisableABInvalidate bool
}

// ctxCheckInterval is how many simulated kernel cycles pass between
// cancellation checks: rare enough to stay off the profile, frequent
// enough that a run responds to cancellation in well under a millisecond.
const ctxCheckInterval = 4096

// Run simulates the schedule and returns its statistics.
func Run(sc *sched.Schedule, opts Options) (*Stats, error) {
	return RunContext(context.Background(), sc, opts)
}

// RunContext is Run with cancellation: the machine polls ctx every
// ctxCheckInterval simulated cycles and abandons the run (returning the
// wrapped ctx.Err()) once it is done. It builds a machine, runs it once
// and discards it; callers running many simulations should reuse a Runner
// or a Pool instead.
func RunContext(ctx context.Context, sc *sched.Schedule, opts Options) (*Stats, error) {
	r, err := NewRunner(sc, opts)
	if err != nil {
		return nil, err
	}
	return r.Run(ctx)
}

// RunCtx simulates the schedule with cancellation.
//
// Deprecated: RunCtx is the pre-v1 spelling of RunContext; use that.
func RunCtx(ctx context.Context, sc *sched.Schedule, opts Options) (*Stats, error) {
	return RunContext(ctx, sc, opts)
}

// event is one statically-scheduled kernel event: an op issue or a copy
// transfer start.
type event struct {
	isCopy bool
	idx    int // op ID, or index into Schedule.Copies
	cycle  int // issue cycle within the iteration (flat)
}

// input describes where an op (or copy) gets one source value from.
type input struct {
	from    int // producer op
	dist    int // iteration distance
	copyIdx int // index into Schedule.Copies when the value crosses clusters, else -1
}

// activeEvent is one kernel event due in the current cycle.
type activeEvent struct {
	ev   event
	iter int64
}

// bankRec is one access arrival for the coherence checker.
type bankRec struct {
	arrive int64
	seq    int64
	prog   int64 // program-order index: iter*|ops| + origin op ID
	op     int   // op ID (diagnostics)
	loc    int   // serialization point: home bank, copy index, or next level
	store  bool
	addr   uint64
	size   int
}

type machine struct {
	sc   *sched.Schedule
	cfg  arch.Config
	opts Options
	loop *ir.Loop
	ctx  context.Context

	trip, entries int64

	// Static tables, rebuilt by bind for each schedule.
	slotEvents [][]event // by cycle % II
	maxCycle   int
	inputs     [][]input // per op
	copyInputs []input   // per copy (reads the producer's value, dist 0)
	group      []bool    // per op: member of a replica group
	origin     []int     // per op: replica origin (or self)
	window     int       // value ring size

	// Dynamic state, cleared by reset before every run.
	complete []int64 // flat [op][window] ring over iterations: value-ready time
	copyArr  []int64 // flat [copy][window] ring: arrival time at target cluster
	stall    int64
	base     int64 // absolute time offset of the current entry

	// Substrate, shared across schedules with equal geometry (see
	// ensureSubstrate).
	geo     geometry
	modules []*cache.Module
	abs     []*cache.AttractionBuffer
	pending []pendTab
	arb     *bus.Arbiter
	ports   *bus.Ports

	// Lifetime substrate accounting: binds that constructed the substrate
	// versus binds that kept it because the geometry matched.
	substrateBuilds int64
	substrateReuses int64

	faults   faultHooks // nil-safe fault injection adapter (chaos mode)
	busFloor []int64    // per cluster: earliest time the next bus request may enter arbitration

	recs     []bankRec
	coher    coherTab
	active   []activeEvent
	seq      int64
	iterBase int64 // iterations completed in previous entries
	entry    int64 // current loop entry index (observability)

	tw  *bufio.Writer // CSV access trace, nil when disabled
	obs obs.Tracer    // typed event tracer, nil when disabled

	// fast is the fast-forward layer (nil unless Options.FastPath).
	// sinceCtx counts simulated cycles since the last cancellation check;
	// unlike the historic `v % ctxCheckInterval` cadence it stays accurate
	// when skips jump the cycle counter (a jump forces a prompt re-check).
	fast     *fastPath
	sinceCtx int64

	statsVal Stats
	stats    *Stats
}

// bind attaches the machine to a schedule and option set: validate,
// rebuild the schedule-derived statics, and (re)build the substrate when
// the cache geometry changed.
func (m *machine) bind(sc *sched.Schedule, opts Options) error {
	if err := sched.Validate(sc); err != nil {
		return fmt.Errorf("sim: invalid schedule: %w", err)
	}
	cfg := sc.Arch
	m.sc, m.cfg, m.opts, m.loop = sc, cfg, opts, sc.Plan.Loop
	m.trip, m.entries = m.loop.Trip, m.loop.Entries
	if opts.MaxIterations > 0 && m.trip > opts.MaxIterations {
		m.trip = opts.MaxIterations
	}
	if opts.MaxEntries > 0 && m.entries > opts.MaxEntries {
		m.entries = opts.MaxEntries
	}
	m.stats = &m.statsVal

	m.buildStatics()
	if err := m.ensureSubstrate(cfg); err != nil {
		return err
	}

	m.tw = nil
	if opts.Trace != nil {
		m.tw = bufio.NewWriter(opts.Trace)
	}
	m.obs = opts.Tracer
	m.bindFast()
	return nil
}

// runAll resets the machine and executes the bound schedule once.
func (m *machine) runAll(ctx context.Context) (*Stats, error) {
	m.ctx = ctx
	m.reset()
	if m.tw != nil {
		fmt.Fprintln(m.tw, "entry,iter,op,cluster,class,addr,issue")
	}
	if err := m.run(); err != nil {
		return nil, err
	}
	if m.opts.CheckCoherence {
		m.stats.Violations = m.checkCoherence()
		if m.obs != nil {
			m.obs.Emit(obs.Event{Kind: obs.KindCoherence, Class: -1, Op: -1, Cluster: -1,
				Cycle: m.base + m.stall, Arg: m.stats.Violations})
		}
	}
	m.collect()
	if m.tw != nil {
		if err := m.tw.Flush(); err != nil {
			return nil, fmt.Errorf("sim: trace: %w", err)
		}
	}
	if f, ok := m.obs.(obs.Flusher); ok {
		if err := f.Flush(); err != nil {
			return nil, fmt.Errorf("sim: tracer: %w", err)
		}
	}
	return m.stats, nil
}

// access books one classified memory access: the stats counter, the CSV
// trace line, the coherence-checker record (arrival at loc), and — when a
// tracer is installed — the KindAccess/KindBankArrival event pair.
func (m *machine) access(class Class, iter int64, id, cluster, loc int, addr uint64, issue, arrive int64, isStore bool, size int) {
	m.stats.Accesses[class]++
	m.trace(iter, id, cluster, class, addr, issue)
	m.record(arrive, iter, id, loc, isStore, addr, size)
	if m.obs != nil {
		m.obs.Emit(obs.Event{Kind: obs.KindAccess, Class: int8(class), Op: int32(id),
			Cluster: int32(cluster), Entry: m.entry, Iter: iter, Cycle: issue, Addr: addr})
		m.obs.Emit(obs.Event{Kind: obs.KindBankArrival, Class: int8(class), Op: int32(id),
			Cluster: int32(loc), Entry: m.entry, Iter: iter, Cycle: arrive, Addr: addr})
	}
}

// emitArrival reports an extra bank arrival (beyond the classified
// access's own) to the tracer: replicated-layout write-throughs and
// broadcast updates touch several serialization points per access.
func (m *machine) emitArrival(id, loc int, iter int64, addr uint64, arrive int64) {
	if m.obs != nil {
		m.obs.Emit(obs.Event{Kind: obs.KindBankArrival, Class: -1, Op: int32(id),
			Cluster: int32(loc), Entry: m.entry, Iter: iter, Cycle: arrive, Addr: addr})
	}
}

// emitABHit reports an Attraction Buffer hit to the tracer.
func (m *machine) emitABHit(id, cluster int, iter int64, addr uint64, issue int64) {
	if m.obs != nil {
		m.obs.Emit(obs.Event{Kind: obs.KindABHit, Class: -1, Op: int32(id),
			Cluster: int32(cluster), Entry: m.entry, Iter: iter, Cycle: issue, Addr: addr})
	}
}

// trace emits one CSV line for a classified access.
func (m *machine) trace(iter int64, id, cluster int, class Class, addr uint64, issue int64) {
	if m.tw == nil {
		return
	}
	fmt.Fprintf(m.tw, "%d,%d,%s,%d,%s,%#x,%d\n",
		m.iterBase/maxOne(m.trip), iter, m.loop.Ops[id].Label(), cluster, class, addr, issue)
}

func maxOne(v int64) int64 {
	if v < 1 {
		return 1
	}
	return v
}

// buildStatics precomputes the kernel event tables and input routing for
// the bound schedule. It runs once per Bind, never per run, so the
// allocations here are off the steady-state path; the flat value rings
// reuse their storage when the previous schedule's was large enough.
func (m *machine) buildStatics() {
	sc, loop := m.sc, m.loop
	ii := sc.II

	copyIdx := make(map[[2]int]int, len(sc.Copies))
	for i, c := range sc.Copies {
		copyIdx[[2]int{c.Producer, c.ToCluster}] = i
	}

	maxDist := 1
	m.inputs = make([][]input, len(loop.Ops))
	for _, o := range loop.Ops {
		for _, e := range sc.Plan.Graph.In(o.ID) {
			if e.Kind != ddg.RF {
				continue
			}
			in := input{from: e.From, dist: e.Dist, copyIdx: -1}
			if sc.Cluster[e.From] != sc.Cluster[o.ID] {
				if ci, ok := copyIdx[[2]int{e.From, sc.Cluster[o.ID]}]; ok {
					in.copyIdx = ci
				}
			}
			m.inputs[o.ID] = append(m.inputs[o.ID], in)
			if e.Dist > maxDist {
				maxDist = e.Dist
			}
		}
	}
	m.copyInputs = make([]input, len(sc.Copies))
	for i, c := range sc.Copies {
		m.copyInputs[i] = input{from: c.Producer, dist: 0, copyIdx: -1}
	}
	m.window = maxDist + 2

	m.group = make([]bool, len(loop.Ops))
	m.origin = make([]int, len(loop.Ops))
	for id, o := range loop.Ops {
		m.origin[id] = id
		if o.IsReplica() {
			m.origin[id] = o.Origin()
		}
	}
	for _, ids := range sc.Plan.ReplicaGroups {
		for _, id := range ids {
			m.group[id] = true
		}
	}

	var evs []event
	for id := range loop.Ops {
		evs = append(evs, event{idx: id, cycle: sc.Cycle[id]})
	}
	for i, c := range sc.Copies {
		evs = append(evs, event{isCopy: true, idx: i, cycle: c.Start})
	}
	m.maxCycle = 0
	m.slotEvents = make([][]event, ii)
	for _, ev := range evs {
		if ev.cycle > m.maxCycle {
			m.maxCycle = ev.cycle
		}
		s := ev.cycle % ii
		m.slotEvents[s] = append(m.slotEvents[s], ev)
	}
	for s := range m.slotEvents {
		sort.Slice(m.slotEvents[s], func(i, j int) bool {
			a, b := m.slotEvents[s][i], m.slotEvents[s][j]
			if a.cycle != b.cycle {
				return a.cycle < b.cycle
			}
			if a.isCopy != b.isCopy {
				return !a.isCopy
			}
			return a.idx < b.idx
		})
	}

	m.complete = grownInt64(m.complete, len(loop.Ops)*m.window)
	m.copyArr = grownInt64(m.copyArr, len(sc.Copies)*m.window)
}

// run executes all entries of the loop.
func (m *machine) run() error {
	for e := int64(0); e < m.entries; e++ {
		m.entry = e
		if err := m.runEntry(); err != nil {
			return err
		}
		m.iterBase += m.trip
		for c, ab := range m.abs {
			ab.Flush()
			if m.obs != nil {
				m.obs.Emit(obs.Event{Kind: obs.KindABFlush, Class: -1, Op: -1,
					Cluster: int32(c), Entry: e, Cycle: m.base + m.stall})
			}
		}
	}
	m.stats.Iterations = m.trip * m.entries
	m.stats.Entries = m.entries
	m.stats.StallCycles = m.stall
	m.stats.CommOps = int64(len(m.sc.Copies)) * m.trip * m.entries
	return nil
}

// runEntry simulates one entry: trip overlapped iterations of the kernel.
func (m *machine) runEntry() error {
	ii := int64(m.sc.II)
	vEnd := (m.trip-1)*ii + int64(m.maxCycle)
	window := int64(m.window)

	// Reset value rings: live-in values are ready at entry start.
	clear(m.complete)
	clear(m.copyArr)

	fp := m.fast
	if fp != nil {
		fp.entryBegin()
	}
	// Check cancellation immediately (as the historic v == 0 check did)
	// and then once per interval of *simulated progress*: sinceCtx
	// advances by the actual number of cycles each step covers, so a
	// fast-path jump of thousands of cycles triggers a prompt re-check
	// instead of silently stretching the cancellation latency.
	m.sinceCtx = ctxCheckInterval

	for v := int64(0); v <= vEnd; {
		if m.ctx != nil && m.sinceCtx >= ctxCheckInterval {
			m.sinceCtx = 0
			select {
			case <-m.ctx.Done():
				return fmt.Errorf("sim: canceled at cycle %d: %w", m.base+v+m.stall, m.ctx.Err())
			default:
			}
		}
		if fp != nil && fp.armed && v%ii == 0 {
			if nv, skipped := fp.boundary(m, v); skipped {
				m.sinceCtx = ctxCheckInterval // wall-event boundary: re-check promptly
				v = nv
				continue
			}
		}
		slot := v % ii
		m.active = m.active[:0]
		for _, ev := range m.slotEvents[slot] {
			i := (v - int64(ev.cycle)) / ii
			if i >= 0 && i < m.trip && (v-int64(ev.cycle))%ii == 0 {
				m.active = append(m.active, activeEvent{ev, i})
			}
		}
		if len(m.active) == 0 {
			// Dead cycle: no event executes, so no state mutates and no
			// event (trace line, stall, fault consultation) can occur
			// before the next active cycle — jumping is unobservable.
			// Inside the fully-active region the activity pattern per
			// slot is static and the jump is a table lookup; during fill
			// and drain (a few II at each end) just tick.
			adv := int64(1)
			if fp != nil && v >= int64(m.maxCycle) && v+fp.steadyNext[slot] <= fp.steadyEnd {
				adv = fp.steadyNext[slot]
				if fp.armed {
					// Land on iteration boundaries while snapshots run.
					if b := ii - slot; b < adv {
						adv = b
					}
				}
				if adv > 1 {
					fp.stats.DeadCycleSkips++
					fp.stats.DeadCyclesSkipped += adv - 1
				}
			}
			v += adv
			m.sinceCtx += adv
			continue
		}

		// Lockstep issue: the word issues when every operand of every
		// event in it has arrived.
		issue := m.base + v + m.stall
		ready := issue
		for _, a := range m.active {
			var ins []input
			if a.ev.isCopy {
				ins = m.copyInputs[a.ev.idx : a.ev.idx+1]
			} else {
				ins = m.inputs[a.ev.idx]
			}
			for _, in := range ins {
				if r := m.valueReady(in, a.iter, window); r > ready {
					ready = r
				}
			}
		}
		if ready > issue {
			if m.obs != nil {
				m.obs.Emit(obs.Event{Kind: obs.KindStall, Class: -1, Op: -1, Cluster: -1,
					Entry: m.entry, Cycle: issue, Arg: ready - issue})
			}
			m.stall += ready - issue
			issue = ready
		}

		for _, a := range m.active {
			m.execute(a.ev, a.iter, issue)
		}
		v++
		m.sinceCtx++
	}
	m.stats.ComputeCycles += vEnd + 1
	m.base += vEnd + 1
	return nil
}

// valueReady returns when the value described by in is available for the
// consumer of iteration iter. Values produced before the entry's first
// iteration (live-ins) are ready immediately.
func (m *machine) valueReady(in input, iter, window int64) int64 {
	pi := iter - int64(in.dist)
	if pi < 0 {
		return 0
	}
	if in.copyIdx >= 0 {
		return m.copyArr[int64(in.copyIdx)*window+pi%window]
	}
	return m.complete[int64(in.from)*window+pi%window]
}

// execute performs one event at the (stall-adjusted) issue time.
func (m *machine) execute(ev event, iter, issue int64) {
	window := int64(m.window)
	if ev.isCopy {
		m.copyArr[int64(ev.idx)*window+iter%window] = issue + int64(m.cfg.RegBusLatency)
		return
	}
	id := ev.idx
	o := m.loop.Ops[id]
	var done int64
	if o.Kind.IsMem() {
		done = m.memAccess(id, iter, issue)
	} else {
		lat := int64(o.Kind.Latency())
		if lat < 1 {
			lat = 1
		}
		done = issue + lat
	}
	if m.obs != nil {
		m.obs.Emit(obs.Event{Kind: obs.KindIssue, Class: -1, Op: int32(id),
			Cluster: int32(m.sc.Cluster[id]), Entry: m.entry, Iter: iter, Cycle: issue, Arg: done})
	}
	m.complete[int64(id)*window+iter%window] = done
}

// memAccess models one memory access and returns its completion time (for
// loads: data available in the issuing cluster).
func (m *machine) memAccess(id int, iter, issue int64) int64 {
	o := m.loop.Ops[id]
	cluster := m.sc.Cluster[id]
	addr := o.Addr.AddrAt(m.loop.Symbols[o.Addr.Base].Base, iter)
	home := m.cfg.HomeCluster(addr)
	sub := m.cfg.Subblock(addr)
	block := m.cfg.BlockAddr(addr)
	hitLat := int64(m.cfg.CacheHitLatency)
	isStore := o.Kind == ir.KindStore

	if m.cfg.Replicated() {
		return m.memAccessReplicated(id, iter, issue, cluster, addr, block, isStore)
	}

	// Chaos: adversarial Attraction Buffer replacement right before the
	// access — the buffer may lose its copies at any time on real hardware.
	if m.abs != nil && m.faults.flushAB(cluster, iter) {
		m.abs[cluster].Flush()
		if m.obs != nil {
			m.obs.Emit(obs.Event{Kind: obs.KindABFlush, Class: -1, Op: int32(id),
				Cluster: int32(cluster), Entry: m.entry, Iter: iter, Cycle: issue, Arg: 1})
		}
	}

	// Store replication: only the instance in the home cluster executes.
	// Nullified instances still keep their cluster's local copies fresh:
	// they update a present Attraction Buffer copy and invalidate any
	// in-flight (pending) fetch of the subblock, which the home-cluster
	// instance is about to make stale.
	if isStore && m.group[id] {
		if cluster != home {
			m.stats.NullifiedStores++
			if m.abs != nil {
				if m.abs[cluster].Update(sub, issue) {
					m.stats.ABUpdates++
				}
			}
			m.pending[cluster].put(subKey(sub), 0)
			return issue + 1
		}
	}

	// Requester-side combining: the subblock is already on its way here.
	// Loads and local stores join the pending request (a local store's
	// write merges when the fill lands, in issue order). A remote store
	// cannot join — its write must reach the home bank — and it makes the
	// in-flight copy stale, so the pending entry is invalidated.
	if p := m.pending[cluster].get(subKey(sub)); p > issue {
		if !isStore || cluster == home {
			m.access(Combined, iter, id, cluster, home, addr, issue, issue, isStore, o.Addr.Size)
			return p
		}
		m.pending[cluster].put(subKey(sub), 0)
		// The reply will deposit a pre-store (stale) copy in the Attraction
		// Buffer; drop it so the store — and everything after it — takes
		// the bus path behind the fetch instead of hitting a copy whose
		// data has not physically arrived yet. (Options.DisableABInvalidate
		// skips the drop to let regressions re-trip the checker.)
		if m.abs != nil && !m.opts.DisableABInvalidate {
			m.abs[cluster].Invalidate(sub)
			if m.obs != nil {
				m.obs.Emit(obs.Event{Kind: obs.KindABInvalidate, Class: -1, Op: int32(id),
					Cluster: int32(cluster), Entry: m.entry, Iter: iter, Cycle: issue, Addr: addr})
			}
		}
	}

	if cluster == home {
		hit := m.modules[home].Access(block, issue, isStore)
		fill := !hit
		if m.faults.flip(id, cluster, iter, hit) {
			// A flipped outcome is timing-only: a downgraded hit pays the
			// next-level path but must not Fill (the subblock is already
			// present; Fill would duplicate the line), and an upgraded miss
			// is served at hit latency without the line ever arriving.
			hit = !hit
			fill = false
		}
		if hit {
			m.access(LocalHit, iter, id, cluster, home, addr, issue, issue, isStore, o.Addr.Size)
			return issue + hitLat + m.faults.memExtra(id, cluster, iter)
		}
		start := m.ports.Acquire(issue + hitLat)
		done := start + int64(m.cfg.NextLevelLatency) + m.faults.memExtra(id, cluster, iter)
		if fill {
			m.modules[home].Fill(block, done, isStore)
		}
		m.pending[cluster].put(subKey(sub), done)
		m.access(LocalMiss, iter, id, cluster, home, addr, issue, issue, isStore, o.Addr.Size)
		return done
	}

	// Remote access. Loads may be satisfied by the local Attraction
	// Buffer; stores write into a present copy (dirty, flushed at the loop
	// boundary) — both count as local (§5).
	if m.abs != nil {
		if !isStore && m.abs[cluster].Lookup(sub, issue) {
			m.stats.ABHits++
			m.access(LocalHit, iter, id, cluster, home, addr, issue, issue, false, o.Addr.Size)
			m.emitABHit(id, cluster, iter, addr, issue)
			return issue + hitLat
		}
		if isStore && m.abs[cluster].Write(sub, issue) {
			m.stats.ABHits++
			m.stats.ABUpdates++
			m.access(LocalHit, iter, id, cluster, home, addr, issue, issue, true, o.Addr.Size)
			m.emitABHit(id, cluster, iter, addr, issue)
			return issue + hitLat
		}
	}

	m.arb.Advance(issue) // the processor clock is monotone; prune dead intervals
	reqIssue := issue + m.faults.busExtra(id, cluster, iter)
	// A cluster's request stream enters arbitration FIFO: injected queueing
	// delay on one request also floors every later request from the same
	// cluster, so injection can never reorder same-cluster bank arrivals —
	// the invariant the paper's techniques (and real hardware) rely on.
	if reqIssue < m.busFloor[cluster] {
		reqIssue = m.busFloor[cluster]
	}
	m.busFloor[cluster] = reqIssue
	_, reqDone := m.arb.Acquire(reqIssue)
	if m.obs != nil {
		m.obs.Emit(obs.Event{Kind: obs.KindBusTransfer, Class: -1, Op: int32(id),
			Cluster: int32(cluster), Entry: m.entry, Iter: iter, Cycle: reqIssue, Addr: addr, Arg: reqDone})
	}
	arrive := reqDone
	var dataAtHome int64
	var class Class
	hit := m.modules[home].Access(block, arrive, isStore)
	fill := !hit
	if m.faults.flip(id, cluster, iter, hit) {
		hit = !hit
		fill = false // see the local path: flips are timing-only, never Fill
	}
	if hit {
		class = RemoteHit
		dataAtHome = arrive + hitLat
	} else {
		start := m.ports.Acquire(arrive + hitLat)
		dataAtHome = start + int64(m.cfg.NextLevelLatency)
		if fill {
			m.modules[home].Fill(block, dataAtHome, isStore)
		}
		class = RemoteMiss
	}
	m.access(class, iter, id, cluster, home, addr, issue, arrive, isStore, o.Addr.Size)

	if isStore {
		// The store's data travels with the request; no reply. A local AB
		// copy, if any, is refreshed so later local loads see the value.
		if m.abs != nil {
			if m.abs[cluster].Update(sub, issue) {
				m.stats.ABUpdates++
			}
		}
		return dataAtHome
	}
	// MemExtra delays only the data-return path: the access's bank arrival
	// (recorded above) is already fixed, so return-path variance cannot
	// perturb the coherence order.
	repStart := dataAtHome + m.faults.memExtra(id, cluster, iter)
	_, repDone := m.arb.Acquire(repStart)
	if m.obs != nil {
		m.obs.Emit(obs.Event{Kind: obs.KindBusTransfer, Class: -1, Op: int32(id),
			Cluster: int32(home), Entry: m.entry, Iter: iter, Cycle: repStart, Addr: addr, Arg: repDone})
	}
	m.pending[cluster].put(subKey(sub), repDone)
	if m.abs != nil {
		m.abs[cluster].Insert(sub, repDone)
	}
	return repDone
}

// record captures a bank arrival for the coherence checker. An access is
// routed to (and serialized at) the bank owning its *starting* interleave
// unit; bytes spilling into the next unit ride the same transaction, so
// the checker tracks the routed unit's bytes only. Naturally aligned
// accesses no wider than the interleaving factor — the common case, and
// the case the paper's word-interleaved design serializes — are covered in
// full.
func (m *machine) record(arrive, iter int64, id, loc int, store bool, addr uint64, size int) {
	if !m.opts.CheckCoherence {
		return
	}
	if !m.cfg.Replicated() {
		// Word-interleaved: the transaction is serialized at the bank of
		// the starting interleave unit.
		if within := m.cfg.InterleaveBytes - int(addr)%m.cfg.InterleaveBytes; size > within {
			size = within
		}
	}
	m.seq++
	m.recs = append(m.recs, bankRec{
		arrive: arrive,
		seq:    m.seq,
		prog:   (m.iterBase+iter)*int64(len(m.loop.Ops)) + int64(m.origin[id]),
		op:     id,
		loc:    loc,
		store:  store,
		addr:   addr,
		size:   size,
	})
}

// checkCoherence replays the recorded bank arrivals in arrival order and
// counts conflicting accesses that arrive out of program order: a store
// arriving after a program-later access to the same byte, or a load
// arriving after a program-later store. These are exactly the reorderings
// that corrupt memory in the optimistic baseline (§2.3). The per-byte
// ordering state lives in an epoch-cleared table reused across runs
// (earlier versions built two fresh maps per run).
func (m *machine) checkCoherence() int64 {
	slices.SortFunc(m.recs, func(a, b bankRec) int {
		switch {
		case a.arrive != b.arrive:
			if a.arrive < b.arrive {
				return -1
			}
			return 1
		case a.seq != b.seq:
			if a.seq < b.seq {
				return -1
			}
			return 1
		}
		return 0
	})
	t := &m.coher
	var violations int64
	for i := range m.recs {
		r := &m.recs[i]
		bad := false
		for b := uint64(0); b < uint64(r.size); b++ {
			s := t.slot(coherKey(r.loc, r.addr+b))
			if r.store {
				if t.maxAny[s] > r.prog {
					bad = true
				}
			} else if t.maxSto[s] > r.prog {
				bad = true
			}
		}
		for b := uint64(0); b < uint64(r.size); b++ {
			s := t.slot(coherKey(r.loc, r.addr+b))
			if r.prog > t.maxAny[s] {
				t.maxAny[s] = r.prog
			}
			if r.store && r.prog > t.maxSto[s] {
				t.maxSto[s] = r.prog
			}
		}
		if bad {
			violations++
		}
	}
	return violations
}

// collect folds substrate counters into the stats.
func (m *machine) collect() {
	for _, mod := range m.modules {
		m.stats.Evictions += mod.Evictions
		m.stats.Writebacks += mod.Writebacks
	}
	for _, ab := range m.abs {
		m.stats.ABFlushes += ab.Flushes
		m.stats.ABDirtyWritebacks += ab.DirtyWritebacks
	}
	m.stats.BusTransfers = m.arb.Transfers
	m.stats.BusWaitedCycles = m.arb.Waited
	m.stats.NextLevelRequests = m.ports.Requests
	m.stats.PortsWaited = m.ports.Waited
}
