package sim

import (
	"vliwcache/internal/arch"
	"vliwcache/internal/obs"
)

// memAccessReplicated models one access under the replicated cache layout
// (arch.LayoutReplicated): every cluster holds a full copy of the cache,
// the next memory level is the source of truth, and stores write through
// to it.
//
//   - Loads are always local: copy hit, or a next-level fetch filling the
//     local copy (request combining applies per cluster).
//   - A non-replicated store updates its local copy (no allocation on
//     absence), writes through to the next level, and broadcasts update
//     messages to the other clusters over the memory buses; each message
//     refreshes that cluster's copy if present. This is the coherence
//     hazard: the remote copies lag by the (non-deterministic) bus delay.
//   - A DDGT store instance updates only its own cluster's copy — that is
//     exactly what the replicas are for, and no bus traffic is needed;
//     the instance pinned to cluster 0 also performs the write-through.
//
// The coherence checker treats every cluster's copy and the next level as
// separate serialization points (bankRec.loc).
func (m *machine) memAccessReplicated(id int, iter, issue int64, cluster int, addr uint64, block uint64, isStore bool) int64 {
	o := m.loop.Ops[id]
	hitLat := int64(m.cfg.CacheHitLatency)
	nextLat := int64(m.cfg.NextLevelLatency)
	l2 := m.cfg.NumClusters // checker location of the next level
	sub := arch.SubblockID{Block: block}

	if !isStore {
		// Combining with an in-flight local fill.
		if p := m.pending[cluster].get(subKey(sub)); p > issue {
			m.access(Combined, iter, id, cluster, cluster, addr, issue, issue, false, o.Addr.Size)
			return p
		}
		hit := m.modules[cluster].Access(block, issue, false)
		fill := !hit
		if m.faults.flip(id, cluster, iter, hit) {
			hit = !hit
			fill = false // flips are timing-only, never Fill (see memAccess)
		}
		if hit {
			m.access(LocalHit, iter, id, cluster, cluster, addr, issue, issue, false, o.Addr.Size)
			return issue + hitLat + m.faults.memExtra(id, cluster, iter)
		}
		// Local miss: fetch from the next level (the source of truth).
		start := m.ports.Acquire(issue + hitLat)
		done := start + nextLat + m.faults.memExtra(id, cluster, iter)
		if fill {
			m.modules[cluster].Fill(block, done, false)
		}
		m.pending[cluster].put(subKey(sub), done)
		m.access(LocalMiss, iter, id, cluster, l2, addr, issue, start, false, o.Addr.Size)
		return done
	}

	// Stores: update the local copy if present (replicated copies are
	// never write-allocated — the next level holds the truth).
	localHit := m.modules[cluster].Contains(block)
	if localHit {
		m.modules[cluster].Access(block, issue, false) // LRU touch; stays clean (write-through)
		m.access(LocalHit, iter, id, cluster, cluster, addr, issue, issue, true, o.Addr.Size)
	} else {
		m.access(LocalMiss, iter, id, cluster, cluster, addr, issue, issue, true, o.Addr.Size)
	}
	// A store makes any in-flight pre-store fill of this cluster stale.
	m.pending[cluster].put(subKey(sub), 0)

	if m.group[id] {
		// DDGT instance: it only owns its cluster's copy. The instance in
		// cluster 0 performs the single write-through for the group.
		if cluster == 0 {
			start := m.ports.Acquire(issue + hitLat)
			m.record(start, iter, id, l2, true, addr, o.Addr.Size)
			m.emitArrival(id, l2, iter, addr, start)
			return start + nextLat
		}
		return issue + hitLat
	}

	// Ordinary store: write through and broadcast to the other copies.
	start := m.ports.Acquire(issue + hitLat)
	m.record(start, iter, id, l2, true, addr, o.Addr.Size)
	m.emitArrival(id, l2, iter, addr, start)
	done := start + nextLat
	for c := 0; c < m.cfg.NumClusters; c++ {
		if c == cluster {
			continue
		}
		m.arb.Advance(issue)
		// Injected queueing delay floors later messages from the same
		// sender (FIFO per cluster), as in memAccess.
		reqIssue := issue + m.faults.busExtra(id, cluster, iter)
		if reqIssue < m.busFloor[cluster] {
			reqIssue = m.busFloor[cluster]
		}
		m.busFloor[cluster] = reqIssue
		_, arrive := m.arb.Acquire(reqIssue)
		if m.obs != nil {
			m.obs.Emit(obs.Event{Kind: obs.KindBusTransfer, Class: -1, Op: int32(id),
				Cluster: int32(cluster), Entry: m.entry, Iter: iter, Cycle: reqIssue, Addr: addr, Arg: arrive})
		}
		if m.modules[c].Contains(block) {
			m.modules[c].Access(block, arrive, false)
		}
		m.record(arrive, iter, id, c, true, addr, o.Addr.Size)
		m.emitArrival(id, c, iter, addr, arrive)
		// The broadcast supersedes any in-flight pre-store fill there.
		if m.pending[c].get(subKey(sub)) > arrive {
			m.pending[c].put(subKey(sub), 0)
		}
		if arrive+hitLat > done {
			done = arrive + hitLat
		}
	}
	return done
}
