package sim

import (
	"bytes"
	"strings"
	"testing"

	"vliwcache/internal/arch"
	"vliwcache/internal/core"
	"vliwcache/internal/sched"
)

func TestTraceCSV(t *testing.T) {
	cfg := arch.Default()
	loop := streamLoop(50)
	plan, err := core.Prepare(loop, core.PolicyMDC, cfg.NumClusters)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := sched.Run(plan, sched.Options{Arch: cfg, Heuristic: sched.MinComs})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	st, err := Run(sc, Options{Trace: &buf})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if lines[0] != "entry,iter,op,cluster,class,addr,issue" {
		t.Fatalf("header = %q", lines[0])
	}
	// One line per classified access.
	if int64(len(lines)-1) != st.TotalAccesses() {
		t.Errorf("%d trace lines for %d accesses", len(lines)-1, st.TotalAccesses())
	}
	if !strings.Contains(buf.String(), "st,") || !strings.Contains(buf.String(), "ld,") {
		t.Error("trace must name the ops")
	}
	for _, ln := range lines[1:] {
		if got := strings.Count(ln, ","); got != 6 {
			t.Fatalf("line %q has %d commas, want 6", ln, got)
		}
	}
}

func TestTraceReplicated(t *testing.T) {
	cfg := arch.Default().WithLayout(arch.LayoutReplicated)
	loop := streamLoop(30)
	plan, err := core.Prepare(loop, core.PolicyDDGT, cfg.NumClusters)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := sched.Run(plan, sched.Options{Arch: cfg, Heuristic: sched.MinComs})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	st, err := Run(sc, Options{Trace: &buf})
	if err != nil {
		t.Fatal(err)
	}
	if int64(strings.Count(buf.String(), "\n"))-1 != st.TotalAccesses() {
		t.Error("replicated trace line count mismatch")
	}
}
