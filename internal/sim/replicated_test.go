package sim

import (
	"testing"

	"vliwcache/internal/arch"
	"vliwcache/internal/core"
	"vliwcache/internal/ir"
	"vliwcache/internal/loopgen"
	"vliwcache/internal/profiler"
	"vliwcache/internal/sched"
)

func replicatedCfg() arch.Config {
	return arch.Default().WithLayout(arch.LayoutReplicated)
}

func TestReplicatedBaselineViolates(t *testing.T) {
	// The replicated-cache analog of Figure 2: a store in cluster 3 whose
	// broadcast update races the aliased load reading cluster 1's local
	// copy one cycle later. Warm both copies first via the loads.
	cfg := replicatedCfg()
	loop := streamLoop(2000)
	plan, err := core.Prepare(loop, core.PolicyFree, cfg.NumClusters)
	if err != nil {
		t.Fatal(err)
	}
	sc := &sched.Schedule{
		Plan:    plan,
		Arch:    cfg,
		II:      2,
		Length:  3,
		Cycle:   []int{0, 1, 2},
		Cluster: []int{3, 1, 1},
		Lat:     []int{1, 1, 1},
	}
	if err := sched.Validate(sc); err != nil {
		t.Fatal(err)
	}
	st, err := Run(sc, Options{CheckCoherence: true})
	if err != nil {
		t.Fatal(err)
	}
	if st.Violations == 0 {
		t.Errorf("replicated baseline must race broadcasts against local reads: %s", st)
	}
}

func TestReplicatedCoherenceGuarantee(t *testing.T) {
	cfg := replicatedCfg()
	for seed := int64(300); seed < 340; seed++ {
		loop := loopgen.Random(seed, loopgen.DefaultParams())
		for _, pol := range []core.Policy{core.PolicyMDC, core.PolicyDDGT} {
			plan, err := core.Prepare(loop, pol, cfg.NumClusters)
			if err != nil {
				t.Fatal(err)
			}
			sc, err := sched.Run(plan, sched.Options{Arch: cfg, Heuristic: sched.MinComs, Profile: profiler.Run(loop, cfg)})
			if err != nil {
				t.Fatalf("seed %d %v: %v", seed, pol, err)
			}
			st, err := Run(sc, Options{CheckCoherence: true})
			if err != nil {
				t.Fatal(err)
			}
			if st.Violations != 0 {
				t.Errorf("seed %d %v: %d violations under replicated layout\n%s",
					seed, pol, st.Violations, loop)
			}
		}
	}
}

func TestReplicatedLoadsAlwaysLocal(t *testing.T) {
	cfg := replicatedCfg()
	st := runPolicy(t, streamLoop(2000), core.PolicyMDC, sched.MinComs, cfg, Options{})
	if remote := st.Accesses[RemoteHit] + st.Accesses[RemoteMiss]; remote != 0 {
		t.Errorf("replicated layout produced %d remote accesses", remote)
	}
}

func TestReplicatedDDGTAvoidsBroadcastTraffic(t *testing.T) {
	// Under DDGT the per-cluster instances update the copies directly, so
	// the memory buses carry no store broadcasts; under MDC every store
	// broadcasts to the other three clusters.
	cfg := replicatedCfg()
	loop := streamLoop(1500)
	mdc := runPolicy(t, loop, core.PolicyMDC, sched.MinComs, cfg, Options{})
	dt := runPolicy(t, loop, core.PolicyDDGT, sched.MinComs, cfg, Options{})
	if mdc.BusTransfers == 0 {
		t.Error("MDC stores must broadcast over the buses")
	}
	if dt.BusTransfers != 0 {
		t.Errorf("DDGT store instances must not use the buses, got %d transfers", dt.BusTransfers)
	}
}

func TestReplicatedCapacityLoss(t *testing.T) {
	// Replication divides effective capacity: a streaming walk with
	// trailing reuse that fits comfortably in a 2KB interleaved module's
	// worth of subblocks misses more under the replicated layout, where a
	// 2KB module holds only 64 whole blocks.
	mk := func() *ir.Loop {
		b := ir.NewBuilder("ws")
		b.Symbol("a", 0x100000, 1<<20)
		b.Trip(6000, 1)
		v := b.Load("lead", ir.AddrExpr{Base: "a", Stride: 32, Size: 4})
		// Trailing loads re-touch blocks from ~100 iterations back: 100
		// blocks of history stays resident interleaved (each module holds
		// 256 subblocks) but thrashes a replicated module (64 blocks,
		// shared with the leading walk).
		for j := 1; j <= 6; j++ {
			b.Load("", ir.AddrExpr{Base: "a", Offset: -32 * 100 * int64(j) / 6, Stride: 32, Size: 4})
		}
		b.Arith("use", ir.KindAdd, v)
		return b.Loop()
	}
	inter := runPolicy(t, mk(), core.PolicyFree, sched.MinComs, arch.Default(), Options{})
	repl := runPolicy(t, mk(), core.PolicyFree, sched.MinComs, replicatedCfg(), Options{})
	interMiss := inter.Accesses[LocalMiss] + inter.Accesses[RemoteMiss]
	replMiss := repl.Accesses[LocalMiss]
	if replMiss <= interMiss {
		t.Errorf("replicated misses %d must exceed interleaved %d (capacity loss)", replMiss, interMiss)
	}
	if repl.Accesses[RemoteHit]+repl.Accesses[RemoteMiss] != 0 {
		t.Error("replicated accesses must be local")
	}
}

func TestReplicatedStatsViaAB(t *testing.T) {
	// Attraction Buffers are rejected under the replicated layout.
	cfg := replicatedCfg().WithAttractionBuffers(16)
	if cfg.Validate() == nil {
		t.Error("AB + replicated must be rejected")
	}
}
