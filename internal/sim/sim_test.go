package sim

import (
	"testing"

	"vliwcache/internal/arch"
	"vliwcache/internal/core"
	"vliwcache/internal/ir"
	"vliwcache/internal/profiler"
	"vliwcache/internal/sched"
)

// streamLoop: store a[i] then load a[i] in the same iteration (MF dist 0),
// the textbook coherence hazard of Figure 2.
func streamLoop(trip int64) *ir.Loop {
	b := ir.NewBuilder("stream")
	b.Symbol("a", 0x10000, 1<<20)
	b.Trip(trip, 1)
	val := b.Reg() // live-in
	b.Store("st", ir.AddrExpr{Base: "a", Stride: 4, Size: 4}, val)
	r := b.Load("ld", ir.AddrExpr{Base: "a", Stride: 4, Size: 4})
	b.Arith("use", ir.KindAdd, r)
	return b.Loop()
}

func runPolicy(t *testing.T, loop *ir.Loop, pol core.Policy, h sched.Heuristic, cfg arch.Config, opts Options) *Stats {
	t.Helper()
	plan, err := core.Prepare(loop, pol, cfg.NumClusters)
	if err != nil {
		t.Fatal(err)
	}
	prof := profiler.Run(loop, cfg)
	sc, err := sched.Run(plan, sched.Options{Arch: cfg, Heuristic: h, Profile: prof})
	if err != nil {
		t.Fatal(err)
	}
	st, err := Run(sc, opts)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestBaselineViolatesCoherence(t *testing.T) {
	// Hand-build the exact schedule of Figure 2: a store to X in cluster 4
	// (index 3) at cycle i, the aliased load in cluster 1 (index 1) one
	// cycle later. The store's remote update rides a 2-cycle memory bus,
	// so whenever X is homed in the load's cluster the load's local access
	// reaches the bank before the store's update arrives — the load reads
	// a stale value.
	cfg := arch.Default()
	loop := streamLoop(2000)
	plan, err := core.Prepare(loop, core.PolicyFree, cfg.NumClusters)
	if err != nil {
		t.Fatal(err)
	}
	sc := &sched.Schedule{
		Plan:    plan,
		Arch:    cfg,
		II:      2,
		Length:  3,
		Cycle:   []int{0, 1, 2}, // st, ld, use
		Cluster: []int{3, 1, 1}, // st in cl3, ld+use in cl1
		Lat:     []int{1, 1, 1},
	}
	if err := sched.Validate(sc); err != nil {
		t.Fatalf("hand-built schedule invalid: %v", err)
	}
	st, err := Run(sc, Options{CheckCoherence: true})
	if err != nil {
		t.Fatal(err)
	}
	if st.Violations == 0 {
		t.Errorf("optimistic baseline with split aliased ops must violate ordering; stats: %s", st)
	}
}

func TestMDCAndDDGTAreCoherent(t *testing.T) {
	cfg := arch.Default()
	for _, pol := range []core.Policy{core.PolicyMDC, core.PolicyDDGT} {
		for _, h := range []sched.Heuristic{sched.PrefClus, sched.MinComs} {
			st := runPolicy(t, streamLoop(2000), pol, h, cfg, Options{CheckCoherence: true})
			if st.Violations != 0 {
				t.Errorf("%v/%v: %d ordering violations, want 0", pol, h, st.Violations)
			}
		}
	}
}

func TestMDCAndDDGTCoherentWithAttractionBuffers(t *testing.T) {
	cfg := arch.Default().WithAttractionBuffers(16)
	for _, pol := range []core.Policy{core.PolicyMDC, core.PolicyDDGT} {
		st := runPolicy(t, streamLoop(2000), pol, sched.PrefClus, cfg, Options{CheckCoherence: true})
		if st.Violations != 0 {
			t.Errorf("%v with AB: %d ordering violations, want 0", pol, st.Violations)
		}
	}
}

func TestAccessConservation(t *testing.T) {
	cfg := arch.Default()
	trip := int64(1500)
	loop := streamLoop(trip)

	// MDC: both memory ops execute every iteration.
	st := runPolicy(t, loop, core.PolicyMDC, sched.PrefClus, cfg, Options{})
	if got, want := st.TotalAccesses(), 2*trip; got != want {
		t.Errorf("MDC accesses = %d, want %d", got, want)
	}
	if st.NullifiedStores != 0 {
		t.Errorf("MDC nullified stores = %d, want 0", st.NullifiedStores)
	}

	// DDGT: the store is replicated; per iteration, one instance executes
	// and NumClusters-1 nullify. The load executes once.
	st = runPolicy(t, loop, core.PolicyDDGT, sched.PrefClus, cfg, Options{})
	if got, want := st.TotalAccesses(), 2*trip; got != want {
		t.Errorf("DDGT accesses = %d, want %d", got, want)
	}
	if got, want := st.NullifiedStores, int64(cfg.NumClusters-1)*trip; got != want {
		t.Errorf("DDGT nullified stores = %d, want %d", got, want)
	}
}

func TestDDGTStoresAreLocal(t *testing.T) {
	// With store replication, every executed store is performed by the
	// home-cluster instance: stores never go remote.
	cfg := arch.Default()
	st := runPolicy(t, streamLoop(1000), core.PolicyDDGT, sched.PrefClus, cfg, Options{})
	// The loop's only other access is the load; remote accesses can only
	// come from it. Stores are half of all accesses, so remote accesses
	// must be at most half.
	remote := st.Accesses[RemoteHit] + st.Accesses[RemoteMiss]
	if remote > st.TotalAccesses()/2 {
		t.Errorf("remote accesses %d exceed the load's share: stores must be local under DDGT (%s)", remote, st)
	}
}

func TestStallVersusComputeSplit(t *testing.T) {
	cfg := arch.Default()
	st := runPolicy(t, streamLoop(1000), core.PolicyMDC, sched.PrefClus, cfg, Options{})
	if st.ComputeCycles <= 0 {
		t.Errorf("compute cycles = %d, want > 0", st.ComputeCycles)
	}
	if st.StallCycles < 0 {
		t.Errorf("stall cycles = %d, want >= 0", st.StallCycles)
	}
	if st.Cycles() != st.ComputeCycles+st.StallCycles {
		t.Error("Cycles() must equal compute + stall")
	}
}

func TestAttractionBuffersIncreaseLocality(t *testing.T) {
	// A loop whose loads walk a small array repeatedly: remote subblocks
	// get attracted and reused.
	b := ir.NewBuilder("reuse")
	b.Symbol("a", 0x10000, 256)
	b.Trip(4000, 1)
	// Stride chosen so consecutive iterations hit all clusters; modulo a
	// small array (size 256 = 64 words) the stream revisits subblocks.
	r := b.Load("ld", ir.AddrExpr{Base: "a", Stride: 0, Offset: 64, Size: 4})
	r2 := b.Load("ld2", ir.AddrExpr{Base: "a", Stride: 0, Offset: 132, Size: 4})
	b.Arith("use", ir.KindAdd, r, r2)
	loop := b.Loop()

	cfgNoAB := arch.Default()
	cfgAB := arch.Default().WithAttractionBuffers(16)
	stNo := runPolicy(t, loop, core.PolicyMDC, sched.MinComs, cfgNoAB, Options{})
	stAB := runPolicy(t, loop, core.PolicyMDC, sched.MinComs, cfgAB, Options{})
	if stAB.LocalHitRatio() < stNo.LocalHitRatio() {
		t.Errorf("AB local hit ratio %.3f < no-AB %.3f", stAB.LocalHitRatio(), stNo.LocalHitRatio())
	}
}

func TestIterationCap(t *testing.T) {
	cfg := arch.Default()
	st := runPolicy(t, streamLoop(100000), core.PolicyMDC, sched.PrefClus, cfg, Options{MaxIterations: 500})
	if st.Iterations != 500 {
		t.Errorf("iterations = %d, want 500", st.Iterations)
	}
}
