package sim

// Differential tests of the fast-forward layer: the fast path must be
// byte-identical to the slow path — same Stats, same traces — on every
// mediabench schedule, and must actually extrapolate (not merely match)
// on steady loops with room to skip.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"reflect"
	"strings"
	"testing"
	"time"

	"vliwcache/internal/arch"
	"vliwcache/internal/core"
	"vliwcache/internal/loopgen"
	"vliwcache/internal/mediabench"
	"vliwcache/internal/profiler"
	"vliwcache/internal/sched"
)

// fpSchedule builds a schedule for the given mediabench loop, optionally
// overriding the trip count (0 keeps the benchmark's own trip).
func fpSchedule(tb testing.TB, benchName string, loopIdx int, trip int64, pol core.Policy) *sched.Schedule {
	tb.Helper()
	bench, err := mediabench.Get(benchName)
	if err != nil {
		tb.Fatal(err)
	}
	loop := bench.Loops[loopIdx]
	if trip > 0 {
		ext := *loop // shallow copy: Ops and Symbols are read-only here
		ext.Trip = trip
		loop = &ext
	}
	cfg := arch.Default().WithInterleave(bench.Interleave)
	plan, err := core.Prepare(loop, pol, cfg.NumClusters)
	if err != nil {
		tb.Fatal(err)
	}
	sc, err := sched.Run(plan, sched.Options{Arch: cfg, Heuristic: sched.PrefClus, Profile: profiler.Run(loop, cfg)})
	if err != nil {
		tb.Fatal(err)
	}
	return sc
}

// diffRun runs sc through the slow and fast paths and requires identical
// Stats, returning the fast run's FastPathStats.
func diffRun(tb testing.TB, sc *sched.Schedule, opts Options) FastPathStats {
	tb.Helper()
	slow, err := Run(sc, opts)
	if err != nil {
		tb.Fatal(err)
	}
	fopts := opts
	fopts.FastPath = true
	r, err := NewRunner(sc, fopts)
	if err != nil {
		tb.Fatal(err)
	}
	fast, err := r.Run(context.Background())
	if err != nil {
		tb.Fatal(err)
	}
	if !reflect.DeepEqual(*slow, *fast) {
		tb.Errorf("fast path diverged:\nslow: %+v\nfast: %+v\nfast-path stats: %+v",
			*slow, *fast, r.FastPath())
	}
	return r.FastPath()
}

// TestFastPathIdenticalStats runs every mediabench loop under every
// policy through both paths at the benchmark's natural trip and requires
// exactly equal Stats. This is the byte-identity gate of the PR: whatever
// the detector does — extrapolate, validate-fail, or disarm — the result
// must be indistinguishable from the slow path.
func TestFastPathIdenticalStats(t *testing.T) {
	for _, name := range mediabench.Names() {
		bench, err := mediabench.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		for li := range bench.Loops {
			for _, pol := range []core.Policy{core.PolicyFree, core.PolicyMDC, core.PolicyDDGT} {
				sc := fpSchedule(t, name, li, 0, pol)
				diffRun(t, sc, Options{})
				if t.Failed() {
					t.Fatalf("%s loop %d policy %v diverged", name, li, pol)
				}
			}
		}
	}
}

// TestFastPathExtrapolatesExtended extends the trip of one loop per
// benchmark far enough for steady-state detection to amortize (the
// natural mediabench trips are too short for their snapshot periods) and
// requires extrapolation to actually fire — with Stats still exactly
// equal to the slow path's.
func TestFastPathExtrapolatesExtended(t *testing.T) {
	// Aux loops: only table- and fixed-home accesses (strides 0 and N*I),
	// so the set-alignment period is short and the address lanes leave
	// room for tens of thousands of iterations.
	cases := []struct {
		bench string
		loop  int
		trip  int64
	}{
		{"epicenc", 1, 16000},
		{"g721dec", 1, 16000},
		{"jpegdec", 1, 16000},
		{"gsmenc", 1, 16000},
		{"pgpenc", 1, 16000},
	}
	for _, tc := range cases {
		sc := fpSchedule(t, tc.bench, tc.loop, tc.trip, core.PolicyMDC)
		fp := diffRun(t, sc, Options{})
		if t.Failed() {
			t.Fatalf("%s loop %d diverged", tc.bench, tc.loop)
		}
		if fp.Extrapolations == 0 {
			t.Errorf("%s loop %d trip %d: no extrapolation: %+v", tc.bench, tc.loop, tc.trip, fp)
		}
		t.Logf("%s loop %d: skipped %d/%d iterations in %d skips",
			tc.bench, tc.loop, fp.SkippedIterations, tc.trip, fp.Extrapolations)
	}
}

// TestFastPathProbe exercises one aux loop with an extended trip and
// reports what the detector did — the development probe kept as a
// regression anchor: extrapolation must fire here.
func TestFastPathProbe(t *testing.T) {
	sc := fpSchedule(t, "epicenc", 1, 16000, core.PolicyMDC)
	fp := diffRun(t, sc, Options{})
	t.Logf("fast-path stats: %+v", fp)
	if fp.Extrapolations == 0 {
		t.Errorf("expected extrapolation to fire, got %+v", fp)
	}
}

// TestFastPathBoundaryTrips sweeps trip counts across the detector's
// edges — around eligibility, around snapshot-period multiples, and at
// the extremes of the skippable window — pinning the final-iteration
// cycle and stall attribution: Stats (ComputeCycles, StallCycles, every
// counter) must equal the slow path's exactly at every boundary.
func TestFastPathBoundaryTrips(t *testing.T) {
	// epicenc's aux loop has snapshot period 256 (strides {0, 16}, 128
	// sets x 32B blocks); sweep around multiples of it.
	trips := []int64{
		1, 2, 3, 17,
		255, 256, 257,
		1023, 1024, 1025, // around 4*period: the eligibility edge
		1279, 1280, 1281,
		2047, 2048, 2049,
		4095, 4096, 4097,
		8191, 8192, 8193,
		16000,
	}
	for _, trip := range trips {
		sc := fpSchedule(t, "epicenc", 1, trip, core.PolicyMDC)
		fp := diffRun(t, sc, Options{})
		if t.Failed() {
			t.Fatalf("trip %d diverged (fast-path stats: %+v)", trip, fp)
		}
	}
}

// TestFastPathFallbackLoud: every configuration that would break the
// byte-identity guarantee must disarm steady-state detection, count the
// fallback with a reason, and still produce identical Stats (and, where
// applicable, identical traces and fault logs).
func TestFastPathFallbackLoud(t *testing.T) {
	base := func() *sched.Schedule { return fpSchedule(t, "epicenc", 1, 16000, core.PolicyMDC) }
	cases := []struct {
		name   string
		sc     func() *sched.Schedule
		opts   Options
		reason string
	}{
		{"csv-trace", base, Options{Trace: io.Discard}, "CSV trace"},
		{"coherence", base, Options{CheckCoherence: true}, "coherence checker"},
		{"chaos", base, Options{
			NewFaults: func(*sched.Schedule) FaultInjector { return &countingInjector{} },
		}, "fault injector"},
		{"attraction-buffers", func() *sched.Schedule {
			bench, err := mediabench.Get("epicenc")
			if err != nil {
				t.Fatal(err)
			}
			loop := bench.Loops[1]
			ext := *loop
			ext.Trip = 16000
			cfg := arch.Default().WithInterleave(bench.Interleave).WithAttractionBuffers(16)
			plan, err := core.Prepare(&ext, core.PolicyMDC, cfg.NumClusters)
			if err != nil {
				t.Fatal(err)
			}
			sc, err := sched.Run(plan, sched.Options{Arch: cfg, Heuristic: sched.PrefClus, Profile: profiler.Run(&ext, cfg)})
			if err != nil {
				t.Fatal(err)
			}
			return sc
		}, Options{}, "attraction buffers"},
		{"short-trip", func() *sched.Schedule { return fpSchedule(t, "epicenc", 1, 300, core.PolicyMDC) },
			Options{}, "trip too short"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc := tc.sc()

			var slowTrace, fastTrace bytes.Buffer
			opts := tc.opts
			if opts.Trace != nil {
				opts.Trace = &slowTrace
			}
			slow, err := Run(sc, opts)
			if err != nil {
				t.Fatal(err)
			}

			fopts := tc.opts
			fopts.FastPath = true
			if fopts.Trace != nil {
				fopts.Trace = &fastTrace
			}
			r, err := NewRunner(sc, fopts)
			if err != nil {
				t.Fatal(err)
			}
			fast, err := r.Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}

			if !reflect.DeepEqual(*slow, *fast) {
				t.Errorf("stats diverged:\nslow: %+v\nfast: %+v", *slow, *fast)
			}
			if !bytes.Equal(slowTrace.Bytes(), fastTrace.Bytes()) {
				t.Error("CSV traces diverged")
			}
			fp := r.FastPath()
			if fp.FallbackRuns != 1 || fp.EligibleRuns != 0 {
				t.Errorf("expected a counted fallback, got %+v", fp)
			}
			if !strings.Contains(fp.LastFallbackReason, tc.reason) {
				t.Errorf("fallback reason %q does not mention %q", fp.LastFallbackReason, tc.reason)
			}
			if fp.Extrapolations != 0 {
				t.Errorf("disarmed run extrapolated: %+v", fp)
			}
		})
	}
}

// pollCtx is a deterministic context for the cancellation-latency test:
// Done() reports a closed channel from the cancelAt-th poll onward, so
// the exact poll at which the simulator notices cancellation is chosen
// by the test, not by a racing goroutine.
type pollCtx struct {
	polls    int64
	cancelAt int64 // 0 = never
	closed   chan struct{}
	open     chan struct{}
}

func newPollCtx(cancelAt int64) *pollCtx {
	p := &pollCtx{cancelAt: cancelAt, closed: make(chan struct{}), open: make(chan struct{})}
	close(p.closed)
	return p
}

func (p *pollCtx) Deadline() (time.Time, bool) { return time.Time{}, false }
func (p *pollCtx) Value(any) any               { return nil }
func (p *pollCtx) Done() <-chan struct{} {
	p.polls++
	if p.cancelAt > 0 && p.polls >= p.cancelAt {
		return p.closed
	}
	return p.open
}
func (p *pollCtx) Err() error {
	if p.cancelAt > 0 && p.polls >= p.cancelAt {
		return context.Canceled
	}
	return nil
}

// TestFastPathCancelAfterSkip is the regression test for the context-
// check cadence: a skip jumps the cycle counter by thousands of cycles,
// and the historic `v % interval` check could then drift (or stop firing
// altogether). The machine now counts simulated progress, so every skip
// forces a prompt re-check: a cancel arriving at any poll — including
// the post-skip ones — must abort the run within one check interval.
func TestFastPathCancelAfterSkip(t *testing.T) {
	sc := fpSchedule(t, "epicenc", 1, 16000, core.PolicyMDC)
	opts := Options{FastPath: true}
	r, err := NewRunner(sc, opts)
	if err != nil {
		t.Fatal(err)
	}

	// Uncancelled run: count polls and find where the skip landed.
	free := newPollCtx(0)
	if _, err := r.Run(free); err != nil {
		t.Fatal(err)
	}
	fp := r.FastPath()
	if fp.Extrapolations == 0 {
		t.Fatalf("skip did not fire; the test needs one: %+v", fp)
	}
	if free.polls < 2 {
		t.Fatalf("expected an entry-start poll plus post-skip polls, got %d", free.polls)
	}

	// Cancel at every poll index. Each run must abort with a wrapped
	// context.Canceled, and the reported cycles must be non-decreasing in
	// the poll index — in particular the cancel at the last poll (after
	// the skip) must still be honored.
	lastCycle := int64(-1)
	sawPostSkip := false
	for at := int64(1); at <= free.polls; at++ {
		_, err := r.Run(newPollCtx(at))
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancel at poll %d: got %v, want context.Canceled", at, err)
		}
		var cyc int64
		if _, serr := fmt.Sscanf(err.Error(), "sim: canceled at cycle %d", &cyc); serr != nil {
			t.Fatalf("cannot parse cancel cycle from %q: %v", err, serr)
		}
		if cyc < lastCycle {
			t.Fatalf("cancel cycle went backwards: poll %d at cycle %d after %d", at, cyc, lastCycle)
		}
		lastCycle = cyc
		if r.FastPath().Extrapolations > 0 {
			sawPostSkip = true
		}
	}
	if !sawPostSkip {
		t.Error("no cancel was delivered after the skip; the post-skip re-check is untested")
	}
}

// FuzzFastPath is the differential fuzzer of satellite 4: random small
// loops, scheduled for a deliberately tiny cache (8 sets per module, so
// snapshot periods are short and skips fire at modest trips), run down
// both paths. Any Stats difference is a finding.
func FuzzFastPath(f *testing.F) {
	for seed := int64(0); seed < 8; seed++ {
		f.Add(seed, int64(2000), false)
	}
	f.Add(int64(3), int64(4096), true)
	f.Fuzz(func(t *testing.T, seed, trip int64, ddgt bool) {
		if trip < 1 || trip > 1<<14 {
			t.Skip()
		}
		params := loopgen.DefaultParams()
		params.Trip = trip
		loop := loopgen.Random(seed, params)

		cfg := arch.Default()
		cfg.CacheBytes = 512 // 8 sets/module: wrap period 256 iterations max
		pol := core.PolicyMDC
		if ddgt {
			pol = core.PolicyDDGT
		}
		plan, err := core.Prepare(loop, pol, cfg.NumClusters)
		if err != nil {
			t.Skip()
		}
		sc, err := sched.Run(plan, sched.Options{Arch: cfg, Heuristic: sched.PrefClus, Profile: profiler.Run(loop, cfg)})
		if err != nil {
			t.Skip()
		}

		slow, err := Run(sc, Options{})
		if err != nil {
			t.Fatal(err)
		}
		r, err := NewRunner(sc, Options{FastPath: true})
		if err != nil {
			t.Fatal(err)
		}
		fast, err := r.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(*slow, *fast) {
			t.Errorf("seed %d trip %d ddgt %v: fast path diverged\nslow: %+v\nfast: %+v\nfp: %+v\n%s",
				seed, trip, ddgt, *slow, *fast, r.FastPath(), loop)
		}
	})
}
