package sim

import (
	"strings"
	"testing"
)

// The ratio accessors divide by the total access count; a run with zero
// accesses (a compute-only loop, or a degraded cell) must yield 0, not
// NaN, all the way through to the rendered string.
func TestRatioAccessorsZeroAccesses(t *testing.T) {
	cases := []struct {
		name string
		s    Stats
	}{
		{"zero value", Stats{}},
		{"cycles but no accesses", Stats{Iterations: 5, Entries: 1, ComputeCycles: 100, StallCycles: 3}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if r := tc.s.LocalHitRatio(); r != 0 {
				t.Errorf("LocalHitRatio = %v, want 0", r)
			}
			for c := Class(0); c < NumClasses; c++ {
				if r := tc.s.ClassRatio(c); r != 0 {
					t.Errorf("ClassRatio(%v) = %v, want 0", c, r)
				}
			}
			if out := tc.s.String(); strings.Contains(out, "NaN") {
				t.Errorf("String() leaked NaN: %s", out)
			}
		})
	}
}

func TestRatioAccessorsNonZero(t *testing.T) {
	var s Stats
	s.Accesses[LocalHit] = 3
	s.Accesses[RemoteMiss] = 1
	if r := s.LocalHitRatio(); r != 0.75 {
		t.Errorf("LocalHitRatio = %v, want 0.75", r)
	}
	if r := s.ClassRatio(RemoteMiss); r != 0.25 {
		t.Errorf("ClassRatio(RemoteMiss) = %v, want 0.25", r)
	}
}
