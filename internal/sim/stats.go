package sim

import "fmt"

// Class classifies a memory access as in §2.1 of the paper, plus the
// "combined" category of §4.2 (accesses to subblocks already requested and
// still pending, whose second request is not issued).
type Class int

const (
	LocalHit Class = iota
	RemoteHit
	LocalMiss
	RemoteMiss
	Combined
	NumClasses
)

func (c Class) String() string {
	switch c {
	case LocalHit:
		return "local hit"
	case RemoteHit:
		return "remote hit"
	case LocalMiss:
		return "local miss"
	case RemoteMiss:
		return "remote miss"
	case Combined:
		return "combined"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// Stats aggregates the observable quantities the paper reports.
type Stats struct {
	Iterations int64
	Entries    int64

	// ComputeCycles is the ideal cycle count of the schedule (II per
	// steady-state iteration plus fill/drain); StallCycles is the extra
	// time the stall-on-use processor spent waiting for memory values.
	ComputeCycles int64
	StallCycles   int64

	// Accesses classifies every executed memory access. Nullified store
	// replica instances do not access memory and are counted separately.
	Accesses        [NumClasses]int64
	ABHits          int64 // attraction buffer hits (also counted as local hits)
	ABUpdates       int64 // replica/write-through updates applied to AB copies
	NullifiedStores int64
	CommOps         int64 // dynamic inter-cluster register communications

	// Violations counts memory ordering violations observed at the banks:
	// conflicting accesses that arrived out of program order (nonzero only
	// for the unsound optimistic baseline).
	Violations int64

	// Substrate counters.
	BusTransfers, BusWaitedCycles  int64
	NextLevelRequests, PortsWaited int64
	Evictions, Writebacks          int64
	ABFlushes, ABDirtyWritebacks   int64

	// InjectedFaults counts perturbations the fault injector actually
	// applied (chaos mode; zero when no injector is configured).
	InjectedFaults int64
}

// Cycles is total execution time: compute plus stall.
func (s *Stats) Cycles() int64 { return s.ComputeCycles + s.StallCycles }

// TotalAccesses is the number of classified memory accesses.
func (s *Stats) TotalAccesses() int64 {
	var t int64
	for _, a := range s.Accesses {
		t += a
	}
	return t
}

// LocalHitRatio is the proportion of local hits over all accesses.
func (s *Stats) LocalHitRatio() float64 {
	t := s.TotalAccesses()
	if t == 0 {
		return 0
	}
	return float64(s.Accesses[LocalHit]) / float64(t)
}

// ClassRatio is the proportion of accesses in the given class.
func (s *Stats) ClassRatio(c Class) float64 {
	t := s.TotalAccesses()
	if t == 0 {
		return 0
	}
	return float64(s.Accesses[c]) / float64(t)
}

// Add accumulates o into s (for aggregating loops into a benchmark).
func (s *Stats) Add(o *Stats) {
	s.Iterations += o.Iterations
	s.Entries += o.Entries
	s.ComputeCycles += o.ComputeCycles
	s.StallCycles += o.StallCycles
	for i := range s.Accesses {
		s.Accesses[i] += o.Accesses[i]
	}
	s.ABHits += o.ABHits
	s.ABUpdates += o.ABUpdates
	s.NullifiedStores += o.NullifiedStores
	s.CommOps += o.CommOps
	s.Violations += o.Violations
	s.BusTransfers += o.BusTransfers
	s.BusWaitedCycles += o.BusWaitedCycles
	s.NextLevelRequests += o.NextLevelRequests
	s.PortsWaited += o.PortsWaited
	s.Evictions += o.Evictions
	s.Writebacks += o.Writebacks
	s.ABFlushes += o.ABFlushes
	s.ABDirtyWritebacks += o.ABDirtyWritebacks
	s.InjectedFaults += o.InjectedFaults
}

func (s *Stats) String() string {
	return fmt.Sprintf(
		"cycles=%d (compute %d + stall %d) accesses=%d [LH %.1f%% RH %.1f%% LM %.1f%% RM %.1f%% CO %.1f%%] abhits=%d comms=%d violations=%d",
		s.Cycles(), s.ComputeCycles, s.StallCycles, s.TotalAccesses(),
		100*s.ClassRatio(LocalHit), 100*s.ClassRatio(RemoteHit),
		100*s.ClassRatio(LocalMiss), 100*s.ClassRatio(RemoteMiss),
		100*s.ClassRatio(Combined), s.ABHits, s.CommOps, s.Violations)
}
