package sim

import (
	"context"
	"runtime"
	"sync"

	"vliwcache/internal/arch"
	"vliwcache/internal/bus"
	"vliwcache/internal/cache"
	"vliwcache/internal/sched"
)

// This file holds the reusable-execution layer of the simulator: Runner
// (one machine kept alive across runs), Pool (a concurrent store of idle
// Runners), and the epoch-cleared open-addressed tables that replace the
// per-run maps on the hot path. Splitting construction from execution is
// what makes the steady state allocation-free: statics are built once per
// schedule (Bind), the substrate once per cache geometry, and a Run only
// touches preallocated storage.

// Runner is a simulation machine bound to one schedule that can execute it
// repeatedly. Run resets all dynamic state (cold caches, empty buses, zero
// counters), so every Run of the same schedule and options produces results
// identical to a fresh sim.Run — but, once warm, without allocating.
//
// The *Stats returned by Run points into the Runner and is overwritten by
// the next Run; copy it if it must outlive the Runner's reuse. A Runner is
// not safe for concurrent use; use a Pool to share machines across
// goroutines.
type Runner struct {
	m machine
}

// NewRunner validates the schedule and builds a machine for it.
func NewRunner(sc *sched.Schedule, opts Options) (*Runner, error) {
	r := &Runner{}
	if err := r.Bind(sc, opts); err != nil {
		return nil, err
	}
	return r, nil
}

// Bind points the Runner at a (possibly different) schedule and option set.
// Schedule-derived statics are rebuilt; the machine substrate (cache
// modules, Attraction Buffers, buses, next-level ports, pending tables) is
// kept when the new schedule's cache geometry matches the old one and
// rebuilt otherwise, so a pool cycling through cells that share a machine
// configuration reuses almost all of its storage.
func (r *Runner) Bind(sc *sched.Schedule, opts Options) error {
	return r.m.bind(sc, opts)
}

// Run resets the machine and executes the bound schedule, honoring ctx as
// RunContext does. The returned *Stats is owned by the Runner and
// overwritten by the next Run.
func (r *Runner) Run(ctx context.Context) (*Stats, error) {
	return r.m.runAll(ctx)
}

// Schedule returns the currently bound schedule.
func (r *Runner) Schedule() *sched.Schedule { return r.m.sc }

// FastPath reports what the fast-forward layer did during the most recent
// Run. The zero value is returned when Options.FastPath was off.
func (r *Runner) FastPath() FastPathStats {
	if r.m.fast == nil {
		return FastPathStats{}
	}
	return r.m.fast.stats
}

// RunBatch simulates each schedule in order on one reused machine and
// returns caller-owned statistics, amortizing machine construction (and,
// across schedules sharing a cache geometry, the substrate) over the
// batch. Results are identical to running each schedule through sim.Run.
func RunBatch(ctx context.Context, scs []*sched.Schedule, opts Options) ([]Stats, error) {
	out := make([]Stats, len(scs))
	var r Runner
	for i, sc := range scs {
		if err := r.Bind(sc, opts); err != nil {
			return nil, err
		}
		st, err := r.Run(ctx)
		if err != nil {
			return nil, err
		}
		out[i] = *st
	}
	return out, nil
}

// Pool is a concurrent store of idle Runners. RunSchedule pulls a machine
// from the pool (binding it to the requested schedule) instead of building
// one from scratch, so a grid of cells sharing a machine configuration pays
// for cache modules, bus arbiters and hot-path tables once per worker
// rather than once per cell. A Pool is safe for concurrent use.
type Pool struct {
	mu   sync.Mutex
	free []*Runner
	max  int

	runs      int64
	reuses    int64
	subBuilds int64
	subReuses int64
	fast      FastPathStats
}

// NewPool builds a pool keeping at most max idle Runners (<= 0 defaults to
// runtime.GOMAXPROCS(0), one per worker of a default engine).
func NewPool(max int) *Pool {
	if max <= 0 {
		max = runtime.GOMAXPROCS(0)
	}
	return &Pool{max: max}
}

// RunSchedule executes one schedule on a pooled machine and returns a
// caller-owned copy of its statistics. Results are identical to sim.Run:
// the machine is reset to cold state before executing.
func (p *Pool) RunSchedule(ctx context.Context, sc *sched.Schedule, opts Options) (*Stats, error) {
	r := p.get()
	var err error
	var b0, r0 int64
	if r == nil {
		r, err = NewRunner(sc, opts)
	} else {
		b0, r0 = r.m.substrateBuilds, r.m.substrateReuses
		err = r.Bind(sc, opts)
	}
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	p.subBuilds += r.m.substrateBuilds - b0
	p.subReuses += r.m.substrateReuses - r0
	p.mu.Unlock()
	st, err := r.Run(ctx)
	if err != nil {
		// The machine is left in a defined state by the failed run's reset
		// on next use, so it is safe to pool it again.
		p.put(r)
		return nil, err
	}
	out := new(Stats)
	*out = *st
	if r.m.fast != nil {
		fp := r.m.fast.stats
		p.mu.Lock()
		p.fast.Add(&fp)
		p.mu.Unlock()
	}
	p.put(r)
	return out, nil
}

// FastPath reports the aggregated fast-forward statistics of every run
// the pool dispatched with Options.FastPath set.
func (p *Pool) FastPath() FastPathStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.fast
}

// Counters reports how many schedules the pool has run and how many of
// those reused an idle machine instead of constructing one.
func (p *Pool) Counters() (runs, reuses int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.runs, p.reuses
}

// SubstrateCounters reports, across every bind the pool dispatched, how
// many times a machine substrate (cache modules, Attraction Buffers,
// arbiter, ports, pending tables) was constructed from scratch versus kept
// because the new schedule's cache geometry matched the machine's. An
// arch sweep ordered arch-major maximizes reuses; the counters make that
// observable (see engine.Metrics.SubstrateBuilds/SubstrateReuses).
func (p *Pool) SubstrateCounters() (builds, reuses int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.subBuilds, p.subReuses
}

func (p *Pool) get() *Runner {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.runs++
	if n := len(p.free); n > 0 {
		r := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		p.reuses++
		return r
	}
	return nil
}

func (p *Pool) put(r *Runner) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.free) < p.max {
		p.free = append(p.free, r)
	}
}

// subKey packs a SubblockID into one word. Block addresses are aligned to
// BlockBytes and Validate guarantees BlockBytes >= NumClusters *
// InterleaveBytes, so the home-cluster index fits in the block's zero low
// bits without colliding.
func subKey(sub arch.SubblockID) uint64 {
	return sub.Block | uint64(sub.Cluster)
}

// fibMult is the 64-bit Fibonacci hashing multiplier.
const fibMult = 0x9E3779B97F4A7C15

// pendTab tracks the in-flight (pending) subblock requests of one cluster:
// an open-addressed, linearly probed table from packed SubblockID to the
// request's completion time. It replaces the per-run
// map[arch.SubblockID]int64 of earlier versions: clearing is an epoch bump
// (no per-entry work), lookups are one multiply-shift hash over a single
// word, and the storage persists across runs so the steady state never
// allocates.
//
// There is no deletion: an entry is "absent" when its value is zero, which
// callers never confuse with a live request because every pending check is
// a strict p > now comparison and completion times are positive.
type pendTab struct {
	keys  []uint64
	vals  []int64
	eps   []uint32
	epoch uint32
	live  int
	shift uint
}

const pendTabMinSize = 64

func (t *pendTab) init() {
	if t.keys == nil {
		t.alloc(pendTabMinSize)
	}
	t.reset()
}

func (t *pendTab) alloc(n int) {
	t.keys = make([]uint64, n)
	t.vals = make([]int64, n)
	t.eps = make([]uint32, n)
	t.shift = 64 - log2(uint(n))
}

// reset invalidates every entry in O(1) by advancing the epoch.
func (t *pendTab) reset() {
	t.epoch++
	t.live = 0
	if t.epoch == 0 { // wrapped: stale epochs could alias, really clear
		clear(t.eps)
		t.epoch = 1
	}
}

// get returns the completion time for key, or 0 when no request is pending.
func (t *pendTab) get(key uint64) int64 {
	mask := uint64(len(t.keys) - 1)
	i := (key * fibMult) >> t.shift
	for t.eps[i] == t.epoch {
		if t.keys[i] == key {
			return t.vals[i]
		}
		i = (i + 1) & mask
	}
	return 0
}

// put records (or overwrites) the completion time for key. Storing 0
// removes the request (see the type comment).
func (t *pendTab) put(key uint64, v int64) {
	if t.live >= len(t.keys)-len(t.keys)/4 {
		t.grow()
	}
	mask := uint64(len(t.keys) - 1)
	i := (key * fibMult) >> t.shift
	for t.eps[i] == t.epoch {
		if t.keys[i] == key {
			t.vals[i] = v
			return
		}
		i = (i + 1) & mask
	}
	t.keys[i], t.vals[i], t.eps[i] = key, v, t.epoch
	t.live++
}

func (t *pendTab) grow() {
	ok, ov, oe, epoch := t.keys, t.vals, t.eps, t.epoch
	t.alloc(2 * len(ok))
	clear(t.eps)
	t.epoch = 1
	t.live = 0
	for i, e := range oe {
		if e == epoch {
			t.put(ok[i], ov[i])
		}
	}
}

// coherTab is the coherence checker's per-byte ordering state: for each
// (serialization point, byte address) it holds the largest program-order
// index seen over all accesses and over stores alone. Same open-addressed
// epoch-cleared design as pendTab; the sentinel for "never seen" is -1
// (program-order indices are non-negative).
type coherTab struct {
	keys   []uint64
	maxAny []int64
	maxSto []int64
	eps    []uint32
	epoch  uint32
	live   int
	shift  uint
}

const coherTabMinSize = 1024

// coherKey packs a serialization point and a byte address. Serialization
// points are cluster indices plus one next-level slot, far below 256.
func coherKey(loc int, addr uint64) uint64 {
	return addr<<8 | uint64(loc)
}

func (t *coherTab) init() {
	if t.keys == nil {
		t.allocTab(coherTabMinSize)
	}
	t.reset()
}

func (t *coherTab) allocTab(n int) {
	t.keys = make([]uint64, n)
	t.maxAny = make([]int64, n)
	t.maxSto = make([]int64, n)
	t.eps = make([]uint32, n)
	t.shift = 64 - log2(uint(n))
}

func (t *coherTab) reset() {
	t.epoch++
	t.live = 0
	if t.epoch == 0 {
		clear(t.eps)
		t.epoch = 1
	}
}

// slot returns the index of key's entry, claiming (and initializing to the
// -1 sentinels) a fresh one if the byte has not been seen this epoch.
func (t *coherTab) slot(key uint64) int {
	if t.live >= len(t.keys)-len(t.keys)/4 {
		t.growTab()
	}
	mask := uint64(len(t.keys) - 1)
	i := (key * fibMult) >> t.shift
	for t.eps[i] == t.epoch {
		if t.keys[i] == key {
			return int(i)
		}
		i = (i + 1) & mask
	}
	t.keys[i], t.maxAny[i], t.maxSto[i], t.eps[i] = key, -1, -1, t.epoch
	t.live++
	return int(i)
}

func (t *coherTab) growTab() {
	ok, oa, os, oe, epoch := t.keys, t.maxAny, t.maxSto, t.eps, t.epoch
	t.allocTab(2 * len(ok))
	clear(t.eps)
	t.epoch = 1
	t.live = 0
	for i, e := range oe {
		if e == epoch {
			s := t.slot(ok[i])
			t.maxAny[s], t.maxSto[s] = oa[i], os[i]
		}
	}
}

// log2 returns floor(log2(n)) for a power-of-two n.
func log2(n uint) uint {
	var b uint
	for n > 1 {
		n >>= 1
		b++
	}
	return b
}

// grownInt64 returns a slice of length n, reusing b's storage when it is
// large enough (grow-only buffers for the pooled machine's value rings).
func grownInt64(b []int64, n int) []int64 {
	if cap(b) >= n {
		return b[:n]
	}
	return make([]int64, n)
}

// geometry is the subset of the machine configuration that determines the
// substrate's storage shape. Two schedules whose configs agree on it can
// share cache modules, buffers, buses and tables across a Bind.
type geometry struct {
	numClusters    int
	moduleBytes    int
	subblockBytes  int
	cacheAssoc     int
	blockBytes     int
	abEntries      int
	abAssoc        int
	memBuses       int
	memBusLatency  int
	nextLevelPorts int
}

// Geometry is the exported name of the substrate-equality key: two
// configurations with equal Geometry values can share one machine's
// substrate across binds. It is a comparable value type; use == (or a map
// key) to dedup configurations that cost nothing extra to sweep together.
type Geometry = geometry

// GeometryOf returns the substrate geometry of cfg. archspace uses it to
// count distinct substrates in a grid and to order sweep cells so pooled
// machines rebind without rebuilding.
func GeometryOf(cfg arch.Config) Geometry { return geometryOf(cfg) }

func geometryOf(cfg arch.Config) geometry {
	return geometry{
		numClusters:    cfg.NumClusters,
		moduleBytes:    cfg.ModuleBytes(),
		subblockBytes:  cfg.SubblockBytes(),
		cacheAssoc:     cfg.CacheAssoc,
		blockBytes:     cfg.BlockBytes,
		abEntries:      cfg.ABEntries,
		abAssoc:        cfg.ABAssoc,
		memBuses:       cfg.MemBuses,
		memBusLatency:  cfg.MemBusLatency,
		nextLevelPorts: cfg.NextLevelPorts,
	}
}

// ensureSubstrate builds or resets the machine substrate for cfg.
func (m *machine) ensureSubstrate(cfg arch.Config) error {
	geo := geometryOf(cfg)
	if m.geo == geo && m.modules != nil {
		m.substrateReuses++
		return nil // same shape: Run's reset will cold-start it
	}
	modules := make([]*cache.Module, cfg.NumClusters)
	for c := range modules {
		mod, err := cache.NewModule(cfg.ModuleBytes(), cfg.SubblockBytes(), cfg.CacheAssoc, cfg.BlockBytes)
		if err != nil {
			return err
		}
		modules[c] = mod
	}
	m.modules = modules
	m.abs = nil
	if cfg.ABEntries > 0 {
		m.abs = make([]*cache.AttractionBuffer, cfg.NumClusters)
		for c := range m.abs {
			m.abs[c] = cache.NewAttractionBuffer(cfg.ABEntries, cfg.ABAssoc)
		}
	}
	m.arb = bus.NewArbiter(cfg.MemBuses, cfg.MemBusLatency)
	m.ports = bus.NewPorts(cfg.NextLevelPorts)
	m.busFloor = make([]int64, cfg.NumClusters)
	m.pending = make([]pendTab, cfg.NumClusters)
	m.geo = geo
	m.substrateBuilds++
	return nil
}

// reset returns every piece of dynamic state to the just-constructed
// condition so the next run is indistinguishable from a fresh machine's.
// It touches only preallocated storage.
func (m *machine) reset() {
	m.statsVal = Stats{}
	m.stall = 0
	m.base = 0
	m.seq = 0
	m.iterBase = 0
	m.entry = 0
	for _, mod := range m.modules {
		mod.Reset()
	}
	for _, ab := range m.abs {
		ab.Reset()
	}
	m.arb.Reset()
	m.ports.Reset()
	clear(m.busFloor)
	for c := range m.pending {
		m.pending[c].init()
	}
	m.recs = m.recs[:0]
	if m.opts.CheckCoherence {
		m.coher.init()
	}
	if m.opts.NewFaults != nil {
		m.faults.inj = m.opts.NewFaults(m.sc)
	} else {
		m.faults.inj = nil
	}
	m.faults.stats = &m.statsVal
	if m.fast != nil {
		m.fast.runBegin()
	}
}
