package sim

import (
	"bytes"
	"context"
	"testing"

	"vliwcache/internal/arch"
	"vliwcache/internal/core"
	"vliwcache/internal/loopgen"
	"vliwcache/internal/profiler"
	"vliwcache/internal/sched"
)

// buildSchedule compiles a loop for the config with the given policy.
func buildSchedule(t *testing.T, seed int64, pol core.Policy, cfg arch.Config) *sched.Schedule {
	t.Helper()
	loop := loopgen.Random(seed, loopgen.DefaultParams())
	plan, err := core.Prepare(loop, pol, cfg.NumClusters)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := sched.Run(plan, sched.Options{Arch: cfg, Heuristic: sched.MinComs, Profile: profiler.Run(loop, cfg)})
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// countingInjector is a deterministic FaultInjector for tests: it derives
// every decision from its call counter, so two runs consulted identically
// produce identical fault sequences.
type countingInjector struct{ n int64 }

func (c *countingInjector) MemExtra(op, cluster int, iter int64) int64 {
	c.n++
	if c.n%7 == 0 {
		return c.n % 5
	}
	return 0
}
func (c *countingInjector) BusExtra(op, cluster int, iter int64) int64 {
	c.n++
	if c.n%11 == 0 {
		return 2
	}
	return 0
}
func (c *countingInjector) FlipClass(op, cluster int, iter int64, hit bool) bool {
	c.n++
	return c.n%13 == 0
}
func (c *countingInjector) FlushAB(cluster int, iter int64) bool {
	c.n++
	return c.n%17 == 0
}

// TestRunnerMatchesRun: repeated Runs of one Runner must be byte-identical
// to a fresh sim.Run — stats and CSV trace — across layouts, coherence
// checking, Attraction Buffers, and fault injection.
func TestRunnerMatchesRun(t *testing.T) {
	cases := []struct {
		name string
		pol  core.Policy
		cfg  arch.Config
	}{
		{"mdc-default", core.PolicyMDC, arch.Default()},
		{"mdc-ab", core.PolicyMDC, arch.Default().WithAttractionBuffers(16)},
		{"ddgt", core.PolicyDDGT, arch.Default()},
		{"free-baseline", core.PolicyFree, arch.Default()},
		{"ddgt-replicated", core.PolicyDDGT, arch.Default().WithLayout(arch.LayoutReplicated)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc := buildSchedule(t, 11, tc.pol, tc.cfg)
			mkOpts := func(buf *bytes.Buffer) Options {
				return Options{
					MaxIterations:  200,
					CheckCoherence: true,
					Trace:          buf,
					NewFaults:      func(*sched.Schedule) FaultInjector { return &countingInjector{} },
				}
			}

			var wantTrace bytes.Buffer
			want, err := Run(sc, mkOpts(&wantTrace))
			if err != nil {
				t.Fatal(err)
			}

			var buf bytes.Buffer
			r, err := NewRunner(sc, mkOpts(&buf))
			if err != nil {
				t.Fatal(err)
			}
			for rep := 0; rep < 3; rep++ {
				buf.Reset()
				got, err := r.Run(context.Background())
				if err != nil {
					t.Fatal(err)
				}
				if *got != *want {
					t.Fatalf("rep %d: pooled stats diverge:\n got %+v\nwant %+v", rep, *got, *want)
				}
				if !bytes.Equal(buf.Bytes(), wantTrace.Bytes()) {
					t.Fatalf("rep %d: pooled trace diverges from fresh run", rep)
				}
			}
		})
	}
}

// TestRunnerRebind: one machine cycled through schedules with different
// loops, policies, and cache geometries must reproduce fresh-run results
// every time, and must keep its substrate when the geometry is unchanged.
func TestRunnerRebind(t *testing.T) {
	opts := Options{MaxIterations: 150, CheckCoherence: true}
	scheds := []*sched.Schedule{
		buildSchedule(t, 1, core.PolicyMDC, arch.Default()),
		buildSchedule(t, 2, core.PolicyDDGT, arch.Default()),                           // same geometry
		buildSchedule(t, 3, core.PolicyMDC, arch.Default().WithAttractionBuffers(16)),  // new geometry
		buildSchedule(t, 4, core.PolicyDDGT, arch.Default().WithAttractionBuffers(16)), // back to shared
		buildSchedule(t, 5, core.PolicyDDGT, arch.Default().WithLayout(arch.LayoutReplicated)),
	}

	r, err := NewRunner(scheds[0], opts)
	if err != nil {
		t.Fatal(err)
	}
	for i, sc := range scheds {
		if i > 0 {
			before := r.m.modules[0]
			if err := r.Bind(sc, opts); err != nil {
				t.Fatal(err)
			}
			sameGeo := geometryOf(scheds[i-1].Arch) == geometryOf(sc.Arch)
			if sameGeo && r.m.modules[0] != before {
				t.Errorf("bind %d rebuilt substrate despite unchanged geometry", i)
			}
			if !sameGeo && r.m.modules[0] == before {
				t.Errorf("bind %d kept substrate despite changed geometry", i)
			}
		}
		got, err := r.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		want, err := Run(sc, opts)
		if err != nil {
			t.Fatal(err)
		}
		if *got != *want {
			t.Fatalf("schedule %d: rebound stats diverge:\n got %+v\nwant %+v", i, *got, *want)
		}
	}
}

// TestPoolRunSchedule: the pool must hand back caller-owned stats equal to
// fresh runs, and reuse machines once warmed.
func TestPoolRunSchedule(t *testing.T) {
	opts := Options{MaxIterations: 100, CheckCoherence: true}
	scheds := []*sched.Schedule{
		buildSchedule(t, 21, core.PolicyMDC, arch.Default()),
		buildSchedule(t, 22, core.PolicyDDGT, arch.Default()),
		buildSchedule(t, 23, core.PolicyFree, arch.Default()),
	}
	p := NewPool(2)
	ctx := context.Background()
	var kept []*Stats
	for rep := 0; rep < 3; rep++ {
		for _, sc := range scheds {
			st, err := p.RunSchedule(ctx, sc, opts)
			if err != nil {
				t.Fatal(err)
			}
			kept = append(kept, st)
		}
	}
	// Caller-owned copies must not have been overwritten by later runs.
	for i, sc := range scheds {
		want, err := Run(sc, opts)
		if err != nil {
			t.Fatal(err)
		}
		for rep := 0; rep < 3; rep++ {
			if got := kept[rep*len(scheds)+i]; *got != *want {
				t.Fatalf("rep %d sched %d: pool stats diverge:\n got %+v\nwant %+v", rep, i, *got, *want)
			}
		}
	}
	runs, reuses := p.Counters()
	if runs != 9 {
		t.Errorf("runs = %d, want 9", runs)
	}
	if reuses < 7 { // sequential use of a 2-slot pool: only the first run builds
		t.Errorf("reuses = %d, want >= 7", reuses)
	}
}

// TestRunnerSteadyStateAllocs: once warm, a Run with tracing disabled must
// not allocate at all — the headline property of the pooled hot path.
func TestRunnerSteadyStateAllocs(t *testing.T) {
	for _, check := range []bool{false, true} {
		opts := Options{MaxIterations: 100, CheckCoherence: check}
		sc := buildSchedule(t, 31, core.PolicyMDC, arch.Default().WithAttractionBuffers(16))
		r, err := NewRunner(sc, opts)
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		for i := 0; i < 2; i++ { // warm: grow tables, rings, recs
			if _, err := r.Run(ctx); err != nil {
				t.Fatal(err)
			}
		}
		if n := testing.AllocsPerRun(5, func() {
			if _, err := r.Run(ctx); err != nil {
				t.Fatal(err)
			}
		}); n != 0 {
			t.Errorf("CheckCoherence=%v: %v allocs per steady-state run, want 0", check, n)
		}
	}
}

// TestRunnerCancel: a canceled context must abort a pooled run the same
// way it aborts RunContext.
func TestRunnerCancel(t *testing.T) {
	sc := buildSchedule(t, 41, core.PolicyMDC, arch.Default())
	r, err := NewRunner(sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.Run(ctx); err == nil {
		t.Fatal("run with canceled context succeeded")
	}
	// The machine must remain usable after an aborted run.
	if _, err := r.Run(context.Background()); err != nil {
		t.Fatalf("run after aborted run: %v", err)
	}
}
