package cache

import (
	"math/rand"
	"testing"

	"vliwcache/internal/arch"
)

func newTestModule(t *testing.T) *Module {
	t.Helper()
	m, err := NewModule(2048, 8, 2, 32) // the paper's module geometry
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestModuleHitMiss(t *testing.T) {
	m := newTestModule(t)
	if m.Access(0x1000, 1, false) {
		t.Error("cold access must miss")
	}
	m.Fill(0x1000, 2, false)
	if !m.Access(0x1000, 3, false) {
		t.Error("filled block must hit")
	}
	if m.Hits != 1 || m.Misses != 1 {
		t.Errorf("hits=%d misses=%d", m.Hits, m.Misses)
	}
}

func TestModuleLRUWithinSet(t *testing.T) {
	m := newTestModule(t)
	// 128 sets: blocks k and k+128*32 map to the same set.
	setSpan := uint64(128 * 32)
	a, b, c := uint64(0), setSpan, 2*setSpan
	m.Fill(a, 1, false)
	m.Fill(b, 2, false)
	m.Access(a, 3, false) // touch a: b becomes LRU
	m.Fill(c, 4, false)   // evicts b
	if !m.Contains(a) || m.Contains(b) || !m.Contains(c) {
		t.Errorf("LRU eviction wrong: a=%v b=%v c=%v", m.Contains(a), m.Contains(b), m.Contains(c))
	}
	if m.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", m.Evictions)
	}
}

func TestModuleDirtyWriteback(t *testing.T) {
	m := newTestModule(t)
	setSpan := uint64(128 * 32)
	m.Fill(0, 1, true) // dirty store fill
	m.Fill(setSpan, 2, false)
	m.Fill(2*setSpan, 3, false) // evicts dirty block 0
	if m.Writebacks != 1 {
		t.Errorf("writebacks = %d, want 1", m.Writebacks)
	}
}

func TestModuleStoreHitMarksDirty(t *testing.T) {
	m := newTestModule(t)
	setSpan := uint64(128 * 32)
	m.Fill(0, 1, false)
	m.Access(0, 2, true) // store hit dirties
	m.Fill(setSpan, 3, false)
	m.Fill(2*setSpan, 4, false)
	if m.Writebacks != 1 {
		t.Errorf("writebacks = %d, want 1", m.Writebacks)
	}
}

func TestModuleGeometryRejected(t *testing.T) {
	if _, err := NewModule(2048, 8, 3, 32); err == nil {
		t.Error("2048/8=256 lines not divisible by 3-way must fail")
	}
	if _, err := NewModule(0, 8, 2, 32); err == nil {
		t.Error("zero capacity must fail")
	}
}

func TestModuleCapacityProperty(t *testing.T) {
	// The module never holds more distinct blocks than it has lines.
	m := newTestModule(t)
	rng := rand.New(rand.NewSource(5))
	inserted := make(map[uint64]bool)
	for i := int64(0); i < 4000; i++ {
		block := uint64(rng.Intn(1<<14)) * 32
		if !m.Access(block, i, rng.Intn(2) == 0) {
			m.Fill(block, i, false)
		}
		inserted[block] = true
	}
	resident := 0
	for block := range inserted {
		if m.Contains(block) {
			resident++
		}
	}
	if resident > 256 {
		t.Errorf("%d blocks resident in a 256-line module", resident)
	}
	if m.Hits+m.Misses != 4000 {
		t.Errorf("accesses not conserved: %d + %d", m.Hits, m.Misses)
	}
}

func sub(block uint64, cl int) arch.SubblockID {
	return arch.SubblockID{Block: block, Cluster: cl}
}

func TestABLookupInsert(t *testing.T) {
	ab := NewAttractionBuffer(16, 2)
	s := sub(0x1000, 2)
	if ab.Lookup(s, 1) {
		t.Error("empty buffer must miss")
	}
	ab.Insert(s, 2)
	if !ab.Lookup(s, 3) {
		t.Error("inserted subblock must hit")
	}
	// Same block homed in a different cluster is a different subblock.
	if ab.Lookup(sub(0x1000, 3), 4) {
		t.Error("subblock identity must include the home cluster")
	}
}

func TestABInsertIdempotent(t *testing.T) {
	ab := NewAttractionBuffer(16, 2)
	s := sub(0x40, 1)
	ab.Insert(s, 1)
	ab.Insert(s, 2)
	if ab.Inserts != 1 {
		t.Errorf("re-inserting a resident subblock counted %d inserts", ab.Inserts)
	}
}

func TestABWriteAndFlush(t *testing.T) {
	ab := NewAttractionBuffer(16, 2)
	s := sub(0x80, 3)
	if ab.Write(s, 1) {
		t.Error("write to absent subblock must miss")
	}
	ab.Insert(s, 2)
	if !ab.Write(s, 3) {
		t.Error("write to resident subblock must succeed")
	}
	ab.Flush()
	if ab.DirtyWritebacks != 1 {
		t.Errorf("dirty writebacks = %d, want 1", ab.DirtyWritebacks)
	}
	if ab.Lookup(s, 4) {
		t.Error("flush must empty the buffer")
	}
}

func TestABUpdateStaysClean(t *testing.T) {
	ab := NewAttractionBuffer(16, 2)
	s := sub(0xc0, 0)
	ab.Insert(s, 1)
	if !ab.Update(s, 2) {
		t.Error("update of resident subblock must succeed")
	}
	ab.Flush()
	if ab.DirtyWritebacks != 0 {
		t.Errorf("DDGT updates are clean; writebacks = %d", ab.DirtyWritebacks)
	}
}

func TestABCapacityEviction(t *testing.T) {
	ab := NewAttractionBuffer(4, 2) // 2 sets x 2 ways
	var subs []arch.SubblockID
	for i := 0; i < 16; i++ {
		s := sub(uint64(i)*32, i%4)
		subs = append(subs, s)
		ab.Insert(s, int64(i))
	}
	resident := 0
	for _, s := range subs {
		// Count without disturbing: use Update (no miss counter side effect
		// beyond Updates).
		if ab.Update(s, 100) {
			resident++
		}
	}
	if resident > 4 {
		t.Errorf("%d subblocks resident in a 4-entry buffer", resident)
	}
	if ab.Evictions == 0 {
		t.Error("evictions must have occurred")
	}
}

func TestABInvalidGeometry(t *testing.T) {
	if NewAttractionBuffer(0, 2) != nil || NewAttractionBuffer(5, 2) != nil || NewAttractionBuffer(4, 0) != nil {
		t.Error("invalid geometries must return nil")
	}
}

func TestABCloneIsDeep(t *testing.T) {
	ab := NewAttractionBuffer(4, 2)
	a, b := sub(0x40, 1), sub(0x80, 2)
	ab.Insert(a, 1)
	ab.Insert(b, 2)
	ab.Write(a, 3)

	cp := ab.Clone()
	if !cp.Update(a, 4) || !cp.Update(b, 4) {
		t.Fatal("clone must hold the original's lines")
	}
	cp.Invalidate(a)
	cp.Flush()
	if !ab.Update(a, 5) || !ab.Update(b, 5) {
		t.Error("mutating the clone must not disturb the original")
	}
	if ab.Flushes != 0 {
		t.Errorf("original Flushes = %d after flushing the clone", ab.Flushes)
	}
	if cp.Flushes != 1 {
		t.Errorf("clone Flushes = %d, want 1", cp.Flushes)
	}
}

func TestABVisitLines(t *testing.T) {
	ab := NewAttractionBuffer(4, 2)
	a := sub(0x40, 1)
	ab.Insert(a, 7)
	ab.Write(a, 8)

	var valid, total int
	var saw bool
	lastSet, lastWay := -1, -1
	ab.VisitLines(func(set, way int, s arch.SubblockID, v, dirty bool, lastUse int64) {
		total++
		// Storage order: set-major, way-minor.
		if set < lastSet || (set == lastSet && way <= lastWay) {
			t.Errorf("visit order violated: (%d,%d) after (%d,%d)", set, way, lastSet, lastWay)
		}
		lastSet, lastWay = set, way
		if !v {
			return
		}
		valid++
		if s == a {
			saw = true
			if !dirty || lastUse != 8 {
				t.Errorf("line %v: dirty=%t lastUse=%d, want dirty at 8", s, dirty, lastUse)
			}
			if set != ab.SetIndex(a) {
				t.Errorf("line %v visited in set %d, SetIndex says %d", s, set, ab.SetIndex(a))
			}
		}
	})
	if total != 4 {
		t.Errorf("visited %d lines, want 4 (including invalid)", total)
	}
	if valid != 1 || !saw {
		t.Errorf("valid=%d saw=%t, want exactly the inserted line", valid, saw)
	}
}
