// Package cache models the distributed data cache of the word-interleaved
// cache clustered VLIW processor: per-cluster cache modules (each caching
// its cluster's subblock of every block), per-cluster Attraction Buffers
// (§5, small buffers replicating remote subblocks), and the request
// combining table for pending subblocks.
package cache

import "fmt"

// line is one way of a set: it caches the subblock of one block.
type line struct {
	tag     uint64 // block address
	valid   bool
	dirty   bool
	lastUse int64
}

// Module is one cluster's cache module: a set-associative cache over block
// addresses, each line holding that cluster's subblock of the block.
type Module struct {
	sets       [][]line
	nsets      uint64
	blockBytes uint64

	Hits, Misses, Evictions, Writebacks int64
}

// NewModule builds a module of the given capacity holding subblockBytes per
// line with the given associativity.
func NewModule(moduleBytes, subblockBytes, assoc, blockBytes int) (*Module, error) {
	nlines := moduleBytes / subblockBytes
	if nlines <= 0 || nlines%assoc != 0 {
		return nil, fmt.Errorf("cache: %d lines of %dB not divisible by associativity %d",
			nlines, subblockBytes, assoc)
	}
	m := &Module{nsets: uint64(nlines / assoc)}
	m.sets = make([][]line, m.nsets)
	for i := range m.sets {
		m.sets[i] = make([]line, assoc)
	}
	m.blockBytes = uint64(blockBytes)
	return m, nil
}

// Reset returns the module to its just-constructed (cold) state — every
// line invalid, all counters zero — without releasing the set storage, so a
// pooled simulation machine can rerun from a cold cache with no allocation.
func (m *Module) Reset() {
	for _, set := range m.sets {
		clear(set)
	}
	m.Hits, m.Misses, m.Evictions, m.Writebacks = 0, 0, 0, 0
}

// Access looks up the subblock of the given block address at time t; store
// accesses mark the line dirty on hit. It reports whether the access hit.
// On a miss the caller is responsible for calling Fill once the subblock
// arrives.
func (m *Module) Access(block uint64, t int64, store bool) bool {
	set := m.set(block)
	for i := range set {
		if set[i].valid && set[i].tag == block {
			set[i].lastUse = t
			if store {
				set[i].dirty = true
			}
			m.Hits++
			return true
		}
	}
	m.Misses++
	return false
}

// Fill inserts the subblock of the given block, evicting the LRU way.
// store marks the freshly filled line dirty (write-allocate store miss).
// Equal lastUse ties break by block tag, not way index, so victim choice
// is invariant under renaming the ways of a set: two modules holding the
// same lines in different ways behave identically forever, which is what
// lets the simulator's steady-state detector compare sets as sorted line
// lists instead of positional arrays.
func (m *Module) Fill(block uint64, t int64, store bool) {
	set := m.set(block)
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lastUse < set[victim].lastUse ||
			(set[i].lastUse == set[victim].lastUse && set[i].tag < set[victim].tag) {
			victim = i
		}
	}
	if set[victim].valid {
		m.Evictions++
		if set[victim].dirty {
			m.Writebacks++
		}
	}
	set[victim] = line{tag: block, valid: true, dirty: store, lastUse: t}
}

// Contains reports whether the subblock of block is cached (no LRU update).
func (m *Module) Contains(block uint64) bool {
	for _, l := range m.set(block) {
		if l.valid && l.tag == block {
			return true
		}
	}
	return false
}

func (m *Module) set(block uint64) []line {
	return m.sets[(block/m.blockBytes)%m.nsets]
}

// Shape returns the module's set count and associativity, for callers that
// need to walk every way (the simulator's steady-state snapshots).
func (m *Module) Shape() (nsets, assoc int) {
	return int(m.nsets), len(m.sets[0])
}

// Line exposes one way of one set for inspection: the block tag, the valid
// and dirty bits, and the LRU timestamp. No LRU update.
func (m *Module) Line(set, way int) (tag uint64, valid, dirty bool, lastUse int64) {
	l := &m.sets[set][way]
	return l.tag, l.valid, l.dirty, l.lastUse
}

// AdjustLine shifts one valid line's tag (wrapping uint64 addition, so a
// two's-complement delta moves tags backward) and LRU timestamp. The set
// index of the shifted tag must equal the line's current set — callers that
// translate a module forward in time (steady-state extrapolation) are
// responsible for choosing set-preserving deltas. Invalid ways are left
// untouched.
func (m *Module) AdjustLine(set, way int, tagDelta uint64, timeDelta int64) {
	l := &m.sets[set][way]
	if !l.valid {
		return
	}
	nt := l.tag + tagDelta
	if (nt/m.blockBytes)%m.nsets != (l.tag/m.blockBytes)%m.nsets {
		panic("cache: AdjustLine delta changes the line's set")
	}
	l.tag = nt
	l.lastUse += timeDelta
}
