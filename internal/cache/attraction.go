package cache

import "vliwcache/internal/arch"

// abLine is one Attraction Buffer entry: a replicated remote subblock.
type abLine struct {
	sub     arch.SubblockID
	valid   bool
	dirty   bool
	lastUse int64
}

// AttractionBuffer is a small per-cluster buffer acting as a cache for
// remote subblocks (§5.1). When a cluster issues a remote request, the
// whole remote subblock is returned and cached here; subsequent accesses to
// it are satisfied locally until it is replaced or the buffer is flushed at
// a loop boundary. Entries are kept coherent by the scheduling technique in
// force (MDC confines modified data to one cluster; DDGT store instances
// update the buffers of every cluster), never by hardware, so the buffer
// itself holds only clean data and flushes are free.
type AttractionBuffer struct {
	sets  [][]abLine
	nsets int

	Hits, Misses, Inserts, Updates, Evictions, Flushes int64
	DirtyWritebacks                                    int64
}

// NewAttractionBuffer builds a buffer with the given total entries and
// associativity.
func NewAttractionBuffer(entries, assoc int) *AttractionBuffer {
	if entries <= 0 || assoc <= 0 || entries%assoc != 0 {
		return nil
	}
	ab := &AttractionBuffer{nsets: entries / assoc}
	ab.sets = make([][]abLine, ab.nsets)
	for i := range ab.sets {
		ab.sets[i] = make([]abLine, assoc)
	}
	return ab
}

// Reset returns the buffer to its just-constructed (empty) state with all
// counters zeroed, keeping the set storage allocated. Unlike Flush it is
// not a simulated event: nothing is counted.
func (ab *AttractionBuffer) Reset() {
	for _, set := range ab.sets {
		clear(set)
	}
	ab.Hits, ab.Misses, ab.Inserts, ab.Updates, ab.Evictions, ab.Flushes = 0, 0, 0, 0, 0, 0
	ab.DirtyWritebacks = 0
}

func (ab *AttractionBuffer) set(sub arch.SubblockID) []abLine {
	return ab.sets[ab.SetIndex(sub)]
}

// Lookup reports whether the subblock is present, updating LRU state and
// hit/miss counters.
func (ab *AttractionBuffer) Lookup(sub arch.SubblockID, t int64) bool {
	set := ab.set(sub)
	for i := range set {
		if set[i].valid && set[i].sub == sub {
			set[i].lastUse = t
			ab.Hits++
			return true
		}
	}
	ab.Misses++
	return false
}

// Insert caches a remote subblock fetched by a remote access, evicting the
// LRU entry of its set.
func (ab *AttractionBuffer) Insert(sub arch.SubblockID, t int64) {
	set := ab.set(sub)
	victim := 0
	for i := range set {
		if set[i].valid && set[i].sub == sub {
			set[i].lastUse = t
			return // already present
		}
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lastUse < set[victim].lastUse {
			victim = i
		}
	}
	if set[victim].valid {
		ab.Evictions++
		if set[victim].dirty {
			ab.DirtyWritebacks++
		}
	}
	set[victim] = abLine{sub: sub, valid: true, lastUse: t}
	ab.Inserts++
}

// Update refreshes the replicated copy of a subblock if present, without
// changing its dirtiness (used by DDGT store instances, whose sibling
// instance in the home cluster writes the home bank, so the copy stays
// consistent with home). It reports whether a copy was present.
func (ab *AttractionBuffer) Update(sub arch.SubblockID, t int64) bool {
	set := ab.set(sub)
	for i := range set {
		if set[i].valid && set[i].sub == sub {
			set[i].lastUse = t
			ab.Updates++
			return true
		}
	}
	return false
}

// Write stores into the replicated copy of a subblock if present, marking
// it dirty (MDC with Attraction Buffers: modified data is replicated in one
// cluster only and written back to the home cluster when the buffer is
// flushed at the loop boundary). It reports whether a copy was present.
func (ab *AttractionBuffer) Write(sub arch.SubblockID, t int64) bool {
	set := ab.set(sub)
	for i := range set {
		if set[i].valid && set[i].sub == sub {
			set[i].lastUse = t
			set[i].dirty = true
			ab.Updates++
			return true
		}
	}
	return false
}

// Invalidate drops the copy of a subblock if present, without writeback
// accounting (a remote store made the copy — possibly still in flight —
// stale, so it must not satisfy later accesses). It reports whether a copy
// was dropped.
func (ab *AttractionBuffer) Invalidate(sub arch.SubblockID) bool {
	set := ab.set(sub)
	for i := range set {
		if set[i].valid && set[i].sub == sub {
			set[i] = abLine{}
			return true
		}
	}
	return false
}

// Clone returns a deep copy of the buffer: lines and counters. The copy
// shares nothing with the original, so explicit-state exploration (the
// internal/mc model checker embeds real Attraction Buffers in its states)
// can branch a buffer without the branches aliasing.
func (ab *AttractionBuffer) Clone() *AttractionBuffer {
	cp := &AttractionBuffer{nsets: ab.nsets}
	cp.sets = make([][]abLine, len(ab.sets))
	for i, set := range ab.sets {
		cp.sets[i] = append([]abLine(nil), set...)
	}
	cp.Hits, cp.Misses, cp.Inserts, cp.Updates = ab.Hits, ab.Misses, ab.Inserts, ab.Updates
	cp.Evictions, cp.Flushes, cp.DirtyWritebacks = ab.Evictions, ab.Flushes, ab.DirtyWritebacks
	return cp
}

// VisitLines calls fn for every line in storage order (set-major,
// way-minor), including invalid lines. Storage order is behaviorally
// significant — the victim scan in Insert prefers the lowest invalid way —
// so state canonicalization must preserve it; lastUse timestamps only
// matter as a relative order within a set, which is what callers encode.
func (ab *AttractionBuffer) VisitLines(fn func(set, way int, sub arch.SubblockID, valid, dirty bool, lastUse int64)) {
	for s, set := range ab.sets {
		for w, ln := range set {
			fn(s, w, ln.sub, ln.valid, ln.dirty, ln.lastUse)
		}
	}
}

// SetIndex returns the set a subblock maps to (hashing the block address
// and home cluster), exposing the placement function so the model checker
// can reject symmetry permutations that would move a subblock across sets
// (those are not behavior-preserving).
func (ab *AttractionBuffer) SetIndex(sub arch.SubblockID) int {
	h := sub.Block>>5 ^ uint64(sub.Cluster)*0x9e3779b9
	return int(h % uint64(ab.nsets))
}

// Flush empties the buffer (loop boundary, §5.2/§5.3), counting dirty
// entries that must update their home cluster.
func (ab *AttractionBuffer) Flush() {
	for _, set := range ab.sets {
		for i := range set {
			if set[i].valid && set[i].dirty {
				ab.DirtyWritebacks++
			}
			set[i] = abLine{}
		}
	}
	ab.Flushes++
}
