package experiments

import (
	"context"
	"fmt"
	"strings"

	"vliwcache/internal/arch"
	"vliwcache/internal/sim"
	"vliwcache/internal/textplot"
)

// Hybrid evaluates the per-loop hybrid solution sketched in §6 (further
// work): estimate both MDC and DDGT for every loop and keep the faster.
// The paper observes that loops tend to have 0 or 1 memory dependent
// chains, so a per-loop choice should capture most of a finer-grained
// hybrid's benefit.
func Hybrid(ctx context.Context, simOpts sim.Options, opts ...Option) (string, error) {
	var b strings.Builder
	b.WriteString("Per-loop hybrid MDC/DDGT (§6 further work).\n\n")

	s := NewSuite(arch.Default(), append([]Option{WithSimOptions(simOpts)}, opts...)...)
	if err := s.Warm(ctx, MDCPrefClus, DDGTPrefClus); err != nil {
		return "", err
	}

	t := textplot.NewTable("benchmark", "MDC", "DDGT", "hybrid", "vs MDC", "picked DDGT for")
	var mdcTotal, ddgtTotal, hyTotal int64
	for _, bench := range s.Benches {
		mdc, fm, err := s.cellDegraded(ctx, bench.Name, MDCPrefClus)
		if err != nil {
			return "", err
		}
		dt, fd, err := s.cellDegraded(ctx, bench.Name, DDGTPrefClus)
		if err != nil {
			return "", err
		}
		if f := firstFailure(fm, fd); f != nil {
			// The hybrid picks per loop between the two legs; with either
			// one missing the row (and the totals) cannot include it.
			t.Rowf("%s\t%s\t%s\t%s\t%s\t%s", bench.Name,
				cyclesOrNA(mdc, fm), cyclesOrNA(dt, fd), naCell(f), "n/a", "")
			continue
		}
		var hy int64
		var picked []string
		for i := range mdc.Loops {
			m, d := mdc.Loops[i].Stats.Cycles(), dt.Loops[i].Stats.Cycles()
			if d < m {
				hy += d
				picked = append(picked, mdc.Loops[i].Loop)
			} else {
				hy += m
			}
		}
		mdcTotal += mdc.Total.Cycles()
		ddgtTotal += dt.Total.Cycles()
		hyTotal += hy
		t.Rowf("%s\t%d\t%d\t%d\t%s\t%s",
			bench.Name, mdc.Total.Cycles(), dt.Total.Cycles(), hy,
			pctDelta(mdc.Total.Cycles(), hy), strings.Join(picked, " "))
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "\ntotals: MDC %d, DDGT %d, hybrid %d (%s over always-MDC, %s over always-DDGT)\n",
		mdcTotal, ddgtTotal, hyTotal,
		pctDelta(mdcTotal, hyTotal), pctDelta(ddgtTotal, hyTotal))
	return b.String(), nil
}

// pctDelta renders num/den - 1 as a signed percentage, or n/a when the
// denominator is zero (every contributing cell failed in degraded mode).
func pctDelta(num, den int64) string {
	if den == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", 100*(float64(num)/float64(den)-1))
}
