package experiments

import (
	"context"
	"fmt"

	"vliwcache/internal/archspace"
	"vliwcache/internal/engine"
	"vliwcache/internal/ir"
	"vliwcache/internal/loopgen"
	"vliwcache/internal/mediabench"
	"vliwcache/internal/report"
	"vliwcache/internal/sim"
)

// The design-space sweep: every (architecture point, workload, variant)
// cell of an archspace grid runs the full pipeline — schedule under the
// point's configuration, simulate on a pooled machine — and lands in one
// flat report.SweepRow. Cells are independent and fan out across the
// engine; the row order is canonical (arch-major, then workload, then
// variant, matching archspace enumeration order), so the same inputs
// produce byte-identical reports regardless of parallelism. Points are
// ordered arch-major precisely so consecutive cells share substrate
// geometry: the machine pool rebinds without rebuilding, which the
// SubstrateBuilds/SubstrateReuses metrics make visible.

// SweepWorkload is one workload of a sweep: a mediabench benchmark or a
// generated corpus loop, reduced to the loop set the pipeline runs.
type SweepWorkload struct {
	Name   string
	Source string // report row source: "mediabench" or "corpus"
	Loops  []*ir.Loop
}

// SweepOptions configure a sweep.
type SweepOptions struct {
	// Variants to run per (point, workload) pair (default: MDCPrefClus,
	// the paper's primary sound configuration).
	Variants []Variant

	// Sim applies to every run (iteration caps for quick sweeps).
	Sim sim.Options

	// FastPath turns on the simulator's steady-state fast path.
	FastPath bool

	// Parallelism bounds concurrent cells (<= 0: GOMAXPROCS).
	Parallelism int

	// Pool supplies the shared machine pool (default: a fresh pool sized
	// to the worker count). Sharing a pool across sweeps aggregates its
	// substrate-reuse counters.
	Pool *sim.Pool
}

func (o SweepOptions) withDefaults() SweepOptions {
	if len(o.Variants) == 0 {
		o.Variants = []Variant{MDCPrefClus}
	}
	if o.Pool == nil {
		o.Pool = sim.NewPool(o.Parallelism)
	}
	return o
}

// Sweep runs every point × workload × variant cell and returns the rows
// in canonical order. The architecture point's interleaving factor is
// authoritative: per-benchmark interleave overrides (a property of the
// paper's fixed 4-cluster machine) do not apply inside a sweep, where the
// interleaving is itself a swept dimension.
func Sweep(ctx context.Context, points []archspace.Point, workloads []SweepWorkload, opts SweepOptions) ([]report.SweepRow, error) {
	opts = opts.withDefaults()
	nv, nw := len(opts.Variants), len(workloads)
	rows := make([]report.SweepRow, len(points)*nw*nv)
	eng := engine.New(opts.Parallelism)
	err := eng.Map(ctx, len(rows), func(ctx context.Context, i int) error {
		p := points[i/(nw*nv)]
		w := workloads[(i/nv)%nw]
		v := opts.Variants[i%nv]
		row, err := sweepCell(ctx, p, w, v, opts)
		if err != nil {
			return fmt.Errorf("experiments: sweep cell %s/%s/%s: %w", p.Name, w.Name, v, err)
		}
		rows[i] = *row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// sweepCell runs one workload under one variant on one architecture
// point, summing the per-loop results into a single row.
func sweepCell(ctx context.Context, p archspace.Point, w SweepWorkload, v Variant, opts SweepOptions) (*report.SweepRow, error) {
	cfg := p.Config
	s := &Suite{Base: cfg, SimOptions: opts.Sim}
	s.pool = opts.Pool
	if opts.FastPath {
		s.fastPath = true
	}
	row := &report.SweepRow{
		Arch:            p.Name,
		NumClusters:     cfg.NumClusters,
		InterleaveBytes: cfg.InterleaveBytes,
		CacheBytes:      cfg.CacheBytes,
		CacheAssoc:      cfg.CacheAssoc,
		ABEntries:       cfg.ABEntries,
		Layout:          cfg.Layout.String(),
		Workload:        w.Name,
		Source:          w.Source,
		Policy:          v.Policy.String(),
		Heuristic:       v.Heuristic.String(),
	}
	if v.Scheduler != "" {
		row.Heuristic = v.Scheduler
	}
	var total sim.Stats
	for _, loop := range w.Loops {
		run, err := s.runLoop(ctx, loop, cfg, v, s.simOpts(), w.Name)
		if err != nil {
			return nil, err
		}
		row.Loops++
		row.II += run.II
		row.Comms += run.Comms
		total.Add(run.Stats)
	}
	row.Cycles = total.Cycles()
	row.ComputeCycles = total.ComputeCycles
	row.StallCycles = total.StallCycles
	row.LocalHits = total.Accesses[sim.LocalHit]
	row.RemoteHits = total.Accesses[sim.RemoteHit]
	row.LocalMisses = total.Accesses[sim.LocalMiss]
	row.RemoteMisses = total.Accesses[sim.RemoteMiss]
	row.ABHits = total.ABHits
	row.CommOps = total.CommOps
	row.BusTransfers = total.BusTransfers
	row.LocalHitPct = 100 * total.LocalHitRatio()
	return row, nil
}

// CanonicalSweepWorkloads returns the committed sweep's workload list:
// the 14 mediabench benchmarks followed by 8 corpus loops generated from
// seed 1 with the default dials.
func CanonicalSweepWorkloads() ([]SweepWorkload, error) {
	return SweepWorkloadsWithCorpus(1, 8)
}

// SweepWorkloadsWithCorpus returns the mediabench suite followed by n
// default-dial corpus loops generated from the given seed; n <= 0 yields
// the benchmarks alone.
func SweepWorkloadsWithCorpus(seed int64, n int) ([]SweepWorkload, error) {
	var ws []SweepWorkload
	for _, b := range mediabench.All() {
		ws = append(ws, SweepWorkload{Name: b.Name, Source: "mediabench", Loops: b.Loops})
	}
	if n <= 0 {
		return ws, nil
	}
	loops, err := loopgen.Corpus(seed, n, loopgen.DefaultCorpusParams())
	if err != nil {
		return nil, err
	}
	for _, l := range loops {
		ws = append(ws, SweepWorkload{Name: l.Name, Source: "corpus", Loops: []*ir.Loop{l}})
	}
	return ws, nil
}

// CanonicalSweepOptions returns the committed sweep's options: the MDC +
// PrefClus variant, a 256-iteration cap, and the fast path.
func CanonicalSweepOptions() SweepOptions {
	return SweepOptions{
		Variants: []Variant{MDCPrefClus},
		Sim:      sim.Options{MaxIterations: 256},
		FastPath: true,
	}
}
