package experiments

import (
	"context"
	"strings"
	"testing"

	"vliwcache/internal/sim"
)

func TestLayoutsExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if raceEnabled {
		t.Skip("whole-grid regeneration is too slow under -race; engine concurrency is covered by parallel_test.go")
	}
	out, err := Layouts(context.Background(), sim.Options{MaxIterations: 120, MaxEntries: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"word-interleaved", "replicated", "epicdec", "pgpdec"} {
		if !strings.Contains(out, want) {
			t.Errorf("layouts output missing %q", want)
		}
	}
	// Every table row reports zero violations under MDC/DDGT.
	for _, line := range strings.Split(out, "\n") {
		if !strings.Contains(line, "(PrefClus)") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) > 0 && fields[len(fields)-1] != "0" {
			t.Errorf("nonzero violations in row: %q", line)
		}
	}
}

func TestHybridExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if raceEnabled {
		t.Skip("whole-grid regeneration is too slow under -race; engine concurrency is covered by parallel_test.go")
	}
	out, err := Hybrid(context.Background(), sim.Options{MaxIterations: 120, MaxEntries: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "totals:") || !strings.Contains(out, "vs MDC") {
		t.Errorf("hybrid output incomplete:\n%s", out)
	}
	// The hybrid never loses to either pure policy (per construction).
	if strings.Contains(out, "vs MDC\n") {
		t.Log(out)
	}
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "-") && strings.Contains(line, "%") && strings.Contains(line, "epicdec") {
			if strings.Contains(line, "-0.") || strings.Contains(line, "-1") {
				t.Errorf("hybrid slower than MDC on %q", line)
			}
		}
	}
}
