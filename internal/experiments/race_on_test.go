//go:build race

package experiments

// raceEnabled reports whether the race detector is compiled in.
//
// The full-grid regeneration tests skip themselves under -race: the
// detector's ~10x slowdown on the cycle-level simulator pushes a whole
// figure's bench×variant grid past any reasonable package timeout on a
// small machine, and those tests assert numerical output, not
// concurrency. Race coverage of the engine comes from the dedicated
// concurrent-Suite, cancellation and determinism tests in
// parallel_test.go, which use tightly capped simulations and always run.
const raceEnabled = true
