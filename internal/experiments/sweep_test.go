package experiments

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"vliwcache/internal/archspace"
	"vliwcache/internal/report"
	"vliwcache/internal/sim"
)

var updateSweep = flag.Bool("update", false, "rewrite the committed SWEEP_report artifacts")

// canonicalSweep regenerates the committed sweep: the canonical archspace
// grid over every mediabench benchmark plus the seed-1 corpus.
func canonicalSweep(t *testing.T) []report.SweepRow {
	t.Helper()
	points := archspace.Canonical().Points()
	workloads, err := CanonicalSweepWorkloads()
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Sweep(context.Background(), points, workloads, CanonicalSweepOptions())
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

// TestSweepSmoke regenerates the canonical sweep and byte-diffs it
// against the committed SWEEP_report.json and SWEEP_report.csv. Refresh
// with:
//
//	go test -run TestSweepSmoke ./internal/experiments/ -update
func TestSweepSmoke(t *testing.T) {
	if raceEnabled {
		// The full 264-cell regeneration is minutes of work under the
		// race detector; `make sweep-smoke` byte-diffs it natively, and
		// the small sweeps below keep the concurrency race-covered.
		t.Skip("canonical sweep regeneration is covered by `make sweep-smoke` without -race")
	}
	rows := canonicalSweep(t)
	points := archspace.Canonical().Points()
	workloads, err := CanonicalSweepWorkloads()
	if err != nil {
		t.Fatal(err)
	}
	if want := len(points) * len(workloads); len(rows) != want {
		t.Fatalf("sweep produced %d rows, want %d", len(rows), want)
	}

	var jsonBuf, csvBuf bytes.Buffer
	if err := report.WriteSweepJSON(&jsonBuf, rows); err != nil {
		t.Fatal(err)
	}
	if err := report.WriteSweepCSV(&csvBuf, rows); err != nil {
		t.Fatal(err)
	}

	jsonPath := filepath.Join("..", "..", "SWEEP_report.json")
	csvPath := filepath.Join("..", "..", "SWEEP_report.csv")
	if *updateSweep {
		if err := os.WriteFile(jsonPath, jsonBuf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(csvPath, csvBuf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s and %s (%d rows)", jsonPath, csvPath, len(rows))
		return
	}
	for path, got := range map[string][]byte{
		jsonPath: jsonBuf.Bytes(),
		csvPath:  csvBuf.Bytes(),
	} {
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%v (refresh with: go test -run TestSweepSmoke ./internal/experiments/ -update)", err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s drifted from the committed artifact (refresh with -update if intended)", path)
		}
	}
}

// TestSweepRowsDeterministic runs a small sweep twice at different
// parallelism and requires byte-identical rows: cells are independent and
// the row order is canonical, so worker scheduling must not show through.
func TestSweepRowsDeterministic(t *testing.T) {
	grid := archspace.Grid{
		Base:        archspace.Canonical().Base,
		NumClusters: []int{2, 4},
		ABEntries:   []int{0, 16},
	}
	workloads, err := CanonicalSweepWorkloads()
	if err != nil {
		t.Fatal(err)
	}
	workloads = workloads[:3]
	run := func(parallel int) []report.SweepRow {
		opts := CanonicalSweepOptions()
		if raceEnabled {
			opts.Sim.MaxIterations = 32
		}
		opts.Parallelism = parallel
		rows, err := Sweep(context.Background(), grid.Points(), workloads, opts)
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}
	serial, parallel := run(1), run(0)
	if len(serial) != len(parallel) {
		t.Fatalf("row counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Errorf("row %d differs:\n serial:   %+v\n parallel: %+v", i, serial[i], parallel[i])
		}
	}
}

// TestSweepSubstrateReuseOrderIdentity reaches the same geometry via two
// different grid orders and requires byte-identical Stats: substrate
// reuse across binds must be invisible in the results.
func TestSweepSubstrateReuseOrderIdentity(t *testing.T) {
	forward := archspace.Grid{Base: archspace.Canonical().Base,
		NumClusters: []int{2, 4, 8}}.Points()
	// Reverse order reaches each geometry from a differently-shaped
	// predecessor, so pooled machines rebuild in a different sequence.
	backward := make([]archspace.Point, len(forward))
	for i, p := range forward {
		backward[len(forward)-1-i] = p
	}
	workloads, err := CanonicalSweepWorkloads()
	if err != nil {
		t.Fatal(err)
	}
	workloads = workloads[14:16] // two corpus loops keep this quick
	opts := CanonicalSweepOptions()
	if raceEnabled {
		opts.Sim.MaxIterations = 32
	}
	opts.Parallelism = 1
	a, err := Sweep(context.Background(), forward, workloads, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Sweep(context.Background(), backward, workloads, opts)
	if err != nil {
		t.Fatal(err)
	}
	byKey := func(rows []report.SweepRow) map[string]report.SweepRow {
		m := make(map[string]report.SweepRow, len(rows))
		for _, r := range rows {
			m[r.Arch+"/"+r.Workload] = r
		}
		return m
	}
	am, bm := byKey(a), byKey(b)
	if len(am) != len(bm) {
		t.Fatalf("cell sets differ: %d vs %d", len(am), len(bm))
	}
	for k, ra := range am {
		if rb, ok := bm[k]; !ok || ra != rb {
			t.Errorf("cell %s differs between grid orders:\n forward:  %+v\n backward: %+v", k, ra, rb)
		}
	}
}

// TestSweepSubstrateCountersSurface checks that a sweep's shared pool
// reports substrate builds bounded below by the distinct geometries and
// that reuses occur at all when cells share geometry.
func TestSweepSubstrateCountersSurface(t *testing.T) {
	points := archspace.Grid{Base: archspace.Canonical().Base,
		InterleaveBytes: []int{2, 4}}.Points() // same geometry twice
	workloads, err := CanonicalSweepWorkloads()
	if err != nil {
		t.Fatal(err)
	}
	workloads = workloads[14:16]
	pool := sim.NewPool(1)
	opts := CanonicalSweepOptions()
	if raceEnabled {
		opts.Sim.MaxIterations = 32
	}
	opts.Parallelism = 1
	opts.Pool = pool
	if _, err := Sweep(context.Background(), points, workloads, opts); err != nil {
		t.Fatal(err)
	}
	builds, reuses := pool.SubstrateCounters()
	if builds < 1 {
		t.Errorf("substrate builds = %d, want >= 1", builds)
	}
	if got := archspace.DistinctSubstrates(points); got != 1 {
		t.Fatalf("test premise broken: %d distinct substrates, want 1", got)
	}
	if reuses < 1 {
		t.Errorf("substrate reuses = %d, want >= 1 (both points share one geometry)", reuses)
	}
}
