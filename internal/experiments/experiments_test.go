package experiments

import (
	"context"
	"strings"
	"testing"

	"vliwcache/internal/arch"
	"vliwcache/internal/core"
	"vliwcache/internal/mediabench"
	"vliwcache/internal/sched"
	"vliwcache/internal/sim"
)

func quickSuite(t *testing.T, cfg arch.Config) *Suite {
	t.Helper()
	s := NewSuite(cfg)
	s.SimOptions = sim.Options{MaxIterations: 120, MaxEntries: 1}
	return s
}

func TestSuiteCellCaching(t *testing.T) {
	s := quickSuite(t, arch.Default())
	a, err := s.Cell("gsmenc", MDCPrefClus)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Cell("gsmenc", MDCPrefClus)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("cells must be cached")
	}
	if _, err := s.Cell("nosuch", MDCPrefClus); err == nil {
		t.Error("unknown benchmark must fail")
	}
	if a.CommOpsPerIter() < 0 {
		t.Error("negative comm ops")
	}
}

func TestTable1Table2Static(t *testing.T) {
	t1 := Table1()
	for _, b := range mediabench.All() {
		if !strings.Contains(t1, b.Name) {
			t.Errorf("Table 1 missing %s", b.Name)
		}
	}
	if !strings.Contains(t1, "titanic3.pgm.E") || !strings.Contains(t1, "2 bytes (99.0%)") {
		t.Error("Table 1 missing input / data-size cells")
	}
	t2 := Table2(arch.Default())
	for _, want := range []string{"Number of clusters", "4", "8KB total", "32 byte blocks", "10 cycle"} {
		if !strings.Contains(t2, want) {
			t.Errorf("Table 2 missing %q", want)
		}
	}
}

func TestTable3MatchesPaperShape(t *testing.T) {
	out := Table3()
	// Spot-check ordering relationships the paper reports: pgpdec has the
	// largest CMR, g721 benchmarks have zero.
	if !strings.Contains(out, "g721dec    0.00  0.00") {
		t.Errorf("g721dec must have zero ratios:\n%s", out)
	}
	for _, b := range []string{"epicdec", "pgpdec", "rasta"} {
		if !strings.Contains(out, b) {
			t.Errorf("Table 3 missing %s", b)
		}
	}
}

func TestTable5Specialization(t *testing.T) {
	out := Table5()
	for _, b := range []string{"epicdec", "pgpdec", "rasta"} {
		if !strings.Contains(out, b) {
			t.Errorf("Table 5 missing %s", b)
		}
	}
	// NEW ratios must be lower than OLD for epicdec (0.6x -> ~0.2).
	if !strings.Contains(out, "OLD CMR") || !strings.Contains(out, "NEW CMR") {
		t.Error("Table 5 header broken")
	}
}

func TestFigure6SmallRun(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if raceEnabled {
		t.Skip("whole-grid regeneration is too slow under -race; engine concurrency is covered by parallel_test.go")
	}
	s := quickSuite(t, arch.Default())
	out, err := Figure6(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "AMEAN") || !strings.Contains(out, "epicdec") {
		t.Errorf("Figure 6 incomplete:\n%s", out)
	}
}

func TestFigure7And9SmallRun(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if raceEnabled {
		t.Skip("whole-grid regeneration is too slow under -race; engine concurrency is covered by parallel_test.go")
	}
	s := quickSuite(t, arch.Default())
	out, err := Figure7(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"MDC(PrefClus)", "DDGT(MinComs)", "AMEAN"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure 7 missing %q", want)
		}
	}
	if _, err := Figure9(context.Background(), s); err == nil {
		t.Error("Figure 9 must reject a suite without Attraction Buffers")
	}
	ab := quickSuite(t, arch.Default().WithAttractionBuffers(16))
	if _, err := Figure9(context.Background(), ab); err != nil {
		t.Fatal(err)
	}
}

func TestTable4SmallRun(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if raceEnabled {
		t.Skip("whole-grid regeneration is too slow under -race; engine concurrency is covered by parallel_test.go")
	}
	s := quickSuite(t, arch.Default())
	out, err := Table4(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "com. ops") || !strings.Contains(out, "g721dec") {
		t.Errorf("Table 4 incomplete:\n%s", out)
	}
	// g721 benchmarks have no chains: Δ comm ops must be exactly 1.00.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "g721") && !strings.Contains(line, "1.00") {
			t.Errorf("g721* must have ratio 1.00: %q", line)
		}
	}
}

func TestRunHybridPicksFaster(t *testing.T) {
	b, err := mediabench.Get("pgpdec")
	if err != nil {
		t.Fatal(err)
	}
	cfg := arch.Default().WithInterleave(b.Interleave)
	opts := sim.Options{MaxIterations: 150, MaxEntries: 1}
	hy, err := RunHybridContext(context.Background(), b.Loops[0], cfg, sched.PrefClus, opts)
	if err != nil {
		t.Fatal(err)
	}
	mdc, err := RunLoopContext(context.Background(), b.Loops[0], cfg, MDCPrefClus, opts)
	if err != nil {
		t.Fatal(err)
	}
	dt, err := RunLoopContext(context.Background(), b.Loops[0], cfg, DDGTPrefClus, opts)
	if err != nil {
		t.Fatal(err)
	}
	best := mdc.Stats.Cycles()
	if dt.Stats.Cycles() < best {
		best = dt.Stats.Cycles()
	}
	if hy.Stats.Cycles() != best {
		t.Errorf("hybrid picked %d cycles, best is %d", hy.Stats.Cycles(), best)
	}
}

func TestVariantString(t *testing.T) {
	if MDCPrefClus.String() != "MDC(PrefClus)" {
		t.Errorf("variant string = %q", MDCPrefClus.String())
	}
	_ = core.PolicyFree // keep import honest alongside future edits
}
