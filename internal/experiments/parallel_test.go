package experiments

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"vliwcache/internal/arch"
	"vliwcache/internal/mediabench"
	"vliwcache/internal/sim"
)

var parallelSimOpts = sim.Options{MaxIterations: 60, MaxEntries: 1}

// TestConcurrentCellRaceFree hammers Suite.Cell from many goroutines and
// asserts the results are identical to a serial run: same pointers within
// the suite (single-flight: one computation per cell) and same numbers as
// an independently computed serial reference.
func TestConcurrentCellRaceFree(t *testing.T) {
	benches := []string{"epicdec", "gsmenc", "pgpdec"}
	variants := []Variant{FreePrefClus, MDCPrefClus, DDGTPrefClus}

	serial := NewSuite(arch.Default(), WithSimOptions(parallelSimOpts), WithParallelism(1))
	ref := make(map[string]*Cell)
	for _, b := range benches {
		for _, v := range variants {
			c, err := serial.CellContext(context.Background(), b, v)
			if err != nil {
				t.Fatal(err)
			}
			ref[b+"/"+v.String()] = c
		}
	}

	par := NewSuite(arch.Default(), WithSimOptions(parallelSimOpts), WithParallelism(4))
	const hammers = 8
	var wg sync.WaitGroup
	got := make([]map[string]*Cell, hammers)
	errs := make([]error, hammers)
	for g := 0; g < hammers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			got[g] = make(map[string]*Cell)
			for _, b := range benches {
				for _, v := range variants {
					c, err := par.CellContext(context.Background(), b, v)
					if err != nil {
						errs[g] = err
						return
					}
					got[g][b+"/"+v.String()] = c
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
	for key, want := range ref {
		first := got[0][key]
		for g := 1; g < hammers; g++ {
			if got[g][key] != first {
				t.Errorf("%s: goroutines observed different cell pointers (cell computed twice)", key)
			}
		}
		if first.Total != want.Total {
			t.Errorf("%s: parallel total %+v != serial %+v", key, first.Total, want.Total)
		}
		if len(first.Loops) != len(want.Loops) {
			t.Fatalf("%s: loop count %d != %d", key, len(first.Loops), len(want.Loops))
		}
		for i := range want.Loops {
			p, s := first.Loops[i], want.Loops[i]
			if p.Loop != s.Loop || p.II != s.II || p.Comms != s.Comms || *p.Stats != *s.Stats {
				t.Errorf("%s loop %s: parallel run differs from serial", key, s.Loop)
			}
		}
	}
	m := par.Metrics()
	want := int64(len(benches) * len(variants))
	if m.Computed != want {
		t.Errorf("parallel suite computed %d cells, want %d (single-flight broken)", m.Computed, want)
	}
	if m.CacheHits+m.FlightWaits != int64(hammers)*want-want {
		t.Errorf("metrics don't add up: %+v", m)
	}
}

// TestCellCancellation asserts that a canceled context surfaces promptly
// as context.Canceled, both before a cell starts and mid-grid.
func TestCellCancellation(t *testing.T) {
	s := NewSuite(arch.Default(), WithSimOptions(parallelSimOpts))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.CellContext(ctx, "gsmenc", MDCPrefClus); !errors.Is(err, context.Canceled) {
		t.Errorf("pre-canceled CellContext = %v, want context.Canceled", err)
	}

	// Cancel mid-grid: Warm over the full grid must return context.Canceled
	// without computing every cell.
	s2 := NewSuite(arch.Default(), WithSimOptions(parallelSimOpts), WithParallelism(2))
	ctx2, cancel2 := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel2()
	}()
	err := s2.Warm(ctx2, FreeMinComs, FreePrefClus, MDCPrefClus, MDCMinComs, DDGTPrefClus, DDGTMinComs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-grid Warm = %v, want context.Canceled", err)
	}
	total := int64(len(s2.Benches) * 6)
	if got := s2.Metrics().Computed; got >= total {
		t.Errorf("cancellation computed all %d cells anyway", got)
	}
}

// TestParallelFigureDeterminism asserts the parallel engine renders
// byte-identical figures to the serial path.
func TestParallelFigureDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if raceEnabled {
		t.Skip("whole-grid regeneration is too slow under -race; engine concurrency is covered by parallel_test.go")
	}
	ctx := context.Background()
	serial := NewSuite(arch.Default(), WithSimOptions(parallelSimOpts), WithParallelism(1))
	parallel := NewSuite(arch.Default(), WithSimOptions(parallelSimOpts), WithParallelism(4))

	wantFig, err := Figure7(ctx, serial)
	if err != nil {
		t.Fatal(err)
	}
	gotFig, err := Figure7(ctx, parallel)
	if err != nil {
		t.Fatal(err)
	}
	if wantFig != gotFig {
		t.Errorf("parallel Figure 7 differs from serial:\n--- serial\n%s\n--- parallel\n%s", wantFig, gotFig)
	}

	wantTab, err := Table4(ctx, serial)
	if err != nil {
		t.Fatal(err)
	}
	gotTab, err := Table4(ctx, parallel)
	if err != nil {
		t.Fatal(err)
	}
	if wantTab != gotTab {
		t.Errorf("parallel Table 4 differs from serial")
	}
}

func TestUnknownBenchmarkTyped(t *testing.T) {
	s := NewSuite(arch.Default(), WithSimOptions(parallelSimOpts))
	_, err := s.CellContext(context.Background(), "nosuch", MDCPrefClus)
	if !errors.Is(err, ErrUnknownBenchmark) {
		t.Errorf("unknown benchmark error %v must wrap ErrUnknownBenchmark", err)
	}
	if _, err := mediabench.Get("nosuch"); !errors.Is(err, mediabench.ErrUnknownBenchmark) {
		t.Errorf("mediabench.Get error %v must wrap ErrUnknownBenchmark", err)
	}
}

// TestPipelineErrorLocatesStage drives a benchmark with FP loops on a
// machine without FP units and asserts the failure is a *PipelineError
// naming the benchmark, loop, variant and stage.
func TestPipelineErrorLocatesStage(t *testing.T) {
	cfg := arch.Default()
	cfg.FPUnits = 0
	s := NewSuite(cfg, WithSimOptions(parallelSimOpts))
	_, err := s.CellContext(context.Background(), "rasta", MDCPrefClus)
	if err == nil {
		t.Fatal("scheduling FP loops without FP units must fail")
	}
	var pe *PipelineError
	if !errors.As(err, &pe) {
		t.Fatalf("error %v is not a *PipelineError", err)
	}
	if pe.Bench != "rasta" || pe.Stage != "schedule" || pe.Variant != MDCPrefClus || pe.Loop == "" {
		t.Errorf("PipelineError fields = %+v", pe)
	}
	if pe.Error() == "" || pe.Unwrap() == nil {
		t.Error("PipelineError must render and unwrap")
	}
}

// TestTracerObservesStages installs a tracer and checks every stage of a
// cell computation is reported.
func TestTracerObservesStages(t *testing.T) {
	var mu sync.Mutex
	seen := make(map[string]int)
	s := NewSuite(arch.Default(),
		WithSimOptions(parallelSimOpts),
		WithTracer(func(ev TraceEvent) {
			mu.Lock()
			seen[ev.Stage]++
			mu.Unlock()
		}))
	if _, err := s.CellContext(context.Background(), "gsmenc", MDCPrefClus); err != nil {
		t.Fatal(err)
	}
	for _, stage := range []string{"prepare", "profile", "schedule", "simulate", "cell"} {
		if seen[stage] == 0 {
			t.Errorf("tracer never saw stage %q (saw %v)", stage, seen)
		}
	}
	m := s.Metrics()
	if len(m.Stages) == 0 || m.Computed != 1 {
		t.Errorf("metrics = %+v", m)
	}
}
