package experiments

import (
	"context"
	"strings"

	"vliwcache/internal/arch"
	"vliwcache/internal/sim"
	"vliwcache/internal/textplot"
)

// Layouts evaluates the paper's §2.3 claim that the techniques apply to
// "any clustered configuration where the data cache has been clustered as
// well", by re-running MDC and DDGT on a replicated-cache clustered VLIW
// (the multiVLIW-style organization): loads are always local but stores
// must keep every cluster's copy consistent — by broadcasting updates over
// the memory buses (baseline/MDC) or, under DDGT, by the per-cluster store
// instances updating their local copies directly.
func Layouts(ctx context.Context, simOpts sim.Options, opts ...Option) (string, error) {
	var b strings.Builder
	b.WriteString("Cache layout study (§2.3): word-interleaved vs replicated.\n\n")

	simOpts.CheckCoherence = true
	benches := []string{"epicdec", "gsmdec", "pgpdec", "rasta"}

	// One suite per layout so every (benchmark, variant, layout) cell fans
	// out across the engine before the serial render below.
	suites := make(map[arch.Layout]*Suite)
	for _, layout := range []arch.Layout{arch.LayoutWordInterleaved, arch.LayoutReplicated} {
		s := NewSuite(arch.Default().WithLayout(layout), append([]Option{WithSimOptions(simOpts)}, opts...)...)
		if err := s.WarmBenches(ctx, benches, MDCPrefClus, DDGTPrefClus); err != nil {
			return "", err
		}
		suites[layout] = s
	}

	t := textplot.NewTable("benchmark", "layout", "variant", "cycles", "local hit", "bus transfers", "violations")
	for _, name := range benches {
		for _, layout := range []arch.Layout{arch.LayoutWordInterleaved, arch.LayoutReplicated} {
			s := suites[layout]
			for _, v := range []Variant{MDCPrefClus, DDGTPrefClus} {
				c, f, err := s.cellDegraded(ctx, name, v)
				if err != nil {
					return "", err
				}
				if f != nil {
					t.Rowf("%s\t%s\t%s\t%s\t%s\t%s\t%s",
						name, layout, v, naCell(f), "-", "-", "-")
					continue
				}
				t.Rowf("%s\t%s\t%s\t%d\t%.1f%%\t%d\t%d",
					name, layout, v, c.Total.Cycles(),
					100*c.Total.LocalHitRatio(), c.Total.BusTransfers, c.Total.Violations)
			}
		}
	}
	b.WriteString(t.String())
	b.WriteString("\nUnder the replicated layout every access is local; MDC pays bus\n")
	b.WriteString("broadcasts per store while DDGT's replicated instances update the\n")
	b.WriteString("copies in place. Both remain free of ordering violations.\n")
	return b.String(), nil
}
