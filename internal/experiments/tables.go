package experiments

import (
	"context"
	"fmt"

	"vliwcache/internal/arch"
	"vliwcache/internal/mediabench"
	"vliwcache/internal/textplot"
)

// Table1 reproduces Table 1: benchmarks, inputs and main data sizes.
func Table1() string {
	t := textplot.NewTable("benchmark", "profile input", "execution input", "main data size", "interleave")
	for _, b := range mediabench.All() {
		t.Row(b.Name, b.ProfileInput, b.ExecInput,
			fmt.Sprintf("%d bytes (%.1f%%)", b.MainDataSize, b.MainDataPct),
			fmt.Sprintf("%d bytes", b.Interleave))
	}
	return "Table 1. Benchmarks and inputs used in simulations.\n\n" + t.String()
}

// Table2 reproduces Table 2: the architecture configuration.
func Table2(cfg arch.Config) string {
	lat := cfg.Latencies()
	t := textplot.NewTable("parameter", "value")
	t.Row("Number of clusters", fmt.Sprint(cfg.NumClusters))
	t.Row("Functional units", fmt.Sprintf("%d FP / cluster + %d Integer / cluster + %d Memory / cluster",
		cfg.FPUnits, cfg.IntUnits, cfg.MemUnits))
	t.Row("Cache parameters", fmt.Sprintf("%dKB total (%s), %d byte blocks, %d-way set-associative, %d cycle latency",
		cfg.CacheBytes/1024,
		fmt.Sprintf("%d modules of %dKB", cfg.NumClusters, cfg.ModuleBytes()/1024),
		cfg.BlockBytes, cfg.CacheAssoc, cfg.CacheHitLatency))
	t.Row("Register-to-register buses", fmt.Sprintf("%d buses, %d cycle latency", cfg.RegBuses, cfg.RegBusLatency))
	t.Row("Memory buses", fmt.Sprintf("%d buses, %d cycle latency", cfg.MemBuses, cfg.MemBusLatency))
	t.Row("Next memory level", fmt.Sprintf("%d ports + %d cycle total latency, always hit",
		cfg.NextLevelPorts, cfg.NextLevelLatency))
	if cfg.ABEntries > 0 {
		t.Row("Attraction Buffers", fmt.Sprintf("%d-entry %d-way set-associative", cfg.ABEntries, cfg.ABAssoc))
	}
	t.Row("Access latencies (LH/RH/LM/RM)", fmt.Sprintf("%d/%d/%d/%d cycles",
		lat.LocalHit, lat.RemoteHit, lat.LocalMiss, lat.RemoteMiss))
	return "Table 2. Configuration parameters.\n\n" + t.String()
}

// Table3 reproduces Table 3: CMR and CAR per benchmark.
func Table3() string {
	t := textplot.NewTable("benchmark", "CMR", "CAR")
	for _, b := range mediabench.Figures() {
		cmr, car := chainRatios(b.Loops, false)
		t.Rowf("%s\t%.2f\t%.2f", b.Name, cmr, car)
	}
	return "Table 3. Analyzing the MDC solution (biggest chain over memory\n" +
		"instructions ratio, and over all instructions).\n\n" + t.String()
}

// Table4 reproduces Table 4: additional communication operations of DDGT
// over MDC (PrefClus), and DDGT speedup on selected loops — loops with at
// least a 10% MDC slowdown versus the optimistic baseline.
func Table4(ctx context.Context, s *Suite) (string, error) {
	if err := s.Warm(ctx, MDCPrefClus, DDGTPrefClus, FreePrefClus); err != nil {
		return "", err
	}
	t := textplot.NewTable("benchmark", "Δ com. ops", "speedup selected loops")
	for _, b := range s.Benches {
		mdc, fm, err := s.cellDegraded(ctx, b.Name, MDCPrefClus)
		if err != nil {
			return "", err
		}
		dt, fd, err := s.cellDegraded(ctx, b.Name, DDGTPrefClus)
		if err != nil {
			return "", err
		}
		free, ff, err := s.cellDegraded(ctx, b.Name, FreePrefClus)
		if err != nil {
			return "", err
		}
		if f := firstFailure(fm, fd, ff); f != nil {
			// The Δ and speedup columns compare the three variants
			// loop-by-loop; with any leg missing the row is unusable.
			t.Rowf("%s\t%s\t%s", b.Name, naCell(f), naCell(f))
			continue
		}

		delta := 1.0
		if m := mdc.CommOpsPerIter(); m > 0 {
			delta = dt.CommOpsPerIter() / m
		} else if dt.CommOpsPerIter() > 0 {
			delta = dt.CommOpsPerIter()
		}

		// Selected loops: >= 10% MDC slowdown vs the baseline.
		var mdcCyc, ddgtCyc int64
		for i := range mdc.Loops {
			mc := mdc.Loops[i].Stats.Cycles()
			fc := free.Loops[i].Stats.Cycles()
			if fc > 0 && float64(mc) >= 1.10*float64(fc) {
				mdcCyc += mc
				ddgtCyc += dt.Loops[i].Stats.Cycles()
			}
		}
		sel := "-"
		if mdcCyc > 0 && ddgtCyc > 0 {
			sel = fmt.Sprintf("%+.1f%%", 100*(float64(mdcCyc)/float64(ddgtCyc)-1))
		}
		t.Rowf("%s\t%.2f\t%s", b.Name, delta, sel)
	}
	return "Table 4. Analyzing the DDGT solution (additional communication\n" +
		"operations vs MDC with PrefClus; DDGT speedup on loops with >=10%\n" +
		"MDC slowdown vs the optimistic baseline).\n\n" + t.String(), nil
}

// Table5 reproduces Table 5: CMR/CAR before and after code specialization
// for the benchmarks with the biggest chains.
func Table5() string {
	t := textplot.NewTable("benchmark", "OLD CMR", "OLD CAR", "NEW CMR", "NEW CAR")
	for _, name := range []string{"epicdec", "pgpdec", "rasta"} {
		b, err := mediabench.Get(name)
		if err != nil {
			return err.Error()
		}
		ocmr, ocar := chainRatios(b.Loops, false)
		ncmr, ncar := chainRatios(b.Loops, true)
		t.Rowf("%s\t%.2f\t%.2f\t%.2f\t%.2f", name, ocmr, ocar, ncmr, ncar)
	}
	return "Table 5. Restrictions of memory dependences before (OLD) and after\n" +
		"(NEW) applying code specialization.\n\n" + t.String()
}

// pct formats a ratio as a percentage string. NaN (a ratio computed from
// an empty run) renders as 0.0% so degraded cells stay machine-parseable.
func pct(f float64) string {
	if f != f {
		f = 0
	}
	return fmt.Sprintf("%5.1f%%", 100*f)
}

// amean returns the arithmetic mean of the values.
func amean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	var s float64
	for _, v := range vals {
		s += v
	}
	return s / float64(len(vals))
}
