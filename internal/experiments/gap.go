package experiments

import (
	"context"
	"errors"

	"vliwcache/internal/arch"
	"vliwcache/internal/core"
	"vliwcache/internal/ir"
	"vliwcache/internal/mediabench"
	"vliwcache/internal/oracle"
	"vliwcache/internal/profiler"
	"vliwcache/internal/report"
	"vliwcache/internal/sched"
)

// The optimality-gap experiment: for every loop of every benchmark, run
// each registered heuristic scheduler and the exact oracle, and report the
// heuristic initiation intervals against the oracle's proven lower bound.
// Loops the oracle closes within its node budget carry a certified gap;
// the rest carry the admissible bound only. Output order and content are
// deterministic — the same inputs produce byte-identical reports, which is
// what `make oracle-smoke` diffs.

// GapOptions configure a gap report.
type GapOptions struct {
	// Policy is the coherence policy the gap is computed under (default
	// PolicyMDC — the paper's primary sound configuration).
	Policy core.Policy

	// NodeBudget caps the oracle's search per loop (default
	// oracle.DefaultNodeBudget). Loops exceeding it report
	// report.GapBoundOnly.
	NodeBudget int64

	// Schedulers names the heuristics to compare (default: every
	// registered scheduler except the oracle, sorted by name).
	Schedulers []string
}

func (o GapOptions) withDefaults() GapOptions {
	if o.Policy == 0 {
		o.Policy = core.PolicyMDC
	}
	if o.NodeBudget == 0 {
		o.NodeBudget = oracle.DefaultNodeBudget
	}
	if o.Schedulers == nil {
		for _, n := range sched.Names() {
			if n != sched.NameOracle {
				o.Schedulers = append(o.Schedulers, n)
			}
		}
	}
	return o
}

// GapReport computes the optimality-gap rows for the given benchmarks
// (nil means the full 14-benchmark suite) on the base configuration. Rows
// come back in benchmark order, loops in program order. ctx cancellation
// is honored between oracle searches.
func GapReport(ctx context.Context, base arch.Config, benches []*mediabench.Benchmark, opts GapOptions) ([]report.GapRow, error) {
	opts = opts.withDefaults()
	if benches == nil {
		benches = mediabench.All()
	}
	var rows []report.GapRow
	for _, b := range benches {
		cfg := base.WithInterleave(b.Interleave)
		for _, loop := range b.Loops {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			row, err := gapRow(ctx, loop, b.Name, cfg, opts)
			if err != nil {
				return nil, err
			}
			rows = append(rows, *row)
		}
	}
	return rows, nil
}

func gapRow(ctx context.Context, loop *ir.Loop, benchName string, cfg arch.Config, opts GapOptions) (*report.GapRow, error) {
	plan, err := core.Prepare(loop, opts.Policy, cfg.NumClusters)
	if err != nil {
		return nil, err
	}
	prof := profiler.Run(loop, cfg)
	row := &report.GapRow{
		Bench:  benchName,
		Loop:   loop.Name,
		Policy: opts.Policy.String(),
	}
	for _, name := range opts.Schedulers {
		sc, err := sched.RunScheduler(ctx, name, plan, sched.Options{Arch: cfg, Profile: prof})
		ii := 0
		if err == nil {
			ii = sc.II
		} else if errors.Is(err, sched.ErrUnknownScheduler) || ctx.Err() != nil {
			return nil, err
		}
		row.Heuristics = append(row.Heuristics, report.GapHeuristic{Name: name, II: ii})
	}
	res, err := oracle.Solve(ctx, plan, oracle.Options{Arch: cfg, NodeBudget: opts.NodeBudget})
	if err != nil && !errors.Is(err, oracle.ErrBudget) && !errors.Is(err, sched.ErrInfeasible) {
		return nil, err
	}
	row.LowerBound, row.Nodes = res.LowerBound, res.Nodes
	row.OracleII = res.II
	if res.Closed {
		row.Status = report.GapClosed
	} else {
		row.Status = report.GapBoundOnly
	}
	return row, nil
}
