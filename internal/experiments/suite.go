// Package experiments regenerates every table and figure of the paper's
// evaluation (§4 and §5) on the synthesized Mediabench suite: access
// classification (Figure 6), execution time (Figure 7), chain analysis
// (Table 3), DDGT analysis (Table 4), the unbalanced-bus configurations,
// the Attraction Buffer runs (Figure 9, §5.4) and code specialization
// (Table 5).
package experiments

import (
	"fmt"

	"vliwcache/internal/arch"
	"vliwcache/internal/core"
	"vliwcache/internal/ddg"
	"vliwcache/internal/ir"
	"vliwcache/internal/mediabench"
	"vliwcache/internal/profiler"
	"vliwcache/internal/sched"
	"vliwcache/internal/sim"
)

// Variant identifies one (policy, heuristic) combination.
type Variant struct {
	Policy    core.Policy
	Heuristic sched.Heuristic
}

func (v Variant) String() string { return fmt.Sprintf("%s(%s)", v.Policy, v.Heuristic) }

// The paper's variants.
var (
	FreeMinComs  = Variant{core.PolicyFree, sched.MinComs}  // the optimistic baseline
	FreePrefClus = Variant{core.PolicyFree, sched.PrefClus} // Figure 6 bar (i)
	MDCPrefClus  = Variant{core.PolicyMDC, sched.PrefClus}
	MDCMinComs   = Variant{core.PolicyMDC, sched.MinComs}
	DDGTPrefClus = Variant{core.PolicyDDGT, sched.PrefClus}
	DDGTMinComs  = Variant{core.PolicyDDGT, sched.MinComs}
)

// LoopRun is one loop's outcome under one variant.
type LoopRun struct {
	Loop  string
	II    int
	Comms int // communication ops per iteration (scheduled copies)
	Stats *sim.Stats
}

// Cell aggregates a benchmark's loops under one variant.
type Cell struct {
	Bench   string
	Variant Variant
	Loops   []LoopRun
	Total   sim.Stats
}

// CommOpsPerIter is the dynamic count of communication operations divided
// by dynamic iterations — the quantity compared in Table 4.
func (c *Cell) CommOpsPerIter() float64 {
	if c.Total.Iterations == 0 {
		return 0
	}
	return float64(c.Total.CommOps) / float64(c.Total.Iterations)
}

// Suite runs and caches benchmark × variant cells for one base
// architecture configuration (the per-benchmark interleaving factor is
// applied on top).
type Suite struct {
	Base    arch.Config
	Benches []*mediabench.Benchmark

	// SimOptions applies to every run (iteration caps for quick runs).
	SimOptions sim.Options

	cells map[string]*Cell
}

// NewSuite builds a suite over the paper's thirteen figure benchmarks.
func NewSuite(base arch.Config) *Suite {
	return &Suite{
		Base:    base,
		Benches: mediabench.Figures(),
		cells:   make(map[string]*Cell),
	}
}

func (s *Suite) bench(name string) (*mediabench.Benchmark, error) {
	for _, b := range s.Benches {
		if b.Name == name {
			return b, nil
		}
	}
	return nil, fmt.Errorf("experiments: benchmark %q not in suite", name)
}

// Cell returns the (cached) result of one benchmark under one variant.
func (s *Suite) Cell(bench string, v Variant) (*Cell, error) {
	key := bench + "/" + v.String()
	if c, ok := s.cells[key]; ok {
		return c, nil
	}
	b, err := s.bench(bench)
	if err != nil {
		return nil, err
	}
	cfg := s.Base.WithInterleave(b.Interleave)
	c := &Cell{Bench: bench, Variant: v}
	for _, loop := range b.Loops {
		run, err := RunLoop(loop, cfg, v, s.SimOptions)
		if err != nil {
			return nil, fmt.Errorf("%s/%s %s: %w", bench, loop.Name, v, err)
		}
		c.Loops = append(c.Loops, *run)
		c.Total.Add(run.Stats)
	}
	s.cells[key] = c
	return c, nil
}

// RunLoop drives the full pipeline for one loop: profile, prepare under
// the policy, modulo schedule, simulate.
func RunLoop(loop *ir.Loop, cfg arch.Config, v Variant, opts sim.Options) (*LoopRun, error) {
	plan, err := core.Prepare(loop, v.Policy, cfg.NumClusters)
	if err != nil {
		return nil, err
	}
	prof := profiler.Run(loop, cfg)
	sc, err := sched.Run(plan, sched.Options{Arch: cfg, Heuristic: v.Heuristic, Profile: prof})
	if err != nil {
		return nil, err
	}
	st, err := sim.Run(sc, opts)
	if err != nil {
		return nil, err
	}
	return &LoopRun{Loop: loop.Name, II: sc.II, Comms: sc.CommOps(), Stats: st}, nil
}

// RunHybrid implements the per-loop hybrid of §6 (further work): both MDC
// and DDGT are scheduled and simulated and the faster one is kept per loop.
func RunHybrid(loop *ir.Loop, cfg arch.Config, h sched.Heuristic, opts sim.Options) (*LoopRun, error) {
	mdc, err := RunLoop(loop, cfg, Variant{core.PolicyMDC, h}, opts)
	if err != nil {
		return nil, err
	}
	dt, err := RunLoop(loop, cfg, Variant{core.PolicyDDGT, h}, opts)
	if err != nil {
		return nil, err
	}
	if dt.Stats.Cycles() < mdc.Stats.Cycles() {
		return dt, nil
	}
	return mdc, nil
}

// Chains analysis shared by Table 3 and Table 5.
func chainRatios(loops []*ir.Loop, specialize bool) (cmr, car float64) {
	var chainDyn, memDyn, opsDyn float64
	for _, l := range loops {
		g := ddg.MustBuild(l)
		if specialize {
			g, _ = core.Specialize(g)
		}
		st := core.AnalyzeChains(g)
		w := float64(l.Trip * l.Entries)
		chainDyn += float64(st.Biggest) * w
		memDyn += float64(st.MemOps) * w
		opsDyn += float64(st.Ops) * w
	}
	if memDyn == 0 || opsDyn == 0 {
		return 0, 0
	}
	return chainDyn / memDyn, chainDyn / opsDyn
}
