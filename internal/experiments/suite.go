// Package experiments regenerates every table and figure of the paper's
// evaluation (§4 and §5) on the synthesized Mediabench suite: access
// classification (Figure 6), execution time (Figure 7), chain analysis
// (Table 3), DDGT analysis (Table 4), the unbalanced-bus configurations,
// the Attraction Buffer runs (Figure 9, §5.4) and code specialization
// (Table 5).
//
// The evaluation is a benchmark × variant × loop grid of independent
// pipeline runs. A Suite submits each (benchmark, variant) cell through a
// shared engine.Engine: cells fan out across a bounded worker pool, are
// memoized with single-flight deduplication (two callers asking for the
// same cell compute it once), and honor context cancellation at pipeline
// stage boundaries. Figures and tables first warm the grid in parallel and
// then render serially in canonical cell order, so their output is
// byte-identical to a serial run.
package experiments

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"vliwcache/internal/arch"
	"vliwcache/internal/core"
	"vliwcache/internal/ddg"
	"vliwcache/internal/engine"
	"vliwcache/internal/ir"
	"vliwcache/internal/mediabench"
	"vliwcache/internal/obs"
	"vliwcache/internal/profiler"
	"vliwcache/internal/sched"
	"vliwcache/internal/sim"
)

// Variant identifies one (policy, scheduler) combination. The scheduler is
// named either by the legacy Heuristic enum (the paper's variants) or by a
// registry name in Scheduler, which takes precedence when set.
type Variant struct {
	Policy    core.Policy
	Heuristic sched.Heuristic

	// Scheduler, when non-empty, selects a registered scheduler by name
	// ("oracle", "locality", "prefclus-slack", ...) instead of the
	// Heuristic enum. The empty value preserves the pre-registry behavior
	// — and the pre-registry cell-key format — exactly.
	Scheduler string
}

// String renders the cell-key form of the variant. The historical
// "Policy(Heuristic)" format is kept verbatim for enum variants — engine
// memo keys and serving cache keys are derived from it — and named
// schedulers render as "Policy(name)" (registry names are lower-case, so
// the two spellings cannot collide).
func (v Variant) String() string {
	if v.Scheduler != "" {
		return fmt.Sprintf("%s(%s)", v.Policy, v.Scheduler)
	}
	return fmt.Sprintf("%s(%s)", v.Policy, v.Heuristic)
}

// The paper's variants.
var (
	FreeMinComs  = Variant{Policy: core.PolicyFree, Heuristic: sched.MinComs}  // the optimistic baseline
	FreePrefClus = Variant{Policy: core.PolicyFree, Heuristic: sched.PrefClus} // Figure 6 bar (i)
	MDCPrefClus  = Variant{Policy: core.PolicyMDC, Heuristic: sched.PrefClus}
	MDCMinComs   = Variant{Policy: core.PolicyMDC, Heuristic: sched.MinComs}
	DDGTPrefClus = Variant{Policy: core.PolicyDDGT, Heuristic: sched.PrefClus}
	DDGTMinComs  = Variant{Policy: core.PolicyDDGT, Heuristic: sched.MinComs}
)

// LoopRun is one loop's outcome under one variant.
type LoopRun struct {
	Loop  string
	II    int
	Comms int // communication ops per iteration (scheduled copies)
	Stats *sim.Stats
}

// Cell aggregates a benchmark's loops under one variant.
type Cell struct {
	Bench   string
	Variant Variant
	Loops   []LoopRun
	Total   sim.Stats
}

// CommOpsPerIter is the dynamic count of communication operations divided
// by dynamic iterations — the quantity compared in Table 4.
func (c *Cell) CommOpsPerIter() float64 {
	if c.Total.Iterations == 0 {
		return 0
	}
	return float64(c.Total.CommOps) / float64(c.Total.Iterations)
}

// TraceEvent reports the completion of one pipeline stage (or a whole
// cell) to a Suite tracer. Tracers run on worker goroutines and must be
// safe for concurrent use.
type TraceEvent struct {
	Bench   string // benchmark name; empty for standalone loop runs
	Loop    string // loop name; empty for cell-level events
	Variant Variant
	Stage   string // "prepare", "profile", "schedule", "simulate" or "cell"
	Elapsed time.Duration
	Err     error
}

// Suite runs and caches benchmark × variant cells for one base
// architecture configuration (the per-benchmark interleaving factor is
// applied on top). Cells are computed through a bounded parallel engine
// with single-flight memoization; a Suite is safe for concurrent use.
type Suite struct {
	Base    arch.Config
	Benches []*mediabench.Benchmark

	// SimOptions applies to every run (iteration caps for quick runs).
	// Set it before the first Cell call; cells are cached per
	// (benchmark, variant) and are not recomputed when it changes.
	SimOptions sim.Options

	parallelism int
	tracer      func(TraceEvent)
	observer    Observer
	pool        *sim.Pool
	fastPath    bool

	// Scheduler selection. scheduler overrides the per-variant enums with
	// one registered scheduler; portfolio races several and keeps the best
	// schedule. A Variant.Scheduler set on the cell wins over both. All
	// empty (the default) runs the legacy enum path on the hot path.
	scheduler string
	portfolio []string

	// Degraded-mode state (chaos mode). When degraded is set, a cell that
	// fails — pipeline error, panic, deadline — is recorded instead of
	// aborting the render; figures and tables annotate it n/a(reason).
	cellTimeout time.Duration
	cellRetries int
	degraded    bool
	failMu      sync.Mutex
	failures    map[string]*CellFailure
	failHook    func(*CellFailure)

	engOnce sync.Once
	eng     *engine.Engine
}

// Option configures a Suite at construction time.
type Option func(*Suite)

// WithSimOptions sets the simulation options applied to every run.
func WithSimOptions(o sim.Options) Option {
	return func(s *Suite) { s.SimOptions = o }
}

// WithFastPath turns on the simulator's steady-state fast path for every
// run the suite executes: dead cycles are skipped and periodic loop bodies
// are detected, validated, and extrapolated analytically. Results are
// bit-identical to the slow path; runs the fast path cannot prove periodic
// (tracers, fault injection, coherence checking, replicated layouts, ...)
// fall back loudly — the fallback count and reason surface through
// Metrics when a machine pool is in force. Composes with WithSimOptions
// regardless of option order.
func WithFastPath() Option {
	return func(s *Suite) { s.fastPath = true }
}

// simOpts is the effective per-run simulation options: SimOptions with
// the WithFastPath flag folded in.
func (s *Suite) simOpts() sim.Options {
	o := s.SimOptions
	if s.fastPath {
		o.FastPath = true
	}
	return o
}

// WithParallelism bounds the number of cells computed concurrently.
// Non-positive values (and the default) use runtime.GOMAXPROCS(0).
// WithParallelism(1) reproduces the serial execution order exactly.
func WithParallelism(n int) Option {
	return func(s *Suite) { s.parallelism = n }
}

// WithEngine runs the suite on a caller-owned engine instead of a
// private one, pooling its worker slots and aggregating stage metrics
// across suites (the serving layer uses this to surface pipeline stage
// timings in one place). Overrides WithParallelism and the engine
// robustness options.
func WithEngine(e *engine.Engine) Option {
	return func(s *Suite) { s.eng = e }
}

// WithTracer installs a callback invoked after every pipeline stage and
// cell completion. The tracer runs on worker goroutines and must be safe
// for concurrent use.
func WithTracer(fn func(TraceEvent)) Option {
	return func(s *Suite) { s.tracer = fn }
}

// Observer supplies cycle-level simulation tracers to a suite's runs.
// NewTracer is called once per pipeline run (one loop under one variant)
// just before simulation; the tracer it returns receives every obs.Event
// the simulator emits for that run. Returning nil leaves that run
// untraced (the zero-overhead path). Runs execute on worker goroutines,
// so NewTracer — and any tracer shared between runs — must be safe for
// concurrent use.
type Observer struct {
	NewTracer func(bench, loop string, v Variant) obs.Tracer
}

// WithObserver installs an Observer whose tracers capture cycle-level
// simulation events (issues, bank arrivals, bus transfers, AB activity,
// stalls) for every run the suite executes.
func WithObserver(o Observer) Option {
	return func(s *Suite) { s.observer = o }
}

// WithMachinePool routes every simulation the suite runs through a pool
// of at most n reusable simulation machines (<= 0 sizes the pool to the
// worker count). Pooled cells pay for cache modules, bus arbiters and
// hot-path tables once per worker instead of once per loop run; results
// are bit-identical to unpooled runs (machines reset to cold state).
// Pool traffic shows up in Metrics as PoolRuns / PoolReuses.
func WithMachinePool(n int) Option {
	return func(s *Suite) { s.pool = sim.NewPool(n) }
}

// WithScheduler makes the suite schedule every cell with the named
// registered scheduler ("oracle", "locality", "prefclus-slack", ...)
// instead of the variant's Heuristic enum. Unknown names surface as
// schedule-stage pipeline errors wrapping sched.ErrUnknownScheduler.
func WithScheduler(name string) Option {
	return func(s *Suite) { s.scheduler = name }
}

// WithPortfolio makes the suite race the named registered schedulers on
// every cell and keep the best valid schedule (tie-break: II, then
// schedule length, then name order — see sched.Portfolio). A portfolio of
// one behaves exactly like WithScheduler with that name.
func WithPortfolio(names ...string) Option {
	return func(s *Suite) { s.portfolio = append([]string(nil), names...) }
}

// WithCellTimeout bounds the wall time of each cell computation. A cell
// that exceeds it fails with context.DeadlineExceeded — fatally outside
// degraded mode, as an n/a(timeout) annotation inside it.
func WithCellTimeout(d time.Duration) Option {
	return func(s *Suite) { s.cellTimeout = d }
}

// WithCellRetries re-runs a cell up to n extra times when it fails with a
// transient error (engine.ErrTransient).
func WithCellRetries(n int) Option {
	return func(s *Suite) { s.cellRetries = n }
}

// WithDegraded turns on graceful degradation: a failing cell no longer
// aborts figure and table rendering. Instead the failure is recorded (see
// Failures) and renderers print n/a(reason) for the affected rows,
// excluding them from aggregate means. Output is byte-identical to normal
// mode when every cell succeeds.
func WithDegraded() Option {
	return func(s *Suite) { s.degraded = true }
}

// WithFailureHook installs a callback invoked once per recorded cell
// failure. Experiments like Nobal and Layouts build their own internal
// suites; passing the hook through the option list lets a caller observe
// every failure regardless of which suite recorded it. The hook runs on
// worker goroutines and must be safe for concurrent use.
func WithFailureHook(fn func(*CellFailure)) Option {
	return func(s *Suite) { s.failHook = fn }
}

// NewSuite builds a suite over the paper's thirteen figure benchmarks.
func NewSuite(base arch.Config, opts ...Option) *Suite {
	s := &Suite{
		Base:    base,
		Benches: mediabench.Figures(),
	}
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// engine returns the suite's executor, creating it on first use so that
// hand-constructed suites and option-free NewSuite calls both work.
func (s *Suite) engine() *engine.Engine {
	s.engOnce.Do(func() {
		if s.eng == nil {
			var opts []engine.Option
			if s.cellTimeout > 0 {
				opts = append(opts, engine.WithTaskTimeout(s.cellTimeout))
			}
			if s.cellRetries > 0 {
				opts = append(opts, engine.WithRetry(s.cellRetries, 25*time.Millisecond))
			}
			s.eng = engine.New(s.parallelism, opts...)
		}
	})
	return s.eng
}

// Metrics snapshots the suite engine's counters: cells computed versus
// cache hits, worker utilization, wall time per pipeline stage, and — when
// WithMachinePool is in force — machine pool traffic.
func (s *Suite) Metrics() engine.Metrics {
	m := s.engine().Metrics()
	if s.pool != nil {
		m.PoolRuns, m.PoolReuses = s.pool.Counters()
		m.SubstrateBuilds, m.SubstrateReuses = s.pool.SubstrateCounters()
		fp := s.pool.FastPath()
		m.FastPathRuns = fp.EligibleRuns
		m.FastPathFallbacks = fp.FallbackRuns
		m.FastPathExtrapolations = fp.Extrapolations
		m.FastPathSkippedCycles = fp.SkippedCycles + fp.DeadCyclesSkipped
	}
	return m
}

func (s *Suite) bench(name string) (*mediabench.Benchmark, error) {
	for _, b := range s.Benches {
		if b.Name == name {
			return b, nil
		}
	}
	return nil, fmt.Errorf("experiments: %w %q: not in suite", mediabench.ErrUnknownBenchmark, name)
}

// Cell is CellContext with a background context — the convenience form
// for interactive and test use.
func (s *Suite) Cell(bench string, v Variant) (*Cell, error) {
	return s.CellContext(context.Background(), bench, v)
}

// CellCtx returns the (cached) result of one benchmark under one variant.
//
// Deprecated: CellCtx is the pre-v1 spelling of CellContext; use that.
func (s *Suite) CellCtx(ctx context.Context, bench string, v Variant) (*Cell, error) {
	return s.CellContext(ctx, bench, v)
}

// CellContext returns the result of one benchmark under one variant.
// Results are memoized: concurrent callers asking for the same cell share
// one computation, and later callers get the cached cell. ctx cancellation
// is honored at pipeline stage boundaries.
func (s *Suite) CellContext(ctx context.Context, bench string, v Variant) (*Cell, error) {
	key := bench + "/" + v.String() + s.schedulerKey()
	val, err := s.engine().Do(ctx, key, func(ctx context.Context) (any, error) {
		return s.computeCell(ctx, bench, v)
	})
	if err != nil {
		return nil, err
	}
	return val.(*Cell), nil
}

// computeCell runs every loop of one benchmark under one variant.
func (s *Suite) computeCell(ctx context.Context, bench string, v Variant) (*Cell, error) {
	b, err := s.bench(bench)
	if err != nil {
		return nil, err
	}
	cfg := s.Base.WithInterleave(b.Interleave)
	c := &Cell{Bench: bench, Variant: v}
	t0 := time.Now()
	for _, loop := range b.Loops {
		run, err := s.runLoop(ctx, loop, cfg, v, s.simOpts(), bench)
		if err != nil {
			return nil, err
		}
		c.Loops = append(c.Loops, *run)
		c.Total.Add(run.Stats)
	}
	if s.tracer != nil {
		s.tracer(TraceEvent{Bench: bench, Variant: v, Stage: "cell", Elapsed: time.Since(t0)})
	}
	return c, nil
}

// Warm computes every benchmark × variant cell of the grid concurrently
// through the engine. After it returns, cell reads are cache hits, so a
// figure or table can render serially in canonical order — byte-identical
// to a serial run — while the computation itself used every worker. The
// first error cancels the remaining cells and is returned.
func (s *Suite) Warm(ctx context.Context, variants ...Variant) error {
	benches := make([]string, len(s.Benches))
	for i, b := range s.Benches {
		benches[i] = b.Name
	}
	return s.WarmBenches(ctx, benches, variants...)
}

// WarmBenches is Warm restricted to a subset of the suite's benchmarks.
func (s *Suite) WarmBenches(ctx context.Context, benches []string, variants ...Variant) error {
	type cellID struct {
		bench string
		v     Variant
	}
	var grid []cellID
	for _, b := range benches {
		for _, v := range variants {
			grid = append(grid, cellID{b, v})
		}
	}
	if s.degraded {
		// Every cell gets its chance; failures are recorded per cell and
		// surface as n/a(reason) annotations at render time. Only parent
		// cancellation is fatal.
		s.engine().MapAll(ctx, len(grid), func(ctx context.Context, i int) error {
			_, _, err := s.cellDegraded(ctx, grid[i].bench, grid[i].v)
			return err
		})
		return ctx.Err()
	}
	return s.engine().Map(ctx, len(grid), func(ctx context.Context, i int) error {
		_, err := s.CellContext(ctx, grid[i].bench, grid[i].v)
		return err
	})
}

// PipelineResult bundles every artifact of one pipeline run. LoopRun is
// its reporting projection; serving callers need the Schedule itself
// (to render words or validate) alongside the statistics.
type PipelineResult struct {
	Plan     *core.Plan
	Profile  *profiler.Profile
	Schedule *sched.Schedule
	Stats    *sim.Stats
}

// Run is the reporting projection of a pipeline result.
func (r *PipelineResult) Run(loop string) *LoopRun {
	return &LoopRun{Loop: loop, II: r.Schedule.II, Comms: r.Schedule.CommOps(), Stats: r.Stats}
}

// RunPipelineContext drives the full pipeline for one loop — profile,
// prepare under the policy, modulo schedule, simulate — and returns
// every artifact. ctx is checked at every stage boundary; failures are
// reported as a *PipelineError naming the stage. Suite options apply
// (e.g. WithEngine to aggregate stage timings, WithTracer to observe
// stage boundaries).
func RunPipelineContext(ctx context.Context, loop *ir.Loop, cfg arch.Config, v Variant, opts sim.Options, suiteOpts ...Option) (*PipelineResult, error) {
	s := &Suite{Base: cfg}
	for _, o := range suiteOpts {
		o(s)
	}
	return s.runPipeline(ctx, loop, cfg, v, opts, "")
}

// RunLoopContext is RunPipelineContext reduced to the reporting
// projection (II, communication ops, statistics).
func RunLoopContext(ctx context.Context, loop *ir.Loop, cfg arch.Config, v Variant, opts sim.Options) (*LoopRun, error) {
	s := &Suite{Base: cfg}
	return s.runLoop(ctx, loop, cfg, v, opts, "")
}

// RunLoop is RunLoopContext with a background context.
func RunLoop(loop *ir.Loop, cfg arch.Config, v Variant, opts sim.Options) (*LoopRun, error) {
	return RunLoopContext(context.Background(), loop, cfg, v, opts)
}

// runLoop is runPipeline reduced to the reporting projection.
func (s *Suite) runLoop(ctx context.Context, loop *ir.Loop, cfg arch.Config, v Variant, opts sim.Options, bench string) (*LoopRun, error) {
	res, err := s.runPipeline(ctx, loop, cfg, v, opts, bench)
	if err != nil {
		return nil, err
	}
	return res.Run(loop.Name), nil
}

// runPipeline drives the full pipeline plus instrumentation: stage wall
// times go to the suite engine and the tracer observes each stage.
func (s *Suite) runPipeline(ctx context.Context, loop *ir.Loop, cfg arch.Config, v Variant, opts sim.Options, bench string) (res *PipelineResult, err error) {
	// Cells computed through the engine already have panic recovery; this
	// guard covers standalone RunLoop/RunHybrid callers so a diverging
	// pipeline stage degrades into an error instead of killing the process.
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, &PipelineError{
				Bench: bench, Loop: loop.Name, Variant: v, Stage: "panic",
				Err: &engine.PanicError{Value: r, Stack: debug.Stack()},
			}
		}
	}()
	fail := func(stage string, err error) (*PipelineResult, error) {
		return nil, &PipelineError{Bench: bench, Loop: loop.Name, Variant: v, Stage: stage, Err: err}
	}
	stageDone := func(stage string, t0 time.Time, err error) {
		d := time.Since(t0)
		// Cell computations always arrive through the engine, so s.eng is
		// set; standalone RunLoop calls skip stage accounting.
		if s.eng != nil {
			s.eng.RecordStage(stage, d)
		}
		if s.tracer != nil {
			s.tracer(TraceEvent{Bench: bench, Loop: loop.Name, Variant: v, Stage: stage, Elapsed: d, Err: err})
		}
	}

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	t0 := time.Now()
	plan, err := core.Prepare(loop, v.Policy, cfg.NumClusters)
	stageDone("prepare", t0, err)
	if err != nil {
		return fail("prepare", err)
	}

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	t0 = time.Now()
	prof := profiler.Run(loop, cfg)
	stageDone("profile", t0, nil)

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	t0 = time.Now()
	sc, err := s.schedule(ctx, plan, sched.Options{Arch: cfg, Heuristic: v.Heuristic, Profile: prof}, v)
	stageDone("schedule", t0, err)
	if err != nil {
		return fail("schedule", err)
	}

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	t0 = time.Now()
	if s.observer.NewTracer != nil {
		opts.Tracer = s.observer.NewTracer(bench, loop.Name, v)
	}
	var st *sim.Stats
	if s.pool != nil {
		st, err = s.pool.RunSchedule(ctx, sc, opts)
	} else {
		st, err = sim.RunContext(ctx, sc, opts)
	}
	stageDone("simulate", t0, err)
	if err != nil {
		return fail("simulate", err)
	}
	return &PipelineResult{Plan: plan, Profile: prof, Schedule: sc, Stats: st}, nil
}

// schedulerKey is the suffix distinguishing engine memo keys when a
// suite-level scheduler or portfolio is in force. Empty in the default
// configuration, so legacy keys — and everything derived from them — are
// unchanged; with a scheduler set, suites sharing one engine (WithEngine)
// cannot collide on cells scheduled differently.
func (s *Suite) schedulerKey() string {
	switch {
	case len(s.portfolio) > 0:
		key := "@portfolio="
		for i, n := range s.portfolio {
			if i > 0 {
				key += "+"
			}
			key += n
		}
		return key
	case s.scheduler != "":
		return "@scheduler=" + s.scheduler
	}
	return ""
}

// schedule dispatches the schedule stage: an explicit Variant.Scheduler
// wins, then the suite's portfolio or scheduler, and with none of those
// set the legacy enum path runs — byte-identical to the pre-registry
// scheduler, keeping the hot path and its perf baseline intact.
func (s *Suite) schedule(ctx context.Context, plan *core.Plan, opts sched.Options, v Variant) (*sched.Schedule, error) {
	switch {
	case v.Scheduler != "":
		return sched.RunScheduler(ctx, v.Scheduler, plan, opts)
	case len(s.portfolio) > 0:
		p, err := sched.NewPortfolio(s.portfolio...)
		if err != nil {
			return nil, err
		}
		return p.Schedule(ctx, plan, opts)
	case s.scheduler != "":
		return sched.RunScheduler(ctx, s.scheduler, plan, opts)
	}
	return sched.Run(plan, opts)
}

// RunHybridContext implements the per-loop hybrid of §6 (further work):
// both MDC and DDGT are scheduled and simulated and the faster one is kept
// per loop.
func RunHybridContext(ctx context.Context, loop *ir.Loop, cfg arch.Config, h sched.Heuristic, opts sim.Options) (*LoopRun, error) {
	mdc, err := RunLoopContext(ctx, loop, cfg, Variant{Policy: core.PolicyMDC, Heuristic: h}, opts)
	if err != nil {
		return nil, err
	}
	dt, err := RunLoopContext(ctx, loop, cfg, Variant{Policy: core.PolicyDDGT, Heuristic: h}, opts)
	if err != nil {
		return nil, err
	}
	if dt.Stats.Cycles() < mdc.Stats.Cycles() {
		return dt, nil
	}
	return mdc, nil
}

// RunHybrid is RunHybridContext with a background context.
func RunHybrid(loop *ir.Loop, cfg arch.Config, h sched.Heuristic, opts sim.Options) (*LoopRun, error) {
	return RunHybridContext(context.Background(), loop, cfg, h, opts)
}

// Chains analysis shared by Table 3 and Table 5.
func chainRatios(loops []*ir.Loop, specialize bool) (cmr, car float64) {
	var chainDyn, memDyn, opsDyn float64
	for _, l := range loops {
		g := ddg.MustBuild(l)
		if specialize {
			g, _ = core.Specialize(g)
		}
		st := core.AnalyzeChains(g)
		w := float64(l.Trip * l.Entries)
		chainDyn += float64(st.Biggest) * w
		memDyn += float64(st.MemOps) * w
		opsDyn += float64(st.Ops) * w
	}
	if memDyn == 0 || opsDyn == 0 {
		return 0, 0
	}
	return chainDyn / memDyn, chainDyn / opsDyn
}
