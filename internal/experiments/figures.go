package experiments

import (
	"context"
	"fmt"
	"strings"

	"vliwcache/internal/arch"
	"vliwcache/internal/mediabench"
	"vliwcache/internal/sim"
	"vliwcache/internal/textplot"
)

// classGlyphs render the five access classes in Figure 6 bars.
var classGlyphs = map[sim.Class]rune{
	sim.LocalHit:   '#',
	sim.RemoteHit:  '=',
	sim.LocalMiss:  '+',
	sim.RemoteMiss: '-',
	sim.Combined:   '~',
}

// Figure6 reproduces Figure 6: classification of memory accesses under the
// PrefClus heuristic for (i) no memory dependence restrictions, (ii) MDC,
// (iii) DDGT, per benchmark plus the arithmetic mean.
func Figure6(ctx context.Context, s *Suite) (string, error) {
	variants := []Variant{FreePrefClus, MDCPrefClus, DDGTPrefClus}
	labels := []string{"free", "MDC", "DDGT"}

	// Fan the whole grid out across the engine, then render serially from
	// the cache so the output is byte-identical to a serial run.
	if err := s.Warm(ctx, variants...); err != nil {
		return "", err
	}

	var b strings.Builder
	b.WriteString("Figure 6. Classification of memory accesses (PrefClus heuristic).\n")
	b.WriteString("Bars: local hits '#', remote hits '=', local misses '+', remote misses '-', combined '~'.\n\n")

	t := textplot.NewTable("benchmark", "variant", "bar (0..100%)", "LH", "RH", "LM", "RM", "CO")
	sums := make([][]float64, len(variants)) // per variant, per class, accumulated ratios
	counts := make([]int, len(variants))     // per variant, benchmarks that computed
	for i := range sums {
		sums[i] = make([]float64, sim.NumClasses)
	}

	for _, bench := range s.Benches {
		for vi, v := range variants {
			c, f, err := s.cellDegraded(ctx, bench.Name, v)
			if err != nil {
				return "", err
			}
			name := ""
			if vi == 0 {
				name = bench.Name
			}
			if f != nil {
				t.Row(name, labels[vi], naCell(f), "-", "-", "-", "-", "-")
				continue
			}
			counts[vi]++
			var segs []textplot.Segment
			ratios := make([]float64, sim.NumClasses)
			for cl := sim.Class(0); cl < sim.NumClasses; cl++ {
				r := c.Total.ClassRatio(cl)
				ratios[cl] = r
				sums[vi][cl] += r
				segs = append(segs, textplot.Segment{Frac: r, Rune: classGlyphs[cl]})
			}
			t.Row(name, labels[vi], "|"+textplot.StackedBar(40, segs)+"|",
				pct(ratios[sim.LocalHit]), pct(ratios[sim.RemoteHit]),
				pct(ratios[sim.LocalMiss]), pct(ratios[sim.RemoteMiss]), pct(ratios[sim.Combined]))
		}
	}
	for vi := range variants {
		name := ""
		if vi == 0 {
			name = "AMEAN"
		}
		n := float64(counts[vi]) // mean over the cells that computed
		if n == 0 {
			t.Row(name, labels[vi], "n/a", "-", "-", "-", "-", "-")
			continue
		}
		var segs []textplot.Segment
		for cl := sim.Class(0); cl < sim.NumClasses; cl++ {
			segs = append(segs, textplot.Segment{Frac: sums[vi][cl] / n, Rune: classGlyphs[sim.Class(cl)]})
		}
		t.Row(name, labels[vi], "|"+textplot.StackedBar(40, segs)+"|",
			pct(sums[vi][sim.LocalHit]/n), pct(sums[vi][sim.RemoteHit]/n),
			pct(sums[vi][sim.LocalMiss]/n), pct(sums[vi][sim.RemoteMiss]/n), pct(sums[vi][sim.Combined]/n))
	}
	b.WriteString(t.String())
	return b.String(), nil
}

// executionTimeFigure renders Figure 7 (and Figure 9 when the suite's base
// config has Attraction Buffers): cycle counts of MDC/DDGT × PrefClus/
// MinComs normalized to the optimistic MinComs baseline, split into
// compute ('#') and stall ('.') time.
func executionTimeFigure(ctx context.Context, s *Suite, title string) (string, error) {
	variants := []Variant{MDCPrefClus, MDCMinComs, DDGTPrefClus, DDGTMinComs}
	labels := []string{"MDC(PrefClus)", "MDC(MinComs)", "DDGT(PrefClus)", "DDGT(MinComs)"}

	if err := s.Warm(ctx, append([]Variant{FreeMinComs}, variants...)...); err != nil {
		return "", err
	}

	var b strings.Builder
	b.WriteString(title)
	b.WriteString("Bars normalized to the optimistic baseline (free MinComs) = 1.0;\n")
	b.WriteString("'#' compute time, '.' stall time; scale: 50 chars = 1.0.\n\n")

	t := textplot.NewTable("benchmark", "variant", "bar (norm. cycles)", "total", "compute", "stall")
	norms := make([][]float64, len(variants)) // total, compute, stall sums for AMEAN
	counts := make([]int, len(variants))      // per variant, benchmarks that computed
	for i := range norms {
		norms[i] = make([]float64, 3)
	}

	for _, bench := range s.Benches {
		base, bf, err := s.cellDegraded(ctx, bench.Name, FreeMinComs)
		if err != nil {
			return "", err
		}
		for vi, v := range variants {
			name := ""
			if vi == 0 {
				name = bench.Name
			}
			if bf != nil {
				// Without the baseline nothing normalizes for this benchmark.
				t.Row(name, labels[vi], "n/a(base:"+bf.Reason+")", "-", "-", "-")
				continue
			}
			c, f, err := s.cellDegraded(ctx, bench.Name, v)
			if err != nil {
				return "", err
			}
			if f != nil {
				t.Row(name, labels[vi], naCell(f), "-", "-", "-")
				continue
			}
			bc := float64(base.Total.Cycles())
			comp := float64(c.Total.ComputeCycles) / bc
			stall := float64(c.Total.StallCycles) / bc
			norms[vi][0] += comp + stall
			norms[vi][1] += comp
			norms[vi][2] += stall
			counts[vi]++
			t.Row(name, labels[vi],
				"|"+textplot.StackedBar(50, []textplot.Segment{
					{Frac: comp / 2, Rune: '#'}, // scale: 50 chars = 1.0 => frac relative to 2.0 width
					{Frac: stall / 2, Rune: '.'},
				})+"|",
				fmt.Sprintf("%.3f", comp+stall), fmt.Sprintf("%.3f", comp), fmt.Sprintf("%.3f", stall))
		}
	}
	for vi := range variants {
		name := ""
		if vi == 0 {
			name = "AMEAN"
		}
		n := float64(counts[vi]) // mean over the cells that computed
		if n == 0 {
			t.Row(name, labels[vi], "n/a", "-", "-", "-")
			continue
		}
		t.Row(name, labels[vi],
			"|"+textplot.StackedBar(50, []textplot.Segment{
				{Frac: norms[vi][1] / n / 2, Rune: '#'},
				{Frac: norms[vi][2] / n / 2, Rune: '.'},
			})+"|",
			fmt.Sprintf("%.3f", norms[vi][0]/n),
			fmt.Sprintf("%.3f", norms[vi][1]/n),
			fmt.Sprintf("%.3f", norms[vi][2]/n))
	}
	b.WriteString(t.String())
	return b.String(), nil
}

// Figure7 reproduces Figure 7: execution time under the Table 2 config.
func Figure7(ctx context.Context, s *Suite) (string, error) {
	return executionTimeFigure(ctx, s,
		"Figure 7. Execution time results for the different solutions and heuristics.\n")
}

// Figure9 reproduces Figure 9: execution time with 16-entry 2-way
// Attraction Buffers. The suite must be built over an AB configuration.
func Figure9(ctx context.Context, s *Suite) (string, error) {
	if s.Base.ABEntries == 0 {
		return "", fmt.Errorf("experiments: Figure 9 requires a suite with Attraction Buffers")
	}
	return executionTimeFigure(ctx, s,
		"Figure 9. Execution time with 16-entry 2-way set-associative Attraction Buffers.\n")
}

// Nobal reproduces the §4.2 unbalanced-bus study: NOBAL+MEM (4 memory
// buses, two 4-cycle register buses) and NOBAL+REG (two 4-cycle memory
// buses, 4 register buses), reporting the speedup of DDGT(PrefClus) over
// the best MDC variant per benchmark.
func Nobal(ctx context.Context, simOpts sim.Options, opts ...Option) (string, error) {
	var b strings.Builder
	b.WriteString("Unbalanced bus configurations (§4.2).\n\n")
	for _, conf := range []struct {
		name string
		cfg  arch.Config
	}{
		{"NOBAL+MEM", arch.NobalMem()},
		{"NOBAL+REG", arch.NobalReg()},
	} {
		s := NewSuite(conf.cfg, append([]Option{WithSimOptions(simOpts)}, opts...)...)
		if err := s.Warm(ctx, MDCPrefClus, MDCMinComs, DDGTPrefClus); err != nil {
			return "", err
		}
		t := textplot.NewTable("benchmark", "MDC(Pref)", "MDC(Min)", "DDGT(Pref)", "DDGT(Pref) vs best MDC")
		for _, bench := range s.Benches {
			mp, fp, err := s.cellDegraded(ctx, bench.Name, MDCPrefClus)
			if err != nil {
				return "", err
			}
			mm, fm, err := s.cellDegraded(ctx, bench.Name, MDCMinComs)
			if err != nil {
				return "", err
			}
			dp, fd, err := s.cellDegraded(ctx, bench.Name, DDGTPrefClus)
			if err != nil {
				return "", err
			}
			if fp != nil || fm != nil || fd != nil {
				t.Rowf("%s\t%s\t%s\t%s\t%s", bench.Name,
					cyclesOrNA(mp, fp), cyclesOrNA(mm, fm), cyclesOrNA(dp, fd), "n/a")
				continue
			}
			best := mp.Total.Cycles()
			if mm.Total.Cycles() < best {
				best = mm.Total.Cycles()
			}
			speedup := float64(best)/float64(dp.Total.Cycles()) - 1
			t.Rowf("%s\t%d\t%d\t%d\t%+.1f%%", bench.Name,
				mp.Total.Cycles(), mm.Total.Cycles(), dp.Total.Cycles(), 100*speedup)
		}
		fmt.Fprintf(&b, "%s: %s\n%s\n", conf.name, conf.cfg, t.String())
	}
	return b.String(), nil
}

// EpicLoop reproduces the §5.4 case study: the epicdec loop whose 76-op
// memory dependent chain overflows a single Attraction Buffer under MDC
// while DDGT spreads its accesses over all four buffers. The runs go
// through an internal suite, so WithDegraded, WithCellTimeout and
// WithFailureHook apply exactly as they do to the grid experiments: a
// failed run renders as n/a(reason) instead of aborting the table.
func EpicLoop(ctx context.Context, simOpts sim.Options, opts ...Option) (string, error) {
	bench, err := mediabench.Get("epicdec")
	if err != nil {
		return "", err
	}
	loop := bench.Loops[0]
	var b strings.Builder
	b.WriteString("§5.4 case study: the epicdec loop with a 76-op memory dependent chain.\n\n")
	t := textplot.NewTable("config", "variant", "local hit ratio", "stall cycles", "total cycles")
	for _, ab := range []int{0, 16} {
		cfg := arch.Default().WithInterleave(bench.Interleave)
		label := "no AB"
		if ab > 0 {
			cfg = cfg.WithAttractionBuffers(ab)
			label = fmt.Sprintf("%d-entry AB", ab)
		}
		s := NewSuite(cfg, append([]Option{WithSimOptions(simOpts)}, opts...)...)
		for _, v := range []Variant{MDCPrefClus, DDGTPrefClus} {
			run, f, err := s.loopDegraded(ctx, "epicloop("+label+")", loop, v)
			if err != nil {
				return "", err
			}
			if f != nil {
				t.Rowf("%s\t%s\t%s\t%s\t%s", label, v, naCell(f), "-", "-")
				continue
			}
			t.Rowf("%s\t%s\t%.1f%%\t%d\t%d", label, v,
				100*run.Stats.LocalHitRatio(), run.Stats.StallCycles, run.Stats.Cycles())
		}
	}
	b.WriteString(t.String())
	return b.String(), nil
}
