package experiments

import (
	"context"
	"sync"
	"testing"

	"vliwcache/internal/arch"
	"vliwcache/internal/fault"
	"vliwcache/internal/sim"
)

// poolTestOpts trims the pooled-identity workload under the race
// detector so the package stays inside the test timeout on slow hosts;
// the identity property is size-independent, so checking a smaller run
// proves the same thing.
func poolTestOpts() sim.Options {
	opts := parallelSimOpts
	if raceEnabled {
		opts.MaxIterations = 20
	}
	return opts
}

// poolTestBenches likewise narrows the grid under -race.
func poolTestBenches(all []string) []string {
	if raceEnabled {
		return all[:1]
	}
	return all
}

// cellsEqual compares two cells field by field (stats by value).
func cellsEqual(t *testing.T, label string, got, want *Cell) {
	t.Helper()
	if got.Total != want.Total {
		t.Errorf("%s: totals diverge:\n got %+v\nwant %+v", label, got.Total, want.Total)
	}
	if len(got.Loops) != len(want.Loops) {
		t.Fatalf("%s: %d loops vs %d", label, len(got.Loops), len(want.Loops))
	}
	for i := range got.Loops {
		g, w := got.Loops[i], want.Loops[i]
		if g.Loop != w.Loop || g.II != w.II || g.Comms != w.Comms || *g.Stats != *w.Stats {
			t.Errorf("%s loop %s: pooled run diverges:\n got II=%d comms=%d %+v\nwant II=%d comms=%d %+v",
				label, g.Loop, g.II, g.Comms, *g.Stats, w.II, w.Comms, *w.Stats)
		}
	}
}

// TestPooledCellsMatchSerial interleaves pooled cells across workers —
// hammered from several goroutines so machines are recycled mid-grid —
// and asserts the results are identical to an unpooled serial run. Run
// under -race this also proves the pool's concurrency safety.
func TestPooledCellsMatchSerial(t *testing.T) {
	benches := poolTestBenches([]string{"epicdec", "gsmenc"})
	variants := []Variant{MDCPrefClus, DDGTMinComs}

	serial := NewSuite(arch.Default(), WithSimOptions(poolTestOpts()), WithParallelism(1))
	ref := make(map[string]*Cell)
	for _, b := range benches {
		for _, v := range variants {
			c, err := serial.CellContext(context.Background(), b, v)
			if err != nil {
				t.Fatal(err)
			}
			ref[b+"/"+v.String()] = c
		}
	}

	pooled := NewSuite(arch.Default(),
		WithSimOptions(poolTestOpts()), WithParallelism(4), WithMachinePool(2))
	const hammers = 6
	var wg sync.WaitGroup
	errs := make([]error, hammers)
	cells := make([]map[string]*Cell, hammers)
	for g := 0; g < hammers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cells[g] = make(map[string]*Cell)
			for _, b := range benches {
				for _, v := range variants {
					c, err := pooled.CellContext(context.Background(), b, v)
					if err != nil {
						errs[g] = err
						return
					}
					cells[g][b+"/"+v.String()] = c
				}
			}
		}(g)
	}
	wg.Wait()
	for g := 0; g < hammers; g++ {
		if errs[g] != nil {
			t.Fatal(errs[g])
		}
		for key, want := range ref {
			cellsEqual(t, key, cells[g][key], want)
		}
	}

	m := pooled.Metrics()
	if m.PoolRuns == 0 {
		t.Error("pooled suite reported zero PoolRuns")
	}
	if m.PoolReuses == 0 {
		t.Error("pooled suite never reused a machine")
	}
	if serial.Metrics().PoolRuns != 0 {
		t.Error("unpooled suite reported pool traffic")
	}
}

// TestPooledFigureMatchesSerial regenerates a figure through pooled
// workers and asserts the rendered text is byte-identical to the serial
// unpooled rendering.
func TestPooledFigureMatchesSerial(t *testing.T) {
	if testing.Short() || raceEnabled {
		t.Skip("whole-grid regeneration is too slow here; cell identity is covered above")
	}
	serial := quickSuite(t, arch.Default())
	want, err := Figure6(context.Background(), serial)
	if err != nil {
		t.Fatal(err)
	}
	pooled := NewSuite(arch.Default(),
		WithSimOptions(serial.SimOptions), WithMachinePool(0))
	got, err := Figure6(context.Background(), pooled)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("pooled Figure 6 rendering diverges from serial:\n got:\n%s\nwant:\n%s", got, want)
	}
}

// TestPooledChaosSmoke pushes seeded timing faults through pooled
// machines: injection must actually fire, recycled machines must not leak
// fault state between cells, and the paper's guarantee — zero coherence
// violations for MDC and DDGT schedules — must hold.
func TestPooledChaosSmoke(t *testing.T) {
	opts := poolTestOpts()
	opts.CheckCoherence = true
	opts.NewFaults = fault.Seeded(7, fault.DefaultConfig())

	s := NewSuite(arch.Default(), WithSimOptions(opts), WithParallelism(2), WithMachinePool(2))
	var total sim.Stats
	for _, b := range poolTestBenches([]string{"epicdec", "gsmenc", "pgpdec"}) {
		for _, v := range []Variant{MDCPrefClus, DDGTPrefClus} {
			c, err := s.CellContext(context.Background(), b, v)
			if err != nil {
				t.Fatal(err)
			}
			if c.Total.Violations != 0 {
				t.Errorf("%s/%s: %d coherence violations through pooled machines",
					b, v, c.Total.Violations)
			}
			total.Add(&c.Total)
		}
	}
	if total.InjectedFaults == 0 {
		t.Error("chaos smoke injected no faults")
	}
	if runs, reuses := s.Metrics().PoolRuns, s.Metrics().PoolReuses; runs == 0 || reuses == 0 {
		t.Errorf("pool not exercised: %d runs, %d reuses", runs, reuses)
	}
}
