package experiments

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"vliwcache/internal/engine"
	"vliwcache/internal/ir"
)

// CellFailure records why one (benchmark, variant) grid cell could not be
// computed in degraded mode.
type CellFailure struct {
	Bench   string
	Variant Variant
	// Reason is the short annotation renderers print: "panic", "timeout",
	// "canceled", a pipeline stage name, or "error".
	Reason string
	Err    error
}

// failureReason classifies an error into the short n/a annotation.
func failureReason(err error) string {
	var pe *engine.PanicError
	if errors.As(err, &pe) {
		return "panic"
	}
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return "timeout"
	case errors.Is(err, context.Canceled):
		return "canceled"
	}
	var ple *PipelineError
	if errors.As(err, &ple) {
		return ple.Stage
	}
	return "error"
}

// recordFailure stores (or returns the already-stored) failure for a cell.
func (s *Suite) recordFailure(bench string, v Variant, err error) *CellFailure {
	key := bench + "/" + v.String()
	s.failMu.Lock()
	if f, ok := s.failures[key]; ok {
		s.failMu.Unlock()
		return f
	}
	if s.failures == nil {
		s.failures = make(map[string]*CellFailure)
	}
	f := &CellFailure{Bench: bench, Variant: v, Reason: failureReason(err), Err: err}
	s.failures[key] = f
	hook := s.failHook
	s.failMu.Unlock()
	if hook != nil {
		hook(f)
	}
	return f
}

// failure returns the recorded failure for a cell, or nil.
func (s *Suite) failure(bench string, v Variant) *CellFailure {
	s.failMu.Lock()
	defer s.failMu.Unlock()
	return s.failures[bench+"/"+v.String()]
}

// Failures lists the cells that failed, sorted by benchmark then variant.
// Empty means every requested cell computed cleanly.
func (s *Suite) Failures() []*CellFailure {
	s.failMu.Lock()
	fs := make([]*CellFailure, 0, len(s.failures))
	for _, f := range s.failures {
		fs = append(fs, f)
	}
	s.failMu.Unlock()
	sort.Slice(fs, func(i, j int) bool {
		if fs[i].Bench != fs[j].Bench {
			return fs[i].Bench < fs[j].Bench
		}
		return fs[i].Variant.String() < fs[j].Variant.String()
	})
	return fs
}

// Degraded reports whether the suite runs in degraded mode and has
// recorded at least one cell failure.
func (s *Suite) Degraded() bool {
	s.failMu.Lock()
	defer s.failMu.Unlock()
	return s.degraded && len(s.failures) > 0
}

// firstFailure returns the first non-nil failure among fs, if any.
func firstFailure(fs ...*CellFailure) *CellFailure {
	for _, f := range fs {
		if f != nil {
			return f
		}
	}
	return nil
}

// naCell renders the annotation printed in place of a failed cell's data.
func naCell(f *CellFailure) string { return "n/a(" + f.Reason + ")" }

// cyclesOrNA renders a cell's cycle count, or its failure annotation.
func cyclesOrNA(c *Cell, f *CellFailure) string {
	if f != nil {
		return naCell(f)
	}
	return fmt.Sprintf("%d", c.Total.Cycles())
}

// cellDegraded fetches one cell with degraded-mode semantics. Outside
// degraded mode it behaves like CellContext (cell or error). In degraded mode
// a failed cell comes back as a *CellFailure instead of an error, and a
// cell that already failed is not recomputed (the engine evicts failed
// flights, so retrying a panicking or timing-out cell would pay its full
// cost again on every render).
func (s *Suite) cellDegraded(ctx context.Context, bench string, v Variant) (*Cell, *CellFailure, error) {
	if s.degraded {
		if f := s.failure(bench, v); f != nil {
			return nil, f, nil
		}
	}
	c, err := s.CellContext(ctx, bench, v)
	if err == nil {
		return c, nil, nil
	}
	if !s.degraded {
		return nil, nil, err
	}
	return nil, s.recordFailure(bench, v, err), nil
}

// loopDegraded runs one standalone loop through the suite engine — so the
// cell timeout, retry envelope and degraded-mode accounting all apply —
// recording any failure under the given pseudo-benchmark name. Case
// studies like EpicLoop use it to get cellDegraded semantics for runs
// that are not part of the benchmark × variant grid.
func (s *Suite) loopDegraded(ctx context.Context, name string, loop *ir.Loop, v Variant) (*LoopRun, *CellFailure, error) {
	if s.degraded {
		if f := s.failure(name, v); f != nil {
			return nil, f, nil
		}
	}
	key := name + "/" + loop.Name + "/" + v.String()
	val, err := s.engine().Do(ctx, key, func(ctx context.Context) (any, error) {
		return s.runLoop(ctx, loop, s.Base, v, s.simOpts(), name)
	})
	if err == nil {
		return val.(*LoopRun), nil, nil
	}
	if !s.degraded {
		return nil, nil, err
	}
	return nil, s.recordFailure(name, v, err), nil
}
