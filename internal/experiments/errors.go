package experiments

import (
	"fmt"

	"vliwcache/internal/mediabench"
	"vliwcache/internal/sched"
)

// Sentinel errors re-exposed where experiment callers look for them.
var (
	// ErrUnknownBenchmark reports a benchmark name outside the suite.
	ErrUnknownBenchmark = mediabench.ErrUnknownBenchmark
	// ErrInfeasibleSchedule reports that a loop does not fit within the
	// scheduler's II budget.
	ErrInfeasibleSchedule = sched.ErrInfeasible
)

// PipelineError locates a failure inside the experiment grid: which
// benchmark, loop and variant were being run and which pipeline stage
// (prepare, profile, schedule, simulate) failed. It wraps the underlying
// error, so errors.Is/errors.As see through it.
type PipelineError struct {
	Bench   string // benchmark name; empty for standalone loop runs
	Loop    string // loop name
	Variant Variant
	Stage   string // "prepare", "profile", "schedule" or "simulate"
	Err     error
}

func (e *PipelineError) Error() string {
	where := e.Loop
	if e.Bench != "" {
		where = e.Bench + "/" + e.Loop
	}
	return fmt.Sprintf("experiments: %s %s: stage %s: %v", where, e.Variant, e.Stage, e.Err)
}

func (e *PipelineError) Unwrap() error { return e.Err }
