package experiments

import (
	"context"
	"testing"

	"vliwcache/internal/arch"
)

// TestFastPathCellsMatchSlow runs a small grid with the steady-state
// fast path on (pooled, so FastPathStats aggregate) and asserts every
// cell is identical to the plain serial run, and that the fast-path
// counters actually surface through Metrics.
func TestFastPathCellsMatchSlow(t *testing.T) {
	benches := poolTestBenches([]string{"epicdec", "gsmenc"})
	variants := []Variant{MDCPrefClus, DDGTMinComs}

	serial := NewSuite(arch.Default(), WithSimOptions(poolTestOpts()), WithParallelism(1))
	fast := NewSuite(arch.Default(),
		WithSimOptions(poolTestOpts()), WithParallelism(1),
		WithMachinePool(1), WithFastPath())

	for _, b := range benches {
		for _, v := range variants {
			want, err := serial.CellContext(context.Background(), b, v)
			if err != nil {
				t.Fatal(err)
			}
			got, err := fast.CellContext(context.Background(), b, v)
			if err != nil {
				t.Fatal(err)
			}
			cellsEqual(t, b+"/"+v.String(), got, want)
		}
	}

	m := fast.Metrics()
	if m.FastPathRuns+m.FastPathFallbacks == 0 {
		t.Error("fast-path suite ran but Metrics shows no eligible runs and no fallbacks")
	}
	if got := serial.Metrics(); got.FastPathRuns != 0 || got.FastPathFallbacks != 0 {
		t.Errorf("slow suite reports fast-path traffic: %d eligible, %d fallbacks",
			got.FastPathRuns, got.FastPathFallbacks)
	}
}
