package experiments

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"vliwcache/internal/arch"
	"vliwcache/internal/sim"
)

var degradedSimOpts = sim.Options{MaxIterations: 60, MaxEntries: 1}

// panicTracer panics while the given cell's prepare stage reports — i.e.
// inside the pipeline, on a worker goroutine — standing in for a diverging
// pipeline stage.
func panicTracer(bench string, v Variant) func(TraceEvent) {
	return func(ev TraceEvent) {
		if ev.Bench == bench && ev.Variant == v && ev.Stage == "prepare" {
			panic("injected: cell diverged")
		}
	}
}

func TestDegradedRendersNAForPanickedCell(t *testing.T) {
	var (
		mu     sync.Mutex
		hooked []*CellFailure
	)
	s := NewSuite(arch.Default(),
		WithSimOptions(degradedSimOpts),
		WithDegraded(),
		WithTracer(panicTracer("epicdec", MDCPrefClus)),
		WithFailureHook(func(f *CellFailure) {
			mu.Lock()
			hooked = append(hooked, f)
			mu.Unlock()
		}))

	out, err := Figure6(context.Background(), s)
	if err != nil {
		t.Fatalf("degraded Figure6 must not fail: %v", err)
	}
	if !strings.Contains(out, "n/a(panic)") {
		t.Errorf("missing n/a(panic) annotation:\n%s", out)
	}
	if !strings.Contains(out, "AMEAN") {
		t.Errorf("AMEAN row must still render:\n%s", out)
	}
	if !s.Degraded() {
		t.Error("Degraded() must report true after a failure")
	}
	fs := s.Failures()
	if len(fs) != 1 {
		t.Fatalf("Failures() = %d entries, want 1: %v", len(fs), fs)
	}
	if fs[0].Bench != "epicdec" || fs[0].Variant != MDCPrefClus || fs[0].Reason != "panic" {
		t.Errorf("failure = %+v, want epicdec/MDC(PrefClus)/panic", fs[0])
	}
	mu.Lock()
	defer mu.Unlock()
	if len(hooked) != 1 || hooked[0] != fs[0] {
		t.Errorf("failure hook saw %v, want the recorded failure once", hooked)
	}

	// The annotated cell must stay failed on a second render (no silent
	// recompute), and the output must be stable.
	out2, err := Figure6(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if out2 != out {
		t.Error("degraded render is not stable across calls")
	}
}

func TestNonDegradedPanicIsFatal(t *testing.T) {
	s := NewSuite(arch.Default(),
		WithSimOptions(degradedSimOpts),
		WithTracer(panicTracer("epicdec", MDCPrefClus)))
	if _, err := Figure6(context.Background(), s); err == nil {
		t.Fatal("without WithDegraded a panicking cell must fail the figure")
	}
}

func TestDegradedCleanOutputByteIdentical(t *testing.T) {
	plain := NewSuite(arch.Default(), WithSimOptions(degradedSimOpts))
	deg := NewSuite(arch.Default(), WithSimOptions(degradedSimOpts), WithDegraded())

	a, err := Figure6(context.Background(), plain)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Figure6(context.Background(), deg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("degraded mode with zero failures must be byte-identical to normal mode")
	}
	if deg.Degraded() {
		t.Error("Degraded() must be false with zero failures")
	}
}

// When every cell fails (a 1ns cell timeout kills them all), the
// renderers must produce n/a rows and n/a aggregates — never NaN or
// garbage numbers from empty totals — and every failure must reach the
// hook so paperbench can exit 1 (degraded) instead of 2 (fatal).
func TestAllCellsFailNoGarbageAggregates(t *testing.T) {
	var (
		mu     sync.Mutex
		hooked []*CellFailure
	)
	allFail := []Option{
		WithSimOptions(degradedSimOpts),
		WithDegraded(),
		WithCellTimeout(time.Nanosecond),
		WithFailureHook(func(f *CellFailure) {
			mu.Lock()
			hooked = append(hooked, f)
			mu.Unlock()
		}),
	}
	ctx := context.Background()

	s := NewSuite(arch.Default(), allFail...)
	fig7, err := Figure7(ctx, s)
	if err != nil {
		t.Fatalf("all-fail Figure7 must degrade, not fail: %v", err)
	}
	if strings.Contains(fig7, "NaN") {
		t.Errorf("Figure7 leaked NaN:\n%s", fig7)
	}
	if !strings.Contains(fig7, "AMEAN") || !strings.Contains(fig7, "n/a") {
		t.Errorf("Figure7 must render n/a aggregates:\n%s", fig7)
	}

	hy, err := Hybrid(ctx, degradedSimOpts, allFail...)
	if err != nil {
		t.Fatalf("all-fail Hybrid must degrade, not fail: %v", err)
	}
	if strings.Contains(hy, "NaN") {
		t.Errorf("Hybrid leaked NaN:\n%s", hy)
	}
	// The totals line divides by the hybrid total, which is zero here.
	if !strings.Contains(hy, "n/a over always-MDC") {
		t.Errorf("Hybrid totals must render n/a, got:\n%s", hy)
	}

	ep, err := EpicLoop(ctx, degradedSimOpts, allFail...)
	if err != nil {
		t.Fatalf("all-fail EpicLoop must degrade, not fail: %v", err)
	}
	if strings.Contains(ep, "NaN") {
		t.Errorf("EpicLoop leaked NaN:\n%s", ep)
	}
	if !strings.Contains(ep, "n/a(timeout)") {
		t.Errorf("EpicLoop must render n/a rows:\n%s", ep)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(hooked) == 0 {
		t.Error("no failures reached the hook; paperbench could not exit 1")
	}
}

func TestDegradedCellTimeout(t *testing.T) {
	s := NewSuite(arch.Default(),
		WithSimOptions(degradedSimOpts),
		WithDegraded(),
		WithCellTimeout(time.Nanosecond))
	out, err := Figure6(context.Background(), s)
	if err != nil {
		t.Fatalf("degraded Figure6 must not fail: %v", err)
	}
	if !strings.Contains(out, "n/a(timeout)") {
		t.Errorf("missing n/a(timeout) annotation:\n%s", out)
	}
	if len(s.Failures()) == 0 {
		t.Error("timeouts must be recorded as failures")
	}
}
