package experiments

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"vliwcache/internal/arch"
	"vliwcache/internal/sim"
)

var degradedSimOpts = sim.Options{MaxIterations: 60, MaxEntries: 1}

// panicTracer panics while the given cell's prepare stage reports — i.e.
// inside the pipeline, on a worker goroutine — standing in for a diverging
// pipeline stage.
func panicTracer(bench string, v Variant) func(TraceEvent) {
	return func(ev TraceEvent) {
		if ev.Bench == bench && ev.Variant == v && ev.Stage == "prepare" {
			panic("injected: cell diverged")
		}
	}
}

func TestDegradedRendersNAForPanickedCell(t *testing.T) {
	var (
		mu     sync.Mutex
		hooked []*CellFailure
	)
	s := NewSuite(arch.Default(),
		WithSimOptions(degradedSimOpts),
		WithDegraded(),
		WithTracer(panicTracer("epicdec", MDCPrefClus)),
		WithFailureHook(func(f *CellFailure) {
			mu.Lock()
			hooked = append(hooked, f)
			mu.Unlock()
		}))

	out, err := Figure6(context.Background(), s)
	if err != nil {
		t.Fatalf("degraded Figure6 must not fail: %v", err)
	}
	if !strings.Contains(out, "n/a(panic)") {
		t.Errorf("missing n/a(panic) annotation:\n%s", out)
	}
	if !strings.Contains(out, "AMEAN") {
		t.Errorf("AMEAN row must still render:\n%s", out)
	}
	if !s.Degraded() {
		t.Error("Degraded() must report true after a failure")
	}
	fs := s.Failures()
	if len(fs) != 1 {
		t.Fatalf("Failures() = %d entries, want 1: %v", len(fs), fs)
	}
	if fs[0].Bench != "epicdec" || fs[0].Variant != MDCPrefClus || fs[0].Reason != "panic" {
		t.Errorf("failure = %+v, want epicdec/MDC(PrefClus)/panic", fs[0])
	}
	mu.Lock()
	defer mu.Unlock()
	if len(hooked) != 1 || hooked[0] != fs[0] {
		t.Errorf("failure hook saw %v, want the recorded failure once", hooked)
	}

	// The annotated cell must stay failed on a second render (no silent
	// recompute), and the output must be stable.
	out2, err := Figure6(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if out2 != out {
		t.Error("degraded render is not stable across calls")
	}
}

func TestNonDegradedPanicIsFatal(t *testing.T) {
	s := NewSuite(arch.Default(),
		WithSimOptions(degradedSimOpts),
		WithTracer(panicTracer("epicdec", MDCPrefClus)))
	if _, err := Figure6(context.Background(), s); err == nil {
		t.Fatal("without WithDegraded a panicking cell must fail the figure")
	}
}

func TestDegradedCleanOutputByteIdentical(t *testing.T) {
	plain := NewSuite(arch.Default(), WithSimOptions(degradedSimOpts))
	deg := NewSuite(arch.Default(), WithSimOptions(degradedSimOpts), WithDegraded())

	a, err := Figure6(context.Background(), plain)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Figure6(context.Background(), deg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("degraded mode with zero failures must be byte-identical to normal mode")
	}
	if deg.Degraded() {
		t.Error("Degraded() must be false with zero failures")
	}
}

func TestDegradedCellTimeout(t *testing.T) {
	s := NewSuite(arch.Default(),
		WithSimOptions(degradedSimOpts),
		WithDegraded(),
		WithCellTimeout(time.Nanosecond))
	out, err := Figure6(context.Background(), s)
	if err != nil {
		t.Fatalf("degraded Figure6 must not fail: %v", err)
	}
	if !strings.Contains(out, "n/a(timeout)") {
		t.Errorf("missing n/a(timeout) annotation:\n%s", out)
	}
	if len(s.Failures()) == 0 {
		t.Error("timeouts must be recorded as failures")
	}
}
