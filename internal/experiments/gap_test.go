package experiments

import (
	"bytes"
	"context"
	"testing"

	"vliwcache/internal/arch"
	"vliwcache/internal/mediabench"
	"vliwcache/internal/report"
)

func TestGapReportSingleBenchmark(t *testing.T) {
	b, err := mediabench.Get("rasta")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := GapReport(context.Background(), arch.Default(), []*mediabench.Benchmark{b}, GapOptions{NodeBudget: 50_000})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(b.Loops) {
		t.Fatalf("got %d rows, want %d", len(rows), len(b.Loops))
	}
	for _, r := range rows {
		if r.LowerBound < 1 {
			t.Errorf("%s/%s: lower bound %d", r.Bench, r.Loop, r.LowerBound)
		}
		if r.Status != report.GapClosed && r.Status != report.GapBoundOnly {
			t.Errorf("%s/%s: status %q", r.Bench, r.Loop, r.Status)
		}
		if r.Status == report.GapClosed {
			if r.OracleII != r.LowerBound {
				t.Errorf("%s/%s: closed but II %d != bound %d", r.Bench, r.Loop, r.OracleII, r.LowerBound)
			}
			// Optimality: no heuristic may beat a closed oracle.
			for _, h := range r.Heuristics {
				if h.II > 0 && h.II < r.OracleII {
					t.Errorf("%s/%s: heuristic %s II %d beats closed oracle II %d",
						r.Bench, r.Loop, h.Name, h.II, r.OracleII)
				}
			}
		}
		if len(r.Heuristics) != 5 {
			t.Errorf("%s/%s: %d heuristics, want 5", r.Bench, r.Loop, len(r.Heuristics))
		}
	}

	// The writers must accept what the experiment produces.
	var jsonBuf, csvBuf bytes.Buffer
	if err := report.WriteGapJSON(&jsonBuf, rows); err != nil {
		t.Fatalf("WriteGapJSON: %v", err)
	}
	if err := report.WriteGapCSV(&csvBuf, rows); err != nil {
		t.Fatalf("WriteGapCSV: %v", err)
	}

	// Determinism: a second computation yields byte-identical exports.
	rows2, err := GapReport(context.Background(), arch.Default(), []*mediabench.Benchmark{b}, GapOptions{NodeBudget: 50_000})
	if err != nil {
		t.Fatal(err)
	}
	var jsonBuf2 bytes.Buffer
	if err := report.WriteGapJSON(&jsonBuf2, rows2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(jsonBuf.Bytes(), jsonBuf2.Bytes()) {
		t.Error("gap report is not deterministic")
	}
}
