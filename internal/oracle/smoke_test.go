package oracle

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"vliwcache/internal/arch"
	"vliwcache/internal/core"
	"vliwcache/internal/mediabench"
	"vliwcache/internal/sched"
)

var update = flag.Bool("update", false, "rewrite the oracle-smoke golden output")

// smokeBudget caps the real-benchmark search so the smoke stays fast and
// deterministically lands in bound-only territory.
const smokeBudget = 10_000

// TestOracleSmoke is `make oracle-smoke`: the three hand-built loops
// with proven optimal IIs must close exactly, and one budget-capped real
// benchmark loop must degrade to a deterministic bound-only result. The
// rendered outcome — including node counts, which the deterministic DFS
// fixes — is diffed against the committed golden.
func TestOracleSmoke(t *testing.T) {
	cfg := arch.Default()
	var buf bytes.Buffer

	for _, tc := range knownOptimal {
		plan := planFor(t, tc.build(), tc.policy, cfg)
		res, err := Solve(context.Background(), plan, Options{Arch: cfg})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !res.Closed || res.II != tc.wantII {
			t.Fatalf("%s: II=%d closed=%t, want closed at %d", tc.name, res.II, res.Closed, tc.wantII)
		}
		if err := sched.Validate(res.Schedule); err != nil {
			t.Fatalf("%s: invalid schedule: %v", tc.name, err)
		}
		fmt.Fprintf(&buf, "%s: lb=%d ii=%d closed nodes=%d\n", tc.name, res.LowerBound, res.II, res.Nodes)
	}

	// One real Mediabench loop under a tight budget: large enough that the
	// oracle cannot close it, so the smoke pins the degraded path too.
	b, err := mediabench.Get("rasta")
	if err != nil {
		t.Fatal(err)
	}
	loop := b.Loops[0]
	bcfg := cfg.WithInterleave(b.Interleave)
	plan, err := core.Prepare(loop, core.PolicyMDC, bcfg.NumClusters)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(context.Background(), plan, Options{Arch: bcfg, NodeBudget: smokeBudget})
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("rasta/%s: err=%v (II=%d), want budget exhaustion", loop.Name, err, res.II)
	}
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("err %v is not a *BudgetError", err)
	}
	fmt.Fprintf(&buf, "rasta/%s/MDC: lb=%d bound-only(budget) nodes=%d\n", loop.Name, be.Bound, be.Nodes)

	golden := filepath.Join("testdata", "smoke.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (refresh with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("oracle smoke output diverged from golden.\ngot:\n%swant:\n%s", buf.Bytes(), want)
	}
}
