// Package oracle implements an exact branch-and-bound modulo scheduler
// for small loops. It searches cluster assignment and slot placement
// jointly over the modulo reservation table (per-cluster functional units
// plus the shared register buses, with cross-cluster register flow paying
// the bus latency), pruning with the admissible lower bound
// max(ResMII, RecMII). A node budget and context cancellation make it
// degrade to "bound only" instead of hanging on loops beyond its reach.
//
// The oracle prices memory latencies through the same cache-sensitive
// assignment as the heuristic schedulers (sched.AssignLatencies), so its
// initiation intervals are directly comparable, and every schedule it
// emits passes sched.Validate.
//
// Exactness contract: Closed is true only when the oracle finds a
// schedule whose II equals the admissible lower bound — such a schedule
// is provably optimal in II. A best schedule found at a higher II is an
// upper bound only: the slot windows are searched exhaustively but copy
// routing is greedy earliest-fit (a failed search at some II therefore
// does not prove that II infeasible, and the oracle never claims it
// does).
package oracle

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"vliwcache/internal/arch"
	"vliwcache/internal/core"
	"vliwcache/internal/ddg"
	"vliwcache/internal/ir"
	"vliwcache/internal/sched"
)

// ErrBudget reports that the search exhausted its node budget before
// closing the instance. Errors carrying the best bound wrap it (see
// BudgetError), so callers test with errors.Is.
var ErrBudget = errors.New("oracle: node budget exhausted")

// BudgetError is the typed budget-exhaustion error: the search stopped
// after Nodes placement attempts with the admissible lower bound Bound
// still open. It wraps ErrBudget.
type BudgetError struct {
	// Bound is the admissible lower bound on II at the time the budget
	// ran out (max of ResMII and RecMII — never invalidated by more
	// search).
	Bound int
	// Nodes is the number of placement attempts expended.
	Nodes int64
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("oracle: node budget exhausted after %d nodes (lower bound II >= %d)", e.Nodes, e.Bound)
}

func (e *BudgetError) Unwrap() error { return ErrBudget }

// DefaultNodeBudget bounds the search when Options.NodeBudget is zero.
// It is sized so the hand-built known-optimal loops close in well under a
// second while full media benchmark loops hit the budget and report
// bound-only instead of stalling a suite run.
const DefaultNodeBudget = 400_000

// Options configure an exact solve.
type Options struct {
	Arch arch.Config

	// MaxII caps the II escalation. Zero means LowerBound+7: the oracle
	// exists to close instances at the bound; scanning far above it only
	// burns budget that later IIs cannot repay.
	MaxII int

	// NodeBudget caps the total number of placement attempts across all
	// candidate IIs (default DefaultNodeBudget). The budget is the knob
	// between "exact" and "bound only".
	NodeBudget int64
}

// Result is the outcome of a solve.
type Result struct {
	// Schedule is the best schedule found, or nil when the search found
	// none before the budget or II cap.
	Schedule *sched.Schedule
	// II is Schedule's initiation interval (0 when Schedule is nil).
	II int
	// LowerBound is the admissible bound max(ResMII, RecMII): no schedule
	// of this loop on this machine has a smaller II.
	LowerBound int
	// Closed reports that II == LowerBound: Schedule is provably optimal
	// in initiation interval.
	Closed bool
	// Nodes is the number of placement attempts expended.
	Nodes int64
}

// Solve runs the exact search on a planned loop. On budget exhaustion it
// returns a *BudgetError (wrapping ErrBudget) carrying the best bound; the
// Result is still returned alongside so callers can use a non-optimal
// schedule found before the budget ran out.
func Solve(ctx context.Context, plan *core.Plan, opts Options) (*Result, error) {
	if opts.NodeBudget == 0 {
		opts.NodeBudget = DefaultNodeBudget
	}
	if err := sched.Precheck(plan, opts.Arch); err != nil {
		return nil, err
	}
	lb, err := sched.MII(plan, opts.Arch)
	if err != nil {
		return nil, fmt.Errorf("oracle: loop %q: %w", plan.Loop.Name, err)
	}
	maxII := opts.MaxII
	if maxII == 0 {
		maxII = lb + 7
	}

	res := &Result{LowerBound: lb}
	for ii := lb; ii <= maxII; ii++ {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		lat, ok := sched.AssignLatencies(plan, opts.Arch, ii)
		if !ok {
			continue
		}
		s, err := newSearcher(ctx, plan, opts.Arch, ii, lat, opts.NodeBudget-res.Nodes)
		if err != nil {
			continue // ii infeasible by recurrence analysis
		}
		found := s.solve()
		res.Nodes += s.nodes
		if found {
			sc := s.emit()
			if err := sched.Validate(sc); err != nil {
				return nil, fmt.Errorf("oracle: internal error: emitted invalid schedule: %w", err)
			}
			res.Schedule, res.II, res.Closed = sc, ii, ii == lb
			return res, nil
		}
		if s.err != nil {
			if errors.Is(s.err, ErrBudget) {
				return res, &BudgetError{Bound: lb, Nodes: res.Nodes}
			}
			return res, s.err // context cancellation
		}
	}
	return res, fmt.Errorf("oracle: %w: loop %q not closed within II <= %d", sched.ErrInfeasible, plan.Loop.Name, maxII)
}

// searcher is the depth-first search state at one fixed II.
type searcher struct {
	ctx  context.Context
	plan *core.Plan
	cfg  arch.Config
	ii   int
	lat  []int

	order []int // op IDs in placement order (height desc, ID asc)
	asap  []int

	cycle, cluster []int
	chainCluster   []int
	usage          []int // ops per cluster (for the symmetry break)

	// fu[cluster][class][slot] counts reserved units.
	fu  [][][]int
	bus [][]int // bus[b][slot] = producer op ID or -1

	copies map[copyKey]*transfer

	symmetric bool // clusters interchangeable: symmetry break allowed

	budget int64
	nodes  int64
	err    error // ErrBudget or ctx.Err() when the search stopped early
}

type copyKey struct{ producer, toCluster int }

// transfer is one reserved inter-cluster value transfer, with enough
// bookkeeping to undo user additions on backtrack.
type transfer struct {
	start, bus int
	users      []int
}

func newSearcher(ctx context.Context, plan *core.Plan, cfg arch.Config, ii int, lat []int, budget int64) (*searcher, error) {
	s := &searcher{
		ctx:    ctx,
		plan:   plan,
		cfg:    cfg,
		ii:     ii,
		lat:    lat,
		copies: make(map[copyKey]*transfer),
		budget: budget,
	}
	lf := func(o *ir.Op) int { return lat[o.ID] }
	asap, ok := plan.Graph.ASAP(ii, lf)
	if !ok {
		return nil, fmt.Errorf("oracle: II %d infeasible", ii)
	}
	s.asap = asap
	heights, ok := plan.Graph.Heights(ii, lf)
	if !ok {
		return nil, fmt.Errorf("oracle: II %d infeasible", ii)
	}
	n := len(plan.Loop.Ops)
	s.order = make([]int, n)
	for i := range s.order {
		s.order[i] = i
	}
	sort.SliceStable(s.order, func(a, b int) bool {
		if heights[s.order[a]] != heights[s.order[b]] {
			return heights[s.order[a]] > heights[s.order[b]]
		}
		return s.order[a] < s.order[b]
	})

	s.cycle = make([]int, n)
	s.cluster = make([]int, n)
	for i := range s.cycle {
		s.cycle[i], s.cluster[i] = -1, -1
	}
	s.chainCluster = make([]int, len(plan.Chains))
	for i := range s.chainCluster {
		s.chainCluster[i] = -1
	}
	s.usage = make([]int, cfg.NumClusters)
	s.fu = make([][][]int, cfg.NumClusters)
	for c := range s.fu {
		s.fu[c] = make([][]int, 3)
		for k := range s.fu[c] {
			s.fu[c][k] = make([]int, ii)
		}
	}
	s.bus = make([][]int, cfg.RegBuses)
	for b := range s.bus {
		s.bus[b] = make([]int, ii)
		for t := range s.bus[b] {
			s.bus[b][t] = -1
		}
	}
	// Clusters are interchangeable only when nothing pins an op to a
	// specific physical cluster. (Profiles do not reach the oracle: it
	// searches all assignments, so preferred clusters are irrelevant.)
	s.symmetric = len(plan.ForceCluster) == 0 && len(plan.ReplicaGroups) == 0
	return s, nil
}

// solve runs the DFS. It returns true when every op is placed; false when
// the (window-bounded) search space is exhausted or the budget/context
// stopped it (then s.err is set).
func (s *searcher) solve() bool {
	return s.place(0)
}

func (s *searcher) place(k int) bool {
	if k == len(s.order) {
		return true
	}
	u := s.order[k]
	op := s.plan.Loop.Ops[u]

	for _, c := range s.allowedClusters(u) {
		lo, hi, ok := s.window(u, c)
		if !ok {
			continue
		}
		for t := lo; t <= hi; t++ {
			s.nodes++
			if s.nodes > s.budget {
				s.err = ErrBudget
				return false
			}
			if s.nodes%4096 == 0 {
				if err := s.ctx.Err(); err != nil {
					s.err = err
					return false
				}
			}
			if !s.fuFree(c, op.Kind.UnitClass(), t) {
				continue
			}
			undo, ok := s.reserve(u, c, t)
			if !ok {
				continue
			}
			if s.place(k + 1) {
				return true
			}
			undo()
			if s.err != nil {
				return false
			}
		}
	}
	return false
}

// allowedClusters returns the clusters op u may be assigned to, in
// ascending order: the pinned cluster for DDGT replicas, the chain's
// cluster when another member is already placed (MDC), otherwise all
// clusters — truncated, when the machine is symmetric, to the used ones
// plus the single lowest-numbered empty cluster (opening any other empty
// cluster yields a schedule identical up to cluster renaming).
func (s *searcher) allowedClusters(u int) []int {
	if c, ok := s.plan.ForceCluster[u]; ok {
		return []int{c}
	}
	if ci, ok := s.plan.ChainOf[u]; ok && s.chainCluster[ci] >= 0 {
		return []int{s.chainCluster[ci]}
	}
	n := s.cfg.NumClusters
	if s.symmetric {
		used := 0
		for c, cnt := range s.usage {
			if cnt > 0 {
				used = c + 1
			}
		}
		if used < n {
			n = used + 1
		}
	}
	cs := make([]int, n)
	for i := range cs {
		cs[i] = i
	}
	return cs
}

// window computes the feasible cycle range for op u in cluster c from its
// already-placed neighbors: predecessors bound it below (cross-cluster
// register flow adds the bus latency), successors bound it above. The
// range is clipped to II consecutive cycles — more would only revisit the
// same modulo slots at longer flat cycles.
func (s *searcher) window(u, c int) (lo, hi int, ok bool) {
	lo = s.asap[u]
	hi = 1<<31 - 1
	bl := s.cfg.RegBusLatency
	ops := s.plan.Loop.Ops
	lf := func(o *ir.Op) int { return s.lat[o.ID] }
	for _, e := range s.plan.Graph.In(u) {
		if e.From == u || s.cycle[e.From] < 0 {
			continue
		}
		w := ddg.EdgeLatency(e, ops, lf)
		if e.Kind == ddg.RF && s.cluster[e.From] != c {
			w += bl
		}
		if b := s.cycle[e.From] + w - s.ii*e.Dist; b > lo {
			lo = b
		}
	}
	for _, e := range s.plan.Graph.Out(u) {
		if e.To == u || s.cycle[e.To] < 0 {
			continue
		}
		w := ddg.EdgeLatency(e, ops, lf)
		if e.Kind == ddg.RF && s.cluster[e.To] != c {
			w += bl
		}
		if b := s.cycle[e.To] - w + s.ii*e.Dist; b < hi {
			hi = b
		}
	}
	if cap := lo + s.ii - 1; cap < hi {
		hi = cap
	}
	return lo, hi, lo <= hi
}

// reserve commits op u at (cluster c, cycle t): functional unit, chain
// cluster, and the inter-cluster transfers its placed neighbors need.
// Copy routing is greedy earliest-fit (see the package comment); on any
// routing failure nothing is left reserved and ok is false. The returned
// undo unwinds the whole placement.
func (s *searcher) reserve(u, c, t int) (undo func(), ok bool) {
	type freshCopy struct {
		key copyKey
		tr  *transfer
	}
	var fresh []freshCopy
	var reused []copyKey
	bl := s.cfg.RegBusLatency

	unwindCopies := func() {
		for _, k := range reused {
			tr := s.copies[k]
			tr.users = tr.users[:len(tr.users)-1]
		}
		for _, f := range fresh {
			s.busRelease(f.tr.bus, f.tr.start)
			delete(s.copies, f.key)
		}
	}

	route := func(key copyKey, ready, deadline, user int) bool {
		if tr, ok := s.copies[key]; ok {
			if tr.start >= ready && tr.start <= deadline {
				tr.users = append(tr.users, user)
				reused = append(reused, key)
				return true
			}
			return false
		}
		start, bus, ok := s.findBus(ready, deadline)
		if !ok {
			return false
		}
		tr := &transfer{start: start, bus: bus, users: []int{user}}
		s.busReserve(key.producer, bus, start)
		s.copies[key] = tr
		fresh = append(fresh, freshCopy{key, tr})
		return true
	}

	// Inbound: values produced in other clusters that u consumes.
	for _, e := range s.plan.Graph.In(u) {
		if e.Kind != ddg.RF || e.From == u || s.cycle[e.From] < 0 || s.cluster[e.From] == c {
			continue
		}
		p := e.From
		if !route(copyKey{p, c}, s.cycle[p]+s.lat[p], t+s.ii*e.Dist-bl, u) {
			unwindCopies()
			return nil, false
		}
	}
	// Outbound: u's value to clusters holding placed consumers.
	for _, e := range s.plan.Graph.Out(u) {
		if e.Kind != ddg.RF || e.To == u || s.cycle[e.To] < 0 || s.cluster[e.To] == c {
			continue
		}
		if !route(copyKey{u, s.cluster[e.To]}, t+s.lat[u], s.cycle[e.To]+s.ii*e.Dist-bl, e.To) {
			unwindCopies()
			return nil, false
		}
	}

	cls := classIndex(s.plan.Loop.Ops[u].Kind.UnitClass())
	s.fu[c][cls][s.slot(t)]++
	s.cycle[u], s.cluster[u] = t, c
	s.usage[c]++
	chainSet := false
	if ci, ok := s.plan.ChainOf[u]; ok && s.chainCluster[ci] < 0 {
		s.chainCluster[ci] = c
		chainSet = true
	}
	return func() {
		if chainSet {
			ci := s.plan.ChainOf[u]
			s.chainCluster[ci] = -1
		}
		s.usage[c]--
		s.cycle[u], s.cluster[u] = -1, -1
		s.fu[c][cls][s.slot(t)]--
		unwindCopies()
	}, true
}

// findBus scans starts chronologically for a bus with every slot of the
// transfer free. Scanning more than II starts would revisit the same
// modulo slots.
func (s *searcher) findBus(ready, deadline int) (start, bus int, ok bool) {
	if deadline < ready {
		return 0, 0, false
	}
	limit := deadline
	if cap := ready + s.ii - 1; cap < limit {
		limit = cap
	}
	for t := ready; t <= limit; t++ {
		for b := range s.bus {
			if s.busFreeOn(b, t) {
				return t, b, true
			}
		}
	}
	return 0, 0, false
}

func (s *searcher) slot(t int) int {
	m := t % s.ii
	if m < 0 {
		m += s.ii
	}
	return m
}

func (s *searcher) fuFree(c int, class ir.Class, t int) bool {
	k := classIndex(class)
	return s.fu[c][k][s.slot(t)] < s.units(k)
}

func (s *searcher) units(class int) int {
	switch class {
	case 0:
		return s.cfg.IntUnits
	case 1:
		return s.cfg.FPUnits
	case 2:
		return s.cfg.MemUnits
	}
	return 0
}

func classIndex(c ir.Class) int {
	switch c {
	case ir.ClassInt:
		return 0
	case ir.ClassFP:
		return 1
	case ir.ClassMem:
		return 2
	}
	return -1
}

// busSpan is the occupancy span of one transfer in the modulo table; a
// transfer longer than II wraps onto itself, occupying the full row.
func (s *searcher) busSpan() int {
	if s.cfg.RegBusLatency > s.ii {
		return s.ii
	}
	return s.cfg.RegBusLatency
}

func (s *searcher) busFreeOn(b, t int) bool {
	for d := 0; d < s.busSpan(); d++ {
		if s.bus[b][s.slot(t+d)] != -1 {
			return false
		}
	}
	return true
}

func (s *searcher) busReserve(producer, b, t int) {
	for d := 0; d < s.busSpan(); d++ {
		s.bus[b][s.slot(t+d)] = producer
	}
}

func (s *searcher) busRelease(b, t int) {
	for d := 0; d < s.busSpan(); d++ {
		s.bus[b][s.slot(t+d)] = -1
	}
}

// emit freezes a completed placement into a Schedule.
func (s *searcher) emit() *sched.Schedule {
	sc := &sched.Schedule{
		Plan:    s.plan,
		Arch:    s.cfg,
		II:      s.ii,
		Cycle:   append([]int(nil), s.cycle...),
		Cluster: append([]int(nil), s.cluster...),
		Lat:     append([]int(nil), s.lat...),
	}
	for i := range sc.Cycle {
		if end := sc.Cycle[i] + s.lat[i]; end > sc.Length {
			sc.Length = end
		}
	}
	keys := make([]copyKey, 0, len(s.copies))
	for k := range s.copies {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].producer != keys[j].producer {
			return keys[i].producer < keys[j].producer
		}
		return keys[i].toCluster < keys[j].toCluster
	})
	for _, k := range keys {
		tr := s.copies[k]
		sc.Copies = append(sc.Copies, sched.Copy{
			Producer:  k.producer,
			ToCluster: k.toCluster,
			Start:     tr.start,
			Bus:       tr.bus,
		})
	}
	return sc
}
